//! Lifecycle tests for the persistent on-disk compile cache behind
//! [`EngineBuilder::persistent_cache`]: what survives a process restart,
//! what gets invalidated, and what deliberately does *not* persist.
//!
//! Each test uses its own throwaway directory under the system temp dir
//! (the workspace is dependency-free, so no `tempfile`); a fresh
//! `Engine` against the same directory stands in for "the next process".

use futhark_ad_repro::{Engine, EngineBuilder, PassPipeline, Transform};
use workloads::{gmm, kmeans};

struct TmpDir(std::path::PathBuf);

impl TmpDir {
    fn new(tag: &str) -> TmpDir {
        let dir = std::env::temp_dir().join(format!("fir-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        TmpDir(dir)
    }
}

impl Drop for TmpDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn engine(dir: &std::path::Path) -> Engine {
    EngineBuilder::new()
        .backend_name("vm-seq")
        .persistent_cache(dir)
        .build()
        .expect("engine with persistent cache")
}

/// A second engine (a stand-in for the next process) against the same
/// directory compiles nothing: the root program and a derived gradient
/// both come off disk, and the loaded programs produce bitwise-identical
/// results.
#[test]
fn a_fresh_engine_loads_instead_of_compiling() {
    let tmp = TmpDir::new("fresh-loads");
    let fun = gmm::objective_ir();
    let args = gmm::GmmData::generate(20, 3, 2, 1).ir_args();

    let first = engine(&tmp.0);
    let cf = first.compile(&fun).unwrap();
    let want = cf.call(&args).unwrap();
    let want_grad = cf.grad(&args).unwrap();
    let s1 = first.cache_stats().persistent.unwrap();
    assert_eq!(s1.hits, 0, "an empty store cannot hit");
    assert!(s1.stores >= 2, "root + vjp must be persisted, got {s1:?}");

    let second = engine(&tmp.0);
    let cf2 = second.compile(&fun).unwrap();
    let got = cf2.call(&args).unwrap();
    let got_grad = cf2.grad(&args).unwrap();
    let stats = second.cache_stats();
    assert_eq!(stats.misses, 0, "warm engine must not compile: {stats}");
    let p = stats.persistent.unwrap();
    assert!(p.hits >= 2, "root + vjp must load from disk, got {p:?}");

    assert_eq!(got[0].as_f64().to_bits(), want[0].as_f64().to_bits());
    assert_eq!(
        got_grad.scalar().to_bits(),
        want_grad.scalar().to_bits(),
        "gradient primal"
    );
    for (a, b) in got_grad.grads.iter().zip(&want_grad.grads) {
        for (x, y) in a.as_arr().f64s().iter().zip(b.as_arr().f64s()) {
            assert_eq!(x.to_bits(), y.to_bits(), "gradient component");
        }
    }
}

/// A stored entry whose format version is from the future is refused,
/// counted as an invalidation, deleted, and transparently replaced by a
/// fresh compile — which the *next* engine then loads.
#[test]
fn format_version_mismatch_recompiles_and_overwrites() {
    let tmp = TmpDir::new("version-bump");
    let fun = kmeans::dense_objective_ir();
    let args = kmeans::KmeansData::generate(30, 3, 4, 2).ir_args();

    let first = engine(&tmp.0);
    let want = first.compile(&fun).unwrap().call(&args).unwrap();

    // Bump the version field of every stored document in place: byte
    // offsets 4..8 of the frame header hold the little-endian format
    // version.
    let mut patched = 0;
    for f in std::fs::read_dir(&tmp.0).unwrap() {
        let path = f.unwrap().path();
        if path.extension().is_some_and(|e| e == "firc") {
            let mut bytes = std::fs::read(&path).unwrap();
            let v = fir_cache::FORMAT_VERSION + 1;
            bytes[4..8].copy_from_slice(&v.to_le_bytes());
            std::fs::write(&path, &bytes).unwrap();
            patched += 1;
        }
    }
    assert!(patched >= 1, "the first engine must have stored entries");

    let second = engine(&tmp.0);
    let got = second.compile(&fun).unwrap().call(&args).unwrap();
    assert_eq!(got[0].as_f64().to_bits(), want[0].as_f64().to_bits());
    let stats = second.cache_stats();
    assert_eq!(stats.misses, 1, "the stale entry must be recompiled");
    let p = stats.persistent.unwrap();
    assert!(p.invalidations >= 1, "version bump must invalidate: {p:?}");
    assert!(p.stores >= 1, "the fresh compile must overwrite: {p:?}");

    // The overwrite is current-format: a third engine loads it.
    let third = engine(&tmp.0);
    third.compile(&fun).unwrap();
    let stats = third.cache_stats();
    assert_eq!(stats.misses, 0, "overwritten entry must load: {stats}");
    assert_eq!(stats.persistent.unwrap().hits, 1);
}

/// Corrupt bytes on disk behave like the version bump: invalidated,
/// deleted, recompiled — never a panic, never a wrong program.
#[test]
fn corrupt_store_files_recompile() {
    let tmp = TmpDir::new("corrupt");
    let fun = gmm::objective_ir();
    engine(&tmp.0).compile(&fun).unwrap();

    for f in std::fs::read_dir(&tmp.0).unwrap() {
        let path = f.unwrap().path();
        if path.extension().is_some_and(|e| e == "firc") {
            let mut bytes = std::fs::read(&path).unwrap();
            let mid = bytes.len() / 2;
            bytes[mid] ^= 0xff;
            std::fs::write(&path, &bytes).unwrap();
        }
    }

    let second = engine(&tmp.0);
    second.compile(&fun).unwrap();
    let stats = second.cache_stats();
    assert_eq!(stats.misses, 1);
    assert!(stats.persistent.unwrap().invalidations >= 1);
}

/// After the in-memory LRU evicts a program, re-requesting it is a
/// persistent-cache *load*, not a recompilation — the disk tier extends
/// the LRU rather than merely surviving restarts.
#[test]
fn lru_eviction_falls_back_to_disk_not_recompilation() {
    let tmp = TmpDir::new("lru-evict");
    let e = EngineBuilder::new()
        .backend_name("vm-seq")
        .cache_capacity(1)
        .persistent_cache(&tmp.0)
        .build()
        .unwrap();

    let gmm_fun = gmm::objective_ir();
    let km_fun = kmeans::dense_objective_ir();
    e.compile(&gmm_fun).unwrap(); // miss, stored
    e.compile(&km_fun).unwrap(); // miss, stored; evicts gmm
    let before = e.cache_stats();
    assert_eq!((before.misses, before.evictions), (2, 1), "{before}");

    let cf = e.compile(&gmm_fun).unwrap(); // evicted → disk, not a compile
    let after = e.cache_stats();
    assert_eq!(after.misses, 2, "re-request must not recompile: {after}");
    assert_eq!(after.persistent.unwrap().hits, 1, "{after}");
    // And the loaded program runs.
    let args = gmm::GmmData::generate(10, 2, 2, 3).ir_args();
    cf.call(&args).unwrap();
}

/// The pass pipeline is part of the store key: an engine with a
/// different pipeline must not load the other's entries.
#[test]
fn pipeline_config_partitions_the_store() {
    let tmp = TmpDir::new("pipeline-key");
    let fun = gmm::objective_ir();

    engine(&tmp.0).compile(&fun).unwrap();

    let other = EngineBuilder::new()
        .backend_name("vm-seq")
        .pipeline(PassPipeline::none())
        .persistent_cache(&tmp.0)
        .build()
        .unwrap();
    other.compile(&fun).unwrap();
    let stats = other.cache_stats();
    assert_eq!(
        stats.misses, 1,
        "a different pipeline must recompile: {stats}"
    );
    let p = stats.persistent.unwrap();
    assert_eq!((p.hits, p.misses), (0, 1), "{p:?}");
}

/// Jit-tier promotion state is deliberately NOT persisted: a program
/// loaded from disk starts at run count zero and must re-earn its
/// promotion. (Persisting hotness would bake one process's traffic
/// shape into every future process.)
#[test]
fn loaded_programs_start_cold_in_the_jit_tier() {
    let tmp = TmpDir::new("jit-cold");
    let fun = gmm::objective_ir();
    let args = gmm::GmmData::generate(10, 2, 2, 4).ir_args();
    let threshold = 3u64;

    let first = EngineBuilder::new()
        .backend_name("vm-seq")
        .jit_threshold(threshold)
        .persistent_cache(&tmp.0)
        .build()
        .unwrap();
    let cf = first.compile(&fun).unwrap();
    for _ in 0..threshold + 2 {
        cf.call(&args).unwrap();
    }
    assert_eq!(
        first.cache_stats().tier.unwrap().promotions,
        1,
        "the hot program must have promoted in the first engine"
    );

    let second = EngineBuilder::new()
        .backend_name("vm-seq")
        .jit_threshold(threshold)
        .persistent_cache(&tmp.0)
        .build()
        .unwrap();
    let cf2 = second.compile(&fun).unwrap();
    let stats = second.cache_stats();
    assert_eq!(stats.misses, 0, "must load from disk: {stats}");
    assert_eq!(stats.persistent.unwrap().hits, 1, "{stats}");

    // Below the threshold: still cold. If promotion state had been
    // persisted, the very first call would already run promoted.
    for _ in 0..threshold - 1 {
        cf2.call(&args).unwrap();
    }
    assert_eq!(
        second.cache_stats().tier.unwrap().promotions,
        0,
        "a loaded program must start at run count zero"
    );
    // Crossing the threshold re-earns the promotion.
    cf2.call(&args).unwrap();
    assert_eq!(second.cache_stats().tier.unwrap().promotions, 1);
}

/// Derived transforms hit the persistent cache without paying the
/// derivation: a fresh engine asking for `vmap(vjp(f))` of a cached
/// function loads both the root and the derived program from disk.
#[test]
fn derived_transform_stacks_persist() {
    let tmp = TmpDir::new("derived-stack");
    let fun = kmeans::dense_objective_ir();

    let first = engine(&tmp.0);
    let cf = first.compile(&fun).unwrap();
    cf.transform(&[Transform::Vjp, Transform::Vmap]).unwrap();

    let second = engine(&tmp.0);
    let cf2 = second.compile(&fun).unwrap();
    cf2.transform(&[Transform::Vjp, Transform::Vmap]).unwrap();
    let stats = second.cache_stats();
    assert_eq!(stats.misses, 0, "stacked transform must load: {stats}");
    assert!(
        stats.persistent.unwrap().hits >= 2,
        "root + [vjp,vmap] must both come off disk: {stats}"
    );
}
