//! Persistent-cache parity: for every workload in `crates/workloads`,
//! a program decoded from the on-disk cache must be bitwise-identical in
//! behaviour to the freshly compiled one — primal values *and*
//! reverse-mode gradients (both run on the sequential VM, where float
//! reassociation cannot occur, so bitwise equality is the right bar).
//!
//! The first engine compiles and populates a throwaway store directory;
//! a second engine against the same directory — asserted to perform
//! zero compilations — replays the exact same calls from decoded
//! programs.

use fir::ir::Fun;
use futhark_ad_repro::{Engine, EngineBuilder};
use interp::Value;
use workloads::{adbench, gmm, kmeans, lstm, mc};

fn ten_workloads() -> Vec<(&'static str, Fun, Vec<Value>)> {
    let lstm_data = lstm::LstmData::generate(6, 4, 5, 2, 4);
    let dlstm_data = adbench::DlstmData::generate(10, 6, 6, 8);
    let xs_data = mc::XsData::generate(16, 6, 256, 9);
    let rs_data = mc::RsData::generate(6, 4, 3, 128, 10);
    vec![
        (
            "gmm",
            gmm::objective_ir(),
            gmm::GmmData::generate(40, 4, 5, 1).ir_args(),
        ),
        (
            "kmeans-dense",
            kmeans::dense_objective_ir(),
            kmeans::KmeansData::generate(200, 4, 5, 2).ir_args(),
        ),
        (
            "kmeans-sparse",
            kmeans::sparse_objective_ir(),
            kmeans::SparseKmeansData::generate(120, 16, 4, 5, 3).ir_args(),
        ),
        (
            "lstm",
            lstm::objective_ir(lstm_data.h, lstm_data.bs),
            lstm_data.ir_args(),
        ),
        (
            "ba",
            adbench::ba_objective_ir(),
            adbench::BaData::generate(8, 40, 160, 5).ir_args(),
        ),
        (
            "hand-simple",
            adbench::hand_objective_ir(false),
            adbench::HandData::generate(16, 5, 6).ir_args(false),
        ),
        (
            "hand-complicated",
            adbench::hand_objective_ir(true),
            adbench::HandData::generate(16, 5, 7).ir_args(true),
        ),
        (
            "d-lstm",
            adbench::dlstm_objective_ir(dlstm_data.h),
            dlstm_data.ir_args(),
        ),
        ("xsbench", mc::xsbench_ir(xs_data.g), xs_data.ir_args()),
        ("rsbench", mc::rsbench_ir(4, 3), rs_data.ir_args()),
    ]
}

fn assert_values_bitwise(name: &str, what: &str, a: &[Value], b: &[Value]) {
    assert_eq!(a.len(), b.len(), "{name}: {what} arity");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        match (x, y) {
            (Value::F64(p), Value::F64(q)) => {
                assert_eq!(p.to_bits(), q.to_bits(), "{name}: {what}[{i}]")
            }
            (Value::Arr(p), Value::Arr(q)) => {
                assert_eq!(p.shape, q.shape, "{name}: {what}[{i}] shape");
                for (u, v) in p.f64s().iter().zip(q.f64s()) {
                    assert_eq!(u.to_bits(), v.to_bits(), "{name}: {what}[{i}]");
                }
            }
            other => panic!("{name}: {what}[{i}] unexpected value kinds {other:?}"),
        }
    }
}

#[test]
fn decoded_programs_match_fresh_compiles_bitwise_on_all_workloads() {
    let dir = std::env::temp_dir().join(format!("fir-test-parity-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let workloads = ten_workloads();

    // Pass 1: fresh compiles, persisted to `dir`.
    let fresh = EngineBuilder::new()
        .backend_name("vm-seq")
        .cache_capacity(2 * workloads.len())
        .persistent_cache(&dir)
        .build()
        .unwrap();
    let mut want = Vec::new();
    for (name, fun, args) in &workloads {
        let cf = fresh.compile(fun).unwrap();
        let primal = cf.call(args).unwrap();
        let grad = cf.grad(args).unwrap();
        want.push((name, primal, grad));
    }
    let stored = fresh.cache_stats().persistent.unwrap().stores;
    assert!(
        stored >= 2 * workloads.len() as u64,
        "every workload must persist its root and vjp programs, stored {stored}"
    );

    // Pass 2: a fresh engine (the "next process") replays everything
    // from decoded programs — zero compilations allowed.
    let warm = EngineBuilder::new()
        .backend_name("vm-seq")
        .cache_capacity(2 * workloads.len())
        .persistent_cache(&dir)
        .build()
        .unwrap();
    for ((name, fun, args), (_, want_primal, want_grad)) in workloads.iter().zip(&want) {
        let cf = warm.compile(fun).unwrap();
        let primal = cf.call(args).unwrap();
        let grad = cf.grad(args).unwrap();
        assert_values_bitwise(name, "primal", &primal, want_primal);
        assert_values_bitwise(name, "grad value", &grad.value, &want_grad.value);
        assert_values_bitwise(name, "grads", &grad.grads, &want_grad.grads);
    }
    let stats = warm.cache_stats();
    assert_eq!(
        stats.misses, 0,
        "the warm engine must decode, not compile: {stats}"
    );
    assert!(
        stats.persistent.unwrap().hits >= 2 * workloads.len() as u64,
        "every root and vjp program must come off disk: {stats}"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

/// The same parity through the parallel VM: decoded programs feed the
/// same execution paths (worker pool, kernels) as compiled ones.
#[test]
fn decoded_programs_run_on_the_parallel_vm() {
    let dir = std::env::temp_dir().join(format!("fir-test-parity-par-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let fun = gmm::objective_ir();
    let args = gmm::GmmData::generate(40, 4, 5, 1).ir_args();

    let fresh = Engine::builder()
        .backend_name("vm")
        .persistent_cache(&dir)
        .build()
        .unwrap();
    let want = fresh.compile(&fun).unwrap().grad(&args).unwrap();

    let warm = Engine::builder()
        .backend_name("vm")
        .persistent_cache(&dir)
        .build()
        .unwrap();
    let got = warm.compile(&fun).unwrap().grad(&args).unwrap();
    assert_eq!(warm.cache_stats().misses, 0);

    // Parallel reductions may reassociate between runs only if schedules
    // differ by data layout — the decoded program has identical bytecode,
    // so same-process runs of equal programs still agree to tolerance.
    let denom = want.scalar().abs().max(1.0);
    assert!((got.scalar() - want.scalar()).abs() / denom < 1e-9);

    let _ = std::fs::remove_dir_all(&dir);
}
