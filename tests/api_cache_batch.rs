//! Cache and batching behavior of the staged API: compiling the same `Fun`
//! (and its vjp) twice through one `Engine` hits the fingerprint cache, and
//! `call_batch` agrees with sequential `call` on all nine workloads.

use fir::ir::Fun;
use futhark_ad::gradcheck::max_rel_error;
use futhark_ad_repro::Engine;
use interp::Value;
use workloads::{adbench, gmm, kmeans, lstm, mc};

#[test]
fn recompiling_the_same_fun_hits_the_fingerprint_cache() {
    let engine = Engine::new();
    let f1 = engine.compile(&gmm::objective_ir()).unwrap();
    let s = engine.cache_stats();
    assert_eq!((s.hits, s.misses, s.entries), (0, 1, 1));

    // A structurally identical rebuild: answered from the cache.
    let f2 = engine.compile(&gmm::objective_ir()).unwrap();
    let s = engine.cache_stats();
    assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));

    // Deriving the vjp through either handle compiles it once; both
    // handles share the derived transform.
    f1.vjp().unwrap();
    let s = engine.cache_stats();
    assert_eq!((s.misses, s.entries), (2, 2));
    f2.vjp().unwrap();
    assert_eq!(engine.cache_stats().misses, 2, "vjp must not recompile");

    // A third compile of the primal, then its vjp: everything cached.
    let f3 = engine.compile(&gmm::objective_ir()).unwrap();
    f3.vjp().unwrap();
    let s = engine.cache_stats();
    assert_eq!((s.misses, s.entries), (2, 2));
    assert!(s.hits >= 2);
}

#[test]
fn compiling_the_derived_vjp_fun_directly_also_hits_the_cache() {
    // vjp derivation is deterministic and starts from the pre-pipeline
    // source (so gradients are identical whatever pipeline the engine
    // runs): compiling the Fun derived from the same source lands on the
    // same fingerprint as the lazy handle.
    let engine = Engine::new();
    let cf = engine.compile(&kmeans::dense_objective_ir()).unwrap();
    let handle = cf.vjp().unwrap();
    let derived = futhark_ad::vjp(&kmeans::dense_objective_ir());
    let misses = engine.cache_stats().misses;
    let direct = engine.compile(&derived).unwrap();
    assert_eq!(engine.cache_stats().misses, misses, "must be a cache hit");
    assert_eq!(direct.name(), handle.name());
}

#[test]
fn changing_the_pipeline_clears_the_cache() {
    let engine = Engine::new();
    engine.compile(&gmm::objective_ir()).unwrap();
    assert_eq!(engine.cache_stats().entries, 1);
    engine.set_pipeline(futhark_ad_repro::PassPipeline::none());
    assert_eq!(engine.cache_stats().entries, 0);
}

/// `call_batch` (and `grad_batch`) parity with per-call `call`/`grad` on
/// one workload: a batch of three distinct instances.
fn assert_batch_parity(name: &str, fun: &Fun, instances: Vec<Vec<Value>>) {
    let engine = Engine::new();
    let cf = engine.compile(fun).unwrap();
    let batched = cf.call_batch(&instances).unwrap();
    assert_eq!(batched.len(), instances.len(), "{name}: batch arity");
    for (args, out) in instances.iter().zip(&batched) {
        let single = cf.call(args).unwrap();
        assert_eq!(single.len(), out.len(), "{name}: result arity");
        assert_eq!(
            single[0].as_f64().to_bits(),
            out[0].as_f64().to_bits(),
            "{name}: batched primal must be bitwise-identical to call()"
        );
    }
    let grads = cf.grad_batch(&instances).unwrap();
    for (args, g) in instances.iter().zip(&grads) {
        let single = cf.grad(args).unwrap();
        assert_eq!(
            single.scalar().to_bits(),
            g.scalar().to_bits(),
            "{name}: batched vjp primal"
        );
        let err = max_rel_error(&single.flat_grads(), &g.flat_grads());
        assert!(
            err < 1e-12,
            "{name}: batched gradient, max rel err {err:.3e}"
        );
    }
}

#[test]
fn gmm_batch_parity() {
    assert_batch_parity(
        "gmm",
        &gmm::objective_ir(),
        (0..3)
            .map(|i| gmm::GmmData::generate(20, 3, 4, i).ir_args())
            .collect(),
    );
}

#[test]
fn kmeans_dense_batch_parity() {
    assert_batch_parity(
        "kmeans-dense",
        &kmeans::dense_objective_ir(),
        (0..3)
            .map(|i| kmeans::KmeansData::generate(60, 4, 5, i).ir_args())
            .collect(),
    );
}

#[test]
fn kmeans_sparse_batch_parity() {
    assert_batch_parity(
        "kmeans-sparse",
        &kmeans::sparse_objective_ir(),
        (0..3)
            .map(|i| kmeans::SparseKmeansData::generate(40, 16, 4, 5, i).ir_args())
            .collect(),
    );
}

#[test]
fn lstm_batch_parity() {
    let data0 = lstm::LstmData::generate(4, 3, 4, 2, 0);
    assert_batch_parity(
        "lstm",
        &lstm::objective_ir(data0.h, data0.bs),
        (0..3)
            .map(|i| lstm::LstmData::generate(4, 3, 4, 2, i).ir_args())
            .collect(),
    );
}

#[test]
fn ba_batch_parity() {
    assert_batch_parity(
        "ba",
        &adbench::ba_objective_ir(),
        (0..3)
            .map(|i| adbench::BaData::generate(6, 30, 120, i).ir_args())
            .collect(),
    );
}

#[test]
fn hand_simple_batch_parity() {
    assert_batch_parity(
        "hand-simple",
        &adbench::hand_objective_ir(false),
        (0..3)
            .map(|i| adbench::HandData::generate(12, 4, i).ir_args(false))
            .collect(),
    );
}

#[test]
fn hand_complicated_batch_parity() {
    assert_batch_parity(
        "hand-complicated",
        &adbench::hand_objective_ir(true),
        (0..3)
            .map(|i| adbench::HandData::generate(12, 4, i).ir_args(true))
            .collect(),
    );
}

#[test]
fn dlstm_batch_parity() {
    let data0 = adbench::DlstmData::generate(8, 4, 4, 0);
    assert_batch_parity(
        "d-lstm",
        &adbench::dlstm_objective_ir(data0.h),
        (0..3)
            .map(|i| adbench::DlstmData::generate(8, 4, 4, i).ir_args())
            .collect(),
    );
}

#[test]
fn mc_batch_parity() {
    // XSBench and RSBench, the paper's two Monte Carlo ports.
    assert_batch_parity(
        "xsbench",
        &mc::xsbench_ir(mc::XsData::generate(8, 4, 64, 0).g),
        (0..3)
            .map(|i| mc::XsData::generate(8, 4, 64, i).ir_args())
            .collect(),
    );
    assert_batch_parity(
        "rsbench",
        &mc::rsbench_ir(4, 3),
        (0..3)
            .map(|i| mc::RsData::generate(6, 4, 3, 64, i).ir_args())
            .collect(),
    );
}
