//! Cache and batching behavior of the staged API: compiling the same `Fun`
//! (and any transform stack of it) twice through one `Engine` hits the
//! fingerprint cache — one compilation per distinct `(source fingerprint,
//! transform stack)` — LRU eviction recompiles transparently while
//! `Arc`-held handles stay valid, and the batch entry points
//! (`call_batch`, `grad_batch`, `grad_batch_fused`, and the explicit
//! `vmap ∘ vjp` / `vjp ∘ vmap` stacks) agree bitwise with sequential
//! per-example `call`/`grad` loops on all nine workloads, on both the
//! interpreter and the VM.

use fir::ir::Fun;
use futhark_ad_repro::{Engine, Transform};
use interp::Value;
use workloads::{adbench, gmm, kmeans, lstm, mc};

#[test]
fn recompiling_the_same_fun_hits_the_fingerprint_cache() {
    let engine = Engine::new();
    let f1 = engine.compile(&gmm::objective_ir()).unwrap();
    let s = engine.cache_stats();
    assert_eq!((s.hits, s.misses, s.entries), (0, 1, 1));

    // A structurally identical rebuild: answered from the cache.
    let f2 = engine.compile(&gmm::objective_ir()).unwrap();
    let s = engine.cache_stats();
    assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));

    // Deriving the vjp through either handle compiles it once; both
    // handles share the derived transform.
    f1.vjp().unwrap();
    let s = engine.cache_stats();
    assert_eq!((s.misses, s.entries), (2, 2));
    f2.vjp().unwrap();
    assert_eq!(engine.cache_stats().misses, 2, "vjp must not recompile");

    // A third compile of the primal, then its vjp: everything cached.
    let f3 = engine.compile(&gmm::objective_ir()).unwrap();
    f3.vjp().unwrap();
    let s = engine.cache_stats();
    assert_eq!((s.misses, s.entries), (2, 2));
    assert!(s.hits >= 2);
}

#[test]
fn compiling_the_derived_vjp_fun_directly_also_hits_the_cache() {
    // vjp derivation is deterministic and starts from the pre-pipeline
    // source (so gradients are identical whatever pipeline the engine
    // runs): compiling the Fun derived from the same source lands on the
    // same fingerprint as the lazy handle.
    let engine = Engine::new();
    let cf = engine.compile(&kmeans::dense_objective_ir()).unwrap();
    let handle = cf.vjp().unwrap();
    let derived = futhark_ad::vjp(&kmeans::dense_objective_ir());
    let misses = engine.cache_stats().misses;
    let direct = engine.compile(&derived).unwrap();
    assert_eq!(engine.cache_stats().misses, misses, "must be a cache hit");
    assert_eq!(direct.name(), handle.name());
}

#[test]
fn lru_eviction_recompiles_derived_programs_but_held_handles_stay_valid() {
    // Three structurally distinct programs (and their vjps) through a
    // capacity-2 cache: evicted entries recompile with a counted miss,
    // while handles taken before the eviction keep working because they
    // hold their program by Arc.
    fn scaled(c: f64) -> fir::ir::Fun {
        let mut b = fir::builder::Builder::new();
        b.build_fun("scaled", &[fir::types::Type::arr_f64(1)], |b, ps| {
            let s = b.map1(fir::types::Type::arr_f64(1), &[ps[0]], |b, es| {
                vec![b.fmul(es[0].into(), fir::ir::Atom::f64(c))]
            });
            vec![b.sum(s).into()]
        })
    }
    let engine = Engine::builder()
        .backend_name("vm-seq")
        .cache_capacity(2)
        .build()
        .unwrap();
    let args = [Value::from(vec![1.0, 2.0, 3.0])];

    let cf1 = engine.compile(&scaled(2.0)).unwrap();
    let vjp1 = cf1.vjp().unwrap(); // entries: {f1, vjp(f1)}
    let s = engine.cache_stats();
    assert_eq!((s.misses, s.entries, s.evictions), (2, 2, 0));
    let grad_before = cf1.grad(&args).unwrap();

    // Compile past capacity: more distinct programs than slots.
    for c in [3.0, 4.0, 5.0] {
        engine.compile(&scaled(c)).unwrap().vjp().unwrap();
    }
    let s = engine.cache_stats();
    assert_eq!(s.entries, 2, "cache must stay at capacity");
    assert!(s.evictions >= 6, "6+ programs through 2 slots: {s}");

    // The Arc-held handles survived the eviction of their entries.
    assert_eq!(
        cf1.call(&args).unwrap()[0].as_f64().to_bits(),
        grad_before.scalar().to_bits(),
    );
    let g = vjp1
        .call(&{
            let mut a = args.to_vec();
            a.push(Value::F64(1.0));
            a
        })
        .unwrap();
    assert_eq!(g[0].as_f64().to_bits(), grad_before.scalar().to_bits());
    assert_eq!(
        g[1].as_arr().f64s(),
        grad_before.grads[0].as_arr().f64s(),
        "evicted-but-held vjp handle must still compute the same adjoints"
    );

    // Re-deriving the evicted vjp through the original handle recompiles
    // (a counted miss), transparently, with identical results.
    let misses = engine.cache_stats().misses;
    let grad_after = cf1.grad(&args).unwrap();
    let s = engine.cache_stats();
    assert!(
        s.misses > misses,
        "evicted derived program must recompile as a miss: {s}"
    );
    assert_eq!(
        grad_after.scalar().to_bits(),
        grad_before.scalar().to_bits()
    );
    assert_eq!(grad_after.flat_grads(), grad_before.flat_grads());
}

#[test]
fn changing_the_pipeline_clears_the_cache() {
    let engine = Engine::new();
    engine.compile(&gmm::objective_ir()).unwrap();
    assert_eq!(engine.cache_stats().entries, 1);
    engine.set_pipeline(futhark_ad_repro::PassPipeline::none());
    assert_eq!(engine.cache_stats().entries, 0);
}

/// Per-example-gradient parity on one workload, on both backends: a
/// batch of three distinct instances computed by (a) a sequential
/// per-call `call`/`grad` loop, (b) task-parallel `call_batch` /
/// `grad_batch`, (c) the fused `grad_batch_fused` (`vmap(vjp(f))` under
/// the hood), and (d) the explicit transform stacks `[Vjp, Vmap]` and
/// `[Vmap, Vjp]` called on stacked seeded arguments — all bitwise
/// identical.
fn assert_batch_parity(name: &str, fun: &Fun, instances: Vec<Vec<Value>>) {
    for backend in ["interp-seq", "vm-seq"] {
        let engine = Engine::by_name(backend).unwrap();
        let cf = engine.compile(fun).unwrap();
        let batched = cf.call_batch(&instances).unwrap();
        assert_eq!(batched.len(), instances.len(), "{name}: batch arity");
        for (args, out) in instances.iter().zip(&batched) {
            let single = cf.call(args).unwrap();
            assert_eq!(single.len(), out.len(), "{name}: result arity");
            assert_eq!(
                single[0].as_f64().to_bits(),
                out[0].as_f64().to_bits(),
                "{name} ({backend}): batched primal must be bitwise-identical to call()"
            );
        }
        // Per-example gradients, four ways.
        let singles: Vec<_> = instances.iter().map(|a| cf.grad(a).unwrap()).collect();
        let grads = cf.grad_batch(&instances).unwrap();
        let fused = cf.grad_batch_fused(&instances).unwrap();
        for (i, single) in singles.iter().enumerate() {
            for (how, got) in [
                ("grad_batch", &grads[i]),
                ("grad_batch_fused", fused[i].as_ref().unwrap()),
            ] {
                assert_eq!(
                    single.scalar().to_bits(),
                    got.scalar().to_bits(),
                    "{name} ({backend}): {how} vjp primal of example {i}"
                );
                let (a, b) = (single.flat_grads(), got.flat_grads());
                assert_eq!(a.len(), b.len(), "{name} ({backend}): {how} arity");
                for (j, (x, y)) in a.iter().zip(&b).enumerate() {
                    assert_eq!(
                        x.to_bits(),
                        y.to_bits(),
                        "{name} ({backend}): {how} grad[{j}] of example {i}"
                    );
                }
            }
        }
        // The explicit stacks: vmap(vjp(f)) and vjp(vmap(f)) take the
        // same stacked seeded arguments here (every workload objective
        // is scalar, so the stacked seed column doubles as the [B]-seed
        // of the vectorized function) and must match the loop bitwise.
        let seeded: Vec<Vec<Value>> = instances
            .iter()
            .map(|args| {
                let mut a = args.clone();
                a.extend(cf.unit_seeds(args).unwrap());
                a
            })
            .collect();
        // Ragged batches (e.g. sparse k-means instances with different
        // nnz) cannot stack; the fused paths above already verified the
        // task-parallel fallback bitwise, so only the stackable
        // workloads exercise the explicit transform stacks.
        let Some(stacked) = fir_api::batch::stack_args(&seeded) else {
            continue;
        };
        for stack in [
            [Transform::Vjp, Transform::Vmap],
            [Transform::Vmap, Transform::Vjp],
        ] {
            let tf = cf.transform(&stack).unwrap();
            let outs = tf.call(&stacked).unwrap();
            let rows = fir_api::batch::unstack_results(
                cf.vjp().unwrap().result_types(),
                &outs,
                instances.len(),
            );
            for (i, single) in singles.iter().enumerate() {
                assert_eq!(
                    single.scalar().to_bits(),
                    rows[i][0].as_f64().to_bits(),
                    "{name} ({backend}) {stack:?}: primal of example {i}"
                );
                let nres = fun.ret.len();
                let flat: Vec<f64> = rows[i][nres..]
                    .iter()
                    .flat_map(|v| match v {
                        Value::F64(x) => vec![*x],
                        Value::Arr(a) => a.f64s().to_vec(),
                        other => panic!("unexpected adjoint {other:?}"),
                    })
                    .collect();
                let want = single.flat_grads();
                assert_eq!(
                    want.len(),
                    flat.len(),
                    "{name} ({backend}) {stack:?}: arity"
                );
                for (j, (x, y)) in want.iter().zip(&flat).enumerate() {
                    assert_eq!(
                        x.to_bits(),
                        y.to_bits(),
                        "{name} ({backend}) {stack:?}: grad[{j}] of example {i}"
                    );
                }
            }
        }
        // One compilation per distinct (fingerprint, stack): replaying
        // every path above must not add a single miss.
        let misses = engine.cache_stats().misses;
        let _ = cf.grad_batch_fused(&instances).unwrap();
        let _ = cf.transform(&[Transform::Vjp, Transform::Vmap]).unwrap();
        let _ = cf.transform(&[Transform::Vmap, Transform::Vjp]).unwrap();
        assert_eq!(
            engine.cache_stats().misses,
            misses,
            "{name} ({backend}): transform replay must be all cache hits"
        );
    }
}

#[test]
fn gmm_batch_parity() {
    assert_batch_parity(
        "gmm",
        &gmm::objective_ir(),
        (0..3)
            .map(|i| gmm::GmmData::generate(20, 3, 4, i).ir_args())
            .collect(),
    );
}

#[test]
fn kmeans_dense_batch_parity() {
    assert_batch_parity(
        "kmeans-dense",
        &kmeans::dense_objective_ir(),
        (0..3)
            .map(|i| kmeans::KmeansData::generate(60, 4, 5, i).ir_args())
            .collect(),
    );
}

#[test]
fn kmeans_sparse_batch_parity() {
    assert_batch_parity(
        "kmeans-sparse",
        &kmeans::sparse_objective_ir(),
        (0..3)
            .map(|i| kmeans::SparseKmeansData::generate(40, 16, 4, 5, i).ir_args())
            .collect(),
    );
}

#[test]
fn lstm_batch_parity() {
    let data0 = lstm::LstmData::generate(4, 3, 4, 2, 0);
    assert_batch_parity(
        "lstm",
        &lstm::objective_ir(data0.h, data0.bs),
        (0..3)
            .map(|i| lstm::LstmData::generate(4, 3, 4, 2, i).ir_args())
            .collect(),
    );
}

#[test]
fn ba_batch_parity() {
    assert_batch_parity(
        "ba",
        &adbench::ba_objective_ir(),
        (0..3)
            .map(|i| adbench::BaData::generate(6, 30, 120, i).ir_args())
            .collect(),
    );
}

#[test]
fn hand_simple_batch_parity() {
    assert_batch_parity(
        "hand-simple",
        &adbench::hand_objective_ir(false),
        (0..3)
            .map(|i| adbench::HandData::generate(12, 4, i).ir_args(false))
            .collect(),
    );
}

#[test]
fn hand_complicated_batch_parity() {
    assert_batch_parity(
        "hand-complicated",
        &adbench::hand_objective_ir(true),
        (0..3)
            .map(|i| adbench::HandData::generate(12, 4, i).ir_args(true))
            .collect(),
    );
}

#[test]
fn dlstm_batch_parity() {
    let data0 = adbench::DlstmData::generate(8, 4, 4, 0);
    assert_batch_parity(
        "d-lstm",
        &adbench::dlstm_objective_ir(data0.h),
        (0..3)
            .map(|i| adbench::DlstmData::generate(8, 4, 4, i).ir_args())
            .collect(),
    );
}

#[test]
fn mc_batch_parity() {
    // XSBench and RSBench, the paper's two Monte Carlo ports.
    assert_batch_parity(
        "xsbench",
        &mc::xsbench_ir(mc::XsData::generate(8, 4, 64, 0).g),
        (0..3)
            .map(|i| mc::XsData::generate(8, 4, 64, i).ir_args())
            .collect(),
    );
    assert_batch_parity(
        "rsbench",
        &mc::rsbench_ir(4, 3),
        (0..3)
            .map(|i| mc::RsData::generate(6, 4, 3, 64, i).ir_args())
            .collect(),
    );
}
