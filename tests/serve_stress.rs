//! Concurrency stress tests of the `fir-serve` runtime: many client
//! threads hammering two registered functions, per-request error
//! isolation inside micro-batches, bounded-queue load-shedding, and a
//! graceful shutdown that drains without deadlock.

use futhark_ad_repro::{BatchPolicy, Engine, Request, ServeError, ServerBuilder, Transform};
use interp::Value;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;
use workloads::{gmm, kmeans};

const GMM: &str = "gmm";
const KMEANS: &str = "kmeans-dense";

fn gmm_args(seed: u64) -> Vec<Value> {
    gmm::GmmData::generate(30, 3, 3, seed).ir_args()
}

fn kmeans_args(seed: u64) -> Vec<Value> {
    kmeans::KmeansData::generate(30, 3, 3, seed).ir_args()
}

fn two_fn_server(policy: BatchPolicy, capacity: usize) -> futhark_ad_repro::Server {
    ServerBuilder::new(Engine::by_name("vm-seq").unwrap())
        .batch_policy(policy)
        .queue_capacity(capacity)
        .register(GMM, &gmm::objective_ir())
        .register(KMEANS, &kmeans::dense_objective_ir())
        .build()
        .unwrap()
}

#[test]
fn n_clients_two_fns_every_ticket_resolves_with_parity() {
    const CLIENTS: usize = 8;
    const REQS: usize = 12;

    let server = two_fn_server(
        BatchPolicy {
            max_batch_size: 8,
            max_wait: Duration::from_micros(300),
        },
        1024,
    );
    // An independent engine computes the expected values.
    let reference = Engine::by_name("vm-seq").unwrap();
    let gmm_ref = reference.compile(&gmm::objective_ir()).unwrap();
    let km_ref = reference.compile(&kmeans::dense_objective_ir()).unwrap();

    let resolved = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for client in 0..CLIENTS {
            let (server, gmm_ref, km_ref, resolved) = (&server, &gmm_ref, &km_ref, &resolved);
            scope.spawn(move || {
                for i in 0..REQS {
                    let seed = (client * 1000 + i) as u64;
                    if (client + i) % 2 == 0 {
                        // Gradient request against one function...
                        let args = gmm_args(seed);
                        let got = server.grad(GMM, args.clone()).expect("gmm grad ticket");
                        let want = gmm_ref.grad(&args).expect("gmm reference");
                        assert_eq!(got.scalar().to_bits(), want.scalar().to_bits());
                        assert_eq!(got.flat_grads(), want.flat_grads());
                    } else {
                        // ...interleaved with primal calls against the other.
                        let args = kmeans_args(seed);
                        let got = server.call(KMEANS, args.clone()).expect("kmeans ticket");
                        let want = km_ref.call(&args).expect("kmeans reference");
                        assert_eq!(got[0].as_f64().to_bits(), want[0].as_f64().to_bits());
                    }
                    resolved.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });
    assert_eq!(resolved.load(Ordering::Relaxed), (CLIENTS * REQS) as u64);

    // Shutdown drains cleanly; the books balance.
    let m = server.shutdown();
    let total: u64 = m.fns.iter().map(|f| f.completed + f.failed).sum();
    assert_eq!(total, (CLIENTS * REQS) as u64);
    for f in &m.fns {
        assert_eq!(f.queue_depth, 0, "{}: queue must be drained", f.fn_key);
        assert_eq!(f.failed, 0, "{}: no request may fail", f.fn_key);
        assert_eq!(f.shed, 0, "{}: nothing shed at capacity 1024", f.fn_key);
    }
    // Coalescing actually happened under concurrent load.
    let batches: u64 = m.fns.iter().map(|f| f.batches).sum();
    assert!(
        batches < (CLIENTS * REQS) as u64,
        "micro-batcher never coalesced: {batches} batches for {} requests",
        CLIENTS * REQS
    );
}

#[test]
fn concurrent_transformed_and_plain_requests_batch_by_stack_with_parity() {
    // Four client threads interleave plain calls, auto-seeded gradient
    // requests, and explicit [Vjp]-stack requests against one function.
    // The micro-batcher may only coalesce requests that share the
    // (key, stack) pair; every ticket must resolve with the result of
    // its own stack, bitwise-equal to an independent reference engine.
    const CLIENTS: usize = 4;
    const REQS: usize = 6;
    let server = two_fn_server(
        BatchPolicy {
            max_batch_size: 8,
            max_wait: Duration::from_micros(300),
        },
        1024,
    );
    let reference = Engine::by_name("vm-seq").unwrap();
    let gmm_ref = reference.compile(&gmm::objective_ir()).unwrap();
    let gmm_vjp = gmm_ref.vjp().unwrap();

    std::thread::scope(|scope| {
        for client in 0..CLIENTS {
            let (server, gmm_ref, gmm_vjp) = (&server, &gmm_ref, &gmm_vjp);
            scope.spawn(move || {
                for i in 0..REQS {
                    let seed = (client * 100 + i) as u64;
                    let args = gmm_args(seed);
                    match i % 3 {
                        0 => {
                            let got = server.call(GMM, args.clone()).expect("plain call");
                            let want = gmm_ref.call(&args).expect("reference call");
                            assert_eq!(got[0].as_f64().to_bits(), want[0].as_f64().to_bits());
                        }
                        1 => {
                            let got = server.grad(GMM, args.clone()).expect("grad");
                            let want = gmm_ref.grad(&args).expect("reference grad");
                            assert_eq!(got.scalar().to_bits(), want.scalar().to_bits());
                            assert_eq!(got.flat_grads(), want.flat_grads());
                        }
                        _ => {
                            let mut seeded = args.clone();
                            seeded.push(Value::F64(1.0));
                            let got = server
                                .submit(
                                    Request::new(GMM, seeded.clone())
                                        .with_transforms([Transform::Vjp]),
                                )
                                .expect("admitted")
                                .wait()
                                .expect("vjp request");
                            let want = gmm_vjp.call(&seeded).expect("reference vjp");
                            assert_eq!(got.len(), want.len());
                            assert_eq!(got[0].as_f64().to_bits(), want[0].as_f64().to_bits());
                            for (w, g) in want[1..].iter().zip(&got[1..]) {
                                assert_eq!(w.as_arr().f64s(), g.as_arr().f64s());
                            }
                        }
                    }
                }
            });
        }
    });
    let m = server.shutdown();
    let f = &m.fns[0];
    assert_eq!(f.completed, (CLIENTS * REQS) as u64);
    assert_eq!(f.failed, 0);
}

#[test]
fn bad_requests_are_isolated_from_their_batchmates() {
    // A wide policy with a long wait forces good and bad requests into
    // the same micro-batch.
    let server = two_fn_server(
        BatchPolicy {
            max_batch_size: 16,
            max_wait: Duration::from_millis(100),
        },
        1024,
    );
    let good1 = server.submit_grad(Request::new(GMM, gmm_args(1))).unwrap();
    let bad_arity = server.submit_grad(Request::new(GMM, vec![])).unwrap();
    let bad_type = server
        .submit_grad(Request::new(GMM, vec![Value::F64(0.0); 4]))
        .unwrap();
    let good2 = server.submit_grad(Request::new(GMM, gmm_args(2))).unwrap();

    assert!(
        good1.wait().is_ok(),
        "batchmate of a bad request must succeed"
    );
    assert!(matches!(bad_arity.wait(), Err(ServeError::Exec(_))));
    assert!(matches!(bad_type.wait(), Err(ServeError::Exec(_))));
    assert!(
        good2.wait().is_ok(),
        "batchmate of a bad request must succeed"
    );

    let m = server.shutdown();
    let f = &m.fns[0];
    assert_eq!((f.completed, f.failed), (2, 2));
}

#[test]
fn bounded_queues_shed_overload_and_recover() {
    // Tiny queue, sleepy dispatcher: a burst must overflow.
    let server = two_fn_server(
        BatchPolicy {
            max_batch_size: 64,
            max_wait: Duration::from_millis(200),
        },
        3,
    );
    let mut admitted = Vec::new();
    let mut shed = 0u64;
    for i in 0..24 {
        match server.submit(Request::new(KMEANS, kmeans_args(i))) {
            Ok(t) => admitted.push(t),
            Err(ServeError::Overloaded { fn_key, capacity }) => {
                assert_eq!((fn_key.as_str(), capacity), (KMEANS, 3));
                shed += 1;
            }
            Err(e) => panic!("unexpected admission error: {e}"),
        }
    }
    assert!(shed > 0, "a 24-burst into a capacity-3 queue must shed");
    // Every admitted ticket still resolves successfully.
    for t in admitted {
        assert!(t.wait().is_ok());
    }
    let m = server.shutdown();
    assert_eq!(m.fns[1].shed, shed);
    assert_eq!(m.fns[1].completed + shed, 24);
}

#[test]
fn shutdown_under_load_drains_every_ticket() {
    // Submit a pile of work, then shut down immediately: every admitted
    // ticket must still resolve (drain, not drop) and nothing deadlocks.
    let server = two_fn_server(
        BatchPolicy {
            max_batch_size: 4,
            max_wait: Duration::from_millis(50),
        },
        1024,
    );
    let tickets: Vec<_> = (0..32)
        .map(|i| server.submit_grad(Request::new(GMM, gmm_args(i))).unwrap())
        .collect();
    let m = server.shutdown();
    assert_eq!(m.fns[0].completed, 32);
    for t in tickets {
        assert!(t.is_ready(), "shutdown returned before a ticket resolved");
        assert!(t.wait().is_ok());
    }
    // Post-shutdown submissions are refused but do not wedge anything.
    assert_eq!(
        server.submit(Request::new(GMM, gmm_args(0))).err(),
        Some(ServeError::ShuttingDown)
    );
}

#[test]
fn expired_deadlines_resolve_without_executing() {
    let server = two_fn_server(
        BatchPolicy {
            max_batch_size: 64,
            max_wait: Duration::from_millis(40),
        },
        1024,
    );
    // The zero-deadline request expires while queued behind max_wait;
    // the live one executes from the same cut.
    let doomed = server
        .submit(Request::new(KMEANS, kmeans_args(0)).with_deadline(Duration::ZERO))
        .unwrap();
    let live = server.submit(Request::new(KMEANS, kmeans_args(1))).unwrap();
    assert!(matches!(
        doomed.wait(),
        Err(ServeError::DeadlineExceeded { .. })
    ));
    assert!(live.wait().is_ok());
    let m = server.shutdown();
    assert_eq!(m.fns[1].expired, 1);
    assert_eq!(m.fns[1].completed, 1);
}

#[test]
fn bounded_shutdown_sheds_what_cannot_drain() {
    // A huge batch size and a long max_wait park every submission in the
    // queue (the dispatcher sleeps on the max_wait timer), so a
    // zero-budget shutdown finds them all still queued — it must shed
    // them promptly as ShuttingDown instead of hanging to execute them.
    let server = two_fn_server(
        BatchPolicy {
            max_batch_size: 64,
            max_wait: Duration::from_secs(30),
        },
        1024,
    );
    const N: usize = 8;
    let tickets: Vec<_> = (0..N)
        .map(|i| {
            server
                .submit(Request::new(GMM, gmm_args(i as u64)))
                .unwrap()
        })
        .collect();
    let started = std::time::Instant::now();
    let m = server.shutdown_within(Duration::ZERO);
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "bounded shutdown took {:?} — it must not wait out max_wait",
        started.elapsed()
    );
    for t in tickets {
        assert!(matches!(t.wait(), Err(ServeError::ShuttingDown)));
    }
    assert_eq!(m.fns[0].shed, N as u64, "every queued request is shed");
    assert_eq!(m.fns[0].completed, 0);
    assert_eq!(m.fns[0].queue_depth, 0);
    // Idempotent with the graceful path: nothing left to drain.
    assert_eq!(
        server.submit(Request::new(GMM, gmm_args(0))).err(),
        Some(ServeError::ShuttingDown)
    );
}

#[test]
fn live_policy_retuning_applies_per_lane() {
    use futhark_ad_repro::RequestKind;
    let server = two_fn_server(
        BatchPolicy {
            max_batch_size: 4,
            max_wait: Duration::from_millis(5),
        },
        1024,
    );
    // Function-level retune is visible immediately...
    let tuned = BatchPolicy {
        max_batch_size: 16,
        max_wait: Duration::from_millis(1),
    };
    server.set_policy(GMM, tuned).unwrap();
    assert_eq!(server.policy(GMM).unwrap(), tuned);
    // ...and lanes without overrides follow it.
    assert_eq!(
        server.lane_policy(GMM, RequestKind::Call, &[]).unwrap(),
        tuned
    );
    // A per-lane override pins that lane only.
    let vjp_lane = BatchPolicy {
        max_batch_size: 2,
        max_wait: Duration::ZERO,
    };
    server
        .set_lane_policy(GMM, RequestKind::Call, &[Transform::Vjp], vjp_lane)
        .unwrap();
    assert_eq!(
        server
            .lane_policy(GMM, RequestKind::Call, &[Transform::Vjp])
            .unwrap(),
        vjp_lane
    );
    assert_eq!(
        server.lane_policy(GMM, RequestKind::Call, &[]).unwrap(),
        tuned
    );
    // Requests still resolve correctly under the retuned policies, and
    // the lanes they rode are enumerable for an external controller.
    assert!(server.call(GMM, gmm_args(1)).is_ok());
    assert!(server.grad(GMM, gmm_args(2)).is_ok());
    let lanes = server.lanes(GMM).unwrap();
    assert!(lanes.contains(&(RequestKind::Call, vec![])));
    assert!(lanes.contains(&(RequestKind::Grad, vec![])));
    // Unknown keys are typed errors, not panics.
    assert!(matches!(
        server.set_policy("nope", tuned),
        Err(ServeError::UnknownFn { .. })
    ));
    server.shutdown();
}
