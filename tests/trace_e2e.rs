//! End-to-end tracing: a single served `[Vjp]` request must produce one
//! *connected* trace — compile spans from the engine, a VM execution
//! span from the worker pool, and serve-side async begin/end events
//! correlated by the request's trace id, whose completion references the
//! batch span it rode in — exported as valid Chrome trace-event JSON.
//!
//! Lives in its own integration-test binary because tracing is
//! process-global state.

use futhark_ad_repro::{BatchPolicy, Engine, Request, ServerBuilder, Transform};
use interp::Value;
use std::time::Duration;
use workloads::gmm;

#[test]
fn served_vjp_request_produces_one_connected_trace() {
    fir_trace::set_enabled(true);

    let server = ServerBuilder::new(Engine::by_name("vm").unwrap())
        .batch_policy(BatchPolicy {
            max_batch_size: 4,
            max_wait: Duration::from_millis(1),
        })
        .register("gmm", &gmm::objective_ir())
        .build()
        .unwrap();
    let mut seeded = gmm::GmmData::generate(20, 3, 2, 0).ir_args();
    seeded.push(Value::F64(1.0));
    let out = server
        .submit(Request::new("gmm", seeded).with_transforms([Transform::Vjp]))
        .unwrap()
        .wait()
        .unwrap();
    let metrics = server.shutdown();
    fir_trace::set_enabled(false);
    let trace = fir_trace::drain();

    assert!(out[0].as_f64().is_finite());
    assert_eq!(metrics.completed(), 1);

    // Spans from all three layers made it into one trace.
    for layer in ["compile", "vm", "serve"] {
        assert!(
            trace.events.iter().any(|e| e.cat == layer),
            "no {layer} events in {:?}",
            trace.events
        );
    }

    // The request's life is an async begin/end pair correlated by one id.
    use fir_trace::EventKind;
    let begin = trace
        .events
        .iter()
        .find(|e| e.kind == EventKind::AsyncBegin && e.cat == "serve" && e.name == "request")
        .expect("request admission event");
    let end = trace
        .events
        .iter()
        .find(|e| e.kind == EventKind::AsyncEnd && e.cat == "serve" && e.name == "request")
        .expect("request completion event");
    assert_eq!(begin.id, end.id, "begin/end correlate by trace id");
    assert_ne!(begin.id, 0);

    // The completion names the batch it rode in, and that batch span
    // exists, started after admission, and carried exactly this request.
    let batch = trace
        .events
        .iter()
        .find(|e| {
            e.kind == EventKind::Span && e.cat == "serve" && e.name == "batch" && e.id == end.arg
        })
        .expect("the batch span the completion references");
    assert_eq!(batch.arg, 1, "one live request in the batch");
    assert!(begin.t0_ns <= batch.t0_ns, "admitted before the batch cut");

    // The derived program executed on the VM inside that batch's window.
    let vm = trace
        .events
        .iter()
        .find(|e| e.kind == EventKind::Span && e.cat == "vm" && e.name.ends_with("_vjp"))
        .expect("VM execution span of the derived program");
    assert!(batch.t0_ns <= vm.t0_ns && vm.t0_ns + vm.dur_ns <= batch.t0_ns + batch.dur_ns);
    assert!(
        vm.t0_ns + vm.dur_ns <= end.t0_ns,
        "fulfilled after the VM finished"
    );

    // The export is valid Chrome trace-event JSON with the right shape.
    let chrome = trace.to_chrome_json();
    let doc = fir_trace::json::parse(&chrome).expect("exported trace parses");
    let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
    assert!(events.len() >= trace.events.len());
    let phase_of = |want_cat: &str, want_ph: &str| {
        events.iter().any(|e| {
            e.get("cat").and_then(|c| c.as_str()) == Some(want_cat)
                && e.get("ph").and_then(|p| p.as_str()) == Some(want_ph)
        })
    };
    assert!(
        phase_of("serve", "b") && phase_of("serve", "e"),
        "async pair exported"
    );
    assert!(phase_of("vm", "X"), "complete-span events exported");

    // The aggregated profile sees the same layers.
    let profile = trace.profile();
    for cat in ["compile", "vm", "serve", "opt"] {
        assert!(
            profile.rows.iter().any(|r| r.cat == cat && r.count > 0),
            "profile missing {cat} rows: {profile}"
        );
    }
}
