//! Differential parity tests: every workload in `crates/workloads` runs
//! through both execution backends — the tree-walking interpreter and the
//! `firvm` bytecode VM — and must produce equal primal values and equal
//! reverse-mode gradients (within 1e-9 relative tolerance; sequential
//! configurations are compared bitwise-identically where float reassociation
//! cannot occur).

use fir::ir::Fun;
use firvm::Vm;
use futhark_ad::gradcheck::{max_rel_error, reverse_gradient};
use interp::{ExecConfig, Interp, Value};
use workloads::{adbench, gmm, kmeans, lstm, mc};

const TOL: f64 = 1e-9;

/// Primal and gradient parity of `fun` across interp and VM, in both
/// sequential and parallel configurations.
fn assert_parity(name: &str, fun: &Fun, args: &[Value]) {
    let interp_seq = Interp::sequential();
    let vm_seq = Vm::sequential();
    let par_cfg = ExecConfig {
        parallel: true,
        num_threads: 4,
        parallel_threshold: 32,
    };
    let interp_par = Interp::with_config(par_cfg.clone());
    let vm_par = Vm::with_config(par_cfg);

    // Primal parity: sequential VM must match sequential interp bitwise
    // (same operations in the same order).
    let pi = interp_seq.run(fun, args);
    let pv = vm_seq.run(fun, args);
    assert_eq!(pi.len(), pv.len(), "{name}: result arity");
    assert_eq!(
        pi[0].as_f64().to_bits(),
        pv[0].as_f64().to_bits(),
        "{name}: primal bitwise"
    );

    // Parallel configurations may reassociate reductions: tolerance-equal.
    let pip = interp_par.run(fun, args)[0].as_f64();
    let pvp = vm_par.run(fun, args)[0].as_f64();
    let denom = pi[0].as_f64().abs().max(1.0);
    assert!(
        (pip - pi[0].as_f64()).abs() / denom < TOL,
        "{name}: interp par primal"
    );
    assert!(
        (pvp - pi[0].as_f64()).abs() / denom < TOL,
        "{name}: vm par primal"
    );

    // Gradient parity on the vjp-transformed program.
    let (vi, gi) = reverse_gradient(&interp_seq, fun, args);
    let (vv, gv) = reverse_gradient(&vm_seq, fun, args);
    assert_eq!(vi.to_bits(), vv.to_bits(), "{name}: vjp primal bitwise");
    assert_eq!(gi.len(), gv.len(), "{name}: gradient length");
    let err = max_rel_error(&gi, &gv);
    assert!(
        err < TOL,
        "{name}: sequential gradient mismatch, max rel err {err:.3e}"
    );

    let (_, gvp) = reverse_gradient(&vm_par, fun, args);
    let err = max_rel_error(&gi, &gvp);
    assert!(
        err < TOL,
        "{name}: parallel VM gradient mismatch, max rel err {err:.3e}"
    );
}

#[test]
fn gmm_backends_agree() {
    let data = gmm::GmmData::generate(40, 4, 5, 1);
    assert_parity("gmm", &gmm::objective_ir(), &data.ir_args());
}

#[test]
fn kmeans_dense_backends_agree() {
    let data = kmeans::KmeansData::generate(200, 4, 5, 2);
    assert_parity(
        "kmeans-dense",
        &kmeans::dense_objective_ir(),
        &data.ir_args(),
    );
}

#[test]
fn kmeans_sparse_backends_agree() {
    let data = kmeans::SparseKmeansData::generate(120, 16, 4, 5, 3);
    assert_parity(
        "kmeans-sparse",
        &kmeans::sparse_objective_ir(),
        &data.ir_args(),
    );
}

#[test]
fn lstm_backends_agree() {
    let data = lstm::LstmData::generate(6, 4, 5, 2, 4);
    assert_parity(
        "lstm",
        &lstm::objective_ir(data.h, data.bs),
        &data.ir_args(),
    );
}

#[test]
fn ba_backends_agree() {
    let data = adbench::BaData::generate(8, 40, 160, 5);
    assert_parity("ba", &adbench::ba_objective_ir(), &data.ir_args());
}

#[test]
fn hand_simple_backends_agree() {
    let data = adbench::HandData::generate(16, 5, 6);
    assert_parity(
        "hand-simple",
        &adbench::hand_objective_ir(false),
        &data.ir_args(false),
    );
}

#[test]
fn hand_complicated_backends_agree() {
    let data = adbench::HandData::generate(16, 5, 7);
    assert_parity(
        "hand-complicated",
        &adbench::hand_objective_ir(true),
        &data.ir_args(true),
    );
}

#[test]
fn dlstm_backends_agree() {
    let data = adbench::DlstmData::generate(10, 6, 6, 8);
    assert_parity(
        "d-lstm",
        &adbench::dlstm_objective_ir(data.h),
        &data.ir_args(),
    );
}

#[test]
fn xsbench_backends_agree() {
    let data = mc::XsData::generate(16, 6, 256, 9);
    assert_parity("xsbench", &mc::xsbench_ir(data.g), &data.ir_args());
}

#[test]
fn rsbench_backends_agree() {
    let data = mc::RsData::generate(6, 4, 3, 128, 10);
    assert_parity("rsbench", &mc::rsbench_ir(4, 3), &data.ir_args());
}

#[test]
fn hessian_programs_run_identically_on_both_backends() {
    // jvp(vjp(f)): the nested-AD output (accumulators inside forward-mode
    // tangents) is the hardest program shape either backend sees.
    use futhark_ad::{jvp, vjp};
    let data = kmeans::KmeansData::generate(30, 3, 4, 11);
    let fun = kmeans::dense_objective_ir();
    let hess = jvp(&vjp(&fun));
    let n = data.n;
    let d = data.d;
    let k = data.k;
    let mut args = data.ir_args();
    args.push(Value::F64(1.0));
    args.push(Value::Arr(interp::Array::zeros(
        fir::types::ScalarType::F64,
        vec![n, d],
    )));
    args.push(Value::Arr(interp::Array::from_f64(
        vec![k, d],
        vec![1.0; k * d],
    )));
    args.push(Value::F64(0.0));
    let i = Interp::sequential().run(&hess, &args);
    let v = Vm::sequential().run(&hess, &args);
    assert_eq!(i.len(), v.len());
    let hv_i = i.last().unwrap().as_arr().f64s();
    let hv_v = v.last().unwrap().as_arr().f64s();
    assert!(max_rel_error(hv_i, hv_v) < TOL);
}

#[test]
fn program_cache_makes_recompilation_free() {
    // A private cache (the global one is shared with concurrently running
    // tests): two structurally identical builds must share one program.
    let cache = firvm::ProgramCache::new();
    let p1 = cache.get_or_compile(&gmm::objective_ir());
    let p2 = cache.get_or_compile(&gmm::objective_ir());
    assert!(
        std::sync::Arc::ptr_eq(&p1, &p2),
        "identical rebuild must hit the cache"
    );
    assert_eq!(cache.len(), 1);

    let data = gmm::GmmData::generate(10, 3, 3, 12);
    let vm = Vm::sequential();
    let a = vm.run_program(&p1, &data.ir_args())[0].as_f64();
    let b = vm.run_program(&p2, &data.ir_args())[0].as_f64();
    let want = Interp::sequential().run(&gmm::objective_ir(), &data.ir_args())[0].as_f64();
    assert_eq!(a.to_bits(), b.to_bits());
    assert_eq!(a.to_bits(), want.to_bits());
}
