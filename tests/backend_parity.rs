//! Differential parity tests: every workload in `crates/workloads` runs
//! through both execution backends — the tree-walking interpreter and the
//! `firvm` bytecode VM — via the staged `Engine` API, and must produce
//! equal primal values and equal reverse-mode gradients (within 1e-9
//! relative tolerance; sequential configurations are compared
//! bitwise-identically where float reassociation cannot occur).

use fir::ir::Fun;
use firvm::Vm;
use futhark_ad::gradcheck::max_rel_error;
use futhark_ad_repro::Engine;
use interp::{ExecConfig, Interp, Value};
use workloads::{adbench, gmm, kmeans, lstm, mc};

const TOL: f64 = 1e-9;

/// Primal and gradient parity of `fun` across interp and VM, in both
/// sequential and parallel configurations, all through `Engine` handles.
fn assert_parity(name: &str, fun: &Fun, args: &[Value]) {
    let par_cfg = ExecConfig {
        parallel: true,
        num_threads: 4,
        parallel_threshold: 32,
    };
    let interp_seq = Engine::by_name("interp-seq").unwrap();
    let vm_seq = Engine::by_name("vm-seq").unwrap();
    let interp_par = Engine::with_backend(Box::new(Interp::with_config(par_cfg.clone())));
    let vm_par = Engine::with_backend(Box::new(Vm::with_config(par_cfg)));

    let ci = interp_seq.compile(fun).unwrap();
    let cv = vm_seq.compile(fun).unwrap();
    let cip = interp_par.compile(fun).unwrap();
    let cvp = vm_par.compile(fun).unwrap();

    // Primal parity: sequential VM must match sequential interp bitwise
    // (same operations in the same order).
    let pi = ci.call(args).unwrap();
    let pv = cv.call(args).unwrap();
    assert_eq!(pi.len(), pv.len(), "{name}: result arity");
    assert_eq!(
        pi[0].as_f64().to_bits(),
        pv[0].as_f64().to_bits(),
        "{name}: primal bitwise"
    );

    // Parallel configurations may reassociate reductions: tolerance-equal.
    let pip = cip.call_scalar(args).unwrap();
    let pvp = cvp.call_scalar(args).unwrap();
    let denom = pi[0].as_f64().abs().max(1.0);
    assert!(
        (pip - pi[0].as_f64()).abs() / denom < TOL,
        "{name}: interp par primal"
    );
    assert!(
        (pvp - pi[0].as_f64()).abs() / denom < TOL,
        "{name}: vm par primal"
    );

    // Gradient parity on the lazily derived vjp handles (seeds derived by
    // the engine from the result types).
    let gi = ci.grad(args).unwrap();
    let gv = cv.grad(args).unwrap();
    assert_eq!(
        gi.scalar().to_bits(),
        gv.scalar().to_bits(),
        "{name}: vjp primal bitwise"
    );
    let (fgi, fgv) = (gi.flat_grads(), gv.flat_grads());
    assert_eq!(fgi.len(), fgv.len(), "{name}: gradient length");
    let err = max_rel_error(&fgi, &fgv);
    assert!(
        err < TOL,
        "{name}: sequential gradient mismatch, max rel err {err:.3e}"
    );

    let gvp = cvp.grad(args).unwrap();
    let err = max_rel_error(&fgi, &gvp.flat_grads());
    assert!(
        err < TOL,
        "{name}: parallel VM gradient mismatch, max rel err {err:.3e}"
    );
}

#[test]
fn gmm_backends_agree() {
    let data = gmm::GmmData::generate(40, 4, 5, 1);
    assert_parity("gmm", &gmm::objective_ir(), &data.ir_args());
}

#[test]
fn kmeans_dense_backends_agree() {
    let data = kmeans::KmeansData::generate(200, 4, 5, 2);
    assert_parity(
        "kmeans-dense",
        &kmeans::dense_objective_ir(),
        &data.ir_args(),
    );
}

#[test]
fn kmeans_sparse_backends_agree() {
    let data = kmeans::SparseKmeansData::generate(120, 16, 4, 5, 3);
    assert_parity(
        "kmeans-sparse",
        &kmeans::sparse_objective_ir(),
        &data.ir_args(),
    );
}

#[test]
fn lstm_backends_agree() {
    let data = lstm::LstmData::generate(6, 4, 5, 2, 4);
    assert_parity(
        "lstm",
        &lstm::objective_ir(data.h, data.bs),
        &data.ir_args(),
    );
}

#[test]
fn ba_backends_agree() {
    let data = adbench::BaData::generate(8, 40, 160, 5);
    assert_parity("ba", &adbench::ba_objective_ir(), &data.ir_args());
}

#[test]
fn hand_simple_backends_agree() {
    let data = adbench::HandData::generate(16, 5, 6);
    assert_parity(
        "hand-simple",
        &adbench::hand_objective_ir(false),
        &data.ir_args(false),
    );
}

#[test]
fn hand_complicated_backends_agree() {
    let data = adbench::HandData::generate(16, 5, 7);
    assert_parity(
        "hand-complicated",
        &adbench::hand_objective_ir(true),
        &data.ir_args(true),
    );
}

#[test]
fn dlstm_backends_agree() {
    let data = adbench::DlstmData::generate(10, 6, 6, 8);
    assert_parity(
        "d-lstm",
        &adbench::dlstm_objective_ir(data.h),
        &data.ir_args(),
    );
}

#[test]
fn xsbench_backends_agree() {
    let data = mc::XsData::generate(16, 6, 256, 9);
    assert_parity("xsbench", &mc::xsbench_ir(data.g), &data.ir_args());
}

#[test]
fn rsbench_backends_agree() {
    let data = mc::RsData::generate(6, 4, 3, 128, 10);
    assert_parity("rsbench", &mc::rsbench_ir(4, 3), &data.ir_args());
}

#[test]
fn hessian_programs_run_identically_on_both_backends() {
    // hvp (jvp ∘ vjp): the nested-AD output (accumulators inside
    // forward-mode tangents) is the hardest program shape either backend
    // sees. Seeds and tangents are derived by the engine.
    let data = kmeans::KmeansData::generate(30, 3, 4, 11);
    let fun = kmeans::dense_objective_ir();
    let ones = Value::Arr(interp::Array::from_f64(
        vec![data.k, data.d],
        vec![1.0; data.k * data.d],
    ));
    let hv_i = Engine::by_name("interp-seq")
        .unwrap()
        .compile(&fun)
        .unwrap()
        .hvp(&data.ir_args(), &[(1, ones.clone())])
        .unwrap();
    let hv_v = Engine::by_name("vm-seq")
        .unwrap()
        .compile(&fun)
        .unwrap()
        .hvp(&data.ir_args(), &[(1, ones)])
        .unwrap();
    assert_eq!(hv_i.len(), hv_v.len());
    assert!(max_rel_error(hv_i[1].as_arr().f64s(), hv_v[1].as_arr().f64s()) < TOL);
}

#[test]
fn program_cache_makes_recompilation_free() {
    // A private cache (the global one is shared with concurrently running
    // tests): two structurally identical builds must share one program.
    let cache = firvm::ProgramCache::new();
    let p1 = cache.get_or_compile(&gmm::objective_ir());
    let p2 = cache.get_or_compile(&gmm::objective_ir());
    assert!(
        std::sync::Arc::ptr_eq(&p1, &p2),
        "identical rebuild must hit the cache"
    );
    assert_eq!(cache.len(), 1);

    let data = gmm::GmmData::generate(10, 3, 3, 12);
    let vm = Vm::sequential();
    let a = vm.run_program(&p1, &data.ir_args())[0].as_f64();
    let b = vm.run_program(&p2, &data.ir_args())[0].as_f64();
    let want = Engine::by_name("interp-seq")
        .unwrap()
        .with_pipeline(futhark_ad_repro::PassPipeline::none())
        .compile(&gmm::objective_ir())
        .unwrap()
        .call_scalar(&data.ir_args())
        .unwrap();
    assert_eq!(a.to_bits(), b.to_bits());
    assert_eq!(a.to_bits(), want.to_bits());
}
