//! Property-based tests (proptest): randomized programs and inputs, with
//! reverse-mode AD (through the staged `Engine` API) checked against finite
//! differences and against the tape-based baseline, and the engine checked
//! for parallel/sequential and raw/simplified agreement.

use fir::builder::Builder;
use fir::ir::{Atom, Fun};
use fir::types::Type;
use futhark_ad::gradcheck::{finite_diff_gradient, max_rel_error};
use futhark_ad_repro::{Engine, PassPipeline};
use interp::{ExecConfig, Interp, Value};
use proptest::prelude::*;

/// A small random scalar expression DAG over two inputs, interpreted as a
/// chain of binary operations chosen by `ops`.
fn build_scalar_chain(ops: &[u8]) -> Fun {
    let mut b = Builder::new();
    b.build_fun("chain", &[Type::F64, Type::F64], |b, ps| {
        let mut vals = vec![Atom::Var(ps[0]), Atom::Var(ps[1])];
        for (i, op) in ops.iter().enumerate() {
            let a = vals[i % vals.len()];
            let c = vals[(i + 1) % vals.len()];
            let v = match op % 6 {
                0 => b.fadd(a, c),
                1 => b.fmul(a, c),
                2 => b.fsub(a, c),
                3 => {
                    let s = b.fsin(a);
                    b.fadd(s, c)
                }
                4 => {
                    let e = b.fmul(a, Atom::f64(0.25));
                    let ex = b.fexp(e);
                    b.fadd(ex, c)
                }
                _ => {
                    let m = b.fmax(a, c);
                    b.fadd(m, Atom::f64(0.5))
                }
            };
            vals.push(v);
        }
        vec![*vals.last().unwrap()]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn reverse_ad_matches_finite_differences_on_random_scalar_chains(
        ops in proptest::collection::vec(any::<u8>(), 1..12),
        x in -1.5f64..1.5,
        y in -1.5f64..1.5,
    ) {
        let fun = build_scalar_chain(&ops);
        let args = [Value::F64(x), Value::F64(y)];
        let engine = Engine::by_name("interp-seq").unwrap();
        let ad = engine.compile(&fun).unwrap().grad(&args).unwrap().flat_grads();
        let fd = finite_diff_gradient(&Interp::sequential(), &fun, &args, 1e-6);
        prop_assert!(max_rel_error(&ad, &fd) < 1e-3);
    }

    #[test]
    fn reverse_ad_matches_tape_baseline_on_array_programs(
        xs in proptest::collection::vec(-2.0f64..2.0, 1..24),
        c in -1.0f64..1.0,
    ) {
        let mut b = Builder::new();
        let fun = b.build_fun("arrprog", &[Type::arr_f64(1), Type::F64], |b, ps| {
            let cv = Atom::Var(ps[1]);
            let ys = b.map1(Type::arr_f64(1), &[ps[0]], |b, es| {
                let t = b.ftanh(es[0].into());
                vec![b.fmul(t, cv)]
            });
            let s = b.scan_add(ys);
            let m = b.maximum(s);
            let total = b.sum(s);
            vec![b.fadd(m.into(), total.into())]
        });
        let args = [Value::from(xs), Value::F64(c)];
        let engine = Engine::by_name("interp-seq").unwrap();
        let g = engine.compile(&fun).unwrap().grad(&args).unwrap();
        let tape = tape_ad::gradient(&fun, &args);
        prop_assert!((g.scalar() - tape.value).abs() < 1e-9);
        prop_assert!(max_rel_error(&g.flat_grads(), &tape.gradient) < 1e-7);
    }

    #[test]
    fn parallel_and_sequential_execution_agree(
        xs in proptest::collection::vec(-1.0f64..1.0, 8..64),
    ) {
        let mut b = Builder::new();
        let fun = b.build_fun("sumexp", &[Type::arr_f64(1)], |b, ps| {
            let ys = b.map1(Type::arr_f64(1), &[ps[0]], |b, es| {
                let e = b.fexp(es[0].into());
                vec![b.fmul(e, es[0].into())]
            });
            vec![b.sum(ys).into()]
        });
        let args = [Value::from(xs)];
        let a = Engine::by_name("interp-seq").unwrap()
            .compile(&fun).unwrap().call_scalar(&args).unwrap();
        let par = Engine::with_backend(Box::new(Interp::with_config(
            ExecConfig { parallel: true, num_threads: 4, parallel_threshold: 4 },
        )));
        let p = par.compile(&fun).unwrap().call_scalar(&args).unwrap();
        prop_assert!((a - p).abs() <= 1e-9 * a.abs().max(1.0));
    }

    #[test]
    fn simplification_preserves_random_program_semantics(
        ops in proptest::collection::vec(any::<u8>(), 1..10),
        x in -1.0f64..1.0,
        y in -1.0f64..1.0,
    ) {
        let fun = build_scalar_chain(&ops);
        let dfun = futhark_ad::vjp(&fun);
        let raw = Engine::by_name("interp-seq").unwrap()
            .with_pipeline(PassPipeline::none());
        let simplified = Engine::by_name("interp-seq").unwrap();
        let args = [Value::F64(x), Value::F64(y), Value::F64(1.0)];
        let a = raw.compile(&dfun).unwrap().call(&args).unwrap();
        let b2 = simplified.compile(&dfun).unwrap().call(&args).unwrap();
        for (u, v) in a.iter().zip(&b2) {
            prop_assert!((u.as_f64() - v.as_f64()).abs() < 1e-12);
        }
    }
}
