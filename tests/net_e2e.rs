//! End-to-end tests for the fir-net tier: every paper workload served
//! over a real TCP socket must produce **bitwise-identical** results to
//! the same engine called in-process, quota sheds must name the tenant,
//! the adaptive controller must actually retune, and the wire-level
//! shutdown op must drain cleanly.

use std::time::Duration;

use futhark_ad_repro::fir_net::{
    AdaptiveConfig, NetClient, NetError, NetServerBuilder, TenantConfig, TenantPolicy,
};
use futhark_ad_repro::{Engine, Transform};
use interp::Value;
use workloads::{adbench, gmm, kmeans, lstm, mc};

struct Workload {
    key: &'static str,
    fun: fir::ir::Fun,
    args: Vec<Value>,
}

/// The nine paper workloads with small deterministic instances.
fn nine_workloads() -> Vec<Workload> {
    let lstm_data = lstm::LstmData::generate(4, 3, 4, 2, 0);
    let dlstm_data = adbench::DlstmData::generate(8, 4, 4, 0);
    let hand_s = adbench::HandData::generate(8, 4, 6);
    let hand_c = adbench::HandData::generate(8, 4, 7);
    let xs = mc::XsData::generate(8, 4, 64, 0);
    vec![
        Workload {
            key: "gmm",
            fun: gmm::objective_ir(),
            args: gmm::GmmData::generate(20, 3, 2, 1).ir_args(),
        },
        Workload {
            key: "kmeans-dense",
            fun: kmeans::dense_objective_ir(),
            args: kmeans::KmeansData::generate(30, 3, 4, 2).ir_args(),
        },
        Workload {
            key: "kmeans-sparse",
            fun: kmeans::sparse_objective_ir(),
            args: kmeans::SparseKmeansData::generate(40, 8, 4, 5, 3).ir_args(),
        },
        Workload {
            key: "lstm",
            fun: lstm::objective_ir(lstm_data.h, lstm_data.bs),
            args: lstm_data.ir_args(),
        },
        Workload {
            key: "ba",
            fun: adbench::ba_objective_ir(),
            args: adbench::BaData::generate(4, 12, 24, 5).ir_args(),
        },
        Workload {
            key: "hand-simple",
            fun: adbench::hand_objective_ir(false),
            args: hand_s.ir_args(false),
        },
        Workload {
            key: "hand-complicated",
            fun: adbench::hand_objective_ir(true),
            args: hand_c.ir_args(true),
        },
        Workload {
            key: "d-lstm",
            fun: adbench::dlstm_objective_ir(dlstm_data.h),
            args: dlstm_data.ir_args(),
        },
        Workload {
            key: "xsbench",
            fun: mc::xsbench_ir(xs.g),
            args: xs.ir_args(),
        },
    ]
}

fn assert_bitwise(what: &str, got: &[Value], want: &[Value]) {
    assert_eq!(got.len(), want.len(), "{what}: arity differs");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        match (g, w) {
            (Value::F64(g), Value::F64(w)) => {
                assert_eq!(g.to_bits(), w.to_bits(), "{what}[{i}]")
            }
            (Value::I64(g), Value::I64(w)) => assert_eq!(g, w, "{what}[{i}]"),
            (Value::Bool(g), Value::Bool(w)) => assert_eq!(g, w, "{what}[{i}]"),
            (Value::Arr(g), Value::Arr(w)) => {
                assert_eq!(g.shape, w.shape, "{what}[{i}] shape");
                assert_eq!(g.elem(), w.elem(), "{what}[{i}] elem");
                if g.elem() == fir::types::ScalarType::F64 {
                    for (j, (a, b)) in g.f64s().iter().zip(w.f64s()).enumerate() {
                        assert_eq!(a.to_bits(), b.to_bits(), "{what}[{i}][{j}]");
                    }
                } else if g.elem() == fir::types::ScalarType::I64 {
                    assert_eq!(g.i64s(), w.i64s(), "{what}[{i}]");
                } else {
                    assert_eq!(g.bools(), w.bools(), "{what}[{i}]");
                }
            }
            _ => panic!("{what}[{i}]: type changed over the wire"),
        }
    }
}

#[test]
fn nine_workloads_bitwise_identical_over_wire() {
    let workloads = nine_workloads();
    let mut builder = NetServerBuilder::new(Engine::by_name("vm-seq").unwrap())
        .shards(2)
        .warmup(&[&[], &[Transform::Vjp]]);
    for w in &workloads {
        builder = builder.register(w.key, &w.fun);
    }
    let server = builder.bind("127.0.0.1:0").unwrap();
    let mut client = NetClient::connect(&server.local_addr().to_string()).unwrap();

    // The in-process reference: the same backend, called directly.
    let reference = Engine::by_name("vm-seq").unwrap();
    for w in &workloads {
        let cf = reference.compile(&w.fun).unwrap();
        let want = cf.call(&w.args).unwrap();
        let got = client.call(w.key, w.args.clone()).unwrap();
        assert_bitwise(&format!("{} call", w.key), &got, &want);

        let want = cf.grad(&w.args).unwrap();
        let got = client.grad(w.key, w.args.clone()).unwrap();
        assert_bitwise(&format!("{} grad value", w.key), &got.value, &want.value);
        assert_bitwise(&format!("{} grads", w.key), &got.grads, &want.grads);
    }

    // A transformed ([Vjp]) request over the wire: primal + adjoints of
    // the seeded program, identical to the in-process gradient.
    let w = &workloads[0];
    let mut seeded = w.args.clone();
    seeded.push(Value::F64(1.0));
    let got = client.call_t(w.key, &[Transform::Vjp], seeded).unwrap();
    let want = reference.compile(&w.fun).unwrap().grad(&w.args).unwrap();
    assert_eq!(got[0].as_f64().to_bits(), want.scalar().to_bits());

    // Unknown functions come back as a typed remote error, not a hang.
    match client.call("nope", vec![]) {
        Err(NetError::Remote(e)) => assert_eq!(e.code, "unknown_fn"),
        other => panic!("expected remote unknown_fn, got {other:?}"),
    }

    let metrics = server.shutdown();
    assert!(metrics.completed() >= 18, "two requests per workload");
    let net = metrics.net.expect("net section present");
    assert_eq!(net.connections_accepted, 1);
    assert!(net.frames_received >= 20);
    assert_eq!(net.protocol_errors, 0);
}

#[test]
fn over_quota_tenant_is_shed_by_name() {
    let server = NetServerBuilder::new(Engine::by_name("vm-seq").unwrap())
        .register("gmm", &gmm::objective_ir())
        .tenant_policy(
            TenantPolicy::default()
                .tenant(
                    "free",
                    TenantConfig {
                        rate_per_sec: 0.001, // effectively no refill in-test
                        burst: 2.0,
                        weight: 1,
                    },
                )
                .tenant("pro", TenantConfig::unlimited()),
        )
        .bind("127.0.0.1:0")
        .unwrap();
    let addr = server.local_addr().to_string();
    let args = gmm::GmmData::generate(10, 2, 2, 1).ir_args();

    let mut free = NetClient::connect(&addr).unwrap().with_tenant("free");
    // Burst of 2 admits, the third is shed with a typed error that
    // names the tenant.
    free.call("gmm", args.clone()).unwrap();
    free.call("gmm", args.clone()).unwrap();
    match free.call("gmm", args.clone()) {
        Err(NetError::Remote(e)) => {
            assert_eq!(e.code, "overloaded");
            assert_eq!(e.tenant.as_deref(), Some("free"));
            assert!(e.message.contains("\"free\""), "{}", e.message);
        }
        other => panic!("expected an overloaded shed, got {other:?}"),
    }
    // A different tenant on the same server is unaffected.
    let mut pro = NetClient::connect(&addr).unwrap().with_tenant("pro");
    pro.call("gmm", args.clone()).unwrap();

    // The metrics op reports the per-tenant ledger over the wire.
    let m = pro.metrics_json().unwrap();
    let parsed = fir_trace::json::parse(&m).unwrap();
    let net = parsed.get("net").expect("net section in metrics JSON");
    let tenants = net.get("tenants").and_then(|t| t.as_arr()).unwrap();
    let free_row = tenants
        .iter()
        .find(|t| t.get("tenant").and_then(|n| n.as_str()) == Some("free"))
        .expect("free tenant in snapshot");
    assert_eq!(free_row.get("admitted").and_then(|v| v.as_num()), Some(2.0));
    assert_eq!(free_row.get("shed").and_then(|v| v.as_num()), Some(1.0));

    let metrics = server.shutdown();
    let net = metrics.net.unwrap();
    let free_row = net.tenants.iter().find(|t| t.tenant == "free").unwrap();
    assert_eq!((free_row.admitted, free_row.shed), (2, 1));
}

#[test]
fn adaptive_controller_retunes_under_load() {
    // An SLO of zero makes every completed window a violation, so the
    // controller must halve the (generous) initial max_wait — the test
    // asserts adjustments actually happen and results stay correct.
    let server = NetServerBuilder::new(Engine::by_name("vm-seq").unwrap())
        .register("gmm", &gmm::objective_ir())
        .batch_policy(futhark_ad_repro::BatchPolicy {
            max_batch_size: 8,
            max_wait: Duration::from_millis(4),
        })
        .adaptive(AdaptiveConfig {
            interval: Duration::from_millis(5),
            slo: Duration::ZERO,
            ..AdaptiveConfig::default()
        })
        .bind("127.0.0.1:0")
        .unwrap();
    let mut client = NetClient::connect(&server.local_addr().to_string()).unwrap();
    let args = gmm::GmmData::generate(10, 2, 2, 1).ir_args();
    let want = client.call("gmm", args.clone()).unwrap()[0].as_f64();

    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        // Keep traffic flowing so every controller window sees
        // completions (pipelined, 8 at a time).
        let ids: Vec<u64> = (0..8)
            .map(|_| client.send_call("gmm", &[], args.clone(), None).unwrap())
            .collect();
        for id in ids {
            let (got_id, resp) = client.recv().unwrap();
            assert_eq!(got_id, id);
            match resp {
                futhark_ad_repro::fir_net::WireResponse::Values(vs) => {
                    assert_eq!(vs[0].as_f64().to_bits(), want.to_bits())
                }
                other => panic!("unexpected response {other:?}"),
            }
        }
        let n = server.metrics().net.unwrap().adaptive_adjustments;
        if n > 0 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "controller made no adjustment within 10s"
        );
    }
    server.shutdown();
}

#[test]
fn wire_shutdown_op_drains_cleanly() {
    let server = NetServerBuilder::new(Engine::by_name("vm-seq").unwrap())
        .register("gmm", &gmm::objective_ir())
        .bind("127.0.0.1:0")
        .unwrap();
    let addr = server.local_addr().to_string();
    let done = std::thread::spawn(move || {
        server.run_until_shutdown_requested();
        server.shutdown_within(Duration::from_secs(5))
    });

    let mut client = NetClient::connect(&addr).unwrap();
    client.ping().unwrap();
    let args = gmm::GmmData::generate(10, 2, 2, 1).ir_args();
    client.call("gmm", args).unwrap();
    client.shutdown_server().unwrap();

    let metrics = done.join().unwrap();
    assert!(metrics.completed() >= 1);
    // Post-shutdown connections are refused or dropped without a reply.
    match NetClient::connect(&addr) {
        Err(_) => {}
        Ok(mut c) => assert!(c.ping().is_err()),
    }
}
