//! Cross-crate integration tests: the staged `Engine` API, the AD engine,
//! the optimizer, both baselines and the workloads, exercised together end
//! to end.

use futhark_ad::gradcheck::max_rel_error;
use futhark_ad::stripmine_loops;
use futhark_ad_repro::{Engine, PassPipeline};
use interp::{ExecConfig, Interp, Value};
use workloads::{adbench, gmm, kmeans, lstm, mc};

#[test]
fn all_three_ad_engines_agree_on_gmm() {
    let data = gmm::GmmData::generate(20, 4, 3, 1);
    let fun = gmm::objective_ir();
    let cf = Engine::by_name("interp-seq")
        .unwrap()
        .compile(&fun)
        .unwrap();
    let g = cf.grad(&data.ir_args()).unwrap();
    let (v1, g1) = (g.scalar(), g.flat_grads());
    let tape = tape_ad::gradient(&fun, &data.ir_args());
    assert!((v1 - tape.value).abs() < 1e-10);
    assert!(max_rel_error(&g1, &tape.gradient) < 1e-8);
    let (v3, g3) = gmm::gradient_tensor(&data);
    assert!((v1 - v3).abs() < 1e-9);
    // The tensor baseline only returns parameter gradients.
    let offset = data.n * data.d;
    assert!(max_rel_error(&g1[offset..], &g3) < 1e-7);
}

#[test]
fn parallel_and_sequential_gradients_agree() {
    let data = kmeans::KmeansData::generate(3000, 4, 5, 2);
    let fun = kmeans::dense_objective_ir();
    let seq = Engine::by_name("interp-seq")
        .unwrap()
        .compile(&fun)
        .unwrap();
    let par = Engine::with_backend(Box::new(Interp::with_config(ExecConfig {
        parallel: true,
        num_threads: 8,
        parallel_threshold: 64,
    })))
    .compile(&fun)
    .unwrap();
    let gs = seq.grad(&data.ir_args()).unwrap();
    let gp = par.grad(&data.ir_args()).unwrap();
    assert!((gs.scalar() - gp.scalar()).abs() < 1e-9);
    let cs = gs.grads[1].as_arr().f64s();
    let cp = gp.grads[1].as_arr().f64s();
    assert!(max_rel_error(cs, cp) < 1e-9);
}

#[test]
fn simplification_preserves_gradients_of_workloads() {
    // The same vjp-transformed objective compiled through an engine with
    // the pipeline disabled and one with the standard pipeline: identical
    // results, in fewer statements.
    let data = adbench::HandData::generate(10, 4, 3);
    let fun = adbench::hand_objective_ir(false);
    let dfun = futhark_ad::vjp(&fun);
    let raw = Engine::by_name("interp-seq")
        .unwrap()
        .with_pipeline(PassPipeline::none())
        .compile(&dfun)
        .unwrap();
    let simplified = Engine::by_name("interp-seq")
        .unwrap()
        .compile(&dfun)
        .unwrap();
    assert!(fir_opt::count_stms(simplified.fun()) <= fir_opt::count_stms(raw.fun()));
    let mut args = data.ir_args(false);
    args.push(Value::F64(1.0));
    let a = raw.call(&args).unwrap();
    let b = simplified.call(&args).unwrap();
    assert!((a[0].as_f64() - b[0].as_f64()).abs() < 1e-12);
    assert!(max_rel_error(a[1].as_arr().f64s(), b[1].as_arr().f64s()) < 1e-12);
}

#[test]
fn stripmining_preserves_lstm_style_recurrences() {
    let data = adbench::DlstmData::generate(8, 4, 4, 4);
    let fun = adbench::dlstm_objective_ir(data.h);
    let engine = Engine::by_name("interp-seq").unwrap();
    let g0 = engine.compile(&fun).unwrap().grad(&data.ir_args()).unwrap();
    let sm = stripmine_loops(&fun, 3);
    let g1 = engine.compile(&sm).unwrap().grad(&data.ir_args()).unwrap();
    assert!((g0.scalar() - g1.scalar()).abs() < 1e-10);
    assert!(max_rel_error(&g0.flat_grads(), &g1.flat_grads()) < 1e-8);
}

#[test]
fn forward_over_reverse_is_consistent_with_two_reverse_passes() {
    // Hessian-vector product check on the k-means cost: (H·1) computed by
    // hvp (jvp ∘ vjp) should match finite differences of the gradient.
    let data = kmeans::KmeansData::generate(50, 3, 4, 5);
    let fun = kmeans::dense_objective_ir();
    let engine = Engine::by_name("interp-seq").unwrap();
    let cf = engine.compile(&fun).unwrap();
    let d = data.d;
    let k = data.k;
    let ones = Value::Arr(interp::Array::from_f64(vec![k, d], vec![1.0; k * d]));
    let hv_out = cf.hvp(&data.ir_args(), &[(1, ones)]).unwrap();
    let hv = hv_out[1].as_arr().f64s().to_vec();
    // Finite difference of the gradient along the all-ones direction.
    let eps = 1e-6;
    let grad_at = |centers: &[f64]| -> Vec<f64> {
        let mut d2 = data.clone();
        d2.centers = centers.to_vec();
        cf.grad(&d2.ir_args()).unwrap().grads[1]
            .as_arr()
            .f64s()
            .to_vec()
    };
    let plus: Vec<f64> = data.centers.iter().map(|x| x + eps).collect();
    let minus: Vec<f64> = data.centers.iter().map(|x| x - eps).collect();
    let gp = grad_at(&plus);
    let gm = grad_at(&minus);
    let fd: Vec<f64> = gp
        .iter()
        .zip(&gm)
        .map(|(a, b)| (a - b) / (2.0 * eps))
        .collect();
    assert!(max_rel_error(&hv, &fd) < 1e-4);
}

#[test]
fn monte_carlo_kernels_run_in_parallel_with_ad() {
    let data = mc::XsData::generate(32, 8, 4096, 9);
    let fun = mc::xsbench_ir(data.g);
    let cf = Engine::by_name("interp").unwrap().compile(&fun).unwrap();
    let g = cf.grad(&data.ir_args()).unwrap();
    assert!(g.scalar().is_finite());
    assert_eq!(g.grads[0].as_arr().f64s().len(), data.nuclides * data.g);
}

#[test]
fn lstm_gradient_matches_tensor_baseline_end_to_end() {
    let data = lstm::LstmData::generate(4, 3, 4, 2, 11);
    let fun = lstm::objective_ir(data.h, data.bs);
    let cf = Engine::by_name("interp-seq")
        .unwrap()
        .compile(&fun)
        .unwrap();
    let ad = cf.grad(&data.ir_args()).unwrap().flat_grads();
    let (_, tgrad) = lstm::tensor_gradient(&data);
    let offset = data.seq * data.d * data.bs;
    assert!(max_rel_error(&ad[offset..], &tgrad) < 1e-7);
}
