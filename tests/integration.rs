//! Cross-crate integration tests: the AD engine, the optimizer, both
//! baselines and the workloads, exercised together end to end.

use futhark_ad::gradcheck::{max_rel_error, reverse_gradient};
use futhark_ad::{jvp, stripmine_loops, vjp};
use interp::{ExecConfig, Interp, Value};
use workloads::{adbench, gmm, kmeans, lstm, mc};

#[test]
fn all_three_ad_engines_agree_on_gmm() {
    let data = gmm::GmmData::generate(20, 4, 3, 1);
    let fun = gmm::objective_ir();
    let interp = Interp::sequential();
    let (v1, g1) = reverse_gradient(&interp, &fun, &data.ir_args());
    let tape = tape_ad::gradient(&fun, &data.ir_args());
    assert!((v1 - tape.value).abs() < 1e-10);
    assert!(max_rel_error(&g1, &tape.gradient) < 1e-8);
    let (v3, g3) = gmm::gradient_tensor(&data);
    assert!((v1 - v3).abs() < 1e-9);
    // The tensor baseline only returns parameter gradients.
    let offset = data.n * data.d;
    assert!(max_rel_error(&g1[offset..], &g3) < 1e-7);
}

#[test]
fn parallel_and_sequential_gradients_agree() {
    let data = kmeans::KmeansData::generate(3000, 4, 5, 2);
    let fun = kmeans::dense_objective_ir();
    let dfun = vjp(&fun);
    let mut args = data.ir_args();
    args.push(Value::F64(1.0));
    let seq = Interp::sequential().run(&dfun, &args);
    let par = Interp::with_config(ExecConfig {
        parallel: true,
        num_threads: 8,
        parallel_threshold: 64,
    })
    .run(&dfun, &args);
    assert!((seq[0].as_f64() - par[0].as_f64()).abs() < 1e-9);
    let gs = seq[2].as_arr().f64s();
    let gp = par[2].as_arr().f64s();
    assert!(max_rel_error(gs, gp) < 1e-9);
}

#[test]
fn simplification_preserves_gradients_of_workloads() {
    let data = adbench::HandData::generate(10, 4, 3);
    let fun = adbench::hand_objective_ir(false);
    let dfun = vjp(&fun);
    let simplified = fir_opt::simplify(&dfun);
    fir::typecheck::check_fun(&simplified).unwrap();
    let mut args = data.ir_args(false);
    args.push(Value::F64(1.0));
    let interp = Interp::sequential();
    let a = interp.run(&dfun, &args);
    let b = interp.run(&simplified, &args);
    assert!((a[0].as_f64() - b[0].as_f64()).abs() < 1e-12);
    assert!(max_rel_error(a[1].as_arr().f64s(), b[1].as_arr().f64s()) < 1e-12);
}

#[test]
fn stripmining_preserves_lstm_style_recurrences() {
    let data = adbench::DlstmData::generate(8, 4, 4, 4);
    let fun = adbench::dlstm_objective_ir(data.h);
    let interp = Interp::sequential();
    let (v0, g0) = reverse_gradient(&interp, &fun, &data.ir_args());
    let sm = stripmine_loops(&fun, 3);
    let (v1, g1) = reverse_gradient(&interp, &sm, &data.ir_args());
    assert!((v0 - v1).abs() < 1e-10);
    assert!(max_rel_error(&g0, &g1) < 1e-8);
}

#[test]
fn forward_over_reverse_is_consistent_with_two_reverse_passes() {
    // Hessian-vector product check on the k-means cost: (H·1) computed by
    // jvp(vjp) should match finite differences of the gradient.
    let data = kmeans::KmeansData::generate(50, 3, 4, 5);
    let fun = kmeans::dense_objective_ir();
    let grad_fun = vjp(&fun);
    let hess_fun = jvp(&grad_fun);
    let interp = Interp::sequential();
    let n = data.n;
    let d = data.d;
    let k = data.k;
    let mut args = data.ir_args();
    args.push(Value::F64(1.0));
    args.push(Value::Arr(interp::Array::zeros(
        fir::types::ScalarType::F64,
        vec![n, d],
    )));
    args.push(Value::Arr(interp::Array::from_f64(
        vec![k, d],
        vec![1.0; k * d],
    )));
    args.push(Value::F64(0.0));
    let out = interp.run(&hess_fun, &args);
    let hv = out.last().unwrap().as_arr().f64s().to_vec();
    // Finite difference of the gradient along the all-ones direction.
    let eps = 1e-6;
    let grad_at = |centers: &[f64]| -> Vec<f64> {
        let mut d2 = data.clone();
        d2.centers = centers.to_vec();
        let mut a = d2.ir_args();
        a.push(Value::F64(1.0));
        interp.run(&grad_fun, &a)[2].as_arr().f64s().to_vec()
    };
    let plus: Vec<f64> = data.centers.iter().map(|x| x + eps).collect();
    let minus: Vec<f64> = data.centers.iter().map(|x| x - eps).collect();
    let gp = grad_at(&plus);
    let gm = grad_at(&minus);
    let fd: Vec<f64> = gp
        .iter()
        .zip(&gm)
        .map(|(a, b)| (a - b) / (2.0 * eps))
        .collect();
    assert!(max_rel_error(&hv, &fd) < 1e-4);
}

#[test]
fn monte_carlo_kernels_run_in_parallel_with_ad() {
    let data = mc::XsData::generate(32, 8, 4096, 9);
    let fun = mc::xsbench_ir(data.g);
    let dfun = vjp(&fun);
    let mut args = data.ir_args();
    args.push(Value::F64(1.0));
    let out = Interp::new().run(&dfun, &args);
    assert!(out[0].as_f64().is_finite());
    assert_eq!(out[1].as_arr().f64s().len(), data.nuclides * data.g);
}

#[test]
fn lstm_gradient_matches_tensor_baseline_end_to_end() {
    let data = lstm::LstmData::generate(4, 3, 4, 2, 11);
    let fun = lstm::objective_ir(data.h, data.bs);
    let interp = Interp::sequential();
    let (_, ad) = reverse_gradient(&interp, &fun, &data.ir_args());
    let (_, tgrad) = lstm::tensor_gradient(&data);
    let offset = data.seq * data.d * data.bs;
    assert!(max_rel_error(&ad[offset..], &tgrad) < 1e-7);
}
