//! Error-path coverage for the staged API: arity mismatches, argument type
//! mismatches, and ill-typed IR must surface as `Err(FirError)` through
//! `Engine::compile` and the `CompiledFn` call surface on **both**
//! backends — never a panic. (The seed backends panicked on all three.)

use fir::builder::Builder;
use fir::ir::{Atom, Body, Exp, Fun, Param, Stm, UnOp, VarId};
use fir::types::Type;
use futhark_ad_repro::{Engine, FirError, BACKEND_NAMES};
use interp::{ExecError, Value};

fn square() -> Fun {
    let mut b = Builder::new();
    b.build_fun("sq", &[Type::F64], |b, ps| {
        vec![b.fmul(ps[0].into(), ps[0].into())]
    })
}

fn dot() -> Fun {
    let mut b = Builder::new();
    b.build_fun("dot", &[Type::arr_f64(1), Type::arr_f64(1)], |b, ps| {
        let prods = b.map1(Type::arr_f64(1), &[ps[0], ps[1]], |b, es| {
            vec![b.fmul(es[0].into(), es[1].into())]
        });
        vec![b.sum(prods).into()]
    })
}

/// An IR function referring to an unbound variable (structurally invalid).
fn ill_typed() -> Fun {
    Fun {
        name: "unbound".into(),
        params: vec![],
        body: Body::new(
            vec![Stm::new(
                vec![Param::new(VarId(1), Type::F64)],
                Exp::UnOp(UnOp::Sin, Atom::Var(VarId(99))),
            )],
            vec![Atom::Var(VarId(1))],
        ),
        ret: vec![Type::F64],
    }
}

#[test]
fn arity_mismatch_is_an_error_on_both_backends() {
    for name in ["interp-seq", "vm-seq"] {
        let cf = Engine::by_name(name).unwrap().compile(&square()).unwrap();
        match cf.call(&[]) {
            Err(FirError::Exec(ExecError::Arity {
                expected: 1,
                got: 0,
                ..
            })) => {}
            other => panic!("{name}: expected arity error, got {other:?}"),
        }
        match cf.call(&[Value::F64(1.0), Value::F64(2.0)]) {
            Err(FirError::Exec(ExecError::Arity {
                expected: 1,
                got: 2,
                ..
            })) => {}
            other => panic!("{name}: expected arity error, got {other:?}"),
        }
        // The seeded conveniences validate too.
        assert!(cf.grad(&[]).is_err());
        assert!(cf.pushforward(&[], &[]).is_err());
        assert!(cf.hvp(&[], &[]).is_err());
    }
}

#[test]
fn argument_type_mismatch_is_an_error_on_both_backends() {
    for name in ["interp-seq", "vm-seq"] {
        let cf = Engine::by_name(name).unwrap().compile(&square()).unwrap();
        match cf.call(&[Value::I64(3)]) {
            Err(FirError::Exec(ExecError::ArgType { index: 0, .. })) => {}
            other => panic!("{name}: expected type error, got {other:?}"),
        }
        // Rank mismatch: a matrix where a vector is expected.
        let cf = Engine::by_name(name).unwrap().compile(&dot()).unwrap();
        let mat = Value::Arr(interp::Array::zeros(
            fir::types::ScalarType::F64,
            vec![2, 2],
        ));
        match cf.call(&[mat, Value::from(vec![1.0])]) {
            Err(FirError::Exec(ExecError::ArgType { index: 0, .. })) => {}
            other => panic!("{name}: expected rank error, got {other:?}"),
        }
    }
}

#[test]
fn ill_typed_ir_is_rejected_at_compile_on_both_backends() {
    for name in ["interp-seq", "vm-seq"] {
        let engine = Engine::by_name(name).unwrap();
        match engine.compile(&ill_typed()) {
            Err(FirError::Type(e)) => {
                assert_eq!(e.in_fun.as_deref(), Some("unbound"));
                assert!(e.message.contains("unbound variable"), "{e}");
            }
            Ok(_) => panic!("{name}: ill-typed IR must not compile"),
            Err(e) => panic!("{name}: expected Type error, got {e:?}"),
        }
    }
}

#[test]
fn backend_prepare_rejects_ill_typed_ir_directly() {
    // The two-phase trait itself (below the Engine) is fallible too.
    for name in ["interp-seq", "vm-seq"] {
        let backend = futhark_ad_repro::fir_api::backend_by_name(name).unwrap();
        match backend.prepare(&ill_typed()) {
            Err(ExecError::IllTyped(_)) => {}
            Ok(_) => panic!("{name}: prepare must reject ill-typed IR"),
            Err(e) => panic!("{name}: expected IllTyped, got {e:?}"),
        }
    }
}

#[test]
fn unknown_backend_name_lists_the_valid_names() {
    match Engine::by_name("cuda") {
        Err(FirError::UnknownBackend { name, known }) => {
            assert_eq!(name, "cuda");
            assert_eq!(known, BACKEND_NAMES);
            for n in known {
                assert!(Engine::by_name(n).is_ok(), "registered name {n} must work");
            }
        }
        Ok(_) => panic!("\"cuda\" must not resolve"),
        Err(e) => panic!("expected UnknownBackend, got {e:?}"),
    }
    // The error renders the listing for FIR_BACKEND users.
    let msg = match Engine::by_name("cuda") {
        Err(e) => e.to_string(),
        Ok(_) => unreachable!(),
    };
    assert!(msg.contains("vm"), "{msg}");
    assert!(msg.contains("interp-seq"), "{msg}");
}

#[test]
fn grad_of_a_non_differentiable_function_is_unsupported() {
    let mut b = Builder::new();
    let f = b.build_fun("count", &[Type::arr_i64(1)], |b, ps| vec![b.len(ps[0])]);
    let cf = Engine::new().compile(&f).unwrap();
    let args = [Value::from(vec![1i64, 2, 3])];
    assert_eq!(cf.call(&args).unwrap()[0].as_i64(), 3);
    match cf.grad(&args) {
        Err(FirError::Unsupported { what }) => assert!(what.contains("count"), "{what}"),
        other => panic!("expected Unsupported, got {other:?}"),
    }
}

#[test]
fn batch_calls_report_the_failing_request() {
    let cf = Engine::by_name("vm-seq").unwrap().compile(&dot()).unwrap();
    let good = vec![Value::from(vec![1.0, 2.0]), Value::from(vec![3.0, 4.0])];
    let bad = vec![Value::from(vec![1.0, 2.0])];
    let out = cf.call_batch(&[good.clone(), bad, good]).unwrap_err();
    assert!(matches!(
        out,
        FirError::Exec(ExecError::Arity {
            expected: 2,
            got: 1,
            ..
        })
    ));
}
