//! Arena-vs-heap parity for the memory planner.
//!
//! With `memplan` in the pipeline, every planned buffer is served from the
//! per-invocation arena when capacity allows and from the heap when it
//! does not. The two allocation paths must be *observationally invisible*:
//! forcing the arena capacity to zero (`set_capacity_override(Some(0))`,
//! which turns every take into a heap fallback) must not change a single
//! bit of any primal or gradient result on any of the ten workload
//! instances. This is the safety net for the whole pooling design — a
//! stale pooled buffer leaking a byte of its previous contents, or an
//! in-place rewrite firing on a buffer the arena still aliases, shows up
//! here as a bitwise diff.
//!
//! Lives in its own integration-test binary because the capacity override
//! is process-global; a single `#[test]` keeps it race-free.

use fir::ir::Fun;
use futhark_ad_repro::{Engine, PassPipeline};
use interp::Value;
use workloads::{adbench, gmm, kmeans, lstm, mc};

fn workload_instances() -> Vec<(&'static str, Fun, Vec<Value>)> {
    vec![
        {
            let d = gmm::GmmData::generate(25, 4, 4, 41);
            ("gmm", gmm::objective_ir(), d.ir_args())
        },
        {
            let d = kmeans::KmeansData::generate(80, 4, 4, 42);
            ("kmeans-dense", kmeans::dense_objective_ir(), d.ir_args())
        },
        {
            let d = kmeans::SparseKmeansData::generate(60, 12, 4, 4, 43);
            ("kmeans-sparse", kmeans::sparse_objective_ir(), d.ir_args())
        },
        {
            let d = lstm::LstmData::generate(5, 4, 4, 2, 44);
            ("lstm", lstm::objective_ir(d.h, d.bs), d.ir_args())
        },
        {
            let d = adbench::BaData::generate(6, 24, 96, 45);
            ("ba", adbench::ba_objective_ir(), d.ir_args())
        },
        {
            let d = adbench::HandData::generate(12, 4, 46);
            (
                "hand-simple",
                adbench::hand_objective_ir(false),
                d.ir_args(false),
            )
        },
        {
            let d = adbench::HandData::generate(12, 4, 47);
            (
                "hand-complicated",
                adbench::hand_objective_ir(true),
                d.ir_args(true),
            )
        },
        {
            let d = adbench::DlstmData::generate(8, 5, 5, 48);
            ("d-lstm", adbench::dlstm_objective_ir(d.h), d.ir_args())
        },
        {
            let d = mc::XsData::generate(12, 5, 128, 49);
            ("xsbench", mc::xsbench_ir(d.g), d.ir_args())
        },
        {
            let d = mc::RsData::generate(5, 4, 3, 96, 50);
            ("rsbench", mc::rsbench_ir(4, 3), d.ir_args())
        },
    ]
}

fn assert_values_bitwise(name: &str, want: &[Value], got: &[Value]) {
    assert_eq!(want.len(), got.len(), "{name}: arity");
    for (i, (w, g)) in want.iter().zip(got).enumerate() {
        match (w, g) {
            (Value::F64(a), Value::F64(b)) => {
                assert_eq!(a.to_bits(), b.to_bits(), "{name}: result {i}")
            }
            (Value::Arr(a), Value::Arr(b)) => {
                assert_eq!(a.shape, b.shape, "{name}: result {i} shape");
                for (j, (x, y)) in a.f64s().iter().zip(b.f64s()).enumerate() {
                    assert_eq!(x.to_bits(), y.to_bits(), "{name}: result {i}[{j}]");
                }
            }
            other => assert_eq!(
                format!("{:?}", other.0),
                format!("{:?}", other.1),
                "{name}: result {i}"
            ),
        }
    }
}

/// One engine per configuration (fresh compile cache each), memplan
/// pipeline on vm-seq: normal arena-backed execution vs capacity-0
/// heap-forced execution, primal and gradient, bitwise.
#[test]
fn arena_and_heap_execution_are_bitwise_identical() {
    let mk = || {
        Engine::by_name("vm-seq")
            .unwrap()
            .with_pipeline(PassPipeline::standard_mem())
    };
    for (name, fun, args) in &workload_instances() {
        // Heap-forced: every planned take falls back to the allocator.
        interp::arena::set_capacity_override(Some(0));
        let before = interp::alloc_stats();
        let e = mk();
        let cf = e.compile(fun).unwrap();
        let heap_call = cf.call(args).unwrap();
        let heap_grad = cf.grad(args).unwrap();
        let mid = interp::alloc_stats();
        assert!(
            mid.heap_allocs > before.heap_allocs,
            "{name}: heap-forced run must count heap allocations"
        );
        drop(e);

        // Arena-backed: plan-driven capacities. Run twice so the second
        // invocation executes against a warm (recycled) pool.
        interp::arena::set_capacity_override(None);
        let e = mk();
        let cf = e.compile(fun).unwrap();
        let arena_call_cold = cf.call(args).unwrap();
        let arena_call = cf.call(args).unwrap();
        let arena_grad = cf.grad(args).unwrap();
        interp::arena::set_capacity_override(Some(0)); // park between workloads

        assert_values_bitwise(name, &heap_call, &arena_call_cold);
        assert_values_bitwise(name, &heap_call, &arena_call);
        assert_eq!(
            heap_grad.scalar().to_bits(),
            arena_grad.scalar().to_bits(),
            "{name}: gradient primal"
        );
        let (a, b) = (heap_grad.flat_grads(), arena_grad.flat_grads());
        assert_eq!(a.len(), b.len(), "{name}: gradient arity");
        for (i, (x, y)) in a.iter().zip(&b).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "{name}: grad[{i}]");
        }
    }
    // The arena-backed passes above must have recorded hits somewhere —
    // otherwise this test silently degraded into heap-vs-heap.
    interp::arena::set_capacity_override(None);
    let after = interp::alloc_stats();
    assert!(
        after.arena_hits > 0,
        "parity ran, but the arena never served a buffer: the test is vacuous"
    );
}
