//! Semantics-preservation fuzzing of the optimization pipeline.
//!
//! For every randomly generated well-typed program (see `fir-proptest`),
//! the nine configurations {standard pipeline, standard + memory planning
//! (`memplan`), no pipeline} × {tree-walking interpreter, firvm bytecode
//! VM, jit-tiered VM (threshold 1, so every program runs on native
//! kernels)} must agree **bitwise** on every result —
//! the optimizer may only rearrange *which* computations run, never a
//! single floating-point rounding. Gradients get the same treatment: the
//! engine derives `vjp` from the pre-pipeline source, so optimized and
//! unoptimized gradients are bitwise comparable too, and on the smooth
//! generator profile the optimized reverse-mode gradient is additionally
//! validated against central finite differences and against the optimized
//! forward-mode directional derivative.
//!
//! Case counts: 256 bitwise cases and 64 gradient cases by default
//! (`OPT_FUZZ_CASES` scales the bitwise count down to a bound in CI-smoke
//! contexts or up for soak runs). Generation is driven by the fixed-seed
//! deterministic `TestRng`, so every run — local or CI — sees the same
//! programs.

use fir::ir::Fun;
use fir::typecheck::check_fun;
use fir_proptest::{arbitrary_fun, GenConfig};
use futhark_ad::gradcheck::{finite_diff_gradient, max_rel_error};
use futhark_ad_repro::{Engine, PassPipeline};
use interp::Value;
use proptest::TestRng;

fn cases_from_env(default: usize) -> usize {
    std::env::var("OPT_FUZZ_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// The nine engines of the differential square, sharing nothing. The jit
/// configurations run with a hotness threshold of 1: every program promotes
/// on its first run, so the native tier executes (or per-kernel falls back)
/// on every single fuzz case rather than only on re-runs. The `+mem`
/// column runs the standard pipeline with the `memplan` pass appended, so
/// dead-source copy elimination and arena-backed buffer reuse face the
/// same bitwise bar as every other rewrite.
fn engines() -> [(&'static str, Engine); 9] {
    let mk = |backend: &str, pipeline: PassPipeline| {
        Engine::by_name(backend).unwrap().with_pipeline(pipeline)
    };
    let mk_jit = |pipeline: PassPipeline| {
        Engine::builder()
            .backend_name("vm-seq")
            .jit_threshold(1)
            .pipeline(pipeline)
            .build()
            .unwrap()
    };
    [
        ("interp+std", mk("interp-seq", PassPipeline::standard())),
        ("interp+none", mk("interp-seq", PassPipeline::none())),
        ("vm+std", mk("vm-seq", PassPipeline::standard())),
        ("vm+none", mk("vm-seq", PassPipeline::none())),
        ("jit+std", mk_jit(PassPipeline::standard())),
        ("jit+none", mk_jit(PassPipeline::none())),
        // Appended after the original six so positional references (the
        // forward-mode check compiles on engines[2] = vm+std) stay stable.
        ("interp+mem", mk("interp-seq", PassPipeline::standard_mem())),
        ("vm+mem", mk("vm-seq", PassPipeline::standard_mem())),
        ("jit+mem", mk_jit(PassPipeline::standard_mem())),
    ]
}

/// Per-backend *parallel* standard-vs-none pairs, with the parallelism
/// threshold forced low enough that the generator's tiny arrays actually
/// take the chunked code paths. Comparisons are within one backend (the
/// two backends may chunk differently from each other), pinning down that
/// a fused `redomap`'s parallel fold-and-combine is bitwise identical to
/// the `reduce (map ...)` it replaced.
fn parallel_pairs() -> [(&'static str, Engine, Engine); 3] {
    use interp::{ExecConfig, Interp};
    let cfg = ExecConfig {
        parallel: true,
        num_threads: 4,
        parallel_threshold: 2,
    };
    let interp_std = Engine::with_backend(Box::new(Interp::with_config(cfg.clone())))
        .with_pipeline(PassPipeline::standard());
    let interp_none = Engine::with_backend(Box::new(Interp::with_config(cfg.clone())))
        .with_pipeline(PassPipeline::none());
    let vm_std = Engine::with_backend(Box::new(firvm::Vm::with_config(cfg.clone())))
        .with_pipeline(PassPipeline::standard());
    let vm_none = Engine::with_backend(Box::new(firvm::Vm::with_config(cfg.clone())))
        .with_pipeline(PassPipeline::none());
    // The jit tier under the same forced-parallel config: its reductions
    // must reuse the VM's chunk boundaries and combine order exactly.
    let jit_std = Engine::with_backend(Box::new(fir_jit::vm_with(
        cfg.clone(),
        fir_jit::tier_config(1),
    )))
    .with_pipeline(PassPipeline::standard());
    let jit_none = Engine::with_backend(Box::new(fir_jit::vm_with(cfg, fir_jit::tier_config(1))))
        .with_pipeline(PassPipeline::none());
    [
        ("interp-par", interp_std, interp_none),
        ("vm-par", vm_std, vm_none),
        ("jit-par", jit_std, jit_none),
    ]
}

fn assert_bitwise_eq(case: &str, config: &str, want: &[Value], got: &[Value]) {
    assert_eq!(want.len(), got.len(), "{case}: arity under {config}");
    for (i, (w, g)) in want.iter().zip(got).enumerate() {
        match (w, g) {
            (Value::F64(a), Value::F64(b)) => assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "{case}: result {i} differs under {config}: {a:?} vs {b:?}"
            ),
            (Value::I64(a), Value::I64(b)) => {
                assert_eq!(a, b, "{case}: result {i} under {config}")
            }
            (Value::Bool(a), Value::Bool(b)) => {
                assert_eq!(a, b, "{case}: result {i} under {config}")
            }
            (Value::Arr(a), Value::Arr(b)) => {
                assert_eq!(a.shape, b.shape, "{case}: result {i} shape under {config}");
                assert_eq!(a.elem(), b.elem(), "{case}: result {i} elem under {config}");
                if a.elem() == fir::types::ScalarType::F64 {
                    for (j, (x, y)) in a.f64s().iter().zip(b.f64s()).enumerate() {
                        assert_eq!(
                            x.to_bits(),
                            y.to_bits(),
                            "{case}: result {i}[{j}] differs under {config}: {x:?} vs {y:?}"
                        );
                    }
                } else {
                    assert_eq!(
                        format!("{a:?}"),
                        format!("{b:?}"),
                        "{case}: result {i} under {config}"
                    );
                }
            }
            other => panic!("{case}: unexpected result pair {other:?}"),
        }
    }
}

#[test]
fn random_programs_agree_bitwise_across_pipelines_and_backends() {
    let cases = cases_from_env(256);
    let mut rng = TestRng::deterministic();
    let engines = engines();
    let parallel = parallel_pairs();
    for case in 0..cases {
        let name = format!("fuzz{case}");
        let (fun, args) = arbitrary_fun(&name, &mut rng, &GenConfig::default());
        check_fun(&fun).unwrap_or_else(|e| panic!("{name}: generator emitted ill-typed IR: {e}"));
        let reference = engines[0].1.compile(&fun).unwrap().call(&args).unwrap();
        for (config, engine) in &engines[1..] {
            let got = engine.compile(&fun).unwrap().call(&args).unwrap();
            assert_bitwise_eq(&name, config, &reference, &got);
        }
        // Parallel chunked paths: standard vs none within each backend
        // (primal only — the generator emits no accumulators, so parallel
        // primal execution is deterministic).
        for (config, std_engine, none_engine) in &parallel {
            let a = std_engine.compile(&fun).unwrap().call(&args).unwrap();
            let b = none_engine.compile(&fun).unwrap().call(&args).unwrap();
            assert_bitwise_eq(&name, config, &b, &a);
        }
    }
}

#[test]
fn random_gradients_agree_bitwise_and_pass_gradcheck() {
    let cases = cases_from_env(64).clamp(1, 64);
    let mut rng = TestRng::deterministic();
    let engines = engines();
    for case in 0..cases {
        let name = format!("grad{case}");
        let (fun, args) = arbitrary_fun(&name, &mut rng, &GenConfig::smooth());
        check_fun(&fun).unwrap_or_else(|e| panic!("{name}: ill-typed: {e}"));

        // Reverse mode, bitwise across all nine configurations (vjp is
        // derived from the pre-pipeline source, then optimized per engine).
        let reference = engines[0].1.compile(&fun).unwrap().grad(&args).unwrap();
        for (config, engine) in &engines[1..] {
            let got = engine.compile(&fun).unwrap().grad(&args).unwrap();
            assert_eq!(
                reference.scalar().to_bits(),
                got.scalar().to_bits(),
                "{name}: primal under {config}"
            );
            let (a, b) = (reference.flat_grads(), got.flat_grads());
            assert_eq!(a.len(), b.len(), "{name}: gradient arity under {config}");
            for (i, (x, y)) in a.iter().zip(&b).enumerate() {
                assert_eq!(
                    x.to_bits(),
                    y.to_bits(),
                    "{name}: grad[{i}] differs under {config}: {x:?} vs {y:?}"
                );
            }
        }

        // The fully-optimized gradient still matches finite differences.
        let fd = finite_diff_gradient(&interp::Interp::sequential(), &fun, &args, 1e-6);
        let err = max_rel_error(&reference.flat_grads(), &fd);
        assert!(
            err < 1e-4,
            "{name}: gradcheck failed after the full pipeline, max rel err {err:.3e}\n{fun}"
        );

        // Forward mode through the pipeline: the directional derivative
        // along each parameter must match the reverse-mode block sums.
        let cf = engines[2].1.compile(&fun).unwrap();
        for (i, arg) in args.iter().enumerate() {
            let ones = match arg {
                Value::F64(_) => Value::F64(1.0),
                Value::Arr(a) => Value::Arr(interp::Array::from_f64(
                    a.shape.clone(),
                    vec![1.0; a.f64s().len()],
                )),
                other => panic!("unexpected arg {other:?}"),
            };
            let dual = cf.pushforward(&args, &[(i, ones)]).unwrap();
            let grads = reference.grads[i].clone();
            let want: f64 = match grads {
                Value::F64(x) => x,
                Value::Arr(a) => a.f64s().iter().sum(),
                other => panic!("unexpected grad {other:?}"),
            };
            let got = dual.flat_tangents()[0];
            let denom = want.abs().max(1.0);
            assert!(
                ((got - want) / denom).abs() < 1e-9,
                "{name}: jvp/vjp disagree on param {i}: {got:?} vs {want:?}"
            );
        }
    }
}

/// A pinned (non-random) case for the signed-zero constant folds: the
/// standard pipeline folds `x + (-0.0)` but must leave `x + (+0.0)`
/// intact, and all nine configurations have to agree bitwise on a program
/// whose inputs and intermediates include `-0.0` itself — the exact value
/// the fold's restriction to negative-zero addends protects.
#[test]
fn negative_zero_addend_pin_case_stays_bitwise() {
    use fir::ir::Atom;
    use fir::types::Type;
    let mut b = fir::builder::Builder::new();
    let fun = b.build_fun("negzero", &[Type::F64, Type::arr_f64(1)], |b, ps| {
        let folds = b.fadd(ps[0].into(), Atom::f64(-0.0));
        let stays = b.fadd(ps[0].into(), Atom::f64(0.0));
        let m = b.map1(Type::arr_f64(1), &[ps[1]], |b, es| {
            vec![b.fadd(es[0].into(), Atom::f64(-0.0))]
        });
        let s = b.sum(m);
        let t = b.fadd(folds, stays);
        vec![b.fadd(t, Atom::Var(s)), Atom::Var(m)]
    });
    check_fun(&fun).unwrap();
    let args = vec![
        Value::F64(-0.0),
        Value::Arr(interp::Array::from_f64(vec![3], vec![-0.0, 0.0, -1.5])),
    ];
    let engines = engines();
    let reference = engines[0].1.compile(&fun).unwrap().call(&args).unwrap();
    for (config, engine) in &engines[1..] {
        let got = engine.compile(&fun).unwrap().call(&args).unwrap();
        assert_bitwise_eq("negzero", config, &reference, &got);
    }
    // The mapped `e + (-0.0)` keeps -0.0 elements bit-exactly (an
    // optimizer that folded it to identity and one that executed the add
    // agree only because the identity is bitwise-true).
    let Value::Arr(arr) = &reference[1] else {
        panic!("negzero: expected an array result");
    };
    assert_eq!(arr.f64s()[0].to_bits(), (-0.0f64).to_bits());
    assert_eq!(arr.f64s()[1].to_bits(), 0u64);
}

/// The vmap transform over the generated programs: for every random
/// well-typed function, `vmap f` applied to a stacked batch of three
/// (deterministically perturbed) argument sets must agree **bitwise**,
/// element by element, with running `f` per example — across
/// {standard, standard+memplan, none} × {interp, firvm, jit}. This pins down that the
/// rank-promotion lowering and the re-optimization of the vmapped
/// program never change a single floating-point rounding.
#[test]
fn random_programs_vmap_agrees_with_per_example_execution_bitwise() {
    let cases = cases_from_env(64).clamp(1, 128);
    let mut rng = TestRng::deterministic();
    let engines = engines();
    let mut vmapped = 0usize;
    for case in 0..cases {
        let name = format!("vmap{case}");
        let (fun, args) = arbitrary_fun(&name, &mut rng, &GenConfig::default());
        check_fun(&fun).unwrap_or_else(|e| panic!("{name}: ill-typed: {e}"));
        if fun.params.is_empty() {
            continue; // nothing to map over
        }
        // A batch of three: the original arguments plus two copies with
        // every f64 leaf deterministically perturbed (shapes and integer
        // data unchanged, so control flow stays in bounds).
        let batch: Vec<Vec<Value>> = (0..3)
            .map(|r| {
                args.iter()
                    .map(|v| match v {
                        Value::F64(x) => Value::F64(x + 0.125 * r as f64),
                        Value::Arr(a) if a.elem() == fir::types::ScalarType::F64 => {
                            let data = a.f64s().iter().map(|x| x + 0.125 * r as f64).collect();
                            Value::Arr(interp::Array::from_f64(a.shape.clone(), data))
                        }
                        other => other.clone(),
                    })
                    .collect()
            })
            .collect();
        let Some(stacked) = fir_api::batch::stack_args(&batch) else {
            panic!("{name}: same-shape batch must stack");
        };
        vmapped += 1;
        for (config, engine) in &engines {
            let cf = engine.compile(&fun).unwrap();
            let vf = cf.vmap().unwrap_or_else(|e| panic!("{name}: vmap: {e}"));
            let outs = vf
                .call(&stacked)
                .unwrap_or_else(|e| panic!("{name}: vmap call under {config}: {e}"));
            let rows = fir_api::batch::unstack_results(&fun.ret, &outs, batch.len());
            for (i, example) in batch.iter().enumerate() {
                let want = cf.call(example).unwrap();
                assert_bitwise_eq(
                    &format!("{name}[{i}]"),
                    &format!("{config} vmap"),
                    &want,
                    &rows[i],
                );
            }
        }
    }
    assert!(vmapped > 0, "generator produced no vmappable programs");
}

/// All ten workload instances (the paper's nine benchmarks, with HAND in
/// both its simple and complicated variants), bitwise across
/// optimized/memplanned/unoptimized × interp/firvm/jit (sequential configurations, where
/// float reassociation cannot occur) — the acceptance bar for every pass
/// in the pipeline.
#[test]
fn all_workloads_agree_bitwise_across_pipelines_and_backends() {
    use workloads::{adbench, gmm, kmeans, lstm, mc};
    let workloads: Vec<(&str, Fun, Vec<Value>)> = vec![
        {
            let d = gmm::GmmData::generate(25, 4, 4, 21);
            ("gmm", gmm::objective_ir(), d.ir_args())
        },
        {
            let d = kmeans::KmeansData::generate(80, 4, 4, 22);
            ("kmeans-dense", kmeans::dense_objective_ir(), d.ir_args())
        },
        {
            let d = kmeans::SparseKmeansData::generate(60, 12, 4, 4, 23);
            ("kmeans-sparse", kmeans::sparse_objective_ir(), d.ir_args())
        },
        {
            let d = lstm::LstmData::generate(5, 4, 4, 2, 24);
            ("lstm", lstm::objective_ir(d.h, d.bs), d.ir_args())
        },
        {
            let d = adbench::BaData::generate(6, 24, 96, 25);
            ("ba", adbench::ba_objective_ir(), d.ir_args())
        },
        {
            let d = adbench::HandData::generate(12, 4, 26);
            (
                "hand-simple",
                adbench::hand_objective_ir(false),
                d.ir_args(false),
            )
        },
        {
            let d = adbench::HandData::generate(12, 4, 27);
            (
                "hand-complicated",
                adbench::hand_objective_ir(true),
                d.ir_args(true),
            )
        },
        {
            let d = adbench::DlstmData::generate(8, 5, 5, 28);
            ("d-lstm", adbench::dlstm_objective_ir(d.h), d.ir_args())
        },
        {
            let d = mc::XsData::generate(12, 5, 128, 29);
            ("xsbench", mc::xsbench_ir(d.g), d.ir_args())
        },
        {
            let d = mc::RsData::generate(5, 4, 3, 96, 30);
            ("rsbench", mc::rsbench_ir(4, 3), d.ir_args())
        },
    ];
    let engines = engines();
    for (name, fun, args) in &workloads {
        let reference = engines[0].1.compile(fun).unwrap().call(args).unwrap();
        for (config, engine) in &engines[1..] {
            let got = engine.compile(fun).unwrap().call(args).unwrap();
            assert_bitwise_eq(name, config, &reference, &got);
        }
        // Gradients too: vjp derives from the same source everywhere.
        let gref = engines[0].1.compile(fun).unwrap().grad(args).unwrap();
        for (config, engine) in &engines[1..] {
            let got = engine.compile(fun).unwrap().grad(args).unwrap();
            assert_eq!(
                gref.scalar().to_bits(),
                got.scalar().to_bits(),
                "{name}: vjp primal under {config}"
            );
            for (i, (x, y)) in gref.flat_grads().iter().zip(&got.flat_grads()).enumerate() {
                assert_eq!(x.to_bits(), y.to_bits(), "{name}: grad[{i}] under {config}");
            }
        }
    }
}

/// The acceptance bar of the pass suite: the GMM D=5 gradient executes with
/// at least 20% fewer (statically counted, per the pass-stats layer) VM
/// statements under the standard pipeline than under `PassPipeline::none`.
#[test]
fn gmm_d5_gradient_shrinks_at_least_20_percent() {
    use workloads::gmm;
    let fun = gmm::objective_ir();
    let engine = Engine::by_name("vm-seq")
        .unwrap()
        .with_pipeline(PassPipeline::standard());
    let cf = engine.compile(&fun).unwrap();
    let vjp = cf.vjp().unwrap();
    let stats = engine.opt_stats();
    // Both the primal and its vjp went through the pipeline.
    assert_eq!(stats.functions, 2);
    let unopt = fir_opt::count_stms(&futhark_ad::vjp(&fun));
    let opt = fir_opt::count_stms(vjp.fun());
    assert!(
        (opt as f64) <= 0.8 * (unopt as f64),
        "GMM gradient: expected >= 20% fewer statements, got {opt} vs {unopt} \
         (pipeline stats: {stats:?})"
    );
    // The stats layer must account for exactly this reduction.
    assert_eq!(stats.stms_after, fir_opt::count_stms(cf.fun()) + opt);
    assert!(stats.total_rewrites() > 0);
    // And the optimized gradient still computes the same numbers (D=5).
    let d = gmm::GmmData::generate(30, 5, 3, 31);
    let unopt_engine = Engine::by_name("vm-seq")
        .unwrap()
        .with_pipeline(PassPipeline::none());
    let g_opt = cf.grad(&d.ir_args()).unwrap();
    let g_ref = unopt_engine
        .compile(&fun)
        .unwrap()
        .grad(&d.ir_args())
        .unwrap();
    assert_eq!(g_opt.scalar().to_bits(), g_ref.scalar().to_bits());
    for (x, y) in g_opt.flat_grads().iter().zip(&g_ref.flat_grads()) {
        assert_eq!(x.to_bits(), y.to_bits());
    }
}
