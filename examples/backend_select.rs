//! Backend selection: the same program and its gradient executed on every
//! registered backend through the shared `Backend` trait.
//!
//! Run with `cargo run --release --example backend_select`; set
//! `FIR_BACKEND=interp` (or `vm`, `vm-seq`, `interp-seq`) to pick the
//! default backend used by the final section.

use fir::builder::Builder;
use fir::types::Type;
use futhark_ad::vjp;
use futhark_ad_repro::{backend_by_name, default_backend};
use interp::Value;
use std::time::Instant;

fn main() {
    // f(xs) = sum (map (\x -> x * exp x) xs), a large-ish instance.
    let mut b = Builder::new();
    let f = b.build_fun("xsumexp", &[Type::arr_f64(1)], |b, ps| {
        let ys = b.map1(Type::arr_f64(1), &[ps[0]], |b, es| {
            let e = b.fexp(es[0].into());
            vec![b.fmul(e, es[0].into())]
        });
        vec![b.sum(ys).into()]
    });
    let df = vjp(&f);
    let xs: Vec<f64> = (0..200_000).map(|i| (i as f64 * 1e-5).sin()).collect();
    let args = [Value::from(xs)];
    let mut grad_args = args.to_vec();
    grad_args.push(Value::F64(1.0));

    for name in ["interp", "vm"] {
        let backend = backend_by_name(name).expect("known backend");
        let t0 = Instant::now();
        let primal = backend.run(&f, &args)[0].as_f64();
        let t_primal = t0.elapsed();
        let t0 = Instant::now();
        let grad = backend.run(&df, &grad_args);
        let t_grad = t0.elapsed();
        println!(
            "{:>8}: f = {:.6}, |grad| = {}, primal {:?}, gradient {:?}",
            backend.name(),
            primal,
            grad[1].as_arr().f64s().len(),
            t_primal,
            t_grad,
        );
    }

    let backend = default_backend();
    println!(
        "default backend (FIR_BACKEND or \"vm\"): {}",
        backend.name()
    );
}
