//! Backend selection: the same program and its gradient compiled through an
//! [`Engine`] on every registered backend.
//!
//! Run with `cargo run --release --example backend_select`; set
//! `FIR_BACKEND=interp` (or `vm`, `vm-seq`, `interp-seq`) to pick the
//! backend used by the final section. Unknown names produce an error
//! listing the valid ones instead of a panic.

use fir::builder::Builder;
use fir::types::Type;
use futhark_ad_repro::{Engine, FirError, BACKEND_NAMES};
use interp::Value;
use std::time::Instant;

fn main() -> Result<(), FirError> {
    // f(xs) = sum (map (\x -> x * exp x) xs), a large-ish instance.
    let mut b = Builder::new();
    let f = b.build_fun("xsumexp", &[Type::arr_f64(1)], |b, ps| {
        let ys = b.map1(Type::arr_f64(1), &[ps[0]], |b, es| {
            let e = b.fexp(es[0].into());
            vec![b.fmul(e, es[0].into())]
        });
        vec![b.sum(ys).into()]
    });
    let xs: Vec<f64> = (0..200_000).map(|i| (i as f64 * 1e-5).sin()).collect();
    let args = [Value::from(xs)];

    for name in ["interp", "vm"] {
        let engine = Engine::by_name(name)?;
        let cf = engine.compile(&f)?;
        let t0 = Instant::now();
        let primal = cf.call_scalar(&args)?;
        let t_primal = t0.elapsed();
        // Warm the vjp handle so the timing below is pure execution.
        cf.vjp()?;
        let t0 = Instant::now();
        let grad = cf.grad(&args)?;
        let t_grad = t0.elapsed();
        println!(
            "{:>8}: f = {:.6}, |grad| = {}, primal {:?}, gradient {:?}",
            engine.backend_name(),
            primal,
            grad.grads[0].as_arr().f64s().len(),
            t_primal,
            t_grad,
        );
    }

    // Unknown backend names are errors that list the registered names.
    match Engine::by_name("tpu") {
        Err(e) => println!("Engine::by_name(\"tpu\"): {e}"),
        Ok(_) => unreachable!("\"tpu\" is not a registered backend"),
    }

    let engine = Engine::from_env()?;
    println!(
        "default backend (FIR_BACKEND or \"vm\"): {} (registered: {})",
        engine.backend_name(),
        BACKEND_NAMES.join(", "),
    );
    Ok(())
}
