//! Train the LSTM objective with gradient descent, using the staged
//! engine's reverse mode for the gradients — the setting of Table 6.
//!
//! Run with `cargo run --release --example lstm_training`.

use futhark_ad_repro::{Engine, FirError};
use workloads::lstm;

fn main() -> Result<(), FirError> {
    let mut data = lstm::LstmData::generate(6, 8, 8, 4, 17);
    let engine = Engine::new();
    let cf = engine.compile(&lstm::objective_ir(data.h, data.bs))?;
    let lr = 1e-3;

    for step in 0..10 {
        // Adjoints come back per differentiable parameter, in parameter
        // order: (d_xs, d_wx, d_wh, d_bias).
        let g = cf.grad(&data.ir_args())?;
        let loss = g.scalar();
        let d_wx = g.grads[1].as_arr().f64s();
        let d_wh = g.grads[2].as_arr().f64s();
        let d_b = g.grads[3].as_arr().f64s();
        for (w, gr) in data.wx.iter_mut().zip(d_wx) {
            *w -= lr * gr;
        }
        for (w, gr) in data.wh.iter_mut().zip(d_wh) {
            *w -= lr * gr;
        }
        for (w, gr) in data.bias.iter_mut().zip(d_b) {
            *w -= lr * gr;
        }
        println!("step {step}: loss = {loss:.6}");
    }
    Ok(())
}
