//! Train the LSTM objective with gradient descent, using reverse AD over
//! the IR for the gradients — the setting of Table 6.
//!
//! Run with `cargo run --release --example lstm_training`.

use futhark_ad::vjp;
use interp::{Array, Interp, Value};
use workloads::lstm;

fn main() {
    let mut data = lstm::LstmData::generate(6, 8, 8, 4, 17);
    let fun = lstm::objective_ir(data.h, data.bs);
    let dfun = vjp(&fun);
    let interp = Interp::new();
    let lr = 1e-3;

    for step in 0..10 {
        let mut args = data.ir_args();
        args.push(Value::F64(1.0));
        let out = interp.run(&dfun, &args);
        let loss = out[0].as_f64();
        // Parameter adjoints follow the input adjoint in the result list:
        // (loss, d_xs, d_wx, d_wh, d_bias).
        let d_wx = out[2].as_arr().f64s();
        let d_wh = out[3].as_arr().f64s();
        let d_b = out[4].as_arr().f64s();
        for (w, g) in data.wx.iter_mut().zip(d_wx) {
            *w -= lr * g;
        }
        for (w, g) in data.wh.iter_mut().zip(d_wh) {
            *w -= lr * g;
        }
        for (w, g) in data.bias.iter_mut().zip(d_b) {
            *w -= lr * g;
        }
        println!("step {step}: loss = {loss:.6}");
        // Keep the borrow checker happy about reusing the generated inputs.
        let _ = Array::zeros(fir::types::ScalarType::F64, vec![1]);
    }
}
