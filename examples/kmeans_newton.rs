//! Newton's method for dense k-means, with the gradient from reverse mode
//! and the Hessian diagonal from one forward-over-reverse pass — the
//! paper's case study 1 (§7.4).
//!
//! Run with `cargo run --release --example kmeans_newton`.

use futhark_ad::{jvp, vjp};
use interp::{Array, Interp, Value};
use workloads::kmeans;

fn main() {
    let (n, d, k) = (2000, 8, 6);
    let mut data = kmeans::KmeansData::generate(n, d, k, 3);
    let fun = kmeans::dense_objective_ir();
    let grad_fun = vjp(&fun);
    let hess_fun = jvp(&grad_fun);
    let interp = Interp::new();

    for it in 0..8 {
        let points = Value::Arr(Array::from_f64(vec![n, d], data.points.clone()));
        let centers = Value::Arr(Array::from_f64(vec![k, d], data.centers.clone()));
        // Gradient.
        let out = interp.run(
            &grad_fun,
            &[points.clone(), centers.clone(), Value::F64(1.0)],
        );
        let cost = out[0].as_f64();
        let grad = out[2].as_arr().f64s().to_vec();
        // Hessian diagonal with a single jvp over the vjp (all-ones direction).
        let hout = interp.run(
            &hess_fun,
            &[
                points,
                centers,
                Value::F64(1.0),
                Value::Arr(Array::zeros(fir::types::ScalarType::F64, vec![n, d])),
                Value::Arr(Array::from_f64(vec![k, d], vec![1.0; k * d])),
                Value::F64(0.0),
            ],
        );
        let hess = hout.last().unwrap().as_arr().f64s().to_vec();
        // Newton update on the centres.
        for i in 0..k * d {
            if hess[i].abs() > 1e-12 {
                data.centers[i] -= grad[i] / hess[i];
            }
        }
        println!("iteration {it}: cost = {cost:.6}");
    }
}
