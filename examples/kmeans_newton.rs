//! Newton's method for dense k-means, with the gradient from reverse mode
//! and the Hessian diagonal from one forward-over-reverse pass — the
//! paper's case study 1 (§7.4), on the staged API: the objective is
//! compiled once and the `vjp`/`jvp∘vjp` handles are derived lazily and
//! cached across all iterations.
//!
//! Run with `cargo run --release --example kmeans_newton`.

use futhark_ad_repro::{Engine, FirError};
use interp::{Array, Value};
use workloads::kmeans;

fn main() -> Result<(), FirError> {
    let (n, d, k) = (2000, 8, 6);
    let mut data = kmeans::KmeansData::generate(n, d, k, 3);
    let engine = Engine::new();
    let cf = engine.compile(&kmeans::dense_objective_ir())?;
    let ones_dir = Value::Arr(Array::from_f64(vec![k, d], vec![1.0; k * d]));

    for it in 0..8 {
        let points = Value::Arr(Array::from_f64(vec![n, d], data.points.clone()));
        let centers = Value::Arr(Array::from_f64(vec![k, d], data.centers.clone()));
        let args = [points, centers];
        // Gradient (seed auto-derived).
        let g = cf.grad(&args)?;
        let cost = g.scalar();
        let grad = g.grads[1].as_arr().f64s().to_vec();
        // Hessian diagonal with a single jvp over the vjp, along the
        // all-ones direction on the centers.
        let hv = cf.hvp(&args, &[(1, ones_dir.clone())])?;
        let hess = hv[1].as_arr().f64s().to_vec();
        // Newton update on the centres.
        for i in 0..k * d {
            if hess[i].abs() > 1e-12 {
                data.centers[i] -= grad[i] / hess[i];
            }
        }
        println!("iteration {it}: cost = {cost:.6}");
    }
    Ok(())
}
