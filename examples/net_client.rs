//! The fir-net wire protocol end to end: connect to a running
//! `fir_net_server` (or start one in-process), measure cold-start to
//! first response, mix plain / `[vjp]`-transformed / vmapped requests
//! with bitwise parity checks against an in-process engine, drive a
//! tenant over its quota, read the metrics op, and shut the server down
//! over the wire.
//!
//! * `cargo run --release --example net_client` — self-contained: binds
//!   an in-process server on a loopback port.
//! * `FIR_NET_ADDR=127.0.0.1:7177 cargo run --release --example
//!   net_client` — drives an external server (e.g. the `fir_net_server`
//!   binary); this is what CI's `net_smoke` step does.

use std::time::{Duration, Instant};

use futhark_ad_repro::fir_net::{
    NetClient, NetError, NetServer, NetServerBuilder, TenantConfig, TenantPolicy,
};
use futhark_ad_repro::{Engine, Transform};
use interp::Value;
use workloads::{gmm, kmeans};

fn main() -> Result<(), NetError> {
    // Either connect to an external server (CI) or bind one in-process.
    let external = std::env::var("FIR_NET_ADDR").ok();
    let mut local: Option<NetServer> = None;
    let t0 = Instant::now();
    let addr = match &external {
        Some(addr) => addr.clone(),
        None => {
            let server = NetServerBuilder::new(Engine::by_name("vm-seq").map_err(to_net)?)
                .shards(2)
                .register("gmm", &gmm::objective_ir())
                .register("kmeans-dense", &kmeans::dense_objective_ir())
                // Precompile the plain and reverse-mode lanes before the
                // listener opens (satellite of the serving tier: the
                // first request pays a cache hit, not a compilation).
                .warmup(&[&[], &[Transform::Vjp]])
                .tenant_policy(TenantPolicy::default().tenant(
                    "free",
                    TenantConfig {
                        rate_per_sec: 0.001,
                        burst: 2.0,
                        weight: 1,
                    },
                ))
                .bind("127.0.0.1:0")?;
            let addr = server.local_addr().to_string();
            local = Some(server);
            addr
        }
    };

    // Cold start: process/server bring-up until the first served
    // response (warmup moved compilation *before* the listener opened,
    // so this is dominated by connect + one round trip).
    let mut client = NetClient::connect(&addr)?;
    client.ping()?;

    // FIR_NET_EXPECT_WARM=1 (CI's second net_smoke run, sharing a
    // FIR_CACHE_DIR with the first): assert — before any request could
    // trigger a compile — that the server's warmup was answered entirely
    // by the persistent on-disk cache, i.e. zero fresh compilations.
    if std::env::var("FIR_NET_EXPECT_WARM").as_deref() == Ok("1") {
        let parsed = fir_trace::json::parse(&client.metrics_json()?).expect("metrics JSON parses");
        let cache = parsed.get("cache").expect("cache section in metrics");
        let misses = cache.get("misses").and_then(|v| v.as_num()).unwrap();
        let persistent = cache.get("persistent").expect("persistent cache section");
        let phits = persistent.get("hits").and_then(|v| v.as_num()).unwrap();
        assert_eq!(
            misses, 0.0,
            "a warm server must not compile anything: {cache:?}"
        );
        assert!(
            phits > 0.0,
            "a warm server must have loaded from disk: {cache:?}"
        );
        println!("warm start verified: {phits:.0} persistent-cache loads, 0 compiles");
    }

    let args = gmm::GmmData::generate(20, 3, 2, 1).ir_args();
    let first = client.call("gmm", args.clone())?;
    println!(
        "cold start to first response: {:?} (objective {:.6})",
        t0.elapsed(),
        first[0].as_f64()
    );

    // Bitwise parity: plain call, gradient, a [vjp]-transformed call
    // with an explicit seed, and a vmapped batch — each checked against
    // the same engine used in-process.
    let reference = Engine::by_name("vm-seq").map_err(to_net)?;
    let gmm_ref = reference.compile(&gmm::objective_ir()).map_err(to_net)?;

    let want = gmm_ref.call(&args).map_err(to_net)?;
    assert_eq!(first[0].as_f64().to_bits(), want[0].as_f64().to_bits());

    let got = client.grad("gmm", args.clone())?;
    let want_grad = gmm_ref.grad(&args).map_err(to_net)?;
    assert_eq!(
        got.value[0].as_f64().to_bits(),
        want_grad.value[0].as_f64().to_bits()
    );
    for (g, w) in got.grads.iter().zip(&want_grad.grads) {
        for (a, b) in g.as_arr().f64s().iter().zip(w.as_arr().f64s()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
    println!("gradient over the wire matches in-process bitwise");

    let mut seeded = args.clone();
    seeded.push(Value::F64(1.0));
    let vjp_out = client.call_t("gmm", &[Transform::Vjp], seeded)?;
    assert_eq!(
        vjp_out[0].as_f64().to_bits(),
        want_grad.scalar().to_bits(),
        "[vjp] primal must equal the in-process objective"
    );
    println!("[vjp]-transformed request served with explicit seed");

    // A vmapped request: stack B=3 argument sets and compare against
    // three separate in-process calls.
    let km_args: Vec<Vec<Value>> = (0..3)
        .map(|i| kmeans::KmeansData::generate(12, 2, 3, i).ir_args())
        .collect();
    let stacked = fir_api::batch::stack_args(&km_args).expect("homogeneous batch stacks");
    let vmapped = client.call_t("kmeans-dense", &[Transform::Vmap], stacked)?;
    let km_ref = reference
        .compile(&kmeans::dense_objective_ir())
        .map_err(to_net)?;
    let batch_out = vmapped[0].as_arr();
    for (i, one) in km_args.iter().enumerate() {
        let want = km_ref.call(one).map_err(to_net)?;
        assert_eq!(batch_out.f64s()[i].to_bits(), want[0].as_f64().to_bits());
    }
    println!("vmapped batch of 3 served over the wire, bitwise-identical");

    // Tenant quotas: "free" has a burst of 2 and effectively no refill;
    // the third request must shed with a typed error naming the tenant.
    // (The external server binary configures the same "free" tenant.)
    let mut free = NetClient::connect(&addr)?.with_tenant("free");
    let tiny = gmm::GmmData::generate(2, 1, 1, 0).ir_args();
    free.call("gmm", tiny.clone())?;
    free.call("gmm", tiny.clone())?;
    match free.call("gmm", tiny.clone()) {
        Err(NetError::Remote(e)) => {
            assert_eq!(e.code, "overloaded");
            assert_eq!(e.tenant.as_deref(), Some("free"));
            println!("over-quota tenant shed: {}", e.message);
        }
        other => panic!("expected the free tenant to be shed, got {other:?}"),
    }

    // The metrics op returns the merged snapshot; its "net" section
    // carries connection, frame, and per-tenant counters.
    let metrics = client.metrics_json()?;
    let parsed = fir_trace::json::parse(&metrics).expect("metrics JSON parses");
    let net = parsed.get("net").expect("net section");
    let accepted = net
        .get("connections_accepted")
        .and_then(|v| v.as_num())
        .expect("counter");
    assert!(accepted >= 2.0);
    let tenants = net
        .get("tenants")
        .and_then(|t| t.as_arr())
        .expect("tenants");
    assert!(tenants
        .iter()
        .any(|t| t.get("tenant").and_then(|n| n.as_str()) == Some("free")));
    println!(
        "metrics op: {accepted:.0} connections, {} tenants tracked",
        tenants.len()
    );

    // Shut the server down over the wire.
    client.shutdown_server()?;
    println!("server acknowledged shutdown");
    if let Some(server) = local.take() {
        let m = server.shutdown_within(Duration::from_secs(5));
        println!(
            "drained: {} requests completed, {} frames sent",
            m.completed(),
            m.net.as_ref().map_or(0, |n| n.frames_sent)
        );
    }
    Ok(())
}

fn to_net(e: futhark_ad_repro::FirError) -> NetError {
    NetError::Config {
        what: e.to_string(),
    }
}
