//! Compute the GMM log-likelihood gradient three ways — reverse AD through
//! the staged engine, the tape baseline, and the hand-written derivative —
//! and show they agree (the setting of Table 1 / Table 5 of the paper).
//!
//! Run with `cargo run --release --example gmm_gradient`.

use futhark_ad::gradcheck::max_rel_error;
use futhark_ad_repro::{Engine, FirError};
use workloads::gmm;

fn main() -> Result<(), FirError> {
    let data = gmm::GmmData::generate(200, 8, 5, 42);
    let engine = Engine::new();
    let cf = engine.compile(&gmm::objective_ir())?;

    // Reverse AD (this work): the unit seed is derived from the result
    // type, and the adjoints come back one per differentiable parameter.
    let g = cf.grad(&data.ir_args())?;
    println!("objective            = {:.6}", g.scalar());
    // Parameter adjoints follow the data-point adjoint: skip it.
    let ad: Vec<f64> = g.grads[1..]
        .iter()
        .flat_map(|v| v.as_arr().f64s().to_vec())
        .collect();

    // Tape-based baseline.
    let tape = tape_ad::gradient(cf.fun(), &data.ir_args());
    println!(
        "tape objective       = {:.6} (tape length {})",
        tape.value, tape.tape_len
    );

    // Hand-written gradient.
    let (da, dm, dl) = gmm::gradient_manual(&data);
    let manual: Vec<f64> = da.into_iter().chain(dm).chain(dl).collect();

    println!(
        "max relative error, AD vs manual gradient: {:.3e}",
        max_rel_error(&ad, &manual)
    );
    let tape_params = &tape.gradient[tape.gradient.len() - manual.len()..];
    println!(
        "max relative error, tape vs manual gradient: {:.3e}",
        max_rel_error(tape_params, &manual)
    );
    Ok(())
}
