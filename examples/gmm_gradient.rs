//! Compute the GMM log-likelihood gradient three ways — reverse AD on the
//! IR, the tape baseline, and the hand-written derivative — and show they
//! agree (the setting of Table 1 / Table 5 of the paper).
//!
//! Run with `cargo run --release --example gmm_gradient`.

use futhark_ad::gradcheck::max_rel_error;
use futhark_ad::vjp;
use interp::{Interp, Value};
use workloads::gmm;

fn main() {
    let data = gmm::GmmData::generate(200, 8, 5, 42);
    let fun = gmm::objective_ir();
    let interp = Interp::new();

    // Reverse AD (this work).
    let dfun = vjp(&fun);
    let mut args = data.ir_args();
    args.push(Value::F64(1.0));
    let out = interp.run(&dfun, &args);
    println!("objective            = {:.6}", out[0].as_f64());
    let ad: Vec<f64> = out[2..]
        .iter()
        .flat_map(|v| match v {
            Value::Arr(a) => a.f64s().to_vec(),
            Value::F64(x) => vec![*x],
            _ => vec![],
        })
        .collect();

    // Tape-based baseline.
    let tape = tape_ad::gradient(&fun, &data.ir_args());
    println!(
        "tape objective       = {:.6} (tape length {})",
        tape.value, tape.tape_len
    );

    // Hand-written gradient.
    let (da, dm, dl) = gmm::gradient_manual(&data);
    let manual: Vec<f64> = da.into_iter().chain(dm).chain(dl).collect();

    let ad_params = &ad[ad.len() - manual.len()..];
    println!(
        "max relative error, AD vs manual gradient: {:.3e}",
        max_rel_error(ad_params, &manual)
    );
    let tape_params = &tape.gradient[tape.gradient.len() - manual.len()..];
    println!(
        "max relative error, tape vs manual gradient: {:.3e}",
        max_rel_error(tape_params, &manual)
    );
}
