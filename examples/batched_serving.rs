//! Batched serving: one compiled gradient handle serving a batch of
//! independent GMM requests, per-call vs. `grad_batch` on the persistent
//! worker pool. This is the building block of the serving path: compile
//! once, validate and execute each request fallibly, amortize dispatch
//! across the batch.
//!
//! Run with `cargo run --release --example batched_serving`.

use futhark_ad_repro::{Engine, FirError};
use interp::Value;
use std::time::Instant;
use workloads::gmm;

fn main() -> Result<(), FirError> {
    // A sequential-execution engine: all parallelism comes from running
    // the batch's requests concurrently on the worker pool.
    let engine = Engine::by_name("vm-seq")?;
    let cf = engine.compile(&gmm::objective_ir())?;

    // 32 independent "requests" (distinct datasets, same program).
    let batch: Vec<Vec<Value>> = (0..32)
        .map(|i| gmm::GmmData::generate(300, 8, 5, 1000 + i).ir_args())
        .collect();

    // Warm up: derives + compiles the vjp handle once.
    cf.grad(&batch[0])?;

    let t0 = Instant::now();
    let mut per_call = Vec::with_capacity(batch.len());
    for args in &batch {
        per_call.push(cf.grad(args)?);
    }
    let t_loop = t0.elapsed();

    let t0 = Instant::now();
    let batched = cf.grad_batch(&batch)?;
    let t_batch = t0.elapsed();

    for (a, b) in per_call.iter().zip(&batched) {
        assert_eq!(a.scalar().to_bits(), b.scalar().to_bits());
    }
    println!(
        "batch of {} GMM gradient requests over {} pool worker(s)",
        batch.len(),
        interp::WorkerPool::global().num_workers()
    );
    println!("(amortization scales with available cores; ~1x on a single-core machine)");
    println!("  per-call loop : {t_loop:?}");
    println!("  grad_batch    : {t_batch:?}");
    println!(
        "  amortization  : {:.2}x",
        t_loop.as_secs_f64() / t_batch.as_secs_f64()
    );

    // A malformed request fails cleanly without taking the batch down.
    let mut bad = batch[0].clone();
    bad.pop();
    match cf.grad(&bad) {
        Err(e) => println!("  malformed request rejected: {e}"),
        Ok(_) => unreachable!("arity mismatch must be rejected"),
    }
    Ok(())
}
