//! Batched serving through `fir-serve`: all nine paper workloads
//! registered behind one server, several client threads submitting
//! concurrent gradient and primal requests, and the live metrics
//! snapshot printed at the end.
//!
//! The server coalesces queued requests into micro-batches
//! (`max_batch_size`/`max_wait` policy), executes them on the persistent
//! `firvm` worker pool with per-request error isolation, and sheds load
//! with `Overloaded` when a bounded queue fills.
//!
//! Run with `cargo run --release --example batched_serving`.

use futhark_ad_repro::{BatchPolicy, Engine, Request, ServeError, ServerBuilder, Transform};
use std::time::Duration;
use workloads::{adbench, gmm, kmeans, lstm, mc};

fn main() -> Result<(), ServeError> {
    // A sequential-execution engine: all parallelism comes from serving
    // (concurrent batches on the worker pool), which isolates what the
    // serving layer itself buys.
    let engine = Engine::by_name("vm-seq").map_err(ServeError::Exec)?;

    // All nine workloads behind one runtime, sharing one engine cache.
    let lstm_data = lstm::LstmData::generate(4, 3, 4, 2, 0);
    let dlstm_data = adbench::DlstmData::generate(8, 4, 4, 0);
    let server = ServerBuilder::new(engine)
        .batch_policy(BatchPolicy {
            max_batch_size: 16,
            max_wait: Duration::from_millis(2),
        })
        .queue_capacity(256)
        .register("gmm", &gmm::objective_ir())
        .register("kmeans-dense", &kmeans::dense_objective_ir())
        .register("kmeans-sparse", &kmeans::sparse_objective_ir())
        .register("lstm", &lstm::objective_ir(lstm_data.h, lstm_data.bs))
        .register("ba", &adbench::ba_objective_ir())
        .register("hand-simple", &adbench::hand_objective_ir(false))
        .register("hand-complicated", &adbench::hand_objective_ir(true))
        .register("d-lstm", &adbench::dlstm_objective_ir(dlstm_data.h))
        .register(
            "xsbench",
            &mc::xsbench_ir(mc::XsData::generate(8, 4, 64, 0).g),
        )
        .build()?;
    println!(
        "serving {} workloads: {:?}",
        server.fn_keys().len(),
        server.fn_keys()
    );

    // Four client threads hammer the two hottest workloads with gradient
    // requests; each client checks its own results against a reference.
    let reference = Engine::by_name("vm-seq").map_err(ServeError::Exec)?;
    let gmm_ref = reference
        .compile(&gmm::objective_ir())
        .map_err(ServeError::Exec)?;
    let km_ref = reference
        .compile(&kmeans::dense_objective_ir())
        .map_err(ServeError::Exec)?;
    std::thread::scope(|scope| {
        for client in 0..4 {
            let server = &server;
            let (gmm_ref, km_ref) = (&gmm_ref, &km_ref);
            scope.spawn(move || {
                for i in 0..8 {
                    let seed = (client * 100 + i) as u64;
                    let args = gmm::GmmData::generate(60, 4, 3, seed).ir_args();
                    let got = server.grad("gmm", args.clone()).expect("gmm grad");
                    let want = gmm_ref.grad(&args).expect("gmm reference");
                    assert_eq!(got.scalar().to_bits(), want.scalar().to_bits());

                    let args = kmeans::KmeansData::generate(40, 3, 4, seed).ir_args();
                    let got = server
                        .call("kmeans-dense", args.clone())
                        .expect("kmeans call");
                    let want = km_ref.call(&args).expect("kmeans reference");
                    assert_eq!(got[0].as_f64().to_bits(), want[0].as_f64().to_bits());
                }
            });
        }
    });

    // Requests can target a transform stack of a registered function: a
    // [Vjp] request passes explicit adjoint seeds and resolves with the
    // transformed program's results (primal + adjoints). The derived
    // program compiled once and is micro-batched separately from plain
    // calls — batches are homogeneous in (key, stack).
    let args = gmm::GmmData::generate(60, 4, 3, 7).ir_args();
    let mut seeded = args.clone();
    seeded.push(interp::Value::F64(1.0));
    let vjp_out = server
        .submit(Request::new("gmm", seeded).with_transforms([Transform::Vjp]))?
        .wait()?;
    let want = gmm_ref.grad(&args).map_err(ServeError::Exec)?;
    assert_eq!(vjp_out[0].as_f64().to_bits(), want.scalar().to_bits());
    println!(
        "transformed [vjp] request served: objective {:.6}, {} adjoint blocks",
        vjp_out[0].as_f64(),
        vjp_out.len() - 1
    );

    // A malformed request resolves its own ticket with an error — its
    // batchmates (the loop above) were never at risk.
    let bad = server.submit(Request::new("gmm", vec![]))?;
    match bad.wait() {
        Err(ServeError::Exec(e)) => println!("malformed request rejected in isolation: {e}"),
        other => panic!("expected per-request Exec error, got {other:?}"),
    }

    // Unknown keys are refused at admission.
    match server.call("not-registered", vec![]) {
        Err(ServeError::UnknownFn { fn_key, .. }) => {
            println!("unknown function refused at admission: {fn_key:?}")
        }
        other => panic!("expected UnknownFn, got {other:?}"),
    }

    // Graceful shutdown drains in-flight work and returns final metrics.
    let metrics = server.shutdown();
    println!("\nfinal metrics snapshot:\n{}", metrics.to_json());
    let gmm_m = &metrics.fns[0];
    assert_eq!(gmm_m.fn_key, "gmm");
    assert_eq!(
        gmm_m.completed, 33,
        "4 clients x 8 gmm gradients + the [vjp] transform request"
    );
    assert_eq!(gmm_m.failed, 1, "the malformed request");
    assert!(gmm_m.batches >= 1);
    println!(
        "gmm: {} completed over {} batches (mean batch {:.2}), p50={}us p99={}us",
        gmm_m.completed,
        gmm_m.batches,
        gmm_m.batch_sizes.mean(),
        gmm_m.latency_us.quantile(0.5),
        gmm_m.latency_us.quantile(0.99),
    );
    Ok(())
}
