//! Quickstart: build a small array program, differentiate it with reverse
//! mode, and evaluate both on the parallel interpreter.
//!
//! Run with `cargo run --release --example quickstart`.

use fir::builder::Builder;
use fir::types::Type;
use futhark_ad::{jvp, vjp};
use interp::{Interp, Value};

fn main() {
    // f(xs, ys) = sum (map2 (\x y -> sin x * y) xs ys)
    let mut b = Builder::new();
    let f = b.build_fun(
        "objective",
        &[Type::arr_f64(1), Type::arr_f64(1)],
        |b, ps| {
            let prods = b.map1(Type::arr_f64(1), &[ps[0], ps[1]], |b, es| {
                let s = b.fsin(es[0].into());
                vec![b.fmul(s, es[1].into())]
            });
            vec![b.sum(prods).into()]
        },
    );
    println!("Primal program:\n{f}");

    let xs = Value::from(vec![0.1, 0.2, 0.3, 0.4]);
    let ys = Value::from(vec![1.0, -1.0, 2.0, 0.5]);
    let interp = Interp::new();
    let out = interp.run(&f, &[xs.clone(), ys.clone()]);
    println!("f(xs, ys) = {}", out[0].as_f64());

    // Reverse mode: one pass gives the gradient with respect to both arrays.
    let df = vjp(&f);
    let out = interp.run(&df, &[xs.clone(), ys.clone(), Value::F64(1.0)]);
    println!("d f / d xs = {:?}", out[1].as_arr().f64s());
    println!("d f / d ys = {:?}", out[2].as_arr().f64s());

    // Forward mode: a directional derivative.
    let jf = jvp(&f);
    let dir = Value::from(vec![1.0, 0.0, 0.0, 0.0]);
    let zero = Value::from(vec![0.0; 4]);
    let out = interp.run(&jf, &[xs, ys, dir, zero]);
    println!("directional derivative along e_0 = {}", out[1].as_f64());
}
