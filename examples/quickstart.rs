//! Quickstart: build a small array program, compile it once with an
//! [`Engine`], and use the staged handle for execution, reverse mode,
//! forward mode, and composed transforms (`vmap ∘ vjp` per-example
//! gradients) — seeds and tangents are derived automatically, and the
//! engine's cache/optimizer statistics print as plain lines at the end.
//!
//! Run with `cargo run --release --example quickstart`.

use fir::builder::Builder;
use fir::types::Type;
use futhark_ad_repro::{Engine, FirError};
use interp::Value;

fn main() -> Result<(), FirError> {
    // f(xs, ys) = sum (map2 (\x y -> sin x * y) xs ys)
    let mut b = Builder::new();
    let f = b.build_fun(
        "objective",
        &[Type::arr_f64(1), Type::arr_f64(1)],
        |b, ps| {
            let prods = b.map1(Type::arr_f64(1), &[ps[0], ps[1]], |b, es| {
                let s = b.fsin(es[0].into());
                vec![b.fmul(s, es[1].into())]
            });
            vec![b.sum(prods).into()]
        },
    );
    println!("Primal program:\n{f}");

    // Compile once: type-checked, simplified, lowered to the backend.
    let engine = Engine::new();
    let cf = engine.compile(&f)?;

    let xs = Value::from(vec![0.1, 0.2, 0.3, 0.4]);
    let ys = Value::from(vec![1.0, -1.0, 2.0, 0.5]);
    let args = [xs, ys];
    println!("f(xs, ys) = {}", cf.call_scalar(&args)?);

    // Reverse mode: one pass gives the gradient with respect to both
    // arrays; the unit seed is derived from the result type.
    let g = cf.grad(&args)?;
    println!("d f / d xs = {:?}", g.grads[0].as_arr().f64s());
    println!("d f / d ys = {:?}", g.grads[1].as_arr().f64s());

    // Forward mode: a directional derivative along e_0 of xs (the tangent
    // of ys is auto-inserted as zeros).
    let dual = cf.pushforward(&args, &[(0, Value::from(vec![1.0, 0.0, 0.0, 0.0]))])?;
    println!(
        "directional derivative along e_0 = {}",
        dual.flat_tangents()[0]
    );

    // Composed transforms: vmap(vjp(f)) computes per-example gradients of
    // a whole batch in one program execution — bitwise-identical to the
    // per-example loop above, compiled once, cached by (source, stack).
    let per_example = cf.vjp()?.vmap()?;
    let batch: Vec<Vec<Value>> = (0..3)
        .map(|i| {
            let mut a = args.to_vec();
            if let Value::Arr(xs) = &mut a[0] {
                *xs = interp::Array::from_f64(
                    xs.shape.clone(),
                    xs.f64s().iter().map(|x| x + 0.1 * i as f64).collect(),
                );
            }
            a.push(Value::F64(1.0)); // the vjp seed of each example
            a
        })
        .collect();
    let stacked = fir_api::batch::stack_args(&batch).expect("same shapes stack");
    let outs = per_example.call(&stacked)?;
    println!(
        "per-example objectives via vmap∘vjp = {:?}",
        outs[0].as_arr().f64s()
    );
    println!(
        "per-example d f / d xs (example 0)  = {:?}",
        outs[1].as_arr().index(&[0]).as_arr().f64s()
    );

    // Cache and optimizer behavior, observable without reading JSON.
    println!("{}", engine.cache_stats());
    println!("{}", engine.opt_stats());

    // Execution tiers: a jit-tiered engine watches run counts and promotes
    // hot programs to native kernels. With a threshold of 3, the first two
    // calls run on the VM; the third promotes and already executes jitted.
    let hot = Engine::builder()
        .backend_name("vm")
        .jit_threshold(3)
        .build()?;
    let hf = hot.compile(&f)?;
    for _ in 0..5 {
        hf.call_scalar(&args)?;
    }
    // The same cache line now carries the tier counters.
    println!("{}", hot.cache_stats());
    Ok(())
}
