//! End-to-end observability: capture a structured trace of the GMM D5
//! gradient — compile pipeline, cache lookups, VM execution, worker
//! pool, and a served `[Vjp]` request — then export it as Chrome
//! trace-event JSON (`target/trace_gmm.json`, loadable in Perfetto or
//! `chrome://tracing`) and print the aggregated per-phase profile.
//!
//! Tracing is off by default (one relaxed atomic load per potential
//! event); this example flips it on with `fir_trace::set_enabled(true)`
//! and attaches the standard collector: a thread that periodically
//! [`fir_trace::drain`]s the bounded per-thread ring buffers and
//! [`fir_trace::Trace::extend`]s the batches into one continuous trace.
//! (A single GMM D5 gradient dispatches ~80k kernels, so with the
//! `profile` feature a busy thread wraps its ring in well under a
//! second — drain faster than that and nothing is lost.)
//!
//! Build with `--features profile` to record a span per SOAC kernel
//! dispatch inside the VM; without it the trace stays at whole-program
//! granularity and a few hundred events.
//!
//! Run with `cargo run --release --example tracing_profile`
//! (optionally `--features profile`).

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use futhark_ad_repro::{BatchPolicy, Engine, Request, ServeError, ServerBuilder, Transform};
use interp::Value;
use workloads::gmm;

fn main() -> Result<(), ServeError> {
    fir_trace::set_enabled(true);
    static DONE: AtomicBool = AtomicBool::new(false);
    let collector = std::thread::spawn(|| {
        let mut acc = fir_trace::Trace::default();
        while !DONE.load(Ordering::Acquire) {
            // 2ms, not 10: with `profile` + the jit tier every SOAC
            // dispatch is a span, and a busy ring can wrap in under 10ms
            // (which would evict the early compile events).
            std::thread::sleep(Duration::from_millis(2));
            acc.extend(fir_trace::drain());
        }
        acc.extend(fir_trace::drain());
        acc
    });

    // --- Compile + grad directly through the engine (compile/cache/vm
    // spans), on the paper's GMM D5 instance: n=500, d=32, K=25.
    // `FIR_JIT_THRESHOLD=1` reruns the same workload on the jit-tiered
    // VM with eager promotion, so the per-phase profile shows the
    // specialization tier instead (the before/after pair in
    // EXPERIMENTS.md).
    // `FIR_MEMPLAN=1` swaps in `PassPipeline::standard_mem()`, so the
    // profile additionally shows the memory-planning pass (`opt/memplan`)
    // and the `compile/memplan` buffer-plan instant (the EXPERIMENTS.md
    // "Memory planning" excerpt).
    let memplan = std::env::var("FIR_MEMPLAN").is_ok();
    let engine = match std::env::var("FIR_JIT_THRESHOLD") {
        Ok(t) => Engine::builder()
            .backend_name("vm")
            .jit_threshold(t.parse().expect("FIR_JIT_THRESHOLD must be an integer"))
            .build(),
        Err(_) => Engine::by_name("vm"),
    }
    .map_err(ServeError::Exec)?;
    let engine = if memplan {
        engine.with_pipeline(futhark_ad_repro::PassPipeline::standard_mem())
    } else {
        engine
    };
    let f = engine
        .compile(&gmm::objective_ir())
        .map_err(ServeError::Exec)?;
    let data = gmm::GmmData::generate(500, 32, 25, 0);
    let args = data.ir_args();
    let g = f.grad(&args).map_err(ServeError::Exec)?;
    println!("gmm d5 objective: {:.6}", g.scalar());
    // A second gradient reuses the derived program (a "cache" instant in
    // the trace instead of a compile span).
    let _ = f.grad(&args).map_err(ServeError::Exec)?;

    // --- One [Vjp] request through the serving runtime: its trace id is
    // opened at admission and closed at ticket fulfillment, with the
    // batch span it rode in between.
    let server = ServerBuilder::new(engine)
        .batch_policy(BatchPolicy {
            max_batch_size: 8,
            max_wait: Duration::from_millis(1),
        })
        .register("gmm", &gmm::objective_ir())
        .build()?;
    let mut seeded = args.clone();
    seeded.push(Value::F64(1.0));
    let out = server
        .submit(Request::new("gmm", seeded).with_transforms([Transform::Vjp]))?
        .wait()?;
    println!("served [vjp] objective: {:.6}", out[0].as_f64());
    let metrics = server.shutdown();

    // --- Stop the collector and export.
    fir_trace::set_enabled(false);
    DONE.store(true, Ordering::Release);
    let trace = collector.join().expect("collector thread");
    assert!(!trace.is_empty(), "tracing was enabled; expected events");
    let chrome = trace.to_chrome_json();
    fir_trace::json::validate(&chrome).expect("exported trace must be valid JSON");
    for layer in ["compile", "vm", "serve"] {
        assert!(
            trace.events.iter().any(|e| e.cat == layer),
            "expected events from the {layer} layer"
        );
    }
    // Write under target/ so example runs never litter the source tree.
    std::fs::create_dir_all("target").expect("create target/");
    let out = "target/trace_gmm.json";
    std::fs::write(out, &chrome).expect("write trace_gmm.json");
    println!(
        "\nwrote {out} ({} events from {} threads) — open in Perfetto",
        trace.events.len(),
        trace.threads.len()
    );

    println!("\nper-phase profile (self time excludes child spans):");
    println!("{}", trace.profile());

    println!("serve metrics snapshot:\n{}", metrics.to_json());
    Ok(())
}
