//! `futhark-ad-repro` — umbrella crate for the reproduction of
//! *"AD for an Array Language with Nested Parallelism"* (SC 2022).
//!
//! The crates of the workspace are re-exported here so examples and
//! integration tests have a single import point:
//!
//! * [`fir`] — the nested-parallel array IR,
//! * [`interp`] — the bulk-parallel evaluator (the GPU-backend stand-in),
//! * [`futhark_ad`] — forward (`jvp`) and reverse (`vjp`) AD (the paper's
//!   contribution),
//! * [`fir_opt`] — simplification passes,
//! * [`tape_ad`] — the tape-based (Tapenade-like) baseline,
//! * [`tensor`] — the eager autograd (PyTorch-like) baseline,
//! * [`workloads`] — the nine evaluation benchmarks.

pub use fir;
pub use fir_opt;
pub use futhark_ad;
pub use interp;
pub use tape_ad;
pub use tensor;
pub use workloads;
