//! `futhark-ad-repro` — umbrella crate for the reproduction of
//! *"AD for an Array Language with Nested Parallelism"* (SC 2022).
//!
//! The **primary entry point** is the staged API of [`fir_api`], re-exported
//! here: build IR with [`fir`]'s `Builder`, compile it with an
//! [`Engine`], and use the [`CompiledFn`] handle to execute, batch, and
//! derive AD transforms:
//!
//! ```
//! use fir::builder::Builder;
//! use fir::types::Type;
//! use futhark_ad_repro::Engine;
//! use interp::Value;
//!
//! let mut b = Builder::new();
//! let square_sum = b.build_fun("sqsum", &[Type::arr_f64(1)], |b, ps| {
//!     let sq = b.map1(Type::arr_f64(1), &[ps[0]], |b, es| {
//!         vec![b.fmul(es[0].into(), es[0].into())]
//!     });
//!     vec![b.sum(sq).into()]
//! });
//!
//! let engine = Engine::new();
//! let f = engine.compile(&square_sum)?;
//! let g = f.grad(&[Value::from(vec![1.0, 2.0, 3.0])])?;
//! assert_eq!(g.scalar(), 14.0);
//! assert_eq!(g.grads[0].as_arr().f64s(), &[2.0, 4.0, 6.0]);
//! # Ok::<(), futhark_ad_repro::FirError>(())
//! ```
//!
//! The crates of the workspace are re-exported as well, for callers that
//! work below the staged API:
//!
//! * [`fir`] — the nested-parallel array IR,
//! * [`fir_api`] — the staged `Engine`/`CompiledFn` API (this crate's
//!   primary surface),
//! * [`interp`] — the bulk-parallel tree-walking evaluator,
//! * [`firvm`] — the compiled register-bytecode VM backend (both execution
//!   backends implement the two-phase [`interp::Backend`] trait),
//! * [`futhark_ad`] — forward (`jvp`) and reverse (`vjp`) AD (the paper's
//!   contribution),
//! * [`fir_opt`] — simplification passes,
//! * [`fir_cache`] — the persistent on-disk compile cache (versioned
//!   bytecode codec + fingerprint-keyed store) behind
//!   [`EngineBuilder::persistent_cache`],
//! * [`fir_serve`] — the concurrent serving runtime (dynamic
//!   micro-batching, admission control, live metrics) over an `Engine`,
//! * [`fir_net`] — the network-facing tier over `fir_serve`: TCP wire
//!   protocol, serving shards, adaptive batching, per-tenant fairness,
//! * [`fir_trace`] — structured tracing/profiling (Chrome trace export,
//!   per-phase profile reports) recorded by every layer above,
//! * [`tape_ad`] — the tape-based (Tapenade-like) baseline,
//! * [`tensor`] — the eager autograd (PyTorch-like) baseline,
//! * [`workloads`] — the nine evaluation benchmarks.

pub use fir;
pub use fir_api;
pub use fir_cache;
pub use fir_net;
pub use fir_opt;
pub use fir_serve;
pub use fir_trace;
pub use firvm;
pub use futhark_ad;
pub use interp;
pub use tape_ad;
pub use tensor;
pub use workloads;

pub use fir_api::{
    CacheStats, CompiledFn, Dual, Engine, EngineBuilder, FirError, GradOutput, OptStats, Pass,
    PassPipeline, PersistentStats, PipelineStats, Transform, BACKEND_NAMES,
};
pub use fir_net::{
    AdaptiveConfig, NetClient, NetError, NetServer, NetServerBuilder, TenantConfig, TenantPolicy,
};
pub use fir_serve::{BatchPolicy, Request, RequestKind, ServeError, Server, ServerBuilder, Ticket};
