//! `futhark-ad-repro` — umbrella crate for the reproduction of
//! *"AD for an Array Language with Nested Parallelism"* (SC 2022).
//!
//! The crates of the workspace are re-exported here so examples and
//! integration tests have a single import point:
//!
//! * [`fir`] — the nested-parallel array IR,
//! * [`interp`] — the bulk-parallel tree-walking evaluator,
//! * [`firvm`] — the compiled register-bytecode VM backend (both execution
//!   backends implement [`interp::Backend`]),
//! * [`futhark_ad`] — forward (`jvp`) and reverse (`vjp`) AD (the paper's
//!   contribution),
//! * [`fir_opt`] — simplification passes,
//! * [`tape_ad`] — the tape-based (Tapenade-like) baseline,
//! * [`tensor`] — the eager autograd (PyTorch-like) baseline,
//! * [`workloads`] — the nine evaluation benchmarks.

pub use fir;
pub use fir_opt;
pub use firvm;
pub use futhark_ad;
pub use interp;
pub use tape_ad;
pub use tensor;
pub use workloads;

/// Select an execution backend by name: `"interp"`, `"interp-seq"`, `"vm"`
/// (alias `"firvm"`), or `"vm-seq"`. The `FIR_BACKEND` environment variable
/// selects the default for [`default_backend`].
pub fn backend_by_name(name: &str) -> Option<Box<dyn interp::Backend>> {
    firvm::backend_by_name(name)
}

/// The backend named by the `FIR_BACKEND` environment variable, defaulting
/// to the compiled VM.
pub fn default_backend() -> Box<dyn interp::Backend> {
    let name = std::env::var("FIR_BACKEND").unwrap_or_else(|_| "vm".to_string());
    backend_by_name(&name)
        .unwrap_or_else(|| panic!("unknown FIR_BACKEND {name:?}; try \"vm\" or \"interp\""))
}
