//! End-to-end correctness of reverse- and forward-mode AD: every generated
//! derivative is validated against central finite differences, and the
//! generated IR is re-checked by the type checker.

use fir::builder::Builder;
use fir::ir::{Atom, Fun, ReduceOp};
use fir::typecheck::check_fun;
use fir::types::Type;
use futhark_ad::gradcheck::{
    assert_gradients_match, finite_diff_gradient, max_rel_error, reverse_gradient,
};
use futhark_ad::{jvp, vjp};
use interp::{Array, Interp, Value};

fn vec_f64(v: Vec<f64>) -> Value {
    Value::from(v)
}

fn mat(shape: [usize; 2], v: Vec<f64>) -> Value {
    Value::Arr(Array::from_f64(shape.to_vec(), v))
}

fn checked_vjp(fun: &Fun) -> Fun {
    check_fun(fun).expect("primal function ill-typed");
    let d = vjp(fun);
    check_fun(&d).unwrap_or_else(|e| panic!("vjp({}) ill-typed: {e}\n{d}", fun.name));
    d
}

// ---------------------------------------------------------------------
// Scalar programs
// ---------------------------------------------------------------------

#[test]
fn scalar_chain_matches_fd() {
    let mut b = Builder::new();
    let f = b.build_fun("chain", &[Type::F64, Type::F64], |b, ps| {
        let x = Atom::Var(ps[0]);
        let y = Atom::Var(ps[1]);
        let s = b.fsin(x);
        let e = b.fexp(s);
        let q = b.fmul(e, y);
        let l = b.flog(y);
        let t = b.fadd(q, l);
        let r = b.fdiv(t, x);
        vec![r]
    });
    let _ = checked_vjp(&f);
    assert_gradients_match(&f, &[Value::F64(1.3), Value::F64(2.7)], 1e-5);
}

#[test]
fn figure1_example_adjoints() {
    // The running example of Fig. 1: f(x0, x1) = (x1 * sin(x0), x0 * x1).
    let mut b = Builder::new();
    let f = b.build_fun("fig1", &[Type::F64, Type::F64], |b, ps| {
        let x0 = Atom::Var(ps[0]);
        let x1 = Atom::Var(ps[1]);
        let w0 = b.fsin(x0);
        let w1 = b.fmul(x1, w0);
        let w2 = b.fmul(x0, x1);
        vec![w1, w2]
    });
    let d = checked_vjp(&f);
    let (x0, x1) = (0.7, -1.9);
    let (y0b, y1b) = (0.3, 1.1);
    let out = Interp::sequential().run(
        &d,
        &[
            Value::F64(x0),
            Value::F64(x1),
            Value::F64(y0b),
            Value::F64(y1b),
        ],
    );
    // Analytic vjp: x̄0 = ȳ0·x1·cos(x0) + ȳ1·x1 ; x̄1 = ȳ0·sin(x0) + ȳ1·x0.
    let want_x0 = y0b * x1 * x0.cos() + y1b * x1;
    let want_x1 = y0b * x0.sin() + y1b * x0;
    assert!((out[2].as_f64() - want_x0).abs() < 1e-12);
    assert!((out[3].as_f64() - want_x1).abs() < 1e-12);
}

#[test]
fn scalar_special_functions() {
    let mut b = Builder::new();
    let f = b.build_fun("specials", &[Type::F64], |b, ps| {
        let x = Atom::Var(ps[0]);
        let t = b.ftanh(x);
        let s = b.fsigmoid(x);
        let q = b.fsqrt(x);
        let a = b.fabs(x);
        let r = b.frecip(x);
        let p = b.fpow(x, Atom::f64(2.5));
        let m1 = b.fadd(t, s);
        let m2 = b.fadd(q, a);
        let m3 = b.fadd(r, p);
        let m4 = b.fadd(m1, m2);
        vec![b.fadd(m3, m4)]
    });
    assert_gradients_match(&f, &[Value::F64(0.8)], 1e-5);
}

#[test]
fn min_max_select_gradients() {
    let mut b = Builder::new();
    let f = b.build_fun("minmax", &[Type::F64, Type::F64], |b, ps| {
        let x = Atom::Var(ps[0]);
        let y = Atom::Var(ps[1]);
        let mn = b.fmin(x, y);
        let mx = b.fmax(x, y);
        let c = b.lt(x, y);
        let s = b.select(c, mx, mn);
        let t = b.fmul(mn, mx);
        vec![b.fadd(s, t)]
    });
    assert_gradients_match(&f, &[Value::F64(1.5), Value::F64(-2.5)], 1e-5);
    assert_gradients_match(&f, &[Value::F64(-0.5), Value::F64(3.0)], 1e-5);
}

// ---------------------------------------------------------------------
// map / reduce
// ---------------------------------------------------------------------

#[test]
fn sum_of_squares_gradient() {
    let mut b = Builder::new();
    let f = b.build_fun("sumsq", &[Type::arr_f64(1)], |b, ps| {
        let sq = b.map1(Type::arr_f64(1), &[ps[0]], |b, es| {
            vec![b.fmul(es[0].into(), es[0].into())]
        });
        vec![Atom::Var(b.sum(sq))]
    });
    let d = checked_vjp(&f);
    let xs = vec![1.0, -2.0, 3.0, 0.5];
    let out = Interp::sequential().run(&d, &[vec_f64(xs.clone()), Value::F64(1.0)]);
    let grad = out[1].as_arr().f64s().to_vec();
    for (g, x) in grad.iter().zip(&xs) {
        assert!((g - 2.0 * x).abs() < 1e-12);
    }
}

#[test]
fn dot_product_gradient() {
    let mut b = Builder::new();
    let f = b.build_fun("dot", &[Type::arr_f64(1), Type::arr_f64(1)], |b, ps| {
        let prods = b.map1(Type::arr_f64(1), &[ps[0], ps[1]], |b, es| {
            vec![b.fmul(es[0].into(), es[1].into())]
        });
        vec![Atom::Var(b.sum(prods))]
    });
    assert_gradients_match(
        &f,
        &[vec_f64(vec![1.0, 2.0, -3.0]), vec_f64(vec![0.5, -1.5, 2.5])],
        1e-5,
    );
}

#[test]
fn map_with_free_scalar_variable() {
    // f(xs, c) = sum (map (\x -> x * c + c*c) xs): the free scalar c gets a
    // reduced per-element contribution.
    let mut b = Builder::new();
    let f = b.build_fun("freescalar", &[Type::arr_f64(1), Type::F64], |b, ps| {
        let c = Atom::Var(ps[1]);
        let ys = b.map1(Type::arr_f64(1), &[ps[0]], |b, es| {
            let t = b.fmul(es[0].into(), c);
            let cc = b.fmul(c, c);
            vec![b.fadd(t, cc)]
        });
        vec![Atom::Var(b.sum(ys))]
    });
    assert_gradients_match(&f, &[vec_f64(vec![1.0, 2.0, 3.0]), Value::F64(0.7)], 1e-5);
}

#[test]
fn map_with_free_array_indexing_becomes_accumulator() {
    // f(xs, is) = sum (map (\i -> xs[i] * xs[i]) is): reads of the free array
    // turn into accumulator updates in the reverse sweep. Duplicate indices
    // exercise the atomic accumulation.
    let mut b = Builder::new();
    let f = b.build_fun(
        "gathersq",
        &[Type::arr_f64(1), Type::arr_i64(1)],
        |b, ps| {
            let xs = ps[0];
            let ys = b.map1(Type::arr_f64(1), &[ps[1]], |b, es| {
                let x = b.index(xs, &[es[0].into()]);
                vec![b.fmul(x.into(), x.into())]
            });
            vec![Atom::Var(b.sum(ys))]
        },
    );
    let d = checked_vjp(&f);
    let xs = vec![1.0, 2.0, 3.0, 4.0];
    let inds = Value::from(vec![0i64, 2, 2, 3]);
    let out = Interp::sequential().run(&d, &[vec_f64(xs.clone()), inds.clone(), Value::F64(1.0)]);
    let grad = out[1].as_arr().f64s().to_vec();
    // d/dx_j = 2*x_j * (#occurrences of j in is)
    assert_eq!(grad, vec![2.0, 0.0, 12.0, 8.0]);
    // And agrees with finite differences of the (f64-only) inputs.
    let interp = Interp::sequential();
    let fd = finite_diff_gradient(&interp, &f, &[vec_f64(xs.clone()), inds.clone()], 1e-5);
    let (_, ad) = reverse_gradient(&interp, &f, &[vec_f64(xs), inds]);
    assert!(max_rel_error(&ad, &fd) < 1e-5);
}

#[test]
fn nested_map_matrix_gradient() {
    // f(xss) = sum (map (\row -> sum (map (\x -> x*x*x) row)) xss)
    let mut b = Builder::new();
    let f = b.build_fun("matcube", &[Type::arr_f64(2)], |b, ps| {
        let rows = b.map1(Type::arr_f64(1), &[ps[0]], |b, rs| {
            let cubes = b.map1(Type::arr_f64(1), &[rs[0]], |b, es| {
                let x2 = b.fmul(es[0].into(), es[0].into());
                vec![b.fmul(x2, es[0].into())]
            });
            vec![Atom::Var(b.sum(cubes))]
        });
        vec![Atom::Var(b.sum(rows))]
    });
    let d = checked_vjp(&f);
    let data = vec![1.0, -2.0, 0.5, 3.0, 1.5, -1.0];
    let out = Interp::sequential().run(&d, &[mat([2, 3], data.clone()), Value::F64(1.0)]);
    let grad = out[1].as_arr().f64s().to_vec();
    for (g, x) in grad.iter().zip(&data) {
        assert!((g - 3.0 * x * x).abs() < 1e-10, "{g} vs {}", 3.0 * x * x);
    }
}

#[test]
fn matrix_multiply_gradient() {
    // The §6.1 running example: c = a · b, objective = sum of all entries.
    let mut b = Builder::new();
    let f = b.build_fun(
        "matmul_obj",
        &[Type::arr_f64(2), Type::arr_f64(2)],
        |b, ps| {
            let a = ps[0];
            let bm = ps[1];
            let m = b.len(a);
            let rows_i = b.iota(m);
            let c = b.map1(Type::arr_f64(2), &[rows_i], |b, iv| {
                let i = iv[0];
                let arow = b.index(a, &[i.into()]);
                let b0 = b.index(bm, &[Atom::i64(0)]);
                let n = b.len(b0);
                let cols_j = b.iota(n);
                let row = b.map1(Type::arr_f64(1), &[cols_j], |b, jv| {
                    let j = jv[0];
                    let k = b.len(arow);
                    let ks = b.iota(k);
                    let prods = b.map1(Type::arr_f64(1), &[ks], |b, kv| {
                        let aik = b.index(arow, &[kv[0].into()]);
                        let bkj = b.index(bm, &[kv[0].into(), j.into()]);
                        vec![b.fmul(aik.into(), bkj.into())]
                    });
                    vec![Atom::Var(b.sum(prods))]
                });
                vec![Atom::Var(row)]
            });
            let row_sums = b.map1(Type::arr_f64(1), &[c], |b, rs| {
                vec![Atom::Var(b.sum(rs[0]))]
            });
            vec![Atom::Var(b.sum(row_sums))]
        },
    );
    let a = mat([2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
    let bm = mat([3, 2], vec![0.5, -1.0, 2.0, 1.5, -0.5, 1.0]);
    assert_gradients_match(&f, &[a, bm], 1e-4);
}

#[test]
fn reduce_max_and_min_gradients() {
    let mut b = Builder::new();
    let f = b.build_fun("extrema", &[Type::arr_f64(1)], |b, ps| {
        let mx = b.maximum(ps[0]);
        let mn = b.minimum(ps[0]);
        vec![b.fsub(mx.into(), mn.into())]
    });
    let d = checked_vjp(&f);
    let out = Interp::sequential().run(&d, &[vec_f64(vec![3.0, -1.0, 7.0, 2.0]), Value::F64(1.0)]);
    assert_eq!(out[1].as_arr().f64s(), &[0.0, -1.0, 1.0, 0.0]);
    assert_gradients_match(&f, &[vec_f64(vec![3.0, -1.0, 7.0, 2.0])], 1e-5);
}

#[test]
fn general_reduce_operator_gradient() {
    // A non-standard (but associative) operator: a ⊙ b = a + b + a*b.
    let mut b = Builder::new();
    let f = b.build_fun("oddreduce", &[Type::arr_f64(1)], |b, ps| {
        let r = b.reduce(&[Type::F64], &[Atom::f64(0.0)], &[ps[0]], |b, es| {
            let s = b.fadd(es[0].into(), es[1].into());
            let p = b.fmul(es[0].into(), es[1].into());
            vec![b.fadd(s, p)]
        });
        vec![r[0].into()]
    });
    assert_gradients_match(&f, &[vec_f64(vec![0.1, 0.4, -0.2, 0.3, 0.25])], 1e-4);
}

#[test]
fn product_reduce_gradient_via_general_rule() {
    let mut b = Builder::new();
    let f = b.build_fun("prod", &[Type::arr_f64(1)], |b, ps| {
        let r = b.reduce_op(ReduceOp::Mul, ps[0]);
        vec![r.into()]
    });
    let d = checked_vjp(&f);
    let xs = vec![1.5, -2.0, 0.5, 3.0];
    let out = Interp::sequential().run(&d, &[vec_f64(xs.clone()), Value::F64(1.0)]);
    let grad = out[1].as_arr().f64s().to_vec();
    let prod: f64 = xs.iter().product();
    for (g, x) in grad.iter().zip(&xs) {
        assert!((g - prod / x).abs() < 1e-10);
    }
}

#[test]
fn multi_value_reduce_is_lowered_to_loop() {
    // reduce over pairs (sum, sum of squares) — exercises the loop-lowering
    // fallback for multi-value reductions.
    let mut b = Builder::new();
    let f = b.build_fun("pairred", &[Type::arr_f64(1)], |b, ps| {
        let sq = b.map1(Type::arr_f64(1), &[ps[0]], |b, es| {
            vec![b.fmul(es[0].into(), es[0].into())]
        });
        let r = b.reduce(
            &[Type::F64, Type::F64],
            &[Atom::f64(0.0), Atom::f64(0.0)],
            &[ps[0], sq],
            |b, es| {
                let s = b.fadd(es[0].into(), es[2].into());
                let q = b.fadd(es[1].into(), es[3].into());
                vec![s, q]
            },
        );
        vec![b.fmul(r[0].into(), r[1].into())]
    });
    assert_gradients_match(&f, &[vec_f64(vec![1.0, 2.0, 3.0])], 1e-5);
}

// ---------------------------------------------------------------------
// scan
// ---------------------------------------------------------------------

#[test]
fn scan_add_gradient() {
    // f(xs) = sum (map (*w_i) (scan (+) xs)) with weights from the index.
    let mut b = Builder::new();
    let f = b.build_fun("scanadd", &[Type::arr_f64(1)], |b, ps| {
        let s = b.scan_add(ps[0]);
        let n = b.len(s);
        let iot = b.iota(n);
        let weighted = b.map1(Type::arr_f64(1), &[s, iot], |b, es| {
            let w = b.to_f64(es[1].into());
            let w1 = b.fadd(w, Atom::f64(1.0));
            vec![b.fmul(es[0].into(), w1)]
        });
        vec![Atom::Var(b.sum(weighted))]
    });
    assert_gradients_match(&f, &[vec_f64(vec![0.5, -1.0, 2.0, 3.0])], 1e-5);
}

#[test]
fn scan_general_operator_gradient() {
    // scan with a non-additive operator: a ⊙ b = a*b + b (associative? not
    // necessarily — but the rule only relies on the recurrence structure).
    let mut b = Builder::new();
    let f = b.build_fun("scanmul", &[Type::arr_f64(1)], |b, ps| {
        let s = b.scan(&[Type::arr_f64(1)], &[Atom::f64(1.0)], &[ps[0]], |b, es| {
            vec![b.fmul(es[0].into(), es[1].into())]
        });
        vec![Atom::Var(b.sum(s[0]))]
    });
    assert_gradients_match(&f, &[vec_f64(vec![1.2, 0.8, 1.5, 0.9, 1.1])], 1e-4);
}

// ---------------------------------------------------------------------
// Histogram, scatter, in-place updates
// ---------------------------------------------------------------------

#[test]
fn histogram_add_gradient() {
    // f(vals) = sum (map (^2) (hist (+) inds vals))
    let mut b = Builder::new();
    let f = b.build_fun("histsq", &[Type::arr_f64(1), Type::arr_i64(1)], |b, ps| {
        let h = b.hist(ReduceOp::Add, Atom::i64(3), ps[1], ps[0]);
        let sq = b.map1(Type::arr_f64(1), &[h], |b, es| {
            vec![b.fmul(es[0].into(), es[0].into())]
        });
        vec![Atom::Var(b.sum(sq))]
    });
    let inds = Value::from(vec![0i64, 1, 0, 2, 1, 7]);
    assert_gradients_match(
        &f,
        &[vec_f64(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]), inds],
        1e-5,
    );
}

#[test]
fn histogram_max_gradient_via_loop_lowering() {
    let mut b = Builder::new();
    let f = b.build_fun("histmax", &[Type::arr_f64(1), Type::arr_i64(1)], |b, ps| {
        let h = b.hist(ReduceOp::Max, Atom::i64(2), ps[1], ps[0]);
        vec![Atom::Var(b.sum(h))]
    });
    let inds = Value::from(vec![0i64, 1, 0, 1]);
    assert_gradients_match(&f, &[vec_f64(vec![1.0, 5.0, 3.0, 2.0]), inds], 1e-5);
}

#[test]
fn scatter_gradient() {
    let mut b = Builder::new();
    let f = b.build_fun(
        "scattersum",
        &[Type::arr_f64(1), Type::arr_f64(1), Type::arr_i64(1)],
        |b, ps| {
            let dest = b.copy(ps[0]);
            let s = b.scatter(dest, ps[2], ps[1]);
            let sq = b.map1(Type::arr_f64(1), &[s], |b, es| {
                vec![b.fmul(es[0].into(), es[0].into())]
            });
            vec![Atom::Var(b.sum(sq))]
        },
    );
    let inds = Value::from(vec![1i64, 3]);
    assert_gradients_match(
        &f,
        &[
            vec_f64(vec![1.0, 2.0, 3.0, 4.0]),
            vec_f64(vec![10.0, 20.0]),
            inds,
        ],
        1e-5,
    );
}

#[test]
fn inplace_update_and_index_gradient() {
    let mut b = Builder::new();
    let f = b.build_fun("updidx", &[Type::arr_f64(1), Type::F64], |b, ps| {
        let xs = b.copy(ps[0]);
        let v2 = b.fmul(Atom::Var(ps[1]), Atom::Var(ps[1]));
        let xs2 = b.update(xs, &[Atom::i64(1)], v2);
        let a = b.index(xs2, &[Atom::i64(0)]);
        let c = b.index(xs2, &[Atom::i64(1)]);
        let t = b.fmul(a.into(), c.into());
        vec![t]
    });
    assert_gradients_match(&f, &[vec_f64(vec![2.0, 3.0, 4.0]), Value::F64(1.5)], 1e-5);
}

// ---------------------------------------------------------------------
// Control flow
// ---------------------------------------------------------------------

#[test]
fn branch_gradients_both_sides() {
    let mut b = Builder::new();
    let f = b.build_fun("branchy", &[Type::F64, Type::F64], |b, ps| {
        let x = Atom::Var(ps[0]);
        let y = Atom::Var(ps[1]);
        let c = b.lt(x, Atom::f64(0.0));
        let r = b.if_(
            c,
            &[Type::F64],
            |b| {
                let t = b.fmul(x, x);
                vec![b.fmul(t, y)]
            },
            |b| {
                let s = b.fsin(x);
                vec![b.fadd(s, y)]
            },
        );
        vec![r[0].into()]
    });
    assert_gradients_match(&f, &[Value::F64(-1.5), Value::F64(2.0)], 1e-5);
    assert_gradients_match(&f, &[Value::F64(1.5), Value::F64(2.0)], 1e-5);
}

#[test]
fn loop_power_gradient() {
    let mut b = Builder::new();
    let f = b.build_fun("power", &[Type::F64, Type::I64], |b, ps| {
        let x = Atom::Var(ps[0]);
        let n = Atom::Var(ps[1]);
        let r = b.loop_(&[(Type::F64, Atom::f64(1.0))], n, |b, _i, acc| {
            vec![b.fmul(acc[0].into(), x)]
        });
        vec![r[0].into()]
    });
    let d = checked_vjp(&f);
    let out = Interp::sequential().run(&d, &[Value::F64(1.1), Value::I64(5), Value::F64(1.0)]);
    // d/dx x^5 = 5 x^4
    assert!((out[1].as_f64() - 5.0 * 1.1f64.powi(4)).abs() < 1e-10);
}

#[test]
fn loop_with_array_state_gradient() {
    // An iterative smoothing loop over an array: x_{t+1}[i] = x_t[i] * 0.9 + c.
    let mut b = Builder::new();
    let f = b.build_fun(
        "smooth",
        &[Type::arr_f64(1), Type::F64, Type::I64],
        |b, ps| {
            let c = Atom::Var(ps[1]);
            let n = Atom::Var(ps[2]);
            let r = b.loop_(
                &[(Type::arr_f64(1), Atom::Var(ps[0]))],
                n,
                |b, _i, state| {
                    let next = b.map1(Type::arr_f64(1), &[state[0]], |b, es| {
                        let t = b.fmul(es[0].into(), Atom::f64(0.9));
                        vec![b.fadd(t, c)]
                    });
                    vec![Atom::Var(next)]
                },
            );
            vec![Atom::Var(b.sum(r[0]))]
        },
    );
    assert_gradients_match(
        &f,
        &[
            vec_f64(vec![1.0, -2.0, 0.5]),
            Value::F64(0.3),
            Value::I64(4),
        ],
        1e-5,
    );
}

#[test]
fn loop_inside_map_gradient() {
    // Nested parallelism with an inner sequential loop, as in RS/XSBench.
    let mut b = Builder::new();
    let f = b.build_fun("maploop", &[Type::arr_f64(1), Type::I64], |b, ps| {
        let n = Atom::Var(ps[1]);
        let ys = b.map1(Type::arr_f64(1), &[ps[0]], |b, es| {
            let r = b.loop_(&[(Type::F64, es[0].into())], n, |b, _i, acc| {
                let t = b.fmul(acc[0].into(), Atom::f64(0.5));
                vec![b.fadd(t, Atom::f64(1.0))]
            });
            vec![r[0].into()]
        });
        vec![Atom::Var(b.sum(ys))]
    });
    assert_gradients_match(&f, &[vec_f64(vec![1.0, 2.0, 3.0]), Value::I64(3)], 1e-5);
}

#[test]
fn perfect_nest_example_from_fig2() {
    // map (\c as -> if c then as else map (a -> a*a) as) cs ass
    let mut b = Builder::new();
    let f = b.build_fun("fig2", &[Type::arr_bool(1), Type::arr_f64(2)], |b, ps| {
        let xss = b.map1(Type::arr_f64(2), &[ps[0], ps[1]], |b, es| {
            let c = es[0];
            let as_ = es[1];
            let r = b.if_(
                c.into(),
                &[Type::arr_f64(1)],
                |b| {
                    let doubled = b.map1(Type::arr_f64(1), &[as_], |b, xs| {
                        vec![b.fmul(xs[0].into(), Atom::f64(2.0))]
                    });
                    vec![Atom::Var(doubled)]
                },
                |b| {
                    let sq = b.map1(Type::arr_f64(1), &[as_], |b, xs| {
                        vec![b.fmul(xs[0].into(), xs[0].into())]
                    });
                    vec![Atom::Var(sq)]
                },
            );
            vec![r[0].into()]
        });
        let sums = b.map1(Type::arr_f64(1), &[xss], |b, rs| {
            vec![Atom::Var(b.sum(rs[0]))]
        });
        vec![Atom::Var(b.sum(sums))]
    });
    let cs = Value::Arr(Array::from_bool(vec![2], vec![true, false]));
    let ass = mat([2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
    let interp = Interp::sequential();
    let fd = finite_diff_gradient(&interp, &f, &[cs.clone(), ass.clone()], 1e-5);
    let (_, ad) = reverse_gradient(&interp, &f, &[cs, ass]);
    assert!(max_rel_error(&ad, &fd) < 1e-5);
}

// ---------------------------------------------------------------------
// Forward mode and nesting
// ---------------------------------------------------------------------

#[test]
fn jvp_matches_directional_finite_difference() {
    let mut b = Builder::new();
    let f = b.build_fun("fwd", &[Type::arr_f64(1)], |b, ps| {
        let s = b.scan_add(ps[0]);
        let sq = b.map1(Type::arr_f64(1), &[s], |b, es| {
            let e = b.fexp(es[0].into());
            vec![b.fmul(e, es[0].into())]
        });
        vec![Atom::Var(b.sum(sq))]
    });
    check_fun(&f).unwrap();
    let df = jvp(&f);
    check_fun(&df).unwrap_or_else(|e| panic!("jvp ill-typed: {e}\n{df}"));
    let xs = vec![0.3, -0.2, 0.5];
    let dir = vec![1.0, -0.5, 2.0];
    let interp = Interp::sequential();
    let out = interp.run(&df, &[vec_f64(xs.clone()), vec_f64(dir.clone())]);
    let jvp_val = out[1].as_f64();
    // Directional finite difference.
    let h = 1e-6;
    let plus: Vec<f64> = xs.iter().zip(&dir).map(|(x, d)| x + h * d).collect();
    let minus: Vec<f64> = xs.iter().zip(&dir).map(|(x, d)| x - h * d).collect();
    let fp = interp.run(&f, &[vec_f64(plus)])[0].as_f64();
    let fm = interp.run(&f, &[vec_f64(minus)])[0].as_f64();
    let fd = (fp - fm) / (2.0 * h);
    assert!((jvp_val - fd).abs() < 1e-5, "{jvp_val} vs {fd}");
}

#[test]
fn jvp_over_vjp_computes_hessian_diagonal() {
    // f(x) = sum(x_i^3): Hessian diagonal is 6*x_i. Computed as
    // jvp(vjp(f)) applied to basis directions (forward over reverse).
    let mut b = Builder::new();
    let f = b.build_fun("cubes", &[Type::arr_f64(1)], |b, ps| {
        let c = b.map1(Type::arr_f64(1), &[ps[0]], |b, es| {
            let x2 = b.fmul(es[0].into(), es[0].into());
            vec![b.fmul(x2, es[0].into())]
        });
        vec![Atom::Var(b.sum(c))]
    });
    let grad_f = vjp(&f);
    check_fun(&grad_f).unwrap();
    let hess = jvp(&grad_f);
    check_fun(&hess).unwrap_or_else(|e| panic!("jvp(vjp) ill-typed: {e}"));
    let xs = vec![1.0, 2.0, -3.0];
    let n = xs.len();
    let interp = Interp::sequential();
    for i in 0..n {
        let mut dx = vec![0.0; n];
        dx[i] = 1.0;
        // Arguments: xs, seed (=1), tangent of xs, tangent of seed (=0).
        let out = interp.run(
            &hess,
            &[
                vec_f64(xs.clone()),
                Value::F64(1.0),
                vec_f64(dx),
                Value::F64(0.0),
            ],
        );
        // Outputs: primal, grad, d(primal), d(grad). The tangent of the
        // gradient in direction e_i is the i-th Hessian column.
        let dgrad = out[3].as_arr().f64s().to_vec();
        for (j, g) in dgrad.iter().enumerate() {
            let want = if i == j { 6.0 * xs[i] } else { 0.0 };
            assert!((g - want).abs() < 1e-9, "H[{i},{j}] = {g}, want {want}");
        }
    }
}

#[test]
fn vjp_preserves_primal_results() {
    let mut b = Builder::new();
    let f = b.build_fun("primal", &[Type::arr_f64(1)], |b, ps| {
        let s = b.sum(ps[0]);
        let m = b.maximum(ps[0]);
        vec![Atom::Var(s), Atom::Var(m)]
    });
    let d = checked_vjp(&f);
    let out = Interp::sequential().run(
        &d,
        &[
            vec_f64(vec![1.0, 5.0, 2.0]),
            Value::F64(1.0),
            Value::F64(0.0),
        ],
    );
    assert_eq!(out[0].as_f64(), 8.0);
    assert_eq!(out[1].as_f64(), 5.0);
    // Gradient of sum with seed (1, 0) is all ones.
    assert_eq!(out[2].as_arr().f64s(), &[1.0, 1.0, 1.0]);
}
