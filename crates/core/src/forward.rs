//! Forward-mode AD (`jvp`).
//!
//! Forward mode is the straightforward application of the tangent rule
//! (Eq. 2 of the paper): every statement is followed by statements computing
//! the tangents of the values it binds, and SOAC lambdas are lifted to
//! operate on (value, tangent) bundles. The transformation also handles the
//! accumulator constructs produced by reverse mode, so `jvp` can be nested
//! around `vjp` output (used to compute Hessians, e.g. for the k-means
//! Newton solver of the paper's case study 1).

use std::collections::HashMap;

use fir::builder::Builder;
use fir::ir::{Atom, BinOp, Body, Exp, Fun, Lambda, Param, ReduceOp, Stm, UnOp, VarId};
use fir::types::Type;

use crate::helpers::{register_fun_types, zero_like};

/// Apply forward-mode AD to a function.
///
/// For `f : (x_1, ..., x_n) -> (y_1, ..., y_m)` the result is
///
/// `f_jvp : (x_1, ..., x_n, ẋ_1, ..., ẋ_j) -> (y_1, ..., y_m, ẏ_1, ..., ẏ_k)`
///
/// with one tangent parameter per differentiable parameter and one tangent
/// result per differentiable result.
pub fn jvp(fun: &Fun) -> Fun {
    // See `vjp`: fused `redomap`s are lowered back to `map` + `reduce`
    // before the tangent rules run.
    let fun = &fir::lower::unfuse(fun);
    let mut b = Builder::for_fun(fun);
    register_fun_types(&mut b, fun);
    let mut fwd = Fwd {
        b,
        tan: HashMap::new(),
    };

    let mut tangent_params: Vec<Param> = Vec::new();
    for p in &fun.params {
        if p.ty.is_differentiable() {
            let t = fwd.b.fresh(p.ty);
            tangent_params.push(Param::new(t, p.ty));
            fwd.tan.insert(p.var, t);
        }
    }

    fwd.b.begin_scope();
    fwd.jvp_stms(&fun.body.stms);
    let mut result = fun.body.result.clone();
    let mut ret = fun.ret.clone();
    for (a, rt) in fun.body.result.iter().zip(&fun.ret) {
        if rt.is_differentiable() {
            let t = fwd.tangent_of_atom(*a);
            result.push(t);
            ret.push(*rt);
        }
    }
    let stms = fwd.b.end_scope();

    let mut params = fun.params.clone();
    params.extend(tangent_params);
    Fun {
        name: format!("{}_jvp", fun.name),
        params,
        body: Body::new(stms, result),
        ret,
    }
}

struct Fwd {
    b: Builder,
    /// Tangent variable of each differentiable variable.
    tan: HashMap<VarId, VarId>,
}

impl Fwd {
    fn tangent_of(&mut self, v: VarId) -> Atom {
        if let Some(t) = self.tan.get(&v) {
            return Atom::Var(*t);
        }
        let ty = self.b.ty_of(v);
        if ty == Type::F64 {
            Atom::f64(0.0)
        } else {
            let z = zero_like(&mut self.b, v);
            self.tan.insert(v, z);
            Atom::Var(z)
        }
    }

    fn tangent_of_atom(&mut self, a: Atom) -> Atom {
        match a {
            Atom::Var(v) => self.tangent_of(v),
            Atom::Const(_) => Atom::f64(0.0),
        }
    }

    fn set_tangent(&mut self, v: VarId, t: VarId) {
        self.tan.insert(v, t);
    }

    fn bind_tangent(&mut self, v: VarId, ty: Type, exp: Exp) {
        let t = self.b.bind1(ty, exp);
        self.set_tangent(v, t);
    }

    fn jvp_stms(&mut self, stms: &[Stm]) {
        for s in stms {
            self.jvp_stm(s);
        }
    }

    /// Emit the statement and the statements computing the tangents of what
    /// it binds.
    fn jvp_stm(&mut self, stm: &Stm) {
        match &stm.exp {
            Exp::If { .. }
            | Exp::Loop { .. }
            | Exp::Map { .. }
            | Exp::Reduce { .. }
            | Exp::Scan { .. }
            | Exp::WithAcc { .. } => {
                // Structured constructs are rebuilt wholesale (the original
                // statement is subsumed by the dual version).
                self.jvp_structured(stm);
                return;
            }
            Exp::Redomap { .. } => {
                unreachable!("redomap is unfused (fir::lower::unfuse) before AD")
            }
            _ => {}
        }
        self.b.push_stm(stm.clone());
        let p = &stm.pat[0];
        match &stm.exp {
            Exp::Atom(a) => {
                if p.ty.is_differentiable() {
                    let t = self.tangent_of_atom(*a);
                    self.bind_tangent(p.var, p.ty, Exp::Atom(t));
                }
            }
            Exp::UnOp(op, a) => self.jvp_unop(p, *op, *a),
            Exp::BinOp(op, x, y) => self.jvp_binop(p, *op, *x, *y),
            Exp::Select { cond, t, f } => {
                if p.ty.is_differentiable() {
                    let tt = self.tangent_of_atom(*t);
                    let tf = self.tangent_of_atom(*f);
                    self.bind_tangent(
                        p.var,
                        p.ty,
                        Exp::Select {
                            cond: *cond,
                            t: tt,
                            f: tf,
                        },
                    );
                }
            }
            Exp::Index { arr, idx } => {
                if p.ty.is_differentiable() {
                    let t = self.tangent_of(*arr).expect_var();
                    self.bind_tangent(
                        p.var,
                        p.ty,
                        Exp::Index {
                            arr: t,
                            idx: idx.clone(),
                        },
                    );
                }
            }
            Exp::Update { arr, idx, val } => {
                if p.ty.is_differentiable() {
                    let ta = self.tangent_of(*arr).expect_var();
                    let tv = self.tangent_of_atom(*val);
                    self.bind_tangent(
                        p.var,
                        p.ty,
                        Exp::Update {
                            arr: ta,
                            idx: idx.clone(),
                            val: tv,
                        },
                    );
                }
            }
            Exp::Len(_) | Exp::Iota(_) => {}
            Exp::Replicate { n, val } => {
                if p.ty.is_differentiable() {
                    let tv = self.tangent_of_atom(*val);
                    self.bind_tangent(p.var, p.ty, Exp::Replicate { n: *n, val: tv });
                }
            }
            Exp::Reverse(v) => {
                if p.ty.is_differentiable() {
                    let t = self.tangent_of(*v).expect_var();
                    self.bind_tangent(p.var, p.ty, Exp::Reverse(t));
                }
            }
            Exp::Copy(v) => {
                if p.ty.is_differentiable() {
                    let t = self.tangent_of(*v).expect_var();
                    self.bind_tangent(p.var, p.ty, Exp::Copy(t));
                }
            }
            Exp::Hist {
                op,
                num_bins,
                inds,
                vals,
            } => {
                if p.ty.is_differentiable() {
                    assert_eq!(*op, ReduceOp::Add, "jvp: only + histograms are supported");
                    let tv = self.tangent_of(*vals).expect_var();
                    self.bind_tangent(
                        p.var,
                        p.ty,
                        Exp::Hist {
                            op: *op,
                            num_bins: *num_bins,
                            inds: *inds,
                            vals: tv,
                        },
                    );
                }
            }
            Exp::Scatter { dest, inds, vals } => {
                if p.ty.is_differentiable() {
                    let td = self.tangent_of(*dest).expect_var();
                    let tv = self.tangent_of(*vals).expect_var();
                    self.bind_tangent(
                        p.var,
                        p.ty,
                        Exp::Scatter {
                            dest: td,
                            inds: *inds,
                            vals: tv,
                        },
                    );
                }
            }
            Exp::UpdAcc { acc, idx, val } => {
                // Tangent accumulators mirror the primal ones.
                let tacc = self.tangent_of(*acc).expect_var();
                let tval = self.tangent_of_atom(*val);
                let t = self.b.bind1(
                    self.b.ty_of(tacc),
                    Exp::UpdAcc {
                        acc: tacc,
                        idx: idx.clone(),
                        val: tval,
                    },
                );
                self.set_tangent(p.var, t);
            }
            Exp::If { .. }
            | Exp::Loop { .. }
            | Exp::Map { .. }
            | Exp::Reduce { .. }
            | Exp::Scan { .. }
            | Exp::Redomap { .. }
            | Exp::WithAcc { .. } => unreachable!(),
        }
    }

    fn jvp_unop(&mut self, p: &Param, op: UnOp, a: Atom) {
        if p.ty != Type::F64 {
            return;
        }
        let x = Atom::Var(p.var);
        let da = self.tangent_of_atom(a);
        let t = match op {
            UnOp::Neg => self.b.fneg(da),
            UnOp::Sin => {
                let c = self.b.fcos(a);
                self.b.fmul(c, da)
            }
            UnOp::Cos => {
                let s = self.b.fsin(a);
                let ns = self.b.fneg(s);
                self.b.fmul(ns, da)
            }
            UnOp::Exp => self.b.fmul(x, da),
            UnOp::Log => self.b.fdiv(da, a),
            UnOp::Sqrt => {
                let twox = self.b.fmul(Atom::f64(2.0), x);
                self.b.fdiv(da, twox)
            }
            UnOp::Tanh => {
                let xx = self.b.fmul(x, x);
                let om = self.b.fsub(Atom::f64(1.0), xx);
                self.b.fmul(om, da)
            }
            UnOp::Sigmoid => {
                let om = self.b.fsub(Atom::f64(1.0), x);
                let sx = self.b.fmul(x, om);
                self.b.fmul(sx, da)
            }
            UnOp::Abs => {
                let cond = self.b.ge(a, Atom::f64(0.0));
                let nd = self.b.fneg(da);
                self.b.select(cond, da, nd)
            }
            UnOp::Recip => {
                let xx = self.b.fmul(x, x);
                let nxx = self.b.fneg(xx);
                self.b.fmul(nxx, da)
            }
            UnOp::Not | UnOp::ToF64 | UnOp::ToI64 => return,
        };
        let tv = match t {
            Atom::Var(v) => v,
            _ => self.b.bind1(Type::F64, Exp::Atom(t)),
        };
        self.set_tangent(p.var, tv);
    }

    fn jvp_binop(&mut self, p: &Param, op: BinOp, x: Atom, y: Atom) {
        if p.ty != Type::F64 {
            return;
        }
        let r = Atom::Var(p.var);
        let dx = self.tangent_of_atom(x);
        let dy = self.tangent_of_atom(y);
        let t = match op {
            BinOp::Add => self.b.fadd(dx, dy),
            BinOp::Sub => self.b.fsub(dx, dy),
            BinOp::Mul => {
                let a = self.b.fmul(dx, y);
                let b2 = self.b.fmul(x, dy);
                self.b.fadd(a, b2)
            }
            BinOp::Div => {
                let rdy = self.b.fmul(r, dy);
                let num = self.b.fsub(dx, rdy);
                self.b.fdiv(num, y)
            }
            BinOp::Pow => {
                let ym1 = self.b.fsub(y, Atom::f64(1.0));
                let pm1 = self.b.fpow(x, ym1);
                let t1 = self.b.fmul(y, pm1);
                let t1 = self.b.fmul(t1, dx);
                let lx = self.b.flog(x);
                let t2 = self.b.fmul(r, lx);
                let t2 = self.b.fmul(t2, dy);
                self.b.fadd(t1, t2)
            }
            BinOp::Min | BinOp::Max => {
                let cond = if op == BinOp::Min {
                    self.b.le(x, y)
                } else {
                    self.b.ge(x, y)
                };
                self.b.select(cond, dx, dy)
            }
            BinOp::Rem => dx,
            _ => return,
        };
        let tv = match t {
            Atom::Var(v) => v,
            _ => self.b.bind1(Type::F64, Exp::Atom(t)),
        };
        self.set_tangent(p.var, tv);
    }

    // -----------------------------------------------------------------
    // Structured constructs: rebuilt as dual versions.
    // -----------------------------------------------------------------

    fn jvp_structured(&mut self, stm: &Stm) {
        match &stm.exp {
            Exp::If {
                cond,
                then_br,
                else_br,
            } => {
                let diff: Vec<usize> = (0..stm.pat.len())
                    .filter(|j| stm.pat[*j].ty.is_differentiable())
                    .collect();
                let then_b = self.jvp_branch(then_br, &diff);
                let else_b = self.jvp_branch(else_br, &diff);
                let mut pat = stm.pat.clone();
                let mut tangent_vars = Vec::new();
                for j in &diff {
                    let t = self.b.fresh(stm.pat[*j].ty);
                    pat.push(Param::new(t, stm.pat[*j].ty));
                    tangent_vars.push((stm.pat[*j].var, t));
                }
                self.b.push_stm(Stm::new(
                    pat,
                    Exp::If {
                        cond: *cond,
                        then_br: then_b,
                        else_br: else_b,
                    },
                ));
                for (v, t) in tangent_vars {
                    self.set_tangent(v, t);
                }
            }
            Exp::Loop {
                params,
                index,
                count,
                body,
            } => {
                let diff: Vec<usize> = (0..params.len())
                    .filter(|j| params[*j].0.ty.is_differentiable())
                    .collect();
                // Tangent loop parameters, initialized with the tangents of
                // the initial values.
                let mut new_params = params.clone();
                let mut dual_params = Vec::new();
                for j in &diff {
                    let (p, init) = &params[*j];
                    let tinit = self.tangent_of_atom(*init);
                    let tp = self.b.fresh(p.ty);
                    new_params.push((Param::new(tp, p.ty), tinit));
                    dual_params.push((p.var, tp));
                }
                self.b.begin_scope();
                for (v, t) in &dual_params {
                    self.set_tangent(*v, *t);
                }
                self.jvp_stms(&body.stms);
                let mut result = body.result.clone();
                for j in &diff {
                    let t = self.tangent_of_atom(body.result[*j]);
                    result.push(t);
                }
                let stms = self.b.end_scope();
                let mut pat = stm.pat.clone();
                let mut tangent_vars = Vec::new();
                for j in &diff {
                    let t = self.b.fresh(stm.pat[*j].ty);
                    pat.push(Param::new(t, stm.pat[*j].ty));
                    tangent_vars.push((stm.pat[*j].var, t));
                }
                self.b.push_stm(Stm::new(
                    pat,
                    Exp::Loop {
                        params: new_params,
                        index: *index,
                        count: *count,
                        body: Body::new(stms, result),
                    },
                ));
                for (v, t) in tangent_vars {
                    self.set_tangent(v, t);
                }
            }
            Exp::Map { lam, args } => {
                let (dual_lam, extra_args, n_extra_out) = self.dual_lambda(lam, args, 0);
                let mut new_args = args.to_vec();
                new_args.extend(extra_args);
                let mut pat = stm.pat.clone();
                let mut tangent_vars = Vec::new();
                for j in 0..stm.pat.len() {
                    if stm.pat[j].ty.is_differentiable() || stm.pat[j].ty.is_acc() {
                        let t = self.b.fresh(stm.pat[j].ty);
                        pat.push(Param::new(t, stm.pat[j].ty));
                        tangent_vars.push((stm.pat[j].var, t));
                    }
                }
                assert_eq!(tangent_vars.len(), n_extra_out);
                self.b.push_stm(Stm::new(
                    pat,
                    Exp::Map {
                        lam: dual_lam,
                        args: new_args,
                    },
                ));
                for (v, t) in tangent_vars {
                    self.set_tangent(v, t);
                }
            }
            Exp::Reduce { lam, neutral, args } | Exp::Scan { lam, neutral, args } => {
                let is_scan = matches!(stm.exp, Exp::Scan { .. });
                let k = args.len();
                let diff: Vec<usize> = (0..k)
                    .filter(|j| self.b.ty_of(args[*j]).is_differentiable())
                    .collect();
                // Dual operator: accumulator group then element group, each
                // extended with tangents of the differentiable positions.
                let dual = self.dual_fold_operator(lam, k, &diff);
                let mut new_args = args.to_vec();
                for j in &diff {
                    new_args.push(self.tangent_of(args[*j]).expect_var());
                }
                let mut new_neutral = neutral.to_vec();
                for j in &diff {
                    let t = self.tangent_of_atom(neutral[*j]);
                    new_neutral.push(t);
                }
                let mut pat = stm.pat.clone();
                let mut tangent_vars = Vec::new();
                for j in &diff {
                    let ty = stm.pat[*j].ty;
                    let t = self.b.fresh(ty);
                    pat.push(Param::new(t, ty));
                    tangent_vars.push((stm.pat[*j].var, t));
                }
                let exp = if is_scan {
                    Exp::Scan {
                        lam: dual,
                        neutral: new_neutral,
                        args: new_args,
                    }
                } else {
                    Exp::Reduce {
                        lam: dual,
                        neutral: new_neutral,
                        args: new_args,
                    }
                };
                self.b.push_stm(Stm::new(pat, exp));
                for (v, t) in tangent_vars {
                    self.set_tangent(v, t);
                }
            }
            Exp::WithAcc { arrs, lam } => {
                let k = arrs.len();
                // Tangent arrays accompany the primal ones.
                let d_arrs: Vec<VarId> = arrs
                    .iter()
                    .map(|a| self.tangent_of(*a).expect_var())
                    .collect();
                // Dual lambda over 2k accumulators.
                let mut params = lam.params.clone();
                let mut acc_tangents = Vec::new();
                for p in &lam.params[..k] {
                    let t = self.b.fresh(p.ty);
                    params.push(Param::new(t, p.ty));
                    acc_tangents.push((p.var, t));
                }
                self.b.begin_scope();
                for (v, t) in &acc_tangents {
                    self.set_tangent(*v, *t);
                }
                self.jvp_stms(&lam.body.stms);
                // Result: primal accs, tangent accs, secondary results and
                // their tangents.
                let mut result: Vec<Atom> = lam.body.result[..k].to_vec();
                let mut ret: Vec<Type> = lam.ret[..k].to_vec();
                for a in &lam.body.result[..k] {
                    let t = self.tangent_of_atom(*a);
                    result.push(t);
                    ret.push(self.b.ty_of_atom(&t));
                }
                for (a, rt) in lam.body.result[k..].iter().zip(&lam.ret[k..]) {
                    result.push(*a);
                    ret.push(*rt);
                    if rt.is_differentiable() {
                        let t = self.tangent_of_atom(*a);
                        result.push(t);
                        ret.push(*rt);
                    }
                }
                let stms = self.b.end_scope();
                let dual_lam = Lambda {
                    params,
                    body: Body::new(stms, result),
                    ret,
                };
                let mut new_arrs = arrs.to_vec();
                new_arrs.extend(d_arrs);
                // Output pattern: primal arrays, tangent arrays, secondary
                // (+ tangents).
                let mut pat: Vec<Param> = stm.pat[..k].to_vec();
                let mut tangent_vars = Vec::new();
                for p in &stm.pat[..k] {
                    let t = self.b.fresh(p.ty);
                    pat.push(Param::new(t, p.ty));
                    tangent_vars.push((p.var, t));
                }
                for p in &stm.pat[k..] {
                    pat.push(*p);
                    if p.ty.is_differentiable() {
                        let t = self.b.fresh(p.ty);
                        pat.push(Param::new(t, p.ty));
                        tangent_vars.push((p.var, t));
                    }
                }
                self.b.push_stm(Stm::new(
                    pat,
                    Exp::WithAcc {
                        arrs: new_arrs,
                        lam: dual_lam,
                    },
                ));
                for (v, t) in tangent_vars {
                    self.set_tangent(v, t);
                }
            }
            _ => unreachable!(),
        }
    }

    /// Transform a branch body: original results followed by the tangents of
    /// the differentiable results (positions `diff`).
    fn jvp_branch(&mut self, body: &Body, diff: &[usize]) -> Body {
        self.b.begin_scope();
        self.jvp_stms(&body.stms);
        let mut result = body.result.clone();
        for j in diff {
            let t = self.tangent_of_atom(body.result[*j]);
            result.push(t);
        }
        let stms = self.b.end_scope();
        Body::new(stms, result)
    }

    /// Build the dual version of a `map` lambda: parameters are extended
    /// with tangents of differentiable/accumulator arguments, results with
    /// tangents of differentiable/accumulator results. Returns the lambda,
    /// the extra (tangent) map arguments, and the number of extra outputs.
    fn dual_lambda(
        &mut self,
        lam: &Lambda,
        args: &[VarId],
        _k: usize,
    ) -> (Lambda, Vec<VarId>, usize) {
        let mut params = lam.params.clone();
        let mut extra_args = Vec::new();
        let mut param_tangents = Vec::new();
        for (p, a) in lam.params.iter().zip(args) {
            let ty = self.b.ty_of(*a);
            if ty.is_differentiable() || ty.is_acc() {
                let t = self.b.fresh(p.ty);
                params.push(Param::new(t, p.ty));
                param_tangents.push((p.var, t));
                extra_args.push(self.tangent_of(*a).expect_var());
            }
        }
        self.b.begin_scope();
        for (v, t) in &param_tangents {
            self.set_tangent(*v, *t);
        }
        self.jvp_stms(&lam.body.stms);
        let mut result = lam.body.result.clone();
        let mut ret = lam.ret.clone();
        let mut n_extra = 0;
        for (a, rt) in lam.body.result.iter().zip(&lam.ret) {
            if rt.is_differentiable() || rt.is_acc() {
                let t = self.tangent_of_atom(*a);
                result.push(t);
                ret.push(*rt);
                n_extra += 1;
            }
        }
        let stms = self.b.end_scope();
        (
            Lambda {
                params,
                body: Body::new(stms, result),
                ret,
            },
            extra_args,
            n_extra,
        )
    }

    /// Build the dual operator of a reduce/scan: the parameter list
    /// `[accs..., elems...]` becomes
    /// `[accs..., acc-tangents..., elems..., elem-tangents...]`.
    fn dual_fold_operator(&mut self, lam: &Lambda, k: usize, diff: &[usize]) -> Lambda {
        let mut params: Vec<Param> = Vec::new();
        let mut tangents = Vec::new();
        // Accumulator group.
        for p in &lam.params[..k] {
            params.push(*p);
        }
        for j in diff {
            let p = lam.params[*j];
            let t = self.b.fresh(p.ty);
            params.push(Param::new(t, p.ty));
            tangents.push((p.var, t));
        }
        // Element group.
        for p in &lam.params[k..] {
            params.push(*p);
        }
        for j in diff {
            let p = lam.params[k + *j];
            let t = self.b.fresh(p.ty);
            params.push(Param::new(t, p.ty));
            tangents.push((p.var, t));
        }
        self.b.begin_scope();
        for (v, t) in &tangents {
            self.set_tangent(*v, *t);
        }
        self.jvp_stms(&lam.body.stms);
        let mut result = lam.body.result.clone();
        let mut ret = lam.ret.clone();
        for j in diff {
            let t = self.tangent_of_atom(lam.body.result[*j]);
            result.push(t);
            ret.push(lam.ret[*j]);
        }
        let stms = self.b.end_scope();
        Lambda {
            params,
            body: Body::new(stms, result),
            ret,
        }
    }
}
