//! Gradient checking against central finite differences.
//!
//! Used throughout the test suites to validate both AD modes on every
//! workload: the reverse-mode gradient of a scalar-valued program is
//! compared entry-by-entry against `(f(x+h) - f(x-h)) / 2h`.

use fir::ir::Fun;
use interp::{Array, Backend, Interp, Value};

/// Flatten the `f64` content of a value into `out`.
fn flatten(v: &Value, out: &mut Vec<f64>) {
    match v {
        Value::F64(x) => out.push(*x),
        Value::Arr(a) if a.elem() == fir::types::ScalarType::F64 => out.extend_from_slice(a.f64s()),
        _ => {}
    }
}

/// Replace the `f64` content of a value from a flat slice, returning the
/// number of entries consumed.
fn unflatten(v: &Value, flat: &[f64]) -> (Value, usize) {
    match v {
        Value::F64(_) => (Value::F64(flat[0]), 1),
        Value::Arr(a) if a.elem() == fir::types::ScalarType::F64 => {
            let n = a.f64s().len();
            (
                Value::Arr(Array::from_f64(a.shape.clone(), flat[..n].to_vec())),
                n,
            )
        }
        other => (other.clone(), 0),
    }
}

/// The number of `f64` entries in the differentiable arguments.
pub fn num_inputs(args: &[Value]) -> usize {
    let mut flat = Vec::new();
    for a in args {
        flatten(a, &mut flat);
    }
    flat.len()
}

/// Evaluate a scalar-valued function (first result must be an `f64`) on any
/// execution backend. Panics on preparation or execution errors — this is a
/// test-assertion helper, not a serving path.
pub fn eval_scalar<B: Backend + ?Sized>(backend: &B, fun: &Fun, args: &[Value]) -> f64 {
    backend
        .prepare(fun)
        .and_then(|exec| exec.run_scalar(args))
        .unwrap_or_else(|e| panic!("{e}"))
}

/// The gradient of a scalar-valued function by central finite differences,
/// flattened over all differentiable (`f64`) inputs. The function is
/// prepared once and executed `2n` times.
pub fn finite_diff_gradient<B: Backend + ?Sized>(
    backend: &B,
    fun: &Fun,
    args: &[Value],
    h: f64,
) -> Vec<f64> {
    let exec = backend.prepare(fun).unwrap_or_else(|e| panic!("{e}"));
    let mut flat = Vec::new();
    for a in args {
        flatten(a, &mut flat);
    }
    let rebuild = |flat: &[f64]| -> Vec<Value> {
        let mut out = Vec::with_capacity(args.len());
        let mut off = 0;
        for a in args {
            let (v, used) = unflatten(a, &flat[off..]);
            off += used;
            out.push(v);
        }
        out
    };
    let mut grad = Vec::with_capacity(flat.len());
    for i in 0..flat.len() {
        let mut plus = flat.clone();
        plus[i] += h;
        let mut minus = flat.clone();
        minus[i] -= h;
        let fp = exec
            .run_scalar(&rebuild(&plus))
            .unwrap_or_else(|e| panic!("{e}"));
        let fm = exec
            .run_scalar(&rebuild(&minus))
            .unwrap_or_else(|e| panic!("{e}"));
        grad.push((fp - fm) / (2.0 * h));
    }
    grad
}

/// Flatten the gradient values returned by a `vjp`-transformed scalar
/// function (the adjoints of the differentiable parameters).
pub fn flatten_gradient(vals: &[Value]) -> Vec<f64> {
    let mut out = Vec::new();
    for v in vals {
        flatten(v, &mut out);
    }
    out
}

/// Run the reverse-mode gradient of a scalar-valued function: the function
/// is transformed with [`crate::vjp`], executed with seed 1.0, and the
/// parameter adjoints are returned flattened (in parameter order).
pub fn reverse_gradient<B: Backend + ?Sized>(
    backend: &B,
    fun: &Fun,
    args: &[Value],
) -> (f64, Vec<f64>) {
    assert_eq!(fun.ret.len(), 1, "reverse_gradient expects a single result");
    assert_eq!(
        fun.ret[0],
        fir::types::Type::F64,
        "reverse_gradient expects a scalar f64 result; use fir-api's \
         CompiledFn::grad for array-valued objectives (it derives seeds \
         from the result types)"
    );
    let dfun = crate::vjp(fun);
    let mut all_args = args.to_vec();
    all_args.push(Value::F64(1.0));
    let out = backend
        .prepare(&dfun)
        .and_then(|exec| exec.run(&all_args))
        .unwrap_or_else(|e| panic!("{e}"));
    let primal = out[0].as_f64();
    let grads = flatten_gradient(&out[1..]);
    (primal, grads)
}

/// Maximum relative error between two gradients (with an absolute floor to
/// avoid blowing up near zero).
pub fn max_rel_error(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(
        a.len(),
        b.len(),
        "gradient length mismatch: {} vs {}",
        a.len(),
        b.len()
    );
    a.iter()
        .zip(b)
        .map(|(x, y)| {
            let denom = x.abs().max(y.abs()).max(1e-6);
            (x - y).abs() / denom
        })
        .fold(0.0, f64::max)
}

/// Assert that reverse-mode AD matches finite differences on a scalar
/// function, within a relative tolerance.
pub fn assert_gradients_match(fun: &Fun, args: &[Value], tol: f64) {
    let interp = Interp::sequential();
    let (_, ad) = reverse_gradient(&interp, fun, args);
    let fd = finite_diff_gradient(&interp, fun, args, 1e-5);
    let err = max_rel_error(&ad, &fd);
    assert!(
        err <= tol,
        "gradient mismatch for {}: max relative error {err:.3e} (tol {tol:.1e})\n  ad: {:?}\n  fd: {:?}",
        fun.name,
        &ad[..ad.len().min(16)],
        &fd[..fd.len().min(16)]
    );
}
