//! Reverse-mode AD (`vjp`) by redundant execution.
//!
//! This module implements the paper's core contribution: a tape-free
//! reverse-mode transformation over the `fir` IR. The transformation of a
//! scope (a body of statements) is organised as
//!
//! 1. a *forward sweep* that re-emits the scope's statements (checkpointing
//!    loops, and computing auxiliary values such as arg-extrema for
//!    `min`/`max` reductions), followed by
//! 2. a *return sweep* that walks the statements in reverse, emitting
//!    adjoint code for each.
//!
//! Whenever the return sweep enters a nested scope (a branch, a loop body,
//! or a `map` lambda) it first redundantly re-executes that scope's forward
//! sweep so every intermediate value the adjoint code may need is in scope —
//! this is what removes the need for a tape (§4 of the paper). Sequential
//! loops are the only construct whose loop-variant values are checkpointed
//! (§4.2, Fig. 3/4).
//!
//! The per-construct rewrite rules of §5 are implemented in the `rev_*`
//! methods: `reduce` (general rule via exclusive scans, plus special cases
//! for `+`, `min`/`max`), `scan` (special case for `+`, general
//! linear-recurrence rule via a `lin_o` scan), `reduce_by_index`
//! (histogram), `scatter`, and `map`, whose free array variables become
//! accumulators (`withacc`/`upd_acc`).

use std::collections::HashMap;

use fir::builder::Builder;
use fir::free_vars::FreeVars;
use fir::ir::{Atom, BinOp, Body, Exp, Fun, Lambda, Param, ReduceOp, Stm, UnOp, VarId};
use fir::rename::Renamer;
use fir::types::Type;

use crate::helpers::{add_values, recognize_reduce_op, register_fun_types, zero_like};

/// Apply reverse-mode AD to a function.
///
/// For a function `f : (x_1, ..., x_n) -> (y_1, ..., y_m)` the result is
///
/// `f_vjp : (x_1, ..., x_n, ȳ_1, ..., ȳ_k) -> (y_1, ..., y_m, x̄_1, ..., x̄_j)`
///
/// where the seed parameters `ȳ` are added for every *differentiable*
/// (`f64`-typed) result, and adjoints `x̄` are returned for every
/// differentiable parameter (in parameter order). The primal results are
/// returned as well, matching the paper's `vjp` interface.
pub fn vjp(fun: &Fun) -> Fun {
    // The optimizer may have fused `reduce ∘ map` into `redomap`; the
    // per-construct rules below differentiate the unfused form (the derived
    // function is re-fused when it passes through the pipeline again).
    let fun = &fir::lower::unfuse(fun);
    let mut b = Builder::for_fun(fun);
    register_fun_types(&mut b, fun);
    let mut rev = Rev {
        b,
        adj: HashMap::new(),
    };

    // Seed parameters: one adjoint per differentiable result.
    let mut seed_params: Vec<Param> = Vec::new();
    let mut seeds: Vec<Option<Atom>> = Vec::new();
    for rt in &fun.ret {
        if rt.is_differentiable() {
            let v = rev.b.fresh(*rt);
            seed_params.push(Param::new(v, *rt));
            seeds.push(Some(Atom::Var(v)));
        } else {
            seeds.push(None);
        }
    }

    let wanted: Vec<VarId> = fun
        .params
        .iter()
        .filter(|p| p.ty.is_differentiable())
        .map(|p| p.var)
        .collect();

    rev.b.begin_scope();
    let param_adjs = rev.vjp_body(&fun.body, &seeds, &wanted);
    let stms = rev.b.end_scope();

    let mut result = fun.body.result.clone();
    let mut ret = fun.ret.clone();
    for (adj, p) in param_adjs
        .iter()
        .zip(fun.params.iter().filter(|p| p.ty.is_differentiable()))
    {
        result.push(Atom::Var(*adj));
        ret.push(p.ty);
    }
    let mut params = fun.params.clone();
    params.extend(seed_params);
    Fun {
        name: format!("{}_vjp", fun.name),
        params,
        body: Body::new(stms, result),
        ret,
    }
}

/// Bookkeeping produced by the forward sweep of a single statement and
/// consumed by its return sweep.
// The `stm` payload embeds an `Exp` (which grew with `Redomap`'s two
// lambdas); the enum is short-lived per-statement bookkeeping, not stored
// in bulk, so the size imbalance is harmless.
#[allow(clippy::large_enum_variant)]
enum FwdInfo {
    /// The forward sweep was the statement itself.
    Simple,
    /// The statement is (or was lowered to) a sequential loop; the forward
    /// sweep emitted a checkpointing version. `stm` is the loop statement the
    /// return sweep should differentiate, `checkpoints` are the arrays (one
    /// per loop parameter) holding the parameter value at entry of every
    /// iteration.
    CheckpointedLoop { stm: Stm, checkpoints: Vec<VarId> },
    /// A `min`/`max` reduction; `iext` is the index of the extremal element
    /// computed on the forward sweep (the "argmin" of §5.1.1).
    ReduceMinMax { iext: VarId },
}

struct Rev {
    b: Builder,
    /// The current adjoint of each differentiable variable. The adjoint
    /// variable is either of the same type as the primal (scalar or array)
    /// or an accumulator (inside `map` lambdas).
    adj: HashMap<VarId, VarId>,
}

impl Rev {
    // -----------------------------------------------------------------
    // Adjoint bookkeeping
    // -----------------------------------------------------------------

    fn adjoint_or_zero(&mut self, v: VarId) -> VarId {
        if let Some(a) = self.adj.get(&v) {
            return *a;
        }
        let z = zero_like(&mut self.b, v);
        self.adj.insert(v, z);
        z
    }

    /// Add `contrib` (same type as `v`) to the adjoint of `v`.
    fn add_to_adjoint(&mut self, v: VarId, contrib: Atom) {
        let ty = self.b.ty_of(v);
        if !ty.is_differentiable() {
            return;
        }
        match self.adj.get(&v).copied() {
            None => {
                let a = match contrib {
                    Atom::Var(w) if self.b.ty_of(w) == ty => w,
                    _ => self.b.bind1(ty, Exp::Atom(contrib)),
                };
                self.adj.insert(v, a);
            }
            Some(old) => {
                let old_ty = self.b.ty_of(old);
                if old_ty.is_acc() {
                    let new = self.b.bind1(
                        old_ty,
                        Exp::UpdAcc {
                            acc: old,
                            idx: vec![],
                            val: contrib,
                        },
                    );
                    self.adj.insert(v, new);
                } else {
                    let sum = add_values(&mut self.b, Atom::Var(old), contrib);
                    let sv = match sum {
                        Atom::Var(w) => w,
                        _ => self.b.bind1(ty, Exp::Atom(sum)),
                    };
                    self.adj.insert(v, sv);
                }
            }
        }
    }

    /// Add `contrib` to the adjoint of `v` at index `idx` (the adjoint of an
    /// array read `v[idx]`). Uses `upd_acc` when the adjoint is an
    /// accumulator and an index/add/update sequence otherwise.
    fn add_index_to_adjoint(&mut self, v: VarId, idx: &[Atom], contrib: Atom) {
        let ty = self.b.ty_of(v);
        if !ty.is_differentiable() {
            return;
        }
        let adj = self.adjoint_or_zero(v);
        let adj_ty = self.b.ty_of(adj);
        if adj_ty.is_acc() {
            let new = self.b.bind1(
                adj_ty,
                Exp::UpdAcc {
                    acc: adj,
                    idx: idx.to_vec(),
                    val: contrib,
                },
            );
            self.adj.insert(v, new);
        } else {
            let elem_ty = adj_ty.index(idx.len());
            let old = self.b.bind1(
                elem_ty,
                Exp::Index {
                    arr: adj,
                    idx: idx.to_vec(),
                },
            );
            let new = add_values(&mut self.b, Atom::Var(old), contrib);
            let upd = self.b.bind1(
                adj_ty,
                Exp::Update {
                    arr: adj,
                    idx: idx.to_vec(),
                    val: new,
                },
            );
            self.adj.insert(v, upd);
        }
    }

    /// Add a contribution to the adjoint of whatever an atom names (no-op
    /// for constants and non-differentiable variables).
    fn add_to_atom_adjoint(&mut self, a: Atom, contrib: Atom) {
        if let Atom::Var(v) = a {
            self.add_to_adjoint(v, contrib);
        }
    }

    fn adjoint_of_pat(&self, p: &Param) -> Option<VarId> {
        if p.ty.is_differentiable() {
            self.adj.get(&p.var).copied()
        } else {
            None
        }
    }

    // -----------------------------------------------------------------
    // The scope rule (vjp_body): forward sweep, seeding, return sweep.
    // -----------------------------------------------------------------

    /// Differentiate a body in the current builder scope.
    ///
    /// `res_adj[i]` is the adjoint of the body's `i`-th result (if any), and
    /// `wanted` lists the variables whose final adjoints the caller needs;
    /// the returned vector holds one adjoint variable per wanted variable
    /// (zero-valued if the body contributed nothing).
    ///
    /// The caller is responsible for saving/restoring `self.adj` around the
    /// call when the body constitutes a separate runtime scope (branches,
    /// loop bodies, lambdas).
    fn vjp_body(&mut self, body: &Body, res_adj: &[Option<Atom>], wanted: &[VarId]) -> Vec<VarId> {
        // Forward sweep.
        let infos: Vec<FwdInfo> = body.stms.iter().map(|s| self.fwd_stm(s)).collect();
        // Seed the adjoints of the body results.
        for (atom, adj) in body.result.iter().zip(res_adj) {
            if let (Atom::Var(v), Some(a)) = (atom, adj) {
                self.add_to_adjoint(*v, *a);
            }
        }
        // Return sweep.
        for (stm, info) in body.stms.iter().zip(&infos).rev() {
            self.rev_stm(stm, info);
        }
        wanted.iter().map(|v| self.adjoint_or_zero(*v)).collect()
    }

    // -----------------------------------------------------------------
    // Forward sweep
    // -----------------------------------------------------------------

    fn fwd_stm(&mut self, stm: &Stm) -> FwdInfo {
        match &stm.exp {
            Exp::Loop { .. } => self.fwd_loop(stm.clone()),
            Exp::Reduce { lam, args, .. } => {
                let scalar_single =
                    args.len() == 1 && stm.pat.len() == 1 && stm.pat[0].ty == Type::F64;
                let op_has_diff_free = lam
                    .free_vars()
                    .iter()
                    .any(|v| self.b.ty_of(*v).is_differentiable());
                if !scalar_single || op_has_diff_free {
                    let lowered = self.lower_reduce_to_loop(stm);
                    return self.fwd_loop(lowered);
                }
                match recognize_reduce_op(lam) {
                    Some(ReduceOp::Min) => {
                        self.b.push_stm(stm.clone());
                        let iext = self.emit_argext(ReduceOp::Min, args[0]);
                        FwdInfo::ReduceMinMax { iext }
                    }
                    Some(ReduceOp::Max) => {
                        self.b.push_stm(stm.clone());
                        let iext = self.emit_argext(ReduceOp::Max, args[0]);
                        FwdInfo::ReduceMinMax { iext }
                    }
                    _ => {
                        self.b.push_stm(stm.clone());
                        FwdInfo::Simple
                    }
                }
            }
            Exp::Scan { lam, args, .. } => {
                let scalar_single =
                    args.len() == 1 && stm.pat.len() == 1 && stm.pat[0].ty == Type::arr_f64(1);
                let op_has_diff_free = lam
                    .free_vars()
                    .iter()
                    .any(|v| self.b.ty_of(*v).is_differentiable());
                assert!(
                    scalar_single && !op_has_diff_free,
                    "vjp: only single-array scans over f64 scalars with closed operators are supported"
                );
                self.b.push_stm(stm.clone());
                FwdInfo::Simple
            }
            Exp::Hist { op, .. } => {
                if *op == ReduceOp::Add {
                    self.b.push_stm(stm.clone());
                    FwdInfo::Simple
                } else {
                    let lowered = self.lower_hist_to_loop(stm);
                    self.fwd_loop(lowered)
                }
            }
            Exp::WithAcc { .. } | Exp::UpdAcc { .. } => {
                panic!("vjp: differentiating accumulator constructs is not supported")
            }
            _ => {
                self.b.push_stm(stm.clone());
                FwdInfo::Simple
            }
        }
    }

    /// Forward sweep of a loop: the loop itself, extended to checkpoint the
    /// value of every loop parameter at the entry of each iteration.
    fn fwd_loop(&mut self, stm: Stm) -> FwdInfo {
        let (params, index, count, body) = match &stm.exp {
            Exp::Loop {
                params,
                index,
                count,
                body,
            } => (params.clone(), *index, *count, body.clone()),
            _ => unreachable!("fwd_loop on non-loop"),
        };
        // Allocate the checkpoint arrays (shape: one slot per iteration).
        let mut ckpt_inits: Vec<(Type, VarId)> = Vec::new();
        for (p, init) in &params {
            let arr_ty = p.ty.lift();
            let c0 = self.b.bind1(
                arr_ty,
                Exp::Replicate {
                    n: count,
                    val: *init,
                },
            );
            ckpt_inits.push((arr_ty, c0));
        }
        let ckpt_params: Vec<Param> = ckpt_inits
            .iter()
            .map(|(t, _)| Param::new(self.b.fresh(*t), *t))
            .collect();
        // The checkpointing body: record each parameter, then run the
        // original body.
        let mut stms: Vec<Stm> = Vec::new();
        let mut ckpt_results: Vec<Atom> = Vec::new();
        for ((p, _), cp) in params.iter().zip(&ckpt_params) {
            let upd = self.b.fresh(cp.ty);
            stms.push(Stm::new(
                vec![Param::new(upd, cp.ty)],
                Exp::Update {
                    arr: cp.var,
                    idx: vec![Atom::Var(index)],
                    val: Atom::Var(p.var),
                },
            ));
            ckpt_results.push(Atom::Var(upd));
        }
        stms.extend(body.stms.clone());
        let mut result = body.result.clone();
        result.extend(ckpt_results);
        let new_body = Body::new(stms, result);
        let mut new_params = params.clone();
        for (cp, (_, c0)) in ckpt_params.iter().zip(&ckpt_inits) {
            new_params.push((*cp, Atom::Var(*c0)));
        }
        let ckpt_out: Vec<VarId> = ckpt_inits.iter().map(|(t, _)| self.b.fresh(*t)).collect();
        let mut pat = stm.pat.clone();
        for (v, (t, _)) in ckpt_out.iter().zip(&ckpt_inits) {
            pat.push(Param::new(*v, *t));
        }
        self.b.push_stm(Stm::new(
            pat,
            Exp::Loop {
                params: new_params,
                index,
                count,
                body: new_body,
            },
        ));
        FwdInfo::CheckpointedLoop {
            stm,
            checkpoints: ckpt_out,
        }
    }

    /// Compute the index of the extremal element of a rank-1 `f64` array
    /// (the "argmin"/"argmax" needed by the `min`/`max` reduce rule).
    fn emit_argext(&mut self, op: ReduceOp, arr: VarId) -> VarId {
        let n = self.b.bind1(Type::I64, Exp::Len(arr));
        let iot = self.b.bind1(Type::arr_i64(1), Exp::Iota(Atom::Var(n)));
        // Operator over (value, index) pairs.
        let pv1 = self.b.fresh(Type::F64);
        let pi1 = self.b.fresh(Type::I64);
        let pv2 = self.b.fresh(Type::F64);
        let pi2 = self.b.fresh(Type::I64);
        self.b.begin_scope();
        let cond = match op {
            ReduceOp::Min => self.b.lt(Atom::Var(pv2), Atom::Var(pv1)),
            ReduceOp::Max => self.b.gt(Atom::Var(pv2), Atom::Var(pv1)),
            _ => unreachable!(),
        };
        let rv = self.b.select(cond, Atom::Var(pv2), Atom::Var(pv1));
        let ri = self.b.select(cond, Atom::Var(pi2), Atom::Var(pi1));
        let stms = self.b.end_scope();
        let lam = Lambda {
            params: vec![
                Param::new(pv1, Type::F64),
                Param::new(pi1, Type::I64),
                Param::new(pv2, Type::F64),
                Param::new(pi2, Type::I64),
            ],
            body: Body::new(stms, vec![rv, ri]),
            ret: vec![Type::F64, Type::I64],
        };
        let neutral = vec![Atom::f64(op.neutral_f64()), Atom::i64(-1)];
        let out = self.b.bind(
            &[Type::F64, Type::I64],
            Exp::Reduce {
                lam,
                neutral,
                args: vec![arr, iot],
            },
        );
        out[1]
    }

    /// Lower a general (multi-value or free-variable-capturing) reduce to an
    /// equivalent sequential loop so the loop rule can differentiate it.
    fn lower_reduce_to_loop(&mut self, stm: &Stm) -> Stm {
        let (lam, neutral, args) = match &stm.exp {
            Exp::Reduce { lam, neutral, args } => (lam, neutral, args),
            _ => unreachable!(),
        };
        let k = args.len();
        let n = self.b.bind1(Type::I64, Exp::Len(args[0]));
        let index = self.b.fresh(Type::I64);
        let acc_params: Vec<Param> = lam
            .ret
            .iter()
            .map(|t| Param::new(self.b.fresh(*t), *t))
            .collect();
        let mut ren = Renamer::new();
        let fresh = ren.lambda(&mut self.b, lam);
        let mut stms: Vec<Stm> = Vec::new();
        for j in 0..k {
            let p = fresh.params[j];
            stms.push(Stm::new(vec![p], Exp::Atom(Atom::Var(acc_params[j].var))));
        }
        for j in 0..k {
            let p = fresh.params[k + j];
            stms.push(Stm::new(
                vec![p],
                Exp::Index {
                    arr: args[j],
                    idx: vec![Atom::Var(index)],
                },
            ));
        }
        stms.extend(fresh.body.stms);
        let body = Body::new(stms, fresh.body.result);
        let params: Vec<(Param, Atom)> = acc_params
            .into_iter()
            .zip(neutral.iter().copied())
            .collect();
        Stm::new(
            stm.pat.clone(),
            Exp::Loop {
                params,
                index,
                count: Atom::Var(n),
                body,
            },
        )
    }

    /// Lower a `reduce_by_index` with a non-`+` operator to a sequential
    /// loop of in-place updates (the fallback discussed in §5.1.2).
    fn lower_hist_to_loop(&mut self, stm: &Stm) -> Stm {
        let (op, num_bins, inds, vals) = match &stm.exp {
            Exp::Hist {
                op,
                num_bins,
                inds,
                vals,
            } => (*op, *num_bins, *inds, *vals),
            _ => unreachable!(),
        };
        let init = self.b.bind1(
            Type::arr_f64(1),
            Exp::Replicate {
                n: num_bins,
                val: Atom::f64(op.neutral_f64()),
            },
        );
        let n = self.b.bind1(Type::I64, Exp::Len(inds));
        let hs = Param::new(self.b.fresh(Type::arr_f64(1)), Type::arr_f64(1));
        let index = self.b.fresh(Type::I64);
        let bin = self.b.fresh(Type::I64);
        let v = self.b.fresh(Type::F64);
        let cur = self.b.fresh(Type::F64);
        let comb = self.b.fresh(Type::F64);
        let upd = self.b.fresh(Type::arr_f64(1));
        let stms = vec![
            Stm::new(
                vec![Param::new(bin, Type::I64)],
                Exp::Index {
                    arr: inds,
                    idx: vec![Atom::Var(index)],
                },
            ),
            Stm::new(
                vec![Param::new(v, Type::F64)],
                Exp::Index {
                    arr: vals,
                    idx: vec![Atom::Var(index)],
                },
            ),
            Stm::new(
                vec![Param::new(cur, Type::F64)],
                Exp::Index {
                    arr: hs.var,
                    idx: vec![Atom::Var(bin)],
                },
            ),
            Stm::new(
                vec![Param::new(comb, Type::F64)],
                Exp::BinOp(op.binop(), Atom::Var(cur), Atom::Var(v)),
            ),
            Stm::new(
                vec![Param::new(upd, Type::arr_f64(1))],
                Exp::Update {
                    arr: hs.var,
                    idx: vec![Atom::Var(bin)],
                    val: Atom::Var(comb),
                },
            ),
        ];
        let body = Body::new(stms, vec![Atom::Var(upd)]);
        Stm::new(
            stm.pat.clone(),
            Exp::Loop {
                params: vec![(hs, Atom::Var(init))],
                index,
                count: Atom::Var(n),
                body,
            },
        )
    }

    // -----------------------------------------------------------------
    // Return sweep
    // -----------------------------------------------------------------

    fn rev_stm(&mut self, stm: &Stm, info: &FwdInfo) {
        match info {
            FwdInfo::CheckpointedLoop {
                stm: loop_stm,
                checkpoints,
            } => {
                self.rev_loop(loop_stm, checkpoints);
                return;
            }
            FwdInfo::ReduceMinMax { iext } => {
                self.rev_reduce_minmax(stm, *iext);
                return;
            }
            FwdInfo::Simple => {}
        }
        match &stm.exp {
            Exp::Redomap { .. } => {
                unreachable!("redomap is unfused (fir::lower::unfuse) before AD")
            }
            Exp::Atom(a) => {
                if let Some(adj) = self.adjoint_of_pat(&stm.pat[0]) {
                    self.add_to_atom_adjoint(*a, Atom::Var(adj));
                }
            }
            Exp::UnOp(op, a) => self.rev_unop(stm, *op, *a),
            Exp::BinOp(op, x, y) => self.rev_binop(stm, *op, *x, *y),
            Exp::Select { cond, t, f } => {
                if stm.pat[0].ty != Type::F64 {
                    return;
                }
                if let Some(adj) = self.adjoint_of_pat(&stm.pat[0]) {
                    let ct = self.b.select(*cond, Atom::Var(adj), Atom::f64(0.0));
                    self.add_to_atom_adjoint(*t, ct);
                    let cf = self.b.select(*cond, Atom::f64(0.0), Atom::Var(adj));
                    self.add_to_atom_adjoint(*f, cf);
                }
            }
            Exp::Index { arr, idx } => {
                if let Some(adj) = self.adjoint_of_pat(&stm.pat[0]) {
                    self.add_index_to_adjoint(*arr, idx, Atom::Var(adj));
                }
            }
            Exp::Update { arr, idx, val } => {
                if let Some(adj) = self.adjoint_of_pat(&stm.pat[0]) {
                    // Contribution to the written value.
                    let elem_ty = stm.pat[0].ty.index(idx.len());
                    let g = self.b.bind1(
                        elem_ty,
                        Exp::Index {
                            arr: adj,
                            idx: idx.clone(),
                        },
                    );
                    self.add_to_atom_adjoint(*val, Atom::Var(g));
                    // Contribution to the array: the adjoint with the
                    // written position zeroed out.
                    let zero: Atom = if elem_ty.is_scalar() {
                        Atom::f64(0.0)
                    } else {
                        Atom::Var(zero_like(&mut self.b, g))
                    };
                    let zeroed = self.b.bind1(
                        stm.pat[0].ty,
                        Exp::Update {
                            arr: adj,
                            idx: idx.clone(),
                            val: zero,
                        },
                    );
                    self.add_to_adjoint(*arr, Atom::Var(zeroed));
                }
            }
            Exp::Len(_) | Exp::Iota(_) => {}
            Exp::Replicate { val, .. } => {
                if let Some(adj) = self.adjoint_of_pat(&stm.pat[0]) {
                    if let Atom::Var(v) = val {
                        if self.b.ty_of(*v) == Type::F64 {
                            let s = self.b.sum(adj);
                            self.add_to_adjoint(*v, Atom::Var(s));
                        } else if self.b.ty_of(*v).is_differentiable() {
                            // replicate of an array: the contribution is the
                            // sum of the adjoint's outer slices, accumulated
                            // with a sequential loop.
                            let val_ty = self.b.ty_of(*v);
                            let n = self.b.bind1(Type::I64, Exp::Len(adj));
                            let zero = zero_like(&mut self.b, *v);
                            let acc = Param::new(self.b.fresh(val_ty), val_ty);
                            let idx = self.b.fresh(Type::I64);
                            self.b.begin_scope();
                            let slice = self.b.bind1(
                                val_ty,
                                Exp::Index {
                                    arr: adj,
                                    idx: vec![Atom::Var(idx)],
                                },
                            );
                            let s = add_values(&mut self.b, Atom::Var(acc.var), Atom::Var(slice));
                            let stms = self.b.end_scope();
                            let out = self.b.bind1(
                                val_ty,
                                Exp::Loop {
                                    params: vec![(acc, Atom::Var(zero))],
                                    index: idx,
                                    count: Atom::Var(n),
                                    body: Body::new(stms, vec![s]),
                                },
                            );
                            self.add_to_adjoint(*v, Atom::Var(out));
                        }
                    }
                }
            }
            Exp::Reverse(v) => {
                if let Some(adj) = self.adjoint_of_pat(&stm.pat[0]) {
                    let r = self.b.bind1(stm.pat[0].ty, Exp::Reverse(adj));
                    self.add_to_adjoint(*v, Atom::Var(r));
                }
            }
            Exp::Copy(v) => {
                if let Some(adj) = self.adjoint_of_pat(&stm.pat[0]) {
                    self.add_to_adjoint(*v, Atom::Var(adj));
                }
            }
            Exp::If {
                cond,
                then_br,
                else_br,
            } => self.rev_if(stm, *cond, then_br, else_br),
            Exp::Map { lam, args } => self.rev_map(stm, lam, args),
            Exp::Reduce { lam, neutral, args } => {
                // Only the scalar single-array case reaches here.
                match recognize_reduce_op(lam) {
                    Some(ReduceOp::Add) => self.rev_reduce_add(stm, args[0]),
                    _ => self.rev_reduce_general(stm, lam, &neutral[0], args[0]),
                }
            }
            Exp::Scan { lam, neutral, args } => match recognize_reduce_op(lam) {
                Some(ReduceOp::Add) => self.rev_scan_add(stm, args[0]),
                _ => self.rev_scan_general(stm, lam, &neutral[0], args[0]),
            },
            Exp::Hist {
                num_bins,
                inds,
                vals,
                ..
            } => {
                // Only the `+` operator reaches here: v̄als_k += h̄s[inds_k],
                // with out-of-range bins contributing nothing (they were
                // ignored by the forward histogram as well).
                if let Some(adj) = self.adjoint_of_pat(&stm.pat[0]) {
                    let m = *num_bins;
                    let pi = self.b.fresh(Type::I64);
                    self.b.begin_scope();
                    let nonneg = self.b.ge(Atom::Var(pi), Atom::i64(0));
                    let below = self.b.lt(Atom::Var(pi), m);
                    let ok = self.b.and(nonneg, below);
                    let zero = self.b.bind1(Type::I64, Exp::Atom(Atom::i64(0)));
                    let safe = self.b.select(ok, Atom::Var(pi), Atom::Var(zero));
                    let h = self.b.bind1(
                        Type::F64,
                        Exp::Index {
                            arr: adj,
                            idx: vec![safe],
                        },
                    );
                    let out = self.b.select(ok, Atom::Var(h), Atom::f64(0.0));
                    let stms = self.b.end_scope();
                    let lam = Lambda {
                        params: vec![Param::new(pi, Type::I64)],
                        body: Body::new(stms, vec![out]),
                        ret: vec![Type::F64],
                    };
                    let g = self.b.bind1(
                        Type::arr_f64(1),
                        Exp::Map {
                            lam,
                            args: vec![*inds],
                        },
                    );
                    self.add_to_adjoint(*vals, Atom::Var(g));
                }
            }
            Exp::Scatter { dest, inds, vals } => {
                if let Some(adj) = self.adjoint_of_pat(&stm.pat[0]) {
                    // Contribution to the scattered values.
                    let g = crate::helpers::gather(&mut self.b, adj, *inds);
                    self.add_to_adjoint(*vals, Atom::Var(g));
                    // Contribution to the destination: the result adjoint
                    // with the scattered positions zeroed out.
                    let zeros = zero_like(&mut self.b, *vals);
                    let zeroed = self.b.bind1(
                        stm.pat[0].ty,
                        Exp::Scatter {
                            dest: adj,
                            inds: *inds,
                            vals: zeros,
                        },
                    );
                    self.add_to_adjoint(*dest, Atom::Var(zeroed));
                }
            }
            Exp::Loop { .. } | Exp::WithAcc { .. } | Exp::UpdAcc { .. } => {
                unreachable!("handled by FwdInfo or rejected in fwd_stm")
            }
        }
    }

    fn rev_unop(&mut self, stm: &Stm, op: UnOp, a: Atom) {
        if stm.pat[0].ty != Type::F64 {
            return;
        }
        let Some(adj) = self.adjoint_of_pat(&stm.pat[0]) else {
            return;
        };
        let x = Atom::Var(stm.pat[0].var); // primal result, in scope
        let adj = Atom::Var(adj);
        let contrib = match op {
            UnOp::Neg => Some(self.b.fneg(adj)),
            UnOp::Sin => {
                let c = self.b.fcos(a);
                Some(self.b.fmul(c, adj))
            }
            UnOp::Cos => {
                let s = self.b.fsin(a);
                let ns = self.b.fneg(s);
                Some(self.b.fmul(ns, adj))
            }
            UnOp::Exp => Some(self.b.fmul(x, adj)),
            UnOp::Log => Some(self.b.fdiv(adj, a)),
            UnOp::Sqrt => {
                let two_x = self.b.fmul(Atom::f64(2.0), x);
                Some(self.b.fdiv(adj, two_x))
            }
            UnOp::Tanh => {
                let xx = self.b.fmul(x, x);
                let one_minus = self.b.fsub(Atom::f64(1.0), xx);
                Some(self.b.fmul(one_minus, adj))
            }
            UnOp::Sigmoid => {
                let one_minus = self.b.fsub(Atom::f64(1.0), x);
                let sx = self.b.fmul(x, one_minus);
                Some(self.b.fmul(sx, adj))
            }
            UnOp::Abs => {
                let cond = self.b.ge(a, Atom::f64(0.0));
                let neg = self.b.fneg(adj);
                Some(self.b.select(cond, adj, neg))
            }
            UnOp::Recip => {
                let xx = self.b.fmul(x, x);
                let nxx = self.b.fneg(xx);
                Some(self.b.fmul(nxx, adj))
            }
            UnOp::Not | UnOp::ToF64 | UnOp::ToI64 => None,
        };
        if let Some(c) = contrib {
            self.add_to_atom_adjoint(a, c);
        }
    }

    fn rev_binop(&mut self, stm: &Stm, op: BinOp, x: Atom, y: Atom) {
        if stm.pat[0].ty != Type::F64 {
            return;
        }
        let Some(adj) = self.adjoint_of_pat(&stm.pat[0]) else {
            return;
        };
        let r = Atom::Var(stm.pat[0].var);
        let adj = Atom::Var(adj);
        match op {
            BinOp::Add => {
                self.add_to_atom_adjoint(x, adj);
                self.add_to_atom_adjoint(y, adj);
            }
            BinOp::Sub => {
                self.add_to_atom_adjoint(x, adj);
                let n = self.b.fneg(adj);
                self.add_to_atom_adjoint(y, n);
            }
            BinOp::Mul => {
                let cx = self.b.fmul(y, adj);
                self.add_to_atom_adjoint(x, cx);
                let cy = self.b.fmul(x, adj);
                self.add_to_atom_adjoint(y, cy);
            }
            BinOp::Div => {
                let cx = self.b.fdiv(adj, y);
                self.add_to_atom_adjoint(x, cx);
                let rdiv = self.b.fdiv(r, y);
                let neg = self.b.fneg(rdiv);
                let cy = self.b.fmul(neg, adj);
                self.add_to_atom_adjoint(y, cy);
            }
            BinOp::Pow => {
                let ym1 = self.b.fsub(y, Atom::f64(1.0));
                let powm1 = self.b.fpow(x, ym1);
                let t = self.b.fmul(y, powm1);
                let cx = self.b.fmul(t, adj);
                self.add_to_atom_adjoint(x, cx);
                let lx = self.b.flog(x);
                let t2 = self.b.fmul(r, lx);
                let cy = self.b.fmul(t2, adj);
                self.add_to_atom_adjoint(y, cy);
            }
            BinOp::Min | BinOp::Max => {
                let cond = if op == BinOp::Min {
                    self.b.le(x, y)
                } else {
                    self.b.ge(x, y)
                };
                let cx = self.b.select(cond, adj, Atom::f64(0.0));
                self.add_to_atom_adjoint(x, cx);
                let cy = self.b.select(cond, Atom::f64(0.0), adj);
                self.add_to_atom_adjoint(y, cy);
            }
            BinOp::Rem => {
                self.add_to_atom_adjoint(x, adj);
            }
            _ => {}
        }
    }

    // -----------------------------------------------------------------
    // if-then-else
    // -----------------------------------------------------------------

    fn rev_if(&mut self, stm: &Stm, cond: Atom, then_br: &Body, else_br: &Body) {
        // Adjoints of the branch results.
        let res_adj: Vec<Option<Atom>> = stm
            .pat
            .iter()
            .map(|p| self.adjoint_of_pat(p).map(Atom::Var))
            .collect();
        if res_adj.iter().all(Option::is_none) {
            return;
        }
        // Free differentiable variables of either branch.
        let mut wanted: Vec<VarId> = then_br
            .free_vars()
            .union(&else_br.free_vars())
            .copied()
            .filter(|v| self.b.ty_of(*v).is_differentiable())
            .collect();
        wanted.sort();
        if wanted.is_empty() {
            return;
        }
        let saved = self.adj.clone();
        // Then branch.
        self.b.begin_scope();
        let adjs_t = self.vjp_body(then_br, &res_adj, &wanted);
        let then_stms = self.b.end_scope();
        let then_tys: Vec<Type> = adjs_t.iter().map(|v| self.b.ty_of(*v)).collect();
        let then_body = Body::new(then_stms, adjs_t.iter().map(|v| Atom::Var(*v)).collect());
        self.adj = saved.clone();
        // Else branch.
        self.b.begin_scope();
        let adjs_e = self.vjp_body(else_br, &res_adj, &wanted);
        let else_stms = self.b.end_scope();
        let else_body = Body::new(else_stms, adjs_e.iter().map(|v| Atom::Var(*v)).collect());
        self.adj = saved;
        let outs = self.b.bind(
            &then_tys,
            Exp::If {
                cond,
                then_br: then_body,
                else_br: else_body,
            },
        );
        for (w, o) in wanted.iter().zip(outs) {
            self.adj.insert(*w, o);
        }
    }

    // -----------------------------------------------------------------
    // Sequential loops (Fig. 3 / Fig. 4)
    // -----------------------------------------------------------------

    fn rev_loop(&mut self, stm: &Stm, checkpoints: &[VarId]) {
        let (params, _index, count, body) = match &stm.exp {
            Exp::Loop {
                params,
                index,
                count,
                body,
            } => (params, *index, *count, body),
            _ => unreachable!(),
        };
        // Which loop parameters carry derivatives.
        let diff_idx: Vec<usize> = (0..params.len())
            .filter(|j| params[*j].0.ty.is_differentiable())
            .collect();
        // Adjoints of the loop outputs (order: differentiable params only).
        let out_adj_exists = diff_idx
            .iter()
            .any(|j| self.adjoint_of_pat(&stm.pat[*j]).is_some());
        // Free differentiable variables of the loop body (excluding params/index).
        let mut fvs: Vec<VarId> = stm
            .exp
            .free_vars()
            .into_iter()
            .filter(|v| self.b.ty_of(*v).is_differentiable())
            .collect();
        fvs.sort();
        if !out_adj_exists && fvs.is_empty() {
            return;
        }
        // Initial values of the loop-carried adjoints.
        let init_out_adj: Vec<VarId> = diff_idx
            .iter()
            .map(|j| self.adjoint_or_zero(stm.pat[*j].var))
            .collect();
        let init_fv_adj: Vec<VarId> = fvs.iter().map(|v| self.adjoint_or_zero(*v)).collect();

        // Loop-carried adjoint parameters.
        let pbar_params: Vec<Param> = diff_idx
            .iter()
            .zip(&init_out_adj)
            .map(|(j, init)| {
                let ty = self.b.ty_of(*init);
                let _ = j;
                Param::new(self.b.fresh(ty), ty)
            })
            .collect();
        let fvbar_params: Vec<Param> = init_fv_adj
            .iter()
            .map(|init| {
                let ty = self.b.ty_of(*init);
                Param::new(self.b.fresh(ty), ty)
            })
            .collect();
        let ridx = self.b.fresh(Type::I64);

        let saved = self.adj.clone();
        self.b.begin_scope();
        // i = count - 1 - ridx: iterate the original iterations in reverse.
        let cm1 = self.b.isub(count, Atom::i64(1));
        let i = self.b.isub(cm1, Atom::Var(ridx));
        // Re-install the checkpointed loop parameters for iteration i.
        for ((p, _), ck) in params.iter().zip(checkpoints) {
            let stm_reinstall = Stm::new(
                vec![*p],
                Exp::Index {
                    arr: *ck,
                    idx: vec![i],
                },
            );
            self.b.push_stm(stm_reinstall);
        }
        // Bind the original loop index to i as well.
        self.b
            .push_stm(Stm::new(vec![Param::new(_index, Type::I64)], Exp::Atom(i)));
        // Adjoint environment for the loop body scope.
        self.adj = HashMap::new();
        for (fv, fp) in fvs.iter().zip(&fvbar_params) {
            self.adj.insert(*fv, fp.var);
        }
        // Seeds: the adjoint of the body's results are the carried adjoints.
        let mut res_adj: Vec<Option<Atom>> = vec![None; body.result.len()];
        for (k, j) in diff_idx.iter().enumerate() {
            res_adj[*j] = Some(Atom::Var(pbar_params[k].var));
        }
        let mut wanted: Vec<VarId> = diff_idx.iter().map(|j| params[*j].0.var).collect();
        wanted.extend(fvs.iter().copied());
        let adjs = self.vjp_body(body, &res_adj, &wanted);
        let rev_stms = self.b.end_scope();
        let rev_body = Body::new(rev_stms, adjs.iter().map(|v| Atom::Var(*v)).collect());
        self.adj = saved;

        // Assemble the reverse loop.
        let mut rev_params: Vec<(Param, Atom)> = Vec::new();
        for (p, init) in pbar_params.iter().zip(&init_out_adj) {
            rev_params.push((*p, Atom::Var(*init)));
        }
        for (p, init) in fvbar_params.iter().zip(&init_fv_adj) {
            rev_params.push((*p, Atom::Var(*init)));
        }
        let out_tys: Vec<Type> = rev_params.iter().map(|(p, _)| p.ty).collect();
        let outs = self.b.bind(
            &out_tys,
            Exp::Loop {
                params: rev_params,
                index: ridx,
                count,
                body: rev_body,
            },
        );
        // The first group of outputs are the adjoints of the loop-variant
        // initializers; the rest are the final free-variable adjoints. The
        // free-variable adjoints are installed first: an initializer may
        // itself be a free variable of the body (e.g. `loop (x = xs) ...`
        // where `xs` is also read inside), and its initializer contribution
        // must be added on top of the carried adjoint, not overwritten by it.
        for (k, fv) in fvs.iter().enumerate() {
            self.adj.insert(*fv, outs[diff_idx.len() + k]);
        }
        for (k, j) in diff_idx.iter().enumerate() {
            let init_atom = params[*j].1;
            self.add_to_atom_adjoint(init_atom, Atom::Var(outs[k]));
        }
    }

    // -----------------------------------------------------------------
    // map (§5.4): free array variables become accumulators.
    // -----------------------------------------------------------------

    fn rev_map(&mut self, stm: &Stm, lam: &Lambda, args: &[VarId]) {
        // Adjoints of the map outputs.
        let diff_out: Vec<usize> = (0..stm.pat.len())
            .filter(|j| stm.pat[*j].ty.is_differentiable())
            .collect();
        if diff_out.is_empty()
            || diff_out
                .iter()
                .all(|j| self.adjoint_of_pat(&stm.pat[*j]).is_none())
        {
            return;
        }
        let out_adj: Vec<VarId> = diff_out
            .iter()
            .map(|j| self.adjoint_or_zero(stm.pat[*j].var))
            .collect();

        // Free differentiable variables of the lambda.
        let mut fvs: Vec<VarId> = lam
            .free_vars()
            .into_iter()
            .filter(|v| self.b.ty_of(*v).is_differentiable())
            .collect();
        fvs.sort();
        let sfv: Vec<VarId> = fvs
            .iter()
            .copied()
            .filter(|v| self.b.ty_of(*v).is_scalar())
            .collect();
        let afv: Vec<VarId> = fvs
            .iter()
            .copied()
            .filter(|v| self.b.ty_of(*v).is_array())
            .collect();
        // Partition array free variables: those whose adjoint is already an
        // accumulator are passed through; the rest get wrapped in `withacc`.
        let mut wrap: Vec<VarId> = Vec::new();
        let mut pass: Vec<(VarId, VarId)> = Vec::new();
        for v in &afv {
            match self.adj.get(v).copied() {
                Some(a) if self.b.ty_of(a).is_acc() => pass.push((*v, a)),
                _ => wrap.push(*v),
            }
        }
        let wrap_adj: Vec<VarId> = wrap.iter().map(|v| self.adjoint_or_zero(*v)).collect();

        // Differentiable map arguments (positions).
        let diff_args: Vec<usize> = (0..args.len())
            .filter(|j| self.b.ty_of(args[*j]).is_differentiable())
            .collect();

        // ---- Build the inner reverse lambda -------------------------------
        // Parameters: one element per original argument, one adjoint element
        // per differentiable output, one accumulator per wrapped array free
        // variable, one per passed-through accumulator.
        let elem_params: Vec<Param> = args
            .iter()
            .map(|a| {
                let t = self.b.ty_of(*a).peel();
                Param::new(self.b.fresh(t), t)
            })
            .collect();
        let outadj_params: Vec<Param> = diff_out
            .iter()
            .map(|j| {
                let t = stm.pat[*j].ty.peel();
                Param::new(self.b.fresh(t), t)
            })
            .collect();
        let wrapacc_params: Vec<Param> = wrap
            .iter()
            .map(|v| {
                let t = self.b.ty_of(*v).to_acc();
                Param::new(self.b.fresh(t), t)
            })
            .collect();
        let passacc_params: Vec<Param> = pass
            .iter()
            .map(|(_, a)| {
                let t = self.b.ty_of(*a);
                Param::new(self.b.fresh(t), t)
            })
            .collect();

        let saved = self.adj.clone();
        self.b.begin_scope();
        // Bind the original lambda parameters to the element parameters so
        // the re-executed body refers to the right values.
        for (orig, elem) in lam.params.iter().zip(&elem_params) {
            self.b
                .push_stm(Stm::new(vec![*orig], Exp::Atom(Atom::Var(elem.var))));
        }
        // Adjoint environment for this scope: only the accumulators.
        self.adj = HashMap::new();
        for (v, p) in wrap.iter().zip(&wrapacc_params) {
            self.adj.insert(*v, p.var);
        }
        for ((v, _), p) in pass.iter().zip(&passacc_params) {
            self.adj.insert(*v, p.var);
        }
        // Seeds for the lambda results.
        let mut res_adj: Vec<Option<Atom>> = vec![None; lam.ret.len()];
        for (k, j) in diff_out.iter().enumerate() {
            res_adj[*j] = Some(Atom::Var(outadj_params[k].var));
        }
        // Wanted adjoints: lambda parameters (for differentiable arguments),
        // scalar free variables, then the accumulators.
        let mut wanted: Vec<VarId> = diff_args.iter().map(|j| lam.params[*j].var).collect();
        wanted.extend(sfv.iter().copied());
        wanted.extend(wrap.iter().copied());
        wanted.extend(pass.iter().map(|(v, _)| *v));
        let adjs = self.vjp_body(&lam.body, &res_adj, &wanted);
        let inner_stms = self.b.end_scope();
        self.adj = saved;

        let inner_result: Vec<Atom> = adjs.iter().map(|v| Atom::Var(*v)).collect();
        let inner_ret: Vec<Type> = adjs.iter().map(|v| self.b.ty_of(*v)).collect();
        let mut inner_params = elem_params.clone();
        inner_params.extend(outadj_params.iter().copied());
        inner_params.extend(wrapacc_params.iter().copied());
        inner_params.extend(passacc_params.iter().copied());
        let inner_lam = Lambda {
            params: inner_params,
            body: Body::new(inner_stms, inner_result),
            ret: inner_ret.clone(),
        };

        // Result layout of the inner map:
        //   [0 .. n_args)                adjoint elements of differentiable args
        //   [n_args .. +n_sfv)           per-element scalar free-var contributions
        //   [.. +n_wrap)                 wrapped accumulators
        //   [.. +n_pass)                 passed-through accumulators
        let n_arg = diff_args.len();
        let n_sfv = sfv.len();
        let n_wrap = wrap.len();

        // Output types of the map: lift arrays, keep accumulators.
        let map_out_tys: Vec<Type> = inner_ret
            .iter()
            .map(|t| if t.is_acc() { *t } else { t.lift() })
            .collect();

        if wrap.is_empty() {
            // No withacc needed: emit the map directly.
            let mut map_args: Vec<VarId> = args.to_vec();
            map_args.extend(out_adj.iter().copied());
            map_args.extend(pass.iter().map(|(_, a)| *a));
            let outs = self.b.bind(
                &map_out_tys,
                Exp::Map {
                    lam: inner_lam,
                    args: map_args,
                },
            );
            self.finish_map_adjoints(&outs, &diff_args, args, &sfv, n_arg, n_sfv);
            // Passed-through accumulators: keep the freshest handle.
            for (k, (v, _)) in pass.iter().enumerate() {
                self.adj.insert(*v, outs[n_arg + n_sfv + n_wrap + k]);
            }
        } else {
            // Wrap the map in withacc over the wrapped adjoint arrays.
            let acc_lam_params: Vec<Param> = wrap_adj
                .iter()
                .map(|a| {
                    let t = self.b.ty_of(*a).to_acc();
                    Param::new(self.b.fresh(t), t)
                })
                .collect();
            self.b.begin_scope();
            let mut map_args: Vec<VarId> = args.to_vec();
            map_args.extend(out_adj.iter().copied());
            map_args.extend(acc_lam_params.iter().map(|p| p.var));
            map_args.extend(pass.iter().map(|(_, a)| *a));
            let map_outs = self.b.bind(
                &map_out_tys,
                Exp::Map {
                    lam: inner_lam,
                    args: map_args,
                },
            );
            let with_stms = self.b.end_scope();
            // withacc lambda result: the wrapped accumulators first, then the
            // secondary (array) results.
            let mut acc_result: Vec<Atom> = Vec::new();
            let mut acc_ret: Vec<Type> = Vec::new();
            for k in 0..n_wrap {
                let v = map_outs[n_arg + n_sfv + k];
                acc_result.push(Atom::Var(v));
                acc_ret.push(self.b.ty_of(v));
            }
            for k in 0..n_arg + n_sfv {
                let v = map_outs[k];
                acc_result.push(Atom::Var(v));
                acc_ret.push(self.b.ty_of(v));
            }
            let with_lam = Lambda {
                params: acc_lam_params,
                body: Body::new(with_stms, acc_result),
                ret: acc_ret,
            };
            // withacc returns the updated arrays followed by the secondary
            // results.
            let mut with_out_tys: Vec<Type> = wrap_adj.iter().map(|a| self.b.ty_of(*a)).collect();
            for k in 0..n_arg + n_sfv {
                with_out_tys.push(self.b.ty_of(map_outs[k]));
            }
            let outs = self.b.bind(
                &with_out_tys,
                Exp::WithAcc {
                    arrs: wrap_adj.clone(),
                    lam: with_lam,
                },
            );
            // Updated adjoints of the wrapped free variables.
            for (k, v) in wrap.iter().enumerate() {
                self.adj.insert(*v, outs[k]);
            }
            let secondary: Vec<VarId> = outs[n_wrap..].to_vec();
            self.finish_map_adjoints(&secondary, &diff_args, args, &sfv, n_arg, n_sfv);
            // Passed-through accumulators keep their (shared) handles; the
            // buffer updates are already visible through them.
        }
    }

    /// Add the per-element argument adjoints and the summed scalar free
    /// variable contributions produced by a reverse map.
    fn finish_map_adjoints(
        &mut self,
        outs: &[VarId],
        diff_args: &[usize],
        args: &[VarId],
        sfv: &[VarId],
        n_arg: usize,
        n_sfv: usize,
    ) {
        for (k, j) in diff_args.iter().enumerate() {
            self.add_to_adjoint(args[*j], Atom::Var(outs[k]));
        }
        for (k, v) in sfv.iter().enumerate() {
            let s = self.b.sum(outs[n_arg + k]);
            self.add_to_adjoint(*v, Atom::Var(s));
        }
        let _ = n_sfv;
    }

    // -----------------------------------------------------------------
    // reduce (§5.1)
    // -----------------------------------------------------------------

    fn rev_reduce_add(&mut self, stm: &Stm, arr: VarId) {
        let Some(adj) = self.adjoint_of_pat(&stm.pat[0]) else {
            return;
        };
        let n = self.b.bind1(Type::I64, Exp::Len(arr));
        let rep = self.b.bind1(
            Type::arr_f64(1),
            Exp::Replicate {
                n: Atom::Var(n),
                val: Atom::Var(adj),
            },
        );
        self.add_to_adjoint(arr, Atom::Var(rep));
    }

    fn rev_reduce_minmax(&mut self, stm: &Stm, iext: VarId) {
        let arr = match &stm.exp {
            Exp::Reduce { args, .. } => args[0],
            _ => unreachable!(),
        };
        let Some(adj) = self.adjoint_of_pat(&stm.pat[0]) else {
            return;
        };
        self.add_index_to_adjoint(arr, &[Atom::Var(iext)], Atom::Var(adj));
    }

    /// The general reduce rule: exclusive prefix products from the left and
    /// right, then a map applying the operator's vjp per element (§5.1).
    fn rev_reduce_general(&mut self, stm: &Stm, lam: &Lambda, neutral: &Atom, arr: VarId) {
        let Some(yadj) = self.adjoint_of_pat(&stm.pat[0]) else {
            return;
        };
        let ne = *neutral;
        let n = self.b.bind1(Type::I64, Exp::Len(arr));
        // ls_i = a_0 ⊙ ... ⊙ a_{i-1}   (exclusive scan from the left)
        let mut ren = Renamer::new();
        let lam1 = ren.lambda(&mut self.b, lam);
        let incl = self.b.bind1(
            Type::arr_f64(1),
            Exp::Scan {
                lam: lam1,
                neutral: vec![ne],
                args: vec![arr],
            },
        );
        let iot = self.b.bind1(Type::arr_i64(1), Exp::Iota(Atom::Var(n)));
        let ls = self.exclusive_from_inclusive(incl, iot, ne, true, n);
        // rs_i = a_{i+1} ⊙ ... ⊙ a_{n-1}  (exclusive scan from the right,
        // computed as a flipped-operator scan over the reversed array).
        let rarr = self.b.bind1(Type::arr_f64(1), Exp::Reverse(arr));
        let flipped = self.flip_operator(lam);
        let rincl = self.b.bind1(
            Type::arr_f64(1),
            Exp::Scan {
                lam: flipped,
                neutral: vec![ne],
                args: vec![rarr],
            },
        );
        let rs = self.exclusive_from_right(rincl, iot, ne, n);
        // Per-element contribution: vjp of (\l a r -> (l ⊙ a) ⊙ r) w.r.t. a.
        let contrib = self.map_reduce_contrib(lam, ls, arr, rs, yadj);
        self.add_to_adjoint(arr, Atom::Var(contrib));
    }

    /// Build `map (\i incl -> if i == 0 then ne else incl[i-1]) (iota n)`
    /// (the exclusive scan from the inclusive one).
    fn exclusive_from_inclusive(
        &mut self,
        incl: VarId,
        iot: VarId,
        ne: Atom,
        _from_left: bool,
        _n: VarId,
    ) -> VarId {
        let pi = self.b.fresh(Type::I64);
        self.b.begin_scope();
        let is_first = self.b.eq(Atom::Var(pi), Atom::i64(0));
        let im1 = self.b.isub(Atom::Var(pi), Atom::i64(1));
        let clamped = self
            .b
            .bind1(Type::I64, Exp::BinOp(BinOp::Max, im1, Atom::i64(0)));
        let prev = self.b.bind1(
            Type::F64,
            Exp::Index {
                arr: incl,
                idx: vec![Atom::Var(clamped)],
            },
        );
        let out = self.b.select(is_first, ne, Atom::Var(prev));
        let stms = self.b.end_scope();
        let lam = Lambda {
            params: vec![Param::new(pi, Type::I64)],
            body: Body::new(stms, vec![out]),
            ret: vec![Type::F64],
        };
        self.b.bind1(
            Type::arr_f64(1),
            Exp::Map {
                lam,
                args: vec![iot],
            },
        )
    }

    /// rs_i = a_{i+1} ⊙ ... ⊙ a_{n-1} from the inclusive flipped scan of the
    /// reversed array: rs_i = rincl[n-2-i] for i < n-1, ne for i = n-1.
    fn exclusive_from_right(&mut self, rincl: VarId, iot: VarId, ne: Atom, n: VarId) -> VarId {
        let pi = self.b.fresh(Type::I64);
        self.b.begin_scope();
        let nm1 = self.b.isub(Atom::Var(n), Atom::i64(1));
        let is_last = self.b.eq(Atom::Var(pi), nm1);
        let nm2 = self.b.isub(Atom::Var(n), Atom::i64(2));
        let idx = self.b.isub(nm2, Atom::Var(pi));
        let clamped = self
            .b
            .bind1(Type::I64, Exp::BinOp(BinOp::Max, idx, Atom::i64(0)));
        let v = self.b.bind1(
            Type::F64,
            Exp::Index {
                arr: rincl,
                idx: vec![Atom::Var(clamped)],
            },
        );
        let out = self.b.select(is_last, ne, Atom::Var(v));
        let stms = self.b.end_scope();
        let lam = Lambda {
            params: vec![Param::new(pi, Type::I64)],
            body: Body::new(stms, vec![out]),
            ret: vec![Type::F64],
        };
        self.b.bind1(
            Type::arr_f64(1),
            Exp::Map {
                lam,
                args: vec![iot],
            },
        )
    }

    /// `λ x y -> y ⊙ x` for a binary scalar operator lambda.
    fn flip_operator(&mut self, lam: &Lambda) -> Lambda {
        let mut ren = Renamer::new();
        let fresh = ren.lambda(&mut self.b, lam);
        let px = self.b.fresh(Type::F64);
        let py = self.b.fresh(Type::F64);
        let mut stms = vec![
            Stm::new(vec![fresh.params[0]], Exp::Atom(Atom::Var(py))),
            Stm::new(vec![fresh.params[1]], Exp::Atom(Atom::Var(px))),
        ];
        stms.extend(fresh.body.stms);
        Lambda {
            params: vec![Param::new(px, Type::F64), Param::new(py, Type::F64)],
            body: Body::new(stms, fresh.body.result),
            ret: vec![Type::F64],
        }
    }

    /// `map (\l a r ybar -> vjp_a((l ⊙ a) ⊙ r) ybar) ls as rs` with `ybar`
    /// a free scalar.
    fn map_reduce_contrib(
        &mut self,
        lam: &Lambda,
        ls: VarId,
        arr: VarId,
        rs: VarId,
        yadj: VarId,
    ) -> VarId {
        let pl = self.b.fresh(Type::F64);
        let pa = self.b.fresh(Type::F64);
        let pr = self.b.fresh(Type::F64);
        // Compose (l ⊙ a) ⊙ r as an inline body with fresh copies of the
        // operator, then differentiate it w.r.t. `a` with seed ybar.
        let mut ren1 = Renamer::new();
        let op1 = ren1.lambda(&mut self.b, lam);
        let mut ren2 = Renamer::new();
        let op2 = ren2.lambda(&mut self.b, lam);
        let mut stms: Vec<Stm> = vec![
            Stm::new(vec![op1.params[0]], Exp::Atom(Atom::Var(pl))),
            Stm::new(vec![op1.params[1]], Exp::Atom(Atom::Var(pa))),
        ];
        stms.extend(op1.body.stms.clone());
        stms.push(Stm::new(vec![op2.params[0]], Exp::Atom(op1.body.result[0])));
        stms.push(Stm::new(vec![op2.params[1]], Exp::Atom(Atom::Var(pr))));
        stms.extend(op2.body.stms.clone());
        let mini = Body::new(stms, vec![op2.body.result[0]]);

        let saved = self.adj.clone();
        self.b.begin_scope();
        self.adj = HashMap::new();
        let adjs = self.vjp_body(&mini, &[Some(Atom::Var(yadj))], &[pa]);
        let inner_stms = self.b.end_scope();
        self.adj = saved;
        let inner = Lambda {
            params: vec![
                Param::new(pl, Type::F64),
                Param::new(pa, Type::F64),
                Param::new(pr, Type::F64),
            ],
            body: Body::new(inner_stms, vec![Atom::Var(adjs[0])]),
            ret: vec![Type::F64],
        };
        self.b.bind1(
            Type::arr_f64(1),
            Exp::Map {
                lam: inner,
                args: vec![ls, arr, rs],
            },
        )
    }

    // -----------------------------------------------------------------
    // scan (§5.2)
    // -----------------------------------------------------------------

    fn rev_scan_add(&mut self, stm: &Stm, arr: VarId) {
        let Some(adj) = self.adjoint_of_pat(&stm.pat[0]) else {
            return;
        };
        // as̄ += reverse (scan (+) 0 (reverse ȳs))
        let r = self.b.bind1(Type::arr_f64(1), Exp::Reverse(adj));
        let s = self.b.scan_add(r);
        let rr = self.b.bind1(Type::arr_f64(1), Exp::Reverse(s));
        self.add_to_adjoint(arr, Atom::Var(rr));
    }

    /// The general scan rule: solve the backward linear recurrence
    /// `r̄s_i = ȳs_i + c_i · r̄s_{i+1}` with a scan over linear-function
    /// composition (`lin_o`), then map the operator's vjp over the elements.
    fn rev_scan_general(&mut self, stm: &Stm, lam: &Lambda, _neutral: &Atom, arr: VarId) {
        let Some(yadj) = self.adjoint_of_pat(&stm.pat[0]) else {
            return;
        };
        let ys = stm.pat[0].var; // primal scan result, in scope
        let n = self.b.bind1(Type::I64, Exp::Len(arr));
        let iot = self.b.bind1(Type::arr_i64(1), Exp::Iota(Atom::Var(n)));
        let nm1 = self.b.isub(Atom::Var(n), Atom::i64(1));

        // (ds, cs): ds_i = ȳs_i, c_i = ∂(ys_i ⊙ as_{i+1})/∂ys_i, except at
        // the last position where (0, 1).
        let pi = self.b.fresh(Type::I64);
        let saved = self.adj.clone();
        self.b.begin_scope();
        let is_last = self.b.eq(Atom::Var(pi), nm1);
        let d_here = self.b.bind1(
            Type::F64,
            Exp::Index {
                arr: yadj,
                idx: vec![Atom::Var(pi)],
            },
        );
        let y_here = self.b.bind1(
            Type::F64,
            Exp::Index {
                arr: ys,
                idx: vec![Atom::Var(pi)],
            },
        );
        let ip1 = self.b.iadd(Atom::Var(pi), Atom::i64(1));
        let ip1c = self.b.bind1(Type::I64, Exp::BinOp(BinOp::Min, ip1, nm1));
        let a_next = self.b.bind1(
            Type::F64,
            Exp::Index {
                arr,
                idx: vec![Atom::Var(ip1c)],
            },
        );
        // c = ∂(y ⊙ a_next)/∂y with seed 1.
        self.adj = HashMap::new();
        let (dx, _dy) = self.op_partials(lam, Atom::Var(y_here), Atom::Var(a_next), Atom::f64(1.0));
        self.adj = saved.clone();
        let d_out = self.b.select(is_last, Atom::f64(0.0), Atom::Var(d_here));
        let c_out = self.b.select(is_last, Atom::f64(1.0), Atom::Var(dx));
        let stms = self.b.end_scope();
        let dclam = Lambda {
            params: vec![Param::new(pi, Type::I64)],
            body: Body::new(stms, vec![d_out, c_out]),
            ret: vec![Type::F64, Type::F64],
        };
        let dc = self.b.bind(
            &[Type::arr_f64(1), Type::arr_f64(1)],
            Exp::Map {
                lam: dclam,
                args: vec![iot],
            },
        );
        let (ds, cs) = (dc[0], dc[1]);

        // Solve the recurrence with a scan of linear-function composition
        // over the reversed sequences.
        let rds = self.b.bind1(Type::arr_f64(1), Exp::Reverse(ds));
        let rcs = self.b.bind1(Type::arr_f64(1), Exp::Reverse(cs));
        let lin = self.lin_o_operator();
        let scanned = self.b.bind(
            &[Type::arr_f64(1), Type::arr_f64(1)],
            Exp::Scan {
                lam: lin,
                neutral: vec![Atom::f64(0.0), Atom::f64(1.0)],
                args: vec![rds, rcs],
            },
        );
        // r̄s = reverse (map (\d c -> d + c * ȳs[n-1]) scanned)
        let ylast = self.b.bind1(
            Type::F64,
            Exp::Index {
                arr: yadj,
                idx: vec![nm1],
            },
        );
        let pd = self.b.fresh(Type::F64);
        let pc = self.b.fresh(Type::F64);
        self.b.begin_scope();
        let t = self.b.fmul(Atom::Var(pc), Atom::Var(ylast));
        let o = self.b.fadd(Atom::Var(pd), t);
        let stms = self.b.end_scope();
        let finlam = Lambda {
            params: vec![Param::new(pd, Type::F64), Param::new(pc, Type::F64)],
            body: Body::new(stms, vec![o]),
            ret: vec![Type::F64],
        };
        let rbar_rev = self.b.bind1(
            Type::arr_f64(1),
            Exp::Map {
                lam: finlam,
                args: vec![scanned[0], scanned[1]],
            },
        );
        let rbar = self.b.bind1(Type::arr_f64(1), Exp::Reverse(rbar_rev));

        // ās_i += if i == 0 then r̄s_0 else ∂(ys_{i-1} ⊙ a_i)/∂a_i · r̄s_i
        let qi = self.b.fresh(Type::I64);
        let qa = self.b.fresh(Type::F64);
        self.b.begin_scope();
        let is_first = self.b.eq(Atom::Var(qi), Atom::i64(0));
        let im1 = self.b.isub(Atom::Var(qi), Atom::i64(1));
        let im1c = self
            .b
            .bind1(Type::I64, Exp::BinOp(BinOp::Max, im1, Atom::i64(0)));
        let y_prev = self.b.bind1(
            Type::F64,
            Exp::Index {
                arr: ys,
                idx: vec![Atom::Var(im1c)],
            },
        );
        let r_here = self.b.bind1(
            Type::F64,
            Exp::Index {
                arr: rbar,
                idx: vec![Atom::Var(qi)],
            },
        );
        self.adj = HashMap::new();
        let (_dx, dy) = self.op_partials(lam, Atom::Var(y_prev), Atom::Var(qa), Atom::Var(r_here));
        self.adj = saved.clone();
        let out = self.b.select(is_first, Atom::Var(r_here), Atom::Var(dy));
        let stms = self.b.end_scope();
        self.adj = saved;
        let contriblam = Lambda {
            params: vec![Param::new(qi, Type::I64), Param::new(qa, Type::F64)],
            body: Body::new(stms, vec![out]),
            ret: vec![Type::F64],
        };
        let contrib = self.b.bind1(
            Type::arr_f64(1),
            Exp::Map {
                lam: contriblam,
                args: vec![iot, arr],
            },
        );
        self.add_to_adjoint(arr, Atom::Var(contrib));
    }

    /// The `lin_o` operator of §5.2: `(d1,c1) ⊕ (d2,c2) = (d2 + c2·d1, c2·c1)`.
    fn lin_o_operator(&mut self) -> Lambda {
        let d1 = self.b.fresh(Type::F64);
        let c1 = self.b.fresh(Type::F64);
        let d2 = self.b.fresh(Type::F64);
        let c2 = self.b.fresh(Type::F64);
        self.b.begin_scope();
        let t = self.b.fmul(Atom::Var(c2), Atom::Var(d1));
        let d = self.b.fadd(Atom::Var(d2), t);
        let c = self.b.fmul(Atom::Var(c2), Atom::Var(c1));
        let stms = self.b.end_scope();
        Lambda {
            params: vec![
                Param::new(d1, Type::F64),
                Param::new(c1, Type::F64),
                Param::new(d2, Type::F64),
                Param::new(c2, Type::F64),
            ],
            body: Body::new(stms, vec![d, c]),
            ret: vec![Type::F64, Type::F64],
        }
    }

    /// Differentiate a binary scalar operator at the point `(x, y)` with the
    /// given output seed, returning the two partial-derivative variables.
    /// Emits the forward and reverse code for the operator inline in the
    /// current scope. The caller manages `self.adj`.
    fn op_partials(&mut self, lam: &Lambda, x: Atom, y: Atom, seed: Atom) -> (VarId, VarId) {
        let mut ren = Renamer::new();
        let fresh = ren.lambda(&mut self.b, lam);
        let px = fresh.params[0];
        let py = fresh.params[1];
        let mut stms = vec![
            Stm::new(vec![px], Exp::Atom(x)),
            Stm::new(vec![py], Exp::Atom(y)),
        ];
        stms.extend(fresh.body.stms.clone());
        let mini = Body::new(stms, vec![fresh.body.result[0]]);
        let adjs = self.vjp_body(&mini, &[Some(seed)], &[px.var, py.var]);
        (adjs[0], adjs[1])
    }
}
