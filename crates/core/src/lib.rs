//! `futhark-ad` — forward- and reverse-mode automatic differentiation for
//! the `fir` nested-parallel array IR.
//!
//! This crate is the reproduction of the core contribution of *"AD for an
//! Array Language with Nested Parallelism"* (SC 2022):
//!
//! * [`vjp`] — reverse-mode AD by redundant execution: tape-free, scope-wise
//!   forward re-execution, loop checkpointing, and per-SOAC rewrite rules
//!   (reduce, scan, histogram, scatter, map-with-accumulators).
//! * [`jvp`] — forward-mode AD by tangent interleaving, including support
//!   for the accumulator constructs produced by `vjp` so the two can be
//!   nested (`jvp ∘ vjp`) to compute Hessians.
//! * [`stripmine`] — the user-directed loop strip-mining transformation that
//!   realises the time/space trade-off of §4.3.
//! * [`gradcheck`] — finite-difference validation helpers used by the test
//!   suites and benchmarks.
//!
//! # Example: the gradient of a dot product
//!
//! ```
//! use fir::builder::Builder;
//! use fir::types::Type;
//! use futhark_ad::vjp;
//! use interp::{Interp, Value};
//!
//! let mut b = Builder::new();
//! let dot = b.build_fun("dot", &[Type::arr_f64(1), Type::arr_f64(1)], |b, ps| {
//!     let prods = b.map1(Type::arr_f64(1), &[ps[0], ps[1]], |b, es| {
//!         vec![b.fmul(es[0].into(), es[1].into())]
//!     });
//!     vec![b.sum(prods).into()]
//! });
//! let ddot = vjp(&dot);
//! let xs = Value::from(vec![1.0, 2.0, 3.0]);
//! let ys = Value::from(vec![4.0, 5.0, 6.0]);
//! let out = Interp::new().run(&ddot, &[xs, ys, Value::F64(1.0)]);
//! assert_eq!(out[0].as_f64(), 32.0);                      // primal
//! assert_eq!(out[1].as_arr().f64s(), &[4.0, 5.0, 6.0]);   // d/dxs = ys
//! assert_eq!(out[2].as_arr().f64s(), &[1.0, 2.0, 3.0]);   // d/dys = xs
//! ```

// Index-based loops in this crate mirror the (row, col)/(i, j) math of
// the reference implementations; iterator rewrites would obscure it.
#![allow(clippy::needless_range_loop)]

pub mod forward;
pub mod gradcheck;
pub mod helpers;
pub mod reverse;
pub mod stripmine;

pub use forward::jvp;
pub use reverse::vjp;
pub use stripmine::stripmine_loops;
