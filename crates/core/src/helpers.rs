//! IR-building utilities shared by the forward- and reverse-mode
//! transformations: zero values, vectorized additions, gathers, and type
//! registration for existing program fragments.

use fir::builder::Builder;
use fir::ir::{Atom, BinOp, Body, Exp, Fun, Lambda, Stm, VarId};
use fir::types::Type;

/// Register in the builder the types of every variable bound anywhere in a
/// body (patterns, lambda parameters, loop parameters and indices).
/// Transformation passes call this once on the input program so `ty_of`
/// works for every original variable.
pub fn register_body_types(b: &mut Builder, body: &Body) {
    for Stm { pat, exp } in &body.stms {
        for p in pat {
            b.set_type(p.var, p.ty);
        }
        register_exp_types(b, exp);
    }
}

fn register_lambda_types(b: &mut Builder, lam: &Lambda) {
    for p in &lam.params {
        b.set_type(p.var, p.ty);
    }
    register_body_types(b, &lam.body);
}

fn register_exp_types(b: &mut Builder, exp: &Exp) {
    match exp {
        Exp::If {
            then_br, else_br, ..
        } => {
            register_body_types(b, then_br);
            register_body_types(b, else_br);
        }
        Exp::Loop {
            params,
            index,
            body,
            ..
        } => {
            for (p, _) in params {
                b.set_type(p.var, p.ty);
            }
            b.set_type(*index, Type::I64);
            register_body_types(b, body);
        }
        Exp::Map { lam, .. } => register_lambda_types(b, lam),
        Exp::Reduce { lam, .. } | Exp::Scan { lam, .. } => register_lambda_types(b, lam),
        Exp::WithAcc { lam, .. } => register_lambda_types(b, lam),
        _ => {}
    }
}

/// Register the types of everything in a function.
pub fn register_fun_types(b: &mut Builder, f: &Fun) {
    for p in &f.params {
        b.set_type(p.var, p.ty);
    }
    register_body_types(b, &f.body);
}

/// Emit a zero value with the same type and shape as `v` (which must be
/// differentiable: an `f64` scalar or array). For arrays this is a nest of
/// maps producing zeros, so the shape is taken from the runtime value of `v`.
pub fn zero_like(b: &mut Builder, v: VarId) -> VarId {
    let ty = b.ty_of(v);
    match ty {
        Type::Scalar(_) => b.bind1(Type::F64, Exp::Atom(Atom::f64(0.0))),
        Type::Array { rank, .. } => zero_array_like(b, v, rank),
        Type::Acc { .. } => panic!("zero_like of an accumulator"),
    }
}

fn zero_array_like(b: &mut Builder, v: VarId, rank: usize) -> VarId {
    if rank == 1 {
        b.map1(Type::arr_f64(1), &[v], |_b, _es| vec![Atom::f64(0.0)])
    } else {
        b.map1(Type::arr_f64(rank), &[v], |b, es| {
            let inner = zero_array_like(b, es[0], rank - 1);
            vec![Atom::Var(inner)]
        })
    }
}

/// Emit the elementwise sum of two equally-shaped `f64` values (scalars or
/// arrays of any rank). Returns an atom of the same type.
pub fn add_values(b: &mut Builder, x: Atom, y: Atom) -> Atom {
    let tx = b.ty_of_atom(&x);
    match tx {
        Type::Scalar(_) => b.fadd(x, y),
        Type::Array { rank, .. } => {
            let xv = x.expect_var();
            let yv = y.expect_var();
            Atom::Var(add_arrays(b, xv, yv, rank))
        }
        Type::Acc { .. } => panic!("add_values on accumulator"),
    }
}

fn add_arrays(b: &mut Builder, x: VarId, y: VarId, rank: usize) -> VarId {
    if rank == 1 {
        b.map1(Type::arr_f64(1), &[x, y], |b, es| {
            vec![b.fadd(es[0].into(), es[1].into())]
        })
    } else {
        b.map1(Type::arr_f64(rank), &[x, y], |b, es| {
            let inner = add_arrays(b, es[0], es[1], rank - 1);
            vec![Atom::Var(inner)]
        })
    }
}

/// Emit `map (\i -> arr[i]) inds` (a gather).
pub fn gather(b: &mut Builder, arr: VarId, inds: VarId) -> VarId {
    let out_ty = match b.ty_of(arr) {
        Type::Array { elem, rank } => Type::Array { elem, rank },
        t => panic!("gather from non-array {t}"),
    };
    b.map1(out_ty, &[inds], |b, es| {
        let v = b.bind1(
            out_ty.peel(),
            Exp::Index {
                arr,
                idx: vec![es[0].into()],
            },
        );
        vec![Atom::Var(v)]
    })
}

/// Emit an `f64` array of zeros with the same outer length as `arr` and the
/// same element shape as `arr`'s elements.
pub fn zeros_like_outer(b: &mut Builder, arr: VarId) -> VarId {
    zero_like(b, arr)
}

/// Emit a sum-reduction of a rank-1 `f64` array.
pub fn sum_vec(b: &mut Builder, arr: VarId) -> Atom {
    Atom::Var(b.sum(arr))
}

/// Emit the scalar multiplication `a * b` (both `f64` atoms).
pub fn mul(b: &mut Builder, a: Atom, c: Atom) -> Atom {
    b.fmul(a, c)
}

/// Recognize a lambda as a single-array reduction with a known commutative
/// operator (`+`, `*`, `min`, `max`) over `f64` scalars. The lambda must
/// have exactly two parameters and one result which is a single binary
/// operation (possibly after trivial copies).
pub fn recognize_reduce_op(lam: &Lambda) -> Option<fir::ir::ReduceOp> {
    use fir::ir::ReduceOp;
    if lam.params.len() != 2 || lam.ret.len() != 1 || lam.ret[0] != Type::F64 {
        return None;
    }
    let a = lam.params[0].var;
    let c = lam.params[1].var;
    // The body must be a single binop statement over the two parameters (in
    // either order) whose result is returned.
    if lam.body.stms.len() != 1 {
        return None;
    }
    let stm = &lam.body.stms[0];
    if lam.body.result != vec![Atom::Var(stm.pat[0].var)] {
        return None;
    }
    let (op, x, y) = match &stm.exp {
        Exp::BinOp(op, x, y) => (*op, *x, *y),
        _ => return None,
    };
    let uses_params =
        (x == Atom::Var(a) && y == Atom::Var(c)) || (x == Atom::Var(c) && y == Atom::Var(a));
    if !uses_params {
        return None;
    }
    match op {
        BinOp::Add => Some(ReduceOp::Add),
        BinOp::Mul => Some(ReduceOp::Mul),
        BinOp::Min => Some(ReduceOp::Min),
        BinOp::Max => Some(ReduceOp::Max),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fir::ir::ReduceOp;

    #[test]
    fn recognizes_standard_operators() {
        let mut b = Builder::new();
        let lam_add = b.lambda(&[Type::F64, Type::F64], |b, ps| {
            vec![b.fadd(ps[0].into(), ps[1].into())]
        });
        assert_eq!(recognize_reduce_op(&lam_add), Some(ReduceOp::Add));
        let lam_max = b.lambda(&[Type::F64, Type::F64], |b, ps| {
            vec![b.fmax(ps[1].into(), ps[0].into())]
        });
        assert_eq!(recognize_reduce_op(&lam_max), Some(ReduceOp::Max));
        let lam_weird = b.lambda(&[Type::F64, Type::F64], |b, ps| {
            let t = b.fmul(ps[0].into(), ps[1].into());
            vec![b.fadd(t, Atom::f64(1.0))]
        });
        assert_eq!(recognize_reduce_op(&lam_weird), None);
    }

    #[test]
    fn zero_like_scalar_and_array() {
        let mut b = Builder::new();
        b.begin_scope();
        let x = b.fresh(Type::F64);
        let z = zero_like(&mut b, x);
        assert_eq!(b.ty_of(z), Type::F64);
        let a = b.fresh(Type::arr_f64(2));
        let za = zero_like(&mut b, a);
        assert_eq!(b.ty_of(za), Type::arr_f64(2));
        let _ = b.end_scope();
    }

    #[test]
    fn add_values_matches_types() {
        let mut b = Builder::new();
        b.begin_scope();
        let x = b.fresh(Type::arr_f64(1));
        let y = b.fresh(Type::arr_f64(1));
        let s = add_values(&mut b, x.into(), y.into());
        assert_eq!(b.ty_of_atom(&s), Type::arr_f64(1));
        let _ = b.end_scope();
    }
}
