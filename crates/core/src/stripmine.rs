//! Loop strip-mining (§4.3): the practical time/space trade-off.
//!
//! Strip-mining a loop of trip count `n` by a factor `k` turns it into a
//! nest of two loops of trip counts `⌈n/k⌉` and `k`. After reverse-mode AD,
//! only the *per-loop* loop-variant values are checkpointed, so the memory
//! needed for checkpointing drops from `n` copies to `⌈n/k⌉ + k` copies, at
//! the price of one extra forward re-execution of the inner loop body. The
//! paper exposes this as a user annotation; here it is a standalone
//! IR-to-IR pass applied before [`crate::vjp`].

use fir::builder::Builder;
use fir::ir::{Atom, Body, Exp, Fun, Lambda, Param, Stm, VarId};
use fir::types::Type;

use crate::helpers::register_fun_types;

/// Strip-mine every sequential loop in the function by `factor` (≥ 2).
/// Loops whose trip count is not known to be positive are still correct:
/// iterations past the original count are guarded by an `if` that passes the
/// loop-variant values through unchanged.
pub fn stripmine_loops(fun: &Fun, factor: i64) -> Fun {
    assert!(factor >= 2, "strip-mining factor must be at least 2");
    let mut b = Builder::for_fun(fun);
    register_fun_types(&mut b, fun);
    let mut ctx = Strip { b, factor };
    let body = ctx.body(&fun.body);
    Fun {
        name: fun.name.clone(),
        params: fun.params.clone(),
        body,
        ret: fun.ret.clone(),
    }
}

struct Strip {
    b: Builder,
    factor: i64,
}

impl Strip {
    fn body(&mut self, body: &Body) -> Body {
        self.b.begin_scope();
        for stm in &body.stms {
            self.stm(stm);
        }
        let stms = self.b.end_scope();
        Body::new(stms, body.result.clone())
    }

    fn lambda(&mut self, lam: &Lambda) -> Lambda {
        Lambda {
            params: lam.params.clone(),
            body: self.body(&lam.body),
            ret: lam.ret.clone(),
        }
    }

    fn stm(&mut self, stm: &Stm) {
        match &stm.exp {
            Exp::Loop {
                params,
                index,
                count,
                body,
            } => {
                let inner_body = self.body(body);
                self.emit_stripmined(stm, params, *index, *count, &inner_body);
            }
            Exp::If {
                cond,
                then_br,
                else_br,
            } => {
                let t = self.body(then_br);
                let e = self.body(else_br);
                self.b.push_stm(Stm::new(
                    stm.pat.clone(),
                    Exp::If {
                        cond: *cond,
                        then_br: t,
                        else_br: e,
                    },
                ));
            }
            Exp::Map { lam, args } => {
                let lam = self.lambda(lam);
                self.b.push_stm(Stm::new(
                    stm.pat.clone(),
                    Exp::Map {
                        lam,
                        args: args.clone(),
                    },
                ));
            }
            _ => self.b.push_stm(stm.clone()),
        }
    }

    /// Emit the two-level loop nest replacing a single loop.
    fn emit_stripmined(
        &mut self,
        stm: &Stm,
        params: &[(Param, Atom)],
        index: VarId,
        count: Atom,
        body: &Body,
    ) {
        let k = Atom::i64(self.factor);
        // outer_count = (count + k - 1) / k
        let km1 = self.b.isub(k, Atom::i64(1));
        let cpk = self.b.iadd(count, km1);
        let outer_count = self.b.idiv(cpk, k);

        let tys: Vec<Type> = params.iter().map(|(p, _)| p.ty).collect();

        // Inner loop: fresh parameters that shadow nothing; the guarded body
        // either runs the original body or passes the values through.
        let inner_params: Vec<Param> = tys
            .iter()
            .map(|t| Param::new(self.b.fresh(*t), *t))
            .collect();
        let inner_index = self.b.fresh(Type::I64);
        // Outer loop parameters reuse the original parameter variables so the
        // (unchanged) body can keep referring to them via the inner copies.
        let outer_params: Vec<(Param, Atom)> = params.to_vec();
        let outer_index = self.b.fresh(Type::I64);

        // Build the inner loop body. The original body is alpha-renamed so
        // that the original loop parameters and index map to the inner
        // loop's variables without shadowing (reverse AD keys adjoints by
        // variable name, so shadowing in differentiated code must be
        // avoided).
        self.b.begin_scope();
        let ok = self.b.imul(Atom::Var(outer_index), k);
        let i = self.b.iadd(ok, Atom::Var(inner_index));
        let ivar = self.b.bind1(Type::I64, Exp::Atom(i));
        let mut ren = fir::rename::Renamer::new();
        ren.insert(index, ivar);
        for ((p, _), ip) in params.iter().zip(&inner_params) {
            ren.insert(p.var, ip.var);
        }
        let renamed_body = ren.body(&mut self.b, body);
        let in_range = self.b.lt(i, count);
        let guarded = self.b.bind(
            &tys,
            Exp::If {
                cond: in_range,
                then_br: renamed_body,
                else_br: Body::new(
                    vec![],
                    inner_params.iter().map(|p| Atom::Var(p.var)).collect(),
                ),
            },
        );
        let inner_stms = self.b.end_scope();
        let inner_body = Body::new(inner_stms, guarded.iter().map(|v| Atom::Var(*v)).collect());

        // Build the outer loop body: run the inner loop starting from the
        // outer loop-variant values.
        self.b.begin_scope();
        let inner_inits: Vec<(Param, Atom)> = inner_params
            .iter()
            .zip(params)
            .map(|(ip, (p, _))| (*ip, Atom::Var(p.var)))
            .collect();
        let inner_out = self.b.bind(
            &tys,
            Exp::Loop {
                params: inner_inits,
                index: inner_index,
                count: k,
                body: inner_body,
            },
        );
        let outer_stms = self.b.end_scope();
        let outer_body = Body::new(
            outer_stms,
            inner_out.iter().map(|v| Atom::Var(*v)).collect(),
        );

        self.b.push_stm(Stm::new(
            stm.pat.clone(),
            Exp::Loop {
                params: outer_params,
                index: outer_index,
                count: outer_count,
                body: outer_body,
            },
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fir::typecheck::check_fun;
    use interp::{Interp, Value};

    fn sum_loop_fun() -> Fun {
        let mut b = Builder::new();
        b.build_fun("iter", &[Type::F64, Type::I64], |b, ps| {
            let x = Atom::Var(ps[0]);
            let n = Atom::Var(ps[1]);
            let r = b.loop_(&[(Type::F64, Atom::f64(0.0))], n, |b, i, acc| {
                let fi = b.to_f64(i.into());
                let t = b.fmul(fi, x);
                vec![b.fadd(acc[0].into(), t)]
            });
            vec![r[0].into()]
        })
    }

    #[test]
    fn stripmined_loop_computes_the_same_value() {
        let fun = sum_loop_fun();
        let sm = stripmine_loops(&fun, 4);
        check_fun(&sm).unwrap();
        let interp = Interp::sequential();
        for n in [0i64, 1, 3, 4, 7, 16, 17] {
            let args = [Value::F64(1.5), Value::I64(n)];
            let a = interp.run(&fun, &args)[0].as_f64();
            let b = interp.run(&sm, &args)[0].as_f64();
            assert!((a - b).abs() < 1e-12, "n={n}: {a} vs {b}");
        }
    }

    #[test]
    fn stripmined_gradient_matches_plain_gradient() {
        let fun = sum_loop_fun();
        let sm = stripmine_loops(&fun, 3);
        let interp = Interp::sequential();
        let args = [Value::F64(2.0), Value::I64(10)];
        let (p1, g1) = crate::gradcheck::reverse_gradient(&interp, &fun, &args);
        let (p2, g2) = crate::gradcheck::reverse_gradient(&interp, &sm, &args);
        assert!((p1 - p2).abs() < 1e-12);
        assert_eq!(g1.len(), g2.len());
        for (a, b) in g1.iter().zip(&g2) {
            assert!((a - b).abs() < 1e-9);
        }
    }
}
