//! Shared infrastructure for the benchmark harnesses that regenerate the
//! paper's tables. Each `benches/table*.rs` binary prints the same rows the
//! corresponding table in the paper reports (with CPU-scaled dataset sizes,
//! documented in EXPERIMENTS.md), adds an interp-vs-`firvm` backend
//! comparison, and writes a machine-readable `BENCH_<table>.json` so the
//! repository accumulates a performance trajectory across PRs.

use std::io::Write as _;
use std::time::Instant;

use fir::ir::Fun;
use fir_api::{CompiledFn, Engine};
use interp::Value;

/// Median wall-clock seconds of `reps` runs of `f` (after one warm-up run).
pub fn time_secs<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    f();
    let mut samples = Vec::with_capacity(reps.max(1));
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        f();
        samples.push(t0.elapsed().as_secs_f64());
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

/// Format seconds as milliseconds with three significant digits.
pub fn ms(secs: f64) -> String {
    format!("{:.3} ms", secs * 1e3)
}

/// Format a ratio (`x` times).
pub fn ratio(x: f64) -> String {
    format!("{x:.2}x")
}

/// Print a table header with a title and column names.
pub fn header(title: &str, cols: &[&str]) {
    println!();
    println!("== {title} ==");
    println!("{}", cols.join(" | "));
}

/// Print one row of a table.
pub fn row(cells: &[String]) {
    println!("{}", cells.join(" | "));
}

// ---------------------------------------------------------------------
// Machine-readable reports
// ---------------------------------------------------------------------

/// A machine-readable benchmark report, written as `BENCH_<name>.json` in
/// `BENCH_OUT_DIR` (default: the current directory). The format is
/// deliberately flat — one object per row, numeric cells keyed by name — so
/// future PRs can diff performance trajectories with a few lines of jq.
#[derive(Debug, Clone)]
pub struct Report {
    name: String,
    rows: Vec<(String, Vec<(String, f64)>)>,
}

impl Report {
    /// A new report named `name` (e.g. `"table5_gmm"`).
    pub fn new(name: &str) -> Report {
        Report {
            name: name.to_string(),
            rows: Vec::new(),
        }
    }

    /// Append a row: a label plus named numeric cells (seconds, ratios…).
    pub fn add(&mut self, label: &str, cells: &[(&str, f64)]) {
        self.rows.push((
            label.to_string(),
            cells.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
        ));
    }

    /// Serialize to JSON (hand-rolled; the workspace is dependency-free).
    pub fn to_json(&self) -> String {
        fn esc(s: &str) -> String {
            s.chars()
                .flat_map(|c| match c {
                    '"' => "\\\"".chars().collect::<Vec<_>>(),
                    '\\' => "\\\\".chars().collect(),
                    '\n' => "\\n".chars().collect(),
                    c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
                    c => vec![c],
                })
                .collect()
        }
        fn num(x: f64) -> String {
            if x.is_finite() {
                format!("{x:.9}")
            } else {
                "null".to_string()
            }
        }
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"bench\": \"{}\",\n", esc(&self.name)));
        out.push_str("  \"rows\": [\n");
        for (i, (label, cells)) in self.rows.iter().enumerate() {
            out.push_str(&format!("    {{\"label\": \"{}\"", esc(label)));
            for (k, v) in cells {
                out.push_str(&format!(", \"{}\": {}", esc(k), num(*v)));
            }
            out.push('}');
            out.push_str(if i + 1 < self.rows.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Write `BENCH_<name>.json`; prints the path. I/O failures are
    /// reported but do not abort the bench (the printed table remains).
    pub fn write(&self) {
        let dir = std::env::var("BENCH_OUT_DIR").unwrap_or_else(|_| ".".to_string());
        let path = format!("{dir}/BENCH_{}.json", self.name);
        match std::fs::File::create(&path).and_then(|mut f| f.write_all(self.to_json().as_bytes()))
        {
            Ok(()) => println!("wrote {path}"),
            Err(e) => eprintln!("could not write {path}: {e}"),
        }
    }
}

// ---------------------------------------------------------------------
// Backend comparison (interp vs firvm)
// ---------------------------------------------------------------------

/// Timings of one workload on one backend: primal and full vjp gradient.
#[derive(Debug, Clone, Copy)]
pub struct BackendTiming {
    pub primal_secs: f64,
    pub grad_secs: f64,
}

/// Time a compiled function's primal call and reverse-mode gradient (the
/// vjp handle is derived lazily by the first `grad` call, which `time_secs`
/// spends on its warm-up rep).
pub fn time_backend(cf: &CompiledFn, args: &[Value], reps: usize) -> BackendTiming {
    let primal_secs = time_secs(reps, || {
        let _ = cf.call(args).expect("bench primal call failed");
    });
    let grad_secs = time_secs(reps, || {
        let _ = cf.grad(args).expect("bench gradient call failed");
    });
    BackendTiming {
        primal_secs,
        grad_secs,
    }
}

/// Print (and record) the interp-vs-VM comparison for one workload: primal
/// and gradient wall-clock on both backends plus the VM speedups. Returns
/// the gradient-time speedup of the VM over the interpreter.
pub fn compare_backends(
    report: &mut Report,
    label: &str,
    fun: &Fun,
    args: &[Value],
    reps: usize,
) -> f64 {
    let ci = engine("interp-seq").compile(fun).expect("compile (interp)");
    let cv = engine("vm-seq").compile(fun).expect("compile (vm)");
    let ti = time_backend(&ci, args, reps);
    let tv = time_backend(&cv, args, reps);
    let primal_speedup = ti.primal_secs / tv.primal_secs;
    let grad_speedup = ti.grad_secs / tv.grad_secs;
    row(&[
        label.to_string(),
        ms(ti.primal_secs),
        ms(tv.primal_secs),
        ratio(primal_speedup),
        ms(ti.grad_secs),
        ms(tv.grad_secs),
        ratio(grad_speedup),
    ]);
    report.add(
        &format!("backend:{label}"),
        &[
            ("interp_primal_s", ti.primal_secs),
            ("vm_primal_s", tv.primal_secs),
            ("vm_primal_speedup", primal_speedup),
            ("interp_grad_s", ti.grad_secs),
            ("vm_grad_s", tv.grad_secs),
            ("vm_grad_speedup", grad_speedup),
        ],
    );
    grad_speedup
}

/// The column names matching [`compare_backends`] rows.
pub const BACKEND_COLS: [&str; 7] = [
    "workload",
    "interp primal",
    "vm primal",
    "vm primal speedup",
    "interp grad",
    "vm grad",
    "vm grad speedup",
];

/// An engine on the named backend; panics on unknown names (bench
/// harnesses hard-code registered names).
pub fn engine(name: &str) -> Engine {
    Engine::by_name(name).unwrap_or_else(|e| panic!("{e}"))
}

// ---------------------------------------------------------------------
// Batched serving (call_batch amortization)
// ---------------------------------------------------------------------

/// Print (and record) the batched-serving comparison for one workload: the
/// reverse-mode gradient of every instance in `batch` computed by a
/// sequential per-call loop vs. one `grad_batch` scheduled across the
/// worker pool. Both run on the sequential VM so the comparison isolates
/// batch amortization from intra-call SOAC parallelism. Returns the batch
/// speedup.
pub fn compare_batch(
    report: &mut Report,
    label: &str,
    fun: &Fun,
    batch: &[Vec<Value>],
    reps: usize,
) -> f64 {
    let cf = engine("vm-seq").compile(fun).expect("compile (vm-seq)");
    let per_call_secs = time_secs(reps, || {
        for args in batch {
            let _ = cf.grad(args).expect("bench per-call gradient failed");
        }
    });
    let batch_secs = time_secs(reps, || {
        let _ = cf.grad_batch(batch).expect("bench batched gradient failed");
    });
    let speedup = per_call_secs / batch_secs;
    row(&[
        format!("{label} (batch of {})", batch.len()),
        ms(per_call_secs),
        ms(batch_secs),
        ratio(speedup),
    ]);
    report.add(
        &format!("batch:{label}"),
        &[
            ("batch_size", batch.len() as f64),
            ("per_call_s", per_call_secs),
            ("batch_s", batch_secs),
            ("batch_speedup", speedup),
        ],
    );
    speedup
}

/// The column names matching [`compare_batch`] rows.
pub const BATCH_COLS: [&str; 4] = ["workload", "per-call grad", "batched grad", "batch speedup"];

// ---------------------------------------------------------------------
// Per-example gradients: task-parallel grad_batch vs the vmap∘vjp stack
// ---------------------------------------------------------------------

/// Print (and record) the per-example-gradient comparison for one
/// workload: the gradients of every instance in `batch` computed by
/// task-parallel `grad_batch` (one vjp execution per request, scheduled
/// on the global worker pool — per-request parallelism scales with
/// cores even on the `vm-seq` backend) vs. the fused `vmap(vjp(f))`
/// transform stack (`grad_batch_fused`: the seeded vjp mapped over one
/// stacked batch dimension — one sequential program execution for the
/// whole batch, results bitwise-identical). On a single core the row
/// isolates dispatch amortization; on N cores it trades the pool's
/// task parallelism for the fused program's, so read `vmap_speedup`
/// next to the recorded core count (see EXPERIMENTS.md). Returns the
/// vmap speedup.
pub fn compare_vmap_grad(
    report: &mut Report,
    label: &str,
    fun: &Fun,
    batch: &[Vec<Value>],
    reps: usize,
) -> f64 {
    let cf = engine("vm-seq").compile(fun).expect("compile (vm-seq)");
    let task_secs = time_secs(reps, || {
        let _ = cf
            .grad_batch(batch)
            .expect("bench task-parallel grad_batch failed");
    });
    // The warm-up rep of time_secs derives and compiles the [Vjp, Vmap]
    // stack; later reps are engine-cache hits.
    let vmap_secs = time_secs(reps, || {
        let _ = cf
            .grad_batch_fused(batch)
            .expect("bench vmap∘vjp gradient failed");
    });
    let speedup = task_secs / vmap_secs;
    row(&[
        format!("{label} (batch of {})", batch.len()),
        ms(task_secs),
        ms(vmap_secs),
        ratio(speedup),
    ]);
    report.add(
        &format!("vmap_grad:{label}"),
        &[
            ("batch_size", batch.len() as f64),
            ("task_parallel_s", task_secs),
            ("vmap_s", vmap_secs),
            ("vmap_speedup", speedup),
        ],
    );
    speedup
}

/// The column names matching [`compare_vmap_grad`] rows.
pub const VMAP_COLS: [&str; 4] = [
    "workload",
    "task-parallel grad_batch",
    "vmap∘vjp grad",
    "vmap speedup",
];

// ---------------------------------------------------------------------
// Optimizer impact (PassPipeline::standard vs PassPipeline::none)
// ---------------------------------------------------------------------

/// Print (and record) the optimizer-impact comparison for one workload:
/// primal and reverse-mode gradient wall-clock with the standard pass
/// pipeline vs. no optimization at all, plus the statement shrinkage the
/// pass-stats layer reports for the gradient program. Both engines run the
/// sequential VM so the comparison isolates the optimizer (results are
/// bitwise identical either way). Returns the gradient-time speedup.
pub fn compare_pipelines(
    report: &mut Report,
    label: &str,
    fun: &Fun,
    args: &[Value],
    reps: usize,
) -> f64 {
    let opt_engine = engine("vm-seq").with_pipeline(fir_api::PassPipeline::standard());
    let raw_engine = engine("vm-seq").with_pipeline(fir_api::PassPipeline::none());
    let co = opt_engine.compile(fun).expect("compile (optimized)");
    let cr = raw_engine.compile(fun).expect("compile (unoptimized)");
    let to = time_backend(&co, args, reps);
    let tr = time_backend(&cr, args, reps);
    // Statement counts of the gradient program under both pipelines (the
    // vjp handles exist after time_backend's grad warm-ups).
    let grad_stms_opt = fir_opt::count_stms(co.vjp().expect("vjp (optimized)").fun());
    let grad_stms_raw = fir_opt::count_stms(cr.vjp().expect("vjp (unoptimized)").fun());
    let primal_speedup = tr.primal_secs / to.primal_secs;
    let grad_speedup = tr.grad_secs / to.grad_secs;
    let removed_frac = 1.0 - grad_stms_opt as f64 / grad_stms_raw as f64;
    row(&[
        label.to_string(),
        ms(tr.grad_secs),
        ms(to.grad_secs),
        ratio(grad_speedup),
        format!(
            "{grad_stms_raw} -> {grad_stms_opt} (-{:.0}%)",
            removed_frac * 100.0
        ),
    ]);
    report.add(
        &format!("optimizer:{label}"),
        &[
            ("noopt_primal_s", tr.primal_secs),
            ("opt_primal_s", to.primal_secs),
            ("opt_primal_speedup", primal_speedup),
            ("noopt_grad_s", tr.grad_secs),
            ("opt_grad_s", to.grad_secs),
            ("opt_grad_speedup", grad_speedup),
            ("grad_stms_noopt", grad_stms_raw as f64),
            ("grad_stms_opt", grad_stms_opt as f64),
            ("grad_stms_removed_frac", removed_frac),
        ],
    );
    grad_speedup
}

/// The column names matching [`compare_pipelines`] rows.
pub const PIPELINE_COLS: [&str; 5] = [
    "workload",
    "unoptimized grad",
    "optimized grad",
    "optimizer speedup",
    "gradient stms",
];

// ---------------------------------------------------------------------
// Execution tiers (plain VM vs the fir-jit specialization tier)
// ---------------------------------------------------------------------

/// Print (and record) the execution-tier comparison for one workload:
/// primal and reverse-mode gradient wall-clock on the plain sequential VM
/// vs. the jit-tiered VM with a hotness threshold of 1 (every program
/// promotes on its warm-up run, so the timed reps all execute on the
/// native tier where supported). Results are bitwise-identical by the
/// tier's contract — the opt-fuzz harness pins it — and both engines are
/// sequential, so the row isolates the specialization itself. The tier
/// counters land in the JSON row so a silently all-fallback run cannot
/// masquerade as a measurement of the jit. Returns the gradient-time
/// speedup of the jit tier over the VM.
pub fn compare_jit(
    report: &mut Report,
    label: &str,
    fun: &Fun,
    args: &[Value],
    reps: usize,
) -> f64 {
    let cv = engine("vm-seq").compile(fun).expect("compile (vm)");
    let jit_engine = Engine::builder()
        .backend_name("vm-seq")
        .jit_threshold(1)
        .build()
        .expect("jit engine");
    let cj = jit_engine.compile(fun).expect("compile (jit)");
    let tv = time_backend(&cv, args, reps);
    let tj = time_backend(&cj, args, reps);
    let primal_speedup = tv.primal_secs / tj.primal_secs;
    let grad_speedup = tv.grad_secs / tj.grad_secs;
    let tier = jit_engine.cache_stats().tier.unwrap_or_default();
    row(&[
        label.to_string(),
        ms(tv.primal_secs),
        ms(tj.primal_secs),
        ratio(primal_speedup),
        ms(tv.grad_secs),
        ms(tj.grad_secs),
        ratio(grad_speedup),
        format!(
            "{}p/{}h/{}f",
            tier.promotions, tier.jit_hits, tier.fallbacks
        ),
    ]);
    report.add(
        &format!("jit:{label}"),
        &[
            ("vm_primal_s", tv.primal_secs),
            ("jit_primal_s", tj.primal_secs),
            ("jit_primal_speedup", primal_speedup),
            ("vm_grad_s", tv.grad_secs),
            ("jit_grad_s", tj.grad_secs),
            ("jit_grad_speedup", grad_speedup),
            ("promotions", tier.promotions as f64),
            ("jit_hits", tier.jit_hits as f64),
            ("fallbacks", tier.fallbacks as f64),
        ],
    );
    grad_speedup
}

/// The column names matching [`compare_jit`] rows.
pub const JIT_COLS: [&str; 8] = [
    "workload",
    "vm primal",
    "jit primal",
    "jit primal speedup",
    "vm grad",
    "jit grad",
    "jit grad speedup",
    "tier (promotions/hits/fallbacks)",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_json_shape() {
        let mut r = Report::new("table0_test");
        r.add("row \"one\"", &[("a", 1.5), ("b", f64::NAN)]);
        r.add("row2", &[]);
        let json = r.to_json();
        assert!(json.contains("\"bench\": \"table0_test\""));
        assert!(json.contains("\"label\": \"row \\\"one\\\"\""));
        assert!(json.contains("\"a\": 1.500000000"));
        assert!(json.contains("\"b\": null"));
        assert!(json.contains("{\"label\": \"row2\"}"));
    }

    #[test]
    fn time_secs_returns_positive_median() {
        let t = time_secs(3, || {
            std::hint::black_box((0..1000).sum::<u64>());
        });
        assert!(t >= 0.0);
    }

    #[test]
    fn compare_backends_smoke() {
        use fir::builder::Builder;
        use fir::types::Type;
        let mut b = Builder::new();
        let f = b.build_fun("cmp", &[Type::arr_f64(1)], |b, ps| {
            let sq = b.map1(Type::arr_f64(1), &[ps[0]], |b, es| {
                vec![b.fmul(es[0].into(), es[0].into())]
            });
            vec![b.sum(sq).into()]
        });
        let mut rep = Report::new("smoke");
        let speedup = compare_backends(&mut rep, "smoke", &f, &[Value::from(vec![0.5; 64])], 1);
        assert!(speedup.is_finite() && speedup > 0.0);
        assert!(rep.to_json().contains("backend:smoke"));
    }

    #[test]
    fn compare_batch_smoke() {
        use fir::builder::Builder;
        use fir::types::Type;
        let mut b = Builder::new();
        let f = b.build_fun("batch", &[Type::arr_f64(1)], |b, ps| {
            let sq = b.map1(Type::arr_f64(1), &[ps[0]], |b, es| {
                vec![b.fmul(es[0].into(), es[0].into())]
            });
            vec![b.sum(sq).into()]
        });
        let batch: Vec<Vec<Value>> = (0..4)
            .map(|i| vec![Value::from(vec![0.5; 32 + i])])
            .collect();
        let mut rep = Report::new("smoke_batch");
        let speedup = compare_batch(&mut rep, "smoke", &f, &batch, 1);
        assert!(speedup.is_finite() && speedup > 0.0);
        assert!(rep.to_json().contains("batch:smoke"));
    }
}
