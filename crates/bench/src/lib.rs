//! Shared infrastructure for the benchmark harnesses that regenerate the
//! paper's tables. Each `benches/table*.rs` binary prints the same rows the
//! corresponding table in the paper reports (with CPU-scaled dataset sizes,
//! documented in EXPERIMENTS.md).

use std::time::Instant;

/// Median wall-clock seconds of `reps` runs of `f` (after one warm-up run).
pub fn time_secs<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    f();
    let mut samples = Vec::with_capacity(reps.max(1));
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        f();
        samples.push(t0.elapsed().as_secs_f64());
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

/// Format seconds as milliseconds with three significant digits.
pub fn ms(secs: f64) -> String {
    format!("{:.3} ms", secs * 1e3)
}

/// Format a ratio (`x` times).
pub fn ratio(x: f64) -> String {
    format!("{x:.2}x")
}

/// Print a table header with a title and column names.
pub fn header(title: &str, cols: &[&str]) {
    println!();
    println!("== {title} ==");
    println!("{}", cols.join(" | "));
}

/// Print one row of a table.
pub fn row(cells: &[String]) {
    println!("{}", cells.join(" | "));
}
