//! Ablation studies for the design choices called out in DESIGN.md:
//!
//! 1. simplification (DCE/const-fold/copy-prop) on vs. off for a perfectly
//!    nested program — the mechanism that removes redundant forward sweeps,
//!    toggled through the engine's configurable `PassPipeline`;
//! 2. the loop strip-mining factor — the §4.3 time/space trade-off;
//! 3. the special-case `+` reduce rule vs. the general scan-based rule.

use ad_bench::{compare_backends, engine, header, ms, ratio, row, time_secs, Report, BACKEND_COLS};
use fir::builder::Builder;
use fir::ir::Atom;
use fir::types::Type;
use fir_api::PassPipeline;
use futhark_ad::{stripmine_loops, vjp};
use interp::Value;
use workloads::adbench;

fn main() {
    let reps = 3;
    let mut report = Report::new("ablations");

    // --- Ablation 1: simplification of the redundant forward sweep --------
    header(
        "Ablation 1: simplification of vjp output (perfect map nest)",
        &["variant", "statements", "runtime"],
    );
    let mut b = Builder::new();
    let nest = b.build_fun("nest", &[Type::arr_f64(2)], |b, ps| {
        let sq = b.map1(Type::arr_f64(2), &[ps[0]], |b, rows| {
            let r = b.map1(Type::arr_f64(1), &[rows[0]], |b, es| {
                let e = b.fexp(es[0].into());
                vec![b.fmul(e, es[0].into())]
            });
            vec![Atom::Var(r)]
        });
        let sums = b.map1(Type::arr_f64(1), &[sq], |b, rs| {
            vec![Atom::Var(b.sum(rs[0]))]
        });
        vec![Atom::Var(b.sum(sums))]
    });
    let dnest = vjp(&nest);
    // Two engines on the same backend: one with the pass pipeline disabled
    // (the raw redundant forward sweep), one with the standard pipeline.
    let raw_cf = engine("interp")
        .with_pipeline(PassPipeline::none())
        .compile(&dnest)
        .expect("compile raw vjp output");
    let simpl_cf = engine("interp")
        .compile(&dnest)
        .expect("compile simplified");
    let data = Value::Arr(interp::Array::from_f64(
        vec![200, 200],
        (0..200 * 200).map(|i| (i as f64 * 0.001).sin()).collect(),
    ));
    let args_nest = vec![data.clone()];
    let args = [data, Value::F64(1.0)];
    let t_raw = time_secs(reps, || {
        let _ = raw_cf.call(&args).expect("raw vjp");
    });
    let t_simpl = time_secs(reps, || {
        let _ = simpl_cf.call(&args).expect("simplified vjp");
    });
    row(&[
        "vjp output (raw)".into(),
        fir_opt::count_stms(raw_cf.fun()).to_string(),
        ms(t_raw),
    ]);
    row(&[
        "vjp output + simplify".into(),
        fir_opt::count_stms(simpl_cf.fun()).to_string(),
        ms(t_simpl),
    ]);
    report.add(
        "simplify",
        &[
            ("raw_stms", fir_opt::count_stms(raw_cf.fun()) as f64),
            (
                "simplified_stms",
                fir_opt::count_stms(simpl_cf.fun()) as f64,
            ),
            ("raw_s", t_raw),
            ("simplified_s", t_simpl),
        ],
    );

    // --- Ablation 2: strip-mining factor -----------------------------------
    header(
        "Ablation 2: loop strip-mining factor (D-LSTM recurrence)",
        &["factor", "gradient runtime", "relative to factor 1"],
    );
    let eng_seq = engine("interp-seq");
    let dl = adbench::DlstmData::generate(64, 16, 16, 9);
    let fun = adbench::dlstm_objective_ir(dl.h);
    let mut base_time = 0.0;
    for factor in [1i64, 2, 4, 8] {
        let f = if factor == 1 {
            fun.clone()
        } else {
            stripmine_loops(&fun, factor)
        };
        let cf = eng_seq.compile(&f).expect("compile strip-mined D-LSTM");
        let args = dl.ir_args();
        let t = time_secs(reps, || {
            let _ = cf.grad(&args).expect("D-LSTM gradient");
        });
        if factor == 1 {
            base_time = t;
        }
        row(&[format!("{factor}"), ms(t), ratio(t / base_time)]);
        report.add(
            &format!("stripmine:{factor}"),
            &[("grad_s", t), ("rel", t / base_time)],
        );
    }

    // --- Ablation 3: special-case vs. general reduce rule -------------------
    header(
        "Ablation 3: + reduce special case vs. general (scan-based) rule",
        &["rule", "gradient runtime"],
    );
    // Pipeline disabled: the standard pipeline would constant-fold the
    // `a + b + 0*a` operator back into a recognizable `+` before vjp ever
    // saw it, silently turning the general rule into the special case.
    let eng = engine("interp").with_pipeline(PassPipeline::none());
    let n = 200_000;
    let xs = Value::from(
        (0..n)
            .map(|i| 1.0 + (i as f64 * 1e-5))
            .collect::<Vec<f64>>(),
    );
    // Special case: recognized `+` operator.
    let mut b = Builder::new();
    let sum_special = b.build_fun("sum_special", &[Type::arr_f64(1)], |b, ps| {
        vec![Atom::Var(b.sum(ps[0]))]
    });
    // General: an operator the recognizer does not match (a + b + 0*a).
    let mut b = Builder::new();
    let sum_general = b.build_fun("sum_general", &[Type::arr_f64(1)], |b, ps| {
        let r = b.reduce(&[Type::F64], &[Atom::f64(0.0)], &[ps[0]], |b, es| {
            let s = b.fadd(es[0].into(), es[1].into());
            let z = b.fmul(es[0].into(), Atom::f64(0.0));
            vec![b.fadd(s, z)]
        });
        vec![r[0].into()]
    });
    for (name, fun) in [
        ("special (+)", &sum_special),
        ("general (scan-based)", &sum_general),
    ] {
        let cf = eng.compile(fun).expect("compile reduce ablation");
        let args = [xs.clone()];
        let t = time_secs(reps, || {
            let _ = cf.grad(&args).expect("reduce gradient");
        });
        row(&[name.into(), ms(t)]);
        report.add(&format!("reduce:{name}"), &[("grad_s", t)]);
    }

    // --- Ablation 4: execution backend (tree-walking interp vs firvm) ------
    header(
        "Ablation 4: execution backend on the perfect map nest",
        &BACKEND_COLS,
    );
    compare_backends(&mut report, "map nest 200x200", &nest, &args_nest, reps);
    report.write();
}
