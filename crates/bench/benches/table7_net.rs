//! Table 7b: closed-loop load on the **network** serving tier
//! (`fir-net`) — a real server process, real TCP sockets, real frames.
//!
//! This extends table7_serving across the process boundary: the bench
//! re-execs itself as a server child (`NET_ROLE=server`), reads the
//! `LISTENING <addr>` line, and drives a windowed closed loop over
//! loopback from several client connections. Measured per
//! configuration: the **max sustainable QPS under an SLO** — the
//! highest client-observed throughput over a window-size sweep whose
//! client-side p99 stays under the deadline with zero errors.
//!
//! Three batching configurations answer "what does the adaptive
//! controller buy":
//!
//! * **unbatched** — `max_batch_size = 1`, the per-request overhead
//!   baseline;
//! * **static**    — a fixed, competently-tuned policy (batch 32, wait
//!   200µs): the best single setting for this workload on loopback,
//!   so the adaptive comparison is against a real baseline rather
//!   than a strawman (an earlier 2ms mid-guess inflated the ratio);
//! * **adaptive**  — starts from the *same* static policy and retunes
//!   per lane from live metrics (halving the wait on SLO pressure,
//!   growing batches on backlog).
//!
//! Because the controller starts at the static configuration and only
//! moves when a window shows evidence, adaptive is structurally ≥
//! static up to measurement noise — CI asserts the recorded ratio.
//!
//! A second sweep compares **1 shard vs N shards** (static policy) to
//! price the sharded router. On a single-core container both collapse
//! onto the same core, so the ratio lands near 1.0 — the row records
//! `available_parallelism` context like table7_serving does (see
//! EXPERIMENTS.md's machine-dependence caveat).
//!
//! `NET_BENCH_SMOKE=1` shrinks the sweep for CI.

use ad_bench::{header, ratio, row, Report};
use fir_api::{Engine, Transform};
use fir_net::{AdaptiveConfig, NetClient, NetServerBuilder};
use fir_serve::BatchPolicy;
use interp::Value;
use std::io::BufRead;
use std::time::{Duration, Instant};
use workloads::{adbench, gmm, kmeans, lstm, mc};

const CLIENTS: usize = 4;

// ---------------------------------------------------------------------
// Server child
// ---------------------------------------------------------------------

/// `NET_ROLE=server`: bind port 0, print the address, serve until a
/// client sends the shutdown op.
fn server_main() {
    let shards: usize = std::env::var("NET_SHARDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    let mode = std::env::var("NET_MODE").unwrap_or_else(|_| "static".to_string());
    let policy = match mode.as_str() {
        "unbatched" => BatchPolicy::unbatched(),
        _ => BatchPolicy {
            max_batch_size: 32,
            max_wait: Duration::from_micros(200),
        },
    };
    let mut engine_builder = Engine::builder().backend_name("vm-seq");
    if let Ok(dir) = std::env::var("NET_CACHE_DIR") {
        engine_builder = engine_builder.persistent_cache(dir);
    }
    let engine = engine_builder.build().expect("backend");
    let mut builder = NetServerBuilder::new(engine)
        .shards(shards)
        .handlers(CLIENTS + 2)
        .batch_policy(policy)
        .queue_capacity(8192);
    if mode == "coldstart" {
        // The full nine-workload deployment the fir_net_server binary
        // serves, both lanes warmed — the realistic AOT-warmup payload.
        let lstm_data = lstm::LstmData::generate(4, 3, 4, 2, 0);
        let dlstm_data = adbench::DlstmData::generate(8, 4, 4, 0);
        builder = builder
            .register("gmm", &gmm::objective_ir())
            .register("kmeans-dense", &kmeans::dense_objective_ir())
            .register("kmeans-sparse", &kmeans::sparse_objective_ir())
            .register("lstm", &lstm::objective_ir(lstm_data.h, lstm_data.bs))
            .register("ba", &adbench::ba_objective_ir())
            .register("hand-simple", &adbench::hand_objective_ir(false))
            .register("hand-complicated", &adbench::hand_objective_ir(true))
            .register("d-lstm", &adbench::dlstm_objective_ir(dlstm_data.h))
            .register(
                "xsbench",
                &mc::xsbench_ir(mc::XsData::generate(8, 4, 64, 0).g),
            )
            .warmup(&[&[], &[Transform::Vjp]]);
    } else {
        builder = builder.register("gmm", &gmm::objective_ir()).warmup(&[&[]]);
    }
    if mode == "adaptive" {
        builder = builder.adaptive(AdaptiveConfig {
            interval: Duration::from_millis(10),
            min_batch: 1,
            max_batch: 256,
            min_wait: Duration::ZERO,
            max_wait: Duration::from_millis(2),
            slo: Duration::from_millis(5),
        });
    }
    let server = builder.bind("127.0.0.1:0").expect("bind");
    println!("LISTENING {}", server.local_addr());
    server.run_until_shutdown_requested();
    server.shutdown_within(Duration::from_secs(10));
}

/// Spawn the server child and return (child, addr).
fn spawn_server(mode: &str, shards: usize) -> (std::process::Child, String) {
    spawn_server_with(mode, shards, None)
}

fn spawn_server_with(
    mode: &str,
    shards: usize,
    cache_dir: Option<&std::path::Path>,
) -> (std::process::Child, String) {
    let exe = std::env::current_exe().expect("current_exe");
    let mut cmd = std::process::Command::new(exe);
    cmd.env("NET_ROLE", "server")
        .env("NET_MODE", mode)
        .env("NET_SHARDS", shards.to_string())
        .stdout(std::process::Stdio::piped());
    if let Some(dir) = cache_dir {
        cmd.env("NET_CACHE_DIR", dir);
    }
    let mut child = cmd.spawn().expect("spawn server child");
    let stdout = child.stdout.take().expect("child stdout");
    let mut lines = std::io::BufReader::new(stdout).lines();
    let addr = loop {
        let line = lines
            .next()
            .expect("server exited before LISTENING")
            .expect("read child stdout");
        if let Some(addr) = line.strip_prefix("LISTENING ") {
            break addr.to_string();
        }
    };
    (child, addr)
}

// ---------------------------------------------------------------------
// Client load
// ---------------------------------------------------------------------

struct LoadResult {
    throughput_rps: f64,
    p50_us: u64,
    p99_us: u64,
    errors: u64,
}

/// Windowed closed loop over TCP: each client connection keeps `window`
/// requests pipelined for `rounds` rounds, recording client-observed
/// per-request latency (send → matching in-order response).
fn closed_loop(addr: &str, window: usize, rounds: usize, args: &[Vec<Value>]) -> LoadResult {
    let t0 = Instant::now();
    let mut all_latencies: Vec<u64> = Vec::new();
    let mut errors = 0u64;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|client| {
                scope.spawn(move || {
                    let mut c = NetClient::connect(addr).expect("connect");
                    let mut lat = Vec::with_capacity(window * rounds);
                    let mut errs = 0u64;
                    for round in 0..rounds {
                        let mut sent = Vec::with_capacity(window);
                        for i in 0..window {
                            let args = args[(client + round + i) % args.len()].clone();
                            let id = c.send_call("gmm", &[], args, None).expect("send");
                            sent.push((id, Instant::now()));
                        }
                        for (id, sent_at) in sent {
                            let (got, resp) = c.recv().expect("recv");
                            assert_eq!(got, id, "responses must arrive in order");
                            match resp {
                                fir_net::WireResponse::Values(_) => {
                                    lat.push(sent_at.elapsed().as_micros() as u64)
                                }
                                _ => errs += 1,
                            }
                        }
                    }
                    (lat, errs)
                })
            })
            .collect();
        for h in handles {
            let (lat, errs) = h.join().expect("client thread");
            all_latencies.extend(lat);
            errors += errs;
        }
    });
    let secs = t0.elapsed().as_secs_f64();
    all_latencies.sort_unstable();
    let q = |p: f64| -> u64 {
        if all_latencies.is_empty() {
            return 0;
        }
        let i = ((all_latencies.len() - 1) as f64 * p).round() as usize;
        all_latencies[i]
    };
    LoadResult {
        throughput_rps: (CLIENTS * window * rounds) as f64 / secs,
        p50_us: q(0.50),
        p99_us: q(0.99),
        errors,
    }
}

struct Sustainable {
    qps: f64,
    best_window: usize,
    p50_us: u64,
    p99_us: u64,
    sustainable: bool,
}

/// Sweep the window size; the configuration's score is the highest
/// throughput whose p99 meets the SLO with zero errors. If no window is
/// sustainable, report the least-loaded window's numbers.
fn max_sustainable(addr: &str, windows: &[usize], rounds: usize, slo_us: u64) -> Sustainable {
    let args: Vec<Vec<Value>> = (0..CLIENTS)
        .map(|i| gmm::GmmData::generate(2, 1, 1, i as u64).ir_args())
        .collect();
    // Warm the connection path and the compiled program.
    closed_loop(addr, 1, 2, &args);
    let mut best: Option<Sustainable> = None;
    let mut fallback: Option<Sustainable> = None;
    for &window in windows {
        let r = closed_loop(addr, window, rounds, &args);
        let ok = r.errors == 0 && r.p99_us < slo_us;
        let s = Sustainable {
            qps: r.throughput_rps,
            best_window: window,
            p50_us: r.p50_us,
            p99_us: r.p99_us,
            sustainable: ok,
        };
        if fallback.is_none() {
            fallback = Some(Sustainable { ..s });
        }
        if ok && best.as_ref().is_none_or(|b| s.qps > b.qps) {
            best = Some(s);
        }
    }
    best.or(fallback).expect("at least one window measured")
}

fn measure(
    mode: &str,
    shards: usize,
    windows: &[usize],
    rounds: usize,
    slo_us: u64,
) -> Sustainable {
    let (mut child, addr) = spawn_server(mode, shards);
    let result = max_sustainable(&addr, windows, rounds, slo_us);
    NetClient::connect(&addr)
        .expect("connect for shutdown")
        .shutdown_server()
        .expect("shutdown op");
    let status = child.wait().expect("server child");
    assert!(status.success(), "server exited with {status:?}");
    result
}

fn report_cfg(report: &mut Report, label: &str, slo_us: u64, s: &Sustainable) {
    row(&[
        label.to_string(),
        format!("{:.0} req/s", s.qps),
        format!("w={}", s.best_window),
        format!("{}us", s.p50_us),
        format!("{}us", s.p99_us),
        if s.sustainable { "yes" } else { "NO" }.to_string(),
    ]);
    report.add(
        &format!("net:gmm:{label}"),
        &[
            ("clients", CLIENTS as f64),
            ("slo_us", slo_us as f64),
            ("sustainable_qps", s.qps),
            ("best_window", s.best_window as f64),
            ("latency_p50_us", s.p50_us as f64),
            ("latency_p99_us", s.p99_us as f64),
            ("sustainable", f64::from(u8::from(s.sustainable))),
        ],
    );
}

/// Process-level cold start: wall-clock from spawning the server child
/// to its `LISTENING` line (process start + engine build + nine
/// workloads compiled and both lanes warmed + listener bound), from an
/// empty persistent-cache directory vs the populated one the first run
/// wrote. Unlike the in-process comparison in table7_serving, this ratio
/// is diluted by constant process/bind overhead — it is the end-to-end
/// deployment number an operator would see.
fn net_coldstart(report: &mut Report) {
    let dir = std::env::temp_dir().join(format!("fir-net-coldstart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut secs = [0.0f64; 2];
    for (i, cfg) in ["cold compile", "warm cache-load"].into_iter().enumerate() {
        let t0 = Instant::now();
        let (mut child, addr) = spawn_server_with("coldstart", 1, Some(&dir));
        secs[i] = t0.elapsed().as_secs_f64();
        NetClient::connect(&addr)
            .expect("connect for shutdown")
            .shutdown_server()
            .expect("shutdown op");
        let status = child.wait().expect("server child");
        assert!(status.success(), "server exited with {status:?}");
        row(&[
            format!("coldstart 9 workloads [{cfg}]"),
            format!("{:.1} ms", secs[i] * 1e3),
            String::new(),
            String::new(),
            String::new(),
            String::new(),
        ]);
    }
    let _ = std::fs::remove_dir_all(&dir);
    let speedup = secs[0] / secs[1].max(1e-9);
    row(&[
        "coldstart cold/warm".to_string(),
        ratio(speedup),
        String::new(),
        String::new(),
        String::new(),
        String::new(),
    ]);
    report.add(
        "net:coldstart",
        &[
            ("cold_spawn_to_listen_s", secs[0]),
            ("warm_spawn_to_listen_s", secs[1]),
            ("speedup", speedup),
        ],
    );
}

fn main() {
    if std::env::var("NET_ROLE").as_deref() == Ok("server") {
        server_main();
        return;
    }
    let smoke = std::env::var("NET_BENCH_SMOKE").is_ok();
    let rounds = if smoke { 10 } else { 40 };
    let windows: &[usize] = if smoke {
        &[1, 4, 16]
    } else {
        &[1, 2, 4, 8, 16, 32]
    };
    // SLO: p99 under 50ms — loose enough for a single-core CI container
    // (where queueing behind in-flight batches is the dominant term; the
    // 200µs static wait itself is noise against it), tight enough that a
    // mistuned policy fails it at high windows.
    let slo_us: u64 = 50_000;

    header(
        &format!("Table 7b: networked serving over loopback, {CLIENTS} connections (vm-seq)"),
        &[
            "configuration",
            "sustainable",
            "at",
            "p50",
            "p99",
            "under SLO",
        ],
    );
    let mut report = Report::new("net");
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    report.add(
        "env",
        &[
            ("available_parallelism", cores as f64),
            ("clients", CLIENTS as f64),
            ("slo_us", slo_us as f64),
        ],
    );

    // Batching configurations, one server process each.
    let unbatched = measure("unbatched", 1, windows, rounds, slo_us);
    report_cfg(&mut report, "unbatched", slo_us, &unbatched);
    let static_ = measure("static", 1, windows, rounds, slo_us);
    report_cfg(&mut report, "static", slo_us, &static_);
    let adaptive = measure("adaptive", 1, windows, rounds, slo_us);
    report_cfg(&mut report, "adaptive", slo_us, &adaptive);

    let adaptive_vs_static = adaptive.qps / static_.qps;
    row(&[
        "adaptive/static".to_string(),
        ratio(adaptive_vs_static),
        String::new(),
        String::new(),
        String::new(),
        String::new(),
    ]);
    report.add(
        "net:adaptive_vs_static",
        &[
            ("qps_ratio", adaptive_vs_static),
            (
                "both_sustainable",
                f64::from(u8::from(adaptive.sustainable && static_.sustainable)),
            ),
        ],
    );

    // Shard scaling (static policy): 1 vs N serving shards.
    let nshards = cores.clamp(2, 4);
    let one = measure("static", 1, windows, rounds, slo_us);
    report_cfg(&mut report, "shards-1", slo_us, &one);
    let many = measure("static", nshards, windows, rounds, slo_us);
    report_cfg(&mut report, &format!("shards-{nshards}"), slo_us, &many);
    let shard_ratio = many.qps / one.qps;
    row(&[
        format!("{nshards} shards / 1 shard"),
        ratio(shard_ratio),
        String::new(),
        String::new(),
        String::new(),
        String::new(),
    ]);
    report.add(
        "net:shard_ratio",
        &[("qps_ratio", shard_ratio), ("shards", nshards as f64)],
    );

    net_coldstart(&mut report);

    report.write();
}
