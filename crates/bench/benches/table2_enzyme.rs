//! Table 2: RSBench and XSBench — the overhead of one reverse-mode forward
//! plus return sweep over the un-differentiated program, on the parallel
//! executor. The paper compares against the overheads Enzyme reports for the
//! same applications (4.2x and 3.2x); those reference numbers are printed
//! alongside the measured ones.

use ad_bench::{compare_backends, engine, header, ms, ratio, row, time_secs, Report, BACKEND_COLS};
use workloads::mc;

fn main() {
    header(
        "Table 2: RSBench / XSBench reverse-AD overhead (parallel executor)",
        &[
            "benchmark",
            "primal runtime",
            "AD runtime",
            "overhead (this work)",
            "Enzyme overhead (paper)",
        ],
    );
    // The parallel interpreter, as in the seed's Table 2 configuration.
    let eng = engine("interp");
    let reps = 3;
    let mut report = Report::new("table2_enzyme");

    // RSBench-like windowed multipole lookups.
    let rs = mc::RsData::generate(8, 16, 12, 5_000, 1);
    let rs_fun = mc::rsbench_ir(rs.windows, rs.poles);
    let rs_cf = eng.compile(&rs_fun).expect("compile RSBench");
    let rs_primal = time_secs(reps, || {
        let _ = rs_cf.call(&rs.ir_args()).expect("RSBench primal");
    });
    let rs_ad = time_secs(reps, || {
        let _ = rs_cf.grad(&rs.ir_args()).expect("RSBench gradient");
    });
    row(&[
        "RSBench".into(),
        ms(rs_primal),
        ms(rs_ad),
        ratio(rs_ad / rs_primal),
        "4.2x".into(),
    ]);
    report.add(
        "RSBench",
        &[
            ("primal_s", rs_primal),
            ("ad_s", rs_ad),
            ("overhead", rs_ad / rs_primal),
        ],
    );

    // XSBench-like nuclide grid lookups.
    let xs = mc::XsData::generate(256, 32, 10_000, 2);
    let xs_fun = mc::xsbench_ir(xs.g);
    let xs_cf = eng.compile(&xs_fun).expect("compile XSBench");
    let xs_primal = time_secs(reps, || {
        let _ = xs_cf.call(&xs.ir_args()).expect("XSBench primal");
    });
    let xs_ad = time_secs(reps, || {
        let _ = xs_cf.grad(&xs.ir_args()).expect("XSBench gradient");
    });
    row(&[
        "XSBench".into(),
        ms(xs_primal),
        ms(xs_ad),
        ratio(xs_ad / xs_primal),
        "3.2x".into(),
    ]);
    report.add(
        "XSBench",
        &[
            ("primal_s", xs_primal),
            ("ad_s", xs_ad),
            ("overhead", xs_ad / xs_primal),
        ],
    );

    println!();
    println!("(Paper, Table 2: Futhark overheads 3.6x (RSBench) and 2.6x (XSBench).)");

    header(
        "Table 2 backends: tree-walking interp vs firvm bytecode VM",
        &BACKEND_COLS,
    );
    compare_backends(&mut report, "RSBench", &rs_fun, &rs.ir_args(), reps);
    compare_backends(&mut report, "XSBench", &xs_fun, &xs.ir_args(), reps);
    report.write();
}
