//! Table 5: the GMM case study. For each dataset shape (scaled versions of
//! ADBench's D0–D5 from Table 5a) we report the PyTorch-like baseline's
//! Jacobian (gradient) time, this work's speedup over it, and both tools'
//! overheads (gradient time / objective time), mirroring Tables 5b/5c.

use ad_bench::{
    compare_backends, compare_batch, compare_jit, compare_pipelines, compare_vmap_grad, engine,
    header, ms, ratio, row, time_secs, Report, BACKEND_COLS, BATCH_COLS, JIT_COLS, PIPELINE_COLS,
    VMAP_COLS,
};
use interp::Value;
use workloads::gmm;

fn main() {
    header(
        "Table 5: GMM gradient (scaled ADBench datasets)",
        &[
            "dataset (n, d, K)",
            "PyTorch-like Jacobian",
            "Futhark speedup",
            "PyTorch overhead",
            "Futhark overhead",
        ],
    );
    // Scaled-down versions of Table 5a's (n, d, K).
    let datasets: &[(&str, usize, usize, usize)] = &[
        ("D0 (300, 16, 25)", 300, 16, 25),
        ("D1 (300, 32, 25)", 300, 32, 25),
        ("D2 (500, 8, 25)", 500, 8, 25),
        ("D3 (500, 16, 10)", 500, 16, 10),
        ("D4 (500, 32, 10)", 500, 32, 10),
        ("D5 (500, 32, 25)", 500, 32, 25),
    ];
    let reps = 2;
    let mut report = Report::new("table5_gmm");
    let fun = gmm::objective_ir();
    // One staged compile, reused across every dataset (the vjp handle is
    // derived once and cached by the engine).
    let cf = engine("vm").compile(&fun).expect("compile GMM");
    for (name, n, d, k) in datasets {
        let data = gmm::GmmData::generate(*n, *d, *k, 11);
        // PyTorch-like: objective and gradient on the tensor tape.
        let torch_obj = time_secs(reps, || {
            let _ = gmm::objective_manual(&data);
        });
        let torch_grad = time_secs(reps, || {
            let _ = gmm::gradient_tensor(&data);
        });
        // Futhark-like: staged primal and vjp gradient on the parallel
        // executor.
        let args = data.ir_args();
        let fut_obj = time_secs(reps, || {
            let _ = cf.call(&args).expect("GMM primal");
        });
        let fut_grad = time_secs(reps, || {
            let _ = cf.grad(&args).expect("GMM gradient");
        });
        row(&[
            name.to_string(),
            ms(torch_grad),
            ratio(torch_grad / fut_grad),
            ratio(torch_grad / torch_obj),
            ratio(fut_grad / fut_obj),
        ]);
        report.add(
            name,
            &[
                ("pytorch_grad_s", torch_grad),
                ("futhark_grad_s", fut_grad),
                ("futhark_speedup", torch_grad / fut_grad),
                ("pytorch_overhead", torch_grad / torch_obj),
                ("futhark_overhead", fut_grad / fut_obj),
            ],
        );
    }
    println!();
    println!("(Paper, Table 5b on A100: Futhark speedups 1.85/2.18/1.45/1.81/1.89/0.87; overheads ~2–3x for both tools.)");

    header(
        "Table 5 backends: tree-walking interp vs firvm bytecode VM",
        &BACKEND_COLS,
    );
    // The largest dataset of the table (D5): this is the row the ISSUE's
    // >= 2x acceptance criterion is checked against.
    let big = gmm::GmmData::generate(500, 32, 25, 11);
    compare_backends(
        &mut report,
        "GMM D5 (500, 32, 25)",
        &fun,
        &big.ir_args(),
        reps,
    );

    header(
        "Table 5 optimizer: PassPipeline::standard vs PassPipeline::none",
        &PIPELINE_COLS,
    );
    // The optimizer's impact on the gradient program (fusion + CSE +
    // hoisting + simplification vs raw AD output), sequential VM.
    compare_pipelines(
        &mut report,
        "GMM D5 (500, 32, 25)",
        &fun,
        &big.ir_args(),
        reps,
    );

    header(
        "Table 5 execution tiers: plain VM vs the fir-jit specialization tier",
        &JIT_COLS,
    );
    // The same D5 dataset through the hot-program tier: the SOAC kernels
    // of the objective and its vjp run as monomorphic native tapes.
    compare_jit(
        &mut report,
        "GMM D5 (500, 32, 25)",
        &fun,
        &big.ir_args(),
        reps,
    );

    header(
        "Table 5 serving: per-call gradients vs call_batch on the worker pool",
        &BATCH_COLS,
    );
    // A serving batch of independent D3-sized requests: per-call dispatch
    // in a loop vs one grad_batch amortized across the pool.
    let batch: Vec<Vec<Value>> = (0..16)
        .map(|i| gmm::GmmData::generate(500, 16, 10, 100 + i).ir_args())
        .collect();
    compare_batch(&mut report, "GMM D3 (500, 16, 10)", &fun, &batch, reps);

    header(
        "Table 5 per-example gradients: task-parallel grad_batch vs the vmap∘vjp stack",
        &VMAP_COLS,
    );
    // The same serving batch, but the per-example gradients computed by
    // the one fused vmap(vjp(f)) program (bitwise-identical results).
    compare_vmap_grad(&mut report, "GMM D3 (500, 16, 10)", &fun, &batch, reps);
    report.write();
}
