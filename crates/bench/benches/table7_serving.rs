//! Table 7 (this repository's serving extension): closed-loop load on
//! the `fir-serve` runtime. Not a paper table — the paper stops at fast
//! kernels; this measures the serving layer that turns them into a fast
//! service, the ROADMAP's north star.
//!
//! Methodology (see EXPERIMENTS.md): K client threads run a *windowed*
//! closed loop — each keeps a window of W requests outstanding, waits
//! for the whole window, and submits the next (fixed population K×W; no
//! open-loop arrival process). The server runs on the sequential VM so
//! every measured effect comes from the serving layer itself. Two
//! configurations per workload:
//!
//! * **unbatched** — `max_batch_size = 1`: every request is its own
//!   dispatcher cut and pool job, the per-request overhead baseline;
//! * **batched** — the micro-batcher coalesces queued requests into
//!   engine-level batch calls.
//!
//! Batching pays off where per-request dispatch overhead is comparable
//! to execution — i.e. many tiny requests, the regime the paper's
//! GMM/k-means objective evaluations motivate. The primal-call rows use
//! minimal instances to sit in that regime; the gradient row's requests
//! are ~10x heavier, so its batching win shrinks further.
//!
//! **Machine dependence (measured, see EXPERIMENTS.md):** the throughput
//! ratio is bounded by how much per-request work batching can actually
//! remove. On a single-core container, a pipelined unbatched server
//! already amortizes its scheduling (the dispatcher never sleeps under
//! load), execution is serial either way, and the measured ratio lands
//! near 1.0–1.3x — the 2x acceptance bar needs per-request overhead ≥
//! execution time, which requires multiple cores (the unbatched
//! configuration serializes on the dispatcher thread while batch
//! execution fans out over the worker pool) or requests cheaper than
//! this VM's smallest workload evaluation. The report records
//! `available_parallelism` so trajectories across machines stay
//! comparable; batching's single-core win shows up in the tail latency
//! columns (fewer scheduling events per request) rather than throughput.
//!
//! Reported per configuration: wall-clock throughput (requests/s),
//! latency percentiles from the server's own histogram, and the mean
//! executed batch size.
//!
//! `SERVE_BENCH_SMOKE=1` shrinks the request counts for CI.

use ad_bench::{header, ratio, row, Report};
use fir::ir::Fun;
use fir_api::{Engine, PassPipeline, Transform};
use fir_serve::{BatchPolicy, Request, Server, ServerBuilder};
use interp::Value;
use std::time::{Duration, Instant};
use workloads::{adbench, gmm, kmeans, lstm, mc};

const CLIENTS: usize = 8;
const WINDOW: usize = 16;

#[derive(Clone, Copy, PartialEq)]
enum Kind {
    Call,
    Grad,
}

struct LoadResult {
    throughput_rps: f64,
    p50_us: u64,
    p95_us: u64,
    p99_us: u64,
    mean_batch: f64,
    batches: u64,
}

/// Windowed closed loop: each of `CLIENTS` threads submits `WINDOW`
/// requests, waits for all their tickets, and repeats for `rounds`.
fn closed_loop(server: &Server, key: &str, kind: Kind, args: &[Vec<Value>], rounds: usize) -> f64 {
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for client in 0..CLIENTS {
            scope.spawn(move || {
                for round in 0..rounds {
                    match kind {
                        Kind::Call => {
                            let tickets: Vec<_> = (0..WINDOW)
                                .map(|i| {
                                    let args = args[(client + round + i) % args.len()].clone();
                                    server.submit(Request::new(key, args)).expect("admission")
                                })
                                .collect();
                            for t in tickets {
                                t.wait().expect("call request failed");
                            }
                        }
                        Kind::Grad => {
                            let tickets: Vec<_> = (0..WINDOW)
                                .map(|i| {
                                    let args = args[(client + round + i) % args.len()].clone();
                                    server
                                        .submit_grad(Request::new(key, args))
                                        .expect("admission")
                                })
                                .collect();
                            for t in tickets {
                                t.wait().expect("gradient request failed");
                            }
                        }
                    }
                }
            });
        }
    });
    t0.elapsed().as_secs_f64()
}

fn run_config(
    fun: &Fun,
    key: &str,
    kind: Kind,
    args: &[Vec<Value>],
    policy: BatchPolicy,
    rounds: usize,
) -> LoadResult {
    let server = ServerBuilder::new(Engine::by_name("vm-seq").expect("backend"))
        .batch_policy(policy)
        .queue_capacity(8192)
        .register(key, fun)
        .build()
        .expect("server build");
    // Warm up: compile/derive outside the measured window.
    match kind {
        Kind::Call => drop(server.call(key, args[0].clone()).expect("warm-up")),
        Kind::Grad => drop(server.grad(key, args[0].clone()).expect("warm-up")),
    }
    let secs = closed_loop(&server, key, kind, args, rounds);
    let m = server.shutdown();
    let f = &m.fns[0];
    LoadResult {
        throughput_rps: (CLIENTS * WINDOW * rounds) as f64 / secs,
        p50_us: f.latency_us.quantile(0.50),
        p95_us: f.latency_us.quantile(0.95),
        p99_us: f.latency_us.quantile(0.99),
        mean_batch: f.batch_sizes.mean(),
        batches: f.batches,
    }
}

fn serve_workload(
    report: &mut Report,
    label: &str,
    fun: &Fun,
    kind: Kind,
    args: &[Vec<Value>],
    rounds: usize,
) -> f64 {
    let batched_policy = BatchPolicy {
        max_batch_size: 64,
        max_wait: Duration::from_micros(200),
    };
    let unbatched = run_config(fun, label, kind, args, BatchPolicy::unbatched(), rounds);
    let batched = run_config(fun, label, kind, args, batched_policy, rounds);
    let speedup = batched.throughput_rps / unbatched.throughput_rps;
    for (cfg, max_batch, r) in [
        ("unbatched", 1usize, &unbatched),
        ("batched", batched_policy.max_batch_size, &batched),
    ] {
        row(&[
            format!("{label} [{cfg}]"),
            format!("{:.0} req/s", r.throughput_rps),
            format!("{}us", r.p50_us),
            format!("{}us", r.p95_us),
            format!("{}us", r.p99_us),
            format!("{:.2}", r.mean_batch),
        ]);
        report.add(
            &format!("serving:{label}:{cfg}"),
            &[
                ("clients", CLIENTS as f64),
                ("window", WINDOW as f64),
                ("max_batch_size", max_batch as f64),
                ("requests", (CLIENTS * WINDOW * rounds) as f64),
                ("throughput_rps", r.throughput_rps),
                ("latency_p50_us", r.p50_us as f64),
                ("latency_p95_us", r.p95_us as f64),
                ("latency_p99_us", r.p99_us as f64),
                ("mean_batch", r.mean_batch),
                ("batches", r.batches as f64),
            ],
        );
    }
    row(&[
        format!("{label} batched/unbatched"),
        ratio(speedup),
        String::new(),
        String::new(),
        String::new(),
        String::new(),
    ]);
    report.add(
        &format!("serving_speedup:{label}"),
        &[("batch_speedup", speedup)],
    );
    speedup
}

/// Memory-planning comparison: the same GMM D=5 gradient load served by
/// engines differing only in the pass pipeline — `standard()` (every
/// buffer request hits the heap allocator) vs `standard_mem()` (lifetime
/// planning, in-place lowering, and a per-invocation buffer arena sized
/// from the plan). Requests run unbatched so per-request buffer shapes
/// are stable (the regime the arena targets); reported per configuration:
/// heap allocations per request, arena hits per request, throughput, and
/// tail latency. The arena counters come from the server's own metrics
/// snapshot (`MetricsSnapshot::alloc`), windowed across the measured
/// load, so the reported allocations/call is exactly what a production
/// metrics scrape would show.
fn serve_memplan(report: &mut Report, rounds: usize) {
    let key = "gmm-grad-d5";
    let fun = gmm::objective_ir();
    let args: Vec<Vec<Value>> = (0..CLIENTS)
        .map(|i| gmm::GmmData::generate(16, 5, 3, i as u64).ir_args())
        .collect();
    let requests = (CLIENTS * WINDOW * rounds) as f64;
    let mut allocs_per_call = [0.0f64; 2];
    let mut p99 = [0u64; 2];
    for (slot, (cfg, pipeline)) in [
        ("unplanned", PassPipeline::standard()),
        ("planned", PassPipeline::standard_mem()),
    ]
    .into_iter()
    .enumerate()
    {
        let engine = Engine::builder()
            .backend_name("vm-seq")
            .pipeline(pipeline)
            .build()
            .expect("backend");
        let server = ServerBuilder::new(engine)
            .batch_policy(BatchPolicy::unbatched())
            .queue_capacity(8192)
            .register(key, &fun)
            .build()
            .expect("server build");
        // Warm to steady state: compile and derive the vjp, and let every
        // pool worker fill its arena from the first invocations.
        for _ in 0..4 {
            for a in &args {
                server.grad(key, a.clone()).expect("warm-up");
            }
        }
        let alloc0 = server.metrics().alloc;
        let secs = closed_loop(&server, key, Kind::Grad, &args, rounds);
        let m = server.shutdown();
        let f = &m.fns[0];
        let heap = (m.alloc.heap_allocs - alloc0.heap_allocs) as f64;
        let hits = (m.alloc.arena_hits - alloc0.arena_hits) as f64;
        allocs_per_call[slot] = heap / requests;
        p99[slot] = f.latency_us.quantile(0.99);
        row(&[
            format!("{key} [{cfg}]"),
            format!("{:.0} req/s", requests / secs),
            format!("{}us", f.latency_us.quantile(0.50)),
            format!("{}us", f.latency_us.quantile(0.95)),
            format!("{}us", p99[slot]),
            format!("{:.1} alloc/req", allocs_per_call[slot]),
        ]);
        report.add(
            &format!("serving:{key}:{cfg}"),
            &[
                ("requests", requests),
                ("throughput_rps", requests / secs),
                ("latency_p50_us", f.latency_us.quantile(0.50) as f64),
                ("latency_p95_us", f.latency_us.quantile(0.95) as f64),
                ("latency_p99_us", p99[slot] as f64),
                ("allocs_per_call", allocs_per_call[slot]),
                ("arena_hits_per_call", hits / requests),
                ("reserved_slots", m.alloc.reserved_slots as f64),
            ],
        );
    }
    let reduction = allocs_per_call[0] / allocs_per_call[1].max(1e-9);
    row(&[
        format!("{key} alloc reduction"),
        ratio(reduction),
        String::new(),
        String::new(),
        format!("p99 {} -> {}us", p99[0], p99[1]),
        String::new(),
    ]);
    report.add(
        &format!("serving_memplan:{key}"),
        &[
            ("alloc_reduction", reduction),
            ("p99_unplanned_us", p99[0] as f64),
            ("p99_planned_us", p99[1] as f64),
        ],
    );
}

/// The nine paper workloads the `fir_net_server` binary serves, as
/// `(key, IR)` pairs — the warmup set the cold-start comparison below
/// compiles (or loads) end to end.
fn nine_workloads() -> Vec<(&'static str, Fun)> {
    let lstm_data = lstm::LstmData::generate(4, 3, 4, 2, 0);
    let dlstm_data = adbench::DlstmData::generate(8, 4, 4, 0);
    vec![
        ("gmm", gmm::objective_ir()),
        ("kmeans-dense", kmeans::dense_objective_ir()),
        ("kmeans-sparse", kmeans::sparse_objective_ir()),
        ("lstm", lstm::objective_ir(lstm_data.h, lstm_data.bs)),
        ("ba", adbench::ba_objective_ir()),
        ("hand-simple", adbench::hand_objective_ir(false)),
        ("hand-complicated", adbench::hand_objective_ir(true)),
        ("d-lstm", adbench::dlstm_objective_ir(dlstm_data.h)),
        (
            "xsbench",
            mc::xsbench_ir(mc::XsData::generate(8, 4, 64, 0).g),
        ),
    ]
}

/// Build (and warm) a nine-workload server against `dir` as the
/// persistent cache, returning the build wall-clock and the final
/// metrics snapshot. The build compiles every registered function plus
/// its plain and reverse-mode warmup lanes — on the first run that is
/// 18 full compilations written to disk; on the second it is 18 decode
/// + validate loads.
fn build_nine(
    dir: &std::path::Path,
    funs: &[(&'static str, Fun)],
) -> (f64, fir_serve::MetricsSnapshot) {
    let engine = Engine::builder()
        .backend_name("vm-seq")
        .persistent_cache(dir)
        .build()
        .expect("engine with persistent cache");
    let mut b = ServerBuilder::new(engine)
        .batch_policy(BatchPolicy::unbatched())
        .warmup(&[&[], &[Transform::Vjp]]);
    for (key, fun) in funs {
        b = b.register(key, fun);
    }
    let t0 = Instant::now();
    let server = b.build().expect("server build");
    let secs = t0.elapsed().as_secs_f64();
    (secs, server.shutdown())
}

/// Cold-start comparison: time-to-warm for the full nine-workload
/// deployment (compile + vjp derivation for every function) from an
/// empty persistent cache vs from the populated one the first run left
/// behind. The warm build is asserted to perform zero fresh
/// compilations — every lane must come off disk — so the ratio is
/// exactly "AOT warmup speedup", the tentpole claim CI checks (>= 5x).
fn serve_coldstart(report: &mut Report) {
    let funs = nine_workloads();
    let dir = std::env::temp_dir().join(format!("fir-bench-coldstart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let (cold_s, cold_m) = build_nine(&dir, &funs);
    let cold_cache = cold_m.cache.expect("engine cache stats");
    let stored = cold_cache.persistent.expect("persistent stats").stores;
    assert!(
        stored >= 2 * funs.len() as u64,
        "cold build must persist both lanes of every workload, stored {stored}"
    );

    let (warm_s, warm_m) = build_nine(&dir, &funs);
    let warm_cache = warm_m.cache.expect("engine cache stats");
    let loaded = warm_cache.persistent.expect("persistent stats").hits;
    assert_eq!(
        warm_cache.misses, 0,
        "warm build must not compile anything: {warm_cache}"
    );
    assert!(
        loaded >= 2 * funs.len() as u64,
        "warm build must load both lanes of every workload, loaded {loaded}"
    );
    let _ = std::fs::remove_dir_all(&dir);

    let speedup = cold_s / warm_s.max(1e-9);
    for (cfg, secs, note) in [
        ("cold compile", cold_s, format!("{stored} stores")),
        ("warm cache-load", warm_s, format!("{loaded} loads")),
    ] {
        row(&[
            format!("coldstart 9 workloads [{cfg}]"),
            format!("{:.1} ms", secs * 1e3),
            String::new(),
            String::new(),
            String::new(),
            note,
        ]);
    }
    row(&[
        "coldstart cold/warm".to_string(),
        ratio(speedup),
        String::new(),
        String::new(),
        String::new(),
        String::new(),
    ]);
    report.add(
        "coldstart:nine-workloads",
        &[
            ("workloads", funs.len() as f64),
            ("lanes_per_workload", 2.0),
            ("cold_compile_s", cold_s),
            ("warm_load_s", warm_s),
            ("speedup", speedup),
            ("persistent_stores", stored as f64),
            ("persistent_hits", loaded as f64),
            ("warm_compiles", warm_cache.misses as f64),
        ],
    );
}

fn main() {
    let smoke = std::env::var("SERVE_BENCH_SMOKE").is_ok();
    let rounds = if smoke { 20 } else { 80 };
    header(
        &format!(
            "Table 7: closed-loop serving, {CLIENTS} clients x window {WINDOW} (vm-seq engine)"
        ),
        &[
            "configuration",
            "throughput",
            "p50",
            "p95",
            "p99",
            "mean batch",
        ],
    );
    let mut report = Report::new("serving");
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    report.add(
        "env",
        &[
            ("available_parallelism", cores as f64),
            (
                "pool_workers",
                interp::WorkerPool::global().num_workers() as f64,
            ),
        ],
    );

    // Minimal instances: serving overhead is comparable to execution,
    // which is exactly the regime micro-batching targets (many tiny
    // requests). The gradient row uses a slightly larger instance.
    let gmm_tiny: Vec<Vec<Value>> = (0..CLIENTS)
        .map(|i| gmm::GmmData::generate(2, 1, 1, i as u64).ir_args())
        .collect();
    let km_tiny: Vec<Vec<Value>> = (0..CLIENTS)
        .map(|i| kmeans::KmeansData::generate(4, 1, 2, i as u64).ir_args())
        .collect();
    let gmm_small: Vec<Vec<Value>> = (0..CLIENTS)
        .map(|i| gmm::GmmData::generate(10, 2, 2, i as u64).ir_args())
        .collect();

    let s1 = serve_workload(
        &mut report,
        "gmm-call",
        &gmm::objective_ir(),
        Kind::Call,
        &gmm_tiny,
        rounds,
    );
    let s2 = serve_workload(
        &mut report,
        "kmeans-call",
        &kmeans::dense_objective_ir(),
        Kind::Call,
        &km_tiny,
        rounds,
    );
    let s3 = serve_workload(
        &mut report,
        "gmm-grad",
        &gmm::objective_ir(),
        Kind::Grad,
        &gmm_small,
        rounds / 4,
    );
    serve_memplan(&mut report, rounds / 4);
    serve_coldstart(&mut report);

    println!();
    let best = s1.max(s2).max(s3);
    println!(
        "best batched/unbatched throughput speedup: {} on {cores} core(s) \
         (acceptance bar: >= 2x on at least one workload)",
        ratio(best)
    );
    if best < 2.0 && cores == 1 {
        println!(
            "note: on a single core the pipelined unbatched server already amortizes \
             its scheduling and execution is serial either way, which bounds the \
             throughput ratio near 1x (see the methodology note in EXPERIMENTS.md); \
             batching shows up in the p95/p99 columns instead. The 2x bar needs \
             multiple cores, where the unbatched path serializes on the dispatcher."
        );
    } else if best < 2.0 {
        println!("WARNING: batched serving speedup below the 2x acceptance bar");
    }
    report.write();
}
