//! Table 4: sparse k-means on CSR data for three NLP-shaped workloads
//! (scaled stand-ins for movielens / nytimes / scrna). Compared: the manual
//! CSR implementation, reverse AD over the IR formulation (an inner
//! sequential loop over each row's non-zeros nested in the parallel map over
//! rows), and the PyTorch-like sparse tensor baseline.

use ad_bench::{compare_backends, engine, header, ms, row, time_secs, Report, BACKEND_COLS};
use workloads::kmeans;

fn bench(report: &mut Report, name: &str, n: usize, d: usize, nnz_per_row: usize, reps: usize) {
    let k = 10;
    let data = kmeans::SparseKmeansData::generate(n, d, k, nnz_per_row, 7);

    let manual_t = time_secs(reps, || {
        let _ = kmeans::sparse_manual(&data);
    });

    let cf = engine("interp")
        .compile(&kmeans::sparse_objective_ir())
        .expect("compile sparse k-means");
    let args = data.ir_args();
    let ad_t = time_secs(reps, || {
        let _ = cf.grad(&args).expect("sparse k-means gradient");
    });

    let torch_t = time_secs(reps, || {
        let _ = kmeans::sparse_tensor_gradient(&data);
    });

    row(&[name.to_string(), ms(manual_t), ms(ad_t), ms(torch_t)]);
    report.add(
        name,
        &[
            ("manual_s", manual_t),
            ("ad_s", ad_t),
            ("pytorch_s", torch_t),
        ],
    );
}

fn main() {
    header(
        "Table 4: sparse k-means (CSR), k = 10",
        &[
            "workload (scaled)",
            "Manual",
            "AD (this work)",
            "PyTorch-like",
        ],
    );
    let reps = 3;
    let mut report = Report::new("table4_kmeans_sparse");
    bench(
        &mut report,
        "movielens-like  (2000 x 2000, ~25 nnz/row)",
        2_000,
        2_000,
        25,
        reps,
    );
    bench(
        &mut report,
        "nytimes-like    (1500 x 5000, ~50 nnz/row)",
        1_500,
        5_000,
        50,
        reps,
    );
    bench(
        &mut report,
        "scrna-like      (1000 x 8000, ~80 nnz/row)",
        1_000,
        8_000,
        80,
        reps,
    );
    println!();
    println!("(Paper, Table 4 on A100: manual 61/83/156 ms, AD 152/300/579 ms, PyTorch 61223/226896/367799 ms.)");

    header(
        "Table 4 backends: tree-walking interp vs firvm bytecode VM",
        &BACKEND_COLS,
    );
    // The movielens-like shape: the tree-walking gradient already takes
    // ~a minute per run on it, so the larger shapes would push this bench
    // past half an hour for no extra information (the >= 2x largest-dataset
    // criterion is measured on table 5).
    let cmp = kmeans::SparseKmeansData::generate(2_000, 2_000, 10, 25, 7);
    compare_backends(
        &mut report,
        "kmeans-sparse movielens-like",
        &kmeans::sparse_objective_ir(),
        &cmp.ir_args(),
        1,
    );
    report.write();
}
