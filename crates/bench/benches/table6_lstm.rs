//! Table 6: LSTM training step. For two (scaled) dataset shapes we report
//! the PyTorch-like baseline's gradient time, this work's speedup over it,
//! and both tools' AD overheads. The cuDNN column of the paper is a
//! hand-written GPU kernel library and has no CPU analogue here; the paper's
//! reported factors are printed for reference.

use ad_bench::{
    compare_backends, compare_jit, compare_pipelines, compare_vmap_grad, engine, header, ms, ratio,
    row, time_secs, Report, BACKEND_COLS, JIT_COLS, PIPELINE_COLS, VMAP_COLS,
};
use workloads::lstm;

fn main() {
    header(
        "Table 6: LSTM gradient (scaled datasets)",
        &[
            "dataset (bs, seq, d, h)",
            "PyTorch-like Jacobian",
            "Futhark speedup",
            "PyTorch overhead",
            "Futhark overhead",
        ],
    );
    // Scaled versions of D0 = (1024, 20, 300, 192) and D1 = (1024, 300, 80, 256).
    let datasets: &[(&str, usize, usize, usize, usize)] = &[
        ("D0 (16, 8, 24, 12)", 16, 8, 24, 12),
        ("D1 (16, 20, 12, 16)", 16, 20, 12, 16),
    ];
    let reps = 2;
    let mut report = Report::new("table6_lstm");
    let eng = engine("interp");
    let eng_seq = engine("interp-seq");
    for (name, bs, seq, d, h) in datasets {
        let data = lstm::LstmData::generate(*seq, *d, *h, *bs, 21);
        let fun = lstm::objective_ir(data.h, data.bs);
        let cf = eng.compile(&fun).expect("compile LSTM");
        let args = data.ir_args();
        let fut_obj = time_secs(reps, || {
            let _ = cf.call(&args).expect("LSTM primal");
        });
        let fut_grad = time_secs(reps, || {
            let _ = cf.grad(&args).expect("LSTM gradient");
        });
        // PyTorch-like baseline: forward = tape build without backward is
        // not separable in this implementation, so the overhead denominator
        // is the objective evaluated on plain tensors (no tape) via the same
        // operators.
        let torch_grad = time_secs(reps, || {
            let _ = lstm::tensor_gradient(&data);
        });
        let cf_seq = eng_seq.compile(&fun).expect("compile LSTM (seq)");
        let torch_obj = time_secs(reps, || {
            // Objective-only evaluation: run the IR objective sequentially as
            // the closest operator-for-operator primal.
            let _ = cf_seq.call(&args).expect("LSTM primal (seq)");
        });
        row(&[
            name.to_string(),
            ms(torch_grad),
            ratio(torch_grad / fut_grad),
            ratio(torch_grad / torch_obj),
            ratio(fut_grad / fut_obj),
        ]);
        report.add(
            name,
            &[
                ("pytorch_grad_s", torch_grad),
                ("futhark_grad_s", fut_grad),
                ("futhark_speedup", torch_grad / fut_grad),
                ("pytorch_overhead", torch_grad / torch_obj),
                ("futhark_overhead", fut_grad / fut_obj),
            ],
        );
    }
    println!();
    println!("(Paper, Table 6: Futhark ~3x faster than PyTorch on both systems; cuDNN (hand-written) a further 8–25x faster; overheads 2–4x.)");

    header(
        "Table 6 backends: tree-walking interp vs firvm bytecode VM",
        &BACKEND_COLS,
    );
    let big = lstm::LstmData::generate(20, 12, 16, 16, 21);
    compare_backends(
        &mut report,
        "LSTM D1 (16, 20, 12, 16)",
        &lstm::objective_ir(big.h, big.bs),
        &big.ir_args(),
        reps,
    );

    header(
        "Table 6 optimizer: PassPipeline::standard vs PassPipeline::none",
        &PIPELINE_COLS,
    );
    compare_pipelines(
        &mut report,
        "LSTM D1 (16, 20, 12, 16)",
        &lstm::objective_ir(big.h, big.bs),
        &big.ir_args(),
        reps,
    );

    header(
        "Table 6 execution tiers: plain VM vs the fir-jit specialization tier",
        &JIT_COLS,
    );
    compare_jit(
        &mut report,
        "LSTM D1 (16, 20, 12, 16)",
        &lstm::objective_ir(big.h, big.bs),
        &big.ir_args(),
        reps,
    );

    header(
        "Table 6 per-example gradients: task-parallel grad_batch vs the vmap∘vjp stack",
        &VMAP_COLS,
    );
    // A serving batch of independent D0-sized instances (same shapes, so
    // the stacked vmap(vjp(f)) path engages): per-example gradients by
    // one fused program vs one vjp execution per request.
    let d0 = lstm::LstmData::generate(8, 24, 12, 16, 21);
    let grad_batch: Vec<_> = (0..8)
        .map(|i| lstm::LstmData::generate(8, 24, 12, 16, 100 + i).ir_args())
        .collect();
    compare_vmap_grad(
        &mut report,
        "LSTM D0 (16, 8, 24, 12)",
        &lstm::objective_ir(d0.h, d0.bs),
        &grad_batch,
        reps,
    );
    report.write();
}
