//! Table 3: dense k-means clustering solved with Newton's method. The work
//! per iteration is the cost, its gradient and the (diagonal) Hessian. Three
//! implementations are compared: the hand-written histogram-style solver
//! ("Manual"), reverse+forward AD on the IR ("AD", gradient by `vjp`,
//! Hessian diagonal by one `jvp` of the `vjp`), and the PyTorch-like tensor
//! baseline ("PyTorch"). Workload shapes are scaled-down versions of the
//! paper's (k, n, d) = (5, 494019, 35) and (1024, 10000, 256).

use ad_bench::{
    compare_backends, compare_batch, compare_pipelines, engine, header, ms, row, time_secs, Report,
    BACKEND_COLS, BATCH_COLS, PIPELINE_COLS,
};
use interp::{Array, Value};
use workloads::kmeans;

fn bench(report: &mut Report, name: &str, k: usize, n: usize, d: usize, reps: usize) {
    let data = kmeans::KmeansData::generate(n, d, k, 42);

    // Manual (histogram-style assignment + per-centre sums).
    let manual_t = time_secs(reps, || {
        let _ = kmeans::dense_manual(&data);
    });

    // AD: gradient via the vjp handle, Hessian diagonal via hvp with an
    // all-ones direction on the centers (a single extra pass — the paper's
    // §7.4 trick). Seeds and zero tangents are derived by the engine.
    let cf = engine("vm")
        .compile(&kmeans::dense_objective_ir())
        .expect("compile k-means");
    let args = data.ir_args();
    let ones = Value::Arr(Array::from_f64(vec![k, d], vec![1.0; k * d]));
    let ad_t = time_secs(reps, || {
        let _ = cf.grad(&args).expect("k-means gradient");
        let _ = cf.hvp(&args, &[(1, ones.clone())]).expect("k-means hvp");
    });

    // PyTorch-like baseline: gradient via the tape; the Hessian pass is
    // emulated by a second tape evaluation (see EXPERIMENTS.md).
    let torch_t = time_secs(reps, || {
        let _ = kmeans::dense_tensor_gradient(&data);
        let _ = kmeans::dense_tensor_gradient(&data);
    });

    row(&[name.to_string(), ms(manual_t), ms(ad_t), ms(torch_t)]);
    report.add(
        name,
        &[
            ("manual_s", manual_t),
            ("ad_s", ad_t),
            ("pytorch_s", torch_t),
        ],
    );
}

fn main() {
    header(
        "Table 3: dense k-means Newton step (cost + gradient + Hessian diagonal)",
        &["(k, n, d)", "Manual", "AD (this work)", "PyTorch-like"],
    );
    let reps = 3;
    let mut report = Report::new("table3_kmeans_dense");
    bench(
        &mut report,
        "(5, 5000, 35)   [paper: (5, 494019, 35)]",
        5,
        5_000,
        35,
        reps,
    );
    bench(
        &mut report,
        "(64, 1000, 64)   [paper: (1024, 10000, 256)]",
        64,
        1_000,
        64,
        reps,
    );
    println!();
    println!("(Paper, Table 3 on A100: manual 9.3/9.9 ms, AD 36.6/9.6 ms, PyTorch 44.9/11.2 ms.)");

    header(
        "Table 3 backends: tree-walking interp vs firvm bytecode VM",
        &BACKEND_COLS,
    );
    let big = kmeans::KmeansData::generate(5_000, 35, 5, 42);
    compare_backends(
        &mut report,
        "kmeans-dense (5, 5000, 35)",
        &kmeans::dense_objective_ir(),
        &big.ir_args(),
        reps,
    );

    header(
        "Table 3 optimizer: PassPipeline::standard vs PassPipeline::none",
        &PIPELINE_COLS,
    );
    compare_pipelines(
        &mut report,
        "kmeans-dense (5, 5000, 35)",
        &kmeans::dense_objective_ir(),
        &big.ir_args(),
        reps,
    );

    header(
        "Table 3 serving: per-call gradients vs call_batch on the worker pool",
        &BATCH_COLS,
    );
    // A serving batch of independent clustering requests.
    let batch: Vec<Vec<Value>> = (0..16)
        .map(|i| kmeans::KmeansData::generate(1_000, 16, 5, 200 + i).ir_args())
        .collect();
    compare_batch(
        &mut report,
        "kmeans-dense (5, 1000, 16)",
        &kmeans::dense_objective_ir(),
        &batch,
        reps,
    );
    report.write();
}
