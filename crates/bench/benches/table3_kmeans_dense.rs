//! Table 3: dense k-means clustering solved with Newton's method. The work
//! per iteration is the cost, its gradient and the (diagonal) Hessian. Three
//! implementations are compared: the hand-written histogram-style solver
//! ("Manual"), reverse+forward AD on the IR ("AD", gradient by `vjp`,
//! Hessian diagonal by one `jvp` of the `vjp`), and the PyTorch-like tensor
//! baseline ("PyTorch"). Workload shapes are scaled-down versions of the
//! paper's (k, n, d) = (5, 494019, 35) and (1024, 10000, 256).

use ad_bench::{compare_backends, header, ms, row, time_secs, Report, BACKEND_COLS};
use futhark_ad::{jvp, vjp};
use interp::{Array, Interp, Value};
use workloads::kmeans;

fn bench(report: &mut Report, name: &str, k: usize, n: usize, d: usize, reps: usize) {
    let data = kmeans::KmeansData::generate(n, d, k, 42);
    let interp = Interp::new();

    // Manual (histogram-style assignment + per-centre sums).
    let manual_t = time_secs(reps, || {
        let _ = kmeans::dense_manual(&data);
    });

    // AD: gradient via vjp, Hessian diagonal via jvp(vjp) with an all-ones
    // direction (a single extra pass — the paper's §7.4 trick).
    let fun = kmeans::dense_objective_ir();
    let grad_fun = vjp(&fun);
    let hess_fun = jvp(&grad_fun);
    let mut grad_args = data.ir_args();
    grad_args.push(Value::F64(1.0));
    let mut hess_args = grad_args.clone();
    hess_args.push(Value::Arr(Array::zeros(
        fir::types::ScalarType::F64,
        vec![n, d],
    )));
    hess_args.push(Value::Arr(Array::from_f64(vec![k, d], vec![1.0; k * d])));
    hess_args.push(Value::F64(0.0));
    let ad_t = time_secs(reps, || {
        let _ = interp.run(&grad_fun, &grad_args);
        let _ = interp.run(&hess_fun, &hess_args);
    });

    // PyTorch-like baseline: gradient via the tape; the Hessian pass is
    // emulated by a second tape evaluation (see EXPERIMENTS.md).
    let torch_t = time_secs(reps, || {
        let _ = kmeans::dense_tensor_gradient(&data);
        let _ = kmeans::dense_tensor_gradient(&data);
    });

    row(&[name.to_string(), ms(manual_t), ms(ad_t), ms(torch_t)]);
    report.add(
        name,
        &[
            ("manual_s", manual_t),
            ("ad_s", ad_t),
            ("pytorch_s", torch_t),
        ],
    );
}

fn main() {
    header(
        "Table 3: dense k-means Newton step (cost + gradient + Hessian diagonal)",
        &["(k, n, d)", "Manual", "AD (this work)", "PyTorch-like"],
    );
    let reps = 3;
    let mut report = Report::new("table3_kmeans_dense");
    bench(
        &mut report,
        "(5, 5000, 35)   [paper: (5, 494019, 35)]",
        5,
        5_000,
        35,
        reps,
    );
    bench(
        &mut report,
        "(64, 1000, 64)   [paper: (1024, 10000, 256)]",
        64,
        1_000,
        64,
        reps,
    );
    println!();
    println!("(Paper, Table 3 on A100: manual 9.3/9.9 ms, AD 36.6/9.6 ms, PyTorch 44.9/11.2 ms.)");

    header(
        "Table 3 backends: tree-walking interp vs firvm bytecode VM",
        &BACKEND_COLS,
    );
    let big = kmeans::KmeansData::generate(5_000, 35, 5, 42);
    compare_backends(
        &mut report,
        "kmeans-dense (5, 5000, 35)",
        &kmeans::dense_objective_ir(),
        &big.ir_args(),
        reps,
    );
    report.write();
}
