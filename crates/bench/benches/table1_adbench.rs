//! Table 1: ADBench, sequential CPU execution.
//!
//! For BA, D-LSTM, GMM and HAND (complicated and simple) we report the time
//! to compute the full gradient relative to the time to compute the
//! objective, for three tools: this crate's reverse AD ("Futhark" column),
//! the tape-based baseline ("Tapenade" column) and the hand-written
//! derivative ("Manual" column). Lower is better. Dataset sizes are scaled
//! to CPU-interpreter scale; the measured quantity (the ratio) matches the
//! paper's.

use ad_bench::{compare_backends, engine, header, ratio, row, time_secs, Report, BACKEND_COLS};
use interp::Value;
use workloads::{adbench, gmm};

fn bench_problem(
    report: &mut Report,
    name: &str,
    fun: &fir::ir::Fun,
    args: &[Value],
    manual_grad: Option<&mut dyn FnMut()>,
    reps: usize,
) {
    // Sequential CPU execution, as in the paper's Table 1.
    let cf = engine("interp-seq").compile(fun).expect("compile");
    let obj_t = time_secs(reps, || {
        let _ = cf.call(args).expect("objective");
    });
    // Futhark-style reverse AD (redundant execution, no tape).
    let ad_t = time_secs(reps, || {
        let _ = cf.grad(args).expect("gradient");
    });
    // Tapenade-style tape AD.
    let tape_t = time_secs(reps, || {
        let _ = tape_ad::gradient(fun, args);
    });
    let (manual_cell, manual_rel) = match manual_grad {
        Some(f) => {
            let t = time_secs(reps, f);
            (ratio(t / obj_t), t / obj_t)
        }
        None => ("n/a".to_string(), f64::NAN),
    };
    row(&[
        name.to_string(),
        ratio(ad_t / obj_t),
        ratio(tape_t / obj_t),
        manual_cell,
    ]);
    report.add(
        name,
        &[
            ("objective_s", obj_t),
            ("futhark_rel", ad_t / obj_t),
            ("tapenade_rel", tape_t / obj_t),
            ("manual_rel", manual_rel),
        ],
    );
}

fn main() {
    header(
        "Table 1: full gradient time relative to objective time (sequential CPU)",
        &[
            "benchmark",
            "Futhark (this work)",
            "Tapenade (tape)",
            "Manual",
        ],
    );
    let reps = 3;
    let mut report = Report::new("table1_adbench");

    // BA
    let ba = adbench::BaData::generate(20, 200, 2000, 1);
    let ba_fun = adbench::ba_objective_ir();
    let mut ba_manual = || {
        let _ = adbench::ba_manual(&ba);
    };
    bench_problem(
        &mut report,
        "BA",
        &ba_fun,
        &ba.ir_args(),
        Some(&mut ba_manual),
        reps,
    );

    // D-LSTM
    let dl = adbench::DlstmData::generate(30, 16, 16, 2);
    let dl_fun = adbench::dlstm_objective_ir(dl.h);
    let mut dl_manual = || {
        let _ = adbench::dlstm_manual(&dl);
    };
    bench_problem(
        &mut report,
        "D-LSTM",
        &dl_fun,
        &dl.ir_args(),
        Some(&mut dl_manual),
        reps,
    );

    // GMM
    let gm = gmm::GmmData::generate(300, 16, 10, 3);
    let gm_fun = gmm::objective_ir();
    let mut gm_manual = || {
        let _ = gmm::gradient_manual(&gm);
    };
    bench_problem(
        &mut report,
        "GMM",
        &gm_fun,
        &gm.ir_args(),
        Some(&mut gm_manual),
        reps,
    );

    // HAND
    let hd = adbench::HandData::generate(200, 12, 4);
    for complicated in [true, false] {
        let fun = adbench::hand_objective_ir(complicated);
        let mut manual = || {
            let _ = adbench::hand_manual(&hd, complicated);
        };
        let name = if complicated {
            "HAND (complicated)"
        } else {
            "HAND (simple)"
        };
        bench_problem(
            &mut report,
            name,
            &fun,
            &hd.ir_args(complicated),
            Some(&mut manual),
            reps,
        );
    }

    println!();
    println!("(Paper, Table 1: Futhark 13.0x/3.2x/5.1x/49.8x/45.4x; Tapenade 10.3x/4.5x/5.4x/3758.7x/59.2x; Manual 8.6x/6.2x/4.6x/4.6x/4.4x.)");

    header(
        "Table 1 backends: tree-walking interp vs firvm bytecode VM",
        &BACKEND_COLS,
    );
    compare_backends(&mut report, "BA", &ba_fun, &ba.ir_args(), reps);
    compare_backends(&mut report, "D-LSTM", &dl_fun, &dl.ir_args(), reps);
    compare_backends(&mut report, "GMM", &gm_fun, &gm.ir_args(), reps);
    report.write();
}
