//! `fir-jit` — the native specialization tier for hot firvm programs.
//!
//! The paper's headline claim is that a *compiled* nested-parallel AD
//! language beats tape interpreters by orders of magnitude; the bytecode VM
//! recovers part of that but still dispatches per instruction and routes
//! every scalar through a boxed `Value`. This crate is the third tier:
//! when a cached program's run count crosses a threshold (counted by
//! [`firvm::tier::TierSlot`] in the program cache), its SOAC lambda bodies
//! and straight-line scalar regions are lowered to **monomorphic tapes**
//! over flat `f64`/`bool`/`i64` register files and executed with 4-lane
//! unrolled inner loops (`[f64; 4]` blocks the optimizer vectorizes — no
//! external SIMD dependencies). Captured rank-1 `f64` arrays are borrowed
//! as gather tables, so the `a[i]` bodies vjp transposition produces stay
//! on the fast path. Dispatch stays per-kernel: anything the tape fragment
//! does not cover (array construction in kernel bodies, control flow,
//! accumulators, multi-dimensional indexing, or operands whose run-time
//! shape class disagrees with the inferred one) falls back to the VM path
//! for that kernel only.
//!
//! **Bitwise preservation is a hard constraint**, fuzz-pinned by the
//! repository's opt-fuzz harness: map kernels vectorize freely (lanes are
//! independent elements through one op sequence), while reduce/redomap
//! reuse the VM's chunking ([`firvm::pool::run_chunked`] under the same
//! `ExecConfig`) and fold/combine order exactly, and scans stay
//! sequential.
//!
//! # Example
//!
//! ```
//! use fir::builder::Builder;
//! use fir::types::Type;
//! use interp::{Backend, Value};
//!
//! let mut b = Builder::new();
//! let dot = b.build_fun("dot", &[Type::arr_f64(1), Type::arr_f64(1)], |b, ps| {
//!     let prods = b.map1(Type::arr_f64(1), &[ps[0], ps[1]], |b, es| {
//!         vec![b.fmul(es[0].into(), es[1].into())]
//!     });
//!     vec![b.sum(prods).into()]
//! });
//! // Threshold 1: promote on the very first run.
//! let vm = fir_jit::vm(1);
//! let args = [Value::from(vec![1.0, 2.0]), Value::from(vec![3.0, 4.0])];
//! assert_eq!(vm.run(&dot, &args)[0].as_f64(), 11.0);
//! ```

mod exec;
mod region;
mod tape;

use std::sync::Arc;

use fir::types::ScalarType;
use firvm::bytecode::Program;
use firvm::tier::{AccelFactory, SoacAccel, TierConfig, TierCounters};
use firvm::ProgramCache;
use interp::{Array, ExecConfig, Value};

use exec::{CapVal, Stream, Table};
use region::Region;
use tape::{Cls, JitKernel};

/// Default hotness threshold: low enough that a training loop promotes
/// almost immediately, high enough that one-shot programs never pay for
/// specialization.
pub const DEFAULT_THRESHOLD: u64 = 8;

/// The native specialization of one program: a tape per supported SOAC
/// kernel plus the compiled main-body regions. Built by
/// [`compile_program`], driven by the VM through the
/// [`SoacAccel`] offers.
pub struct JitProgram {
    kernels: Vec<Option<JitKernel>>,
    regions: Vec<Region>,
    region_starts: Vec<u32>,
    #[cfg(feature = "profile")]
    labels: Vec<&'static str>,
}

impl JitProgram {
    /// How many of the program's kernels compiled to tapes.
    pub fn num_jitted_kernels(&self) -> usize {
        self.kernels.iter().filter(|k| k.is_some()).count()
    }

    /// How many main-body regions compiled.
    pub fn num_regions(&self) -> usize {
        self.regions.len()
    }

    #[cfg(feature = "profile")]
    fn label(&self, kernel: usize) -> &'static str {
        self.labels.get(kernel).copied().unwrap_or("kernel")
    }
}

impl std::fmt::Debug for JitProgram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JitProgram")
            .field("jitted_kernels", &self.num_jitted_kernels())
            .field("total_kernels", &self.kernels.len())
            .field("regions", &self.regions.len())
            .finish()
    }
}

/// Borrow every argument as a rank-1 `f64` slice of one common length —
/// the shape class for order-sensitive streams (reduce/scan elements).
fn arrs_1d_f64(args: &[Value]) -> Option<(usize, Vec<&[f64]>)> {
    if args.is_empty() {
        return None;
    }
    let mut n: Option<usize> = None;
    let mut slices = Vec::with_capacity(args.len());
    for v in args {
        let a = match v {
            Value::Arr(a) => a,
            _ => return None,
        };
        if a.shape.len() != 1 || a.elem() != ScalarType::F64 {
            return None;
        }
        match n {
            None => n = Some(a.shape[0]),
            Some(m) if m == a.shape[0] => {}
            _ => return None,
        }
        slices.push(a.f64s());
    }
    Some((n.unwrap(), slices))
}

/// Borrow map/redomap element streams as rank-1 slices of one common
/// length, each matching the class the tape inferred for its parameter slot
/// (`f64` or `i64` — `i64` streams are how iota-driven gather kernels get
/// their index argument). Accumulator arguments pass their shared handle
/// through (lane-uniform) and do not contribute a length; at least one real
/// array stream is required. Dead slots accept either element type.
fn streams_1d<'a>(k: &JitKernel, args: &'a [Value]) -> Option<(usize, Vec<Stream<'a>>)> {
    if args.is_empty() {
        return None;
    }
    let mut n: Option<usize> = None;
    let mut streams = Vec::with_capacity(args.len());
    for (p, v) in args.iter().enumerate() {
        match (k.tape.inputs.get(p)?, v) {
            (Some((Cls::C, r)), Value::Acc(h)) => {
                let need = k.tape.c_ranks[*r as usize] as usize;
                if need != 0 && h.shape().len() != need {
                    return None;
                }
                streams.push(Stream::Acc(h));
            }
            (cls, Value::Arr(a)) => {
                if a.shape.len() != 1 {
                    return None;
                }
                match n {
                    None => n = Some(a.shape[0]),
                    Some(m) if m == a.shape[0] => {}
                    _ => return None,
                }
                streams.push(match (cls, a.elem()) {
                    (Some((Cls::F, _)) | None, ScalarType::F64) => Stream::F(a.f64s()),
                    (Some((Cls::I, _)) | None, ScalarType::I64) => Stream::I(a.i64s()),
                    _ => return None,
                });
            }
            _ => return None,
        }
    }
    Some((n?, streams))
}

/// Check the capture values against the tape's inferred classes. Captured
/// `f64` arrays are borrowed whole as gather tables; their rank must match
/// what the tape's gathers require (`a_ranks`, with `0` = any rank, for
/// slots only `Len` touches).
fn check_caps<'a>(k: &JitKernel, captures: &'a [Value]) -> Option<Vec<CapVal<'a>>> {
    if k.tape.inputs.len() != k.num_params + captures.len() {
        return None;
    }
    let mut out = Vec::with_capacity(captures.len());
    for (j, v) in captures.iter().enumerate() {
        out.push(match (k.tape.inputs[k.num_params + j], v) {
            (Some((Cls::F, _)), Value::F64(x)) => CapVal::F(*x),
            (Some((Cls::B, _)), Value::Bool(x)) => CapVal::B(*x),
            (Some((Cls::I, _)), Value::I64(x)) => CapVal::I(*x),
            (Some((Cls::C, r)), Value::Acc(h)) => {
                let need = k.tape.c_ranks[r as usize] as usize;
                if need != 0 && h.shape().len() != need {
                    return None;
                }
                CapVal::Acc(h)
            }
            (Some((Cls::A, r)), Value::Arr(a)) if a.elem() == ScalarType::F64 => {
                let need = k.tape.a_ranks[r as usize];
                let rank = a.shape.len();
                let (d0, d1) = match rank {
                    1 if need <= 1 => (a.shape[0], 1),
                    2 if need == 0 || need == 2 => (a.shape[0], a.shape[1]),
                    _ => return None,
                };
                CapVal::A(Table {
                    data: a.f64s(),
                    d0,
                    d1,
                })
            }
            (None, _) => CapVal::Unused,
            _ => return None,
        });
    }
    Some(out)
}

/// Accumulator (and order-sensitive element) slots must be float-classified
/// or dead for flat `f64` values to feed them.
fn slots_are_f64(k: &JitKernel, lo: usize, hi: usize) -> bool {
    (lo..hi).all(|p| matches!(k.tape.inputs[p], None | Some((Cls::F, _))))
}

/// Pull the neutral element as flat floats.
fn neutral_f64(neutral: &[Value]) -> Option<Vec<f64>> {
    neutral
        .iter()
        .map(|v| match v {
            Value::F64(x) => Some(*x),
            _ => None,
        })
        .collect()
}

impl SoacAccel for JitProgram {
    fn map(
        &self,
        cfg: &ExecConfig,
        kernel: usize,
        args: &[Value],
        captures: &[Value],
    ) -> Option<Vec<Value>> {
        let k = self.kernels.get(kernel)?.as_ref()?;
        if args.len() != k.num_params {
            return None;
        }
        let (n, streams) = streams_1d(k, args)?;
        let caps = check_caps(k, captures)?;
        #[cfg(feature = "profile")]
        let _s = fir_trace::span("jit", self.label(kernel));
        let accs = exec::acc_table(k, &streams, &caps);
        let fcols = exec::run_map(k, cfg, n, &streams, &caps);
        // Reassemble in result order: float columns become rank-1 arrays,
        // accumulator results pass the shared handle through (the VM's
        // `OutBuf::Acc` collapses a map's acc column to the handle too).
        let mut fcols = fcols.into_iter();
        Some(
            k.tape
                .rets
                .iter()
                .map(|&(c, r)| match c {
                    Cls::C => Value::Acc(accs[r as usize].clone()),
                    _ => Value::Arr(Array::from_f64(vec![n], fcols.next().unwrap())),
                })
                .collect(),
        )
    }

    fn reduce(
        &self,
        cfg: &ExecConfig,
        kernel: usize,
        neutral: &[Value],
        args: &[Value],
        captures: &[Value],
    ) -> Option<Vec<Value>> {
        let k = self.kernels.get(kernel)?.as_ref()?;
        let width = neutral.len();
        if k.num_params != width + args.len()
            || k.tape.rets.len() != width
            || k.tape.num_c != 0
            || !slots_are_f64(k, 0, k.num_params)
        {
            return None;
        }
        let ne = neutral_f64(neutral)?;
        let (n, arrs) = arrs_1d_f64(args)?;
        let caps = check_caps(k, captures)?;
        #[cfg(feature = "profile")]
        let _s = fir_trace::span("jit", self.label(kernel));
        let acc = exec::run_reduce(k, cfg, n, &ne, &arrs, &caps);
        Some(acc.into_iter().map(Value::F64).collect())
    }

    fn redomap(
        &self,
        cfg: &ExecConfig,
        red_kernel: usize,
        map_kernel: usize,
        neutral: &[Value],
        args: &[Value],
        red_captures: &[Value],
        map_captures: &[Value],
    ) -> Option<Vec<Value>> {
        let rk = self.kernels.get(red_kernel)?.as_ref()?;
        let mk = self.kernels.get(map_kernel)?.as_ref()?;
        let width = neutral.len();
        if mk.num_params != args.len()
            || rk.num_params != width + mk.tape.rets.len()
            || rk.tape.rets.len() != width
            || rk.tape.num_c != 0
            || mk.tape.num_c != 0
            || !slots_are_f64(rk, 0, rk.num_params)
        {
            return None;
        }
        let ne = neutral_f64(neutral)?;
        let (n, streams) = streams_1d(mk, args)?;
        let rcaps = check_caps(rk, red_captures)?;
        let mcaps = check_caps(mk, map_captures)?;
        #[cfg(feature = "profile")]
        let _s = fir_trace::span("jit", self.label(red_kernel));
        let acc = exec::run_redomap(rk, mk, cfg, n, &ne, &streams, &rcaps, &mcaps);
        Some(acc.into_iter().map(Value::F64).collect())
    }

    fn scan(
        &self,
        _cfg: &ExecConfig,
        kernel: usize,
        neutral: &[Value],
        args: &[Value],
        captures: &[Value],
    ) -> Option<Vec<Value>> {
        let k = self.kernels.get(kernel)?.as_ref()?;
        let width = neutral.len();
        if k.num_params != width + args.len()
            || k.tape.rets.len() != width
            || k.tape.num_c != 0
            || !slots_are_f64(k, 0, k.num_params)
        {
            return None;
        }
        let ne = neutral_f64(neutral)?;
        let (n, arrs) = arrs_1d_f64(args)?;
        let caps = check_caps(k, captures)?;
        #[cfg(feature = "profile")]
        let _s = fir_trace::span("jit", self.label(kernel));
        let outs = exec::run_scan(k, n, &ne, &arrs, &caps);
        Some(
            outs.into_iter()
                .map(|d| Value::Arr(Array::from_f64(vec![n], d)))
                .collect(),
        )
    }

    fn region_starts(&self) -> &[u32] {
        &self.region_starts
    }

    fn run_region(&self, region: u32, regs: &mut [Value]) -> Option<usize> {
        self.regions.get(region as usize)?.run(regs)
    }
}

/// Specialize a compiled program: lower every SOAC kernel and every
/// main-body region that fits the tape fragment. `None` when nothing in
/// the program is specializable (the promotion decision is then cached as
/// empty and the program stays on the VM tier for good).
pub fn compile_program(prog: &Program) -> Option<JitProgram> {
    let kernels: Vec<Option<JitKernel>> = prog.kernels.iter().map(tape::lower_kernel).collect();
    let (region_starts, regions) = region::lower_regions(&prog.main);
    if kernels.iter().all(|k| k.is_none()) && regions.is_empty() {
        return None;
    }
    Some(JitProgram {
        kernels,
        regions,
        region_starts,
        #[cfg(feature = "profile")]
        labels: (0..prog.kernels.len())
            .map(|i| prog.kernel_label(i))
            .collect(),
    })
}

/// The factory handed to [`firvm::tier::TierConfig`].
pub fn accel_factory() -> Arc<AccelFactory> {
    Arc::new(|prog| compile_program(prog).map(|p| Arc::new(p) as Arc<dyn SoacAccel>))
}

/// A tier configuration with fresh counters and this crate's factory.
pub fn tier_config(threshold: u64) -> TierConfig {
    TierConfig {
        threshold,
        factory: accel_factory(),
        counters: Arc::new(TierCounters::default()),
    }
}

/// A tiered VM with the default (parallel) execution configuration.
pub fn vm(threshold: u64) -> firvm::Vm {
    vm_with(ExecConfig::default(), tier_config(threshold))
}

/// A tiered VM over an explicit execution configuration and tier. The VM
/// gets a private program cache so run counts (and thus `TierStats`) are
/// deterministic per engine instead of shared process-wide.
pub fn vm_with(cfg: ExecConfig, tier: TierConfig) -> firvm::Vm {
    firvm::Vm::with_config(cfg)
        .with_cache(Arc::new(ProgramCache::new()))
        .with_tier(tier)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fir::builder::Builder;
    use fir::ir::{Atom, Fun};
    use fir::types::Type;
    use std::sync::atomic::Ordering;

    fn assert_bitwise_eq(a: &[Value], b: &[Value]) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            match (x, y) {
                (Value::F64(u), Value::F64(w)) => {
                    assert_eq!(u.to_bits(), w.to_bits(), "{u} vs {w}")
                }
                (Value::I64(u), Value::I64(w)) => assert_eq!(u, w),
                (Value::Bool(u), Value::Bool(w)) => assert_eq!(u, w),
                (Value::Arr(u), Value::Arr(w)) => {
                    assert_eq!(u.shape, w.shape);
                    assert_eq!(u.elem(), w.elem());
                    match u.elem() {
                        ScalarType::F64 => {
                            for (p, q) in u.f64s().iter().zip(w.f64s()) {
                                assert_eq!(p.to_bits(), q.to_bits(), "{p} vs {q}");
                            }
                        }
                        ScalarType::I64 => assert_eq!(u.i64s(), w.i64s()),
                        ScalarType::Bool => assert_eq!(u.bools(), w.bools()),
                    }
                }
                _ => panic!("value kind mismatch: {x:?} vs {y:?}"),
            }
        }
    }

    /// Run on the plain VM and a threshold-1 jit VM (both sequential and a
    /// low-threshold parallel pairing) and require bitwise agreement.
    fn assert_jit_parity(fun: &Fun, args: &[Value]) {
        let vm_out = firvm::Vm::sequential().run(fun, args);
        let jit = vm_with(ExecConfig::sequential(), tier_config(1));
        let jit_out = jit.run(fun, args);
        assert_bitwise_eq(&vm_out, &jit_out);

        let par = ExecConfig {
            parallel: true,
            num_threads: 4,
            parallel_threshold: 8,
        };
        let vm_par = firvm::Vm::with_config(par.clone()).run(fun, args);
        let jit_par = vm_with(par, tier_config(1));
        let jit_par_out = jit_par.run(fun, args);
        assert_bitwise_eq(&vm_par, &jit_par_out);
    }

    fn data(n: usize) -> Vec<f64> {
        (0..n).map(|i| (i as f64) * 0.37 - 3.0).collect()
    }

    #[test]
    fn map_kernels_match_bitwise_including_tails() {
        let mut b = Builder::new();
        let f = b.build_fun("act", &[Type::arr_f64(1), Type::F64], |b, ps| {
            let y = b.map1(Type::arr_f64(1), &[ps[0]], |b, es| {
                let s = b.fsigmoid(es[0].into());
                let t = b.ftanh(s);
                let c = b.lt(t, Atom::f64(0.25));
                let sel = b.select(c, Atom::f64(-1.0), t);
                vec![b.fmul(sel, ps[1].into())]
            });
            vec![Atom::Var(y)]
        });
        // Lengths around the 4-lane block edge, plus empty.
        for n in [0usize, 1, 3, 4, 5, 8, 17, 100] {
            assert_jit_parity(&f, &[Value::from(data(n)), Value::F64(1.75)]);
        }
    }

    #[test]
    fn reduce_and_redomap_keep_the_vm_accumulation_order() {
        let mut b = Builder::new();
        let f = b.build_fun("sumsq", &[Type::arr_f64(1)], |b, ps| {
            let sq = b.map1(Type::arr_f64(1), &[ps[0]], |b, es| {
                vec![b.fmul(es[0].into(), es[0].into())]
            });
            let s = b.sum(sq);
            let m = b.maximum(ps[0]);
            vec![Atom::Var(s), Atom::Var(m)]
        });
        for n in [0usize, 1, 5, 7, 100, 10_000] {
            assert_jit_parity(&f, &[Value::from(data(n))]);
        }
        // The fused form (redomap) after SOAC fusion.
        let fused = fir_opt::fuse_soacs(&f);
        for n in [0usize, 1, 5, 7, 100, 10_000] {
            assert_jit_parity(&fused, &[Value::from(data(n))]);
        }
    }

    #[test]
    fn scans_stay_sequential_and_bitwise() {
        let mut b = Builder::new();
        let f = b.build_fun("cumsum", &[Type::arr_f64(1)], |b, ps| {
            vec![Atom::Var(b.scan_add(ps[0]))]
        });
        for n in [0usize, 1, 4, 9, 1000] {
            assert_jit_parity(&f, &[Value::from(data(n))]);
        }
    }

    #[test]
    fn unsupported_kernels_fall_back_per_kernel() {
        // The inner kernel constructs an array in its body (iota) — array
        // construction is permanently outside the tape fragment — while the
        // sibling kernel is pure scalar math. The program must still
        // promote, accelerate the scalar kernel, and bitwise-match the VM
        // on the rest.
        let mut b = Builder::new();
        let f = b.build_fun("mixed", &[Type::arr_f64(1)], |b, ps| {
            let gathered = b.map1(Type::arr_f64(1), &[ps[0]], |b, es| {
                let i = b.to_i64(es[0].into());
                let im = b.irem(i, Atom::i64(4));
                let tbl = b.iota(Atom::i64(4));
                let e = b.index(tbl, &[im]);
                vec![b.to_f64(e.into())]
            });
            let scaled = b.map1(Type::arr_f64(1), &[gathered], |b, es| {
                let e = b.fexp(es[0].into());
                vec![b.fadd(e, Atom::f64(0.5))]
            });
            vec![Atom::Var(scaled)]
        });
        let xs = Value::from(vec![0.0, 1.0, 2.0, 3.0, 5.0, 6.0]);

        let tier = tier_config(1);
        let counters = Arc::clone(&tier.counters);
        let jit = vm_with(ExecConfig::sequential(), tier);
        let vm_out = firvm::Vm::sequential().run(&f, std::slice::from_ref(&xs));
        let jit_out = jit.run(&f, &[xs]);
        assert_bitwise_eq(&vm_out, &jit_out);
        assert_eq!(counters.promotions.load(Ordering::Relaxed), 1);
        assert!(
            counters.jit_hits.load(Ordering::Relaxed) >= 1,
            "the scalar kernel should run jitted"
        );
        assert!(
            counters.fallbacks.load(Ordering::Relaxed) >= 1,
            "the gather kernel should fall back to the VM"
        );
    }

    #[test]
    fn iota_driven_gather_kernels_match_bitwise() {
        // The hot pattern vjp transposition emits: a map over iota whose
        // body gathers from captured arrays at arithmetic of the i64
        // stream element. The i64 stream, the scalar i64 capture (the
        // length) and the borrowed gather tables all ride the tape.
        let mut b = Builder::new();
        let f = b.build_fun("gather", &[Type::arr_f64(1)], |b, ps| {
            let n = b.len(ps[0]);
            let is = b.iota(n);
            let g = b.map1(Type::arr_f64(1), &[is], |b, es| {
                let last = b.isub(n, Atom::i64(1));
                let j = b.isub(last, es[0].into());
                let x = b.index(ps[0], &[j]);
                let y = b.index(ps[0], &[es[0].into()]);
                vec![b.fmul(x.into(), y.into())]
            });
            vec![b.sum(g).into()]
        });
        for n in [0usize, 1, 3, 4, 5, 17, 100] {
            assert_jit_parity(&f, &[Value::from(data(n))]);
        }
    }

    #[test]
    fn rank2_gather_kernels_match_bitwise() {
        // The LSTM-vjp hot pattern: a map whose body reads `w[i][j]` from a
        // captured rank-2 weight matrix (and `v[i]` from a rank-1 one),
        // with both indices computed in i64 arithmetic on the stream.
        let mut b = Builder::new();
        let f = b.build_fun(
            "g2",
            &[Type::arr_f64(1), Type::arr_f64(2), Type::arr_f64(1)],
            |b, ps| {
                let n = b.len(ps[0]);
                let is = b.iota(n);
                let g = b.map1(Type::arr_f64(1), &[is], |b, es| {
                    let row = b.irem(es[0].into(), Atom::i64(3));
                    let col = b.irem(es[0].into(), Atom::i64(4));
                    let w = b.index(ps[1], &[row, col]);
                    let v = b.index(ps[2], &[col]);
                    vec![b.fmul(w.into(), v.into())]
                });
                vec![b.sum(g).into()]
            },
        );
        let w = Value::Arr(Array::from_f64(
            vec![3, 4],
            (0..12).map(|i| i as f64 * 1.5 - 4.0).collect(),
        ));
        let v = Value::from(vec![2.0, -1.0, 0.25, 7.0]);
        for n in [0usize, 1, 4, 5, 17, 100] {
            assert_jit_parity(&f, &[Value::from(data(n)), w.clone(), v.clone()]);
        }
    }

    #[test]
    fn main_body_scalar_regions_compile_and_match() {
        // Straight-line scalar glue in the main body, big enough to clear
        // the region admission bar.
        let mut b = Builder::new();
        let f = b.build_fun("glue", &[Type::F64, Type::F64], |b, ps| {
            let s = b.fsin(ps[0].into());
            let c = b.fcos(ps[1].into());
            let p = b.fmul(s, c);
            let q = b.fadd(p, Atom::f64(2.5));
            let r = b.fsqrt(q);
            let lt = b.lt(r, Atom::f64(1.0));
            let sel = b.select(lt, s, r);
            vec![b.fdiv(sel, Atom::f64(3.0))]
        });
        let prog = firvm::compile(&f);
        let jp = compile_program(&prog).expect("scalar program must specialize");
        assert!(jp.num_regions() >= 1, "main body should yield a region");
        for (a, b2) in [(0.3, 0.7), (-1.2, 2.0), (5.5, -0.1)] {
            assert_jit_parity(&f, &[Value::F64(a), Value::F64(b2)]);
        }
    }

    #[test]
    fn gradients_of_vjp_programs_match_bitwise() {
        use futhark_ad::vjp;
        let mut b = Builder::new();
        let f = b.build_fun("obj", &[Type::arr_f64(1), Type::arr_f64(1)], |b, ps| {
            let prods = b.map1(Type::arr_f64(1), &[ps[0], ps[1]], |b, es| {
                let m = b.fmul(es[0].into(), es[1].into());
                vec![b.ftanh(m)]
            });
            vec![b.sum(prods).into()]
        });
        let df = vjp(&f);
        let opt = fir_opt::cse(&fir_opt::fuse_soacs(&df));
        let xs = Value::from(data(37));
        let ys = Value::from(data(37).iter().map(|x| x * 0.5 + 1.0).collect::<Vec<_>>());
        let args = [xs, ys, Value::F64(1.0)];
        assert_jit_parity(&df, &args);
        assert_jit_parity(&opt, &args);
    }

    #[test]
    fn promotion_counts_runs_not_calls_to_prepare() {
        use interp::Backend;
        let mut b = Builder::new();
        let f = b.build_fun("hot", &[Type::arr_f64(1)], |b, ps| {
            let sq = b.map1(Type::arr_f64(1), &[ps[0]], |b, es| {
                vec![b.fmul(es[0].into(), es[0].into())]
            });
            vec![b.sum(sq).into()]
        });
        let tier = tier_config(3);
        let counters = Arc::clone(&tier.counters);
        let jit = vm_with(ExecConfig::sequential(), tier);
        let exec = jit.prepare(&f).unwrap();
        let args = [Value::from(data(16))];
        exec.run(&args).unwrap();
        exec.run(&args).unwrap();
        assert_eq!(
            counters.promotions.load(Ordering::Relaxed),
            0,
            "two runs stay below a threshold of three"
        );
        exec.run(&args).unwrap();
        assert_eq!(
            counters.promotions.load(Ordering::Relaxed),
            1,
            "the third run promotes"
        );
        assert!(counters.jit_hits.load(Ordering::Relaxed) >= 1);
    }
}
