//! Tape execution: lane-unrolled interpretation over flat register files.
//!
//! The inner loop is monomorphized over a const lane width `W`: maps run
//! `W = 4` blocks (each op processes four elements as a `[f64; 4]`, which
//! the optimizer turns into SIMD) with a `W = 1` tail; order-sensitive
//! forms (reduce folds, scans) run `W = 1`. Bitwise preservation holds by
//! construction for maps — lanes are independent elements put through the
//! identical op sequence — and chunking reuses [`firvm::pool::run_chunked`]
//! with the caller's [`ExecConfig`], so chunk boundaries, the
//! one-partial shortcut and the sequential partial combine all match the
//! VM's reduce/redomap execution exactly.

use interp::{arena, Accum, ExecConfig};

use firvm::pool::run_chunked;

use crate::tape::{BBin, Cls, FBin, FCmp, FUn, IBin, ICmp, IUn, JitKernel, Op, Tape};

/// A borrowed `f64` gather table with its leading dimensions: `d0` is the
/// outer dim, `d1` the row length for rank-2 tables (`1` otherwise), so
/// `t.data[i0 * d1 + i1]` is exactly `Array::offset_of`'s row-major walk.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Table<'a> {
    pub data: &'a [f64],
    pub d0: usize,
    pub d1: usize,
}

impl Table<'_> {
    const EMPTY: Table<'static> = Table {
        data: &[],
        d0: 0,
        d1: 1,
    };
}

/// A capture value, pre-checked against the tape's inferred class. Arrays
/// are borrowed from the VM frame for the duration of one SOAC offer.
#[derive(Debug, Clone, Copy)]
pub(crate) enum CapVal<'a> {
    F(f64),
    B(bool),
    I(i64),
    A(Table<'a>),
    /// A shared accumulator handle (scatter-add target).
    Acc(&'a Accum),
    /// Capture slot never read by the body.
    Unused,
}

/// One element stream of a map/redomap: the per-position scalar class was
/// checked against the tape's input classes at dispatch.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Stream<'a> {
    F(&'a [f64]),
    I(&'a [i64]),
    /// An accumulator argument: the shared handle goes to every element
    /// (the VM's `write_elem_params` clones it per element), so it is
    /// lane-uniform like a capture.
    Acc(&'a Accum),
}

/// Run the op sequence over `W`-lane register files. `arrs` is the borrowed
/// input-array table for gathers; it is lane-uniform (arrays are inputs,
/// never per-element values).
#[inline]
fn run_ops<const W: usize>(
    ops: &[Op],
    f: &mut [[f64; W]],
    b: &mut [[bool; W]],
    ii: &mut [[i64; W]],
    arrs: &[Table],
    accs: &[&Accum],
) {
    for op in ops {
        match *op {
            Op::MovF(d, s) => f[d as usize] = f[s as usize],
            Op::MovB(d, s) => b[d as usize] = b[s as usize],
            Op::MovI(d, s) => ii[d as usize] = ii[s as usize],
            Op::Un(u, d, a) => {
                let x = f[a as usize];
                let o = &mut f[d as usize];
                match u {
                    FUn::Neg => {
                        for l in 0..W {
                            o[l] = -x[l];
                        }
                    }
                    FUn::Sin => {
                        for l in 0..W {
                            o[l] = x[l].sin();
                        }
                    }
                    FUn::Cos => {
                        for l in 0..W {
                            o[l] = x[l].cos();
                        }
                    }
                    FUn::Exp => {
                        for l in 0..W {
                            o[l] = x[l].exp();
                        }
                    }
                    FUn::Log => {
                        for l in 0..W {
                            o[l] = x[l].ln();
                        }
                    }
                    FUn::Sqrt => {
                        for l in 0..W {
                            o[l] = x[l].sqrt();
                        }
                    }
                    FUn::Tanh => {
                        for l in 0..W {
                            o[l] = x[l].tanh();
                        }
                    }
                    FUn::Sigmoid => {
                        for l in 0..W {
                            o[l] = 1.0 / (1.0 + (-x[l]).exp());
                        }
                    }
                    FUn::Abs => {
                        for l in 0..W {
                            o[l] = x[l].abs();
                        }
                    }
                    FUn::Recip => {
                        for l in 0..W {
                            o[l] = 1.0 / x[l];
                        }
                    }
                }
            }
            Op::Bin(op2, d, a, bb) => {
                let x = f[a as usize];
                let y = f[bb as usize];
                let o = &mut f[d as usize];
                match op2 {
                    FBin::Add => {
                        for l in 0..W {
                            o[l] = x[l] + y[l];
                        }
                    }
                    FBin::Sub => {
                        for l in 0..W {
                            o[l] = x[l] - y[l];
                        }
                    }
                    FBin::Mul => {
                        for l in 0..W {
                            o[l] = x[l] * y[l];
                        }
                    }
                    FBin::Div => {
                        for l in 0..W {
                            o[l] = x[l] / y[l];
                        }
                    }
                    FBin::Pow => {
                        for l in 0..W {
                            o[l] = x[l].powf(y[l]);
                        }
                    }
                    FBin::Min => {
                        for l in 0..W {
                            o[l] = x[l].min(y[l]);
                        }
                    }
                    FBin::Max => {
                        for l in 0..W {
                            o[l] = x[l].max(y[l]);
                        }
                    }
                    FBin::Rem => {
                        for l in 0..W {
                            o[l] = x[l] % y[l];
                        }
                    }
                }
            }
            Op::Cmp(c, d, a, bb) => {
                let x = f[a as usize];
                let y = f[bb as usize];
                let o = &mut b[d as usize];
                match c {
                    FCmp::Eq => {
                        for l in 0..W {
                            o[l] = x[l] == y[l];
                        }
                    }
                    FCmp::Neq => {
                        for l in 0..W {
                            o[l] = x[l] != y[l];
                        }
                    }
                    FCmp::Lt => {
                        for l in 0..W {
                            o[l] = x[l] < y[l];
                        }
                    }
                    FCmp::Le => {
                        for l in 0..W {
                            o[l] = x[l] <= y[l];
                        }
                    }
                    FCmp::Gt => {
                        for l in 0..W {
                            o[l] = x[l] > y[l];
                        }
                    }
                    FCmp::Ge => {
                        for l in 0..W {
                            o[l] = x[l] >= y[l];
                        }
                    }
                }
            }
            Op::BoolBin(c, d, a, bb) => {
                let x = b[a as usize];
                let y = b[bb as usize];
                let o = &mut b[d as usize];
                match c {
                    BBin::And => {
                        for l in 0..W {
                            o[l] = x[l] && y[l];
                        }
                    }
                    BBin::Or => {
                        for l in 0..W {
                            o[l] = x[l] || y[l];
                        }
                    }
                    BBin::Eq => {
                        for l in 0..W {
                            o[l] = x[l] == y[l];
                        }
                    }
                    BBin::Neq => {
                        for l in 0..W {
                            o[l] = x[l] != y[l];
                        }
                    }
                }
            }
            Op::Not(d, a) => {
                let x = b[a as usize];
                let o = &mut b[d as usize];
                for l in 0..W {
                    o[l] = !x[l];
                }
            }
            Op::Sel(d, c, t, e) => {
                let cc = b[c as usize];
                let tv = f[t as usize];
                let ev = f[e as usize];
                let o = &mut f[d as usize];
                for l in 0..W {
                    o[l] = if cc[l] { tv[l] } else { ev[l] };
                }
            }
            Op::SelB(d, c, t, e) => {
                let cc = b[c as usize];
                let tv = b[t as usize];
                let ev = b[e as usize];
                let o = &mut b[d as usize];
                for l in 0..W {
                    o[l] = if cc[l] { tv[l] } else { ev[l] };
                }
            }
            Op::IntUn(u, d, a) => {
                let x = ii[a as usize];
                let o = &mut ii[d as usize];
                match u {
                    IUn::Neg => {
                        for l in 0..W {
                            o[l] = -x[l];
                        }
                    }
                    IUn::Abs => {
                        for l in 0..W {
                            o[l] = x[l].abs();
                        }
                    }
                }
            }
            Op::IntBin(op2, d, a, bb) => {
                let x = ii[a as usize];
                let y = ii[bb as usize];
                let o = &mut ii[d as usize];
                match op2 {
                    IBin::Add => {
                        for l in 0..W {
                            o[l] = x[l] + y[l];
                        }
                    }
                    IBin::Sub => {
                        for l in 0..W {
                            o[l] = x[l] - y[l];
                        }
                    }
                    IBin::Mul => {
                        for l in 0..W {
                            o[l] = x[l] * y[l];
                        }
                    }
                    IBin::Div => {
                        for l in 0..W {
                            o[l] = x[l] / y[l];
                        }
                    }
                    IBin::Pow => {
                        for l in 0..W {
                            o[l] = x[l].pow(y[l].max(0) as u32);
                        }
                    }
                    IBin::Min => {
                        for l in 0..W {
                            o[l] = x[l].min(y[l]);
                        }
                    }
                    IBin::Max => {
                        for l in 0..W {
                            o[l] = x[l].max(y[l]);
                        }
                    }
                    IBin::Rem => {
                        for l in 0..W {
                            o[l] = x[l] % y[l];
                        }
                    }
                }
            }
            Op::IntCmp(c, d, a, bb) => {
                let x = ii[a as usize];
                let y = ii[bb as usize];
                let o = &mut b[d as usize];
                match c {
                    ICmp::Eq => {
                        for l in 0..W {
                            o[l] = x[l] == y[l];
                        }
                    }
                    ICmp::Neq => {
                        for l in 0..W {
                            o[l] = x[l] != y[l];
                        }
                    }
                    ICmp::Lt => {
                        for l in 0..W {
                            o[l] = x[l] < y[l];
                        }
                    }
                    ICmp::Le => {
                        for l in 0..W {
                            o[l] = x[l] <= y[l];
                        }
                    }
                    ICmp::Gt => {
                        for l in 0..W {
                            o[l] = x[l] > y[l];
                        }
                    }
                    ICmp::Ge => {
                        for l in 0..W {
                            o[l] = x[l] >= y[l];
                        }
                    }
                }
            }
            Op::SelI(d, c, t, e) => {
                let cc = b[c as usize];
                let tv = ii[t as usize];
                let ev = ii[e as usize];
                let o = &mut ii[d as usize];
                for l in 0..W {
                    o[l] = if cc[l] { tv[l] } else { ev[l] };
                }
            }
            Op::CastF(d, s) => {
                let x = ii[s as usize];
                let o = &mut f[d as usize];
                for l in 0..W {
                    o[l] = x[l] as f64;
                }
            }
            Op::CastI(d, s) => {
                let x = f[s as usize];
                let o = &mut ii[d as usize];
                for l in 0..W {
                    o[l] = x[l] as i64;
                }
            }
            Op::IndexF(d, a, s) => {
                let t = arrs[a as usize];
                let x = ii[s as usize];
                let o = &mut f[d as usize];
                for l in 0..W {
                    let i = x[l];
                    assert!(i >= 0, "negative index {i}");
                    let u = i as usize;
                    assert!(u < t.d0, "index {u} out of bounds for dim of size {}", t.d0);
                    o[l] = t.data[u];
                }
            }
            Op::Index2F(d, a, s0, s1) => {
                let t = arrs[a as usize];
                let x0 = ii[s0 as usize];
                let x1 = ii[s1 as usize];
                let o = &mut f[d as usize];
                for l in 0..W {
                    let (i0, i1) = (x0[l], x1[l]);
                    // The VM converts every index (rejecting negatives)
                    // before walking the dims; keep its panic order.
                    assert!(i0 >= 0, "negative index {i0}");
                    assert!(i1 >= 0, "negative index {i1}");
                    let (u0, u1) = (i0 as usize, i1 as usize);
                    assert!(
                        u0 < t.d0,
                        "index {u0} out of bounds for dim of size {}",
                        t.d0
                    );
                    assert!(
                        u1 < t.d1,
                        "index {u1} out of bounds for dim of size {}",
                        t.d1
                    );
                    o[l] = t.data[u0 * t.d1 + u1];
                }
            }
            Op::LenA(d, a) => {
                ii[d as usize] = [arrs[a as usize].d0 as i64; W];
            }
            // Scatter-adds call `Accum::add_at` directly: same negative-index
            // panic as `read_usizes`, same silent out-of-bounds skip, same
            // zero-skipping CAS add as the VM's `UpdAcc`. Tapes with these
            // ops run at `W = 1` (see `run_map`), so lane order is element
            // order and adds land exactly as the VM's per-element loop.
            Op::UpdAcc1(c, i_src, v) => {
                let acc = accs[c as usize];
                let x = ii[i_src as usize];
                let vals = f[v as usize];
                for l in 0..W {
                    let i = x[l];
                    assert!(i >= 0, "negative index {i}");
                    let idx = [i as usize];
                    if acc.in_bounds(&idx) {
                        let (off, _) = acc.offset_of(&idx);
                        acc.add_at(off, vals[l]);
                    }
                }
            }
            Op::UpdAcc2(c, s0, s1, v) => {
                let acc = accs[c as usize];
                let x0 = ii[s0 as usize];
                let x1 = ii[s1 as usize];
                let vals = f[v as usize];
                for l in 0..W {
                    let (i0, i1) = (x0[l], x1[l]);
                    assert!(i0 >= 0, "negative index {i0}");
                    assert!(i1 >= 0, "negative index {i1}");
                    let idx = [i0 as usize, i1 as usize];
                    if acc.in_bounds(&idx) {
                        let (off, _) = acc.offset_of(&idx);
                        acc.add_at(off, vals[l]);
                    }
                }
            }
        }
    }
}

/// Region entry point: run over caller-provided register files (stack
/// arrays, sized at lowering time). Regions are scalar-only — admission
/// rejects tapes with `i64` or array registers.
#[inline]
pub(crate) fn run_region_ops(ops: &[Op], f: &mut [[f64; 1]], b: &mut [[bool; 1]]) {
    run_ops::<1>(ops, f, b, &mut [], &[], &[]);
}

/// Fresh `W`-lane register files with constants preloaded.
#[allow(clippy::type_complexity)]
fn init_frame<const W: usize>(tape: &Tape) -> (Vec<[f64; W]>, Vec<[bool; W]>, Vec<[i64; W]>) {
    let mut f = vec![[0.0f64; W]; tape.num_f];
    let mut b = vec![[false; W]; tape.num_b];
    let mut ii = vec![[0i64; W]; tape.num_i];
    for &(r, x) in &tape.f_consts {
        f[r as usize] = [x; W];
    }
    for &(r, x) in &tape.b_consts {
        b[r as usize] = [x; W];
    }
    for &(r, x) in &tape.i_consts {
        ii[r as usize] = [x; W];
    }
    (f, b, ii)
}

/// Broadcast the scalar capture values into their tape registers.
fn load_caps<const W: usize>(
    k: &JitKernel,
    f: &mut [[f64; W]],
    b: &mut [[bool; W]],
    ii: &mut [[i64; W]],
    caps: &[CapVal],
) {
    for (j, c) in caps.iter().enumerate() {
        match (k.tape.inputs[k.num_params + j], c) {
            (Some((Cls::F, r)), CapVal::F(x)) => f[r as usize] = [*x; W],
            (Some((Cls::B, r)), CapVal::B(x)) => b[r as usize] = [*x; W],
            (Some((Cls::I, r)), CapVal::I(x)) => ii[r as usize] = [*x; W],
            (Some((Cls::A, _)), CapVal::A(_)) => {} // goes in the array table
            (Some((Cls::C, _)), CapVal::Acc(_)) => {} // goes in the acc table
            (None, _) | (_, CapVal::Unused) => {}
            _ => unreachable!("capture class checked at dispatch"),
        }
    }
}

/// The borrowed input-array table, filled from array captures.
fn cap_arrays<'a>(k: &JitKernel, caps: &[CapVal<'a>]) -> Vec<Table<'a>> {
    let mut arrs = vec![Table::EMPTY; k.tape.num_a];
    for (j, c) in caps.iter().enumerate() {
        if let (Some((Cls::A, r)), CapVal::A(t)) = (k.tape.inputs[k.num_params + j], c) {
            arrs[r as usize] = *t;
        }
    }
    arrs
}

/// The borrowed accumulator table, filled from accumulator arguments and
/// captures. Every allocated slot has an input (handles only enter as
/// inputs), and dispatch class-checked each one, so all slots fill.
pub(crate) fn acc_table<'a>(
    k: &JitKernel,
    args: &[Stream<'a>],
    caps: &[CapVal<'a>],
) -> Vec<&'a Accum> {
    if k.tape.num_c == 0 {
        return Vec::new();
    }
    let mut accs: Vec<Option<&Accum>> = vec![None; k.tape.num_c];
    for (p, s) in args.iter().enumerate() {
        if let (Some((Cls::C, r)), Stream::Acc(h)) = (k.tape.inputs[p], s) {
            accs[r as usize] = Some(h);
        }
    }
    for (j, c) in caps.iter().enumerate() {
        if let (Some((Cls::C, r)), CapVal::Acc(h)) = (k.tape.inputs[k.num_params + j], c) {
            accs[r as usize] = Some(h);
        }
    }
    accs.into_iter()
        .map(|h| h.expect("accumulator slot filled at dispatch"))
        .collect()
}

/// Load one 4-lane block of every element stream into its parameter slot.
#[inline]
fn load_block4(tape: &Tape, f4: &mut [[f64; 4]], i4: &mut [[i64; 4]], args: &[Stream], i: usize) {
    for (p, s) in args.iter().enumerate() {
        match (tape.inputs[p], s) {
            (Some((Cls::F, r)), Stream::F(a)) => {
                f4[r as usize] = [a[i], a[i + 1], a[i + 2], a[i + 3]]
            }
            (Some((Cls::I, r)), Stream::I(a)) => {
                i4[r as usize] = [a[i], a[i + 1], a[i + 2], a[i + 3]]
            }
            (Some((Cls::C, _)), Stream::Acc(_)) => {} // uniform, in the acc table
            (None, _) => {}
            _ => unreachable!("stream class checked at dispatch"),
        }
    }
}

/// Load one element of every stream into its parameter slot (`W = 1`).
#[inline]
fn load_one(tape: &Tape, f1: &mut [[f64; 1]], i1: &mut [[i64; 1]], args: &[Stream], i: usize) {
    for (p, s) in args.iter().enumerate() {
        match (tape.inputs[p], s) {
            (Some((Cls::F, r)), Stream::F(a)) => f1[r as usize][0] = a[i],
            (Some((Cls::I, r)), Stream::I(a)) => i1[r as usize][0] = a[i],
            (Some((Cls::C, _)), Stream::Acc(_)) => {} // uniform, in the acc table
            (None, _) => {}
            _ => unreachable!("stream class checked at dispatch"),
        }
    }
}

/// Write one fold input into a `W = 1` frame (skipping dead slots).
#[inline]
fn set_in1(tape: &Tape, f: &mut [[f64; 1]], slot: usize, x: f64) {
    if let Some((Cls::F, r)) = tape.inputs[slot] {
        f[r as usize][0] = x;
    }
}

/// 4-lane unrolled `map`: returns one flat `f64` buffer per *float* kernel
/// result, in result order (accumulator results pass their handle through;
/// the dispatch reassembles the full output list). Tapes with scatter-adds
/// run every element at lane width 1 so the add order is exactly the VM's
/// per-element order.
pub(crate) fn run_map(
    k: &JitKernel,
    cfg: &ExecConfig,
    n: usize,
    args: &[Stream],
    caps: &[CapVal],
) -> Vec<Vec<f64>> {
    let arrs = cap_arrays(k, caps);
    let accs = acc_table(k, args, caps);
    let block4 = k.tape.num_c == 0;
    let frets = &k.f_rets;
    let chunk_outs: Vec<Vec<Vec<f64>>> = run_chunked(cfg, n, &|lo, hi| {
        let (mut f4, mut b4, mut i4) = init_frame::<4>(&k.tape);
        load_caps(k, &mut f4, &mut b4, &mut i4, caps);
        let (mut f1, mut b1, mut i1) = init_frame::<1>(&k.tape);
        load_caps(k, &mut f1, &mut b1, &mut i1, caps);
        let mut out: Vec<Vec<f64>> = frets.iter().map(|_| arena::take_f64(hi - lo)).collect();
        let mut i = lo;
        if block4 {
            while i + 4 <= hi {
                load_block4(&k.tape, &mut f4, &mut i4, args, i);
                run_ops::<4>(&k.tape.ops, &mut f4, &mut b4, &mut i4, &arrs, &accs);
                for (j, &r) in frets.iter().enumerate() {
                    out[j].extend_from_slice(&f4[r as usize]);
                }
                i += 4;
            }
        }
        while i < hi {
            load_one(&k.tape, &mut f1, &mut i1, args, i);
            run_ops::<1>(&k.tape.ops, &mut f1, &mut b1, &mut i1, &arrs, &accs);
            for (j, &r) in frets.iter().enumerate() {
                out[j].push(f1[r as usize][0]);
            }
            i += 1;
        }
        out
    });
    if chunk_outs.len() == 1 {
        return chunk_outs.into_iter().next().unwrap();
    }
    let mut res: Vec<Vec<f64>> = frets.iter().map(|_| arena::take_f64(n)).collect();
    for chunk in chunk_outs {
        for (j, mut col) in chunk.into_iter().enumerate() {
            res[j].append(&mut col);
            arena::give_f64(col);
        }
    }
    res
}

/// Fold one partial (or element tuple) into the accumulator via the reduce
/// tape. `elems` are the values for the slots after the accumulator slots.
#[inline]
#[allow(clippy::too_many_arguments)]
fn fold_step(
    k: &JitKernel,
    f: &mut [[f64; 1]],
    b: &mut [[bool; 1]],
    ii: &mut [[i64; 1]],
    arrs: &[Table],
    acc: &mut [f64],
    elems: &[f64],
) {
    let width = acc.len();
    for (j, a) in acc.iter().enumerate() {
        set_in1(&k.tape, f, j, *a);
    }
    for (j, x) in elems.iter().enumerate() {
        set_in1(&k.tape, f, width + j, *x);
    }
    run_ops::<1>(&k.tape.ops, f, b, ii, arrs, &[]);
    for (j, &(_, r)) in k.tape.rets.iter().enumerate() {
        acc[j] = f[r as usize][0];
    }
}

/// Combine per-chunk partials sequentially in chunk order — the exact
/// mirror of the VM's reduce/redomap partial combine (including the
/// single-partial shortcut).
fn combine_partials(
    rk: &JitKernel,
    ne: &[f64],
    rcaps: &[CapVal],
    partials: Vec<Vec<f64>>,
) -> Vec<f64> {
    if partials.len() == 1 {
        return partials.into_iter().next().unwrap();
    }
    let arrs = cap_arrays(rk, rcaps);
    let (mut f, mut b, mut ii) = init_frame::<1>(&rk.tape);
    load_caps(rk, &mut f, &mut b, &mut ii, rcaps);
    let mut acc = ne.to_vec();
    for p in partials {
        fold_step(rk, &mut f, &mut b, &mut ii, &arrs, &mut acc, &p);
    }
    acc
}

/// `reduce`: per-chunk sequential folds, then the sequential combine.
pub(crate) fn run_reduce(
    k: &JitKernel,
    cfg: &ExecConfig,
    n: usize,
    ne: &[f64],
    args: &[&[f64]],
    caps: &[CapVal],
) -> Vec<f64> {
    let width = ne.len();
    let arrs = cap_arrays(k, caps);
    let partials: Vec<Vec<f64>> = run_chunked(cfg, n, &|lo, hi| {
        let (mut f, mut b, mut ii) = init_frame::<1>(&k.tape);
        load_caps(k, &mut f, &mut b, &mut ii, caps);
        let mut acc = ne.to_vec();
        let mut elems = vec![0.0f64; args.len()];
        for i in lo..hi {
            for (j, arr) in args.iter().enumerate() {
                elems[j] = arr[i];
            }
            fold_step(k, &mut f, &mut b, &mut ii, &arrs, &mut acc, &elems);
        }
        debug_assert_eq!(acc.len(), width);
        acc
    });
    combine_partials(k, ne, caps, partials)
}

/// Fused `reduce ∘ map`: 4-lane map blocks feeding a strictly sequential
/// in-order fold, so the accumulation order is element order exactly as in
/// the VM's redomap.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_redomap(
    rk: &JitKernel,
    mk: &JitKernel,
    cfg: &ExecConfig,
    n: usize,
    ne: &[f64],
    args: &[Stream],
    rcaps: &[CapVal],
    mcaps: &[CapVal],
) -> Vec<f64> {
    let marrs = cap_arrays(mk, mcaps);
    let rarrs = cap_arrays(rk, rcaps);
    let partials: Vec<Vec<f64>> = run_chunked(cfg, n, &|lo, hi| {
        let (mut mf4, mut mb4, mut mi4) = init_frame::<4>(&mk.tape);
        load_caps(mk, &mut mf4, &mut mb4, &mut mi4, mcaps);
        let (mut mf1, mut mb1, mut mi1) = init_frame::<1>(&mk.tape);
        load_caps(mk, &mut mf1, &mut mb1, &mut mi1, mcaps);
        let (mut rf, mut rb, mut ri) = init_frame::<1>(&rk.tape);
        load_caps(rk, &mut rf, &mut rb, &mut ri, rcaps);
        let mut acc = ne.to_vec();
        let mut elems = vec![0.0f64; mk.tape.rets.len()];
        let mut i = lo;
        while i + 4 <= hi {
            load_block4(&mk.tape, &mut mf4, &mut mi4, args, i);
            run_ops::<4>(&mk.tape.ops, &mut mf4, &mut mb4, &mut mi4, &marrs, &[]);
            #[allow(clippy::needless_range_loop)] // `l` is the lane, `mf4` is register-major
            for l in 0..4 {
                for (j, &(_, r)) in mk.tape.rets.iter().enumerate() {
                    elems[j] = mf4[r as usize][l];
                }
                fold_step(rk, &mut rf, &mut rb, &mut ri, &rarrs, &mut acc, &elems);
            }
            i += 4;
        }
        while i < hi {
            load_one(&mk.tape, &mut mf1, &mut mi1, args, i);
            run_ops::<1>(&mk.tape.ops, &mut mf1, &mut mb1, &mut mi1, &marrs, &[]);
            for (j, &(_, r)) in mk.tape.rets.iter().enumerate() {
                elems[j] = mf1[r as usize][0];
            }
            fold_step(rk, &mut rf, &mut rb, &mut ri, &rarrs, &mut acc, &elems);
            i += 1;
        }
        acc
    });
    combine_partials(rk, ne, rcaps, partials)
}

/// Inclusive `scan`: strictly sequential, like the VM's.
pub(crate) fn run_scan(
    k: &JitKernel,
    n: usize,
    ne: &[f64],
    args: &[&[f64]],
    caps: &[CapVal],
) -> Vec<Vec<f64>> {
    let arrs = cap_arrays(k, caps);
    let (mut f, mut b, mut ii) = init_frame::<1>(&k.tape);
    load_caps(k, &mut f, &mut b, &mut ii, caps);
    let mut acc = ne.to_vec();
    let mut elems = vec![0.0f64; args.len()];
    let mut out: Vec<Vec<f64>> = k.tape.rets.iter().map(|_| arena::take_f64(n)).collect();
    for i in 0..n {
        for (j, arr) in args.iter().enumerate() {
            elems[j] = arr[i];
        }
        fold_step(k, &mut f, &mut b, &mut ii, &arrs, &mut acc, &elems);
        for (j, a) in acc.iter().enumerate() {
            out[j].push(*a);
        }
    }
    out
}
