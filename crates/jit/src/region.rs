//! Straight-line scalar regions of a program's main body.
//!
//! SOAC kernels cover the per-element math; this module covers the scalar
//! glue between SOACs (loss combination, step-size arithmetic, loop-carried
//! scalar state). The scanner finds maximal runs of taped-fragment
//! instructions in the main code object, lowers each run to a [`Tape`],
//! and records where the run starts so the executor can swap `run` ops in
//! for interpretation. Classes are inferred statically but checked
//! dynamically at every entry — a register that turns out to hold an array
//! or an `i64` makes the region decline, and the VM interprets the same
//! (unmodified, still in place) instructions. Jumps into the middle of a
//! region need no special handling for the same reason.

use fir::ir::UnOp;
use firvm::bytecode::{CodeObject, Instr, Opnd, Reg};
use interp::Value;

use crate::exec::run_region_ops;
use crate::tape::{lower_straight_line, Cls, Tape};

/// Register-file bounds for regions: execution uses stack arrays of these
/// sizes, so admission rejects anything larger (such straight-line scalar
/// blobs do not occur in practice).
pub(crate) const MAX_F: usize = 64;
pub(crate) const MAX_B: usize = 16;

/// Minimum compute ops for a region to be worth the entry checks.
const MIN_COMPUTE_OPS: usize = 4;

/// One compiled main-body region.
#[derive(Debug, Clone)]
pub(crate) struct Region {
    pub tape: Tape,
    /// `(vm reg, class, tape reg)` checked and loaded at entry.
    pub inputs: Vec<(Reg, Cls, u16)>,
    /// `(vm reg, class, tape reg)` written back on success.
    pub outputs: Vec<(Reg, Cls, u16)>,
    /// Continuation pc (one past the last covered instruction).
    pub end: usize,
}

impl Region {
    /// Run against the main frame; `None` leaves the frame untouched.
    pub(crate) fn run(&self, regs: &mut [Value]) -> Option<usize> {
        let mut f = [[0.0f64; 1]; MAX_F];
        let mut b = [[false; 1]; MAX_B];
        for &(vr, cls, tr) in &self.inputs {
            match (cls, &regs[vr as usize]) {
                (Cls::F, Value::F64(x)) => f[tr as usize][0] = *x,
                (Cls::B, Value::Bool(x)) => b[tr as usize][0] = *x,
                _ => return None,
            }
        }
        for &(r, x) in &self.tape.f_consts {
            f[r as usize][0] = x;
        }
        for &(r, x) in &self.tape.b_consts {
            b[r as usize][0] = x;
        }
        run_region_ops(
            &self.tape.ops,
            &mut f[..self.tape.num_f],
            &mut b[..self.tape.num_b],
        );
        for &(vr, cls, tr) in &self.outputs {
            regs[vr as usize] = match cls {
                Cls::F => Value::F64(f[tr as usize][0]),
                Cls::B => Value::Bool(b[tr as usize][0]),
                Cls::I | Cls::A | Cls::C => {
                    unreachable!("regions admit scalar f64/bool tapes only")
                }
            };
        }
        Some(self.end)
    }
}

/// Kind-level pre-filter: could this instruction belong to a region?
/// (Class conflicts are caught by the lowering attempt afterwards.)
fn candidate(i: &Instr) -> bool {
    fn scalar(o: &Opnd) -> bool {
        !matches!(o, Opnd::I64(_))
    }
    match i {
        Instr::Mov { src, .. } => scalar(src),
        Instr::Un { op, a, .. } => !matches!(op, UnOp::ToF64 | UnOp::ToI64) && scalar(a),
        Instr::Bin { a, b, .. } => scalar(a) && scalar(b),
        Instr::Select { cond, t, f, .. } => scalar(cond) && scalar(t) && scalar(f),
        _ => false,
    }
}

/// Scan the main body: returns the per-pc start table (`region_id + 1` at
/// each region start, `0` elsewhere) and the compiled regions.
pub(crate) fn lower_regions(code: &CodeObject) -> (Vec<u32>, Vec<Region>) {
    let mut starts = vec![0u32; code.instrs.len()];
    let mut regions: Vec<Region> = Vec::new();
    let mut pc = 0usize;
    while pc < code.instrs.len() {
        if !candidate(&code.instrs[pc]) {
            pc += 1;
            continue;
        }
        let mut hi = pc + 1;
        while hi < code.instrs.len() && candidate(&code.instrs[hi]) {
            hi += 1;
        }
        if let Some(mut lo) = lower_straight_line(code, pc, hi) {
            let inputs = std::mem::take(&mut lo.inputs);
            let outputs: Vec<(Reg, Cls, u16)> = std::mem::take(&mut lo.writes)
                .into_iter()
                .map(|r| {
                    let (cls, tr) = lo.binding(r).expect("written register has a binding");
                    (r, cls, tr)
                })
                .collect();
            let tape = lo.finish();
            if tape.compute_ops >= MIN_COMPUTE_OPS
                && tape.num_f <= MAX_F
                && tape.num_b <= MAX_B
                // Regions execute on scalar f64/bool stack files only; the
                // candidate filter keeps i64 and arrays out, this re-checks.
                && tape.num_i == 0
                && tape.num_a == 0
                && tape.num_c == 0
                && regions.len() < u32::MAX as usize
            {
                starts[pc] = regions.len() as u32 + 1;
                regions.push(Region {
                    tape,
                    inputs,
                    outputs,
                    end: hi,
                });
            }
        }
        pc = hi;
    }
    (starts, regions)
}
