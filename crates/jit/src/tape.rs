//! Lowering bytecode to monomorphic scalar tapes.
//!
//! A [`Tape`] is the jit's kernel format: a flat sequence of register ops
//! over three monomorphic register files (`f64`, `bool` and `i64`) plus a
//! table of borrowed rank-1 `f64` input arrays — no `Value` boxing, no
//! enum-typed registers, no `Drop` glue on writes. Lowering is a single
//! forward pass over straight-line bytecode that infers each register's
//! class from how it is used; anything outside the supported fragment
//! (jumps, array *construction*, accumulators, multi-dimensional indexing)
//! rejects the kernel, which then stays on the VM path — the tier is
//! per-kernel, not all-or-nothing. Arrays enter a tape only as inputs
//! (parameters or captures) and are read through single-index gathers
//! ([`Op::IndexF`]) and [`Op::LenA`]; this covers the `a[i]` access
//! pattern AD transposition produces in abundance.
//!
//! Every op reproduces `interp::eval`'s `f64`/`bool` semantics exactly
//! (same intrinsics, same operand order), so a tape run is bitwise
//! identical to interpreting the same instructions.

use std::collections::HashMap;

use fir::ir::{BinOp, UnOp};
use fir::types::{ScalarType, Type};
use firvm::bytecode::{CodeObject, Instr, Opnd, Reg};
use firvm::Kernel;

/// Class of a tape register: the three scalar files plus borrowed arrays
/// and shared accumulator handles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Cls {
    F,
    B,
    I,
    /// A borrowed `f64` input array (gather table).
    A,
    /// A shared accumulator handle (scatter-add target).
    C,
}

/// Float unary intrinsics, mirroring `eval_unop` on `Value::F64`.
#[derive(Debug, Clone, Copy)]
pub(crate) enum FUn {
    Neg,
    Sin,
    Cos,
    Exp,
    Log,
    Sqrt,
    Tanh,
    Sigmoid,
    Abs,
    Recip,
}

/// Float binary ops, mirroring `eval_binop` on `(Value::F64, Value::F64)`.
#[derive(Debug, Clone, Copy)]
pub(crate) enum FBin {
    Add,
    Sub,
    Mul,
    Div,
    Pow,
    Min,
    Max,
    Rem,
}

/// Float comparisons (result is a bool register).
#[derive(Debug, Clone, Copy)]
pub(crate) enum FCmp {
    Eq,
    Neq,
    Lt,
    Le,
    Gt,
    Ge,
}

/// Bool-typed binary ops.
#[derive(Debug, Clone, Copy)]
pub(crate) enum BBin {
    And,
    Or,
    Eq,
    Neq,
}

/// Integer unary ops, mirroring `eval_unop` on `Value::I64`.
#[derive(Debug, Clone, Copy)]
pub(crate) enum IUn {
    Neg,
    Abs,
}

/// Integer binary ops, mirroring `eval_binop` on `(Value::I64, Value::I64)`
/// — plain Rust operators, so division by zero panics exactly like the VM.
#[derive(Debug, Clone, Copy)]
pub(crate) enum IBin {
    Add,
    Sub,
    Mul,
    Div,
    Pow,
    Min,
    Max,
    Rem,
}

/// Integer comparisons (result is a bool register).
#[derive(Debug, Clone, Copy)]
pub(crate) enum ICmp {
    Eq,
    Neq,
    Lt,
    Le,
    Gt,
    Ge,
}

/// One tape op. Register operands index the `f64` or `bool` file as the op
/// dictates; constants live in dedicated registers preloaded at frame
/// setup, so the hot loop never branches on operand kind.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Op {
    /// `f[0] <- f[1]`
    MovF(u16, u16),
    /// `b[0] <- b[1]`
    MovB(u16, u16),
    /// `f[1] <- op f[2]`
    Un(FUn, u16, u16),
    /// `f[1] <- f[2] op f[3]`
    Bin(FBin, u16, u16, u16),
    /// `b[1] <- f[2] cmp f[3]`
    Cmp(FCmp, u16, u16, u16),
    /// `b[1] <- b[2] op b[3]`
    BoolBin(BBin, u16, u16, u16),
    /// `b[0] <- !b[1]`
    Not(u16, u16),
    /// `f[0] <- b[1] ? f[2] : f[3]`
    Sel(u16, u16, u16, u16),
    /// `b[0] <- b[1] ? b[2] : b[3]`
    SelB(u16, u16, u16, u16),
    /// `i[0] <- i[1]`
    MovI(u16, u16),
    /// `i[1] <- op i[2]`
    IntUn(IUn, u16, u16),
    /// `i[1] <- i[2] op i[3]`
    IntBin(IBin, u16, u16, u16),
    /// `b[1] <- i[2] cmp i[3]`
    IntCmp(ICmp, u16, u16, u16),
    /// `i[0] <- b[1] ? i[2] : i[3]`
    SelI(u16, u16, u16, u16),
    /// `f[0] <- i[1] as f64`
    CastF(u16, u16),
    /// `i[0] <- f[1] as i64`
    CastI(u16, u16),
    /// `f[0] <- arrays[1][i[2]]` — single-index gather into a rank-1 `f64`
    /// input array; bounds-checked with the VM's exact panic conditions.
    IndexF(u16, u16, u16),
    /// `f[0] <- arrays[1][i[2]][i[3]]` — two-index gather into a rank-2
    /// `f64` input array (row-major, like `Array::offset_of`).
    Index2F(u16, u16, u16, u16),
    /// `i[0] <- arrays[1].len() as i64` (the outer dimension)
    LenA(u16, u16),
    /// `accs[0][i[1]] += f[2]` — scatter-add into a rank-1 accumulator.
    /// Side-effecting: tapes containing these run at lane width 1 so the
    /// add order is exactly the VM's per-element order.
    UpdAcc1(u16, u16, u16),
    /// `accs[0][i[1]][i[2]] += f[3]` — scatter-add into a rank-2
    /// accumulator (row-major, like `Accum::offset_of`).
    UpdAcc2(u16, u16, u16, u16),
}

/// A compiled scalar tape.
#[derive(Debug, Clone, Default)]
pub(crate) struct Tape {
    pub ops: Vec<Op>,
    /// Sizes of the three scalar register files and the array table.
    pub num_f: usize,
    pub num_b: usize,
    pub num_i: usize,
    pub num_a: usize,
    pub num_c: usize,
    /// Constant registers to preload at frame setup.
    pub f_consts: Vec<(u16, f64)>,
    pub b_consts: Vec<(u16, bool)>,
    pub i_consts: Vec<(u16, i64)>,
    /// Per array-table slot: the rank its gathers require (`0` when only
    /// `Len` touches it, which accepts any rank).
    pub a_ranks: Vec<u8>,
    /// Per accumulator-table slot: the rank its scatter-adds require (`0`
    /// when the handle is only passed through to a result).
    pub c_ranks: Vec<u8>,
    /// For kernel tapes: where each kernel-frame slot (parameters, then
    /// captures) lands in the tape register file. `None` means the slot is
    /// never read by the body.
    pub inputs: Vec<Option<(Cls, u16)>>,
    /// For kernel tapes: the result registers — float outputs collected
    /// per element, or accumulator handles passed through.
    pub rets: Vec<(Cls, u16)>,
    /// Number of `Un`/`Bin`/`Cmp`/`BoolBin`/`Sel` ops (region admission).
    pub compute_ops: usize,
}

/// Where a VM register currently lives in the tape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Slot {
    Unknown,
    F(u16),
    B(u16),
    I(u16),
    A(u16),
    C(u16),
}

/// The forward lowering pass. `num_inputs` marks the VM register prefix
/// that may be read before being written (kernel parameters + captures; for
/// main-body regions, every register).
pub(crate) struct Lowerer {
    map: Vec<Slot>,
    num_inputs: usize,
    /// `(vm reg, class, tape reg)` for every input actually read.
    pub inputs: Vec<(Reg, Cls, u16)>,
    /// VM registers written by the lowered code, in first-write order.
    pub writes: Vec<Reg>,
    num_f: usize,
    num_b: usize,
    num_i: usize,
    num_a: usize,
    num_c: usize,
    a_ranks: Vec<u8>,
    c_ranks: Vec<u8>,
    f_consts: Vec<(u16, f64)>,
    b_consts: Vec<(u16, bool)>,
    i_consts: Vec<(u16, i64)>,
    f_const_ix: HashMap<u64, u16>,
    b_const_ix: HashMap<bool, u16>,
    i_const_ix: HashMap<i64, u16>,
    ops: Vec<Op>,
    compute_ops: usize,
}

impl Lowerer {
    pub(crate) fn new(num_regs: usize, num_inputs: usize) -> Lowerer {
        Lowerer {
            map: vec![Slot::Unknown; num_regs],
            num_inputs,
            inputs: Vec::new(),
            writes: Vec::new(),
            num_f: 0,
            num_b: 0,
            num_i: 0,
            num_a: 0,
            num_c: 0,
            a_ranks: Vec::new(),
            c_ranks: Vec::new(),
            f_consts: Vec::new(),
            b_consts: Vec::new(),
            i_consts: Vec::new(),
            f_const_ix: HashMap::new(),
            b_const_ix: HashMap::new(),
            i_const_ix: HashMap::new(),
            ops: Vec::new(),
            compute_ops: 0,
        }
    }

    fn alloc_f(&mut self) -> Option<u16> {
        let r = u16::try_from(self.num_f).ok()?;
        self.num_f += 1;
        Some(r)
    }

    fn alloc_b(&mut self) -> Option<u16> {
        let r = u16::try_from(self.num_b).ok()?;
        self.num_b += 1;
        Some(r)
    }

    fn alloc_i(&mut self) -> Option<u16> {
        let r = u16::try_from(self.num_i).ok()?;
        self.num_i += 1;
        Some(r)
    }

    fn alloc_a(&mut self, rank: u8) -> Option<u16> {
        let r = u16::try_from(self.num_a).ok()?;
        self.num_a += 1;
        self.a_ranks.push(rank);
        Some(r)
    }

    fn alloc_c(&mut self, rank: u8) -> Option<u16> {
        let r = u16::try_from(self.num_c).ok()?;
        self.num_c += 1;
        self.c_ranks.push(rank);
        Some(r)
    }

    fn const_f(&mut self, x: f64) -> Option<u16> {
        if let Some(&r) = self.f_const_ix.get(&x.to_bits()) {
            return Some(r);
        }
        let r = self.alloc_f()?;
        self.f_const_ix.insert(x.to_bits(), r);
        self.f_consts.push((r, x));
        Some(r)
    }

    fn const_b(&mut self, x: bool) -> Option<u16> {
        if let Some(&r) = self.b_const_ix.get(&x) {
            return Some(r);
        }
        let r = self.alloc_b()?;
        self.b_const_ix.insert(x, r);
        self.b_consts.push((r, x));
        Some(r)
    }

    fn const_i(&mut self, x: i64) -> Option<u16> {
        if let Some(&r) = self.i_const_ix.get(&x) {
            return Some(r);
        }
        let r = self.alloc_i()?;
        self.i_const_ix.insert(x, r);
        self.i_consts.push((r, x));
        Some(r)
    }

    /// Read VM register `r` as a float. A first read classifies it: inputs
    /// get an input binding, anything else is ill-formed straight-line code
    /// and rejects the tape.
    fn freg(&mut self, r: Reg) -> Option<u16> {
        match self.map[r as usize] {
            Slot::F(i) => Some(i),
            Slot::B(_) | Slot::I(_) | Slot::A(_) | Slot::C(_) => None,
            Slot::Unknown => {
                if (r as usize) >= self.num_inputs {
                    return None;
                }
                let i = self.alloc_f()?;
                self.map[r as usize] = Slot::F(i);
                self.inputs.push((r, Cls::F, i));
                Some(i)
            }
        }
    }

    fn breg(&mut self, r: Reg) -> Option<u16> {
        match self.map[r as usize] {
            Slot::B(i) => Some(i),
            Slot::F(_) | Slot::I(_) | Slot::A(_) | Slot::C(_) => None,
            Slot::Unknown => {
                if (r as usize) >= self.num_inputs {
                    return None;
                }
                let i = self.alloc_b()?;
                self.map[r as usize] = Slot::B(i);
                self.inputs.push((r, Cls::B, i));
                Some(i)
            }
        }
    }

    fn ireg(&mut self, r: Reg) -> Option<u16> {
        match self.map[r as usize] {
            Slot::I(i) => Some(i),
            Slot::F(_) | Slot::B(_) | Slot::A(_) | Slot::C(_) => None,
            Slot::Unknown => {
                if (r as usize) >= self.num_inputs {
                    return None;
                }
                let i = self.alloc_i()?;
                self.map[r as usize] = Slot::I(i);
                self.inputs.push((r, Cls::I, i));
                Some(i)
            }
        }
    }

    /// Read VM register `r` as an input array used at `rank` (`0` for a
    /// rank-agnostic use such as `Len`). Arrays are never produced by tape
    /// ops, so only an input slot can classify as one; mixing gather ranks
    /// on one slot cannot type-check, so it rejects.
    fn areg(&mut self, r: Reg, rank: u8) -> Option<u16> {
        match self.map[r as usize] {
            Slot::A(i) => {
                let known = &mut self.a_ranks[i as usize];
                if *known == 0 {
                    *known = rank;
                }
                if rank == 0 || *known == rank {
                    Some(i)
                } else {
                    None
                }
            }
            Slot::F(_) | Slot::B(_) | Slot::I(_) | Slot::C(_) => None,
            Slot::Unknown => {
                if (r as usize) >= self.num_inputs {
                    return None;
                }
                let i = self.alloc_a(rank)?;
                self.map[r as usize] = Slot::A(i);
                self.inputs.push((r, Cls::A, i));
                Some(i)
            }
        }
    }

    /// Read VM register `r` as an accumulator handle scatter-added at
    /// `rank` indices (`0` for a pass-through use). Handles only enter as
    /// inputs; updates re-bind their `dst` as an alias of the same slot,
    /// so one slot updated at two different arities rejects (it could not
    /// type-check anyway, and the runtime rank check would fail one use).
    fn creg(&mut self, r: Reg, rank: u8) -> Option<u16> {
        match self.map[r as usize] {
            Slot::C(i) => {
                let known = &mut self.c_ranks[i as usize];
                if *known == 0 {
                    *known = rank;
                }
                if rank == 0 || *known == rank {
                    Some(i)
                } else {
                    None
                }
            }
            Slot::F(_) | Slot::B(_) | Slot::I(_) | Slot::A(_) => None,
            Slot::Unknown => {
                if (r as usize) >= self.num_inputs {
                    return None;
                }
                let i = self.alloc_c(rank)?;
                self.map[r as usize] = Slot::C(i);
                self.inputs.push((r, Cls::C, i));
                Some(i)
            }
        }
    }

    fn fopnd(&mut self, o: &Opnd) -> Option<u16> {
        match o {
            Opnd::Reg(r) => self.freg(*r),
            Opnd::F64(x) => self.const_f(*x),
            Opnd::I64(_) | Opnd::Bool(_) => None,
        }
    }

    fn bopnd(&mut self, o: &Opnd) -> Option<u16> {
        match o {
            Opnd::Reg(r) => self.breg(*r),
            Opnd::Bool(x) => self.const_b(*x),
            Opnd::F64(_) | Opnd::I64(_) => None,
        }
    }

    fn iopnd(&mut self, o: &Opnd) -> Option<u16> {
        match o {
            Opnd::Reg(r) => self.ireg(*r),
            Opnd::I64(x) => self.const_i(*x),
            Opnd::F64(_) | Opnd::Bool(_) => None,
        }
    }

    /// The class an operand is already known to have (no classification).
    fn known_cls(&self, o: &Opnd) -> Option<Cls> {
        match o {
            Opnd::Reg(r) => match self.map[*r as usize] {
                Slot::F(_) => Some(Cls::F),
                Slot::B(_) => Some(Cls::B),
                Slot::I(_) => Some(Cls::I),
                Slot::A(_) => Some(Cls::A),
                Slot::C(_) => Some(Cls::C),
                Slot::Unknown => None,
            },
            Opnd::F64(_) => Some(Cls::F),
            Opnd::Bool(_) => Some(Cls::B),
            Opnd::I64(_) => Some(Cls::I),
        }
    }

    fn note_write(&mut self, r: Reg) {
        if !self.writes.contains(&r) {
            self.writes.push(r);
        }
    }

    /// Define VM register `r` as a float, reusing its tape register when the
    /// class is unchanged (straight-line code, so overwriting is safe).
    fn def_f(&mut self, r: Reg) -> Option<u16> {
        self.note_write(r);
        if let Slot::F(i) = self.map[r as usize] {
            return Some(i);
        }
        let i = self.alloc_f()?;
        self.map[r as usize] = Slot::F(i);
        Some(i)
    }

    fn def_b(&mut self, r: Reg) -> Option<u16> {
        self.note_write(r);
        if let Slot::B(i) = self.map[r as usize] {
            return Some(i);
        }
        let i = self.alloc_b()?;
        self.map[r as usize] = Slot::B(i);
        Some(i)
    }

    fn def_i(&mut self, r: Reg) -> Option<u16> {
        self.note_write(r);
        if let Slot::I(i) = self.map[r as usize] {
            return Some(i);
        }
        let i = self.alloc_i()?;
        self.map[r as usize] = Slot::I(i);
        Some(i)
    }

    fn push_compute(&mut self, op: Op) {
        self.ops.push(op);
        self.compute_ops += 1;
    }

    /// Lower one instruction; `None` rejects the tape (unsupported
    /// instruction or a register used at two different scalar classes).
    pub(crate) fn lower_instr(&mut self, instr: &Instr) -> Option<()> {
        match instr {
            Instr::Mov { dst, src } => match (src, self.known_cls(src)) {
                (_, Some(Cls::B)) => {
                    let s = self.bopnd(src)?;
                    let d = self.def_b(*dst)?;
                    self.ops.push(Op::MovB(d, s));
                    Some(())
                }
                (_, Some(Cls::I)) => {
                    let s = self.iopnd(src)?;
                    let d = self.def_i(*dst)?;
                    self.ops.push(Op::MovI(d, s));
                    Some(())
                }
                // Aliasing an input array would need array-typed defs.
                (_, Some(Cls::A)) => None,
                // An accumulator `Mov` aliases the shared handle (the VM
                // clones the `Arc`) — pure re-binding, no op emitted.
                (Opnd::Reg(r), Some(Cls::C)) => {
                    let Slot::C(i) = self.map[*r as usize] else {
                        return None;
                    };
                    self.note_write(*dst);
                    self.map[*dst as usize] = Slot::C(i);
                    Some(())
                }
                _ => {
                    let s = self.fopnd(src)?;
                    let d = self.def_f(*dst)?;
                    self.ops.push(Op::MovF(d, s));
                    Some(())
                }
            },
            Instr::Un { op, dst, a } => {
                match op {
                    UnOp::Not => {
                        let s = self.bopnd(a)?;
                        let d = self.def_b(*dst)?;
                        self.push_compute(Op::Not(d, s));
                        return Some(());
                    }
                    // `(ToF64, F64 x) -> F64(x)` is the identity; an unknown
                    // operand classifies as i64 — the conversion's only
                    // non-trivial source type.
                    UnOp::ToF64 => {
                        return if self.known_cls(a) == Some(Cls::F) {
                            let s = self.fopnd(a)?;
                            let d = self.def_f(*dst)?;
                            self.ops.push(Op::MovF(d, s));
                            Some(())
                        } else {
                            let s = self.iopnd(a)?;
                            let d = self.def_f(*dst)?;
                            self.push_compute(Op::CastF(d, s));
                            Some(())
                        };
                    }
                    // Dually, `(ToI64, I64 x)` is the identity and an
                    // unknown operand classifies as f64.
                    UnOp::ToI64 => {
                        return if self.known_cls(a) == Some(Cls::I) {
                            let s = self.iopnd(a)?;
                            let d = self.def_i(*dst)?;
                            self.ops.push(Op::MovI(d, s));
                            Some(())
                        } else {
                            let s = self.fopnd(a)?;
                            let d = self.def_i(*dst)?;
                            self.push_compute(Op::CastI(d, s));
                            Some(())
                        };
                    }
                    _ => {}
                }
                if self.known_cls(a) == Some(Cls::I) {
                    let iu = match op {
                        UnOp::Neg => IUn::Neg,
                        UnOp::Abs => IUn::Abs,
                        _ => return None,
                    };
                    let s = self.iopnd(a)?;
                    let d = self.def_i(*dst)?;
                    self.push_compute(Op::IntUn(iu, d, s));
                    return Some(());
                }
                let fun = match op {
                    UnOp::Neg => FUn::Neg,
                    UnOp::Sin => FUn::Sin,
                    UnOp::Cos => FUn::Cos,
                    UnOp::Exp => FUn::Exp,
                    UnOp::Log => FUn::Log,
                    UnOp::Sqrt => FUn::Sqrt,
                    UnOp::Tanh => FUn::Tanh,
                    UnOp::Sigmoid => FUn::Sigmoid,
                    UnOp::Abs => FUn::Abs,
                    UnOp::Recip => FUn::Recip,
                    UnOp::Not | UnOp::ToF64 | UnOp::ToI64 => {
                        unreachable!("handled above")
                    }
                };
                let s = self.fopnd(a)?;
                let d = self.def_f(*dst)?;
                self.push_compute(Op::Un(fun, d, s));
                Some(())
            }
            Instr::Bin { op, dst, a, b } => {
                // Integer form when either operand is already known i64 (a
                // well-typed program then forces the other to be too).
                let int_form =
                    self.known_cls(a) == Some(Cls::I) || self.known_cls(b) == Some(Cls::I);
                match op {
                    BinOp::Eq | BinOp::Neq | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
                        if int_form =>
                    {
                        let cmp = match op {
                            BinOp::Eq => ICmp::Eq,
                            BinOp::Neq => ICmp::Neq,
                            BinOp::Lt => ICmp::Lt,
                            BinOp::Le => ICmp::Le,
                            BinOp::Gt => ICmp::Gt,
                            _ => ICmp::Ge,
                        };
                        let x = self.iopnd(a)?;
                        let y = self.iopnd(b)?;
                        let d = self.def_b(*dst)?;
                        self.push_compute(Op::IntCmp(cmp, d, x, y));
                        return Some(());
                    }
                    BinOp::Add
                    | BinOp::Sub
                    | BinOp::Mul
                    | BinOp::Div
                    | BinOp::Pow
                    | BinOp::Min
                    | BinOp::Max
                    | BinOp::Rem
                        if int_form =>
                    {
                        let ib = match op {
                            BinOp::Add => IBin::Add,
                            BinOp::Sub => IBin::Sub,
                            BinOp::Mul => IBin::Mul,
                            BinOp::Div => IBin::Div,
                            BinOp::Pow => IBin::Pow,
                            BinOp::Min => IBin::Min,
                            BinOp::Max => IBin::Max,
                            _ => IBin::Rem,
                        };
                        let x = self.iopnd(a)?;
                        let y = self.iopnd(b)?;
                        let d = self.def_i(*dst)?;
                        self.push_compute(Op::IntBin(ib, d, x, y));
                        return Some(());
                    }
                    BinOp::And | BinOp::Or => {
                        let bb = match op {
                            BinOp::And => BBin::And,
                            _ => BBin::Or,
                        };
                        let x = self.bopnd(a)?;
                        let y = self.bopnd(b)?;
                        let d = self.def_b(*dst)?;
                        self.push_compute(Op::BoolBin(bb, d, x, y));
                        return Some(());
                    }
                    BinOp::Eq | BinOp::Neq => {
                        // Overloaded over floats and bools; pick the bool
                        // form when either operand is known boolean.
                        let bool_form =
                            self.known_cls(a) == Some(Cls::B) || self.known_cls(b) == Some(Cls::B);
                        if bool_form {
                            let bb = match op {
                                BinOp::Eq => BBin::Eq,
                                _ => BBin::Neq,
                            };
                            let x = self.bopnd(a)?;
                            let y = self.bopnd(b)?;
                            let d = self.def_b(*dst)?;
                            self.push_compute(Op::BoolBin(bb, d, x, y));
                            return Some(());
                        }
                        let cmp = match op {
                            BinOp::Eq => FCmp::Eq,
                            _ => FCmp::Neq,
                        };
                        let x = self.fopnd(a)?;
                        let y = self.fopnd(b)?;
                        let d = self.def_b(*dst)?;
                        self.push_compute(Op::Cmp(cmp, d, x, y));
                        return Some(());
                    }
                    BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                        let cmp = match op {
                            BinOp::Lt => FCmp::Lt,
                            BinOp::Le => FCmp::Le,
                            BinOp::Gt => FCmp::Gt,
                            _ => FCmp::Ge,
                        };
                        let x = self.fopnd(a)?;
                        let y = self.fopnd(b)?;
                        let d = self.def_b(*dst)?;
                        self.push_compute(Op::Cmp(cmp, d, x, y));
                        return Some(());
                    }
                    _ => {}
                }
                let fb = match op {
                    BinOp::Add => FBin::Add,
                    BinOp::Sub => FBin::Sub,
                    BinOp::Mul => FBin::Mul,
                    BinOp::Div => FBin::Div,
                    BinOp::Pow => FBin::Pow,
                    BinOp::Min => FBin::Min,
                    BinOp::Max => FBin::Max,
                    BinOp::Rem => FBin::Rem,
                    _ => unreachable!("predicates handled above"),
                };
                let x = self.fopnd(a)?;
                let y = self.fopnd(b)?;
                let d = self.def_f(*dst)?;
                self.push_compute(Op::Bin(fb, d, x, y));
                Some(())
            }
            Instr::Select { dst, cond, t, f } => {
                let c = self.bopnd(cond)?;
                let bool_form =
                    self.known_cls(t) == Some(Cls::B) || self.known_cls(f) == Some(Cls::B);
                let int_form =
                    self.known_cls(t) == Some(Cls::I) || self.known_cls(f) == Some(Cls::I);
                if bool_form {
                    let tv = self.bopnd(t)?;
                    let fv = self.bopnd(f)?;
                    let d = self.def_b(*dst)?;
                    self.push_compute(Op::SelB(d, c, tv, fv));
                } else if int_form {
                    let tv = self.iopnd(t)?;
                    let fv = self.iopnd(f)?;
                    let d = self.def_i(*dst)?;
                    self.push_compute(Op::SelI(d, c, tv, fv));
                } else {
                    let tv = self.fopnd(t)?;
                    let fv = self.fopnd(f)?;
                    let d = self.def_f(*dst)?;
                    self.push_compute(Op::Sel(d, c, tv, fv));
                }
                Some(())
            }
            // Scalar gathers into f64 input arrays — the access pattern vjp
            // transposition produces for every array read: `a[i]` on rank-1
            // cotangents and `w[i][j]` on rank-2 weight matrices.
            Instr::Index { dst, arr, idx } => {
                match &idx[..] {
                    [i] => {
                        let a = self.areg(*arr, 1)?;
                        let i = self.iopnd(i)?;
                        let d = self.def_f(*dst)?;
                        self.push_compute(Op::IndexF(d, a, i));
                    }
                    [i0, i1] => {
                        let a = self.areg(*arr, 2)?;
                        let i0 = self.iopnd(i0)?;
                        let i1 = self.iopnd(i1)?;
                        let d = self.def_f(*dst)?;
                        self.push_compute(Op::Index2F(d, a, i0, i1));
                    }
                    _ => return None,
                }
                Some(())
            }
            Instr::Len { dst, arr } => {
                let a = self.areg(*arr, 0)?;
                let d = self.def_i(*dst)?;
                self.ops.push(Op::LenA(d, a));
                Some(())
            }
            // Scatter-adds into shared accumulators — the write half of vjp
            // transposition (`dst[i] += v`, `w[i][j] += v`). The executor
            // calls `Accum::add_at` directly, so the negative-index panic,
            // the silent out-of-bounds skip and the zero-skip CAS add all
            // match the VM's `UpdAcc` bit for bit; lane width is pinned to
            // 1 for tapes containing these (see `run_map`) so adds land in
            // the VM's per-element order.
            Instr::UpdAcc { dst, acc, idx, val } => {
                let v = self.fopnd(val)?;
                match &idx[..] {
                    [i] => {
                        let c = self.creg(*acc, 1)?;
                        let i = self.iopnd(i)?;
                        self.push_compute(Op::UpdAcc1(c, i, v));
                        self.note_write(*dst);
                        self.map[*dst as usize] = Slot::C(c);
                    }
                    [i0, i1] => {
                        let c = self.creg(*acc, 2)?;
                        let i0 = self.iopnd(i0)?;
                        let i1 = self.iopnd(i1)?;
                        self.push_compute(Op::UpdAcc2(c, i0, i1, v));
                        self.note_write(*dst);
                        self.map[*dst as usize] = Slot::C(c);
                    }
                    _ => return None,
                }
                Some(())
            }
            // Everything else — array construction, accumulators, control
            // flow, SOACs — is outside the tape fragment.
            _ => None,
        }
    }

    /// Current tape-side binding of a VM register (for region outputs).
    pub(crate) fn binding(&self, r: Reg) -> Option<(Cls, u16)> {
        match self.map[r as usize] {
            Slot::F(i) => Some((Cls::F, i)),
            Slot::B(i) => Some((Cls::B, i)),
            Slot::I(i) => Some((Cls::I, i)),
            Slot::A(i) => Some((Cls::A, i)),
            Slot::C(i) => Some((Cls::C, i)),
            Slot::Unknown => None,
        }
    }

    /// Resolve a kernel result operand: a float register (collected per
    /// element) or an accumulator slot (handle passed through).
    fn ret_slot(&mut self, o: &Opnd) -> Option<(Cls, u16)> {
        if let Opnd::Reg(r) = o {
            if let Slot::C(i) = self.map[*r as usize] {
                return Some((Cls::C, i));
            }
        }
        Some((Cls::F, self.fopnd(o)?))
    }

    /// Finish into a tape with `inputs` indexed by kernel frame slot.
    fn finish_kernel(self, num_inputs: usize, rets: Vec<(Cls, u16)>) -> Tape {
        let mut inputs = vec![None; num_inputs];
        for (r, cls, i) in &self.inputs {
            inputs[*r as usize] = Some((*cls, *i));
        }
        Tape {
            ops: self.ops,
            num_f: self.num_f,
            num_b: self.num_b,
            num_i: self.num_i,
            num_a: self.num_a,
            num_c: self.num_c,
            a_ranks: self.a_ranks,
            c_ranks: self.c_ranks,
            f_consts: self.f_consts,
            b_consts: self.b_consts,
            i_consts: self.i_consts,
            inputs,
            rets,
            compute_ops: self.compute_ops,
        }
    }

    /// Finish into a bare tape (region form; inputs/outputs tracked by the
    /// caller via [`Lowerer::inputs`]/[`Lowerer::writes`]).
    pub(crate) fn finish(self) -> Tape {
        Tape {
            ops: self.ops,
            num_f: self.num_f,
            num_b: self.num_b,
            num_i: self.num_i,
            num_a: self.num_a,
            num_c: self.num_c,
            a_ranks: self.a_ranks,
            c_ranks: self.c_ranks,
            f_consts: self.f_consts,
            b_consts: self.b_consts,
            i_consts: self.i_consts,
            inputs: Vec::new(),
            rets: Vec::new(),
            compute_ops: self.compute_ops,
        }
    }
}

/// A kernel specialized to a tape: the shape-class contract is rank-1
/// element streams matching each parameter slot's inferred class (`f64` or
/// `i64`) and capture values matching theirs — scalars broadcast, rank-1
/// `f64` arrays borrowed whole as gather tables.
#[derive(Debug, Clone)]
pub(crate) struct JitKernel {
    pub tape: Tape,
    pub num_params: usize,
    /// The float result registers in result order (precomputed so the map
    /// hot path never filters `rets` per dispatch).
    pub f_rets: Vec<u16>,
}

/// Lower a SOAC kernel body, or `None` when any part of it is outside the
/// tape fragment (the dispatch then falls back to the VM for this kernel).
pub(crate) fn lower_kernel(k: &Kernel) -> Option<JitKernel> {
    // Results must be scalar f64 (flat output buffers) or f64 accumulators
    // (the shared handle is passed through, never materialized per element).
    if !k.ret.iter().all(|t| {
        matches!(
            t,
            Type::Scalar(ScalarType::F64)
                | Type::Acc {
                    elem: ScalarType::F64,
                    ..
                }
        )
    }) {
        return None;
    }
    let num_inputs = k.num_params + k.num_captures;
    let mut lo = Lowerer::new(k.code.num_regs, num_inputs);
    for instr in &k.code.instrs {
        lo.lower_instr(instr)?;
    }
    let rets = k
        .code
        .ret
        .iter()
        .map(|o| lo.ret_slot(o))
        .collect::<Option<Vec<(Cls, u16)>>>()?;
    let f_rets = rets
        .iter()
        .filter_map(|&(c, r)| (c == Cls::F).then_some(r))
        .collect();
    Some(JitKernel {
        tape: lo.finish_kernel(num_inputs, rets),
        num_params: k.num_params,
        f_rets,
    })
}

/// Lower one straight-line run of main-body instructions; used by the
/// region scanner.
pub(crate) fn lower_straight_line(
    code: &CodeObject,
    lo_pc: usize,
    hi_pc: usize,
) -> Option<Lowerer> {
    let mut lo = Lowerer::new(code.num_regs, code.num_regs);
    for instr in &code.instrs[lo_pc..hi_pc] {
        lo.lower_instr(instr)?;
    }
    Some(lo)
}
