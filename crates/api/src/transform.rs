//! First-class program transforms.
//!
//! The paper's central claim is that AD composes with the nested
//! data-parallel constructs because `vjp`/`jvp` are *program transforms*
//! on the same IR the SOACs live in. This module makes that composition a
//! first-class API object: a [`Transform`] names one derivation step
//! (reverse mode, forward mode, or the vectorizing map), and a *stack* of
//! transforms — applied left to right — names a derived program:
//!
//! ```text
//!   [Vjp]        → vjp f                 (reverse mode)
//!   [Vjp, Vmap]  → vmap (vjp f)          (per-example gradients)
//!   [Vmap, Vjp]  → vjp (vmap f)          (gradient of the vectorized fn)
//!   [Vjp, Jvp]   → jvp (vjp f)           (forward-over-reverse Hessians)
//! ```
//!
//! `CompiledFn::transform` applies a stack through the engine: each step
//! derives a new `Fun` from the previous step's *pre-pipeline* source,
//! re-runs the pass pipeline, and lands in the engine's fingerprint cache
//! keyed on `(source fingerprint, transform stack)` — `vmap(vjp(f))` is
//! compiled once per engine and LRU-evicted like everything else.

use std::fmt;

use fir::ir::Fun;

use crate::error::FirError;

/// One derivation step on a compiled function. Stacks of transforms are
/// applied left to right: `[Vjp, Vmap]` means `vmap(vjp(f))`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Transform {
    /// Reverse-mode AD (`futhark_ad::vjp`): parameters gain one adjoint
    /// seed per differentiable result; results gain one adjoint per
    /// differentiable parameter.
    Vjp,
    /// Forward-mode AD (`futhark_ad::jvp`): parameters gain one tangent
    /// per differentiable parameter; results gain one tangent per
    /// differentiable result.
    Jvp,
    /// The vectorizing map (`fir::lower::vmap`): every parameter and
    /// result type is promoted one rank and the body becomes the lambda
    /// of a single outer `map`, so one derived program serves every
    /// batch size.
    Vmap,
}

impl Transform {
    /// The transform's name as used in displays and serving requests.
    pub fn name(self) -> &'static str {
        match self {
            Transform::Vjp => "vjp",
            Transform::Jvp => "jvp",
            Transform::Vmap => "vmap",
        }
    }

    /// Derive the transformed function from `fun`'s (pre-pipeline) IR.
    /// The derivation is deterministic: structurally identical inputs
    /// yield fingerprint-identical outputs, which is what lets the engine
    /// cache share derived programs across handles.
    pub fn apply(self, fun: &Fun) -> Result<Fun, FirError> {
        match self {
            Transform::Vjp => Ok(futhark_ad::vjp(fun)),
            Transform::Jvp => Ok(futhark_ad::jvp(fun)),
            Transform::Vmap => fir::lower::vmap(fun).map_err(FirError::from),
        }
    }
}

impl fmt::Display for Transform {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fir::builder::Builder;
    use fir::types::Type;

    fn sumsq() -> Fun {
        let mut b = Builder::new();
        b.build_fun("sumsq", &[Type::arr_f64(1)], |b, ps| {
            let sq = b.map1(Type::arr_f64(1), &[ps[0]], |b, es| {
                vec![b.fmul(es[0].into(), es[0].into())]
            });
            vec![b.sum(sq).into()]
        })
    }

    #[test]
    fn apply_derives_well_typed_programs_with_the_expected_signatures() {
        let f = sumsq();
        let v = Transform::Vjp.apply(&f).unwrap();
        fir::typecheck::check_fun(&v).unwrap();
        assert_eq!(v.params.len(), 2, "args + one seed");
        let j = Transform::Jvp.apply(&f).unwrap();
        fir::typecheck::check_fun(&j).unwrap();
        assert_eq!(j.params.len(), 2, "args + one tangent");
        let m = Transform::Vmap.apply(&f).unwrap();
        fir::typecheck::check_fun(&m).unwrap();
        assert_eq!(m.params[0].ty, Type::arr_f64(2));
        assert_eq!(m.ret, vec![Type::arr_f64(1)]);
    }

    #[test]
    fn vmap_of_a_nullary_function_is_unsupported() {
        let mut b = Builder::new();
        let k = b.build_fun("k", &[], |_, _| vec![fir::ir::Atom::f64(2.0)]);
        assert!(matches!(
            Transform::Vmap.apply(&k),
            Err(FirError::Unsupported { .. })
        ));
    }

    #[test]
    fn names_render() {
        assert_eq!(Transform::Vjp.to_string(), "vjp");
        assert_eq!(Transform::Jvp.to_string(), "jvp");
        assert_eq!(Transform::Vmap.to_string(), "vmap");
    }
}
