//! The staged engine: compile once, derive transforms lazily, execute hot.
//!
//! [`Engine`] owns a backend, a structural-fingerprint cache of compiled
//! functions, and a configurable [`PassPipeline`]. [`Engine::compile`]
//! type-checks up front and returns a [`CompiledFn`]; from that handle any
//! stack of [`Transform`]s ([`CompiledFn::transform`], with the fluent
//! sugar [`CompiledFn::vjp`] / [`CompiledFn::jvp`] / [`CompiledFn::vmap`]
//! / [`CompiledFn::hessian`]) derives a new program from the pre-pipeline
//! source, compiled through the same cache and shared by every handle of
//! the same `(source fingerprint, transform stack)`. Execution is
//! fallible end to end and batched calls amortize dispatch across the
//! persistent worker pool.

use std::cell::RefCell;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock};

use fir::ir::Fun;
use fir::types::Type;
use firvm::{fingerprint_pair, TierCounters};
use interp::{arena, validate_args, Array, Backend, Executable, Value, WorkerPool};

use crate::error::FirError;
use crate::pipeline::{PassPipeline, PipelineStats};
use crate::registry;
use crate::transform::Transform;

/// A structural fingerprint (see [`firvm::fingerprint_pair`]).
type Fingerprint = (u64, u64);

/// The persistent-store identity of a compilation: the *root* source
/// fingerprint plus the canonical transform-stack string (`""` for the
/// root itself). `try_load` is cleared when the caller already consulted
/// the store for this identity.
struct Persist {
    root: Fingerprint,
    stack: String,
    try_load: bool,
}

/// The canonical transform-stack string of a persistent-store key:
/// transform names in application order, comma-joined (`"vjp,vmap"`).
fn stack_key(stack: &[Transform]) -> String {
    stack.iter().map(|t| t.name()).collect::<Vec<_>>().join(",")
}

// ---------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------

/// A compilation and execution engine: a backend, a pass pipeline, and a
/// cache of compiled functions keyed by structural fingerprint.
///
/// Engines are cheap to clone (clones share the backend and the cache) and
/// safe to share across threads.
#[derive(Clone)]
pub struct Engine {
    inner: Arc<EngineInner>,
}

struct EngineInner {
    backend: Arc<dyn Backend>,
    pipeline: Mutex<PassPipeline>,
    cache: Mutex<LruCache>,
    /// Monotonic recency tick shared by the locked cache and the
    /// published snapshots: hits through either path bump the same
    /// per-slot atomic, so LRU order stays coherent.
    tick: AtomicU64,
    /// The published read-mostly snapshot of the cache and the alias
    /// index (see [`ViewCell`]): the lock-free hot read path.
    view: ViewCell,
    /// Derived-program index: `(root source fingerprint, transform
    /// stack)` → the fingerprint of the derived function. Running a
    /// transform (re-deriving a whole `vjp`, say) just to discover that
    /// the result is already compiled would make every `grad` call pay
    /// the derivation; this index answers the hot path with two hash
    /// lookups instead. Entries are a few words each; aliases whose
    /// target program is LRU-evicted are dropped with it (see
    /// [`Engine::compile_entry`]), so the index stays proportional to
    /// the live cache — a re-requested stack just re-derives and
    /// re-aliases.
    derived: Mutex<HashMap<(Fingerprint, Vec<Transform>), Fingerprint>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
    opt: Mutex<OptStats>,
    /// Counters of the backend's jit specialization tier, when the engine
    /// was built on a tiered backend (`vm-jit`/`vm-jit-seq`, or any named
    /// VM with [`EngineBuilder::jit_threshold`]). Shared with the
    /// backend's `TierConfig`; surfaced through [`CacheStats::tier`].
    tier: Option<Arc<TierCounters>>,
    /// The on-disk compile cache ([`EngineBuilder::persistent_cache`]):
    /// consulted after an in-memory miss, before any typecheck/derive/
    /// optimize/prepare work, and written back after every compile. A
    /// persistent hit rebuilds the in-memory entry from disk without
    /// counting as an engine hit *or* miss — `misses` keeps meaning
    /// "compilations actually performed".
    persistent: Option<Arc<fir_cache::Store>>,
}

/// One compiled function in the engine cache: the optimized IR and the
/// backend-prepared executable.
///
/// Deliberately *not* home to any derived-transform handle: a
/// `CompiledFn` holds an `Arc<EngineInner>`, so storing one inside the
/// cache the engine owns would create a strong reference cycle and leak
/// the engine (and every cached program) forever. Derived programs are
/// ordinary cache entries under their own `(fingerprint, stack)` key; a
/// `CompiledFn` returned by [`CompiledFn::transform`] keeps its entry
/// alive by `Arc` even after the cache evicts it.
#[derive(Clone)]
struct CacheEntry {
    /// The function as compiled (pre-pipeline). AD transforms derive from
    /// this, so the derived IR — and therefore every gradient — is
    /// identical whatever pipeline the engine runs; the pipeline is applied
    /// to the *derived* function when it compiles in turn.
    source: Arc<Fun>,
    /// The pipeline-optimized IR the executable was prepared from.
    fun: Arc<Fun>,
    exec: Arc<dyn Executable>,
    /// The buffer plan, on engines whose pipeline runs [`crate::Pass::MemPlan`]:
    /// executions open a per-invocation arena scope sized to it. The
    /// reservation is returned ([`arena::release_slots`]) when the last
    /// reference — cache slot or [`CompiledFn`] handle — drops.
    plan: Option<Arc<PlanInfo>>,
}

/// The memory plan of a compiled program: how many arena buffer slots its
/// executions may retain between invocations (see
/// [`fir_opt::BufferPlan`]). Holds the global slot reservation for its
/// lifetime.
struct PlanInfo {
    slots: usize,
}

impl Drop for PlanInfo {
    fn drop(&mut self) {
        arena::release_slots(self.slots);
    }
}

/// The default bound of the engine's compiled-program cache (see
/// [`EngineBuilder::cache_capacity`]).
pub const DEFAULT_CACHE_CAPACITY: usize = 128;

/// A bounded fingerprint → program cache with least-recently-used
/// eviction. Recency is a monotonic use tick per slot; eviction scans for
/// the minimum, which is O(entries) but only runs when the cache is full
/// (and serving deployments keep the capacity small by design — a handful
/// of registered programs plus their derived transforms).
struct LruCache {
    map: HashMap<Fingerprint, LruSlot>,
    capacity: usize,
    evictions: usize,
}

struct LruSlot {
    entry: CacheEntry,
    /// Recency tick, shared (`Arc`) with every published [`CacheView`]
    /// so hits through a lock-free snapshot still bump LRU order.
    last_used: Arc<AtomicU64>,
}

impl LruCache {
    fn new(capacity: usize) -> LruCache {
        LruCache {
            map: HashMap::new(),
            capacity: capacity.max(1),
            evictions: 0,
        }
    }

    /// Look up `key`, marking it most-recently-used on a hit. `tick` is
    /// the engine's shared recency counter.
    fn get(&self, key: &Fingerprint, tick: &AtomicU64) -> Option<CacheEntry> {
        self.map.get(key).map(|slot| {
            slot.last_used
                .store(tick.fetch_add(1, Ordering::Relaxed) + 1, Ordering::Relaxed);
            slot.entry.clone()
        })
    }

    /// Insert `entry` under `key`, evicting the least-recently-used slot
    /// when the cache is over capacity. If another thread inserted the same
    /// key meanwhile, the first entry wins (so the executable stays shared)
    /// and is returned, alongside the fingerprints evicted to make room
    /// (so the caller can drop derived-program aliases that point at
    /// them).
    fn insert(
        &mut self,
        key: Fingerprint,
        entry: CacheEntry,
        tick: &AtomicU64,
    ) -> (CacheEntry, Vec<Fingerprint>) {
        let t = tick.fetch_add(1, Ordering::Relaxed) + 1;
        let kept = self
            .map
            .entry(key)
            .and_modify(|slot| slot.last_used.store(t, Ordering::Relaxed))
            .or_insert(LruSlot {
                entry,
                last_used: Arc::new(AtomicU64::new(t)),
            })
            .entry
            .clone();
        let mut evicted = Vec::new();
        while self.map.len() > self.capacity {
            let lru = self
                .map
                .iter()
                .min_by_key(|(_, slot)| slot.last_used.load(Ordering::Relaxed))
                .map(|(k, _)| *k)
                .expect("over-capacity cache cannot be empty");
            self.map.remove(&lru);
            self.evictions += 1;
            evicted.push(lru);
        }
        (kept, evicted)
    }
}

// ---------------------------------------------------------------------
// Published cache snapshots: the lock-free read path
// ---------------------------------------------------------------------

/// An immutable point-in-time view of the compiled-program cache plus the
/// derived-program alias index, published as one `Arc` so the hot read
/// paths — cache hits in [`Engine::compile`], alias hits in
/// [`CompiledFn::transform`] — never touch the engine mutexes. Entries
/// share the live cache's recency slots (`Arc<AtomicU64>`), so a hit
/// through a snapshot still counts for LRU eviction order.
struct CacheView {
    map: HashMap<Fingerprint, (CacheEntry, Arc<AtomicU64>)>,
    aliases: HashMap<(Fingerprint, Vec<Transform>), Fingerprint>,
}

impl CacheView {
    fn empty() -> Arc<CacheView> {
        Arc::new(CacheView {
            map: HashMap::new(),
            aliases: HashMap::new(),
        })
    }
}

/// The publication cell: a version counter plus the current snapshot
/// (arc-swap style, in std only). Readers go through a bounded per-thread
/// cache keyed by `(engine id, version)` — steady state is one `Acquire`
/// load and a thread-local scan, no locks and no shared-line writes
/// beyond the recency bump — and only fall back to the `RwLock` when the
/// version moved, i.e. after a compile, an eviction, or a pipeline
/// change. Writers serialize on the write lock and rebuild the snapshot
/// from the live maps, so the freshest mutation always wins.
struct ViewCell {
    /// Process-unique engine id, keying the thread-local snapshot cache.
    id: u64,
    version: AtomicU64,
    current: RwLock<Arc<CacheView>>,
}

/// Source of process-unique engine ids for [`ViewCell`].
static ENGINE_IDS: AtomicU64 = AtomicU64::new(1);

/// The bound of the per-thread snapshot cache: threads touching many
/// engines keep at most this many snapshots pinned.
const VIEW_CACHE_SLOTS: usize = 8;

thread_local! {
    /// Per-thread `(engine id, version, snapshot)` cache backing
    /// [`ViewCell::load`]'s lock-free steady state.
    static VIEW_CACHE: RefCell<Vec<(u64, u64, Arc<CacheView>)>> =
        const { RefCell::new(Vec::new()) };
}

impl ViewCell {
    fn new() -> ViewCell {
        ViewCell {
            id: ENGINE_IDS.fetch_add(1, Ordering::Relaxed),
            version: AtomicU64::new(0),
            current: RwLock::new(CacheView::empty()),
        }
    }

    /// The current snapshot. Steady state (no publication since this
    /// thread last looked) is lock-free.
    fn load(&self) -> Arc<CacheView> {
        // Read the version *before* the snapshot so the cached pair is
        // never tagged fresher than it is; a publication racing between
        // the two reads only costs one extra refresh on the next load.
        let version = self.version.load(Ordering::Acquire);
        let cached = VIEW_CACHE.with(|c| {
            c.borrow()
                .iter()
                .find(|(id, v, _)| *id == self.id && *v == version)
                .map(|(_, _, view)| Arc::clone(view))
        });
        if let Some(view) = cached {
            return view;
        }
        let view = Arc::clone(&self.current.read().unwrap());
        VIEW_CACHE.with(|c| {
            let mut cache = c.borrow_mut();
            cache.retain(|(id, _, _)| *id != self.id);
            if cache.len() >= VIEW_CACHE_SLOTS {
                cache.remove(0);
            }
            cache.push((self.id, version, Arc::clone(&view)));
        });
        view
    }
}

impl EngineInner {
    /// Rebuild and publish the cache snapshot from the live maps. Must be
    /// called *without* holding `cache`/`derived` (it takes them itself,
    /// briefly, inside the publication critical section).
    fn republish(&self) {
        let mut current = self.view.current.write().unwrap();
        let map = {
            let cache = self.cache.lock().unwrap();
            cache
                .map
                .iter()
                .map(|(k, slot)| (*k, (slot.entry.clone(), Arc::clone(&slot.last_used))))
                .collect()
        };
        let aliases = self.derived.lock().unwrap().clone();
        *current = Arc::new(CacheView { map, aliases });
        self.view.version.fetch_add(1, Ordering::Release);
    }

    /// Answer `key` from the published snapshot — the contention-free hot
    /// path. Bumps LRU recency through the shared slot.
    fn lookup_published(&self, key: &Fingerprint) -> Option<CacheEntry> {
        let view = self.view.load();
        view.map.get(key).map(|(entry, last_used)| {
            last_used.store(
                self.tick.fetch_add(1, Ordering::Relaxed) + 1,
                Ordering::Relaxed,
            );
            entry.clone()
        })
    }
}

/// Aggregate optimizer statistics of an [`Engine`]: what the pass pipeline
/// did across every function this engine compiled (cache misses only; a
/// cache hit re-uses already-optimized IR). Per-pass rewrite counts are
/// keyed by pass name ([`crate::Pass::name`]) and summed over functions
/// and fixpoint iterations.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct OptStats {
    /// Functions that went through the pipeline.
    pub functions: usize,
    /// Total fixpoint iterations executed.
    pub iterations: usize,
    /// Statements (all nesting depths) before optimization, summed.
    pub stms_before: usize,
    /// Statements after optimization, summed.
    pub stms_after: usize,
    /// Rewrites fired, by pass name.
    pub rewrites: std::collections::BTreeMap<&'static str, usize>,
    /// Wall time spent in each pass, by pass name, nanoseconds.
    pub pass_nanos: std::collections::BTreeMap<&'static str, u64>,
    /// Arena buffer slots planned across compiled programs (engines whose
    /// pipeline runs [`crate::Pass::MemPlan`]; summed over cache misses).
    pub slots_planned: usize,
}

impl OptStats {
    /// Total rewrites across all passes.
    pub fn total_rewrites(&self) -> usize {
        self.rewrites.values().sum()
    }

    /// Total wall time spent in the pipeline, nanoseconds.
    pub fn total_nanos(&self) -> u64 {
        self.pass_nanos.values().sum()
    }

    /// Statements removed end to end.
    pub fn stms_removed(&self) -> usize {
        self.stms_before.saturating_sub(self.stms_after)
    }

    fn absorb(&mut self, stats: &PipelineStats) {
        self.functions += 1;
        self.iterations += stats.iterations;
        self.stms_before += stats.stms_before;
        self.stms_after += stats.stms_after;
        for run in &stats.runs {
            *self.rewrites.entry(run.pass).or_default() += run.rewrites;
            *self.pass_nanos.entry(run.pass).or_default() += run.nanos;
        }
    }
}

impl std::fmt::Display for OptStats {
    /// One human-readable line, e.g.
    /// `optimizer: 2 functions, 7 iterations, 812 -> 598 stms (-26%), rewrites: cse 12, dce 40`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let pct = if self.stms_before == 0 {
            0.0
        } else {
            100.0 * self.stms_removed() as f64 / self.stms_before as f64
        };
        write!(
            f,
            "optimizer: {} function{}, {} iteration{}, {} -> {} stms (-{:.0}%)",
            self.functions,
            if self.functions == 1 { "" } else { "s" },
            self.iterations,
            if self.iterations == 1 { "" } else { "s" },
            self.stms_before,
            self.stms_after,
            pct,
        )?;
        let fired: Vec<_> = self.rewrites.iter().filter(|(_, n)| **n > 0).collect();
        if !fired.is_empty() {
            write!(f, ", rewrites:")?;
            for (i, (pass, n)) in fired.iter().enumerate() {
                write!(f, "{} {pass} {n}", if i == 0 { "" } else { "," })?;
            }
        }
        if self.slots_planned > 0 {
            write!(
                f,
                ", {} buffer slot{} planned",
                self.slots_planned,
                if self.slots_planned == 1 { "" } else { "s" },
            )?;
        }
        if self.total_nanos() > 0 {
            write!(f, ", opt time {:.1}ms", self.total_nanos() as f64 / 1e6)?;
        }
        Ok(())
    }
}

/// Counters of a backend's jit specialization tier (see the `fir-jit`
/// crate): how many hot programs were promoted to native kernels, how many
/// SOAC/region dispatches ran jitted, and how many offers the jit declined
/// (per-kernel fallback to the VM path).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TierStats {
    /// Programs whose run count crossed the hotness threshold and
    /// specialized to native kernels.
    pub promotions: usize,
    /// SOAC and region dispatches executed by the jit tier.
    pub jit_hits: usize,
    /// Dispatches the jit declined (unsupported expression or shape
    /// class), executed by the VM instead.
    pub fallbacks: usize,
}

/// Cache counters of an [`Engine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Compilations answered from the fingerprint cache.
    pub hits: usize,
    /// Compilations that ran the pipeline and the backend.
    pub misses: usize,
    /// Distinct programs currently cached.
    pub entries: usize,
    /// Programs evicted because the cache exceeded its capacity.
    pub evictions: usize,
    /// The configured LRU bound (see [`EngineBuilder::cache_capacity`]).
    pub capacity: usize,
    /// Specialization-tier counters, on engines with a jit-tiered backend
    /// (`None` on plain backends).
    pub tier: Option<TierStats>,
    /// Allocation counters of the execution arena (process-global: shared
    /// by every engine; see [`interp::alloc_stats`]). `reserved_slots`
    /// tracks the buffer plans of live memplanned programs.
    pub arena: interp::AllocStats,
    /// Counters of the persistent on-disk compile cache, on engines built
    /// with [`EngineBuilder::persistent_cache`] (`None` otherwise).
    pub persistent: Option<fir_cache::PersistentStats>,
}

impl std::fmt::Display for CacheStats {
    /// One human-readable line, e.g.
    /// `cache: 3 hits, 2 misses, 2/128 entries, 0 evictions` — plus, on a
    /// jit-tiered engine,
    /// `; jit: 1 promotion, 64 hits, 0 fallbacks`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "cache: {} hit{}, {} miss{}, {}/{} entries, {} eviction{}",
            self.hits,
            if self.hits == 1 { "" } else { "s" },
            self.misses,
            if self.misses == 1 { "" } else { "es" },
            self.entries,
            self.capacity,
            self.evictions,
            if self.evictions == 1 { "" } else { "s" },
        )?;
        if let Some(t) = &self.tier {
            write!(
                f,
                "; jit: {} promotion{}, {} hit{}, {} fallback{}",
                t.promotions,
                if t.promotions == 1 { "" } else { "s" },
                t.jit_hits,
                if t.jit_hits == 1 { "" } else { "s" },
                t.fallbacks,
                if t.fallbacks == 1 { "" } else { "s" },
            )?;
        }
        if self.arena.reserved_slots > 0 {
            write!(
                f,
                "; arena: {} slots reserved, {} hits, {} heap allocs, {} pooled bytes",
                self.arena.reserved_slots,
                self.arena.arena_hits,
                self.arena.heap_allocs,
                self.arena.pooled_bytes,
            )?;
        }
        if let Some(p) = &self.persistent {
            write!(
                f,
                "; persistent: {} hit{}, {} miss{}, {} store{}, {} invalidation{}",
                p.hits,
                if p.hits == 1 { "" } else { "s" },
                p.misses,
                if p.misses == 1 { "" } else { "es" },
                p.stores,
                if p.stores == 1 { "" } else { "s" },
                p.invalidations,
                if p.invalidations == 1 { "" } else { "s" },
            )?;
        }
        Ok(())
    }
}

impl Default for Engine {
    fn default() -> Engine {
        Engine::new()
    }
}

impl Engine {
    /// An engine on the default backend (the parallel compiled VM) with the
    /// standard simplification pipeline.
    pub fn new() -> Engine {
        Engine::with_backend(Box::new(firvm::Vm::new()))
    }

    /// An engine on an explicit backend instance (e.g. a backend with a
    /// custom `ExecConfig`, or a future remote/sharded backend).
    pub fn with_backend(backend: Box<dyn Backend>) -> Engine {
        Engine::on_backend(
            Arc::from(backend),
            PassPipeline::standard(),
            DEFAULT_CACHE_CAPACITY,
        )
    }

    /// A builder for engines with non-default configuration (backend,
    /// pipeline, cache capacity).
    pub fn builder() -> EngineBuilder {
        EngineBuilder::new()
    }

    fn on_backend(backend: Arc<dyn Backend>, pipeline: PassPipeline, capacity: usize) -> Engine {
        Engine::on_backend_tiered(backend, pipeline, capacity, None, None)
    }

    fn on_backend_tiered(
        backend: Arc<dyn Backend>,
        pipeline: PassPipeline,
        capacity: usize,
        tier: Option<Arc<TierCounters>>,
        persistent: Option<Arc<fir_cache::Store>>,
    ) -> Engine {
        Engine {
            inner: Arc::new(EngineInner {
                backend,
                pipeline: Mutex::new(pipeline),
                cache: Mutex::new(LruCache::new(capacity)),
                tick: AtomicU64::new(0),
                view: ViewCell::new(),
                derived: Mutex::new(HashMap::new()),
                hits: AtomicUsize::new(0),
                misses: AtomicUsize::new(0),
                opt: Mutex::new(OptStats::default()),
                tier,
                persistent,
            }),
        }
    }

    /// An engine on the backend registered under `name` (see
    /// [`crate::BACKEND_NAMES`]). Unknown names return
    /// [`FirError::UnknownBackend`] listing the valid names. The jit
    /// names (`vm-jit`, `vm-jit-seq`) build a tiered engine whose
    /// [`CacheStats::tier`] counters are live.
    pub fn by_name(name: &str) -> Result<Engine, FirError> {
        Engine::builder().backend_name(name).build()
    }

    /// An engine on the backend named by the `FIR_BACKEND` environment
    /// variable (default: `"vm"`). An unknown name is an error listing the
    /// valid names — it does not panic.
    pub fn from_env() -> Result<Engine, FirError> {
        Engine::by_name(&registry::default_backend_name())
    }

    /// A new engine on the same backend with a different pass pipeline
    /// (builder style). The returned engine has its own (empty) cache;
    /// the original engine — and any clone of it — is left untouched, so
    /// `engine.clone().with_pipeline(...)` safely builds an unoptimized
    /// variant next to the original.
    pub fn with_pipeline(self, pipeline: PassPipeline) -> Engine {
        let capacity = self.inner.cache.lock().unwrap().capacity;
        // The persistent store is shared: its key includes the pipeline
        // configuration, so variants never collide on disk.
        Engine::on_backend_tiered(
            Arc::clone(&self.inner.backend),
            pipeline,
            capacity,
            self.inner.tier.clone(),
            self.inner.persistent.clone(),
        )
    }

    /// Replace the pass pipeline in place. This reconfigures *every*
    /// clone of this engine (they share the pipeline) and clears the
    /// shared cache, since cached programs were optimized under the old
    /// pipeline. For a side-by-side variant, use
    /// [`Engine::with_pipeline`].
    pub fn set_pipeline(&self, pipeline: PassPipeline) {
        *self.inner.pipeline.lock().unwrap() = pipeline;
        self.inner.cache.lock().unwrap().map.clear();
        // Derived-program aliases are pipeline-independent (derivation
        // happens on pre-pipeline IR), but clear them too so a
        // reconfigured engine starts from a clean slate.
        self.inner.derived.lock().unwrap().clear();
        self.inner.republish();
    }

    /// The name of the engine's backend.
    pub fn backend_name(&self) -> &'static str {
        self.inner.backend.name()
    }

    /// Compile `fun`: type-check up front, run the pass pipeline, prepare
    /// on the backend. Structurally identical functions (same fingerprint)
    /// compile once; later calls are answered from the cache.
    pub fn compile(&self, fun: &Fun) -> Result<CompiledFn, FirError> {
        Self::compile_with(&self.inner, fun)
    }

    fn compile_with(inner: &Arc<EngineInner>, fun: &Fun) -> Result<CompiledFn, FirError> {
        let key = fingerprint_pair(fun);
        let persist = Persist {
            root: key,
            stack: String::new(),
            try_load: true,
        };
        let entry = Self::compile_entry(inner, key, fun, Some(persist))?;
        Ok(CompiledFn::new(Arc::clone(inner), entry, key, Vec::new()))
    }

    /// Compile `fun` under `key` (its fingerprint), answering from the
    /// cache when possible and counting the hit/miss either way. `persist`
    /// names the on-disk identity of this compilation — the *root*
    /// fingerprint plus the canonical transform-stack string — when the
    /// result should flow through the persistent store (with `try_load`
    /// cleared when the caller already consulted it).
    fn compile_entry(
        inner: &Arc<EngineInner>,
        key: Fingerprint,
        fun: &Fun,
        persist: Option<Persist>,
    ) -> Result<CacheEntry, FirError> {
        // Hot path: the published snapshot answers without touching the
        // cache mutex, so concurrent cache hits never contend — the
        // property the sharded serving tier depends on.
        if let Some(entry) = inner.lookup_published(&key) {
            inner.hits.fetch_add(1, Ordering::Relaxed);
            fir_trace::instant("cache", "hit");
            return Ok(entry);
        }
        // The snapshot may lag a concurrent insert; check the live cache
        // under its lock before paying for a compile.
        if let Some(entry) = inner.cache.lock().unwrap().get(&key, &inner.tick) {
            inner.hits.fetch_add(1, Ordering::Relaxed);
            fir_trace::instant("cache", "hit");
            return Ok(entry);
        }
        // The persistent tier, before any compile work: a disk hit
        // rebuilds the in-memory entry and skips typecheck, pipeline, and
        // backend compilation entirely.
        if let Some(p) = persist.as_ref().filter(|p| p.try_load) {
            if let Some((loaded_key, entry)) = Self::persist_load(inner, p.root, &p.stack) {
                debug_assert_eq!(loaded_key, key, "root entry keyed off its own source");
                return Ok(entry);
            }
        }
        fir_trace::instant("cache", "miss");
        let _compile_span = fir_trace::span_str("compile", &fun.name);
        {
            let _span = fir_trace::span("compile", "typecheck");
            fir::typecheck::check_fun(fun)?;
        }
        let pipeline = inner.pipeline.lock().unwrap().clone();
        let (optimized, opt_stats) = {
            let _span = fir_trace::span("compile", "pipeline");
            pipeline.apply_with_stats(fun)
        };
        inner.opt.lock().unwrap().absorb(&opt_stats);
        let exec = {
            let _span = fir_trace::span("compile", "backend-prepare");
            inner.backend.prepare(&optimized)?
        };
        // Memplanned pipelines size a per-invocation arena for the
        // program: compute the buffer plan from the optimized IR and
        // reserve its slots for the entry's lifetime. (If the concurrent-
        // insert race below keeps another thread's entry, dropping ours
        // releases the reservation again.)
        let plan = if pipeline.passes().contains(&crate::Pass::MemPlan) {
            let p = fir_opt::plan_buffers(&optimized);
            let slots = p.slots();
            arena::reserve_slots(slots);
            inner.opt.lock().unwrap().slots_planned += slots;
            fir_trace::instant("compile", "memplan");
            Some(Arc::new(PlanInfo { slots }))
        } else {
            None
        };
        // An empty pipeline returns a borrow: source and optimized IR are
        // the same function, stored once and shared.
        let (source, optimized) = match optimized {
            std::borrow::Cow::Borrowed(_) => {
                let shared = Arc::new(fun.clone());
                (Arc::clone(&shared), shared)
            }
            std::borrow::Cow::Owned(opt) => (Arc::new(fun.clone()), Arc::new(opt)),
        };
        let entry = CacheEntry {
            source,
            fun: optimized,
            exec,
            plan,
        };
        // Another thread may have compiled the same function meanwhile;
        // keep the first entry so the executable stays shared.
        let (entry, evicted) = inner.cache.lock().unwrap().insert(key, entry, &inner.tick);
        if !evicted.is_empty() {
            // Drop aliases that point at evicted programs so the derived
            // index stays proportional to the *live* cache: without this
            // an engine compiling a stream of distinct functions would
            // grow the index without bound while the cache stays capped.
            // (A re-requested stack just re-derives and re-aliases.)
            inner
                .derived
                .lock()
                .unwrap()
                .retain(|_, target| !evicted.contains(target));
        }
        inner.misses.fetch_add(1, Ordering::Relaxed);
        inner.republish();
        if let Some(p) = &persist {
            Self::persist_store(inner, p.root, &p.stack, &entry);
        }
        Ok(entry)
    }

    /// Consult the persistent store for the program of `(root, stack)`
    /// under the engine's current pipeline and backend. On a hit, rebuild
    /// the in-memory [`CacheEntry`] — adopting the decoded bytecode into
    /// the VM's program cache with a **fresh** tier slot (promotion state
    /// is never persisted) — insert it into the LRU cache under the
    /// decoded source's fingerprint, and return both. Neither engine
    /// `hits` nor `misses` move: those count in-memory outcomes, and the
    /// CI warm-start check relies on `misses == 0` meaning "no compile
    /// ran".
    fn persist_load(
        inner: &Arc<EngineInner>,
        root: Fingerprint,
        stack: &str,
    ) -> Option<(Fingerprint, CacheEntry)> {
        let store = inner.persistent.as_ref()?;
        let pipeline = inner.pipeline.lock().unwrap().clone();
        let pipeline_key = pipeline.cache_key();
        let pkey = fir_cache::StoreKey {
            fingerprint: root,
            transforms: stack,
            pipeline: &pipeline_key,
            backend: inner.backend.name(),
        };
        let cached = {
            let _span = fir_trace::span("cache", "load");
            store.load(&pkey)?
        };
        let key = fingerprint_pair(&cached.source);
        if stack.is_empty() && key != root {
            // A root entry's source must *be* the root function; anything
            // else is a stale or colliding entry.
            store.invalidate(&pkey);
            return None;
        }
        let source = Arc::new(cached.source);
        let optimized = match cached.optimized {
            Some(f) => Arc::new(f),
            None => Arc::clone(&source),
        };
        let exec = match inner.backend.as_any().downcast_ref::<firvm::Vm>() {
            Some(vm) => vm.prepare_adopted(&optimized, cached.program),
            // A non-VM backend cannot adopt bytecode; re-prepare from the
            // stored optimized IR, which still skips the typecheck, the
            // derivation, and the pipeline.
            None => match inner.backend.prepare(&optimized) {
                Ok(exec) => exec,
                Err(_) => {
                    store.invalidate(&pkey);
                    return None;
                }
            },
        };
        let plan = if pipeline.passes().contains(&crate::Pass::MemPlan) {
            let slots = fir_opt::plan_buffers(&optimized).slots();
            arena::reserve_slots(slots);
            Some(Arc::new(PlanInfo { slots }))
        } else {
            None
        };
        let entry = CacheEntry {
            source,
            fun: optimized,
            exec,
            plan,
        };
        let (entry, evicted) = inner.cache.lock().unwrap().insert(key, entry, &inner.tick);
        if !evicted.is_empty() {
            inner
                .derived
                .lock()
                .unwrap()
                .retain(|_, target| !evicted.contains(target));
        }
        fir_trace::instant("cache", "persistent-hit");
        inner.republish();
        Some((key, entry))
    }

    /// Write a freshly compiled entry back to the persistent store, best
    /// effort: backends whose executables carry no extractable bytecode
    /// (the interpreter) and I/O failures are silently skipped — the
    /// store is a cache, never a correctness dependency.
    fn persist_store(inner: &EngineInner, root: Fingerprint, stack: &str, entry: &CacheEntry) {
        let Some(store) = inner.persistent.as_ref() else {
            return;
        };
        let Some(program) = firvm::Vm::program_of(entry.exec.as_ref()) else {
            return;
        };
        let pipeline_key = inner.pipeline.lock().unwrap().cache_key();
        let pkey = fir_cache::StoreKey {
            fingerprint: root,
            transforms: stack,
            pipeline: &pipeline_key,
            backend: inner.backend.name(),
        };
        let cached = fir_cache::CachedEntry {
            source: (*entry.source).clone(),
            optimized: if Arc::ptr_eq(&entry.source, &entry.fun) {
                None
            } else {
                Some((*entry.fun).clone())
            },
            program: (*program).clone(),
        };
        let _span = fir_trace::span("cache", "store");
        let _ = store.store(&pkey, &cached);
    }

    /// Apply one [`Transform`] on top of `base` (a handle whose stack is
    /// `base.stack`): consult the derived-program index, re-derive and
    /// compile only when the target is not cached.
    fn transform_one(base: &CompiledFn, t: Transform) -> Result<CompiledFn, FirError> {
        let inner = &base.engine;
        let mut stack = base.stack.clone();
        stack.push(t);
        let alias = (base.root_key, stack);
        // Hot path: the published snapshot answers alias → entry with no
        // locks at all (a `grad`/`transform` on an already-derived stack
        // — every serving-batch dispatch — contends on nothing).
        {
            let view = inner.view.load();
            if let Some(key) = view.aliases.get(&alias) {
                if let Some((entry, last_used)) = view.map.get(key) {
                    last_used.store(
                        inner.tick.fetch_add(1, Ordering::Relaxed) + 1,
                        Ordering::Relaxed,
                    );
                    inner.hits.fetch_add(1, Ordering::Relaxed);
                    fir_trace::instant("cache", "alias-hit");
                    return Ok(CompiledFn::new(
                        Arc::clone(inner),
                        entry.clone(),
                        base.root_key,
                        alias.1,
                    ));
                }
            }
        }
        // Stale-snapshot fallback: the live index under its lock. (The
        // index guard is released before the cache lock is taken, so
        // concurrent callers never serialize on both mutexes at once.)
        let known = inner.derived.lock().unwrap().get(&alias).copied();
        if let Some(key) = known {
            if let Some(entry) = inner.cache.lock().unwrap().get(&key, &inner.tick) {
                inner.hits.fetch_add(1, Ordering::Relaxed);
                fir_trace::instant("cache", "alias-hit");
                return Ok(CompiledFn::new(
                    Arc::clone(inner),
                    entry,
                    base.root_key,
                    alias.1,
                ));
            }
        }
        // The persistent tier, *before* deriving: a disk hit hands back
        // the already-derived, already-compiled program, skipping the
        // derivation itself (for `vjp` of a large workload, the dominant
        // cost). The loaded entry lands in the LRU cache under the
        // decoded source's fingerprint and is aliased like a compiled one.
        let stack_str = stack_key(&alias.1);
        if let Some((key, entry)) = Self::persist_load(inner, base.root_key, &stack_str) {
            inner.derived.lock().unwrap().insert(alias.clone(), key);
            inner.republish();
            return Ok(CompiledFn::new(
                Arc::clone(inner),
                entry,
                base.root_key,
                alias.1,
            ));
        }
        // Derive from the pre-pipeline source of the base handle (which
        // already carries `base.stack` applied to the root), so gradients
        // are identical whatever pipeline the engine runs. Derivation is
        // deterministic: the fingerprint (and thus the cache slot) of a
        // `(root, stack)` pair is stable across handles and evictions.
        let fun = {
            let _span = fir_trace::span("compile", t.name()).with_arg(base.stack.len() as u64 + 1);
            t.apply(&base.entry.source)?
        };
        let key = fingerprint_pair(&fun);
        let persist = Persist {
            root: base.root_key,
            stack: stack_str,
            try_load: false,
        };
        let entry = Self::compile_entry(inner, key, &fun, Some(persist))?;
        inner.derived.lock().unwrap().insert(alias.clone(), key);
        inner.republish();
        Ok(CompiledFn::new(
            Arc::clone(inner),
            entry,
            base.root_key,
            alias.1,
        ))
    }

    /// Aggregate optimizer statistics across every function this engine
    /// compiled (see [`OptStats`]), alongside [`Engine::cache_stats`].
    pub fn opt_stats(&self) -> OptStats {
        self.inner.opt.lock().unwrap().clone()
    }

    /// Cache counters (hits, misses, live entries, evictions) — and, on a
    /// jit-tiered engine, the tier counters.
    pub fn cache_stats(&self) -> CacheStats {
        let cache = self.inner.cache.lock().unwrap();
        CacheStats {
            hits: self.inner.hits.load(Ordering::Relaxed),
            misses: self.inner.misses.load(Ordering::Relaxed),
            entries: cache.map.len(),
            evictions: cache.evictions,
            capacity: cache.capacity,
            tier: self.inner.tier.as_ref().map(|c| {
                let (promotions, jit_hits, fallbacks) = c.snapshot();
                TierStats {
                    promotions,
                    jit_hits,
                    fallbacks,
                }
            }),
            arena: interp::alloc_stats(),
            persistent: self.inner.persistent.as_ref().map(|s| s.stats()),
        }
    }
}

// ---------------------------------------------------------------------
// EngineBuilder
// ---------------------------------------------------------------------

enum BackendChoice {
    /// The process default (`FIR_BACKEND`, falling back to the VM).
    Env,
    Named(String),
    Instance(Box<dyn Backend>),
}

/// A builder for [`Engine`]s with non-default configuration.
///
/// ```
/// use fir_api::{Engine, PassPipeline};
///
/// let engine = Engine::builder()
///     .backend_name("vm-seq")
///     .pipeline(PassPipeline::standard())
///     .cache_capacity(16)
///     .build()?;
/// assert_eq!(engine.backend_name(), "firvm");
/// assert_eq!(engine.cache_stats().capacity, 16);
/// # Ok::<(), fir_api::FirError>(())
/// ```
pub struct EngineBuilder {
    backend: BackendChoice,
    pipeline: PassPipeline,
    cache_capacity: usize,
    jit_threshold: Option<u64>,
    persistent_cache: Option<PathBuf>,
}

impl Default for EngineBuilder {
    fn default() -> EngineBuilder {
        EngineBuilder::new()
    }
}

impl EngineBuilder {
    /// A builder with the defaults of [`Engine::from_env`]: the backend
    /// named by `FIR_BACKEND` (default: the compiled VM), the standard
    /// pipeline, and a cache bound of [`DEFAULT_CACHE_CAPACITY`].
    pub fn new() -> EngineBuilder {
        EngineBuilder {
            backend: BackendChoice::Env,
            pipeline: PassPipeline::standard(),
            cache_capacity: DEFAULT_CACHE_CAPACITY,
            jit_threshold: None,
            persistent_cache: None,
        }
    }

    /// Use the backend registered under `name`; resolution (and the
    /// unknown-name error) happens in [`EngineBuilder::build`].
    pub fn backend_name(mut self, name: &str) -> EngineBuilder {
        self.backend = BackendChoice::Named(name.to_string());
        self
    }

    /// Use an explicit backend instance.
    pub fn backend(mut self, backend: Box<dyn Backend>) -> EngineBuilder {
        self.backend = BackendChoice::Instance(backend);
        self
    }

    /// The pass pipeline programs are optimized under.
    pub fn pipeline(mut self, pipeline: PassPipeline) -> EngineBuilder {
        self.pipeline = pipeline;
        self
    }

    /// Bound the compiled-program cache to `capacity` entries (clamped to
    /// at least 1); compiling past the bound evicts the least-recently-used
    /// program, counted in [`CacheStats::evictions`].
    pub fn cache_capacity(mut self, capacity: usize) -> EngineBuilder {
        self.cache_capacity = capacity.max(1);
        self
    }

    /// Promote programs to the `fir-jit` specialization tier once their
    /// run count reaches `threshold`. Selects the jit-tiered VM: on the
    /// plain VM names (`vm`, `vm-seq`, and the env default when it
    /// resolves to one of them) this upgrades the backend to its `-jit`
    /// variant; on the jit names it tunes the threshold (which otherwise
    /// defaults to `fir_jit::DEFAULT_THRESHOLD`). Combining it with the
    /// interpreter or an explicit backend instance is an error at
    /// [`EngineBuilder::build`] — construct tiered instances with
    /// `fir_jit::vm_with` instead.
    pub fn jit_threshold(mut self, threshold: u64) -> EngineBuilder {
        self.jit_threshold = Some(threshold);
        self
    }

    /// Persist compiled programs under `dir` (created if missing) and
    /// consult that directory before compiling: across process restarts,
    /// a program whose `(source fingerprint, transform stack, pipeline,
    /// backend, format version)` matches an on-disk entry loads its
    /// bytecode instead of re-deriving, re-optimizing, and re-compiling.
    /// Any mismatch — including a codec format-version bump — recompiles
    /// and overwrites the stale entry. Several processes may share one
    /// directory (writes are atomic); counters surface through
    /// [`CacheStats::persistent`].
    pub fn persistent_cache(mut self, dir: impl Into<PathBuf>) -> EngineBuilder {
        self.persistent_cache = Some(dir.into());
        self
    }

    /// Build the engine. Fails on an unknown backend name, or on a
    /// [`EngineBuilder::jit_threshold`] paired with a backend that has no
    /// jit tier.
    pub fn build(self) -> Result<Engine, FirError> {
        let (backend, tier): ResolvedBackend = match self.backend {
            BackendChoice::Env => {
                Self::resolve(&registry::default_backend_name(), self.jit_threshold)?
            }
            BackendChoice::Named(name) => Self::resolve(&name, self.jit_threshold)?,
            BackendChoice::Instance(backend) => {
                if self.jit_threshold.is_some() {
                    return Err(FirError::Unsupported {
                        what: "jit_threshold with an explicit backend instance \
                               (build the tiered backend with fir_jit::vm_with \
                               and pass it directly)"
                            .to_string(),
                    });
                }
                (backend, None)
            }
        };
        let persistent = match self.persistent_cache {
            None => None,
            Some(dir) => Some(Arc::new(fir_cache::Store::open(&dir).map_err(|e| {
                FirError::Unsupported {
                    what: format!("persistent cache directory `{}`: {e}", dir.display()),
                }
            })?)),
        };
        Ok(Engine::on_backend_tiered(
            Arc::from(backend),
            self.pipeline,
            self.cache_capacity,
            tier,
            persistent,
        ))
    }

    /// Resolve a backend name together with the optional jit threshold.
    fn resolve(name: &str, threshold: Option<u64>) -> Result<ResolvedBackend, FirError> {
        let jit = |sequential| {
            let (b, c) =
                registry::jit_backend(sequential, threshold.unwrap_or(fir_jit::DEFAULT_THRESHOLD));
            Ok((b, Some(c)))
        };
        match name {
            "vm-jit" | "firvm-jit" => jit(false),
            "vm-jit-seq" | "firvm-jit-seq" => jit(true),
            "vm" | "firvm" if threshold.is_some() => jit(false),
            "vm-seq" | "firvm-seq" if threshold.is_some() => jit(true),
            other if threshold.is_some() => Err(FirError::Unsupported {
                what: format!("jit_threshold on backend `{other}` (the jit tier runs on the VM)"),
            }),
            other => Ok((registry::backend_by_name(other)?, None)),
        }
    }
}

/// A resolved backend, plus its tier counters when it is jit-tiered.
type ResolvedBackend = (Box<dyn Backend>, Option<Arc<TierCounters>>);

// ---------------------------------------------------------------------
// Typed results
// ---------------------------------------------------------------------

/// The result of a reverse-mode call ([`CompiledFn::grad`]): the primal
/// results plus one adjoint per differentiable parameter, in parameter
/// order.
#[derive(Debug, Clone)]
pub struct GradOutput {
    /// The primal results (all of them, in declaration order).
    pub value: Vec<Value>,
    /// The adjoints of the differentiable parameters, in parameter order.
    pub grads: Vec<Value>,
}

impl GradOutput {
    /// The first primal result as a scalar `f64` (the common
    /// scalar-objective case).
    pub fn scalar(&self) -> f64 {
        self.value[0].as_f64()
    }

    /// All adjoints flattened into one `f64` vector, in parameter order.
    pub fn flat_grads(&self) -> Vec<f64> {
        flatten_f64(&self.grads)
    }
}

/// The result of a forward-mode call ([`CompiledFn::pushforward`]): primal
/// results paired with the tangents of the differentiable results.
#[derive(Debug, Clone)]
pub struct Dual {
    /// The primal results (all of them, in declaration order).
    pub value: Vec<Value>,
    /// The tangents of the differentiable results, in result order.
    pub tangent: Vec<Value>,
}

impl Dual {
    /// The first primal result as a scalar `f64`.
    pub fn scalar(&self) -> f64 {
        self.value[0].as_f64()
    }

    /// All tangents flattened into one `f64` vector.
    pub fn flat_tangents(&self) -> Vec<f64> {
        flatten_f64(&self.tangent)
    }
}

fn flatten_f64(vals: &[Value]) -> Vec<f64> {
    let mut out = Vec::new();
    for v in vals {
        match v {
            Value::F64(x) => out.push(*x),
            Value::Arr(a) if a.elem() == fir::types::ScalarType::F64 => {
                out.extend_from_slice(a.f64s())
            }
            _ => {}
        }
    }
    out
}

/// A value of ones with the same type and shape as `v` (differentiable
/// values only).
fn ones_like(v: &Value) -> Value {
    match v {
        Value::F64(_) => Value::F64(1.0),
        Value::Arr(a) => Value::Arr(Array::from_f64(a.shape.clone(), vec![1.0; a.f64s().len()])),
        other => unreachable!("ones_like of non-differentiable value {other:?}"),
    }
}

/// A value of zeros with the same type and shape as `v` (differentiable
/// values only).
fn zeros_like(v: &Value) -> Value {
    match v {
        Value::F64(_) => Value::F64(0.0),
        Value::Arr(a) => Value::Arr(Array::zeros(a.elem(), a.shape.clone())),
        other => unreachable!("zeros_like of non-differentiable value {other:?}"),
    }
}

// ---------------------------------------------------------------------
// CompiledFn
// ---------------------------------------------------------------------

/// A function compiled by an [`Engine`]: an executable handle that can
/// derive further programs by applying a stack of [`Transform`]s
/// ([`CompiledFn::transform`] and the fluent [`CompiledFn::vjp`] /
/// [`CompiledFn::jvp`] / [`CompiledFn::vmap`] sugar). Cheap to clone;
/// handles of the same `(source fingerprint, transform stack)` share one
/// executable through the engine cache, and a handle keeps its program
/// alive (`Arc`-held) even after the cache evicts the entry.
#[derive(Clone)]
pub struct CompiledFn {
    engine: Arc<EngineInner>,
    entry: CacheEntry,
    /// Fingerprint of the *root* (untransformed) source this handle was
    /// derived from — equal to the entry's own source fingerprint when
    /// `stack` is empty.
    root_key: Fingerprint,
    /// The transforms applied to the root, in application order.
    stack: Vec<Transform>,
}

impl std::fmt::Debug for CompiledFn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompiledFn")
            .field("fun", &self.entry.fun.name)
            .field("transforms", &self.stack)
            .field("backend", &self.engine.backend.name())
            .finish()
    }
}

impl CompiledFn {
    fn new(
        engine: Arc<EngineInner>,
        entry: CacheEntry,
        root_key: Fingerprint,
        stack: Vec<Transform>,
    ) -> CompiledFn {
        CompiledFn {
            engine,
            entry,
            root_key,
            stack,
        }
    }

    /// The function name.
    pub fn name(&self) -> &str {
        &self.entry.fun.name
    }

    /// The transform stack applied to the root source (empty for a
    /// directly compiled function), in application order.
    pub fn transforms(&self) -> &[Transform] {
        &self.stack
    }

    /// The compiled (pipeline-optimized) IR.
    pub fn fun(&self) -> &Fun {
        &self.entry.fun
    }

    /// The declared parameter types.
    pub fn param_types(&self) -> &[Type] {
        self.entry.exec.param_types()
    }

    /// The declared result types.
    pub fn result_types(&self) -> &[Type] {
        self.entry.exec.result_types()
    }

    // -- execution ----------------------------------------------------

    /// Open this program's per-invocation arena scope on the calling
    /// thread, when the program was compiled with a buffer plan
    /// ([`Pass::MemPlan`]): buffers the execution publishes can then be
    /// retained and recycled across invocations, up to the plan's slot
    /// count. `None` (no plan) leaves allocation behavior untouched.
    fn arena_scope(&self) -> Option<interp::ArenaScope> {
        self.entry.plan.as_ref().map(|p| arena::scope(p.slots))
    }

    /// Execute on `args`. Arity/type mismatches and runtime failures are
    /// `Err`, never a panic.
    pub fn call(&self, args: &[Value]) -> Result<Vec<Value>, FirError> {
        let _arena = self.arena_scope();
        self.entry.exec.run(args).map_err(FirError::from)
    }

    /// Execute a function whose first result is a scalar `f64`.
    pub fn call_scalar(&self, args: &[Value]) -> Result<f64, FirError> {
        let _arena = self.arena_scope();
        self.entry.exec.run_scalar(args).map_err(FirError::from)
    }

    /// Execute one call per argument list, scheduling the calls on the
    /// persistent worker pool. The per-call dispatch (and, on sequential
    /// backends, the whole evaluation) runs concurrently, which amortizes
    /// engine overhead across a batch of requests — the serving-path
    /// counterpart of per-SOAC parallelism. Results are returned in batch
    /// order; the first failing call's error is returned (every request
    /// still runs — see [`CompiledFn::call_batch_results`] for the
    /// per-request outcomes).
    pub fn call_batch(&self, batch: &[Vec<Value>]) -> Result<Vec<Vec<Value>>, FirError> {
        self.call_batch_results(batch).into_iter().collect()
    }

    /// [`CompiledFn::call_batch`] with per-request error isolation: one
    /// malformed or failing request yields its own `Err` slot and does not
    /// take down its batchmates. This is the execution primitive of the
    /// `fir-serve` micro-batcher.
    pub fn call_batch_results(&self, batch: &[Vec<Value>]) -> Vec<Result<Vec<Value>, FirError>> {
        let exec = &self.entry.exec;
        let plan = &self.entry.plan;
        WorkerPool::global().run_tasks(batch.len(), &|i| {
            let _arena = plan.as_ref().map(|p| arena::scope(p.slots));
            exec.run(&batch[i]).map_err(FirError::from)
        })
    }

    /// [`CompiledFn::call_batch_results`], but when every request shares
    /// the same argument shapes the whole batch executes as *one* fused
    /// program — the [`Transform::Vmap`] of this function, its body mapped
    /// over a stacked batch dimension — which amortizes the entire
    /// per-call dispatch instead of just the scheduling. Falls back to
    /// task-parallel batching (preserving per-request error isolation)
    /// whenever requests are malformed, shapes disagree, or the vmapped
    /// program is unavailable or fails. Results are bitwise-identical to
    /// [`CompiledFn::call`] either way.
    pub fn call_batch_fused(&self, batch: &[Vec<Value>]) -> Vec<Result<Vec<Value>, FirError>> {
        if batch.len() >= 2
            && batch
                .iter()
                .all(|args| validate_args(self.name(), self.param_types(), args).is_ok())
        {
            if let Ok(fused) = self.vmap() {
                if let Some(stacked) = crate::batch::stack_args(batch) {
                    if let Ok(outs) = fused.call(&stacked) {
                        return crate::batch::unstack_results(
                            &self.entry.fun.ret,
                            &outs,
                            batch.len(),
                        )
                        .into_iter()
                        .map(Ok)
                        .collect();
                    }
                }
            }
        }
        self.call_batch_results(batch)
    }

    // -- derived transforms -------------------------------------------

    /// Apply a stack of [`Transform`]s on top of this handle's own stack,
    /// left to right: `f.transform(&[Vjp, Vmap])` is `vmap(vjp(f))`.
    ///
    /// Each step derives a new function from the previous step's
    /// *pre-pipeline* source (so the derived IR — and therefore every
    /// gradient — is identical whatever pipeline the engine runs),
    /// re-runs the pass pipeline, and lands in the engine cache keyed on
    /// `(root source fingerprint, transform stack)`: one compilation per
    /// distinct stack per engine, LRU-evicted like every other program,
    /// re-derived and recompiled transparently (a counted miss) if
    /// evicted. The returned handle holds its program by `Arc`, so it
    /// stays valid even after eviction.
    ///
    /// An empty stack returns a clone of this handle.
    pub fn transform(&self, transforms: &[Transform]) -> Result<CompiledFn, FirError> {
        let mut cur = self.clone();
        for &t in transforms {
            cur = Engine::transform_one(&cur, t)?;
        }
        Ok(cur)
    }

    /// The reverse-mode transform of this function:
    /// `self.transform(&[Transform::Vjp])`.
    ///
    /// The transformed function takes the original arguments plus one
    /// adjoint seed per differentiable result and returns the primal
    /// results plus one adjoint per differentiable parameter. For
    /// seed-free calling, use [`CompiledFn::grad`].
    pub fn vjp(&self) -> Result<CompiledFn, FirError> {
        self.transform(&[Transform::Vjp])
    }

    /// The forward-mode transform of this function:
    /// `self.transform(&[Transform::Jvp])`. The transformed function
    /// takes the original arguments plus one tangent per differentiable
    /// parameter. For zero-filled tangent calling, use
    /// [`CompiledFn::pushforward`].
    pub fn jvp(&self) -> Result<CompiledFn, FirError> {
        self.transform(&[Transform::Jvp])
    }

    /// The vectorizing-map transform of this function:
    /// `self.transform(&[Transform::Vmap])`. Every parameter and result
    /// gains one leading (batch) dimension; because types carry only
    /// rank, the one derived program serves every batch size. Compose
    /// with AD for per-example gradients: `f.vjp()?.vmap()?` maps the
    /// seeded vjp over a stacked batch, `f.vmap()?.vjp()?`
    /// differentiates the vectorized function — both compute per-example
    /// gradients, bitwise-identical to a per-example loop.
    pub fn vmap(&self) -> Result<CompiledFn, FirError> {
        self.transform(&[Transform::Vmap])
    }

    /// Forward-over-reverse (`jvp ∘ vjp`, i.e.
    /// `self.transform(&[Transform::Vjp, Transform::Jvp])`): the
    /// transform used for Hessian-vector products. See
    /// [`CompiledFn::hvp`] for the seeded convenience wrapper.
    pub fn hessian(&self) -> Result<CompiledFn, FirError> {
        self.transform(&[Transform::Vjp, Transform::Jvp])
    }

    // -- seeded conveniences ------------------------------------------

    /// Unit adjoint seeds for this function's differentiable results,
    /// derived from the registered result types: `1.0` for scalar results;
    /// all-ones arrays (matching the primal output shapes, which requires
    /// one primal evaluation) for array results. With these seeds, reverse
    /// mode computes the gradient of the *sum* of all differentiable
    /// results.
    pub fn unit_seeds(&self, args: &[Value]) -> Result<Vec<Value>, FirError> {
        let ret = &self.entry.fun.ret;
        let diff: Vec<&Type> = ret.iter().filter(|t| t.is_differentiable()).collect();
        if diff.is_empty() {
            return Err(FirError::Unsupported {
                what: format!("`{}` has no differentiable result to seed", self.name()),
            });
        }
        if diff.iter().all(|t| t.is_scalar()) {
            return Ok(vec![Value::F64(1.0); diff.len()]);
        }
        // Array-valued results: shapes are only known at run time, so
        // evaluate the primal once and build ones of each output's shape.
        let primal = self.call(args)?;
        Ok(primal
            .iter()
            .zip(ret)
            .filter(|(_, t)| t.is_differentiable())
            .map(|(v, _)| ones_like(v))
            .collect())
    }

    /// Run reverse mode with auto-derived unit seeds (see
    /// [`CompiledFn::unit_seeds`]): returns the primal results and the
    /// adjoint of every differentiable parameter.
    pub fn grad(&self, args: &[Value]) -> Result<GradOutput, FirError> {
        validate_args(self.name(), self.param_types(), args)?;
        let handle = self.vjp()?;
        let mut full = args.to_vec();
        full.extend(self.unit_seeds(args)?);
        let out = handle.call(&full)?;
        Ok(self.split_grad(out))
    }

    /// [`CompiledFn::grad`] over a batch of argument lists, scheduled on
    /// the worker pool like [`CompiledFn::call_batch`]. The first failing
    /// request's error is returned; see
    /// [`CompiledFn::grad_batch_results`] for per-request outcomes.
    pub fn grad_batch(&self, batch: &[Vec<Value>]) -> Result<Vec<GradOutput>, FirError> {
        self.grad_batch_results(batch)?.into_iter().collect()
    }

    /// [`CompiledFn::grad_batch`] with per-request error isolation: a
    /// malformed request (bad arity/types, failed seed derivation) or a
    /// runtime failure yields its own `Err` slot; its batchmates still run
    /// and succeed. The outer `Err` is reserved for function-level
    /// failures that would fail every request identically (the vjp
    /// transform does not compile, or the function has no differentiable
    /// result to seed).
    pub fn grad_batch_results(
        &self,
        batch: &[Vec<Value>],
    ) -> Result<Vec<Result<GradOutput, FirError>>, FirError> {
        let handle = self.vjp()?;
        let full = self.grad_full_args(batch)?;
        Ok(self.grad_run_full(&handle, &full))
    }

    /// Run already-seeded vjp argument lists task-parallel on the pool,
    /// preserving per-request slots.
    fn grad_run_full(
        &self,
        handle: &CompiledFn,
        full: &[Result<Vec<Value>, FirError>],
    ) -> Vec<Result<GradOutput, FirError>> {
        let exec = &handle.entry.exec;
        let plan = &handle.entry.plan;
        WorkerPool::global().run_tasks(full.len(), &|i| match &full[i] {
            Err(e) => Err(e.clone()),
            Ok(args) => {
                let _arena = plan.as_ref().map(|p| arena::scope(p.slots));
                exec.run(args)
                    .map_err(FirError::from)
                    .map(|out| self.split_grad(out))
            }
        })
    }

    /// [`CompiledFn::grad_batch_results`] with fused execution: when every
    /// request is well-formed and shares the same shapes, the whole batch
    /// of seeded vjp calls runs as one `vmap(vjp(f))` program (the
    /// transform stack `[Vjp, Vmap]`, compiled once and cached). Falls
    /// back to the task-parallel per-request path otherwise; results are
    /// bitwise-identical to [`CompiledFn::grad`] either way.
    pub fn grad_batch_fused(
        &self,
        batch: &[Vec<Value>],
    ) -> Result<Vec<Result<GradOutput, FirError>>, FirError> {
        let handle = self.vjp()?;
        let full = self.grad_full_args(batch)?;
        if batch.len() >= 2 && full.iter().all(|r| r.is_ok()) {
            let fulls: Vec<&Vec<Value>> =
                full.iter().map(|r| r.as_ref().expect("all ok")).collect();
            if let Ok(fused) = handle.vmap() {
                if let Some(stacked) = crate::batch::stack_args(&fulls) {
                    if let Ok(outs) = fused.call(&stacked) {
                        return Ok(crate::batch::unstack_results(
                            &handle.entry.fun.ret,
                            &outs,
                            batch.len(),
                        )
                        .into_iter()
                        .map(|out| Ok(self.split_grad(out)))
                        .collect());
                    }
                }
            }
        }
        // Fall back to the task-parallel path, reusing the seeded args
        // (for array-valued results, seeding ran the primal once per
        // request — never recompute it).
        Ok(self.grad_run_full(&handle, &full))
    }

    /// The seeded vjp argument list of every request: original args plus
    /// unit adjoint seeds. For all-scalar differentiable results (every
    /// workload objective) the seeds are a constant of the signature and
    /// derived once for the whole batch; array-valued results need
    /// per-request primal shapes. The outer `Err` is a function-level
    /// failure (nothing differentiable to seed); per-request problems
    /// land in that request's slot.
    fn grad_full_args(
        &self,
        batch: &[Vec<Value>],
    ) -> Result<Vec<Result<Vec<Value>, FirError>>, FirError> {
        let ret = &self.entry.fun.ret;
        let all_scalar = ret
            .iter()
            .filter(|t| t.is_differentiable())
            .all(|t| t.is_scalar());
        if all_scalar && ret.iter().all(|t| !t.is_differentiable()) {
            // No differentiable result at all: every request fails the
            // same way, which is a function-level error.
            return Err(FirError::Unsupported {
                what: format!("`{}` has no differentiable result to seed", self.name()),
            });
        }
        let shared_seeds = if all_scalar {
            batch
                .first()
                .map(|args| self.unit_seeds(args))
                .transpose()?
        } else {
            None
        };
        Ok(batch
            .iter()
            .map(|args| {
                validate_args(self.name(), self.param_types(), args)?;
                let mut a = args.clone();
                match &shared_seeds {
                    Some(seeds) => a.extend(seeds.iter().cloned()),
                    None => a.extend(self.unit_seeds(args)?),
                }
                Ok(a)
            })
            .collect())
    }

    fn split_grad(&self, out: Vec<Value>) -> GradOutput {
        let m = self.entry.fun.ret.len();
        let mut it = out.into_iter();
        let value: Vec<Value> = it.by_ref().take(m).collect();
        GradOutput {
            value,
            grads: it.collect(),
        }
    }

    /// Run forward mode along a direction. `dir` names tangents sparsely as
    /// `(parameter index, tangent value)` pairs; every other differentiable
    /// parameter gets an auto-inserted zero tangent of its argument's
    /// shape.
    pub fn pushforward(&self, args: &[Value], dir: &[(usize, Value)]) -> Result<Dual, FirError> {
        validate_args(self.name(), self.param_types(), args)?;
        let handle = self.jvp()?;
        let mut full = args.to_vec();
        full.extend(self.tangents(args, dir)?);
        let out = handle.call(&full)?;
        let m = self.entry.fun.ret.len();
        let mut it = out.into_iter();
        let value: Vec<Value> = it.by_ref().take(m).collect();
        Ok(Dual {
            value,
            tangent: it.collect(),
        })
    }

    /// One tangent per differentiable parameter: the direction's value
    /// where given, zeros otherwise.
    fn tangents(&self, args: &[Value], dir: &[(usize, Value)]) -> Result<Vec<Value>, FirError> {
        let params = &self.entry.fun.params;
        for (i, _) in dir {
            match params.get(*i) {
                Some(p) if p.ty.is_differentiable() => {}
                Some(p) => {
                    return Err(FirError::Unsupported {
                        what: format!(
                        "`{}` parameter {i} has non-differentiable type {}, cannot take a tangent",
                        self.name(),
                        p.ty
                    ),
                    })
                }
                None => {
                    return Err(FirError::Unsupported {
                        what: format!(
                            "`{}` has {} parameters, tangent index {i} is out of range",
                            self.name(),
                            params.len()
                        ),
                    })
                }
            }
        }
        Ok(params
            .iter()
            .enumerate()
            .filter(|(_, p)| p.ty.is_differentiable())
            .map(|(i, _)| {
                dir.iter()
                    .find(|(j, _)| *j == i)
                    .map(|(_, v)| v.clone())
                    .unwrap_or_else(|| zeros_like(&args[i]))
            })
            .collect())
    }

    /// Hessian-vector product by forward-over-reverse: the directional
    /// derivative of the gradient along `dir` (sparse tangents, as in
    /// [`CompiledFn::pushforward`]). Returns the tangent of each
    /// differentiable parameter's adjoint, in parameter order — for a
    /// scalar objective, `H · v` blocked by parameter.
    pub fn hvp(&self, args: &[Value], dir: &[(usize, Value)]) -> Result<Vec<Value>, FirError> {
        validate_args(self.name(), self.param_types(), args)?;
        let handle = self.hessian()?;
        let seeds = self.unit_seeds(args)?;
        let tangents = self.tangents(args, dir)?;
        // hessian = jvp(vjp(f)); its parameters are f's, then the vjp
        // seeds, then tangents for the vjp function's differentiable
        // parameters (f's, then the seeds — the seeds are held constant,
        // so their tangents are zero).
        let mut full = args.to_vec();
        full.extend(seeds.iter().cloned());
        full.extend(tangents);
        full.extend(seeds.iter().map(zeros_like));
        let out = handle.call(&full)?;
        // Results: f's results (m), parameter adjoints (jd), tangents of
        // the vjp function's differentiable results (kd differentiable
        // primal results, then the jd adjoints). The HVP is the last
        // block.
        let fun = &self.entry.fun;
        let m = fun.ret.len();
        let kd = fun.ret.iter().filter(|t| t.is_differentiable()).count();
        let jd = fun
            .params
            .iter()
            .filter(|p| p.ty.is_differentiable())
            .count();
        debug_assert_eq!(out.len(), m + jd + kd + jd);
        Ok(out[m + jd + kd..].to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fir::builder::Builder;
    use fir::types::Type;

    fn dot() -> Fun {
        let mut b = Builder::new();
        b.build_fun("dot", &[Type::arr_f64(1), Type::arr_f64(1)], |b, ps| {
            let prods = b.map1(Type::arr_f64(1), &[ps[0], ps[1]], |b, es| {
                vec![b.fmul(es[0].into(), es[1].into())]
            });
            vec![b.sum(prods).into()]
        })
    }

    fn dot_args() -> Vec<Value> {
        vec![
            Value::from(vec![1.0, 2.0, 3.0]),
            Value::from(vec![4.0, 5.0, 6.0]),
        ]
    }

    #[test]
    fn compile_call_grad_on_every_backend() {
        for name in crate::BACKEND_NAMES {
            let engine = Engine::by_name(name).unwrap();
            let f = engine.compile(&dot()).unwrap();
            assert_eq!(f.call_scalar(&dot_args()).unwrap(), 32.0);
            let g = f.grad(&dot_args()).unwrap();
            assert_eq!(g.scalar(), 32.0);
            assert_eq!(g.grads[0].as_arr().f64s(), &[4.0, 5.0, 6.0]);
            assert_eq!(g.grads[1].as_arr().f64s(), &[1.0, 2.0, 3.0]);
        }
    }

    #[test]
    fn recompilation_hits_the_cache_and_shares_transforms() {
        let engine = Engine::new();
        let f1 = engine.compile(&dot()).unwrap();
        let s0 = engine.cache_stats();
        assert_eq!((s0.hits, s0.misses), (0, 1));
        let f2 = engine.compile(&dot()).unwrap();
        assert_eq!(engine.cache_stats().hits, 1);
        // Deriving the vjp compiles it once; the second handle re-derives
        // the transform but its compilation is answered by the cache.
        let misses_before = engine.cache_stats().misses;
        f1.vjp().unwrap();
        assert_eq!(engine.cache_stats().misses, misses_before + 1);
        f2.vjp().unwrap();
        assert_eq!(engine.cache_stats().misses, misses_before + 1);
    }

    #[test]
    fn dropping_the_engine_and_handles_frees_the_engine() {
        // CompiledFn holds Arc<EngineInner> and the derived handles live
        // on the CompiledFn (not in the engine cache), so dropping every
        // handle and the engine must actually deallocate: no cycle.
        let engine = Engine::new();
        let weak = Arc::downgrade(&engine.inner);
        let f = engine.compile(&dot()).unwrap();
        f.vjp().unwrap();
        f.hessian().unwrap();
        drop(f);
        drop(engine);
        assert!(
            weak.upgrade().is_none(),
            "engine leaked: strong refs remain after dropping all handles"
        );
    }

    #[test]
    fn pushforward_inserts_zero_tangents() {
        let engine = Engine::by_name("vm-seq").unwrap();
        let f = engine.compile(&dot()).unwrap();
        // d/dt dot(xs + t*e0, ys) = ys[0]
        let dual = f
            .pushforward(&dot_args(), &[(0, Value::from(vec![1.0, 0.0, 0.0]))])
            .unwrap();
        assert_eq!(dual.scalar(), 32.0);
        assert_eq!(dual.flat_tangents(), vec![4.0]);
        // No direction at all: zero tangent.
        let dual = f.pushforward(&dot_args(), &[]).unwrap();
        assert_eq!(dual.flat_tangents(), vec![0.0]);
    }

    #[test]
    fn hvp_matches_the_analytic_hessian() {
        // f(x) = x[0]^2 * x[1]; H = [[2x1, 2x0], [2x0, 0]].
        let mut b = Builder::new();
        let f = b.build_fun("h", &[Type::arr_f64(1)], |b, ps| {
            let x0 = b.index(ps[0], &[fir::ir::Atom::i64(0)]);
            let x1 = b.index(ps[0], &[fir::ir::Atom::i64(1)]);
            let sq = b.fmul(x0.into(), x0.into());
            vec![b.fmul(sq, x1.into())]
        });
        let engine = Engine::by_name("interp-seq").unwrap();
        let cf = engine.compile(&f).unwrap();
        let args = [Value::from(vec![3.0, 5.0])];
        let hv = cf.hvp(&args, &[(0, Value::from(vec![1.0, 0.0]))]).unwrap();
        // H · e0 = [2*x1, 2*x0] = [10, 6].
        assert_eq!(hv[0].as_arr().f64s(), &[10.0, 6.0]);
    }

    #[test]
    fn fused_batches_match_per_call_results_bitwise() {
        let engine = Engine::by_name("vm-seq").unwrap();
        let f = engine.compile(&dot()).unwrap();
        // Same shapes across the batch: the fused path must engage and
        // agree with per-call execution bitwise.
        let batch: Vec<Vec<Value>> = (0..9)
            .map(|i| {
                vec![
                    Value::from(vec![i as f64 + 0.25, 1.5, -2.0]),
                    Value::from(vec![2.0, 3.0, 0.125]),
                ]
            })
            .collect();
        let fused = f.call_batch_fused(&batch);
        for (args, out) in batch.iter().zip(&fused) {
            let single = f.call(args).unwrap();
            assert_eq!(
                single[0].as_f64().to_bits(),
                out.as_ref().unwrap()[0].as_f64().to_bits()
            );
        }
        let grads = f.grad_batch_fused(&batch).unwrap();
        for (args, g) in batch.iter().zip(&grads) {
            let single = f.grad(args).unwrap();
            let g = g.as_ref().unwrap();
            assert_eq!(single.scalar().to_bits(), g.scalar().to_bits());
            assert_eq!(single.flat_grads(), g.flat_grads());
        }
        // Mixed shapes: the fused path falls back, results still correct.
        let ragged = vec![
            vec![Value::from(vec![1.0, 2.0]), Value::from(vec![3.0, 4.0])],
            vec![
                Value::from(vec![1.0, 2.0, 3.0]),
                Value::from(vec![4.0, 5.0, 6.0]),
            ],
        ];
        let outs = f.call_batch_fused(&ragged);
        assert_eq!(outs[0].as_ref().unwrap()[0].as_f64(), 11.0);
        assert_eq!(outs[1].as_ref().unwrap()[0].as_f64(), 32.0);
        // A malformed request stays isolated on the fallback path.
        let with_bad = vec![dot_args(), vec![Value::F64(0.0)], dot_args()];
        let outs = f.call_batch_fused(&with_bad);
        assert!(outs[0].is_ok() && outs[1].is_err() && outs[2].is_ok());
    }

    #[test]
    fn transform_stacks_compile_once_per_distinct_stack() {
        let engine = Engine::by_name("vm-seq").unwrap();
        let f = engine.compile(&dot()).unwrap();
        let m0 = engine.cache_stats().misses;
        // [Vjp] and [Vjp, Vmap]: two new programs.
        let a = f.vjp().unwrap().vmap().unwrap();
        assert_eq!(engine.cache_stats().misses, m0 + 2);
        assert_eq!(a.transforms(), &[Transform::Vjp, Transform::Vmap]);
        // The same stack spelled through `transform`: all cache hits.
        let hits0 = engine.cache_stats().hits;
        let b = f.transform(&[Transform::Vjp, Transform::Vmap]).unwrap();
        assert_eq!(engine.cache_stats().misses, m0 + 2);
        assert!(engine.cache_stats().hits > hits0);
        assert_eq!(a.name(), b.name());
        // The opposite order is a distinct stack (two more programs)...
        let c = f.vmap().unwrap().vjp().unwrap();
        assert_eq!(engine.cache_stats().misses, m0 + 4);
        assert_eq!(c.transforms(), &[Transform::Vmap, Transform::Vjp]);
        // ...and a second handle of the same function shares everything.
        let f2 = engine.compile(&dot()).unwrap();
        f2.vjp().unwrap().vmap().unwrap();
        f2.vmap().unwrap().vjp().unwrap();
        assert_eq!(engine.cache_stats().misses, m0 + 4);
        // An empty stack is the handle itself.
        assert_eq!(f.transform(&[]).unwrap().name(), f.name());
    }

    #[test]
    fn vmap_executes_per_example_bitwise() {
        for name in ["interp-seq", "vm-seq"] {
            let engine = Engine::by_name(name).unwrap();
            let f = engine.compile(&dot()).unwrap();
            let vf = f.vmap().unwrap();
            assert_eq!(vf.param_types(), &[Type::arr_f64(2), Type::arr_f64(2)]);
            let batch: Vec<Vec<Value>> = (0..5)
                .map(|i| {
                    vec![
                        Value::from(vec![i as f64 + 0.5, -1.25, 3.0]),
                        Value::from(vec![0.75, 2.0, i as f64]),
                    ]
                })
                .collect();
            let stacked = crate::batch::stack_args(&batch).unwrap();
            let outs = vf.call(&stacked).unwrap();
            for (i, args) in batch.iter().enumerate() {
                let want = f.call(args).unwrap();
                let got = outs[0].as_arr().index(&[i]);
                assert_eq!(
                    want[0].as_f64().to_bits(),
                    got.as_f64().to_bits(),
                    "{name}: vmap element {i}"
                );
            }
        }
    }

    #[test]
    fn vmap_vjp_in_both_orders_matches_per_example_grad_bitwise() {
        for name in ["interp-seq", "vm-seq"] {
            let engine = Engine::by_name(name).unwrap();
            let f = engine.compile(&dot()).unwrap();
            let batch: Vec<Vec<Value>> = (0..4)
                .map(|i| {
                    vec![
                        Value::from(vec![1.0 + i as f64, 2.0, -0.5]),
                        Value::from(vec![4.0, i as f64 - 2.0, 6.0]),
                    ]
                })
                .collect();
            // Seeded per-example argument lists: args ++ unit seed.
            let seeded: Vec<Vec<Value>> = batch
                .iter()
                .map(|args| {
                    let mut a = args.clone();
                    a.extend(f.unit_seeds(args).unwrap());
                    a
                })
                .collect();
            let stacked = crate::batch::stack_args(&seeded).unwrap();
            // vmap(vjp(f)) and vjp(vmap(f)) take the *same* stacked
            // argument list here (the seed column of the former is the
            // [B]-seed of the latter) and must agree with the
            // per-example grad loop bitwise.
            for stack in [
                [Transform::Vjp, Transform::Vmap],
                [Transform::Vmap, Transform::Vjp],
            ] {
                let tf = f.transform(&stack).unwrap();
                let outs = tf.call(&stacked).unwrap();
                for (i, args) in batch.iter().enumerate() {
                    let want = f.grad(args).unwrap();
                    assert_eq!(
                        want.scalar().to_bits(),
                        outs[0].as_arr().index(&[i]).as_f64().to_bits(),
                        "{name} {stack:?}: primal {i}"
                    );
                    for (j, g) in want.grads.iter().enumerate() {
                        let got = outs[1 + j].as_arr().index(&[i]);
                        assert_eq!(
                            g.as_arr().f64s(),
                            got.as_arr().f64s(),
                            "{name} {stack:?}: grad[{j}] of example {i}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn call_batch_matches_sequential_calls() {
        let engine = Engine::new();
        let f = engine.compile(&dot()).unwrap();
        let batch: Vec<Vec<Value>> = (0..16)
            .map(|i| {
                vec![
                    Value::from(vec![i as f64, 1.0]),
                    Value::from(vec![2.0, 3.0]),
                ]
            })
            .collect();
        let batched = f.call_batch(&batch).unwrap();
        for (args, out) in batch.iter().zip(&batched) {
            assert_eq!(out[0].as_f64(), f.call(args).unwrap()[0].as_f64());
        }
    }

    #[test]
    fn compiling_past_capacity_evicts_the_lru_program() {
        // Three structurally distinct programs through a capacity-2 cache.
        fn scaled(c: f64) -> Fun {
            let mut b = Builder::new();
            b.build_fun("scaled", &[Type::arr_f64(1)], |b, ps| {
                let s = b.map1(Type::arr_f64(1), &[ps[0]], |b, es| {
                    vec![b.fmul(es[0].into(), fir::ir::Atom::f64(c))]
                });
                vec![b.sum(s).into()]
            })
        }
        let engine = Engine::builder()
            .backend_name("vm-seq")
            .cache_capacity(2)
            .build()
            .unwrap();
        assert_eq!(engine.cache_stats().capacity, 2);
        engine.compile(&scaled(1.0)).unwrap();
        engine.compile(&scaled(2.0)).unwrap();
        // Touch the first program: it becomes most-recently-used.
        engine.compile(&scaled(1.0)).unwrap();
        let s = engine.cache_stats();
        assert_eq!((s.hits, s.misses, s.entries, s.evictions), (1, 2, 2, 0));
        // A third program overflows the cache; the LRU entry (2.0) goes.
        engine.compile(&scaled(3.0)).unwrap();
        let s = engine.cache_stats();
        assert_eq!((s.entries, s.evictions), (2, 1));
        // The survivor is still a hit; the evicted program recompiles.
        engine.compile(&scaled(1.0)).unwrap();
        assert_eq!(engine.cache_stats().hits, 2);
        let misses = engine.cache_stats().misses;
        engine.compile(&scaled(2.0)).unwrap();
        let s = engine.cache_stats();
        assert_eq!(s.misses, misses + 1, "evicted program must recompile");
        assert_eq!(s.evictions, 2);
    }

    #[test]
    fn alias_index_stays_proportional_to_the_live_cache() {
        fn scaled(c: f64) -> Fun {
            let mut b = Builder::new();
            b.build_fun("scaled", &[Type::arr_f64(1)], |b, ps| {
                let s = b.map1(Type::arr_f64(1), &[ps[0]], |b, es| {
                    vec![b.fmul(es[0].into(), fir::ir::Atom::f64(c))]
                });
                vec![b.sum(s).into()]
            })
        }
        let engine = Engine::builder()
            .backend_name("vm-seq")
            .cache_capacity(2)
            .build()
            .unwrap();
        // A stream of distinct programs and their vjps through a tiny
        // cache: aliases of evicted programs must be dropped with them,
        // not accumulated for the engine's lifetime.
        for c in 0..8 {
            engine
                .compile(&scaled(c as f64 + 1.5))
                .unwrap()
                .vjp()
                .unwrap();
        }
        assert!(engine.cache_stats().evictions >= 12);
        let aliases = engine.inner.derived.lock().unwrap().len();
        assert!(
            aliases <= engine.cache_stats().capacity,
            "alias index must shrink with evictions, found {aliases} entries"
        );
    }

    #[test]
    fn opt_stats_display_omits_passes_that_never_fired() {
        let mut stats = OptStats {
            functions: 1,
            stms_before: 10,
            stms_after: 8,
            ..OptStats::default()
        };
        stats.rewrites.insert("dce", 2);
        stats.rewrites.insert("cse", 0);
        let line = stats.to_string();
        assert!(line.contains("dce 2"), "{line}");
        assert!(!line.contains("cse"), "{line}");
    }

    #[test]
    fn batch_results_isolate_the_failing_request() {
        let engine = Engine::new();
        let f = engine.compile(&dot()).unwrap();
        let good = dot_args();
        let bad = vec![Value::F64(1.0)];
        let out = f.call_batch_results(&[good.clone(), bad.clone(), good.clone()]);
        assert_eq!(out[0].as_ref().unwrap()[0].as_f64(), 32.0);
        assert!(matches!(
            out[1],
            Err(FirError::Exec(interp::ExecError::Arity { .. }))
        ));
        assert_eq!(out[2].as_ref().unwrap()[0].as_f64(), 32.0);

        let grads = f
            .grad_batch_results(&[good.clone(), bad, good.clone()])
            .unwrap();
        assert_eq!(grads[0].as_ref().unwrap().scalar(), 32.0);
        assert!(grads[1].is_err());
        assert_eq!(
            grads[2].as_ref().unwrap().grads[0].as_arr().f64s(),
            &[4.0, 5.0, 6.0]
        );
        // The whole-batch wrappers still surface the first failure.
        assert!(f.grad_batch(&[good.clone(), vec![]]).is_err());
        assert_eq!(f.grad_batch(std::slice::from_ref(&good)).unwrap().len(), 1);
    }

    /// Arena counters are process-global; tests asserting on them
    /// serialize on this lock so concurrent tests cannot skew the deltas.
    fn arena_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// A program with the memplan target shape: `copy` an argument, update
    /// the copy, reduce it.
    fn copyupd(c: f64) -> Fun {
        use fir::ir::{Atom, Exp};
        let mut b = Builder::new();
        b.build_fun("copyupd", &[Type::arr_f64(1)], |b, ps| {
            let y = b.bind1(Type::arr_f64(1), Exp::Copy(ps[0]));
            let z = b.bind1(
                Type::arr_f64(1),
                Exp::Update {
                    arr: y,
                    idx: vec![Atom::i64(0)],
                    val: Atom::f64(c),
                },
            );
            vec![b.sum(z).into()]
        })
    }

    #[test]
    fn standard_mem_plans_buffers_and_matches_plain_results_bitwise() {
        let _g = arena_lock();
        let args = vec![Value::from(vec![1.5, 2.5, 3.5])];
        let plain = Engine::by_name("vm-seq").unwrap();
        let want = plain.compile(&copyupd(9.0)).unwrap().call(&args).unwrap();
        let planned = Engine::builder()
            .backend_name("vm-seq")
            .pipeline(PassPipeline::standard_mem())
            .build()
            .unwrap();
        let f = planned.compile(&copyupd(9.0)).unwrap();
        // Repeated invocations reuse the per-invocation arena; results
        // stay bitwise-identical to the unplanned engine throughout.
        for _ in 0..4 {
            let got = f.call(&args).unwrap();
            assert_eq!(want[0].as_f64().to_bits(), got[0].as_f64().to_bits());
        }
        let opt = planned.opt_stats();
        assert!(
            opt.rewrites.get("memplan").copied().unwrap_or(0) >= 1,
            "the dead-source copy must be rewritten in place: {opt}"
        );
        assert!(opt.slots_planned > 0, "{opt}");
        assert!(opt.to_string().contains("buffer slot"), "{opt}");
        let stats = planned.cache_stats();
        assert!(stats.arena.reserved_slots > 0, "{stats}");
        assert!(stats.to_string().contains("; arena:"), "{stats}");
    }

    #[test]
    fn evicting_a_planned_program_returns_its_arena_reservation() {
        let _g = arena_lock();
        let engine = Engine::builder()
            .backend_name("vm-seq")
            .pipeline(PassPipeline::standard_mem())
            .cache_capacity(1)
            .build()
            .unwrap();
        let base = interp::alloc_stats().reserved_slots;
        let f1 = engine.compile(&copyupd(1.0)).unwrap();
        let after1 = interp::alloc_stats().reserved_slots;
        assert!(after1 > base, "compiling under standard_mem must reserve");
        // The reservation is held by the cache slot, not the handle.
        drop(f1);
        assert_eq!(interp::alloc_stats().reserved_slots, after1);
        {
            // A second program overflows the capacity-1 cache, evicting
            // the first — and with it, its reservation.
            let _f2 = engine.compile(&copyupd(2.0)).unwrap();
            // The thread-local cache-view snapshot can pin the evicted
            // entry until the next refresh; a hit on the live program
            // forces one.
            let _refresh = engine.compile(&copyupd(2.0)).unwrap();
            assert_eq!(engine.cache_stats().evictions, 1);
            // copyupd(1.0) and copyupd(2.0) plan identical slot counts,
            // so the eviction nets out to the single-program level.
            assert_eq!(interp::alloc_stats().reserved_slots, after1);
        }
        // Dropping the engine (and every handle) returns everything —
        // once this thread's bounded view cache stops pinning the last
        // published snapshot (churn it with fresh engines).
        drop(engine);
        for _ in 0..VIEW_CACHE_SLOTS {
            Engine::by_name("vm-seq").unwrap().compile(&dot()).unwrap();
        }
        assert_eq!(interp::alloc_stats().reserved_slots, base);
    }

    #[test]
    fn jit_tier_promotes_at_exactly_the_threshold() {
        let engine = Engine::builder()
            .backend_name("vm-seq")
            .jit_threshold(3)
            .build()
            .unwrap();
        assert_eq!(engine.backend_name(), "firvm-jit");
        let f = engine.compile(&dot()).unwrap();
        let args = dot_args();
        for run in 1..=2 {
            f.call(&args).unwrap();
            let t = engine.cache_stats().tier.unwrap();
            assert_eq!(
                (t.promotions, t.jit_hits),
                (0, 0),
                "run {run} is below the threshold"
            );
        }
        f.call(&args).unwrap();
        let t = engine.cache_stats().tier.unwrap();
        assert_eq!(t.promotions, 1, "the threshold run itself promotes");
        assert!(t.jit_hits >= 1, "the promoting run already executes jitted");
        // Line format of the tier block in Display.
        let line = engine.cache_stats().to_string();
        assert!(line.contains("; jit: 1 promotion,"), "{line}");
    }

    #[test]
    fn plain_engines_report_no_tier() {
        let engine = Engine::by_name("vm-seq").unwrap();
        let stats = engine.cache_stats();
        assert_eq!(stats.tier, None);
        assert!(!stats.to_string().contains("jit"));
    }

    #[test]
    fn jit_threshold_on_a_tierless_backend_is_an_error() {
        assert!(matches!(
            Engine::builder()
                .backend_name("interp")
                .jit_threshold(4)
                .build(),
            Err(FirError::Unsupported { .. })
        ));
        assert!(matches!(
            Engine::builder()
                .backend(Box::new(firvm::Vm::sequential()))
                .jit_threshold(4)
                .build(),
            Err(FirError::Unsupported { .. })
        ));
    }

    #[test]
    fn evicting_a_promoted_program_prunes_its_aliases_and_stays_correct() {
        fn scaled(c: f64) -> Fun {
            let mut b = Builder::new();
            b.build_fun("scaled", &[Type::arr_f64(1)], |b, ps| {
                let s = b.map1(Type::arr_f64(1), &[ps[0]], |b, es| {
                    vec![b.fmul(es[0].into(), fir::ir::Atom::f64(c))]
                });
                vec![b.sum(s).into()]
            })
        }
        let engine = Engine::builder()
            .backend_name("vm-jit-seq")
            .jit_threshold(1)
            .cache_capacity(2)
            .build()
            .unwrap();
        let args = vec![Value::from(vec![1.0, 2.0, 3.0])];
        // Promote a program and its derived vjp (threshold 1: first run).
        let f1 = engine.compile(&scaled(1.5)).unwrap();
        let g = f1.grad(&args).unwrap();
        assert_eq!(g.grads[0].as_arr().f64s(), &[1.5, 1.5, 1.5]);
        assert!(engine.cache_stats().tier.unwrap().promotions >= 1);
        // A stream of distinct programs overflows the capacity-2 LRU,
        // evicting the promoted entries.
        for c in 0..4 {
            engine
                .compile(&scaled(c as f64 + 10.0))
                .unwrap()
                .call(&args)
                .unwrap();
        }
        let s = engine.cache_stats();
        assert!(s.evictions >= 3, "{s}");
        let aliases = engine.inner.derived.lock().unwrap().len();
        assert!(
            aliases <= s.capacity,
            "aliases of evicted promoted programs must be dropped, found {aliases}"
        );
        // The evicted program recompiles (a counted miss) and still runs
        // on the jit tier, bit-identically.
        let misses = s.misses;
        let hits_before = s.tier.unwrap().jit_hits;
        let f1b = engine.compile(&scaled(1.5)).unwrap();
        let out = f1b.call(&args).unwrap();
        assert_eq!(out[0].as_f64(), 1.5 * 6.0);
        let s = engine.cache_stats();
        assert_eq!(s.misses, misses + 1, "evicted program must recompile");
        assert!(s.tier.unwrap().jit_hits > hits_before);
    }

    #[test]
    fn jit_unsupported_expressions_fall_back_with_identical_results() {
        // The kernel constructs an array in its body (`iota`) and gathers
        // through it — array construction is permanently outside the jit's
        // tape fragment — so the tier must decline per-kernel and the VM
        // must produce the result, bitwise-identical to a plain VM engine.
        let mut b = Builder::new();
        let f = b.build_fun("gather", &[Type::arr_f64(1), Type::arr_f64(1)], |b, ps| {
            let y = b.map1(Type::arr_f64(1), &[ps[0]], |b, es| {
                let i = b.to_i64(es[0].into());
                let im = b.irem(i, fir::ir::Atom::i64(3));
                let tbl = b.iota(fir::ir::Atom::i64(3));
                let w = b.index(tbl, &[im]);
                let wf = b.to_f64(w.into());
                let g = b.index(ps[1], &[im]);
                vec![b.fmul(wf, g.into())]
            });
            vec![b.sum(y).into()]
        });
        let args = vec![
            Value::from(vec![0.0, 1.0, 2.0, 4.0, 5.0]),
            Value::from(vec![10.0, 20.0, 30.0]),
        ];
        let plain = Engine::by_name("vm-seq").unwrap();
        let want = plain.compile(&f).unwrap().call(&args).unwrap();
        let engine = Engine::builder()
            .backend_name("vm-seq")
            .jit_threshold(1)
            .build()
            .unwrap();
        let cf = engine.compile(&f).unwrap();
        for _ in 0..3 {
            let got = cf.call(&args).unwrap();
            assert_eq!(want[0].as_f64().to_bits(), got[0].as_f64().to_bits());
        }
        let t = engine.cache_stats().tier.unwrap();
        assert_eq!(t.promotions, 1);
        assert!(t.fallbacks >= 1, "the gather kernel must fall back: {t:?}");
    }

    #[test]
    fn errors_do_not_panic() {
        let engine = Engine::new();
        let f = engine.compile(&dot()).unwrap();
        assert!(matches!(
            f.call(&[Value::F64(1.0)]),
            Err(FirError::Exec(interp::ExecError::Arity { .. }))
        ));
        assert!(matches!(
            f.pushforward(&dot_args(), &[(7, Value::F64(1.0))]),
            Err(FirError::Unsupported { .. })
        ));
    }
}
