//! Fused ("vectorized") batch execution: run a batch of same-shaped
//! requests as *one* program mapped over a stacked batch dimension.
//!
//! Task-parallel batching (`CompiledFn::call_batch_results`) runs one
//! program execution per request, paying the whole per-call dispatch
//! (program setup, value boxing, SOAC scheduling) every time — fine when
//! requests are large, dominant when they are tiny. The serving workloads
//! of the source paper (GMM/k-means/LSTM objective and gradient
//! evaluations) are exactly the tiny-request case, so this module builds
//! the *batched program* instead: every parameter type is lifted by one
//! array dimension, and the original function body becomes the lambda of
//! a single outer `map`:
//!
//! ```text
//!   f       : (p_1: T_1, ..., p_k: T_k) -> (R_1, ..., R_m)
//!   batched : ([B]T_1, ..., [B]T_k)     -> ([B]R_1, ..., [B]R_m)
//!           = \xs_1 ... xs_k. map (\e_1 ... e_k. f-body) xs_1 ... xs_k
//! ```
//!
//! Because shapes in this IR are dynamic (types carry only rank), one
//! batched program serves *every* batch size — it is compiled once and
//! cached by structural fingerprint like any other program. Per-element
//! arithmetic is the original body's, evaluated in the same order, so
//! results match the unfused path bitwise.
//!
//! The transform is conservative: functions with no parameters or with
//! accumulator parameters/results are rejected, and callers fall back to
//! task-parallel batching whenever requests' shapes disagree or the
//! batched program fails to compile or run.

use fir::builder::Builder;
use fir::ir::{Atom, Fun};
use fir::rename::Renamer;
use fir::types::Type;
use interp::{Array, Value};

use crate::error::FirError;

/// Derive the batched program of `fun`: parameters and results lifted by
/// one leading (batch) dimension, body wrapped in one outer `map`.
pub fn batched_fun(fun: &Fun) -> Result<Fun, FirError> {
    if fun.params.is_empty() {
        return Err(FirError::Unsupported {
            what: format!("`{}` has no parameters to batch over", fun.name),
        });
    }
    if fun.params.iter().any(|p| p.ty.is_acc()) || fun.ret.iter().any(|t| t.is_acc()) {
        return Err(FirError::Unsupported {
            what: format!(
                "`{}` has accumulator parameters or results, cannot batch",
                fun.name
            ),
        });
    }
    let mut b = Builder::for_fun(fun);
    let lifted: Vec<Type> = fun.params.iter().map(|p| p.ty.lift()).collect();
    let out_tys: Vec<Type> = fun.ret.iter().map(|t| t.lift()).collect();
    Ok(
        b.build_fun(&format!("{}__batched", fun.name), &lifted, |b, ps| {
            let outs = b.map(&out_tys, ps, |b, es| {
                // Inline the original body with its parameters redirected
                // to the map's element variables, all bindings freshened.
                let mut r = Renamer::new();
                for (p, e) in fun.params.iter().zip(es) {
                    r.insert(p.var, *e);
                }
                let body = r.body(b, &fun.body);
                for s in body.stms {
                    b.push_stm(s);
                }
                body.result
            });
            outs.into_iter().map(Atom::Var).collect()
        }),
    )
}

/// Whether every request shares the arity, element types, and shapes of
/// the first — the precondition for stacking.
fn stackable(batch: &[impl AsRef<[Value]>]) -> bool {
    let first = batch[0].as_ref();
    batch[1..].iter().all(|req| {
        let req = req.as_ref();
        req.len() == first.len()
            && req.iter().zip(first).all(|(v, f)| match (v, f) {
                (Value::F64(_), Value::F64(_))
                | (Value::I64(_), Value::I64(_))
                | (Value::Bool(_), Value::Bool(_)) => true,
                (Value::Arr(a), Value::Arr(b)) => a.shape == b.shape && a.elem() == b.elem(),
                _ => false,
            })
    })
}

/// Stack per-request argument lists into the batched program's argument
/// list (one array of outer length `batch.len()` per parameter). Returns
/// `None` when the requests' shapes disagree.
pub(crate) fn stack_args(batch: &[impl AsRef<[Value]>]) -> Option<Vec<Value>> {
    if batch.is_empty() || !stackable(batch) {
        return None;
    }
    let arity = batch[0].as_ref().len();
    Some(
        (0..arity)
            .map(|j| {
                let col: Vec<Value> = batch.iter().map(|req| req.as_ref()[j].clone()).collect();
                Value::Arr(Array::stack(&col))
            })
            .collect(),
    )
}

/// Split the batched program's results back into per-request result
/// lists. `ret` is the *original* function's result signature; scalar
/// results come back as scalars, array results as the per-request slices.
pub(crate) fn unstack_results(ret: &[Type], outs: &[Value], batch: usize) -> Vec<Vec<Value>> {
    debug_assert_eq!(ret.len(), outs.len());
    (0..batch)
        .map(|i| outs.iter().map(|o| o.as_arr().index(&[i])).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stacking_round_trips_scalars_and_arrays() {
        let batch: Vec<Vec<Value>> = (0..3)
            .map(|i| {
                vec![
                    Value::F64(i as f64),
                    Value::from(vec![i as f64, 1.0]),
                    Value::I64(i),
                ]
            })
            .collect();
        let stacked = stack_args(&batch).expect("equal shapes must stack");
        assert_eq!(stacked.len(), 3);
        assert_eq!(stacked[0].as_arr().shape, vec![3]);
        assert_eq!(stacked[1].as_arr().shape, vec![3, 2]);
        let ret = [Type::F64, Type::arr_f64(1), Type::I64];
        let back = unstack_results(&ret, &stacked, 3);
        for (orig, got) in batch.iter().zip(&back) {
            assert_eq!(orig[0].as_f64(), got[0].as_f64());
            assert_eq!(orig[1].as_arr().f64s(), got[1].as_arr().f64s());
            assert_eq!(orig[2].as_i64(), got[2].as_i64());
        }
    }

    #[test]
    fn mismatched_shapes_do_not_stack() {
        let batch = vec![
            vec![Value::from(vec![1.0, 2.0])],
            vec![Value::from(vec![1.0, 2.0, 3.0])],
        ];
        assert!(stack_args(&batch).is_none());
        let batch = vec![vec![Value::F64(1.0)], vec![Value::I64(1)]];
        assert!(stack_args(&batch).is_none());
    }
}
