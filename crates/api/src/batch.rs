//! Value-level helpers for fused ("vectorized") batch execution: stack a
//! batch of same-shaped requests into the argument list of a
//! [`Transform::Vmap`](crate::Transform::Vmap)-derived program, and split
//! its results back per request.
//!
//! Task-parallel batching (`CompiledFn::call_batch_results`) runs one
//! program execution per request, paying the whole per-call dispatch
//! (program setup, value boxing, SOAC scheduling) every time — fine when
//! requests are large, dominant when they are tiny. The serving workloads
//! of the source paper (GMM/k-means/LSTM objective and gradient
//! evaluations) are exactly the tiny-request case, so this module builds
//! the *batched program* instead: every parameter type is lifted by one
//! array dimension, and the original function body becomes the lambda of
//! a single outer `map`:
//!
//! ```text
//!   f       : (p_1: T_1, ..., p_k: T_k) -> (R_1, ..., R_m)
//!   batched : ([B]T_1, ..., [B]T_k)     -> ([B]R_1, ..., [B]R_m)
//!           = \xs_1 ... xs_k. map (\e_1 ... e_k. f-body) xs_1 ... xs_k
//! ```
//!
//! Because shapes in this IR are dynamic (types carry only rank), one
//! batched program serves *every* batch size — it is compiled once and
//! cached by structural fingerprint like any other program. Per-element
//! arithmetic is the original body's, evaluated in the same order, so
//! results match the unfused path bitwise.
//!
//! The transform is conservative: functions with no parameters or with
//! accumulator parameters/results are rejected, and callers fall back to
//! task-parallel batching whenever requests' shapes disagree or the
//! batched program fails to compile or run.

use fir::ir::Fun;
use fir::types::Type;
use interp::{Array, Value};

use crate::error::FirError;

/// Derive the batched program of `fun`: parameters and results lifted by
/// one leading (batch) dimension, body wrapped in one outer `map`.
#[deprecated(
    note = "the outer-map lowering is the first-class `vmap` transform now: \
            use `fir::lower::vmap`, `Transform::Vmap`, or `CompiledFn::vmap`"
)]
pub fn batched_fun(fun: &Fun) -> Result<Fun, FirError> {
    fir::lower::vmap(fun).map_err(FirError::from)
}

/// Whether every request shares the arity, element types, and shapes of
/// the first — the precondition for stacking.
fn stackable(batch: &[impl AsRef<[Value]>]) -> bool {
    let first = batch[0].as_ref();
    batch[1..].iter().all(|req| {
        let req = req.as_ref();
        req.len() == first.len()
            && req.iter().zip(first).all(|(v, f)| match (v, f) {
                (Value::F64(_), Value::F64(_))
                | (Value::I64(_), Value::I64(_))
                | (Value::Bool(_), Value::Bool(_)) => true,
                (Value::Arr(a), Value::Arr(b)) => a.shape == b.shape && a.elem() == b.elem(),
                _ => false,
            })
    })
}

/// Stack per-request argument lists into the vmapped program's argument
/// list (one array of outer length `batch.len()` per parameter). Returns
/// `None` when the batch is empty or the requests' shapes disagree.
pub fn stack_args(batch: &[impl AsRef<[Value]>]) -> Option<Vec<Value>> {
    if batch.is_empty() || !stackable(batch) {
        return None;
    }
    let arity = batch[0].as_ref().len();
    Some(
        (0..arity)
            .map(|j| {
                let col: Vec<Value> = batch.iter().map(|req| req.as_ref()[j].clone()).collect();
                Value::Arr(Array::stack(&col))
            })
            .collect(),
    )
}

/// Split the vmapped program's results back into per-request result
/// lists by indexing each output along its leading (batch) dimension —
/// the splitting itself is shape-driven, so each slot comes back as a
/// scalar or array according to the stacked value's rank. `ret` is the
/// *original* (pre-vmap) function's result signature and is checked
/// against the outputs (arity and lifted rank); it panics on mismatch,
/// catching callers that hand results of the wrong program.
pub fn unstack_results(ret: &[Type], outs: &[Value], batch: usize) -> Vec<Vec<Value>> {
    assert_eq!(
        ret.len(),
        outs.len(),
        "unstack_results: {} result types for {} outputs",
        ret.len(),
        outs.len()
    );
    for (t, o) in ret.iter().zip(outs) {
        assert_eq!(
            t.rank() + 1,
            o.as_arr().shape.len(),
            "unstack_results: output rank does not match the lifted signature"
        );
    }
    (0..batch)
        .map(|i| outs.iter().map(|o| o.as_arr().index(&[i])).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stacking_round_trips_scalars_and_arrays() {
        let batch: Vec<Vec<Value>> = (0..3)
            .map(|i| {
                vec![
                    Value::F64(i as f64),
                    Value::from(vec![i as f64, 1.0]),
                    Value::I64(i),
                ]
            })
            .collect();
        let stacked = stack_args(&batch).expect("equal shapes must stack");
        assert_eq!(stacked.len(), 3);
        assert_eq!(stacked[0].as_arr().shape, vec![3]);
        assert_eq!(stacked[1].as_arr().shape, vec![3, 2]);
        let ret = [Type::F64, Type::arr_f64(1), Type::I64];
        let back = unstack_results(&ret, &stacked, 3);
        for (orig, got) in batch.iter().zip(&back) {
            assert_eq!(orig[0].as_f64(), got[0].as_f64());
            assert_eq!(orig[1].as_arr().f64s(), got[1].as_arr().f64s());
            assert_eq!(orig[2].as_i64(), got[2].as_i64());
        }
    }

    #[test]
    fn mismatched_shapes_do_not_stack() {
        let batch = vec![
            vec![Value::from(vec![1.0, 2.0])],
            vec![Value::from(vec![1.0, 2.0, 3.0])],
        ];
        assert!(stack_args(&batch).is_none());
        let batch = vec![vec![Value::F64(1.0)], vec![Value::I64(1)]];
        assert!(stack_args(&batch).is_none());
    }
}
