//! The error type of the staged API.
//!
//! Everything that can go wrong between "here is a `Fun`" and "here are its
//! results" surfaces as a [`FirError`]: ill-typed IR at compile time,
//! arity/type mismatches and executor failures at call time, unknown
//! backend names at engine construction, and requests the function's
//! signature cannot support (e.g. the gradient of a function with no
//! differentiable result).

use std::fmt;

use fir::typecheck::TypeError;
use interp::ExecError;

/// An error from compiling or executing a function through the staged API.
#[derive(Debug, Clone, PartialEq)]
pub enum FirError {
    /// The program failed the structural type check (`Engine::compile`
    /// checks up front, before any backend work).
    Type(TypeError),
    /// The backend rejected the preparation or the execution of a call.
    Exec(ExecError),
    /// No backend is registered under the requested name.
    UnknownBackend {
        /// The name that was asked for.
        name: String,
        /// Every registered backend name.
        known: &'static [&'static str],
    },
    /// The request is not supported by the function's signature (e.g.
    /// `grad` on a function with no differentiable result, or a tangent
    /// direction for a non-differentiable parameter).
    Unsupported {
        /// What was asked and why it cannot be done.
        what: String,
    },
}

impl From<TypeError> for FirError {
    fn from(e: TypeError) -> FirError {
        FirError::Type(e)
    }
}

impl From<fir::lower::VmapError> for FirError {
    fn from(e: fir::lower::VmapError) -> FirError {
        FirError::Unsupported {
            what: e.to_string(),
        }
    }
}

impl From<ExecError> for FirError {
    fn from(e: ExecError) -> FirError {
        // A backend re-checking types reports the same class of error as
        // the engine's up-front check.
        match e {
            ExecError::IllTyped(t) => FirError::Type(t),
            other => FirError::Exec(other),
        }
    }
}

impl fmt::Display for FirError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FirError::Type(e) => write!(f, "{e}"),
            FirError::Exec(e) => write!(f, "{e}"),
            FirError::UnknownBackend { name, known } => {
                write!(
                    f,
                    "unknown backend {name:?}; valid names are {}",
                    known.join(", ")
                )
            }
            FirError::Unsupported { what } => write!(f, "unsupported: {what}"),
        }
    }
}

impl std::error::Error for FirError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FirError::Type(e) => Some(e),
            FirError::Exec(e) => Some(e),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_backend_lists_the_valid_names() {
        let e = FirError::UnknownBackend {
            name: "cuda".into(),
            known: &["vm", "interp"],
        };
        let msg = e.to_string();
        assert!(msg.contains("\"cuda\""), "{msg}");
        assert!(msg.contains("vm, interp"), "{msg}");
    }

    #[test]
    fn ill_typed_exec_errors_collapse_to_type_errors() {
        let e = FirError::from(ExecError::IllTyped(TypeError::new("boom")));
        assert!(matches!(e, FirError::Type(_)));
    }
}
