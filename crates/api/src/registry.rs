//! The single backend registry.
//!
//! Before this crate existed, `backend_by_name` was copied in `interp`,
//! `firvm` and the umbrella crate, each knowing a different subset of
//! backends and each panicking differently on unknown names. This module is
//! the one place a backend name is resolved; the old copies are deprecated
//! shims.

use std::sync::Arc;

use firvm::{TierCounters, Vm};
use interp::{Backend, ExecConfig, Interp};

use crate::error::FirError;

/// Every registered backend name (canonical spellings; `"firvm"` and
/// `"firvm-seq"` are accepted as aliases of `"vm"` and `"vm-seq"`). The
/// `-jit` variants are the VM with the `fir-jit` specialization tier on
/// top (default hotness threshold; use [`crate::EngineBuilder`] to tune
/// it).
pub const BACKEND_NAMES: &[&str] = &[
    "vm",
    "vm-seq",
    "vm-jit",
    "vm-jit-seq",
    "interp",
    "interp-seq",
];

/// The environment variable naming the default backend.
pub const BACKEND_ENV_VAR: &str = "FIR_BACKEND";

/// Construct a backend by name. Unknown names return an error listing
/// every valid name instead of panicking.
pub fn backend_by_name(name: &str) -> Result<Box<dyn Backend>, FirError> {
    match name {
        "vm" | "firvm" => Ok(Box::new(Vm::new())),
        "vm-seq" | "firvm-seq" => Ok(Box::new(Vm::sequential())),
        "vm-jit" | "firvm-jit" => Ok(jit_backend(false, fir_jit::DEFAULT_THRESHOLD).0),
        "vm-jit-seq" | "firvm-jit-seq" => Ok(jit_backend(true, fir_jit::DEFAULT_THRESHOLD).0),
        "interp" => Ok(Box::new(Interp::new())),
        "interp-seq" => Ok(Box::new(Interp::sequential())),
        other => Err(FirError::UnknownBackend {
            name: other.to_string(),
            known: BACKEND_NAMES,
        }),
    }
}

/// A tiered (jit-promoting) VM backend alongside its tier counters, so the
/// engine that owns the backend can surface promotions/hits/fallbacks in
/// its [`crate::CacheStats`]. The VM gets a private program cache
/// (`fir_jit::vm_with`), which keeps run counts — and therefore promotion
/// timing — deterministic per engine.
pub(crate) fn jit_backend(
    sequential: bool,
    threshold: u64,
) -> (Box<dyn Backend>, Arc<TierCounters>) {
    let tier = fir_jit::tier_config(threshold);
    let counters = Arc::clone(&tier.counters);
    let cfg = if sequential {
        ExecConfig::sequential()
    } else {
        ExecConfig::default()
    };
    (Box::new(fir_jit::vm_with(cfg, tier)), counters)
}

/// The backend name selected by `FIR_BACKEND`, defaulting to the compiled
/// VM. The name is *not* validated here; pass it to [`backend_by_name`]
/// (or use `Engine::from_env`, which does).
pub fn default_backend_name() -> String {
    std::env::var(BACKEND_ENV_VAR).unwrap_or_else(|_| "vm".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_registered_name_resolves() {
        for name in BACKEND_NAMES {
            assert!(backend_by_name(name).is_ok(), "{name} should resolve");
        }
        assert_eq!(backend_by_name("vm").unwrap().name(), "firvm");
        assert_eq!(backend_by_name("firvm").unwrap().name(), "firvm");
        assert_eq!(backend_by_name("interp").unwrap().name(), "interp");
    }

    #[test]
    fn unknown_names_error_with_the_listing() {
        match backend_by_name("cuda") {
            Err(FirError::UnknownBackend { name, known }) => {
                assert_eq!(name, "cuda");
                assert_eq!(known, BACKEND_NAMES);
            }
            Ok(b) => panic!("expected UnknownBackend, resolved to {}", b.name()),
            Err(e) => panic!("expected UnknownBackend, got {e:?}"),
        }
    }
}
