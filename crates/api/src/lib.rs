//! `fir-api` — the staged public API of the reproduction: compile once,
//! derive AD transforms lazily, execute hot (and batched) through one
//! engine.
//!
//! The paper's workflow is inherently staged — build IR, apply `vjp`/`jvp`,
//! simplify, then execute repeatedly on a parallel backend. This crate is
//! that workflow as a first-class API:
//!
//! * [`Engine`] owns an execution backend (selected through the single
//!   [`backend_by_name`] registry), a configurable [`PassPipeline`] of
//!   `fir_opt` simplification passes, and a structural-fingerprint cache
//!   of compiled programs.
//! * [`Engine::compile`] type-checks up front and returns a
//!   [`CompiledFn`]; malformed IR and malformed arguments surface as
//!   [`FirError`] — never a panic.
//! * [`CompiledFn::transform`] applies a stack of [`Transform`]s (`Vjp`,
//!   `Jvp`, `Vmap`) left to right — `f.vjp()?.vmap()?` is the
//!   per-example-gradient program `vmap(vjp(f))` — each derived from the
//!   pre-pipeline source and compiled once per distinct
//!   `(source fingerprint, stack)` through the shared engine cache. The
//!   seeded wrappers [`CompiledFn::grad`], [`CompiledFn::pushforward`]
//!   and [`CompiledFn::hvp`] insert unit adjoint seeds and zero tangents
//!   automatically, returning the typed [`GradOutput`] / [`Dual`] structs.
//! * [`CompiledFn::call_batch`] / [`CompiledFn::grad_batch`] execute a
//!   batch of independent requests concurrently on the persistent worker
//!   pool; [`CompiledFn::call_batch_fused`] /
//!   [`CompiledFn::grad_batch_fused`] run same-shaped batches as *one*
//!   `Vmap`-derived program — the building blocks for serving-scale
//!   deployments.
//!
//! # Example
//!
//! ```
//! use fir::builder::Builder;
//! use fir::types::Type;
//! use fir_api::Engine;
//! use interp::Value;
//!
//! // f(xs, ys) = Σ xs·ys
//! let mut b = Builder::new();
//! let dot = b.build_fun("dot", &[Type::arr_f64(1), Type::arr_f64(1)], |b, ps| {
//!     let prods = b.map1(Type::arr_f64(1), &[ps[0], ps[1]], |b, es| {
//!         vec![b.fmul(es[0].into(), es[1].into())]
//!     });
//!     vec![b.sum(prods).into()]
//! });
//!
//! let engine = Engine::new(); // compiled VM backend, standard pipeline
//! let f = engine.compile(&dot)?;
//! let xs = Value::from(vec![1.0, 2.0, 3.0]);
//! let ys = Value::from(vec![4.0, 5.0, 6.0]);
//! assert_eq!(f.call_scalar(&[xs.clone(), ys.clone()])?, 32.0);
//!
//! // Reverse mode with an auto-derived unit seed:
//! let g = f.grad(&[xs, ys])?;
//! assert_eq!(g.scalar(), 32.0);
//! assert_eq!(g.grads[0].as_arr().f64s(), &[4.0, 5.0, 6.0]); // d/dxs = ys
//! assert_eq!(g.grads[1].as_arr().f64s(), &[1.0, 2.0, 3.0]); // d/dys = xs
//! # Ok::<(), fir_api::FirError>(())
//! ```
//!
//! Unknown backend names are errors that list the valid names:
//!
//! ```
//! use fir_api::{Engine, FirError};
//!
//! match Engine::by_name("cuda") {
//!     Err(FirError::UnknownBackend { name, known }) => {
//!         assert_eq!(name, "cuda");
//!         assert!(known.contains(&"vm"));
//!     }
//!     Ok(_) => panic!("\"cuda\" should not resolve"),
//!     Err(e) => panic!("{e}"),
//! }
//! ```

pub mod batch;
pub mod engine;
pub mod error;
pub mod pipeline;
pub mod registry;
pub mod transform;

pub use engine::{
    CacheStats, CompiledFn, Dual, Engine, EngineBuilder, GradOutput, OptStats, TierStats,
    DEFAULT_CACHE_CAPACITY,
};
pub use error::FirError;
pub use fir_cache::PersistentStats;
pub use pipeline::{Pass, PassPipeline, PipelineStats};
pub use registry::{backend_by_name, default_backend_name, BACKEND_ENV_VAR, BACKEND_NAMES};
pub use transform::Transform;
