//! Composable optimization pipelines.
//!
//! Reverse-mode AD by redundant execution deliberately emits dead forward
//! sweeps (paper §4.1); the engine runs a configurable sequence of `fir_opt`
//! passes over every function before handing it to the backend. The default
//! [`PassPipeline::standard`] iterates the full repertoire — copy
//! propagation, constant folding, CSE, producer–consumer fusion, invariant
//! hoisting, dead-code elimination — to a (bounded) fixed point. Ablation
//! studies and debugging can compose their own sequence, or disable
//! optimization entirely with [`PassPipeline::none`], which hands functions
//! through without so much as a clone.
//!
//! Every application reports [`PipelineStats`] — per-pass rewrites fired
//! and statement counts plus the number of fixpoint iterations — surfaced
//! through `Engine::opt_stats` alongside the compilation cache counters.
//! In debug builds the optimized IR is re-typechecked after every pass, so
//! a pass that produces ill-typed IR fails loudly at its source.

use std::borrow::Cow;

use fir::ir::Fun;
use fir_opt::PassRun;

/// One optimization pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pass {
    /// The fixed-point combination of the three basic passes
    /// ([`fir_opt::simplify()`]).
    Simplify,
    /// Dead-code elimination only.
    DeadCode,
    /// Constant folding (and 0/1 identity collapsing) only.
    ConstantFold,
    /// Copy propagation only.
    CopyProp,
    /// Common-subexpression elimination ([`fir_opt::cse()`]).
    Cse,
    /// Producer–consumer SOAC fusion ([`fir_opt::fuse_soacs`]): map–map
    /// composition and map–reduce fusion into `redomap`.
    Fusion,
    /// Loop/map-invariant code motion ([`fir_opt::hoist_invariants`]).
    Hoist,
    /// Memory planning ([`fir_opt::memplan()`]): lifetime-based elimination of
    /// `copy`s whose source is dead, turning functional updates into true
    /// in-place updates under the CoW runtime.
    MemPlan,
}

impl Pass {
    /// The pass name as reported in [`PipelineStats`].
    pub fn name(&self) -> &'static str {
        match self {
            Pass::Simplify => "simplify",
            Pass::DeadCode => "dce",
            Pass::ConstantFold => "const-fold",
            Pass::CopyProp => "copy-prop",
            Pass::Cse => "cse",
            Pass::Fusion => "fusion",
            Pass::Hoist => "hoist",
            Pass::MemPlan => "memplan",
        }
    }

    /// Apply this pass to a function.
    pub fn apply(&self, fun: &Fun) -> Fun {
        self.apply_counted(fun).0
    }

    /// Apply this pass, reporting rewrite and statement counts.
    pub fn apply_counted(&self, fun: &Fun) -> (Fun, PassRun) {
        let name = self.name();
        match self {
            Pass::Simplify => fir_opt::run_pass(
                name,
                |f| {
                    let out = fir_opt::simplify(f);
                    let changed = usize::from(out != *f);
                    (out, changed)
                },
                fun,
            ),
            Pass::DeadCode => fir_opt::run_pass(name, fir_opt::dead_code_elimination_counted, fun),
            Pass::ConstantFold => fir_opt::run_pass(name, fir_opt::constant_fold_counted, fun),
            Pass::CopyProp => fir_opt::run_pass(name, fir_opt::copy_propagation_counted, fun),
            Pass::Cse => fir_opt::run_pass(name, fir_opt::cse_counted, fun),
            Pass::Fusion => fir_opt::run_pass(name, fir_opt::fuse_soacs_counted, fun),
            Pass::Hoist => fir_opt::run_pass(name, fir_opt::hoist_invariants_counted, fun),
            Pass::MemPlan => fir_opt::run_pass(name, fir_opt::memplan_counted, fun),
        }
    }
}

/// What a pipeline application did to one function: every pass run (in
/// application order), the number of fixpoint iterations, and the overall
/// statement counts.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PipelineStats {
    /// Every pass application, in order.
    pub runs: Vec<PassRun>,
    /// Fixpoint iterations executed (0 for the empty pipeline).
    pub iterations: usize,
    /// Statements (all nesting depths) before optimization.
    pub stms_before: usize,
    /// Statements after optimization.
    pub stms_after: usize,
}

impl PipelineStats {
    /// Total rewrites fired across all passes.
    pub fn rewrites(&self) -> usize {
        self.runs.iter().map(|r| r.rewrites).sum()
    }

    /// Total wall time spent in passes, nanoseconds.
    pub fn nanos(&self) -> u64 {
        self.runs.iter().map(|r| r.nanos).sum()
    }

    /// Wall time spent in the named pass (summed over iterations),
    /// nanoseconds.
    pub fn nanos_of(&self, pass: &str) -> u64 {
        self.runs
            .iter()
            .filter(|r| r.pass == pass)
            .map(|r| r.nanos)
            .sum()
    }

    /// Rewrites fired by the named pass (summed over iterations).
    pub fn rewrites_of(&self, pass: &str) -> usize {
        self.runs
            .iter()
            .filter(|r| r.pass == pass)
            .map(|r| r.rewrites)
            .sum()
    }

    /// Statements removed end to end.
    pub fn stms_removed(&self) -> usize {
        self.stms_before.saturating_sub(self.stms_after)
    }
}

/// An ordered sequence of passes, applied left to right on every function
/// an engine compiles (primal and AD-derived alike), optionally iterated
/// until no pass reports a rewrite (bounded by `max_iterations`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PassPipeline {
    passes: Vec<Pass>,
    max_iterations: usize,
}

impl Default for PassPipeline {
    fn default() -> PassPipeline {
        PassPipeline::standard()
    }
}

impl PassPipeline {
    /// The default pipeline: the full pass repertoire — copy propagation,
    /// constant folding, CSE, SOAC fusion, invariant hoisting, dead code —
    /// iterated to a fixed point (bounded at 8 rounds).
    pub fn standard() -> PassPipeline {
        PassPipeline {
            passes: vec![
                Pass::CopyProp,
                Pass::ConstantFold,
                Pass::Cse,
                Pass::Fusion,
                Pass::Hoist,
                Pass::DeadCode,
            ],
            max_iterations: 8,
        }
    }

    /// The standard pipeline plus memory planning: after fusion and
    /// hoisting have settled the program shape, [`Pass::MemPlan`] erases
    /// `copy`s whose source is dead so consumers update in place, and the
    /// engine sizes a per-invocation buffer arena from the resulting
    /// [`fir_opt::BufferPlan`].
    pub fn standard_mem() -> PassPipeline {
        PassPipeline {
            passes: vec![
                Pass::CopyProp,
                Pass::ConstantFold,
                Pass::Cse,
                Pass::Fusion,
                Pass::Hoist,
                Pass::MemPlan,
                Pass::DeadCode,
            ],
            max_iterations: 8,
        }
    }

    /// An empty pipeline: functions reach the backend untouched (and
    /// unclosed — [`PassPipeline::apply`] returns a borrow).
    pub fn none() -> PassPipeline {
        PassPipeline {
            passes: Vec::new(),
            max_iterations: 1,
        }
    }

    /// A pipeline running exactly `passes`, in order, once.
    pub fn new(passes: Vec<Pass>) -> PassPipeline {
        PassPipeline {
            passes,
            max_iterations: 1,
        }
    }

    /// Append a pass.
    pub fn then(mut self, pass: Pass) -> PassPipeline {
        self.passes.push(pass);
        self
    }

    /// Iterate the pass sequence until no pass reports a rewrite, at most
    /// `rounds` times (clamped to at least 1).
    pub fn fixpoint(mut self, rounds: usize) -> PassPipeline {
        self.max_iterations = rounds.max(1);
        self
    }

    /// The passes, in application order.
    pub fn passes(&self) -> &[Pass] {
        &self.passes
    }

    /// The fixpoint iteration bound.
    pub fn max_iterations(&self) -> usize {
        self.max_iterations
    }

    /// A canonical string identifying this pipeline's configuration —
    /// pass names in application order plus the iteration bound, e.g.
    /// `"copy-prop,const-fold,cse,fusion,hoist,dce@8"` (`"@1"` alone for
    /// the empty pipeline). Part of the persistent compile-cache key, so
    /// two engines share on-disk entries exactly when they optimize
    /// identically.
    pub fn cache_key(&self) -> String {
        let names: Vec<&str> = self.passes.iter().map(|p| p.name()).collect();
        format!("{}@{}", names.join(","), self.max_iterations)
    }

    /// Apply the pipeline. The empty pipeline borrows its input instead of
    /// deep-cloning it.
    pub fn apply<'f>(&self, fun: &'f Fun) -> Cow<'f, Fun> {
        self.apply_with_stats(fun).0
    }

    /// Apply the pipeline, reporting per-pass statistics.
    pub fn apply_with_stats<'f>(&self, fun: &'f Fun) -> (Cow<'f, Fun>, PipelineStats) {
        let stms_before = fir_opt::count_stms(fun);
        let mut stats = PipelineStats {
            runs: Vec::new(),
            iterations: 0,
            stms_before,
            stms_after: stms_before,
        };
        if self.passes.is_empty() {
            return (Cow::Borrowed(fun), stats);
        }
        let mut cur = fun.clone();
        for _ in 0..self.max_iterations {
            stats.iterations += 1;
            let mut changed = false;
            for p in &self.passes {
                let _span = fir_trace::span("opt", p.name());
                let (next, run) = p.apply_counted(&cur);
                recheck(p, &next);
                changed |= run.rewrites > 0;
                stats.runs.push(run);
                cur = next;
            }
            if !changed {
                break;
            }
        }
        stats.stms_after = fir_opt::count_stms(&cur);
        (Cow::Owned(cur), stats)
    }
}

/// Debug-mode invariant: every pass must leave the program well-typed.
/// Compiled out in release builds.
fn recheck(pass: &Pass, fun: &Fun) {
    if cfg!(debug_assertions) {
        if let Err(e) = fir::typecheck::check_fun(fun) {
            panic!(
                "optimizer pass `{}` produced ill-typed IR for `{}`: {e}",
                pass.name(),
                fun.name
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fir::builder::Builder;
    use fir::ir::Atom;
    use fir::types::Type;

    fn with_dead_code() -> Fun {
        let mut b = Builder::new();
        b.build_fun("f", &[Type::F64], |b, ps| {
            let _dead = b.fadd(ps[0].into(), Atom::f64(1.0));
            vec![b.fmul(ps[0].into(), ps[0].into())]
        })
    }

    /// A fusable map-map-reduce chain with a map-invariant `sin x` (hoist)
    /// and a duplicated top-level `exp x` (CSE).
    fn fusable() -> Fun {
        let mut b = Builder::new();
        b.build_fun("g", &[Type::F64, Type::arr_f64(1)], |b, ps| {
            let x = Atom::Var(ps[0]);
            let e1 = b.fexp(x);
            let doubled = b.map1(Type::arr_f64(1), &[ps[1]], |b, es| {
                vec![b.fmul(es[0].into(), Atom::f64(2.0))]
            });
            let shifted = b.map1(Type::arr_f64(1), &[doubled], |b, es| {
                let inv = b.fsin(x);
                vec![b.fadd(es[0].into(), inv)]
            });
            let s1 = b.sum(shifted);
            let e2 = b.fexp(x);
            let prod = b.fmul(e1, e2);
            vec![b.fadd(s1.into(), prod)]
        })
    }

    #[test]
    fn none_is_identity_and_standard_simplifies() {
        let f = with_dead_code();
        let untouched = PassPipeline::none().apply(&f);
        assert!(
            matches!(untouched, Cow::Borrowed(_)),
            "the empty pipeline must not clone"
        );
        assert_eq!(untouched.as_ref(), &f);
        let simplified = PassPipeline::standard().apply(&f);
        assert!(fir_opt::count_stms(&simplified) < fir_opt::count_stms(&f));
        fir::typecheck::check_fun(&simplified).unwrap();
    }

    #[test]
    fn pipelines_compose() {
        let p = PassPipeline::none()
            .then(Pass::CopyProp)
            .then(Pass::DeadCode);
        assert_eq!(p.passes(), &[Pass::CopyProp, Pass::DeadCode]);
        let f = with_dead_code();
        assert!(fir_opt::count_stms(&p.apply(&f)) < fir_opt::count_stms(&f));
    }

    #[test]
    fn standard_pipeline_fires_every_new_pass() {
        let f = fusable();
        let (out, stats) = PassPipeline::standard().apply_with_stats(&f);
        fir::typecheck::check_fun(&out).unwrap();
        assert!(stats.rewrites_of("cse") >= 1, "duplicate maps must merge");
        assert!(
            stats.rewrites_of("fusion") >= 2,
            "map-map and map-reduce fusion must fire"
        );
        assert!(stats.rewrites_of("hoist") >= 1, "exp(x) must hoist");
        assert!(stats.iterations >= 2, "fixpoint must iterate");
        assert!(stats.stms_after < stats.stms_before);
        assert_eq!(stats.stms_after, fir_opt::count_stms(&out));
        // The fused reduce survives as a redomap.
        assert!(
            out.body
                .stms
                .iter()
                .any(|s| matches!(s.exp, fir::ir::Exp::Redomap { .. })),
            "expected a redomap in {out}"
        );
    }

    #[test]
    fn single_pass_variants_report_stats() {
        let f = with_dead_code();
        for (pass, expect_rewrites) in [
            (Pass::DeadCode, true),
            (Pass::Fusion, false),
            (Pass::Cse, false),
            (Pass::Hoist, false),
        ] {
            let (out, run) = pass.apply_counted(&f);
            assert_eq!(run.pass, pass.name());
            assert_eq!(run.stms_before, 2);
            assert_eq!(run.stms_after, fir_opt::count_stms(&out));
            assert_eq!(run.rewrites > 0, expect_rewrites, "{}", pass.name());
        }
        let (_, stats) = PassPipeline::new(vec![Pass::DeadCode]).apply_with_stats(&f);
        assert_eq!(stats.iterations, 1);
        assert_eq!(stats.rewrites_of("dce"), 1);
        assert_eq!(stats.stms_removed(), 1);
    }
}
