//! Composable simplification pipelines.
//!
//! Reverse-mode AD by redundant execution deliberately emits dead forward
//! sweeps (paper §4.1); the engine runs a configurable sequence of `fir_opt`
//! passes over every function before handing it to the backend. The default
//! pipeline is the fixed-point [`fir_opt::simplify`]; ablation studies and
//! debugging can compose their own sequence (or disable optimization
//! entirely with [`PassPipeline::none`]).

use fir::ir::Fun;

/// One simplification pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pass {
    /// The fixed-point combination of all passes ([`fir_opt::simplify`]).
    Simplify,
    /// Dead-code elimination only.
    DeadCode,
    /// Constant folding (and 0/1 identity collapsing) only.
    ConstantFold,
    /// Copy propagation only.
    CopyProp,
}

impl Pass {
    /// Apply this pass to a function.
    pub fn apply(&self, fun: &Fun) -> Fun {
        match self {
            Pass::Simplify => fir_opt::simplify(fun),
            Pass::DeadCode => fir_opt::dead_code_elimination(fun),
            Pass::ConstantFold => fir_opt::constant_fold(fun),
            Pass::CopyProp => fir_opt::copy_propagation(fun),
        }
    }
}

/// An ordered sequence of passes, applied left to right on every function
/// an engine compiles (primal and AD-derived alike).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PassPipeline {
    passes: Vec<Pass>,
}

impl Default for PassPipeline {
    fn default() -> PassPipeline {
        PassPipeline::standard()
    }
}

impl PassPipeline {
    /// The default pipeline: fixed-point simplification.
    pub fn standard() -> PassPipeline {
        PassPipeline {
            passes: vec![Pass::Simplify],
        }
    }

    /// An empty pipeline: functions reach the backend untouched.
    pub fn none() -> PassPipeline {
        PassPipeline { passes: Vec::new() }
    }

    /// A pipeline running exactly `passes`, in order.
    pub fn new(passes: Vec<Pass>) -> PassPipeline {
        PassPipeline { passes }
    }

    /// Append a pass.
    pub fn then(mut self, pass: Pass) -> PassPipeline {
        self.passes.push(pass);
        self
    }

    /// The passes, in application order.
    pub fn passes(&self) -> &[Pass] {
        &self.passes
    }

    /// Apply every pass, in order.
    pub fn apply(&self, fun: &Fun) -> Fun {
        let mut cur = fun.clone();
        for p in &self.passes {
            cur = p.apply(&cur);
        }
        cur
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fir::builder::Builder;
    use fir::ir::Atom;
    use fir::types::Type;

    fn with_dead_code() -> Fun {
        let mut b = Builder::new();
        b.build_fun("f", &[Type::F64], |b, ps| {
            let _dead = b.fadd(ps[0].into(), Atom::f64(1.0));
            vec![b.fmul(ps[0].into(), ps[0].into())]
        })
    }

    #[test]
    fn none_is_identity_and_standard_simplifies() {
        let f = with_dead_code();
        assert_eq!(PassPipeline::none().apply(&f), f);
        let simplified = PassPipeline::standard().apply(&f);
        assert!(fir_opt::count_stms(&simplified) < fir_opt::count_stms(&f));
        fir::typecheck::check_fun(&simplified).unwrap();
    }

    #[test]
    fn pipelines_compose() {
        let p = PassPipeline::none()
            .then(Pass::CopyProp)
            .then(Pass::DeadCode);
        assert_eq!(p.passes(), &[Pass::CopyProp, Pass::DeadCode]);
        let f = with_dead_code();
        assert!(fir_opt::count_stms(&p.apply(&f)) < fir_opt::count_stms(&f));
    }
}
