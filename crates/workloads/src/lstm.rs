//! An LSTM sequence model (Table 6 and the D-LSTM column of Table 1).
//!
//! The network follows the architecture of the paper's LSTM case study: a
//! single LSTM cell unrolled over a sequence with a sequential loop, all
//! gate pre-activations computed with dense matrix products (the nested
//! map/reduce nests whose differentiated accumulators dominate the runtime).
//! The training loss is the sum of squared hidden states over time, which
//! keeps the objective scalar without changing the computational structure.

use fir::builder::Builder;
use fir::ir::{Atom, Fun};
use fir::types::Type;
use interp::{Array, Value};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::ir_util::{add_bias, mat_map, mat_map2, mat_sum, matmul};

/// An LSTM problem instance: sequence length `seq`, input dimension `d`,
/// hidden dimension `h`, batch size `bs`.
#[derive(Debug, Clone)]
pub struct LstmData {
    pub seq: usize,
    pub d: usize,
    pub h: usize,
    pub bs: usize,
    pub xs: Vec<f64>,   // seq × d × bs
    pub wx: Vec<f64>,   // 4 × h × d
    pub wh: Vec<f64>,   // 4 × h × h
    pub bias: Vec<f64>, // 4 × h
}

impl LstmData {
    pub fn generate(seq: usize, d: usize, h: usize, bs: usize, seed: u64) -> LstmData {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut gen = |len: usize, s: f64| -> Vec<f64> {
            (0..len).map(|_| rng.gen_range(-1.0..1.0) * s).collect()
        };
        LstmData {
            seq,
            d,
            h,
            bs,
            xs: gen(seq * d * bs, 1.0),
            wx: gen(4 * h * d, 0.3),
            wh: gen(4 * h * h, 0.3),
            bias: gen(4 * h, 0.1),
        }
    }

    /// Arguments for [`objective_ir`]: `xs`, `wx`, `wh`, `bias`.
    pub fn ir_args(&self) -> Vec<Value> {
        vec![
            Value::Arr(Array::from_f64(
                vec![self.seq, self.d, self.bs],
                self.xs.clone(),
            )),
            Value::Arr(Array::from_f64(vec![4, self.h, self.d], self.wx.clone())),
            Value::Arr(Array::from_f64(vec![4, self.h, self.h], self.wh.clone())),
            Value::Arr(Array::from_f64(vec![4, self.h], self.bias.clone())),
        ]
    }

    pub fn num_params(&self) -> usize {
        4 * self.h * self.d + 4 * self.h * self.h + 4 * self.h
    }
}

/// `lstm(xs, wx, wh, bias) -> f64`: the unrolled LSTM training loss.
pub fn objective_ir(h: usize, bs: usize) -> Fun {
    let mut b = Builder::new();
    b.build_fun(
        "lstm_objective",
        &[
            Type::arr_f64(3),
            Type::arr_f64(3),
            Type::arr_f64(3),
            Type::arr_f64(2),
        ],
        |b, ps| {
            let xs = ps[0];
            let wx = ps[1];
            let wh = ps[2];
            let bias = ps[3];
            let seq = b.len(xs);
            let hn = Atom::i64(h as i64);
            let bsn = Atom::i64(bs as i64);
            // Initial hidden and cell state: zeros of shape [h][bs].
            let zrow = b.replicate(bsn, Atom::f64(0.0));
            let h0 = b.replicate(hn, Atom::Var(zrow));
            let c0 = b.replicate(hn, Atom::Var(zrow));
            let out = b.loop_(
                &[
                    (Type::arr_f64(2), Atom::Var(h0)),
                    (Type::arr_f64(2), Atom::Var(c0)),
                    (Type::F64, Atom::f64(0.0)),
                ],
                seq,
                |b, t, state| {
                    let hprev = state[0];
                    let cprev = state[1];
                    let loss = state[2];
                    let xt = b.index(xs, &[t.into()]); // [d][bs]
                                                       // Gate pre-activations: wx[g]·xt + wh[g]·h + bias[g].
                    let mut gates = Vec::new();
                    for g in 0..4 {
                        let wxg = b.index(wx, &[Atom::i64(g)]);
                        let whg = b.index(wh, &[Atom::i64(g)]);
                        let bg = b.index(bias, &[Atom::i64(g)]);
                        let a1 = matmul(b, wxg, xt);
                        let a2 = matmul(b, whg, hprev);
                        let s = mat_map2(b, a1, a2, |b, x, y| b.fadd(x, y));
                        gates.push(add_bias(b, s, bg));
                    }
                    let i_g = mat_map(b, gates[0], |b, x| b.fsigmoid(x));
                    let f_g = mat_map(b, gates[1], |b, x| b.fsigmoid(x));
                    let o_g = mat_map(b, gates[2], |b, x| b.fsigmoid(x));
                    let c_t = mat_map(b, gates[3], |b, x| b.ftanh(x));
                    let fc = mat_map2(b, f_g, cprev, |b, x, y| b.fmul(x, y));
                    let ic = mat_map2(b, i_g, c_t, |b, x, y| b.fmul(x, y));
                    let cnew = mat_map2(b, fc, ic, |b, x, y| b.fadd(x, y));
                    let tanh_c = mat_map(b, cnew, |b, x| b.ftanh(x));
                    let hnew = mat_map2(b, o_g, tanh_c, |b, x, y| b.fmul(x, y));
                    let hsq = mat_map2(b, hnew, hnew, |b, x, y| b.fmul(x, y));
                    let step_loss = mat_sum(b, hsq);
                    let loss2 = b.fadd(loss.into(), step_loss);
                    vec![Atom::Var(hnew), Atom::Var(cnew), loss2]
                },
            );
            vec![out[2].into()]
        },
    )
}

/// The PyTorch-like baseline: the same unrolled LSTM on the tensor tape.
pub fn tensor_gradient(data: &LstmData) -> (f64, Vec<f64>) {
    use tensor::{Graph, Tensor};
    let LstmData {
        seq,
        d,
        h,
        bs,
        xs,
        wx,
        wh,
        bias,
    } = data;
    let (seq, d, h, bs) = (*seq, *d, *h, *bs);
    let g = Graph::new();
    let wx_v: Vec<_> = (0..4)
        .map(|k| g.leaf(Tensor::new(h, d, wx[k * h * d..(k + 1) * h * d].to_vec())))
        .collect();
    let wh_v: Vec<_> = (0..4)
        .map(|k| g.leaf(Tensor::new(h, h, wh[k * h * h..(k + 1) * h * h].to_vec())))
        .collect();
    let b_v: Vec<_> = (0..4)
        .map(|k| g.leaf(Tensor::new(h, 1, bias[k * h..(k + 1) * h].to_vec())))
        .collect();
    let zero_row = g.leaf(Tensor::zeros(1, bs));
    let mut hidden = g.leaf(Tensor::zeros(h, bs));
    let mut cell = g.leaf(Tensor::zeros(h, bs));
    let mut loss = g.leaf(Tensor::scalar(0.0));
    for t in 0..seq {
        let xt = g.leaf(Tensor::new(
            d,
            bs,
            xs[t * d * bs..(t + 1) * d * bs].to_vec(),
        ));
        let mut gates = Vec::new();
        for k in 0..4 {
            let a1 = g.matmul(wx_v[k], xt);
            let a2 = g.matmul(wh_v[k], hidden);
            let s = g.add(a1, a2);
            gates.push(g.add_col_row(s, b_v[k], zero_row));
        }
        let i_g = g.sigmoid(gates[0]);
        let f_g = g.sigmoid(gates[1]);
        let o_g = g.sigmoid(gates[2]);
        let c_t = g.tanh(gates[3]);
        let fc = g.mul(f_g, cell);
        let ic = g.mul(i_g, c_t);
        cell = g.add(fc, ic);
        let tc = g.tanh(cell);
        hidden = g.mul(o_g, tc);
        let hs = g.mul(hidden, hidden);
        let sl = g.sum(hs);
        loss = g.add(loss, sl);
    }
    let grads = g.backward(loss);
    let mut flat = Vec::with_capacity(data.num_params());
    for v in &wx_v {
        flat.extend_from_slice(g.grad(&grads, *v).data());
    }
    for v in &wh_v {
        flat.extend_from_slice(g.grad(&grads, *v).data());
    }
    for v in &b_v {
        flat.extend_from_slice(g.grad(&grads, *v).data());
    }
    (g.value(loss).item(), flat)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fir_api::Engine;
    use futhark_ad::gradcheck::{max_rel_error, reverse_gradient};
    use interp::Interp;

    #[test]
    fn ir_objective_matches_tensor_baseline() {
        let data = LstmData::generate(3, 2, 3, 2, 7);
        let fun = objective_ir(data.h, data.bs);
        let engine = Engine::by_name("interp-seq").unwrap();
        let out = engine.compile(&fun).unwrap().call(&data.ir_args()).unwrap();
        let (tval, _) = tensor_gradient(&data);
        assert!(
            (out[0].as_f64() - tval).abs() < 1e-9,
            "{} vs {tval}",
            out[0].as_f64()
        );
    }

    #[test]
    fn ad_gradient_matches_tensor_baseline() {
        let data = LstmData::generate(3, 2, 3, 2, 8);
        let fun = objective_ir(data.h, data.bs);
        let interp = Interp::sequential();
        let (_, ad) = reverse_gradient(&interp, &fun, &data.ir_args());
        let offset = data.seq * data.d * data.bs; // adjoint of the inputs
        let (_, tgrad) = tensor_gradient(&data);
        assert!(max_rel_error(&ad[offset..], &tgrad) < 1e-7);
    }
}
