//! Small IR-building helpers shared by the workload definitions: matrix
//! products, elementwise maps, log-sum-exp, squared distances.

use fir::builder::Builder;
use fir::ir::{Atom, VarId};
use fir::types::Type;

/// `logsumexp xs = m + log (sum (map (\a -> exp (a - m)) xs))` with
/// `m = maximum xs` — the numerically stable formulation used by GMM.
pub fn logsumexp(b: &mut Builder, xs: VarId) -> Atom {
    let m = b.maximum(xs);
    let shifted = b.map1(Type::arr_f64(1), &[xs], |b, es| {
        let d = b.fsub(es[0].into(), m.into());
        vec![b.fexp(d)]
    });
    let s = b.sum(shifted);
    let l = b.flog(s.into());
    b.fadd(m.into(), l)
}

/// Squared Euclidean distance between two rank-1 arrays of equal length.
pub fn sq_distance(b: &mut Builder, x: VarId, y: VarId) -> Atom {
    let sq = b.map1(Type::arr_f64(1), &[x, y], |b, es| {
        let d = b.fsub(es[0].into(), es[1].into());
        vec![b.fmul(d, d)]
    });
    Atom::Var(b.sum(sq))
}

/// Dense matrix product `a · bm` where `a : [m][k]f64` and `bm : [k][n]f64`,
/// written as the nested map/reduce nest of §6.1.
pub fn matmul(b: &mut Builder, a: VarId, bm: VarId) -> VarId {
    b.map1(Type::arr_f64(2), &[a], |b, rows| {
        let arow = rows[0];
        let b0 = b.index(bm, &[Atom::i64(0)]);
        let n = b.len(b0);
        let cols = b.iota(n);
        let out_row = b.map1(Type::arr_f64(1), &[cols], |b, jv| {
            let j = jv[0];
            let k = b.len(arow);
            let ks = b.iota(k);
            let prods = b.map1(Type::arr_f64(1), &[ks], |b, kv| {
                let aik = b.index(arow, &[kv[0].into()]);
                let bkj = b.index(bm, &[kv[0].into(), j.into()]);
                vec![b.fmul(aik.into(), bkj.into())]
            });
            vec![Atom::Var(b.sum(prods))]
        });
        vec![Atom::Var(out_row)]
    })
}

/// Elementwise binary map over two equally-shaped matrices.
pub fn mat_map2(
    b: &mut Builder,
    x: VarId,
    y: VarId,
    f: impl Fn(&mut Builder, Atom, Atom) -> Atom + Copy,
) -> VarId {
    b.map1(Type::arr_f64(2), &[x, y], |b, rows| {
        let r = b.map1(Type::arr_f64(1), &[rows[0], rows[1]], |b, es| {
            vec![f(b, es[0].into(), es[1].into())]
        });
        vec![Atom::Var(r)]
    })
}

/// Elementwise unary map over a matrix.
pub fn mat_map(b: &mut Builder, x: VarId, f: impl Fn(&mut Builder, Atom) -> Atom + Copy) -> VarId {
    b.map1(Type::arr_f64(2), &[x], |b, rows| {
        let r = b.map1(Type::arr_f64(1), &[rows[0]], |b, es| {
            vec![f(b, es[0].into())]
        });
        vec![Atom::Var(r)]
    })
}

/// Add a column-vector bias to every column of a matrix: `out[r][c] =
/// x[r][c] + bias[r]`.
pub fn add_bias(b: &mut Builder, x: VarId, bias: VarId) -> VarId {
    b.map1(Type::arr_f64(2), &[x, bias], |b, es| {
        let row = es[0];
        let bi = es[1];
        let r = b.map1(Type::arr_f64(1), &[row], |b, rs| {
            vec![b.fadd(rs[0].into(), bi.into())]
        });
        vec![Atom::Var(r)]
    })
}

/// Sum of all entries of a matrix.
pub fn mat_sum(b: &mut Builder, x: VarId) -> Atom {
    let rows = b.map1(Type::arr_f64(1), &[x], |b, rs| {
        vec![Atom::Var(b.sum(rs[0]))]
    });
    Atom::Var(b.sum(rows))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fir_api::Engine;
    use interp::{Array, Value};

    #[test]
    fn matmul_ir_matches_reference() {
        let mut b = Builder::new();
        let f = b.build_fun("mm", &[Type::arr_f64(2), Type::arr_f64(2)], |b, ps| {
            let c = matmul(b, ps[0], ps[1]);
            vec![Atom::Var(c)]
        });
        let a = Value::Arr(Array::from_f64(
            vec![2, 3],
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0],
        ));
        let bm = Value::Arr(Array::from_f64(
            vec![3, 2],
            vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0],
        ));
        let engine = Engine::by_name("interp-seq").unwrap();
        let out = engine.compile(&f).unwrap().call(&[a, bm]).unwrap();
        assert_eq!(out[0].as_arr().f64s(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn logsumexp_is_stable_and_correct() {
        let mut b = Builder::new();
        let f = b.build_fun("lse", &[Type::arr_f64(1)], |b, ps| {
            vec![logsumexp(b, ps[0])]
        });
        let xs = vec![1.0, 2.0, 3.0];
        let want = (xs.iter().map(|x: &f64| x.exp()).sum::<f64>()).ln();
        let engine = Engine::by_name("interp-seq").unwrap();
        let out = engine
            .compile(&f)
            .unwrap()
            .call(&[Value::from(xs)])
            .unwrap();
        assert!((out[0].as_f64() - want).abs() < 1e-12);
    }
}
