//! RSBench- and XSBench-like Monte Carlo neutron-transport lookup kernels
//! (Table 2). Both are a single large `map` over lookups whose body contains
//! sequential loops, data-dependent branching and indirect indexing —
//! exactly the structure the paper ports to Futhark to compare against
//! Enzyme. The nuclear data is synthetic; the differentiated quantity is the
//! total macroscopic cross-section with respect to the nuclide data.

use fir::builder::Builder;
use fir::ir::{Atom, Fun};
use fir::types::Type;
use interp::{Array, Value};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// An XSBench-like instance: a unionised energy grid of `g` points,
/// `nuclides` nuclides with pointwise cross sections, and `lookups` random
/// (energy, material-density) queries.
#[derive(Debug, Clone)]
pub struct XsData {
    pub g: usize,
    pub nuclides: usize,
    pub lookups: usize,
    pub xs_data: Vec<f64>,   // nuclides × g
    pub densities: Vec<f64>, // nuclides
    pub energies: Vec<f64>,  // lookups in [0, 1)
}

impl XsData {
    pub fn generate(g: usize, nuclides: usize, lookups: usize, seed: u64) -> XsData {
        let mut rng = SmallRng::seed_from_u64(seed);
        XsData {
            g,
            nuclides,
            lookups,
            xs_data: (0..nuclides * g).map(|_| rng.gen_range(0.1..2.0)).collect(),
            densities: (0..nuclides).map(|_| rng.gen_range(0.01..1.0)).collect(),
            energies: (0..lookups).map(|_| rng.gen_range(0.0..1.0)).collect(),
        }
    }

    pub fn ir_args(&self) -> Vec<Value> {
        vec![
            Value::Arr(Array::from_f64(
                vec![self.nuclides, self.g],
                self.xs_data.clone(),
            )),
            Value::from(self.densities.clone()),
            Value::from(self.energies.clone()),
        ]
    }
}

/// `xsbench(xs_data, densities, energies) -> f64`: for every lookup, find
/// the grid interval of its energy, interpolate each nuclide's cross
/// section, weight by density and accumulate; the result is the sum over
/// lookups of the macroscopic cross sections.
pub fn xsbench_ir(g: usize) -> Fun {
    let mut b = Builder::new();
    b.build_fun(
        "xsbench",
        &[Type::arr_f64(2), Type::arr_f64(1), Type::arr_f64(1)],
        |b, ps| {
            let xs_data = ps[0];
            let densities = ps[1];
            let energies = ps[2];
            let gm1 = Atom::f64((g - 1) as f64);
            let per_lookup = b.map1(Type::arr_f64(1), &[energies], |b, es| {
                let e = es[0];
                // Grid interval and interpolation weight.
                let scaled = b.fmul(e.into(), gm1);
                let idx_f = b.to_i64(scaled);
                let idx = b.imin(idx_f, Atom::i64((g - 2) as i64));
                let idx_f64 = b.to_f64(idx);
                let frac = b.fsub(scaled, idx_f64);
                let idx1 = b.iadd(idx, Atom::i64(1));
                // Sum over nuclides: density-weighted interpolated xs, with a
                // branch that zeroes out negligible densities (the control
                // flow the original kernels exhibit).
                let contribs = b.map1(Type::arr_f64(1), &[xs_data, densities], |b, ns| {
                    let row = ns[0];
                    let dens = ns[1];
                    let lo = b.index(row, &[idx]);
                    let hi = b.index(row, &[idx1]);
                    let diff = b.fsub(hi.into(), lo.into());
                    let interp = b.fmul(frac, diff);
                    let xs = b.fadd(lo.into(), interp);
                    let is_small = b.lt(dens.into(), Atom::f64(0.05));
                    let weighted = b.fmul(dens.into(), xs);
                    let r = b.if_(
                        is_small,
                        &[Type::F64],
                        |_b| vec![Atom::f64(0.0)],
                        |_b| vec![weighted],
                    );
                    vec![r[0].into()]
                });
                vec![Atom::Var(b.sum(contribs))]
            });
            vec![Atom::Var(b.sum(per_lookup))]
        },
    )
}

/// An RSBench-like instance: windowed multipole resonances. Each nuclide
/// has `windows` windows of `poles` poles; a lookup evaluates the resonance
/// contribution of every pole in the window its energy falls into.
#[derive(Debug, Clone)]
pub struct RsData {
    pub nuclides: usize,
    pub windows: usize,
    pub poles: usize,
    pub lookups: usize,
    pub amplitudes: Vec<f64>, // nuclides × windows × poles
    pub centers: Vec<f64>,    // nuclides × windows × poles
    pub widths: Vec<f64>,     // nuclides × windows × poles
    pub energies: Vec<f64>,   // lookups
}

impl RsData {
    pub fn generate(
        nuclides: usize,
        windows: usize,
        poles: usize,
        lookups: usize,
        seed: u64,
    ) -> RsData {
        let mut rng = SmallRng::seed_from_u64(seed);
        let total = nuclides * windows * poles;
        RsData {
            nuclides,
            windows,
            poles,
            lookups,
            amplitudes: (0..total).map(|_| rng.gen_range(0.1..1.0)).collect(),
            centers: (0..total).map(|_| rng.gen_range(0.0..1.0)).collect(),
            widths: (0..total).map(|_| rng.gen_range(0.05..0.3)).collect(),
            energies: (0..lookups).map(|_| rng.gen_range(0.0..1.0)).collect(),
        }
    }

    pub fn ir_args(&self) -> Vec<Value> {
        let shape = vec![self.nuclides, self.windows, self.poles];
        vec![
            Value::Arr(Array::from_f64(shape.clone(), self.amplitudes.clone())),
            Value::Arr(Array::from_f64(shape.clone(), self.centers.clone())),
            Value::Arr(Array::from_f64(shape, self.widths.clone())),
            Value::from(self.energies.clone()),
        ]
    }
}

/// `rsbench(amplitudes, centers, widths, energies) -> f64`: for every lookup
/// and nuclide, evaluate the Lorentzian contribution of every pole in the
/// energy's window with an inner sequential loop.
pub fn rsbench_ir(windows: usize, poles: usize) -> Fun {
    let mut b = Builder::new();
    b.build_fun(
        "rsbench",
        &[
            Type::arr_f64(3),
            Type::arr_f64(3),
            Type::arr_f64(3),
            Type::arr_f64(1),
        ],
        |b, ps| {
            let amps = ps[0];
            let centers = ps[1];
            let widths = ps[2];
            let energies = ps[3];
            let per_lookup = b.map1(Type::arr_f64(1), &[energies], |b, es| {
                let e = es[0];
                let scaled = b.fmul(e.into(), Atom::f64(windows as f64));
                let w_f = b.to_i64(scaled);
                let w = b.imin(w_f, Atom::i64((windows - 1) as i64));
                let per_nuclide = b.map1(Type::arr_f64(1), &[amps, centers, widths], |b, ns| {
                    let arow = b.index(ns[0], &[w]);
                    let crow = b.index(ns[1], &[w]);
                    let wrow = b.index(ns[2], &[w]);
                    // Inner sequential loop over the poles of the window.
                    let acc = b.loop_(
                        &[(Type::F64, Atom::f64(0.0))],
                        Atom::i64(poles as i64),
                        |b, p, state| {
                            let a = b.index(arow, &[p.into()]);
                            let c = b.index(crow, &[p.into()]);
                            let wd = b.index(wrow, &[p.into()]);
                            let de = b.fsub(e.into(), c.into());
                            let de2 = b.fmul(de, de);
                            let w2 = b.fmul(wd.into(), wd.into());
                            let denom = b.fadd(de2, w2);
                            let contrib = b.fdiv(a.into(), denom);
                            vec![b.fadd(state[0].into(), contrib)]
                        },
                    );
                    vec![acc[0].into()]
                });
                vec![Atom::Var(b.sum(per_nuclide))]
            });
            vec![Atom::Var(b.sum(per_lookup))]
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use futhark_ad::gradcheck::assert_gradients_match;

    #[test]
    fn xsbench_gradient_matches_finite_differences() {
        let data = XsData::generate(16, 4, 10, 1);
        let fun = xsbench_ir(data.g);
        assert_gradients_match(&fun, &data.ir_args(), 1e-4);
    }

    #[test]
    fn rsbench_gradient_matches_finite_differences() {
        let data = RsData::generate(3, 4, 3, 8, 2);
        let fun = rsbench_ir(data.windows, data.poles);
        assert_gradients_match(&fun, &data.ir_args(), 1e-4);
    }
}
