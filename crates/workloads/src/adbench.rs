//! The remaining ADBench problems of Table 1: BA (bundle adjustment), HAND
//! (hand tracking, simple and complicated) and D-LSTM (a recurrent sequence
//! model). Each problem provides
//!
//! * an IR objective differentiated by `futhark_ad::vjp` (the "Futhark"
//!   column),
//! * the same objective for `tape_ad::gradient` (the "Tapenade" column), and
//! * a hand-written Rust gradient (the "Manual" column), validated against
//!   AD in the unit tests.
//!
//! The geometric models are simplified relative to ADBench (linearised
//! rotations for BA, planar bone rotations for HAND, a tanh-RNN cell for
//! D-LSTM); the simplifications are documented in EXPERIMENTS.md. The
//! structural properties that matter for AD — indirect indexing of shared
//! parameter arrays (BA), many-to-one weighted blends (HAND), a sequential
//! recurrence (D-LSTM) — are preserved.

use fir::builder::Builder;
use fir::ir::{Atom, Fun};
use fir::types::Type;
use interp::{Array, Value};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

// ---------------------------------------------------------------------
// BA — bundle adjustment
// ---------------------------------------------------------------------

/// A bundle-adjustment instance: `m` cameras (7 parameters each: rotation
/// vector, translation, focal length), `p` 3-D points, `o` observations.
#[derive(Debug, Clone)]
pub struct BaData {
    pub m: usize,
    pub p: usize,
    pub o: usize,
    pub cams: Vec<f64>,    // m × 7
    pub points: Vec<f64>,  // p × 3
    pub cam_idx: Vec<i64>, // o
    pub pt_idx: Vec<i64>,  // o
    pub meas: Vec<f64>,    // o × 2
}

impl BaData {
    pub fn generate(m: usize, p: usize, o: usize, seed: u64) -> BaData {
        let mut rng = SmallRng::seed_from_u64(seed);
        BaData {
            m,
            p,
            o,
            cams: (0..m * 7).map(|_| rng.gen_range(-0.5..0.5)).collect(),
            points: (0..p * 3).map(|_| rng.gen_range(-1.0..1.0)).collect(),
            cam_idx: (0..o).map(|_| rng.gen_range(0..m) as i64).collect(),
            pt_idx: (0..o).map(|_| rng.gen_range(0..p) as i64).collect(),
            meas: (0..o * 2).map(|_| rng.gen_range(-1.0..1.0)).collect(),
        }
    }

    pub fn ir_args(&self) -> Vec<Value> {
        vec![
            Value::Arr(Array::from_f64(vec![self.m, 7], self.cams.clone())),
            Value::Arr(Array::from_f64(vec![self.p, 3], self.points.clone())),
            Value::from(self.cam_idx.clone()),
            Value::from(self.pt_idx.clone()),
            Value::Arr(Array::from_f64(vec![self.o, 2], self.meas.clone())),
        ]
    }
}

/// `ba(cams, points, cam_idx, pt_idx, meas) -> f64` — the total squared
/// reprojection error, with a linearised rotation `R(r)·x ≈ x + r × x` and
/// an orthographic projection `proj = f · (P_x, P_y)`.
pub fn ba_objective_ir() -> Fun {
    let mut b = Builder::new();
    b.build_fun(
        "ba_objective",
        &[
            Type::arr_f64(2),
            Type::arr_f64(2),
            Type::arr_i64(1),
            Type::arr_i64(1),
            Type::arr_f64(2),
        ],
        |b, ps| {
            let cams = ps[0];
            let points = ps[1];
            let cam_idx = ps[2];
            let pt_idx = ps[3];
            let meas = ps[4];
            let errs = b.map1(Type::arr_f64(1), &[cam_idx, pt_idx, meas], |b, es| {
                let ci = es[0];
                let pi = es[1];
                let ms = es[2];
                let cam = b.index(cams, &[ci.into()]);
                let pt = b.index(points, &[pi.into()]);
                let r0 = b.index(cam, &[Atom::i64(0)]);
                let r1 = b.index(cam, &[Atom::i64(1)]);
                let r2 = b.index(cam, &[Atom::i64(2)]);
                let t0 = b.index(cam, &[Atom::i64(3)]);
                let t1 = b.index(cam, &[Atom::i64(4)]);
                let f = b.index(cam, &[Atom::i64(6)]);
                let x0 = b.index(pt, &[Atom::i64(0)]);
                let x1 = b.index(pt, &[Atom::i64(1)]);
                let x2 = b.index(pt, &[Atom::i64(2)]);
                // P = x + r × x + t  (only the first two components matter).
                let r1x2 = b.fmul(r1.into(), x2.into());
                let r2x1 = b.fmul(r2.into(), x1.into());
                let cross0 = b.fsub(r1x2, r2x1);
                let r2x0 = b.fmul(r2.into(), x0.into());
                let r0x2 = b.fmul(r0.into(), x2.into());
                let cross1 = b.fsub(r2x0, r0x2);
                let p0a = b.fadd(x0.into(), cross0);
                let p0 = b.fadd(p0a, t0.into());
                let p1a = b.fadd(x1.into(), cross1);
                let p1 = b.fadd(p1a, t1.into());
                let proj0 = b.fmul(f.into(), p0);
                let proj1 = b.fmul(f.into(), p1);
                let m0 = b.index(ms, &[Atom::i64(0)]);
                let m1 = b.index(ms, &[Atom::i64(1)]);
                let e0 = b.fsub(proj0, m0.into());
                let e1 = b.fsub(proj1, m1.into());
                let e0sq = b.fmul(e0, e0);
                let e1sq = b.fmul(e1, e1);
                vec![b.fadd(e0sq, e1sq)]
            });
            vec![Atom::Var(b.sum(errs))]
        },
    )
}

/// Hand-written BA objective and gradient (w.r.t. cameras and points).
pub fn ba_manual(data: &BaData) -> (f64, Vec<f64>, Vec<f64>) {
    let mut cost = 0.0;
    let mut d_cams = vec![0.0; data.m * 7];
    let mut d_pts = vec![0.0; data.p * 3];
    for k in 0..data.o {
        let c = data.cam_idx[k] as usize;
        let q = data.pt_idx[k] as usize;
        let cam = &data.cams[c * 7..(c + 1) * 7];
        let x = &data.points[q * 3..(q + 1) * 3];
        let (r0, r1, r2, t0, t1, f) = (cam[0], cam[1], cam[2], cam[3], cam[4], cam[6]);
        let p0 = x[0] + r1 * x[2] - r2 * x[1] + t0;
        let p1 = x[1] + r2 * x[0] - r0 * x[2] + t1;
        let e0 = f * p0 - data.meas[k * 2];
        let e1 = f * p1 - data.meas[k * 2 + 1];
        cost += e0 * e0 + e1 * e1;
        let (g0, g1) = (2.0 * e0, 2.0 * e1);
        // Camera gradients.
        d_cams[c * 7] += g1 * f * (-x[2]); // r0 (only P1 depends on it)
        d_cams[c * 7 + 1] += g0 * f * x[2]; // r1
        d_cams[c * 7 + 2] += g0 * f * (-x[1]) + g1 * f * x[0]; // r2
        d_cams[c * 7 + 3] += g0 * f; // t0
        d_cams[c * 7 + 4] += g1 * f; // t1
        d_cams[c * 7 + 6] += g0 * p0 + g1 * p1; // focal
                                                // Point gradients.
        d_pts[q * 3] += g0 * f + g1 * f * r2;
        d_pts[q * 3 + 1] += g0 * f * (-r2) + g1 * f;
        d_pts[q * 3 + 2] += g0 * f * r1 + g1 * f * (-r0);
    }
    (cost, d_cams, d_pts)
}

// ---------------------------------------------------------------------
// HAND — hand tracking
// ---------------------------------------------------------------------

/// A hand-tracking instance: `n` vertices blended over `bones` planar bone
/// rotations. The "complicated" variant adds a per-vertex scale parameter
/// `us` whose gradient is also required.
#[derive(Debug, Clone)]
pub struct HandData {
    pub n: usize,
    pub bones: usize,
    pub theta: Vec<f64>,   // bones
    pub base: Vec<f64>,    // n × 3
    pub weights: Vec<f64>, // n × bones
    pub targets: Vec<f64>, // n × 3
    pub us: Vec<f64>,      // n (complicated variant only)
}

impl HandData {
    pub fn generate(n: usize, bones: usize, seed: u64) -> HandData {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut weights = vec![0.0; n * bones];
        for i in 0..n {
            let mut total = 0.0;
            for b in 0..bones {
                let w: f64 = rng.gen_range(0.0..1.0);
                weights[i * bones + b] = w;
                total += w;
            }
            for b in 0..bones {
                weights[i * bones + b] /= total;
            }
        }
        HandData {
            n,
            bones,
            theta: (0..bones).map(|_| rng.gen_range(-0.8..0.8)).collect(),
            base: (0..n * 3).map(|_| rng.gen_range(-1.0..1.0)).collect(),
            weights,
            targets: (0..n * 3).map(|_| rng.gen_range(-1.0..1.0)).collect(),
            us: (0..n).map(|_| rng.gen_range(-0.2..0.2)).collect(),
        }
    }

    pub fn ir_args(&self, complicated: bool) -> Vec<Value> {
        let mut args = vec![
            Value::from(self.theta.clone()),
            Value::Arr(Array::from_f64(vec![self.n, 3], self.base.clone())),
            Value::Arr(Array::from_f64(
                vec![self.n, self.bones],
                self.weights.clone(),
            )),
            Value::Arr(Array::from_f64(vec![self.n, 3], self.targets.clone())),
        ];
        if complicated {
            args.push(Value::from(self.us.clone()));
        }
        args
    }
}

/// `hand(theta, base, weights, targets[, us]) -> f64`.
pub fn hand_objective_ir(complicated: bool) -> Fun {
    let mut b = Builder::new();
    let mut params = vec![
        Type::arr_f64(1),
        Type::arr_f64(2),
        Type::arr_f64(2),
        Type::arr_f64(2),
    ];
    if complicated {
        params.push(Type::arr_f64(1));
    }
    b.build_fun(
        if complicated {
            "hand_complicated"
        } else {
            "hand_simple"
        },
        &params,
        |b, ps| {
            let theta = ps[0];
            let base = ps[1];
            let weights = ps[2];
            let targets = ps[3];
            let us = if complicated { Some(ps[4]) } else { None };
            let per_vertex_args: Vec<_> = if let Some(u) = us {
                vec![base, weights, targets, u]
            } else {
                vec![base, weights, targets]
            };
            let errs = b.map1(Type::arr_f64(1), &per_vertex_args, |b, es| {
                let bp = es[0];
                let ws = es[1];
                let tg = es[2];
                let x = b.index(bp, &[Atom::i64(0)]);
                let y = b.index(bp, &[Atom::i64(1)]);
                let z = b.index(bp, &[Atom::i64(2)]);
                // Blend the planar bone rotations with the vertex weights.
                let blended = b.map(
                    &[Type::arr_f64(1), Type::arr_f64(1), Type::arr_f64(1)],
                    &[theta, ws],
                    |b, ts| {
                        let th = ts[0];
                        let w = ts[1];
                        let c = b.fcos(th.into());
                        let s = b.fsin(th.into());
                        let cx = b.fmul(c, x.into());
                        let sy = b.fmul(s, y.into());
                        let vx = b.fsub(cx, sy);
                        let sx = b.fmul(s, x.into());
                        let cy = b.fmul(c, y.into());
                        let vy = b.fadd(sx, cy);
                        vec![
                            b.fmul(w.into(), vx),
                            b.fmul(w.into(), vy),
                            b.fmul(w.into(), z.into()),
                        ]
                    },
                );
                let vx = b.sum(blended[0]);
                let vy = b.sum(blended[1]);
                let vz = b.sum(blended[2]);
                let (vx, vy, vz) = if let Some(u) = us {
                    let _ = u;
                    let uv = es[3];
                    let scale = b.fadd(Atom::f64(1.0), uv.into());
                    (
                        b.fmul(scale, vx.into()),
                        b.fmul(scale, vy.into()),
                        b.fmul(scale, vz.into()),
                    )
                } else {
                    (vx.into(), vy.into(), vz.into())
                };
                let t0 = b.index(tg, &[Atom::i64(0)]);
                let t1 = b.index(tg, &[Atom::i64(1)]);
                let t2 = b.index(tg, &[Atom::i64(2)]);
                let e0 = b.fsub(vx, t0.into());
                let e1 = b.fsub(vy, t1.into());
                let e2 = b.fsub(vz, t2.into());
                let s0 = b.fmul(e0, e0);
                let s1 = b.fmul(e1, e1);
                let s2 = b.fmul(e2, e2);
                let s01 = b.fadd(s0, s1);
                vec![b.fadd(s01, s2)]
            });
            vec![Atom::Var(b.sum(errs))]
        },
    )
}

/// Hand-written HAND objective and gradient w.r.t. `theta` (and `us` in the
/// complicated variant).
pub fn hand_manual(data: &HandData, complicated: bool) -> (f64, Vec<f64>, Vec<f64>) {
    let mut cost = 0.0;
    let mut d_theta = vec![0.0; data.bones];
    let mut d_us = vec![0.0; data.n];
    for i in 0..data.n {
        let base = &data.base[i * 3..(i + 1) * 3];
        let tgt = &data.targets[i * 3..(i + 1) * 3];
        let scale = if complicated { 1.0 + data.us[i] } else { 1.0 };
        let mut v = [0.0; 3];
        for bn in 0..data.bones {
            let w = data.weights[i * data.bones + bn];
            let (c, s) = (data.theta[bn].cos(), data.theta[bn].sin());
            v[0] += w * (c * base[0] - s * base[1]);
            v[1] += w * (s * base[0] + c * base[1]);
            v[2] += w * base[2];
        }
        let vs = [v[0] * scale, v[1] * scale, v[2] * scale];
        let e = [vs[0] - tgt[0], vs[1] - tgt[1], vs[2] - tgt[2]];
        cost += e.iter().map(|x| x * x).sum::<f64>();
        for bn in 0..data.bones {
            let w = data.weights[i * data.bones + bn];
            let (c, s) = (data.theta[bn].cos(), data.theta[bn].sin());
            let dvx = w * (-s * base[0] - c * base[1]) * scale;
            let dvy = w * (c * base[0] - s * base[1]) * scale;
            d_theta[bn] += 2.0 * (e[0] * dvx + e[1] * dvy);
        }
        if complicated {
            d_us[i] += 2.0 * (e[0] * v[0] + e[1] * v[1] + e[2] * v[2]);
        }
    }
    (cost, d_theta, d_us)
}

// ---------------------------------------------------------------------
// D-LSTM — a recurrent sequence model (tanh RNN cell)
// ---------------------------------------------------------------------

/// A D-LSTM (recurrent sequence model) instance.
#[derive(Debug, Clone)]
pub struct DlstmData {
    pub seq: usize,
    pub d: usize,
    pub h: usize,
    pub xs: Vec<f64>, // seq × d
    pub w: Vec<f64>,  // h × h
    pub u: Vec<f64>,  // h × d
    pub b: Vec<f64>,  // h
}

impl DlstmData {
    pub fn generate(seq: usize, d: usize, h: usize, seed: u64) -> DlstmData {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut gen = |len: usize, s: f64| -> Vec<f64> {
            (0..len).map(|_| rng.gen_range(-1.0..1.0) * s).collect()
        };
        DlstmData {
            seq,
            d,
            h,
            xs: gen(seq * d, 1.0),
            w: gen(h * h, 0.4),
            u: gen(h * d, 0.4),
            b: gen(h, 0.1),
        }
    }

    pub fn ir_args(&self) -> Vec<Value> {
        vec![
            Value::Arr(Array::from_f64(vec![self.seq, self.d], self.xs.clone())),
            Value::Arr(Array::from_f64(vec![self.h, self.h], self.w.clone())),
            Value::Arr(Array::from_f64(vec![self.h, self.d], self.u.clone())),
            Value::from(self.b.clone()),
        ]
    }
}

/// `dlstm(xs, w, u, b) -> f64`: `h_{t+1} = tanh(W h_t + U x_t + b)`, loss is
/// the sum of squared hidden states over time.
pub fn dlstm_objective_ir(h: usize) -> Fun {
    let mut b = Builder::new();
    b.build_fun(
        "dlstm_objective",
        &[
            Type::arr_f64(2),
            Type::arr_f64(2),
            Type::arr_f64(2),
            Type::arr_f64(1),
        ],
        |b, ps| {
            let xs = ps[0];
            let w = ps[1];
            let u = ps[2];
            let bias = ps[3];
            let seq = b.len(xs);
            let hn = Atom::i64(h as i64);
            let h0 = b.replicate(hn, Atom::f64(0.0));
            let out = b.loop_(
                &[
                    (Type::arr_f64(1), Atom::Var(h0)),
                    (Type::F64, Atom::f64(0.0)),
                ],
                seq,
                |b, t, state| {
                    let hprev = state[0];
                    let loss = state[1];
                    let xt = b.index(xs, &[t.into()]);
                    let hnew = b.map1(Type::arr_f64(1), &[w, u, bias], |b, rows| {
                        let wrow = rows[0];
                        let urow = rows[1];
                        let bj = rows[2];
                        let wh = b.map1(Type::arr_f64(1), &[wrow, hprev], |b, es| {
                            vec![b.fmul(es[0].into(), es[1].into())]
                        });
                        let ux = b.map1(Type::arr_f64(1), &[urow, xt], |b, es| {
                            vec![b.fmul(es[0].into(), es[1].into())]
                        });
                        let s1 = b.sum(wh);
                        let s2 = b.sum(ux);
                        let s = b.fadd(s1.into(), s2.into());
                        let pre = b.fadd(s, bj.into());
                        vec![b.ftanh(pre)]
                    });
                    let sq = b.map1(Type::arr_f64(1), &[hnew], |b, es| {
                        vec![b.fmul(es[0].into(), es[0].into())]
                    });
                    let step = b.sum(sq);
                    let loss2 = b.fadd(loss.into(), step.into());
                    vec![Atom::Var(hnew), loss2]
                },
            );
            vec![out[1].into()]
        },
    )
}

/// Hand-written BPTT gradient for the D-LSTM (w.r.t. `w`, `u`, `b`).
pub fn dlstm_manual(data: &DlstmData) -> (f64, Vec<f64>, Vec<f64>, Vec<f64>) {
    let DlstmData {
        seq,
        d,
        h,
        xs,
        w,
        u,
        b,
    } = data;
    let (seq, d, h) = (*seq, *d, *h);
    // Forward pass, storing hidden states and pre-activations.
    let mut hs = vec![vec![0.0; h]];
    let mut loss = 0.0;
    for t in 0..seq {
        let x = &xs[t * d..(t + 1) * d];
        let prev = hs[t].clone();
        let mut cur = vec![0.0; h];
        for j in 0..h {
            let mut pre = b[j];
            for l in 0..h {
                pre += w[j * h + l] * prev[l];
            }
            for l in 0..d {
                pre += u[j * d + l] * x[l];
            }
            cur[j] = pre.tanh();
            loss += cur[j] * cur[j];
        }
        hs.push(cur);
    }
    // Backward pass.
    let mut dw = vec![0.0; h * h];
    let mut du = vec![0.0; h * d];
    let mut db = vec![0.0; h];
    let mut dh_next = vec![0.0; h];
    for t in (0..seq).rev() {
        let x = &xs[t * d..(t + 1) * d];
        let prev = &hs[t];
        let cur = &hs[t + 1];
        let mut dh_prev = vec![0.0; h];
        for j in 0..h {
            let dh = dh_next[j] + 2.0 * cur[j];
            let dpre = dh * (1.0 - cur[j] * cur[j]);
            db[j] += dpre;
            for l in 0..h {
                dw[j * h + l] += dpre * prev[l];
                dh_prev[l] += dpre * w[j * h + l];
            }
            for l in 0..d {
                du[j * d + l] += dpre * x[l];
            }
        }
        dh_next = dh_prev;
    }
    (loss, dw, du, db)
}

#[cfg(test)]
mod tests {
    use super::*;
    use futhark_ad::gradcheck::{max_rel_error, reverse_gradient};
    use interp::Interp;

    #[test]
    fn ba_gradient_matches_manual() {
        let data = BaData::generate(3, 5, 12, 1);
        let fun = ba_objective_ir();
        let interp = Interp::sequential();
        let (val, ad) = reverse_gradient(&interp, &fun, &data.ir_args());
        let (cost, d_cams, d_pts) = ba_manual(&data);
        assert!((val - cost).abs() < 1e-9);
        let manual: Vec<f64> = d_cams.into_iter().chain(d_pts).collect();
        // Adjoints come back in parameter order: cams, points, then meas
        // (the measurements' adjoint is not compared).
        let want_len = data.m * 7 + data.p * 3;
        assert!(max_rel_error(&ad[..want_len], &manual) < 1e-7);
    }

    #[test]
    fn hand_gradients_match_manual() {
        let data = HandData::generate(6, 3, 2);
        for complicated in [false, true] {
            let fun = hand_objective_ir(complicated);
            let interp = Interp::sequential();
            let (val, ad) = reverse_gradient(&interp, &fun, &data.ir_args(complicated));
            let (cost, d_theta, d_us) = hand_manual(&data, complicated);
            assert!((val - cost).abs() < 1e-9);
            assert!(max_rel_error(&ad[..data.bones], &d_theta) < 1e-7);
            if complicated {
                let tail = &ad[ad.len() - data.n..];
                assert!(max_rel_error(tail, &d_us) < 1e-7);
            }
        }
    }

    #[test]
    fn dlstm_gradient_matches_manual_bptt() {
        let data = DlstmData::generate(4, 3, 3, 5);
        let fun = dlstm_objective_ir(data.h);
        let interp = Interp::sequential();
        let (val, ad) = reverse_gradient(&interp, &fun, &data.ir_args());
        let (loss, dw, du, db) = dlstm_manual(&data);
        assert!((val - loss).abs() < 1e-9);
        let offset = data.seq * data.d;
        let manual: Vec<f64> = dw.into_iter().chain(du).chain(db).collect();
        assert!(max_rel_error(&ad[offset..], &manual) < 1e-7);
    }
}
