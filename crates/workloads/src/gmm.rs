//! The GMM (Gaussian Mixture Model) log-likelihood objective of ADBench,
//! with diagonal covariances.
//!
//! The ADBench GMM parameterises covariances with an inverse Cholesky
//! factor (`Q` matrices); we substitute diagonal covariances (log standard
//! deviations), which keeps the same computational structure — an `n × K`
//! map of per-component quadratic forms followed by a log-sum-exp reduction
//! — while making the hand-written gradient (the "Manual" column) tractable.
//! The substitution is recorded in EXPERIMENTS.md.

use fir::builder::Builder;
use fir::ir::{Atom, Fun};
use fir::types::Type;
use interp::{Array, Value};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::ir_util::logsumexp;

/// A GMM problem instance: `n` points of dimension `d`, `k` components.
#[derive(Debug, Clone)]
pub struct GmmData {
    pub n: usize,
    pub d: usize,
    pub k: usize,
    pub xs: Vec<f64>,         // n × d
    pub alphas: Vec<f64>,     // k
    pub means: Vec<f64>,      // k × d
    pub log_sigmas: Vec<f64>, // k × d
}

impl GmmData {
    /// Generate a synthetic instance with the given shape (matching the
    /// parameter counts of the ADBench datasets of Table 5a).
    pub fn generate(n: usize, d: usize, k: usize, seed: u64) -> GmmData {
        let mut rng = SmallRng::seed_from_u64(seed);
        let gen = |rng: &mut SmallRng, len: usize, scale: f64| -> Vec<f64> {
            (0..len).map(|_| rng.gen_range(-1.0..1.0) * scale).collect()
        };
        GmmData {
            n,
            d,
            k,
            xs: gen(&mut rng, n * d, 2.0),
            alphas: gen(&mut rng, k, 1.0),
            means: gen(&mut rng, k * d, 1.5),
            log_sigmas: gen(&mut rng, k * d, 0.3),
        }
    }

    /// Arguments in the order expected by [`objective_ir`]: `xs`, `alphas`,
    /// `means`, `log_sigmas`.
    pub fn ir_args(&self) -> Vec<Value> {
        vec![
            Value::Arr(Array::from_f64(vec![self.n, self.d], self.xs.clone())),
            Value::from(self.alphas.clone()),
            Value::Arr(Array::from_f64(vec![self.k, self.d], self.means.clone())),
            Value::Arr(Array::from_f64(
                vec![self.k, self.d],
                self.log_sigmas.clone(),
            )),
        ]
    }

    /// Number of differentiable parameters (alphas, means, log_sigmas — the
    /// data points are inputs, not parameters, but the IR formulation also
    /// returns their adjoints which the harness simply ignores).
    pub fn num_params(&self) -> usize {
        self.k + 2 * self.k * self.d
    }
}

/// Build the GMM log-likelihood as an IR function
/// `gmm(xs, alphas, means, log_sigmas) -> f64`.
pub fn objective_ir() -> Fun {
    let mut b = Builder::new();
    b.build_fun(
        "gmm_objective",
        &[
            Type::arr_f64(2),
            Type::arr_f64(1),
            Type::arr_f64(2),
            Type::arr_f64(2),
        ],
        |b, ps| {
            let xs = ps[0];
            let alphas = ps[1];
            let means = ps[2];
            let log_sigmas = ps[3];
            // Per-point log-likelihood.
            let lls = b.map1(Type::arr_f64(1), &[xs], |b, xrow| {
                let x = xrow[0];
                let comps = b.map1(Type::arr_f64(1), &[alphas, means, log_sigmas], |b, es| {
                    let alpha = es[0];
                    let mu = es[1];
                    let ls = es[2];
                    // Mahalanobis-like quadratic form with diagonal sigma.
                    let terms = b.map1(Type::arr_f64(1), &[x, mu, ls], |b, ts| {
                        let diff = b.fsub(ts[0].into(), ts[1].into());
                        let nls = b.fneg(ts[2].into());
                        let inv_sigma = b.fexp(nls);
                        let z = b.fmul(diff, inv_sigma);
                        vec![b.fmul(z, z)]
                    });
                    let quad = b.sum(terms);
                    let slog = b.sum(ls);
                    let half = b.fmul(Atom::f64(0.5), quad.into());
                    let t = b.fsub(alpha.into(), slog.into());
                    vec![b.fsub(t, half)]
                });
                vec![logsumexp(b, comps)]
            });
            let total = b.sum(lls);
            // Normalisation term: n * logsumexp(alphas).
            let n = b.len(xs);
            let nf = b.to_f64(n);
            let lse_alpha = logsumexp(b, alphas);
            let norm = b.fmul(nf, lse_alpha);
            vec![b.fsub(total.into(), norm)]
        },
    )
}

/// The objective evaluated directly in Rust (reference / "Manual" primal).
pub fn objective_manual(data: &GmmData) -> f64 {
    let GmmData {
        n,
        d,
        k,
        xs,
        alphas,
        means,
        log_sigmas,
    } = data;
    let (n, d, k) = (*n, *d, *k);
    let mut total = 0.0;
    for i in 0..n {
        let x = &xs[i * d..(i + 1) * d];
        let mut comps = Vec::with_capacity(k);
        for c in 0..k {
            let mu = &means[c * d..(c + 1) * d];
            let ls = &log_sigmas[c * d..(c + 1) * d];
            let mut quad = 0.0;
            let mut slog = 0.0;
            for j in 0..d {
                let z = (x[j] - mu[j]) * (-ls[j]).exp();
                quad += z * z;
                slog += ls[j];
            }
            comps.push(alphas[c] - slog - 0.5 * quad);
        }
        total += logsumexp_slice(&comps);
    }
    total - n as f64 * logsumexp_slice(alphas)
}

/// Hand-written gradient with respect to (alphas, means, log_sigmas) — the
/// "Manual" column of Table 1.
pub fn gradient_manual(data: &GmmData) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
    let GmmData {
        n,
        d,
        k,
        xs,
        alphas,
        means,
        log_sigmas,
    } = data;
    let (n, d, k) = (*n, *d, *k);
    let mut d_alpha = vec![0.0; k];
    let mut d_mu = vec![0.0; k * d];
    let mut d_ls = vec![0.0; k * d];
    for i in 0..n {
        let x = &xs[i * d..(i + 1) * d];
        let mut comps = Vec::with_capacity(k);
        for c in 0..k {
            let mu = &means[c * d..(c + 1) * d];
            let ls = &log_sigmas[c * d..(c + 1) * d];
            let mut quad = 0.0;
            let mut slog = 0.0;
            for j in 0..d {
                let z = (x[j] - mu[j]) * (-ls[j]).exp();
                quad += z * z;
                slog += ls[j];
            }
            comps.push(alphas[c] - slog - 0.5 * quad);
        }
        let lse = logsumexp_slice(&comps);
        for c in 0..k {
            let w = (comps[c] - lse).exp(); // softmax weight
            d_alpha[c] += w;
            let mu = &means[c * d..(c + 1) * d];
            let ls = &log_sigmas[c * d..(c + 1) * d];
            for j in 0..d {
                let inv2 = (-2.0 * ls[j]).exp();
                let diff = x[j] - mu[j];
                d_mu[c * d + j] += w * diff * inv2;
                d_ls[c * d + j] += w * (diff * diff * inv2 - 1.0);
            }
        }
    }
    // Gradient of the -n * logsumexp(alphas) term.
    let lse_a = logsumexp_slice(alphas);
    for c in 0..k {
        d_alpha[c] -= n as f64 * (alphas[c] - lse_a).exp();
    }
    (d_alpha, d_mu, d_ls)
}

/// The objective and gradient computed with the PyTorch-like `tensor`
/// baseline (vectorised, operator-granular tape).
pub fn gradient_tensor(data: &GmmData) -> (f64, Vec<f64>) {
    use tensor::{Graph, Tensor};
    let GmmData {
        n,
        d,
        k,
        xs,
        alphas,
        means,
        log_sigmas,
    } = data;
    let (n, d, k) = (*n, *d, *k);
    let g = Graph::new();
    let x = g.leaf(Tensor::new(n, d, xs.clone()));
    let x2 = g.mul(x, x);
    let a = g.leaf(Tensor::new(1, k, alphas.clone()));
    let mu = g.leaf(Tensor::new(k, d, means.clone()));
    let ls = g.leaf(Tensor::new(k, d, log_sigmas.clone()));
    // A = exp(-2*ls), per-component inverse variances.
    let m2ls = g.scale(ls, -2.0);
    let inv_var = g.exp(m2ls);
    // quad[i,c] = sum_j (x_ij - mu_cj)^2 * invvar_cj
    //           = X² · Aᵀ - 2 X · (mu ⊙ A)ᵀ + rowvec(sum_j mu² A)
    let inv_var_t = g.transpose(inv_var);
    let t1 = g.matmul(x2, inv_var_t);
    let mu_a = g.mul(mu, inv_var);
    let mu_a_t = g.transpose(mu_a);
    let t2 = g.matmul(x, mu_a_t);
    let t2 = g.scale(t2, -2.0);
    let mu2a = g.mul(mu, mu_a);
    let mu2a_sum = g.sum_dim1(mu2a); // [k,1]
    let mu2a_row = g.transpose(mu2a_sum); // [1,k]
    let zeros_col = g.leaf(Tensor::zeros(n, 1));
    let t12 = g.add(t1, t2);
    let quad = g.add_col_row(t12, zeros_col, mu2a_row);
    // ll[i,c] = alpha_c - sum_j ls_cj - 0.5 quad[i,c]
    let slog = g.sum_dim1(ls); // [k,1]
    let slog_row = g.transpose(slog);
    let neg_slog_row = g.scale(slog_row, -1.0);
    let half_quad = g.scale(quad, -0.5);
    let a_minus = g.add(a, neg_slog_row); // [1,k]
    let zeros_col2 = g.leaf(Tensor::zeros(n, 1));
    let ll = g.add_col_row(half_quad, zeros_col2, a_minus);
    let per_point = g.logsumexp_dim1(ll);
    let total = g.sum(per_point);
    // - n * logsumexp(alphas)
    let lse_a = g.logsumexp_dim1(a); // [1,1]
    let norm = g.scale(lse_a, -(n as f64));
    let norm_s = g.sum(norm);
    let obj = g.add(total, norm_s);
    let grads = g.backward(obj);
    let mut flat = Vec::with_capacity(data.num_params());
    flat.extend_from_slice(g.grad(&grads, a).data());
    flat.extend_from_slice(g.grad(&grads, mu).data());
    flat.extend_from_slice(g.grad(&grads, ls).data());
    (g.value(obj).item(), flat)
}

fn logsumexp_slice(xs: &[f64]) -> f64 {
    let m = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    m + xs.iter().map(|x| (x - m).exp()).sum::<f64>().ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fir_api::Engine;
    use futhark_ad::gradcheck::{finite_diff_gradient, max_rel_error, reverse_gradient};
    use interp::Interp;

    #[test]
    fn ir_objective_matches_manual() {
        let data = GmmData::generate(7, 3, 4, 1);
        let fun = objective_ir();
        let engine = Engine::by_name("interp-seq").unwrap();
        let out = engine.compile(&fun).unwrap().call(&data.ir_args()).unwrap();
        let want = objective_manual(&data);
        assert!(
            (out[0].as_f64() - want).abs() < 1e-9,
            "{} vs {want}",
            out[0].as_f64()
        );
    }

    #[test]
    fn ad_gradient_matches_manual_and_fd() {
        let data = GmmData::generate(5, 2, 3, 2);
        let fun = objective_ir();
        let interp = Interp::sequential();
        let args = data.ir_args();
        let (_, ad) = reverse_gradient(&interp, &fun, &args);
        // The first n*d entries are the adjoint of the data points; the
        // remaining entries are the parameter gradients.
        let offset = data.n * data.d;
        let (da, dm, dl) = gradient_manual(&data);
        let manual: Vec<f64> = da.into_iter().chain(dm).chain(dl).collect();
        let ad_params = &ad[offset..];
        assert!(max_rel_error(ad_params, &manual) < 1e-7);
        let fd = finite_diff_gradient(&interp, &fun, &args, 1e-5);
        assert!(max_rel_error(&ad, &fd) < 1e-4);
    }

    #[test]
    fn tensor_baseline_matches_manual() {
        let data = GmmData::generate(6, 3, 2, 3);
        let (val, grad) = gradient_tensor(&data);
        assert!((val - objective_manual(&data)).abs() < 1e-9);
        let (da, dm, dl) = gradient_manual(&data);
        let manual: Vec<f64> = da.into_iter().chain(dm).chain(dl).collect();
        assert!(max_rel_error(&grad, &manual) < 1e-8);
    }
}
