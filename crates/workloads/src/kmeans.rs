//! Dense and sparse (CSR) k-means clustering cost functions — the paper's
//! case studies 1 and 2 (Tables 3 and 4).
//!
//! The cost is `f(C) = Σ_p min_k ‖p − c_k‖²`. Newton's method needs the
//! gradient (reverse mode) and the Hessian diagonal, which — following §7.4
//! of the paper — is obtained with a *single* invocation of forward mode
//! nested around reverse mode (`jvp(vjp(f))` applied to the all-ones
//! direction), because the Hessian of `f` is diagonal.

use fir::builder::Builder;
use fir::ir::{Atom, Fun};
use fir::types::Type;
use interp::{Array, Value};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::ir_util::sq_distance;

// ---------------------------------------------------------------------
// Dense k-means
// ---------------------------------------------------------------------

/// A dense k-means instance: `n` points of dimension `d`, `k` centroids.
#[derive(Debug, Clone)]
pub struct KmeansData {
    pub n: usize,
    pub d: usize,
    pub k: usize,
    pub points: Vec<f64>,  // n × d
    pub centers: Vec<f64>, // k × d
}

impl KmeansData {
    pub fn generate(n: usize, d: usize, k: usize, seed: u64) -> KmeansData {
        let mut rng = SmallRng::seed_from_u64(seed);
        let points = (0..n * d).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let centers = (0..k * d).map(|_| rng.gen_range(-1.0..1.0)).collect();
        KmeansData {
            n,
            d,
            k,
            points,
            centers,
        }
    }

    /// Arguments for [`dense_objective_ir`]: `points`, `centers`.
    pub fn ir_args(&self) -> Vec<Value> {
        vec![
            Value::Arr(Array::from_f64(vec![self.n, self.d], self.points.clone())),
            Value::Arr(Array::from_f64(vec![self.k, self.d], self.centers.clone())),
        ]
    }
}

/// `kmeans(points, centers) -> f64` as nested map/reduce over the IR.
pub fn dense_objective_ir() -> Fun {
    let mut b = Builder::new();
    b.build_fun(
        "kmeans_cost",
        &[Type::arr_f64(2), Type::arr_f64(2)],
        |b, ps| {
            let points = ps[0];
            let centers = ps[1];
            let per_point = b.map1(Type::arr_f64(1), &[points], |b, prow| {
                let p = prow[0];
                let dists = b.map1(Type::arr_f64(1), &[centers], |b, crow| {
                    vec![sq_distance(b, p, crow[0])]
                });
                vec![Atom::Var(b.minimum(dists))]
            });
            vec![Atom::Var(b.sum(per_point))]
        },
    )
}

/// Hand-written cost, gradient and Hessian diagonal (the histogram-style
/// manual implementation of §7.4): assign each point to its nearest centre,
/// then accumulate per-centre sums.
pub fn dense_manual(data: &KmeansData) -> (f64, Vec<f64>, Vec<f64>) {
    let KmeansData {
        n,
        d,
        k,
        points,
        centers,
    } = data;
    let (n, d, k) = (*n, *d, *k);
    let mut cost = 0.0;
    let mut grad = vec![0.0; k * d];
    let mut hess = vec![0.0; k * d];
    for i in 0..n {
        let p = &points[i * d..(i + 1) * d];
        let mut best = usize::MAX;
        let mut best_d = f64::INFINITY;
        for c in 0..k {
            let cc = &centers[c * d..(c + 1) * d];
            let dist: f64 = p.iter().zip(cc).map(|(a, b)| (a - b) * (a - b)).sum();
            if dist < best_d {
                best_d = dist;
                best = c;
            }
        }
        cost += best_d;
        let cc = &centers[best * d..(best + 1) * d];
        for j in 0..d {
            grad[best * d + j] += 2.0 * (cc[j] - p[j]);
            hess[best * d + j] += 2.0;
        }
    }
    (cost, grad, hess)
}

/// The PyTorch-like baseline: expanded pairwise distances (as the paper's
/// PyTorch implementation does to avoid broadcasting blow-up), row-wise
/// minimum, sum; gradient by the tape.
pub fn dense_tensor_gradient(data: &KmeansData) -> (f64, Vec<f64>) {
    use tensor::{Graph, Tensor};
    let KmeansData {
        n,
        d,
        k,
        points,
        centers,
    } = data;
    let (n, d, k) = (*n, *d, *k);
    let g = Graph::new();
    let p = g.leaf(Tensor::new(n, d, points.clone()));
    let c = g.leaf(Tensor::new(k, d, centers.clone()));
    // ‖p − c‖² = ‖p‖² + ‖c‖² − 2 p·cᵀ
    let p2 = g.mul(p, p);
    let p2s = g.sum_dim1(p2); // [n,1]
    let c2 = g.mul(c, c);
    let c2s = g.sum_dim1(c2); // [k,1]
    let c2row = g.transpose(c2s); // [1,k]
    let ct = g.transpose(c);
    let cross = g.matmul(p, ct); // [n,k]
    let cross2 = g.scale(cross, -2.0);
    let dists = g.add_col_row(cross2, p2s, c2row);
    let mins = g.min_dim1(dists);
    let cost = g.sum(mins);
    let grads = g.backward(cost);
    (g.value(cost).item(), g.grad(&grads, c).data().to_vec())
}

// ---------------------------------------------------------------------
// Sparse k-means (CSR data, dense centroids)
// ---------------------------------------------------------------------

/// A sparse k-means instance in CSR format.
#[derive(Debug, Clone)]
pub struct SparseKmeansData {
    pub n: usize,
    pub d: usize,
    pub k: usize,
    pub values: Vec<f64>,
    pub col_idx: Vec<i64>,
    pub row_ptr: Vec<i64>,
    pub centers: Vec<f64>, // k × d
}

impl SparseKmeansData {
    /// Generate a synthetic CSR matrix with roughly `nnz_per_row` non-zeros
    /// per row (the shape proxy for the paper's NLP workloads).
    pub fn generate(
        n: usize,
        d: usize,
        k: usize,
        nnz_per_row: usize,
        seed: u64,
    ) -> SparseKmeansData {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut values = Vec::new();
        let mut col_idx = Vec::new();
        let mut row_ptr = vec![0i64];
        for _ in 0..n {
            let nnz = 1 + rng.gen_range(0..nnz_per_row.max(1));
            let mut cols: Vec<i64> = (0..nnz).map(|_| rng.gen_range(0..d) as i64).collect();
            cols.sort_unstable();
            cols.dedup();
            for c in cols {
                col_idx.push(c);
                values.push(rng.gen_range(0.1..1.0));
            }
            row_ptr.push(col_idx.len() as i64);
        }
        let centers = (0..k * d).map(|_| rng.gen_range(-0.5..0.5)).collect();
        SparseKmeansData {
            n,
            d,
            k,
            values,
            col_idx,
            row_ptr,
            centers,
        }
    }

    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Arguments for [`sparse_objective_ir`]: `values`, `col_idx`,
    /// `row_ptr`, `centers`.
    pub fn ir_args(&self) -> Vec<Value> {
        vec![
            Value::from(self.values.clone()),
            Value::from(self.col_idx.clone()),
            Value::from(self.row_ptr.clone()),
            Value::Arr(Array::from_f64(vec![self.k, self.d], self.centers.clone())),
        ]
    }
}

/// `kmeans_sparse(values, col_idx, row_ptr, centers) -> f64`.
///
/// Per row: `‖p‖² − 2 p·c_k + ‖c_k‖²` where the sparse dot products are
/// accumulated with a sequential loop over the row's non-zeros (an inner
/// loop nested inside the parallel map over rows — the nesting pattern the
/// paper's technique is designed for).
pub fn sparse_objective_ir() -> Fun {
    let mut b = Builder::new();
    b.build_fun(
        "kmeans_sparse_cost",
        &[
            Type::arr_f64(1),
            Type::arr_i64(1),
            Type::arr_i64(1),
            Type::arr_f64(2),
        ],
        |b, ps| {
            let values = ps[0];
            let col_idx = ps[1];
            let row_ptr = ps[2];
            let centers = ps[3];
            // Per-centre squared norms.
            let cnorms = b.map1(Type::arr_f64(1), &[centers], |b, crow| {
                let sq = b.map1(Type::arr_f64(1), &[crow[0]], |b, es| {
                    vec![b.fmul(es[0].into(), es[0].into())]
                });
                vec![Atom::Var(b.sum(sq))]
            });
            let nrows = b.len(row_ptr);
            let n = b.isub(nrows, Atom::i64(1));
            let rows = b.iota(n);
            let per_row = b.map1(Type::arr_f64(1), &[rows], |b, iv| {
                let i = iv[0];
                let start = b.index(row_ptr, &[i.into()]);
                let ip1 = b.iadd(i.into(), Atom::i64(1));
                let stop = b.index(row_ptr, &[ip1]);
                let nnz = b.isub(stop.into(), start.into());
                let kcount = b.len(centers);
                let zero_dots = b.replicate(kcount, Atom::f64(0.0));
                // Accumulate ‖p‖² and p·c_k for every centre over the
                // non-zeros of this row.
                let acc = b.loop_(
                    &[
                        (Type::F64, Atom::f64(0.0)),
                        (Type::arr_f64(1), Atom::Var(zero_dots)),
                    ],
                    nnz,
                    |b, j, state| {
                        let pnorm = state[0];
                        let dots = state[1];
                        let idx = b.iadd(start.into(), j.into());
                        let v = b.index(values, &[idx]);
                        let col = b.index(col_idx, &[idx]);
                        let vv = b.fmul(v.into(), v.into());
                        let pnorm2 = b.fadd(pnorm.into(), vv);
                        let dots2 = b.map1(Type::arr_f64(1), &[centers, dots], |b, es| {
                            let c_col = b.index(es[0], &[col.into()]);
                            let contrib = b.fmul(v.into(), c_col.into());
                            vec![b.fadd(es[1].into(), contrib)]
                        });
                        vec![pnorm2, Atom::Var(dots2)]
                    },
                );
                let pnorm = acc[0];
                let dots = acc[1];
                // dist_k = pnorm − 2 dots_k + cnorm_k, then take the minimum.
                let dists = b.map1(Type::arr_f64(1), &[dots, cnorms], |b, es| {
                    let two = b.fmul(Atom::f64(2.0), es[0].into());
                    let t = b.fsub(Atom::Var(pnorm), two);
                    vec![b.fadd(t, es[1].into())]
                });
                vec![Atom::Var(b.minimum(dists))]
            });
            vec![Atom::Var(b.sum(per_row))]
        },
    )
}

/// Hand-written sparse k-means cost and gradient.
pub fn sparse_manual(data: &SparseKmeansData) -> (f64, Vec<f64>) {
    let SparseKmeansData {
        n,
        d,
        k,
        values,
        col_idx,
        row_ptr,
        centers,
    } = data;
    let (n, d, k) = (*n, *d, *k);
    let cnorms: Vec<f64> = (0..k)
        .map(|c| centers[c * d..(c + 1) * d].iter().map(|x| x * x).sum())
        .collect();
    let mut cost = 0.0;
    let mut grad = vec![0.0; k * d];
    for i in 0..n {
        let (lo, hi) = (row_ptr[i] as usize, row_ptr[i + 1] as usize);
        let mut pnorm = 0.0;
        let mut dots = vec![0.0; k];
        for j in lo..hi {
            let v = values[j];
            let col = col_idx[j] as usize;
            pnorm += v * v;
            for (c, dot) in dots.iter_mut().enumerate() {
                *dot += v * centers[c * d + col];
            }
        }
        let mut best = 0;
        let mut best_d = f64::INFINITY;
        for c in 0..k {
            let dist = pnorm - 2.0 * dots[c] + cnorms[c];
            if dist < best_d {
                best_d = dist;
                best = c;
            }
        }
        cost += best_d;
        // d/dc of (−2 p·c + ‖c‖²) for the winning centre.
        for j in lo..hi {
            let col = col_idx[j] as usize;
            grad[best * d + col] -= 2.0 * values[j];
        }
        for j in 0..d {
            grad[best * d + j] += 2.0 * centers[best * d + j];
        }
    }
    (cost, grad)
}

/// The PyTorch-like sparse baseline: CSR × dense products on the tape.
pub fn sparse_tensor_gradient(data: &SparseKmeansData) -> (f64, Vec<f64>) {
    use tensor::{CsrMatrix, Graph, Tensor};
    let SparseKmeansData {
        n,
        d,
        k,
        values,
        col_idx,
        row_ptr,
        centers,
    } = data;
    let (n, d, k) = (*n, *d, *k);
    let csr = CsrMatrix::new(
        n,
        d,
        row_ptr.iter().map(|x| *x as usize).collect(),
        col_idx.iter().map(|x| *x as usize).collect(),
        values.clone(),
    );
    let g = Graph::new();
    let c = g.leaf(Tensor::new(k, d, centers.clone()));
    let c2 = g.mul(c, c);
    let c2s = g.sum_dim1(c2);
    let c2row = g.transpose(c2s);
    let ct = g.transpose(c);
    let cross = g.spmm(&csr, ct); // [n,k]
    let cross2 = g.scale(cross, -2.0);
    let pnorm = g.leaf(csr.row_sq_norms()); // constant w.r.t. centres
    let dists = g.add_col_row(cross2, pnorm, c2row);
    let mins = g.min_dim1(dists);
    let cost = g.sum(mins);
    let grads = g.backward(cost);
    (g.value(cost).item(), g.grad(&grads, c).data().to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use fir_api::Engine;
    use futhark_ad::gradcheck::{max_rel_error, reverse_gradient};
    use interp::Interp;

    #[test]
    fn dense_ir_matches_manual() {
        let data = KmeansData::generate(20, 3, 4, 1);
        let fun = dense_objective_ir();
        let engine = Engine::by_name("interp-seq").unwrap();
        let cf = engine.compile(&fun).unwrap();
        let out = cf.call(&data.ir_args()).unwrap();
        let (cost, _, _) = dense_manual(&data);
        assert!((out[0].as_f64() - cost).abs() < 1e-9);
    }

    #[test]
    fn dense_ad_gradient_matches_manual_and_tensor() {
        let data = KmeansData::generate(15, 2, 3, 2);
        let fun = dense_objective_ir();
        let interp = Interp::sequential();
        let (_, ad) = reverse_gradient(&interp, &fun, &data.ir_args());
        let offset = data.n * data.d; // skip the adjoint of the points
        let (_, manual, _) = dense_manual(&data);
        assert!(max_rel_error(&ad[offset..], &manual) < 1e-8);
        let (_, tgrad) = dense_tensor_gradient(&data);
        assert!(max_rel_error(&tgrad, &manual) < 1e-8);
    }

    #[test]
    fn dense_hessian_diagonal_via_jvp_of_vjp() {
        let data = KmeansData::generate(10, 2, 3, 3);
        let fun = dense_objective_ir();
        let engine = Engine::by_name("interp-seq").unwrap();
        let cf = engine.compile(&fun).unwrap();
        // Forward-over-reverse along the all-ones direction on the centers
        // (seeds and the points/seed tangents are auto-inserted).
        let ones = Value::Arr(Array::from_f64(
            vec![data.k, data.d],
            vec![1.0; data.k * data.d],
        ));
        let hv = cf.hvp(&data.ir_args(), &[(1, ones)]).unwrap();
        // One tangent per differentiable parameter adjoint: points, centers.
        let hess_diag = hv[1].as_arr().f64s().to_vec();
        let (_, _, manual_h) = dense_manual(&data);
        assert!(max_rel_error(&hess_diag, &manual_h) < 1e-8);
    }

    #[test]
    fn sparse_ir_matches_manual_gradient() {
        let data = SparseKmeansData::generate(12, 8, 3, 4, 4);
        let fun = sparse_objective_ir();
        let interp = Interp::sequential();
        let engine = Engine::by_name("interp-seq").unwrap();
        let out = engine.compile(&fun).unwrap().call(&data.ir_args()).unwrap();
        let (cost, manual) = sparse_manual(&data);
        assert!((out[0].as_f64() - cost).abs() < 1e-9);
        let (_, ad) = reverse_gradient(&interp, &fun, &data.ir_args());
        let offset = data.nnz(); // adjoint of the CSR values comes first
        assert!(max_rel_error(&ad[offset..], &manual) < 1e-7);
        let (tcost, tgrad) = sparse_tensor_gradient(&data);
        assert!((tcost - cost).abs() < 1e-9);
        assert!(max_rel_error(&tgrad, &manual) < 1e-8);
    }
}
