//! `workloads` — the nine benchmarks of the paper's evaluation as IR
//! programs, with data generators, hand-written ("Manual") derivatives and
//! PyTorch-like tensor baselines.
//!
//! | Module | Paper benchmark | Used by |
//! |---|---|---|
//! | [`gmm`] | GMM (ADBench / Table 5) | Tables 1, 5 |
//! | [`adbench`] | BA, HAND, D-LSTM | Table 1 |
//! | [`kmeans`] | dense & sparse k-means | Tables 3, 4 |
//! | [`lstm`] | LSTM sequence model | Table 6 |
//! | [`mc`] | RSBench / XSBench ports | Table 2 |
//!
//! Every hand-written gradient is validated against the AD-generated one in
//! this crate's unit tests, and every IR objective is gradient-checked
//! against finite differences.

// Index-based loops in this crate mirror the (row, col)/(i, j) math of
// the reference implementations; iterator rewrites would obscure it.
#![allow(clippy::needless_range_loop)]

pub mod adbench;
pub mod gmm;
pub mod ir_util;
pub mod kmeans;
pub mod lstm;
pub mod mc;
