//! An offline, dependency-free stand-in for the `proptest` crate.
//!
//! The container this workspace builds in has no crates.io registry, so the
//! real `proptest` cannot be resolved. This crate reimplements the subset of
//! its surface the test suites use — the [`proptest!`] and
//! [`prop_assert!`]/[`prop_assert_eq!`] macros, `any::<T>()`, range
//! strategies over `f64`/integers, and `collection::vec` — with the same
//! syntax. Cases are generated from a fixed-seed splitmix64 stream, so test
//! runs are deterministic; there is no shrinking (a failing case panics with
//! the generated inputs printed).

/// A deterministic case-generation RNG (splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator with a fixed seed (deterministic test runs).
    pub fn deterministic() -> TestRng {
        TestRng {
            state: 0x5eed_5eed_5eed_5eed,
        }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform `usize` in `[lo, hi)`.
    pub fn below(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty size range");
        lo + ((self.next_u64() as u128 * (hi - lo) as u128) >> 64) as usize
    }
}

/// A value generator. The real proptest separates strategies from value
/// trees to support shrinking; this stand-in only generates.
pub trait Strategy {
    /// The generated value type.
    type Value;
    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

/// `any::<T>()` — the canonical strategy for a type.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Types with a canonical strategy (subset of `proptest::arbitrary`).
pub trait Arbitrary {
    /// Generate an arbitrary value of the type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as i128 - self.start as i128) as u128;
                assert!(span > 0, "empty integer range strategy");
                let r = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (self.start as i128 + r) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Collection strategies (subset of `proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    /// `collection::vec(elem, lo..hi)`.
    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.below(self.size.start, self.size.end);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Per-test configuration (subset of `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to generate and run.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// The error type produced by failing `prop_assert!`s.
#[derive(Debug)]
pub struct TestCaseError(pub String);

/// The prelude, as in the real crate: everything the macros need.
pub mod prelude {
    /// Module alias so `proptest::collection::vec` resolves inside
    /// `use proptest::prelude::*` scopes too.
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, proptest, Arbitrary, ProptestConfig, Strategy,
        TestCaseError, TestRng,
    };
}

/// Assert a condition inside a `proptest!` body; on failure the case's
/// inputs are reported by the harness.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        let cond: bool = $cond;
        if !cond {
            return Err($crate::TestCaseError(format!(
                "assertion failed at {}:{}: {}",
                file!(),
                line!(),
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        let cond: bool = $cond;
        if !cond {
            return Err($crate::TestCaseError(format!(
                "assertion failed at {}:{}: {}",
                file!(),
                line!(),
                format!($($fmt)*)
            )));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "{:?} != {:?}", a, b);
    }};
}

/// The test-defining macro. Supports the same shape as the real crate:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(48))]
///     #[test]
///     fn my_test(x in -1.0f64..1.0, v in collection::vec(any::<u8>(), 1..8)) {
///         prop_assert!(x.abs() <= 1.0);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $( $arg:ident in $strat:expr ),* $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::deterministic();
                for case in 0..config.cases {
                    $( let $arg = $crate::Strategy::generate(&$strat, &mut rng); )*
                    // Render the inputs up front: the body may move them.
                    let inputs =
                        String::new() $( + &format!("\n    {} = {:?}", stringify!($arg), $arg) )*;
                    let result: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $body
                        Ok(())
                    })();
                    if let Err($crate::TestCaseError(msg)) = result {
                        panic!(
                            "proptest case {}/{} failed: {}\n  inputs:{}",
                            case + 1,
                            config.cases,
                            msg,
                            inputs
                        );
                    }
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $( $arg:ident in $strat:expr ),* $(,)? ) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name ( $( $arg in $strat ),* ) $body
            )*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_are_respected(x in -2.0f64..3.0, n in 1usize..10) {
            prop_assert!((-2.0..3.0).contains(&x));
            prop_assert!((1..10).contains(&n));
        }

        #[test]
        fn vec_strategy_sizes(v in collection::vec(any::<u8>(), 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
        }
    }

    proptest! {
        #[test]
        fn default_config_works(b in any::<bool>()) {
            let truthy = if b { b } else { !b };
            prop_assert!(truthy);
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failures_report_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            fn inner(x in 0.0f64..1.0) {
                prop_assert!(x < 0.0, "x = {x} is not negative");
            }
        }
        inner();
    }
}
