//! Compiled SOAC kernels.
//!
//! Every lambda appearing as a SOAC operand (`map`, `reduce`, `scan`,
//! `withacc`) is compiled **once** into a [`Kernel`]: a code object whose
//! first registers are the lambda's explicit parameters, followed by one
//! register per captured free variable. The capture registers are filled
//! once per SOAC invocation; the per-element loop then only writes the
//! element parameters and re-runs the flat instruction stream — the body is
//! never re-walked as a tree, and no per-element environments exist.

use fir::types::Type;
use interp::Value;

use crate::bytecode::CodeObject;

/// A compiled SOAC lambda.
#[derive(Debug, Clone, PartialEq)]
pub struct Kernel {
    /// The compiled body. Registers `0..num_params` are the lambda
    /// parameters; registers `num_params..num_params + num_captures` are the
    /// captured free variables (in ascending `VarId` order).
    pub code: CodeObject,
    /// Number of explicit lambda parameters.
    pub num_params: usize,
    /// Number of captured free variables.
    pub num_captures: usize,
    /// Result types of the lambda (drives output assembly: scalar results
    /// are written to flat buffers, array results are stacked, accumulator
    /// results collapse to the shared handle).
    pub ret: Vec<Type>,
}

impl Kernel {
    /// A fresh frame for this kernel with the capture registers populated
    /// from `captures`. Element parameters are written by the caller.
    pub fn new_frame(&self, captures: &[Value]) -> Vec<Value> {
        debug_assert_eq!(captures.len(), self.num_captures);
        let mut frame = vec![Value::I64(0); self.code.num_regs];
        for (k, v) in captures.iter().enumerate() {
            frame[self.num_params + k] = v.clone();
        }
        frame
    }
}
