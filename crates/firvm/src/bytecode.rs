//! The register bytecode.
//!
//! A [`Program`] is the unit of compilation: one flat instruction stream for
//! the function body ([`CodeObject`]) plus one pre-compiled
//! [`Kernel`] per SOAC lambda anywhere in the
//! function. Registers are dense `u32` slots into a per-invocation frame of
//! [`Value`](interp::Value)s — variable lookups cost an array index instead
//! of a hash-map probe, and control flow (`if`, `loop`) is lowered to jumps
//! inside the same frame, so no environments are allocated at runtime.

use fir::ir::{BinOp, ReduceOp, UnOp};

use crate::kernel::Kernel;

/// A register index into the current frame.
pub type Reg = u32;

/// An instruction operand: a register or an immediate scalar constant.
/// Immediates keep constants out of the register file entirely.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Opnd {
    /// Read the register.
    Reg(Reg),
    /// An `f64` immediate.
    F64(f64),
    /// An `i64` immediate.
    I64(i64),
    /// A `bool` immediate.
    Bool(bool),
}

/// One bytecode instruction. SOAC instructions reference kernels by index
/// into [`Program::kernels`]; `captures` lists the registers whose values
/// the kernel's free variables take, copied into the kernel frame once per
/// SOAC invocation (not once per element, as the tree-walking interpreter
/// effectively does via environment chains).
#[derive(Debug, Clone, PartialEq)]
pub enum Instr {
    /// `dst <- src`.
    Mov { dst: Reg, src: Opnd },
    /// `dst <- take src`: move the value out of `src`, leaving a
    /// placeholder. Emitted for loop/branch result moves of locally-bound
    /// values so no stale `Arc` clone survives in a dead register — a stale
    /// clone would force copy-on-write on every consuming `Update` of a
    /// loop-carried array, turning O(iterations) in-place updates into
    /// O(iterations × length) copies.
    Take { dst: Reg, src: Reg },
    /// `dst <- op a`.
    Un { op: UnOp, dst: Reg, a: Opnd },
    /// `dst <- a op b`.
    Bin {
        op: BinOp,
        dst: Reg,
        a: Opnd,
        b: Opnd,
    },
    /// `dst <- if cond then t else f` (both operands already evaluated).
    Select {
        dst: Reg,
        cond: Opnd,
        t: Opnd,
        f: Opnd,
    },
    /// `dst <- arr[idx...]` (partial indexing yields a sub-array).
    Index {
        dst: Reg,
        arr: Reg,
        idx: Box<[Opnd]>,
    },
    /// `dst <- arr with [idx...] <- val`. When `consume` is set (decided by
    /// the compiler's uniqueness analysis) the source register is moved out,
    /// so a uniquely-held buffer is updated in place without copying;
    /// otherwise the value is cloned and copy-on-write applies.
    Update {
        dst: Reg,
        arr: Reg,
        idx: Box<[Opnd]>,
        val: Opnd,
        consume: bool,
    },
    /// `dst <- length arr`.
    Len { dst: Reg, arr: Reg },
    /// `dst <- iota n`.
    Iota { dst: Reg, n: Opnd },
    /// `dst <- replicate n val`.
    Replicate { dst: Reg, n: Opnd, val: Opnd },
    /// `dst <- reverse arr`.
    Reverse { dst: Reg, arr: Reg },
    /// Unconditional jump to an instruction index.
    Jmp { target: usize },
    /// Jump when `cond` is false.
    JmpIfNot { cond: Opnd, target: usize },
    /// Bulk-parallel `map` of a kernel over the outer dimension of `args`.
    Map {
        kernel: usize,
        dsts: Box<[Reg]>,
        args: Box<[Reg]>,
        captures: Box<[Reg]>,
    },
    /// `reduce` with a kernel operator and neutral element(s).
    Reduce {
        kernel: usize,
        dsts: Box<[Reg]>,
        neutral: Box<[Opnd]>,
        args: Box<[Reg]>,
        captures: Box<[Reg]>,
    },
    /// Inclusive `scan`.
    Scan {
        kernel: usize,
        dsts: Box<[Reg]>,
        neutral: Box<[Opnd]>,
        args: Box<[Reg]>,
        captures: Box<[Reg]>,
    },
    /// Fused `reduce ∘ map` (`redomap`): apply the map kernel per element
    /// and fold its results with the reduce kernel, without materializing
    /// the intermediate arrays. Chunked like `Reduce`; partials combine
    /// with the reduce kernel alone.
    Redomap {
        red_kernel: usize,
        map_kernel: usize,
        dsts: Box<[Reg]>,
        neutral: Box<[Opnd]>,
        args: Box<[Reg]>,
        red_captures: Box<[Reg]>,
        map_captures: Box<[Reg]>,
    },
    /// `reduce_by_index` with a recognized operator.
    Hist {
        op: ReduceOp,
        dst: Reg,
        num_bins: Opnd,
        inds: Reg,
        vals: Reg,
    },
    /// `scatter` — `dest` is consumed (or cloned) like `Update`'s array.
    Scatter {
        dst: Reg,
        dest: Reg,
        inds: Reg,
        vals: Reg,
        consume: bool,
    },
    /// `withacc`: turn `arrs` into accumulators, run the kernel once, write
    /// the final arrays (and secondary kernel results) to `dsts`.
    WithAcc {
        kernel: usize,
        dsts: Box<[Reg]>,
        arrs: Box<[Reg]>,
        captures: Box<[Reg]>,
    },
    /// `upd_acc acc idx val`.
    UpdAcc {
        dst: Reg,
        acc: Reg,
        idx: Box<[Opnd]>,
        val: Opnd,
    },
}

/// A compiled body: a flat instruction stream over `num_regs` registers,
/// returning the values of `ret` when execution falls off the end.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CodeObject {
    pub instrs: Vec<Instr>,
    pub num_regs: usize,
    /// Operands of the (multi-valued) result.
    pub ret: Vec<Opnd>,
}

/// A fully compiled function: the main code object, every SOAC kernel it
/// (transitively) contains, and the parameter count for frame setup.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    pub name: String,
    pub main: CodeObject,
    pub kernels: Vec<Kernel>,
    pub num_params: usize,
    /// Per-kernel trace labels (`"<name>#k<i>"`), interned at compile time
    /// so the per-dispatch span cost is two timestamps and a ring push.
    #[cfg(feature = "profile")]
    pub kernel_labels: Vec<&'static str>,
}

impl Program {
    /// Assemble a program from parts (the persistent-cache decode path).
    /// Kernel trace labels are re-interned here rather than carried in the
    /// serialized form, so the on-disk format is identical with and without
    /// the `profile` feature.
    pub fn assemble(
        name: String,
        main: CodeObject,
        kernels: Vec<Kernel>,
        num_params: usize,
    ) -> Program {
        #[cfg(feature = "profile")]
        let kernel_labels = (0..kernels.len())
            .map(|i| fir_trace::intern(&format!("{name}#k{i}")))
            .collect();
        Program {
            name,
            main,
            kernels,
            num_params,
            #[cfg(feature = "profile")]
            kernel_labels,
        }
    }

    /// The trace label of kernel `i`.
    #[cfg(feature = "profile")]
    pub fn kernel_label(&self, i: usize) -> &'static str {
        self.kernel_labels.get(i).copied().unwrap_or("kernel")
    }

    /// Total instruction count, kernels included (diagnostics/tests).
    pub fn num_instrs(&self) -> usize {
        self.main.instrs.len()
            + self
                .kernels
                .iter()
                .map(|k| k.code.instrs.len())
                .sum::<usize>()
    }
}
