//! The tiered-execution contract: hot-program detection and the hook a
//! native specialization tier plugs into.
//!
//! The VM counts executions per cached [`Program`] in a [`TierSlot`] stored
//! alongside the bytecode in the program cache. Once a program's run count
//! reaches the configured threshold, the slot asks the [`TierConfig`]'s
//! factory (supplied by the `fir-jit` crate; this crate knows nothing about
//! how kernels are specialized) to build a [`SoacAccel`] for the program —
//! exactly once, behind a `OnceLock`, so concurrent runners race to one
//! compilation. The executor then offers every SOAC dispatch (and
//! straight-line scalar regions of the main body) to the accelerator first
//! and falls back to ordinary bytecode execution per kernel when the
//! accelerator declines.
//!
//! Bitwise preservation is part of the contract: an accelerator must return
//! exactly the bits the VM path would have produced (same chunking, same
//! accumulation order for reductions) or decline with `None`.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

use interp::{ExecConfig, Value};

use crate::bytecode::Program;

/// A native specialization of one compiled [`Program`]: monomorphic kernels
/// for (a subset of) the program's SOAC lambdas plus straight-line scalar
/// regions of the main body.
///
/// Every method is a *offer*: `None` means "not specialized for this kernel
/// or these operand shapes", and the VM runs its own path. `Some` results
/// must be bitwise identical to what the VM path would produce under the
/// same [`ExecConfig`].
pub trait SoacAccel: Send + Sync {
    /// Run a `map` of kernel `kernel` over `args` (one rank-1 array per
    /// lambda parameter) with the capture values `captures`.
    fn map(
        &self,
        cfg: &ExecConfig,
        kernel: usize,
        args: &[Value],
        captures: &[Value],
    ) -> Option<Vec<Value>>;

    /// Run a `reduce` with neutral element(s) `neutral`.
    fn reduce(
        &self,
        cfg: &ExecConfig,
        kernel: usize,
        neutral: &[Value],
        args: &[Value],
        captures: &[Value],
    ) -> Option<Vec<Value>>;

    /// Run a fused `reduce ∘ map`.
    #[allow(clippy::too_many_arguments)]
    fn redomap(
        &self,
        cfg: &ExecConfig,
        red_kernel: usize,
        map_kernel: usize,
        neutral: &[Value],
        args: &[Value],
        red_captures: &[Value],
        map_captures: &[Value],
    ) -> Option<Vec<Value>>;

    /// Run an inclusive `scan`.
    fn scan(
        &self,
        cfg: &ExecConfig,
        kernel: usize,
        neutral: &[Value],
        args: &[Value],
        captures: &[Value],
    ) -> Option<Vec<Value>>;

    /// Straight-line region table for the program's **main** code object:
    /// `starts[pc]` is `region_id + 1` when a compiled region begins at
    /// `pc`, `0` otherwise. Must have one entry per main-body instruction
    /// (the executor ignores tables of any other length).
    fn region_starts(&self) -> &[u32];

    /// Execute region `region` against the main frame. Returns the
    /// continuation pc on success; `None` (e.g. an input register does not
    /// hold the scalar class the region was compiled for) leaves the frame
    /// untouched and the VM interprets the same instructions instead.
    fn run_region(&self, region: u32, regs: &mut [Value]) -> Option<usize>;
}

/// Tier activity counters, shared between the cache slots doing promotion
/// and the API layer reporting `TierStats`.
#[derive(Debug, Default)]
pub struct TierCounters {
    /// Programs promoted to the jit tier (factory returned an accelerator).
    pub promotions: AtomicUsize,
    /// SOAC dispatches / main-body regions executed by the jit tier.
    pub jit_hits: AtomicUsize,
    /// Dispatches offered to a promoted program's accelerator that fell
    /// back to the VM path (unsupported kernel, shape class mismatch).
    pub fallbacks: AtomicUsize,
}

impl TierCounters {
    /// `(promotions, jit_hits, fallbacks)` at this instant.
    pub fn snapshot(&self) -> (usize, usize, usize) {
        (
            self.promotions.load(Ordering::Relaxed),
            self.jit_hits.load(Ordering::Relaxed),
            self.fallbacks.load(Ordering::Relaxed),
        )
    }
}

/// The factory a tier supplies: given a compiled program, build its
/// accelerator (or `None` when nothing in the program is specializable).
pub type AccelFactory = dyn Fn(&Program) -> Option<Arc<dyn SoacAccel>> + Send + Sync;

/// Tier selection for a [`Vm`](crate::Vm): when attached, every cached
/// program counts its runs and is offered to `factory` once the count
/// reaches `threshold`.
#[derive(Clone)]
pub struct TierConfig {
    /// Run count at which a program is promoted (the promoting run itself
    /// already executes through the accelerator). `0` behaves like `1`.
    pub threshold: u64,
    /// Builds the accelerator for a hot program.
    pub factory: Arc<AccelFactory>,
    /// Where promotion/hit/fallback activity is recorded.
    pub counters: Arc<TierCounters>,
}

impl std::fmt::Debug for TierConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TierConfig")
            .field("threshold", &self.threshold)
            .field("counters", &self.counters)
            .finish_non_exhaustive()
    }
}

/// Per-cached-program tier state: the run counter and the (at most one)
/// compiled accelerator. Lives in the program cache next to the bytecode,
/// so identical rebuilds of a function share hotness as well as code.
#[derive(Default)]
pub struct TierSlot {
    runs: AtomicU64,
    accel: OnceLock<Option<Arc<dyn SoacAccel>>>,
}

impl std::fmt::Debug for TierSlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TierSlot")
            .field("runs", &self.runs())
            .field("promoted", &self.is_promoted())
            .finish()
    }
}

impl TierSlot {
    /// Run count so far (diagnostics/tests).
    pub fn runs(&self) -> u64 {
        self.runs.load(Ordering::Relaxed)
    }

    /// Whether the promotion decision has been made and produced an
    /// accelerator.
    pub fn is_promoted(&self) -> bool {
        matches!(self.accel.get(), Some(Some(_)))
    }

    /// Record one execution of `prog` and return the accelerator to use for
    /// it, promoting (building the accelerator) exactly once when the run
    /// count reaches the threshold.
    pub fn on_run(&self, prog: &Program, tier: &TierConfig) -> Option<Arc<dyn SoacAccel>> {
        let runs = self.runs.fetch_add(1, Ordering::Relaxed) + 1;
        if runs < tier.threshold {
            return None;
        }
        self.accel
            .get_or_init(|| {
                let _span = fir_trace::span_str("jit", &format!("promote {}", prog.name));
                let accel = (tier.factory)(prog);
                if accel.is_some() {
                    tier.counters.promotions.fetch_add(1, Ordering::Relaxed);
                    fir_trace::instant("jit", "promote");
                } else {
                    // The decision is still cached: nothing specializable,
                    // don't retry on every subsequent run.
                    fir_trace::instant("jit", "promote-empty");
                }
                accel
            })
            .clone()
    }
}

/// A borrowed view of the active tier for one program execution, threaded
/// through the executor.
#[derive(Clone, Copy)]
pub struct TierRef<'a> {
    pub accel: &'a dyn SoacAccel,
    pub counters: &'a TierCounters,
}

impl<'a> TierRef<'a> {
    pub(crate) fn hit(&self) {
        self.counters.jit_hits.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn fallback(&self) {
        self.counters.fallbacks.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fir::builder::Builder;
    use fir::types::Type;

    struct NullAccel;
    impl SoacAccel for NullAccel {
        fn map(&self, _: &ExecConfig, _: usize, _: &[Value], _: &[Value]) -> Option<Vec<Value>> {
            None
        }
        fn reduce(
            &self,
            _: &ExecConfig,
            _: usize,
            _: &[Value],
            _: &[Value],
            _: &[Value],
        ) -> Option<Vec<Value>> {
            None
        }
        fn redomap(
            &self,
            _: &ExecConfig,
            _: usize,
            _: usize,
            _: &[Value],
            _: &[Value],
            _: &[Value],
            _: &[Value],
        ) -> Option<Vec<Value>> {
            None
        }
        fn scan(
            &self,
            _: &ExecConfig,
            _: usize,
            _: &[Value],
            _: &[Value],
            _: &[Value],
        ) -> Option<Vec<Value>> {
            None
        }
        fn region_starts(&self) -> &[u32] {
            &[]
        }
        fn run_region(&self, _: u32, _: &mut [Value]) -> Option<usize> {
            None
        }
    }

    fn probe_program() -> Program {
        let mut b = Builder::new();
        let f = b.build_fun("tier_probe", &[Type::F64], |b, ps| {
            vec![b.fadd(ps[0].into(), fir::ir::Atom::f64(1.0))]
        });
        crate::compile(&f)
    }

    #[test]
    fn promotion_happens_at_exactly_the_threshold_run() {
        let built = Arc::new(AtomicUsize::new(0));
        let built2 = Arc::clone(&built);
        let tier = TierConfig {
            threshold: 3,
            factory: Arc::new(move |_| {
                built2.fetch_add(1, Ordering::Relaxed);
                Some(Arc::new(NullAccel) as Arc<dyn SoacAccel>)
            }),
            counters: Arc::new(TierCounters::default()),
        };
        let slot = TierSlot::default();
        let prog = probe_program();
        assert!(slot.on_run(&prog, &tier).is_none(), "run 1 stays on the VM");
        assert!(slot.on_run(&prog, &tier).is_none(), "run 2 stays on the VM");
        assert!(!slot.is_promoted());
        assert!(
            slot.on_run(&prog, &tier).is_some(),
            "run 3 (== threshold) executes jitted"
        );
        assert!(slot.is_promoted());
        assert!(slot.on_run(&prog, &tier).is_some());
        assert_eq!(built.load(Ordering::Relaxed), 1, "factory ran exactly once");
        assert_eq!(tier.counters.snapshot().0, 1, "one promotion counted");
    }

    #[test]
    fn empty_promotions_are_cached_and_not_counted() {
        let built = Arc::new(AtomicUsize::new(0));
        let built2 = Arc::clone(&built);
        let tier = TierConfig {
            threshold: 1,
            factory: Arc::new(move |_| {
                built2.fetch_add(1, Ordering::Relaxed);
                None
            }),
            counters: Arc::new(TierCounters::default()),
        };
        let slot = TierSlot::default();
        let prog = probe_program();
        assert!(slot.on_run(&prog, &tier).is_none());
        assert!(slot.on_run(&prog, &tier).is_none());
        assert_eq!(built.load(Ordering::Relaxed), 1, "decision made once");
        assert_eq!(tier.counters.snapshot().0, 0, "no promotion counted");
        assert!(!slot.is_promoted());
    }
}
