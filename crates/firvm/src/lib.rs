//! `firvm` — a register-based bytecode compiler and persistent parallel VM
//! for the `fir` IR.
//!
//! The paper's headline numbers come from executing AD-transformed IR on an
//! aggressively optimizing bulk-parallel backend; a tree-walking interpreter
//! caps every benchmark at dispatch overhead instead. This crate is the
//! compiled CPU backend of the reproduction:
//!
//! * [`compile`](compile::compile) lowers a type-checked [`Fun`] into a flat
//!   register [`Program`]: variable slots are resolved at
//!   compile time (no hash-map environments at runtime), `if`/`loop` become
//!   jumps within one frame, and every SOAC lambda becomes a reusable
//!   [`Kernel`] whose free variables are captured once per
//!   SOAC invocation instead of re-resolved per element.
//! * [`vm`] executes programs, scheduling parallel SOAC chunks on the
//!   persistent [`WorkerPool`](interp::WorkerPool) shared with the
//!   interpreter — no thread spawn per SOAC.
//! * [`cache`] memoizes compilation by structural fingerprint, so the
//!   outputs of `vjp`/`jvp` compile once and run many times.
//!
//! [`Vm`] ties it together and implements the shared
//! `interp::Backend` trait, making the VM a drop-in replacement
//! for the interpreter everywhere a backend is selectable.
//!
//! # Example
//!
//! ```
//! use fir::builder::Builder;
//! use fir::types::Type;
//! use firvm::Vm;
//! use interp::{Backend, Value};
//!
//! let mut b = Builder::new();
//! let dot = b.build_fun("dot", &[Type::arr_f64(1), Type::arr_f64(1)], |b, ps| {
//!     let prods = b.map1(Type::arr_f64(1), &[ps[0], ps[1]], |b, es| {
//!         vec![b.fmul(es[0].into(), es[1].into())]
//!     });
//!     vec![b.sum(prods).into()]
//! });
//! let vm = Vm::new();
//! let out = vm.run(&dot, &[Value::from(vec![1.0, 2.0]), Value::from(vec![3.0, 4.0])]);
//! assert_eq!(out[0].as_f64(), 11.0);
//! ```

pub mod bytecode;
pub mod cache;
pub mod compile;
pub mod kernel;
pub mod pool;
pub mod tier;
pub mod vm;

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use fir::ir::Fun;
use fir::types::Type;
use interp::{validate_args, Backend, ExecConfig, ExecError, Executable, Value};

pub use bytecode::Program;
pub use cache::{fingerprint_pair, ProgramCache};
pub use compile::compile;
pub use kernel::Kernel;
pub use tier::{SoacAccel, TierConfig, TierCounters, TierSlot};

use tier::TierRef;

/// The bytecode VM backend: compiles on first sight (through the shared
/// [`ProgramCache`], or a scoped one via [`Vm::with_cache`]) and executes
/// on the persistent worker pool. With a [`TierConfig`] attached
/// ([`Vm::with_tier`]) it becomes the tiered VM: per-program run counting
/// and promotion of hot programs to a native specialization tier.
#[derive(Debug, Clone, Default)]
pub struct Vm {
    cfg: ExecConfig,
    /// `None` uses the bounded process-wide cache.
    cache: Option<std::sync::Arc<ProgramCache>>,
    /// Jit tier selection; `None` runs pure bytecode.
    tier: Option<TierConfig>,
}

impl Vm {
    /// A VM with the default (parallel) configuration.
    pub fn new() -> Vm {
        Vm {
            cfg: ExecConfig::default(),
            cache: None,
            tier: None,
        }
    }

    /// A VM that executes every SOAC sequentially.
    pub fn sequential() -> Vm {
        Vm {
            cfg: ExecConfig::sequential(),
            cache: None,
            tier: None,
        }
    }

    /// A VM with an explicit execution configuration.
    pub fn with_config(cfg: ExecConfig) -> Vm {
        Vm {
            cfg,
            cache: None,
            tier: None,
        }
    }

    /// Use a private program cache instead of the process-wide one (e.g. to
    /// bound the lifetime of compiled programs to a request's).
    pub fn with_cache(mut self, cache: std::sync::Arc<ProgramCache>) -> Vm {
        self.cache = Some(cache);
        self
    }

    /// Attach a jit tier: count runs per cached program and promote past
    /// `tier.threshold`. Tiered VMs should also get a private cache
    /// ([`Vm::with_cache`]) when callers want deterministic per-engine
    /// promotion counts — the process-wide cache shares run counts across
    /// every tiered VM in the process.
    pub fn with_tier(mut self, tier: TierConfig) -> Vm {
        self.tier = Some(tier);
        self
    }

    /// The attached tier configuration, if any.
    pub fn tier(&self) -> Option<&TierConfig> {
        self.tier.as_ref()
    }

    fn cache(&self) -> &ProgramCache {
        self.cache
            .as_deref()
            .unwrap_or_else(|| ProgramCache::global())
    }

    /// Compile (or fetch from the cache) and run `fun` on `args`.
    pub fn run(&self, fun: &Fun, args: &[Value]) -> Vec<Value> {
        let (prog, slot) = self.cache().get_or_compile_entry(fun);
        run_tiered(&prog, &slot, &self.cfg, self.tier.as_ref(), args)
    }

    /// Run an already-compiled program (for callers managing their own
    /// cache or inspecting bytecode). Bypasses run counting: programs
    /// managed outside the cache never promote.
    pub fn run_program(&self, prog: &Program, args: &[Value]) -> Vec<Value> {
        vm::run_program(prog, &self.cfg, args)
    }

    /// Prepare an executable from an already-compiled [`Program`] (e.g.
    /// decoded from a persistent on-disk cache), adopting it into this
    /// VM's program cache instead of compiling `fun`. The adopted program
    /// starts with a fresh tier slot (run count 0, never pre-promoted); if
    /// a program for `fun` is already cached, that one is used instead.
    /// The caller is responsible for `prog` actually being a compilation
    /// of the type-correct `fun` — the persistent-cache load path
    /// guarantees this via fingerprint verification and decode-time
    /// structural validation.
    pub fn prepare_adopted(&self, fun: &Fun, prog: Program) -> Arc<dyn Executable> {
        let (prog, slot) = self.cache().adopt(fun, prog);
        Arc::new(PreparedVm {
            cfg: self.cfg.clone(),
            prog,
            slot,
            tier: self.tier.clone(),
            name: fun.name.clone(),
            params: fun.params.iter().map(|p| p.ty).collect(),
            ret: fun.ret.clone(),
        })
    }

    /// The compiled bytecode behind an executable this backend prepared,
    /// `None` for executables of other backends. The persistent-cache
    /// store path uses this to serialize exactly what `prepare` compiled.
    pub fn program_of(exec: &dyn Executable) -> Option<Arc<Program>> {
        exec.as_any()
            .downcast_ref::<PreparedVm>()
            .map(|p| Arc::clone(&p.prog))
    }
}

/// Count one run on `slot` and execute, through the accelerator when the
/// program is (or just became) promoted.
fn run_tiered(
    prog: &Program,
    slot: &TierSlot,
    cfg: &ExecConfig,
    tier: Option<&TierConfig>,
    args: &[Value],
) -> Vec<Value> {
    let accel = tier.and_then(|t| slot.on_run(prog, t));
    let tref = accel.as_deref().zip(tier).map(|(a, t)| TierRef {
        accel: a,
        counters: &t.counters,
    });
    vm::run_program_tiered(prog, cfg, args, tref)
}

/// A function compiled to bytecode, ready for repeated execution: the
/// cached [`Program`] plus the signature used for argument validation.
struct PreparedVm {
    cfg: ExecConfig,
    prog: Arc<Program>,
    /// The cached program's tier slot: prepared executions count toward
    /// promotion exactly like `Vm::run` ones (the API layer caches
    /// executables, so this is where hot programs actually accumulate
    /// their run counts).
    slot: Arc<TierSlot>,
    tier: Option<TierConfig>,
    name: String,
    params: Vec<Type>,
    ret: Vec<Type>,
}

impl Executable for PreparedVm {
    fn fun_name(&self) -> &str {
        &self.name
    }

    fn param_types(&self) -> &[Type] {
        &self.params
    }

    fn result_types(&self) -> &[Type] {
        &self.ret
    }

    fn run(&self, args: &[Value]) -> Result<Vec<Value>, ExecError> {
        validate_args(&self.name, &self.params, args)?;
        catch_unwind(AssertUnwindSafe(|| {
            run_tiered(&self.prog, &self.slot, &self.cfg, self.tier.as_ref(), args)
        }))
        .map_err(|p| ExecError::Runtime {
            fun: self.name.clone(),
            message: interp::error::panic_message(p),
        })
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

impl Backend for Vm {
    fn name(&self) -> &'static str {
        if self.tier.is_some() {
            "firvm-jit"
        } else {
            "firvm"
        }
    }

    fn prepare(&self, fun: &Fun) -> Result<Arc<dyn Executable>, ExecError> {
        fir::typecheck::check_fun(fun)?;
        // Compilation of a type-checked function must not fail; a panic
        // here is a compiler bug, reported as a runtime error rather than
        // unwinding through the caller.
        let (prog, slot) =
            catch_unwind(AssertUnwindSafe(|| self.cache().get_or_compile_entry(fun))).map_err(
                |p| ExecError::Runtime {
                    fun: fun.name.clone(),
                    message: interp::error::panic_message(p),
                },
            )?;
        Ok(Arc::new(PreparedVm {
            cfg: self.cfg.clone(),
            prog,
            slot,
            tier: self.tier.clone(),
            name: fun.name.clone(),
            params: fun.params.iter().map(|p| p.ty).collect(),
            ret: fun.ret.clone(),
        }))
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fir::builder::Builder;
    use fir::ir::{Atom, ReduceOp};
    use fir::types::Type;
    use interp::{Array, Interp};

    fn both(fun: &Fun, args: &[Value]) -> (Vec<Value>, Vec<Value>) {
        let i = Interp::sequential().run(fun, args);
        let v = Vm::sequential().run(fun, args);
        (i, v)
    }

    fn assert_close(a: &Value, b: &Value) {
        match (a, b) {
            (Value::F64(x), Value::F64(y)) => assert!((x - y).abs() < 1e-12, "{x} vs {y}"),
            (Value::I64(x), Value::I64(y)) => assert_eq!(x, y),
            (Value::Bool(x), Value::Bool(y)) => assert_eq!(x, y),
            (Value::Arr(x), Value::Arr(y)) => {
                assert_eq!(x.shape, y.shape);
                assert_eq!(x.elem(), y.elem());
                match x.elem() {
                    fir::types::ScalarType::F64 => {
                        for (u, w) in x.f64s().iter().zip(y.f64s()) {
                            assert!((u - w).abs() < 1e-12, "{u} vs {w}");
                        }
                    }
                    fir::types::ScalarType::I64 => assert_eq!(x.i64s(), y.i64s()),
                    fir::types::ScalarType::Bool => assert_eq!(x.bools(), y.bools()),
                }
            }
            (a, b) => panic!("value kind mismatch: {a:?} vs {b:?}"),
        }
    }

    fn assert_agree(fun: &Fun, args: &[Value]) {
        let (i, v) = both(fun, args);
        assert_eq!(i.len(), v.len());
        for (a, b) in i.iter().zip(&v) {
            assert_close(a, b);
        }
    }

    #[test]
    fn scalar_arithmetic_and_select() {
        let mut b = Builder::new();
        let f = b.build_fun("f", &[Type::F64, Type::F64], |b, ps| {
            let x = Atom::Var(ps[0]);
            let y = Atom::Var(ps[1]);
            let s = b.fsin(x);
            let p = b.fmul(y, s);
            let c = b.lt(p, Atom::f64(0.0));
            let r = b.select(c, Atom::f64(-1.0), p);
            vec![b.fadd(r, Atom::f64(1.0))]
        });
        assert_agree(&f, &[Value::F64(0.5), Value::F64(2.0)]);
        assert_agree(&f, &[Value::F64(-0.5), Value::F64(2.0)]);
    }

    #[test]
    fn map_reduce_scan_pipeline() {
        let mut b = Builder::new();
        let f = b.build_fun("pipeline", &[Type::arr_f64(1)], |b, ps| {
            let sq = b.map1(Type::arr_f64(1), &[ps[0]], |b, es| {
                vec![b.fmul(es[0].into(), es[0].into())]
            });
            let ssum = b.sum(sq);
            let sc = b.scan_add(sq);
            let mx = b.maximum(sc);
            vec![Atom::Var(ssum), Atom::Var(mx), Atom::Var(sc)]
        });
        assert_agree(&f, &[Value::from(vec![1.0, -2.0, 3.0, 0.5])]);
        assert_agree(&f, &[Value::from(vec![0.25; 100])]);
    }

    #[test]
    fn ifs_and_loops() {
        let mut b = Builder::new();
        let f = b.build_fun("collatzish", &[Type::I64], |b, ps| {
            let n = Atom::Var(ps[0]);
            let r = b.loop_(&[(Type::I64, Atom::i64(1))], n, |b, i, acc| {
                let rem = b.irem(Atom::Var(i), Atom::i64(2));
                let even = b.eq(rem, Atom::i64(0));
                let v = b.if_(
                    even,
                    &[Type::I64],
                    |b| vec![b.imul(acc[0].into(), Atom::i64(3))],
                    |b| vec![b.iadd(acc[0].into(), Atom::i64(7))],
                );
                vec![v[0].into()]
            });
            vec![r[0].into()]
        });
        assert_agree(&f, &[Value::I64(9)]);
        assert_agree(&f, &[Value::I64(0)]);
    }

    #[test]
    fn loop_with_swapped_state_needs_parallel_moves() {
        // Fibonacci by swapping loop-carried registers: exercises the
        // temp-staged parallel move in the loop lowering.
        let mut b = Builder::new();
        let f = b.build_fun("fib", &[Type::I64], |b, ps| {
            let n = Atom::Var(ps[0]);
            let r = b.loop_(
                &[(Type::I64, Atom::i64(0)), (Type::I64, Atom::i64(1))],
                n,
                |b, _i, st| {
                    let next = b.iadd(st[0].into(), st[1].into());
                    vec![st[1].into(), next]
                },
            );
            vec![r[0].into()]
        });
        let out = Vm::sequential().run(&f, &[Value::I64(10)]);
        assert_eq!(out[0].as_i64(), 55);
        assert_agree(&f, &[Value::I64(15)]);
    }

    #[test]
    fn loop_returning_its_own_index_keeps_the_counter_alive() {
        // The body returns the loop index itself: the compiler must not
        // `Take` the index register (the increment still needs it).
        let mut b = Builder::new();
        let f = b.build_fun("lastidx", &[Type::I64], |b, ps| {
            let n = Atom::Var(ps[0]);
            let r = b.loop_(&[(Type::I64, Atom::i64(-1))], n, |_b, i, _acc| {
                vec![Atom::Var(i)]
            });
            vec![r[0].into()]
        });
        let out = Vm::sequential().run(&f, &[Value::I64(5)]);
        assert_eq!(out[0].as_i64(), 4);
        assert_agree(&f, &[Value::I64(7)]);
        assert_agree(&f, &[Value::I64(0)]);
    }

    #[test]
    fn loop_carried_in_place_updates_stay_in_place() {
        // A loop threading an array through per-iteration updates: the
        // copy-back must not leave stale Arc clones (that would degrade
        // every update to a full copy). Semantics checked here; the
        // performance property is what the Take instructions exist for.
        let mut b = Builder::new();
        let f = b.build_fun("updloop", &[Type::arr_f64(1), Type::I64], |b, ps| {
            let n = Atom::Var(ps[1]);
            let r = b.loop_(&[(Type::arr_f64(1), Atom::Var(ps[0]))], n, |b, i, st| {
                let idx = b.irem(Atom::Var(i), Atom::i64(8));
                let old = b.index(st[0], &[idx]);
                let inc = b.fadd(old.into(), Atom::f64(1.0));
                let upd = b.update(st[0], &[idx], inc);
                vec![Atom::Var(upd)]
            });
            vec![Atom::Var(r[0])]
        });
        let xs = Value::from(vec![0.0; 8]);
        assert_agree(&f, &[xs, Value::I64(40)]);
    }

    #[test]
    fn index_update_iota_replicate_reverse() {
        let mut b = Builder::new();
        let f = b.build_fun("arrops", &[Type::arr_f64(1)], |b, ps| {
            let xs = ps[0];
            let n = b.len(xs);
            let i = b.iota(n);
            let r = b.replicate(n, Atom::f64(2.0));
            let orig = b.index(xs, &[Atom::i64(1)]);
            let xs2 = b.update(xs, &[Atom::i64(1)], Atom::f64(42.0));
            let rev = b.reverse(xs2);
            let first = b.index(rev, &[Atom::i64(0)]);
            vec![
                Atom::Var(i),
                Atom::Var(r),
                Atom::Var(orig),
                Atom::Var(first),
                Atom::Var(rev),
            ]
        });
        assert_agree(&f, &[Value::from(vec![1.0, 2.0, 3.0])]);
    }

    #[test]
    fn hist_scatter_withacc() {
        let mut b = Builder::new();
        let f = b.build_fun(
            "hsa",
            &[Type::arr_f64(1), Type::arr_i64(1), Type::arr_f64(1)],
            |b, ps| {
                let dst = ps[0];
                let inds = ps[1];
                let vals = ps[2];
                let h = b.hist(ReduceOp::Add, Atom::i64(3), inds, vals);
                let hmax = b.hist(ReduceOp::Max, Atom::i64(3), inds, vals);
                let sc = b.scatter(dst, inds, vals);
                let acc_out = b.with_acc(&[sc], |b, accs| {
                    let r = b.map1(b.ty_of(accs[0]), &[inds, vals, accs[0]], |b, es| {
                        vec![b.upd_acc(es[2], &[es[0].into()], es[1].into()).into()]
                    });
                    vec![r.into()]
                });
                vec![Atom::Var(h), Atom::Var(hmax), Atom::Var(acc_out[0])]
            },
        );
        let dst = Value::from(vec![0.0; 3]);
        // Out-of-bounds bins/targets must be ignored; negative indices are
        // rejected by `upd_acc` in both backends, so only use high ones.
        let inds = Value::from(vec![0i64, 2, 0, 1, 7, 5]);
        let vals = Value::from(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_agree(&f, &[dst, inds, vals]);
    }

    #[test]
    fn nested_maps_over_matrices() {
        let mut b = Builder::new();
        let f = b.build_fun("rowsums", &[Type::arr_f64(2)], |b, ps| {
            let sums = b.map1(Type::arr_f64(1), &[ps[0]], |b, rows| {
                vec![Atom::Var(b.sum(rows[0]))]
            });
            let sq = b.map1(Type::arr_f64(2), &[ps[0]], |b, rows| {
                let r = b.map1(Type::arr_f64(1), &[rows[0]], |b, xs| {
                    vec![b.fmul(xs[0].into(), xs[0].into())]
                });
                vec![Atom::Var(r)]
            });
            vec![Atom::Var(sums), Atom::Var(sq)]
        });
        let m = Value::Arr(Array::from_f64(
            vec![3, 2],
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0],
        ));
        assert_agree(&f, &[m]);
    }

    #[test]
    fn empty_arrays() {
        let mut b = Builder::new();
        let f = b.build_fun("empty", &[Type::arr_f64(1)], |b, ps| {
            let sq = b.map1(Type::arr_f64(1), &[ps[0]], |b, es| {
                vec![b.fmul(es[0].into(), es[0].into())]
            });
            let s = b.sum(ps[0]);
            let sc = b.scan_add(ps[0]);
            vec![Atom::Var(sq), Atom::Var(s), Atom::Var(sc)]
        });
        assert_agree(&f, &[Value::from(Vec::<f64>::new())]);
    }

    #[test]
    fn empty_scans_keep_their_element_type() {
        use fir::types::ScalarType;
        let mut b = Builder::new();
        let f = b.build_fun("iscan", &[Type::arr_i64(1)], |b, ps| {
            let s = b.scan(&[Type::arr_i64(1)], &[Atom::i64(0)], &[ps[0]], |b, es| {
                vec![b.iadd(es[0].into(), es[1].into())]
            });
            vec![Atom::Var(s[0])]
        });
        let args = [Value::from(Vec::<i64>::new())];
        for out in [
            Interp::sequential().run(&f, &args),
            Vm::sequential().run(&f, &args),
        ] {
            let arr = out[0].as_arr();
            assert_eq!(arr.elem(), ScalarType::I64);
            assert!(arr.is_empty());
        }
        assert_agree(&f, &[Value::from(vec![1i64, 2, 3])]);
    }

    #[test]
    fn parallel_vm_matches_sequential_vm() {
        let mut b = Builder::new();
        let f = b.build_fun("sumsq", &[Type::arr_f64(1)], |b, ps| {
            let sq = b.map1(Type::arr_f64(1), &[ps[0]], |b, es| {
                vec![b.fmul(es[0].into(), es[0].into())]
            });
            vec![Atom::Var(b.sum(sq))]
        });
        let data: Vec<f64> = (0..10_000).map(|i| (i as f64) * 0.001).collect();
        let seq = Vm::sequential().run(&f, &[Value::from(data.clone())])[0].as_f64();
        let par = Vm::with_config(ExecConfig {
            parallel: true,
            num_threads: 4,
            parallel_threshold: 16,
        })
        .run(&f, &[Value::from(data)])[0]
            .as_f64();
        assert!((seq - par).abs() < 1e-6 * seq.abs());
    }

    #[test]
    fn gradients_of_vjp_output_run_on_the_vm() {
        use futhark_ad::vjp;
        let mut b = Builder::new();
        let f = b.build_fun("dot", &[Type::arr_f64(1), Type::arr_f64(1)], |b, ps| {
            let prods = b.map1(Type::arr_f64(1), &[ps[0], ps[1]], |b, es| {
                vec![b.fmul(es[0].into(), es[1].into())]
            });
            vec![b.sum(prods).into()]
        });
        let df = vjp(&f);
        let xs = Value::from(vec![1.0, 2.0, 3.0]);
        let ys = Value::from(vec![4.0, 5.0, 6.0]);
        let args = [xs, ys, Value::F64(1.0)];
        assert_agree(&df, &args);
    }

    #[test]
    fn scoped_cache_is_used_instead_of_the_global_one() {
        let cache = std::sync::Arc::new(ProgramCache::new());
        let vm = Vm::sequential().with_cache(std::sync::Arc::clone(&cache));
        let mut b = Builder::new();
        let f = b.build_fun("scoped_cache_probe", &[Type::F64], |b, ps| {
            vec![b.fadd(ps[0].into(), Atom::f64(1.0))]
        });
        assert!(cache.is_empty());
        assert_eq!(vm.run(&f, &[Value::F64(1.0)])[0].as_f64(), 2.0);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn prepare_compiles_once_and_runs_fallibly() {
        let mut b = Builder::new();
        let f = b.build_fun("sq", &[Type::F64], |b, ps| {
            vec![b.fmul(ps[0].into(), ps[0].into())]
        });
        let cache = std::sync::Arc::new(ProgramCache::new());
        let vm = Vm::sequential().with_cache(std::sync::Arc::clone(&cache));
        let exec = vm.prepare(&f).unwrap();
        assert_eq!(cache.len(), 1, "prepare compiles through the cache");
        assert_eq!(exec.fun_name(), "sq");
        assert_eq!(exec.run_scalar(&[Value::F64(4.0)]).unwrap(), 16.0);
        // Malformed arguments are errors, not panics.
        assert!(matches!(
            exec.run(&[Value::I64(4)]),
            Err(ExecError::ArgType { index: 0, .. })
        ));
        assert!(matches!(
            exec.run(&[]),
            Err(ExecError::Arity {
                expected: 1,
                got: 0,
                ..
            })
        ));
        // Running again does not recompile.
        assert_eq!(cache.len(), 1);
    }
}
