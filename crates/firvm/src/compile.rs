//! Lowering `fir` functions to register bytecode.
//!
//! The compiler performs, in one pass over the (alpha-renamed) IR:
//!
//! * **Slot allocation** — every variable gets a dense register index in its
//!   frame; all runtime lookups become array indexing.
//! * **Control-flow flattening** — `if` and `loop` compile to conditional
//!   jumps *within the same frame*; no environments or scopes exist at
//!   runtime. Loop-carried values live in fixed registers that each
//!   iteration overwrites (through temporaries, so that permuted results
//!   are moved in parallel).
//! * **Kernel extraction** — every SOAC lambda compiles once into a
//!   [`Kernel`] with its free variables turned into capture registers,
//!   resolved at the call site. Re-running a kernel for the next element is
//!   a frame write plus a jump to instruction 0 — the IR tree is never
//!   walked again.
//! * **Consume analysis** — `update`/`scatter` destinations are consumed
//!   (moved out of their register, enabling in-place mutation) exactly when
//!   the interpreter's uniqueness semantics would take them from the
//!   current environment frame: the variable must be bound in the same
//!   scope as the consuming statement. Anything bound in an outer scope
//!   (or captured by a kernel) is cloned instead, which degrades to
//!   copy-on-write, never to incorrectness.

use std::collections::HashMap;

use fir::free_vars::FreeVars;
use fir::ir::{Atom, BinOp, Body, Const, Exp, Fun, Lambda, Param, VarId};

use crate::bytecode::{CodeObject, Instr, Opnd, Program, Reg};
use crate::kernel::Kernel;

/// Compile a (type-checked) function into a [`Program`].
pub fn compile(fun: &Fun) -> Program {
    // Alpha-rename so every binder in the function is unique: flat register
    // allocation then needs no shadowing logic.
    let fun = alpha_rename(fun);
    let mut kernels = Vec::new();
    let mut fc = FrameCompiler::new();
    for p in &fun.params {
        fc.define(p.var);
    }
    let ret = fc.compile_body(&mut kernels, &fun.body);
    Program {
        name: fun.name.clone(),
        main: fc.finish(ret),
        #[cfg(feature = "profile")]
        kernel_labels: (0..kernels.len())
            .map(|i| fir_trace::intern(&format!("{}#k{i}", fun.name)))
            .collect(),
        kernels,
        num_params: fun.params.len(),
    }
}

/// Freshen every bound variable of `fun` (parameters keep their names).
fn alpha_rename(fun: &Fun) -> Fun {
    fir::rename::uniquify_fun(fun)
}

/// Scope id given to capture registers: never equal to any statement scope,
/// so captures are never consumed.
const CAPTURE_SCOPE: u32 = u32::MAX;

/// Per-frame compilation state (one per function body or kernel body).
struct FrameCompiler {
    /// Variable -> (register, scope in which it was bound).
    slots: HashMap<VarId, (Reg, u32)>,
    next_reg: Reg,
    cur_scope: u32,
    next_scope: u32,
    instrs: Vec<Instr>,
}

impl FrameCompiler {
    fn new() -> FrameCompiler {
        FrameCompiler {
            slots: HashMap::new(),
            next_reg: 0,
            cur_scope: 0,
            next_scope: 1,
            instrs: Vec::new(),
        }
    }

    /// Allocate the register for a newly-bound variable in the current scope.
    fn define(&mut self, v: VarId) -> Reg {
        let r = self.alloc();
        self.slots.insert(v, (r, self.cur_scope));
        r
    }

    /// Allocate a register for a kernel capture (never consumable).
    fn define_capture(&mut self, v: VarId) -> Reg {
        let r = self.alloc();
        self.slots.insert(v, (r, CAPTURE_SCOPE));
        r
    }

    /// Allocate an anonymous temporary register.
    fn alloc(&mut self) -> Reg {
        let r = self.next_reg;
        self.next_reg += 1;
        r
    }

    fn slot(&self, v: VarId) -> Reg {
        self.slots
            .get(&v)
            .unwrap_or_else(|| panic!("firvm compile: unbound variable {v}"))
            .0
    }

    /// Whether uniqueness semantics let a consuming statement in the current
    /// scope move the variable out of its register.
    fn consumable(&self, v: VarId) -> bool {
        self.slots
            .get(&v)
            .unwrap_or_else(|| panic!("firvm compile: unbound variable {v}"))
            .1
            == self.cur_scope
    }

    fn opnd(&self, a: &Atom) -> Opnd {
        match a {
            Atom::Var(v) => Opnd::Reg(self.slot(*v)),
            Atom::Const(Const::F64(x)) => Opnd::F64(*x),
            Atom::Const(Const::I64(x)) => Opnd::I64(*x),
            Atom::Const(Const::Bool(x)) => Opnd::Bool(*x),
        }
    }

    fn opnds(&self, atoms: &[Atom]) -> Box<[Opnd]> {
        atoms.iter().map(|a| self.opnd(a)).collect()
    }

    fn regs(&self, vars: &[VarId]) -> Box<[Reg]> {
        vars.iter().map(|v| self.slot(*v)).collect()
    }

    fn emit(&mut self, i: Instr) {
        self.instrs.push(i);
    }

    /// Emit a jump whose target is patched later; returns its index.
    fn emit_patchable(&mut self, i: Instr) -> usize {
        self.instrs.push(i);
        self.instrs.len() - 1
    }

    fn patch_target(&mut self, at: usize) {
        let target = self.instrs.len();
        match &mut self.instrs[at] {
            Instr::Jmp { target: t } | Instr::JmpIfNot { target: t, .. } => *t = target,
            other => panic!("patch_target on non-jump {other:?}"),
        }
    }

    /// Enter a child scope (an `if` branch or a loop iteration); returns the
    /// previous scope id for [`FrameCompiler::exit_scope`].
    fn enter_scope(&mut self) -> u32 {
        let old = self.cur_scope;
        self.cur_scope = self.next_scope;
        self.next_scope += 1;
        old
    }

    fn exit_scope(&mut self, old: u32) {
        self.cur_scope = old;
    }

    /// Move a body-result value into `dst`. A variable bound in the current
    /// (branch/iteration) scope is dead after this move, so it is *taken* —
    /// leaving no stale `Arc` clone that would force copy-on-write on a
    /// later consuming update of the moved array. Outer variables, repeated
    /// results and constants are copied.
    fn emit_result_move(&mut self, dst: Reg, a: &Atom, counts: &HashMap<VarId, usize>) {
        if let Atom::Var(v) = a {
            let (src, scope) = *self
                .slots
                .get(v)
                .unwrap_or_else(|| panic!("firvm compile: unbound variable {v}"));
            if scope == self.cur_scope && counts.get(v) == Some(&1) {
                self.emit(Instr::Take { dst, src });
                return;
            }
        }
        let src = self.opnd(a);
        self.emit(Instr::Mov { dst, src });
    }

    /// Occurrence counts of result variables (a register feeding two results
    /// must not be taken twice).
    fn result_counts(result: &[Atom]) -> HashMap<VarId, usize> {
        let mut counts: HashMap<VarId, usize> = HashMap::new();
        for a in result {
            if let Atom::Var(v) = a {
                *counts.entry(*v).or_default() += 1;
            }
        }
        counts
    }

    fn finish(self, ret: Vec<Opnd>) -> CodeObject {
        CodeObject {
            instrs: self.instrs,
            num_regs: self.next_reg as usize,
            ret,
        }
    }

    /// Compile a body's statements; returns the result operands.
    fn compile_body(&mut self, kernels: &mut Vec<Kernel>, body: &Body) -> Vec<Opnd> {
        for stm in &body.stms {
            self.compile_stm(kernels, &stm.pat, &stm.exp);
        }
        body.result.iter().map(|a| self.opnd(a)).collect()
    }

    fn compile_stm(&mut self, kernels: &mut Vec<Kernel>, pat: &[Param], exp: &Exp) {
        match exp {
            Exp::Atom(a) => {
                let src = self.opnd(a);
                let dst = self.define(pat[0].var);
                self.emit(Instr::Mov { dst, src });
            }
            Exp::UnOp(op, a) => {
                let a = self.opnd(a);
                let dst = self.define(pat[0].var);
                self.emit(Instr::Un { op: *op, dst, a });
            }
            Exp::BinOp(op, a, b) => {
                let (a, b) = (self.opnd(a), self.opnd(b));
                let dst = self.define(pat[0].var);
                self.emit(Instr::Bin { op: *op, dst, a, b });
            }
            Exp::Select { cond, t, f } => {
                let (cond, t, f) = (self.opnd(cond), self.opnd(t), self.opnd(f));
                let dst = self.define(pat[0].var);
                self.emit(Instr::Select { dst, cond, t, f });
            }
            Exp::Index { arr, idx } => {
                let arr = self.slot(*arr);
                let idx = self.opnds(idx);
                let dst = self.define(pat[0].var);
                self.emit(Instr::Index { dst, arr, idx });
            }
            Exp::Update { arr, idx, val } => {
                let consume = self.consumable(*arr);
                let arr_r = self.slot(*arr);
                let idx = self.opnds(idx);
                let val = self.opnd(val);
                let dst = self.define(pat[0].var);
                self.emit(Instr::Update {
                    dst,
                    arr: arr_r,
                    idx,
                    val,
                    consume,
                });
            }
            Exp::Len(v) => {
                let arr = self.slot(*v);
                let dst = self.define(pat[0].var);
                self.emit(Instr::Len { dst, arr });
            }
            Exp::Iota(n) => {
                let n = self.opnd(n);
                let dst = self.define(pat[0].var);
                self.emit(Instr::Iota { dst, n });
            }
            Exp::Replicate { n, val } => {
                let (n, val) = (self.opnd(n), self.opnd(val));
                let dst = self.define(pat[0].var);
                self.emit(Instr::Replicate { dst, n, val });
            }
            Exp::Reverse(v) => {
                let arr = self.slot(*v);
                let dst = self.define(pat[0].var);
                self.emit(Instr::Reverse { dst, arr });
            }
            Exp::Copy(v) => {
                // Values are copy-on-write at runtime; an explicit copy is a
                // register move whose clone breaks uniqueness, exactly like
                // the interpreter's `lookup().clone()`.
                let src = Opnd::Reg(self.slot(*v));
                let dst = self.define(pat[0].var);
                self.emit(Instr::Mov { dst, src });
            }
            Exp::If {
                cond,
                then_br,
                else_br,
            } => {
                let cond = self.opnd(cond);
                let dsts: Vec<Reg> = pat.iter().map(|p| self.define(p.var)).collect();
                let jz = self.emit_patchable(Instr::JmpIfNot {
                    cond,
                    target: usize::MAX,
                });
                let mut jend_slot = None;
                for (branch, end_jump) in [(then_br, true), (else_br, false)] {
                    let old = self.enter_scope();
                    for stm in &branch.stms {
                        self.compile_stm(kernels, &stm.pat, &stm.exp);
                    }
                    let counts = Self::result_counts(&branch.result);
                    for (d, a) in dsts.iter().zip(&branch.result) {
                        self.emit_result_move(*d, a, &counts);
                    }
                    self.exit_scope(old);
                    if end_jump {
                        let jend = self.emit_patchable(Instr::Jmp { target: usize::MAX });
                        self.patch_target(jz);
                        jend_slot = Some(jend);
                    }
                }
                self.patch_target(jend_slot.expect("then-branch emitted"));
            }
            Exp::Loop {
                params,
                index,
                count,
                body,
            } => {
                let count = self.opnd(count);
                let inits: Vec<Opnd> = params.iter().map(|(_, init)| self.opnd(init)).collect();
                // Loop-carried registers are bound in the iteration scope:
                // the interpreter rebinds them in each iteration's frame, so
                // the body may consume them.
                let old = self.enter_scope();
                let pregs: Vec<Reg> = params.iter().map(|(p, _)| self.define(p.var)).collect();
                for (r, init) in pregs.iter().zip(inits) {
                    self.emit(Instr::Mov { dst: *r, src: init });
                }
                let idx = self.define(*index);
                self.emit(Instr::Mov {
                    dst: idx,
                    src: Opnd::I64(0),
                });
                let start = self.instrs.len();
                let cond = self.alloc();
                self.emit(Instr::Bin {
                    op: BinOp::Lt,
                    dst: cond,
                    a: Opnd::Reg(idx),
                    b: count,
                });
                let jend = self.emit_patchable(Instr::JmpIfNot {
                    cond: Opnd::Reg(cond),
                    target: usize::MAX,
                });
                for stm in &body.stms {
                    self.compile_stm(kernels, &stm.pat, &stm.exp);
                }
                // Parallel move: results may permute the carried registers,
                // so stage them in temporaries first. Locally-bound results
                // are *taken* into the temporaries (and the temporaries into
                // the carried registers), so a loop-carried array stays
                // uniquely owned and consuming updates mutate in place.
                let mut counts = Self::result_counts(&body.result);
                // The index register must stay live for the increment below
                // even if the body returns it: never take it.
                counts.insert(*index, usize::MAX);
                let temps: Vec<Reg> = body
                    .result
                    .iter()
                    .map(|a| {
                        let t = self.alloc();
                        self.emit_result_move(t, a, &counts);
                        t
                    })
                    .collect();
                for (p, t) in pregs.iter().zip(temps) {
                    self.emit(Instr::Take { dst: *p, src: t });
                }
                self.emit(Instr::Bin {
                    op: BinOp::Add,
                    dst: idx,
                    a: Opnd::Reg(idx),
                    b: Opnd::I64(1),
                });
                self.emit(Instr::Jmp { target: start });
                self.patch_target(jend);
                self.exit_scope(old);
                // The carried registers are dead once the loop exits.
                for (p, src) in pat.iter().zip(pregs) {
                    let dst = self.define(p.var);
                    self.emit(Instr::Take { dst, src });
                }
            }
            Exp::Map { lam, args } => {
                let (kernel, captures) = self.compile_kernel(kernels, lam);
                let args = self.regs(args);
                let dsts: Box<[Reg]> = pat.iter().map(|p| self.define(p.var)).collect();
                self.emit(Instr::Map {
                    kernel,
                    dsts,
                    args,
                    captures,
                });
            }
            Exp::Reduce { lam, neutral, args } => {
                let (kernel, captures) = self.compile_kernel(kernels, lam);
                let neutral = self.opnds(neutral);
                let args = self.regs(args);
                let dsts: Box<[Reg]> = pat.iter().map(|p| self.define(p.var)).collect();
                self.emit(Instr::Reduce {
                    kernel,
                    dsts,
                    neutral,
                    args,
                    captures,
                });
            }
            Exp::Scan { lam, neutral, args } => {
                let (kernel, captures) = self.compile_kernel(kernels, lam);
                let neutral = self.opnds(neutral);
                let args = self.regs(args);
                let dsts: Box<[Reg]> = pat.iter().map(|p| self.define(p.var)).collect();
                self.emit(Instr::Scan {
                    kernel,
                    dsts,
                    neutral,
                    args,
                    captures,
                });
            }
            Exp::Redomap {
                red_lam,
                map_lam,
                neutral,
                args,
            } => {
                let (red_kernel, red_captures) = self.compile_kernel(kernels, red_lam);
                let (map_kernel, map_captures) = self.compile_kernel(kernels, map_lam);
                let neutral = self.opnds(neutral);
                let args = self.regs(args);
                let dsts: Box<[Reg]> = pat.iter().map(|p| self.define(p.var)).collect();
                self.emit(Instr::Redomap {
                    red_kernel,
                    map_kernel,
                    dsts,
                    neutral,
                    args,
                    red_captures,
                    map_captures,
                });
            }
            Exp::Hist {
                op,
                num_bins,
                inds,
                vals,
            } => {
                let num_bins = self.opnd(num_bins);
                let (inds, vals) = (self.slot(*inds), self.slot(*vals));
                let dst = self.define(pat[0].var);
                self.emit(Instr::Hist {
                    op: *op,
                    dst,
                    num_bins,
                    inds,
                    vals,
                });
            }
            Exp::Scatter { dest, inds, vals } => {
                let consume = self.consumable(*dest);
                let dest = self.slot(*dest);
                let (inds, vals) = (self.slot(*inds), self.slot(*vals));
                let dst = self.define(pat[0].var);
                self.emit(Instr::Scatter {
                    dst,
                    dest,
                    inds,
                    vals,
                    consume,
                });
            }
            Exp::WithAcc { arrs, lam } => {
                let (kernel, captures) = self.compile_kernel(kernels, lam);
                let arrs = self.regs(arrs);
                let dsts: Box<[Reg]> = pat.iter().map(|p| self.define(p.var)).collect();
                self.emit(Instr::WithAcc {
                    kernel,
                    dsts,
                    arrs,
                    captures,
                });
            }
            Exp::UpdAcc { acc, idx, val } => {
                let acc = self.slot(*acc);
                let idx = self.opnds(idx);
                let val = self.opnd(val);
                let dst = self.define(pat[0].var);
                self.emit(Instr::UpdAcc { dst, acc, idx, val });
            }
        }
    }

    /// Compile a SOAC lambda into a kernel; returns its index and the
    /// registers (in this frame) holding its captured free variables.
    fn compile_kernel(&mut self, kernels: &mut Vec<Kernel>, lam: &Lambda) -> (usize, Box<[Reg]>) {
        let free: Vec<VarId> = lam.free_vars().into_iter().collect();
        let captures: Box<[Reg]> = free.iter().map(|v| self.slot(*v)).collect();
        let mut kc = FrameCompiler::new();
        for p in &lam.params {
            kc.define(p.var);
        }
        for v in &free {
            kc.define_capture(*v);
        }
        let ret = kc.compile_body(kernels, &lam.body);
        let code = kc.finish(ret);
        kernels.push(Kernel {
            code,
            num_params: lam.params.len(),
            num_captures: free.len(),
            ret: lam.ret.clone(),
        });
        (kernels.len() - 1, captures)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fir::builder::Builder;
    use fir::types::Type;

    #[test]
    fn straight_line_code_compiles_to_flat_instrs() {
        let mut b = Builder::new();
        let f = b.build_fun("poly", &[Type::F64], |b, ps| {
            let x = Atom::Var(ps[0]);
            let s = b.fsin(x);
            let p = b.fmul(s, x);
            vec![b.fadd(p, Atom::f64(1.0))]
        });
        let prog = compile(&f);
        assert_eq!(prog.kernels.len(), 0);
        assert_eq!(prog.main.instrs.len(), 3);
        assert_eq!(prog.main.ret.len(), 1);
    }

    #[test]
    fn map_lambdas_become_kernels_with_captures() {
        let mut b = Builder::new();
        let f = b.build_fun("scale", &[Type::arr_f64(1), Type::F64], |b, ps| {
            let c = Atom::Var(ps[1]);
            let ys = b.map1(Type::arr_f64(1), &[ps[0]], |b, es| {
                vec![b.fmul(es[0].into(), c)]
            });
            vec![Atom::Var(ys)]
        });
        let prog = compile(&f);
        assert_eq!(prog.kernels.len(), 1);
        let k = &prog.kernels[0];
        assert_eq!(k.num_params, 1);
        // The scale factor is captured once, not re-resolved per element.
        assert_eq!(k.num_captures, 1);
    }

    #[test]
    fn nested_maps_compile_to_nested_kernels() {
        let mut b = Builder::new();
        let f = b.build_fun("sq2", &[Type::arr_f64(2)], |b, ps| {
            let out = b.map1(Type::arr_f64(2), &[ps[0]], |b, rows| {
                let r = b.map1(Type::arr_f64(1), &[rows[0]], |b, xs| {
                    vec![b.fmul(xs[0].into(), xs[0].into())]
                });
                vec![Atom::Var(r)]
            });
            vec![Atom::Var(out)]
        });
        let prog = compile(&f);
        assert_eq!(prog.kernels.len(), 2);
    }

    #[test]
    fn loops_compile_to_backward_jumps() {
        let mut b = Builder::new();
        let f = b.build_fun("pow", &[Type::F64, Type::I64], |b, ps| {
            let x = Atom::Var(ps[0]);
            let n = Atom::Var(ps[1]);
            let r = b.loop_(&[(Type::F64, Atom::f64(1.0))], n, |b, _i, acc| {
                vec![b.fmul(acc[0].into(), x)]
            });
            vec![r[0].into()]
        });
        let prog = compile(&f);
        let has_backjump = prog
            .main
            .instrs
            .iter()
            .enumerate()
            .any(|(at, i)| matches!(i, Instr::Jmp { target } if *target < at));
        assert!(has_backjump, "loop lowering must produce a backward jump");
    }

    #[test]
    fn update_consumes_only_same_scope_bindings() {
        // xs is a function parameter (same scope as the update): consumed.
        let mut b = Builder::new();
        let f = b.build_fun("upd", &[Type::arr_f64(1)], |b, ps| {
            let xs2 = b.update(ps[0], &[Atom::i64(0)], Atom::f64(9.0));
            vec![Atom::Var(xs2)]
        });
        let prog = compile(&f);
        assert!(matches!(
            prog.main.instrs[0],
            Instr::Update { consume: true, .. }
        ));

        // ys is bound outside the loop body that updates it: cloned.
        let mut b = Builder::new();
        let g = b.build_fun("updloop", &[Type::arr_f64(1)], |b, ps| {
            let r = b.loop_(&[(Type::F64, Atom::f64(0.0))], Atom::i64(3), |b, i, acc| {
                let ys2 = b.update(ps[0], &[Atom::Var(i)], Atom::f64(1.0));
                let y0 = b.index(ys2, &[Atom::i64(0)]);
                vec![b.fadd(acc[0].into(), y0.into())]
            });
            vec![r[0].into()]
        });
        let prog = compile(&g);
        let consume_flags: Vec<bool> = prog
            .main
            .instrs
            .iter()
            .filter_map(|i| match i {
                Instr::Update { consume, .. } => Some(*consume),
                _ => None,
            })
            .collect();
        assert_eq!(consume_flags, vec![false]);
    }
}
