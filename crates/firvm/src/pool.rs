//! Parallel scheduling of compiled SOACs.
//!
//! The VM shares the persistent [`WorkerPool`] with the tree-walking
//! interpreter — one process-wide pool, spawned once, serving both
//! backends. This module adds the chunking policy: a SOAC of outer size `n`
//! becomes at most `cfg.num_threads` contiguous chunks, and SOACs below the
//! configured threshold (or with parallelism disabled) run inline on the
//! submitting thread with zero scheduling overhead.

pub use interp::pool::WorkerPool;

use interp::ExecConfig;

/// Whether a SOAC of outer size `n` should be parallelized under `cfg`
/// (delegates to the single policy on [`ExecConfig`]).
pub fn should_parallelize(cfg: &ExecConfig, n: usize) -> bool {
    cfg.should_parallelize(n)
}

/// Run `f(lo, hi)` over a chunking of `0..n`, on the shared pool when
/// worthwhile and inline otherwise. Chunk results come back in order.
pub fn run_chunked<R: Send>(
    cfg: &ExecConfig,
    n: usize,
    f: &(dyn Fn(usize, usize) -> R + Sync),
) -> Vec<R> {
    if n == 0 {
        return Vec::new();
    }
    if !should_parallelize(cfg, n) {
        return vec![f(0, n)];
    }
    WorkerPool::global().run_chunked(n, cfg.num_threads, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_soacs_run_inline_as_one_chunk() {
        let cfg = ExecConfig {
            parallel: true,
            num_threads: 4,
            parallel_threshold: 100,
        };
        let chunks = run_chunked(&cfg, 10, &|lo, hi| (lo, hi));
        assert_eq!(chunks, vec![(0, 10)]);
    }

    #[test]
    fn large_soacs_are_chunked_in_order() {
        let cfg = ExecConfig {
            parallel: true,
            num_threads: 4,
            parallel_threshold: 8,
        };
        let chunks = run_chunked(&cfg, 100, &|lo, hi| (lo, hi));
        assert!(chunks.len() > 1);
        let mut expect = 0;
        for (lo, hi) in chunks {
            assert_eq!(lo, expect);
            expect = hi;
        }
        assert_eq!(expect, 100);
    }

    #[test]
    fn sequential_config_never_parallelizes() {
        let cfg = ExecConfig::sequential();
        assert!(!should_parallelize(&cfg, 1 << 20));
    }
}
