//! Parallel scheduling of compiled SOACs.
//!
//! The VM shares the persistent [`WorkerPool`] with the tree-walking
//! interpreter — one process-wide pool, spawned once, serving both
//! backends. This module adds the chunking policy: a SOAC of outer size `n`
//! becomes at most `cfg.num_threads` contiguous chunks, and SOACs below the
//! configured threshold (or with parallelism disabled) run inline on the
//! submitting thread with zero scheduling overhead.

pub use interp::pool::{PoolUtilization, WorkerPool};

use interp::ExecConfig;

/// Whether a SOAC of outer size `n` should be parallelized under `cfg`
/// (delegates to the single policy on [`ExecConfig`]).
pub fn should_parallelize(cfg: &ExecConfig, n: usize) -> bool {
    cfg.should_parallelize(n)
}

/// Submit a fire-and-forget job to the shared persistent pool from any
/// thread ([`WorkerPool::spawn`] on the global pool). This is the
/// serving-path entry point: `fir-serve`'s dispatcher cuts a micro-batch
/// and submits its execution here, so request batches and SOAC chunks are
/// multiplexed over one process-wide set of workers instead of competing
/// thread pools. The submitter does not block; a panicking job aborts only
/// itself.
pub fn submit(job: impl FnOnce() + Send + 'static) {
    WorkerPool::global().spawn(job);
}

/// Run `f(lo, hi)` over a chunking of `0..n`, on the shared pool when
/// worthwhile and inline otherwise. Chunk results come back in order.
pub fn run_chunked<R: Send>(
    cfg: &ExecConfig,
    n: usize,
    f: &(dyn Fn(usize, usize) -> R + Sync),
) -> Vec<R> {
    if n == 0 {
        return Vec::new();
    }
    if !should_parallelize(cfg, n) {
        return vec![f(0, n)];
    }
    WorkerPool::global().run_chunked(n, cfg.num_threads, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_soacs_run_inline_as_one_chunk() {
        let cfg = ExecConfig {
            parallel: true,
            num_threads: 4,
            parallel_threshold: 100,
        };
        let chunks = run_chunked(&cfg, 10, &|lo, hi| (lo, hi));
        assert_eq!(chunks, vec![(0, 10)]);
    }

    #[test]
    fn large_soacs_are_chunked_in_order() {
        let cfg = ExecConfig {
            parallel: true,
            num_threads: 4,
            parallel_threshold: 8,
        };
        let chunks = run_chunked(&cfg, 100, &|lo, hi| (lo, hi));
        assert!(chunks.len() > 1);
        let mut expect = 0;
        for (lo, hi) in chunks {
            assert_eq!(lo, expect);
            expect = hi;
        }
        assert_eq!(expect, 100);
    }

    #[test]
    fn sequential_config_never_parallelizes() {
        let cfg = ExecConfig::sequential();
        assert!(!should_parallelize(&cfg, 1 << 20));
    }

    #[test]
    fn submitted_jobs_can_run_scoped_batches() {
        // A foreign-thread submission that itself fans out a scoped batch:
        // the shape of a fir-serve micro-batch execution.
        use std::sync::mpsc;
        let (tx, rx) = mpsc::channel();
        submit(move || {
            let sum: usize = WorkerPool::global().run_tasks(16, &|i| i).into_iter().sum();
            tx.send(sum).unwrap();
        });
        assert_eq!(
            rx.recv_timeout(std::time::Duration::from_secs(10)).unwrap(),
            120
        );
    }
}
