//! The bytecode executor.
//!
//! Straight-line code is a tight `match` over [`Instr`] with register reads
//! and writes; control flow is jump-based within one frame. SOAC
//! instructions set up their kernel frame **once** (captures included) and
//! then drive the compiled kernel body per element or per chunk, scheduling
//! chunks on the shared persistent worker pool. Scalar kernel outputs are
//! written to flat typed buffers, so a `map` producing `f64`s never boxes
//! per-element values.

use fir::ir::ReduceOp;
use fir::types::{ScalarType, Type};
use interp::eval::{eval_binop, eval_unop, replicate};
use interp::{arena, Accum, Array, ExecConfig, Value};

use crate::bytecode::{CodeObject, Instr, Opnd, Program, Reg};
use crate::kernel::Kernel;
use crate::pool::run_chunked;
use crate::tier::TierRef;

/// Everything an executing frame needs to reach besides its registers.
pub(crate) struct ExecCtx<'a> {
    pub prog: &'a Program,
    pub cfg: &'a ExecConfig,
    /// The jit tier for this execution, when the program is promoted.
    pub tier: Option<TierRef<'a>>,
}

/// Run a compiled program on argument values.
pub fn run_program(prog: &Program, cfg: &ExecConfig, args: &[Value]) -> Vec<Value> {
    run_program_tiered(prog, cfg, args, None)
}

/// Run a compiled program, offering SOAC dispatches and main-body scalar
/// regions to `tier`'s accelerator first (per-kernel fallback to the
/// ordinary bytecode path when it declines).
pub fn run_program_tiered(
    prog: &Program,
    cfg: &ExecConfig,
    args: &[Value],
    tier: Option<TierRef<'_>>,
) -> Vec<Value> {
    assert_eq!(
        prog.num_params,
        args.len(),
        "{}: expected {} arguments, got {}",
        prog.name,
        prog.num_params,
        args.len()
    );
    let _span = fir_trace::span_str("vm", &prog.name);
    let ctx = ExecCtx { prog, cfg, tier };
    let mut regs = new_frame(prog.main.num_regs);
    regs[..args.len()].clone_from_slice(args);
    exec(&ctx, &prog.main, &mut regs);
    read_ret(&prog.main, &regs)
}

fn new_frame(num_regs: usize) -> Vec<Value> {
    vec![Value::I64(0); num_regs]
}

fn read(regs: &[Value], o: &Opnd) -> Value {
    match o {
        Opnd::Reg(r) => regs[*r as usize].clone(),
        Opnd::F64(x) => Value::F64(*x),
        Opnd::I64(x) => Value::I64(*x),
        Opnd::Bool(x) => Value::Bool(*x),
    }
}

fn read_ret(code: &CodeObject, regs: &[Value]) -> Vec<Value> {
    code.ret.iter().map(|o| read(regs, o)).collect()
}

fn read_usizes(regs: &[Value], idx: &[Opnd]) -> Vec<usize> {
    idx.iter()
        .map(|o| {
            let i = read(regs, o).as_i64();
            assert!(i >= 0, "negative index {i}");
            i as usize
        })
        .collect()
}

/// Take an array out of a register (consume) or clone it, per the compiled
/// uniqueness decision.
fn take_arr(regs: &mut [Value], r: Reg, consume: bool) -> Array {
    if consume {
        std::mem::replace(&mut regs[r as usize], Value::I64(0)).into_arr()
    } else {
        regs[r as usize].as_arr().clone()
    }
}

/// Execute a code object over the given frame until it falls off the end.
pub(crate) fn exec(ctx: &ExecCtx, code: &CodeObject, regs: &mut [Value]) {
    let mut pc = 0usize;
    let instrs = &code.instrs;
    // Jit regions only apply to the program's main body (kernel bodies are
    // specialized wholesale through the SOAC offers instead). The region
    // table is hoisted out of the dispatch loop; a table of the wrong
    // length (never produced by a well-formed accelerator) is ignored.
    let regions: Option<(&[u32], TierRef)> = match ctx.tier {
        Some(t) if std::ptr::eq(code, &ctx.prog.main) => {
            let starts = t.accel.region_starts();
            (starts.len() == instrs.len()).then_some((starts, t))
        }
        _ => None,
    };
    while pc < instrs.len() {
        if let Some((starts, t)) = regions {
            let rid = starts[pc];
            if rid != 0 {
                if let Some(next) = t.accel.run_region(rid - 1, regs) {
                    t.hit();
                    pc = next;
                    continue;
                }
                // Input class mismatch: interpret the same instructions.
                t.fallback();
            }
        }
        match &instrs[pc] {
            Instr::Mov { dst, src } => regs[*dst as usize] = read(regs, src),
            Instr::Take { dst, src } => {
                let v = std::mem::replace(&mut regs[*src as usize], Value::I64(0));
                regs[*dst as usize] = v;
            }
            Instr::Un { op, dst, a } => {
                regs[*dst as usize] = eval_unop(*op, read(regs, a));
            }
            Instr::Bin { op, dst, a, b } => {
                regs[*dst as usize] = eval_binop(*op, read(regs, a), read(regs, b));
            }
            Instr::Select { dst, cond, t, f } => {
                let c = read(regs, cond).as_bool();
                regs[*dst as usize] = if c { read(regs, t) } else { read(regs, f) };
            }
            Instr::Index { dst, arr, idx } => {
                let idx = read_usizes(regs, idx);
                let v = regs[*arr as usize].as_arr().index(&idx);
                regs[*dst as usize] = v;
            }
            Instr::Update {
                dst,
                arr,
                idx,
                val,
                consume,
            } => {
                let idx = read_usizes(regs, idx);
                let v = read(regs, val);
                let mut a = take_arr(regs, *arr, *consume);
                a.write(&idx, &v);
                regs[*dst as usize] = Value::Arr(a);
            }
            Instr::Len { dst, arr } => {
                let n = regs[*arr as usize].as_arr().len() as i64;
                regs[*dst as usize] = Value::I64(n);
            }
            Instr::Iota { dst, n } => {
                let n = read(regs, n).as_i64().max(0);
                let mut data = arena::take_i64(n as usize);
                data.extend(0..n);
                regs[*dst as usize] = Value::Arr(Array::vec_i64(data));
            }
            Instr::Replicate { dst, n, val } => {
                let n = read(regs, n).as_i64().max(0) as usize;
                let v = read(regs, val);
                regs[*dst as usize] = Value::Arr(replicate(n, &v));
            }
            Instr::Reverse { dst, arr } => {
                let v = Value::Arr(regs[*arr as usize].as_arr().reverse());
                regs[*dst as usize] = v;
            }
            Instr::Jmp { target } => {
                pc = *target;
                continue;
            }
            Instr::JmpIfNot { cond, target } => {
                if !read(regs, cond).as_bool() {
                    pc = *target;
                    continue;
                }
            }
            Instr::Map {
                kernel,
                dsts,
                args,
                captures,
            } => {
                #[cfg(feature = "profile")]
                let _k = fir_trace::span("kernel", ctx.prog.kernel_label(*kernel));
                let outs = try_accel_map(ctx, *kernel, args, captures, regs)
                    .unwrap_or_else(|| exec_map(ctx, *kernel, args, captures, regs));
                for (d, v) in dsts.iter().zip(outs) {
                    regs[*d as usize] = v;
                }
            }
            Instr::Reduce {
                kernel,
                dsts,
                neutral,
                args,
                captures,
            } => {
                #[cfg(feature = "profile")]
                let _k = fir_trace::span("kernel", ctx.prog.kernel_label(*kernel));
                let outs = try_accel_reduce(ctx, *kernel, neutral, args, captures, regs)
                    .unwrap_or_else(|| exec_reduce(ctx, *kernel, neutral, args, captures, regs));
                for (d, v) in dsts.iter().zip(outs) {
                    regs[*d as usize] = v;
                }
            }
            Instr::Redomap {
                red_kernel,
                map_kernel,
                dsts,
                neutral,
                args,
                red_captures,
                map_captures,
            } => {
                #[cfg(feature = "profile")]
                let _k = fir_trace::span("kernel", ctx.prog.kernel_label(*red_kernel));
                let outs = try_accel_redomap(
                    ctx,
                    *red_kernel,
                    *map_kernel,
                    neutral,
                    args,
                    red_captures,
                    map_captures,
                    regs,
                )
                .unwrap_or_else(|| {
                    exec_redomap(
                        ctx,
                        *red_kernel,
                        *map_kernel,
                        neutral,
                        args,
                        red_captures,
                        map_captures,
                        regs,
                    )
                });
                for (d, v) in dsts.iter().zip(outs) {
                    regs[*d as usize] = v;
                }
            }
            Instr::Scan {
                kernel,
                dsts,
                neutral,
                args,
                captures,
            } => {
                #[cfg(feature = "profile")]
                let _k = fir_trace::span("kernel", ctx.prog.kernel_label(*kernel));
                let outs = try_accel_scan(ctx, *kernel, neutral, args, captures, regs)
                    .unwrap_or_else(|| exec_scan(ctx, *kernel, neutral, args, captures, regs));
                for (d, v) in dsts.iter().zip(outs) {
                    regs[*d as usize] = v;
                }
            }
            Instr::Hist {
                op,
                dst,
                num_bins,
                inds,
                vals,
            } => {
                #[cfg(feature = "profile")]
                let _k = fir_trace::span("kernel", "hist");
                let v = exec_hist(ctx, *op, num_bins, *inds, *vals, regs);
                regs[*dst as usize] = v;
            }
            Instr::Scatter {
                dst,
                dest,
                inds,
                vals,
                consume,
            } => {
                let inds = regs[*inds as usize].as_arr().clone();
                let vals = regs[*vals as usize].as_arr().clone();
                let mut dest = take_arr(regs, *dest, *consume);
                let n = inds.len().min(vals.len());
                for k in 0..n {
                    let j = inds.i64s()[k];
                    if j >= 0 && (j as usize) < dest.len() {
                        dest.write(&[j as usize], &vals.index(&[k]));
                    }
                }
                regs[*dst as usize] = Value::Arr(dest);
            }
            Instr::WithAcc {
                kernel,
                dsts,
                arrs,
                captures,
            } => {
                #[cfg(feature = "profile")]
                let _k = fir_trace::span("kernel", ctx.prog.kernel_label(*kernel));
                let outs = exec_withacc(ctx, *kernel, arrs, captures, regs);
                for (d, v) in dsts.iter().zip(outs) {
                    regs[*d as usize] = v;
                }
            }
            Instr::UpdAcc { dst, acc, idx, val } => {
                let handle = regs[*acc as usize].as_acc().clone();
                let idx = read_usizes(regs, idx);
                if handle.in_bounds(&idx) {
                    let (off, span) = handle.offset_of(&idx);
                    match read(regs, val) {
                        Value::F64(x) => {
                            debug_assert_eq!(span, 1);
                            handle.add_at(off, x);
                        }
                        Value::Arr(a) => {
                            debug_assert_eq!(span, a.f64s().len());
                            handle.add_slice(off, a.f64s());
                        }
                        other => panic!("upd_acc with non-float value {other:?}"),
                    }
                }
                regs[*dst as usize] = Value::Acc(handle);
            }
        }
        pc += 1;
    }
}

/// A typed per-output buffer for SOAC results: scalar outputs go to flat
/// vectors (no per-element `Value` boxing); array outputs are stacked;
/// accumulator outputs collapse to the shared handle.
enum OutBuf {
    F64(Vec<f64>),
    I64(Vec<i64>),
    Bool(Vec<bool>),
    Vals(Vec<Value>),
    Acc(Option<Accum>),
}

impl OutBuf {
    fn for_type(ty: &Type, cap: usize) -> OutBuf {
        match ty {
            Type::Acc { .. } => OutBuf::Acc(None),
            Type::Scalar(ScalarType::F64) => OutBuf::F64(arena::take_f64(cap)),
            Type::Scalar(ScalarType::I64) => OutBuf::I64(arena::take_i64(cap)),
            Type::Scalar(ScalarType::Bool) => OutBuf::Bool(arena::take_bool(cap)),
            Type::Array { .. } => OutBuf::Vals(Vec::with_capacity(cap)),
        }
    }

    fn push(&mut self, v: Value) {
        match self {
            OutBuf::F64(buf) => buf.push(v.as_f64()),
            OutBuf::I64(buf) => buf.push(v.as_i64()),
            OutBuf::Bool(buf) => buf.push(v.as_bool()),
            OutBuf::Vals(buf) => buf.push(v),
            OutBuf::Acc(slot) => {
                if slot.is_none() {
                    match v {
                        Value::Acc(a) => *slot = Some(a),
                        other => panic!("kernel declared accumulator result, got {other:?}"),
                    }
                }
            }
        }
    }
}

/// Merge per-chunk buffers of one output into its final value. `n` is the
/// SOAC's outer size.
fn assemble_output(ty: &Type, n: usize, chunks: Vec<OutBuf>) -> Value {
    if matches!(ty, Type::Acc { .. }) {
        let handle = chunks
            .into_iter()
            .find_map(|c| match c {
                OutBuf::Acc(h) => h,
                _ => None,
            })
            .expect("map with accumulator result over an empty array");
        return Value::Acc(handle);
    }
    if n == 0 {
        return Value::Arr(Array::zeros(ty.elem(), vec![0]));
    }
    match &chunks[0] {
        OutBuf::F64(_) => {
            // The single-chunk case (sequential execution, the serving hot
            // path) promotes the chunk buffer to the result directly.
            let mut data = arena::take_f64(if chunks.len() == 1 { 0 } else { n });
            for c in chunks {
                match c {
                    OutBuf::F64(mut v) => {
                        if data.is_empty() && data.capacity() == 0 {
                            data = v;
                        } else {
                            data.append(&mut v);
                            arena::give_f64(v);
                        }
                    }
                    _ => unreachable!("mixed chunk buffer types"),
                }
            }
            Value::Arr(Array::from_f64(vec![n], data))
        }
        OutBuf::I64(_) => {
            let mut data = arena::take_i64(if chunks.len() == 1 { 0 } else { n });
            for c in chunks {
                match c {
                    OutBuf::I64(mut v) => {
                        if data.is_empty() && data.capacity() == 0 {
                            data = v;
                        } else {
                            data.append(&mut v);
                            arena::give_i64(v);
                        }
                    }
                    _ => unreachable!("mixed chunk buffer types"),
                }
            }
            Value::Arr(Array::from_i64(vec![n], data))
        }
        OutBuf::Bool(_) => {
            let mut data = arena::take_bool(if chunks.len() == 1 { 0 } else { n });
            for c in chunks {
                match c {
                    OutBuf::Bool(mut v) => {
                        if data.is_empty() && data.capacity() == 0 {
                            data = v;
                        } else {
                            data.append(&mut v);
                            arena::give_bool(v);
                        }
                    }
                    _ => unreachable!("mixed chunk buffer types"),
                }
            }
            Value::Arr(Array::from_bool(vec![n], data))
        }
        OutBuf::Vals(_) => {
            let mut vals = Vec::with_capacity(n);
            for c in chunks {
                match c {
                    OutBuf::Vals(mut v) => vals.append(&mut v),
                    _ => unreachable!("mixed chunk buffer types"),
                }
            }
            Value::Arr(Array::stack(&vals))
        }
        OutBuf::Acc(_) => unreachable!("handled above"),
    }
}

/// Clone SOAC argument values and capture values out of the frame.
fn gather(regs: &[Value], rs: &[Reg]) -> Vec<Value> {
    rs.iter().map(|r| regs[*r as usize].clone()).collect()
}

/// Offer a `map` dispatch to the active accelerator. `None` means the VM
/// path must run it (and a fallback was counted iff a tier is active).
fn try_accel_map(
    ctx: &ExecCtx,
    kernel: usize,
    args: &[Reg],
    captures: &[Reg],
    regs: &[Value],
) -> Option<Vec<Value>> {
    let t = ctx.tier?;
    let argvals = gather(regs, args);
    let caps = gather(regs, captures);
    match t.accel.map(ctx.cfg, kernel, &argvals, &caps) {
        Some(outs) => {
            t.hit();
            Some(outs)
        }
        None => {
            t.fallback();
            None
        }
    }
}

fn try_accel_reduce(
    ctx: &ExecCtx,
    kernel: usize,
    neutral: &[Opnd],
    args: &[Reg],
    captures: &[Reg],
    regs: &[Value],
) -> Option<Vec<Value>> {
    let t = ctx.tier?;
    let ne: Vec<Value> = neutral.iter().map(|o| read(regs, o)).collect();
    let argvals = gather(regs, args);
    let caps = gather(regs, captures);
    match t.accel.reduce(ctx.cfg, kernel, &ne, &argvals, &caps) {
        Some(outs) => {
            t.hit();
            Some(outs)
        }
        None => {
            t.fallback();
            None
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn try_accel_redomap(
    ctx: &ExecCtx,
    red_kernel: usize,
    map_kernel: usize,
    neutral: &[Opnd],
    args: &[Reg],
    red_captures: &[Reg],
    map_captures: &[Reg],
    regs: &[Value],
) -> Option<Vec<Value>> {
    let t = ctx.tier?;
    let ne: Vec<Value> = neutral.iter().map(|o| read(regs, o)).collect();
    let argvals = gather(regs, args);
    let rcaps = gather(regs, red_captures);
    let mcaps = gather(regs, map_captures);
    match t.accel.redomap(
        ctx.cfg, red_kernel, map_kernel, &ne, &argvals, &rcaps, &mcaps,
    ) {
        Some(outs) => {
            t.hit();
            Some(outs)
        }
        None => {
            t.fallback();
            None
        }
    }
}

fn try_accel_scan(
    ctx: &ExecCtx,
    kernel: usize,
    neutral: &[Opnd],
    args: &[Reg],
    captures: &[Reg],
    regs: &[Value],
) -> Option<Vec<Value>> {
    let t = ctx.tier?;
    let ne: Vec<Value> = neutral.iter().map(|o| read(regs, o)).collect();
    let argvals = gather(regs, args);
    let caps = gather(regs, captures);
    match t.accel.scan(ctx.cfg, kernel, &ne, &argvals, &caps) {
        Some(outs) => {
            t.hit();
            Some(outs)
        }
        None => {
            t.fallback();
            None
        }
    }
}

/// Write one element's parameters into a kernel frame: arrays are indexed at
/// `i`, accumulators pass their (shared) handle through.
fn write_elem_params(frame: &mut [Value], argvals: &[Value], i: usize) {
    for (p, v) in argvals.iter().enumerate() {
        frame[p] = match v {
            Value::Arr(a) => a.index(&[i]),
            Value::Acc(acc) => Value::Acc(acc.clone()),
            other => panic!("map over non-array {other:?}"),
        };
    }
}

fn exec_map(
    ctx: &ExecCtx,
    kernel: usize,
    args: &[Reg],
    captures: &[Reg],
    regs: &[Value],
) -> Vec<Value> {
    let k = &ctx.prog.kernels[kernel];
    let argvals = gather(regs, args);
    let caps = gather(regs, captures);
    let n = argvals
        .iter()
        .find_map(|v| match v {
            Value::Arr(a) => Some(a.len()),
            _ => None,
        })
        .expect("map needs at least one array argument");
    let chunk_bufs: Vec<Vec<OutBuf>> = run_chunked(ctx.cfg, n, &|lo, hi| {
        let mut frame = k.new_frame(&caps);
        let mut bufs: Vec<OutBuf> = k.ret.iter().map(|t| OutBuf::for_type(t, hi - lo)).collect();
        for i in lo..hi {
            write_elem_params(&mut frame, &argvals, i);
            exec(ctx, &k.code, &mut frame);
            for (j, o) in k.code.ret.iter().enumerate() {
                bufs[j].push(read(&frame, o));
            }
        }
        bufs
    });
    collect_columns(k, n, chunk_bufs)
}

/// Transpose chunk-major buffers into one final value per kernel output.
fn collect_columns(k: &Kernel, n: usize, chunk_bufs: Vec<Vec<OutBuf>>) -> Vec<Value> {
    let width = k.ret.len();
    let mut columns: Vec<Vec<OutBuf>> = (0..width).map(|_| Vec::new()).collect();
    for chunk in chunk_bufs {
        for (j, buf) in chunk.into_iter().enumerate() {
            columns[j].push(buf);
        }
    }
    k.ret
        .iter()
        .zip(columns)
        .map(|(ty, chunks)| {
            if chunks.is_empty() {
                // n == 0: no chunks ran at all.
                assemble_output(ty, 0, vec![OutBuf::for_type(ty, 0)])
            } else {
                assemble_output(ty, n, chunks)
            }
        })
        .collect()
}

/// Fold `args[lo..hi]` through the kernel starting from the neutral values.
fn fold_range(
    ctx: &ExecCtx,
    k: &Kernel,
    frame: &mut [Value],
    ne: &[Value],
    argarrs: &[Array],
    lo: usize,
    hi: usize,
) -> Vec<Value> {
    let width = ne.len();
    let mut acc: Vec<Value> = ne.to_vec();
    for i in lo..hi {
        for (j, a) in acc.drain(..).enumerate() {
            frame[j] = a;
        }
        for (j, arr) in argarrs.iter().enumerate() {
            frame[width + j] = arr.index(&[i]);
        }
        exec(ctx, &k.code, frame);
        acc = read_ret(&k.code, frame);
    }
    acc
}

fn exec_reduce(
    ctx: &ExecCtx,
    kernel: usize,
    neutral: &[Opnd],
    args: &[Reg],
    captures: &[Reg],
    regs: &[Value],
) -> Vec<Value> {
    let k = &ctx.prog.kernels[kernel];
    let caps = gather(regs, captures);
    let argarrs: Vec<Array> = args
        .iter()
        .map(|r| regs[*r as usize].as_arr().clone())
        .collect();
    let ne: Vec<Value> = neutral.iter().map(|o| read(regs, o)).collect();
    let n = argarrs[0].len();
    let partials: Vec<Vec<Value>> = run_chunked(ctx.cfg, n, &|lo, hi| {
        let mut frame = k.new_frame(&caps);
        fold_range(ctx, k, &mut frame, &ne, &argarrs, lo, hi)
    });
    if partials.len() == 1 {
        return partials.into_iter().next().unwrap();
    }
    // Combine per-chunk partials with the same (associative) operator.
    let width = ne.len();
    let mut frame = k.new_frame(&caps);
    let mut acc = ne;
    for p in partials {
        for (j, a) in acc.drain(..).enumerate() {
            frame[j] = a;
        }
        for (j, v) in p.into_iter().enumerate() {
            frame[width + j] = v;
        }
        exec(ctx, &k.code, &mut frame);
        acc = read_ret(&k.code, &frame);
    }
    acc
}

/// Fused `reduce ∘ map`: the map kernel runs per element, its results are
/// folded with the reduce kernel. Chunking and the partial-combine both
/// mirror [`exec_reduce`] exactly, so a fused program stays bitwise
/// identical to the `reduce (map ...)` it replaced in every configuration.
#[allow(clippy::too_many_arguments)]
fn exec_redomap(
    ctx: &ExecCtx,
    red_kernel: usize,
    map_kernel: usize,
    neutral: &[Opnd],
    args: &[Reg],
    red_captures: &[Reg],
    map_captures: &[Reg],
    regs: &[Value],
) -> Vec<Value> {
    let rk = &ctx.prog.kernels[red_kernel];
    let mk = &ctx.prog.kernels[map_kernel];
    let rcaps = gather(regs, red_captures);
    let mcaps = gather(regs, map_captures);
    let argvals = gather(regs, args);
    let ne: Vec<Value> = neutral.iter().map(|o| read(regs, o)).collect();
    let n = argvals
        .iter()
        .find_map(|v| match v {
            Value::Arr(a) => Some(a.len()),
            _ => None,
        })
        .expect("redomap needs at least one array argument");
    let width = ne.len();
    let partials: Vec<Vec<Value>> = run_chunked(ctx.cfg, n, &|lo, hi| {
        let mut mframe = mk.new_frame(&mcaps);
        let mut rframe = rk.new_frame(&rcaps);
        let mut acc = ne.clone();
        for i in lo..hi {
            write_elem_params(&mut mframe, &argvals, i);
            exec(ctx, &mk.code, &mut mframe);
            let vals = read_ret(&mk.code, &mframe);
            for (j, a) in acc.drain(..).enumerate() {
                rframe[j] = a;
            }
            for (j, v) in vals.into_iter().enumerate() {
                rframe[width + j] = v;
            }
            exec(ctx, &rk.code, &mut rframe);
            acc = read_ret(&rk.code, &rframe);
        }
        acc
    });
    if partials.len() == 1 {
        return partials.into_iter().next().unwrap();
    }
    let mut frame = rk.new_frame(&rcaps);
    let mut acc = ne;
    for p in partials {
        for (j, a) in acc.drain(..).enumerate() {
            frame[j] = a;
        }
        for (j, v) in p.into_iter().enumerate() {
            frame[width + j] = v;
        }
        exec(ctx, &rk.code, &mut frame);
        acc = read_ret(&rk.code, &frame);
    }
    acc
}

fn exec_scan(
    ctx: &ExecCtx,
    kernel: usize,
    neutral: &[Opnd],
    args: &[Reg],
    captures: &[Reg],
    regs: &[Value],
) -> Vec<Value> {
    let k = &ctx.prog.kernels[kernel];
    let caps = gather(regs, captures);
    let argarrs: Vec<Array> = args
        .iter()
        .map(|r| regs[*r as usize].as_arr().clone())
        .collect();
    let mut acc: Vec<Value> = neutral.iter().map(|o| read(regs, o)).collect();
    let width = acc.len();
    let n = argarrs[0].len();
    let mut frame = k.new_frame(&caps);
    let mut bufs: Vec<OutBuf> = k.ret.iter().map(|t| OutBuf::for_type(t, n)).collect();
    for i in 0..n {
        for (j, a) in acc.drain(..).enumerate() {
            frame[j] = a;
        }
        for (j, arr) in argarrs.iter().enumerate() {
            frame[width + j] = arr.index(&[i]);
        }
        exec(ctx, &k.code, &mut frame);
        acc = read_ret(&k.code, &frame);
        for (j, v) in acc.iter().enumerate() {
            bufs[j].push(v.clone());
        }
    }
    if n == 0 {
        // Empty scans are empty rank-1 arrays of the result element type
        // (matching the interpreter and the n > 0 result type).
        return k
            .ret
            .iter()
            .map(|ty| Value::Arr(Array::zeros(ty.elem(), vec![0])))
            .collect();
    }
    k.ret
        .iter()
        .zip(bufs)
        .map(|(ty, buf)| assemble_output(ty, n, vec![buf]))
        .collect()
}

fn exec_hist(
    ctx: &ExecCtx,
    op: ReduceOp,
    num_bins: &Opnd,
    inds: Reg,
    vals: Reg,
    regs: &[Value],
) -> Value {
    let m = read(regs, num_bins).as_i64().max(0) as usize;
    let inds = regs[inds as usize].as_arr().clone();
    let vals = regs[vals as usize].as_arr().clone();
    let stride = vals.stride();
    let mut shape = vals.shape.clone();
    shape[0] = m;
    let n = inds.len().min(vals.len());
    let idata = inds.i64s();
    let vdata = vals.f64s();
    if op == ReduceOp::Add && crate::pool::should_parallelize(ctx.cfg, n) {
        // Parallel histogram with atomic adds, as generated for GPUs.
        let acc = Accum::zeros(shape);
        run_chunked(ctx.cfg, n, &|lo, hi| {
            for kk in lo..hi {
                let bin = idata[kk];
                if bin >= 0 && (bin as usize) < m {
                    acc.add_slice(
                        bin as usize * stride,
                        &vdata[kk * stride..(kk + 1) * stride],
                    );
                }
            }
        });
        return Value::Arr(acc.to_array());
    }
    let total: usize = shape.iter().product();
    let mut out = arena::take_f64(total);
    out.resize(total, op.neutral_f64());
    for kk in 0..n {
        let bin = idata[kk];
        if bin >= 0 && (bin as usize) < m {
            let off = bin as usize * stride;
            for j in 0..stride {
                out[off + j] = op.apply_f64(out[off + j], vdata[kk * stride + j]);
            }
        }
    }
    Value::Arr(Array::from_f64(shape, out))
}

fn exec_withacc(
    ctx: &ExecCtx,
    kernel: usize,
    arrs: &[Reg],
    captures: &[Reg],
    regs: &[Value],
) -> Vec<Value> {
    let k = &ctx.prog.kernels[kernel];
    let caps = gather(regs, captures);
    let accs: Vec<Accum> = arrs
        .iter()
        .map(|r| Accum::from_array(regs[*r as usize].as_arr()))
        .collect();
    let mut frame = k.new_frame(&caps);
    for (j, a) in accs.iter().enumerate() {
        frame[j] = Value::Acc(a.clone());
    }
    exec(ctx, &k.code, &mut frame);
    let results = read_ret(&k.code, &frame);
    let mut out: Vec<Value> = accs.iter().map(|a| Value::Arr(a.to_array())).collect();
    out.extend(results.into_iter().skip(arrs.len()));
    out
}
