//! The compiled-program cache.
//!
//! `vjp`/`jvp` are IR-to-IR transformations: callers typically transform an
//! objective once and then run the derivative thousands of times (training
//! loops, Newton iterations, benchmark reps). The cache makes the backend
//! match that usage: programs are keyed by a structural fingerprint of the
//! function, so repeated `Vm::run` calls with the same (or a re-built but
//! identical) `Fun` compile exactly once. Colliding fingerprints fall back
//! to a full structural comparison, so a hash collision can cost a
//! recompile but never run the wrong program.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex, OnceLock};

use fir::ir::{Atom, Body, Const, Exp, Fun, Lambda, Param, Stm};

use crate::bytecode::Program;
use crate::compile::compile;
use crate::tier::TierSlot;

/// All distinct programs sharing one primary fingerprint, disambiguated by
/// an independent secondary fingerprint. Identity needs 128 matching hash
/// bits, so collisions are out of reach; hashing (over `f64::to_bits`) also
/// identifies NaN constants correctly, which derived `PartialEq` on `Fun`
/// would not (a NaN-containing function would never equal itself and would
/// recompile on every run). Each entry carries the program's [`TierSlot`]
/// (run counter + jit promotion state), so hotness accumulates across
/// identical rebuilds of a function just like compilation does.
type FingerprintBucket = Vec<(u64, Arc<Program>, Arc<TierSlot>)>;

/// Default capacity bound: enough for every workload, AD transform and
/// benchmark in this repository at once, small enough that a process
/// generating unbounded fresh IR (e.g. a fuzzer) cannot leak memory
/// through the cache.
const DEFAULT_CAPACITY: usize = 512;

/// A cache of compiled programs, bounded by a program count: when an
/// insertion would exceed the capacity the cache is flushed wholesale
/// (compilation is milliseconds; an LRU would be complexity without a
/// workload that needs it).
#[derive(Debug)]
pub struct ProgramCache {
    map: Mutex<HashMap<u64, FingerprintBucket>>,
    capacity: usize,
}

impl Default for ProgramCache {
    fn default() -> ProgramCache {
        ProgramCache::new()
    }
}

impl ProgramCache {
    /// An empty cache with the default capacity bound.
    pub fn new() -> ProgramCache {
        ProgramCache::with_capacity(DEFAULT_CAPACITY)
    }

    /// An empty cache that holds at most `capacity` programs.
    pub fn with_capacity(capacity: usize) -> ProgramCache {
        ProgramCache {
            map: Mutex::new(HashMap::new()),
            capacity: capacity.max(1),
        }
    }

    /// The shared process-wide cache.
    pub fn global() -> &'static ProgramCache {
        static GLOBAL: OnceLock<ProgramCache> = OnceLock::new();
        GLOBAL.get_or_init(ProgramCache::new)
    }

    /// Number of cached programs.
    pub fn len(&self) -> usize {
        self.map.lock().unwrap().values().map(|v| v.len()).sum()
    }

    /// True when nothing has been compiled yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Fetch the compiled program for `fun`, compiling on first sight.
    pub fn get_or_compile(&self, fun: &Fun) -> Arc<Program> {
        self.get_or_compile_entry(fun).0
    }

    /// Like [`get_or_compile`](ProgramCache::get_or_compile), but also
    /// returns the program's [`TierSlot`] so the caller can count this
    /// execution toward jit promotion.
    pub fn get_or_compile_entry(&self, fun: &Fun) -> (Arc<Program>, Arc<TierSlot>) {
        let key = fingerprint_salted(fun, 0);
        let key2 = fingerprint_salted(fun, 1);
        {
            let map = self.map.lock().unwrap();
            if let Some(entries) = map.get(&key) {
                for (fp2, prog, slot) in entries {
                    if *fp2 == key2 {
                        return (Arc::clone(prog), Arc::clone(slot));
                    }
                }
            }
        }
        // Compile outside the lock: compilation can be slow and other
        // threads may want unrelated programs meanwhile.
        let prog = Arc::new(compile(fun));
        let slot = Arc::new(TierSlot::default());
        let mut map = self.map.lock().unwrap();
        let entries = map.entry(key).or_default();
        // Re-check: another thread may have compiled the same function.
        for (fp2, cached, cached_slot) in entries.iter() {
            if *fp2 == key2 {
                return (Arc::clone(cached), Arc::clone(cached_slot));
            }
        }
        entries.push((key2, Arc::clone(&prog), Arc::clone(&slot)));
        let total: usize = map.values().map(|v| v.len()).sum();
        if total > self.capacity {
            // Bound the cache: flush everything but the entry just
            // inserted. Outstanding Arc<Program> handles stay valid.
            map.retain(|_, v| {
                v.retain(|(_, p, _)| Arc::ptr_eq(p, &prog));
                !v.is_empty()
            });
        }
        (prog, slot)
    }

    /// Insert an externally compiled program (e.g. decoded from a
    /// persistent on-disk cache) under `fun`'s fingerprint. The program
    /// gets a **fresh** [`TierSlot`]: adopted programs start cold at run
    /// count 0 and re-promote through the jit tier like freshly compiled
    /// ones — promotion state is never persisted. On a race with a
    /// concurrent compile or adopt of the same function, the first entry
    /// wins and is returned (with its accumulated hotness).
    pub fn adopt(&self, fun: &Fun, prog: Program) -> (Arc<Program>, Arc<TierSlot>) {
        let key = fingerprint_salted(fun, 0);
        let key2 = fingerprint_salted(fun, 1);
        let prog = Arc::new(prog);
        let slot = Arc::new(TierSlot::default());
        let mut map = self.map.lock().unwrap();
        let entries = map.entry(key).or_default();
        for (fp2, cached, cached_slot) in entries.iter() {
            if *fp2 == key2 {
                return (Arc::clone(cached), Arc::clone(cached_slot));
            }
        }
        entries.push((key2, Arc::clone(&prog), Arc::clone(&slot)));
        let total: usize = map.values().map(|v| v.len()).sum();
        if total > self.capacity {
            map.retain(|_, v| {
                v.retain(|(_, p, _)| Arc::ptr_eq(p, &prog));
                !v.is_empty()
            });
        }
        (prog, slot)
    }
}

/// A structural fingerprint of a function: stable across identically
/// re-built IR (same names, constants, structure), independent of heap
/// addresses.
pub fn fingerprint(fun: &Fun) -> u64 {
    fingerprint_salted(fun, 0)
}

/// The 128-bit structural identity used by the caches: two independent
/// salted fingerprints. Exposed so higher layers (the `fir-api` engine's
/// compiled-function cache) key on the same identity as this crate.
pub fn fingerprint_pair(fun: &Fun) -> (u64, u64) {
    (fingerprint_salted(fun, 0), fingerprint_salted(fun, 1))
}

/// Fingerprint with a salt: different salts give (effectively) independent
/// hash functions, which the cache combines into a 128-bit identity.
fn fingerprint_salted(fun: &Fun, salt: u64) -> u64 {
    let mut h = DefaultHasher::new();
    salt.hash(&mut h);
    fun.name.hash(&mut h);
    hash_params(&fun.params, &mut h);
    hash_body(&fun.body, &mut h);
    fun.ret.len().hash(&mut h);
    for t in &fun.ret {
        t.hash(&mut h);
    }
    h.finish()
}

fn hash_params(ps: &[Param], h: &mut DefaultHasher) {
    ps.len().hash(h);
    for p in ps {
        p.var.hash(h);
        p.ty.hash(h);
    }
}

fn hash_atom(a: &Atom, h: &mut DefaultHasher) {
    match a {
        Atom::Var(v) => {
            0u8.hash(h);
            v.hash(h);
        }
        Atom::Const(Const::F64(x)) => {
            1u8.hash(h);
            x.to_bits().hash(h);
        }
        Atom::Const(Const::I64(x)) => {
            2u8.hash(h);
            x.hash(h);
        }
        Atom::Const(Const::Bool(x)) => {
            3u8.hash(h);
            x.hash(h);
        }
    }
}

fn hash_lambda(l: &Lambda, h: &mut DefaultHasher) {
    hash_params(&l.params, h);
    hash_body(&l.body, h);
    for t in &l.ret {
        t.hash(h);
    }
}

fn hash_body(b: &Body, h: &mut DefaultHasher) {
    b.stms.len().hash(h);
    for Stm { pat, exp } in &b.stms {
        hash_params(pat, h);
        hash_exp(exp, h);
    }
    b.result.len().hash(h);
    for a in &b.result {
        hash_atom(a, h);
    }
}

fn hash_exp(e: &Exp, h: &mut DefaultHasher) {
    e.kind().hash(h);
    match e {
        Exp::Atom(a) | Exp::Iota(a) => hash_atom(a, h),
        Exp::UnOp(op, a) => {
            op.hash(h);
            hash_atom(a, h);
        }
        Exp::BinOp(op, a, b) => {
            op.hash(h);
            hash_atom(a, h);
            hash_atom(b, h);
        }
        Exp::Select { cond, t, f } => {
            hash_atom(cond, h);
            hash_atom(t, h);
            hash_atom(f, h);
        }
        Exp::Index { arr, idx } => {
            arr.hash(h);
            for a in idx {
                hash_atom(a, h);
            }
        }
        Exp::Update { arr, idx, val } => {
            arr.hash(h);
            for a in idx {
                hash_atom(a, h);
            }
            hash_atom(val, h);
        }
        Exp::Len(v) | Exp::Reverse(v) | Exp::Copy(v) => v.hash(h),
        Exp::Replicate { n, val } => {
            hash_atom(n, h);
            hash_atom(val, h);
        }
        Exp::If {
            cond,
            then_br,
            else_br,
        } => {
            hash_atom(cond, h);
            hash_body(then_br, h);
            hash_body(else_br, h);
        }
        Exp::Loop {
            params,
            index,
            count,
            body,
        } => {
            params.len().hash(h);
            for (p, init) in params {
                p.var.hash(h);
                p.ty.hash(h);
                hash_atom(init, h);
            }
            index.hash(h);
            hash_atom(count, h);
            hash_body(body, h);
        }
        Exp::Map { lam, args } => {
            hash_lambda(lam, h);
            args.hash(h);
        }
        Exp::Reduce { lam, neutral, args } | Exp::Scan { lam, neutral, args } => {
            hash_lambda(lam, h);
            for a in neutral {
                hash_atom(a, h);
            }
            args.hash(h);
        }
        Exp::Redomap {
            red_lam,
            map_lam,
            neutral,
            args,
        } => {
            hash_lambda(red_lam, h);
            hash_lambda(map_lam, h);
            for a in neutral {
                hash_atom(a, h);
            }
            args.hash(h);
        }
        Exp::Hist {
            op,
            num_bins,
            inds,
            vals,
        } => {
            op.hash(h);
            hash_atom(num_bins, h);
            inds.hash(h);
            vals.hash(h);
        }
        Exp::Scatter { dest, inds, vals } => {
            dest.hash(h);
            inds.hash(h);
            vals.hash(h);
        }
        Exp::WithAcc { arrs, lam } => {
            arrs.hash(h);
            hash_lambda(lam, h);
        }
        Exp::UpdAcc { acc, idx, val } => {
            acc.hash(h);
            for a in idx {
                hash_atom(a, h);
            }
            hash_atom(val, h);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fir::builder::Builder;
    use fir::types::Type;

    fn square_fun() -> Fun {
        let mut b = Builder::new();
        b.build_fun("sq", &[Type::F64], |b, ps| {
            vec![b.fmul(ps[0].into(), ps[0].into())]
        })
    }

    #[test]
    fn identical_rebuilds_share_one_compilation() {
        let cache = ProgramCache::new();
        let p1 = cache.get_or_compile(&square_fun());
        let p2 = cache.get_or_compile(&square_fun());
        assert!(Arc::ptr_eq(&p1, &p2));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn different_functions_get_different_programs() {
        let cache = ProgramCache::new();
        let p1 = cache.get_or_compile(&square_fun());
        let mut b = Builder::new();
        let cube = b.build_fun("cube", &[Type::F64], |b, ps| {
            let sq = b.fmul(ps[0].into(), ps[0].into());
            vec![b.fmul(sq, ps[0].into())]
        });
        let p2 = cache.get_or_compile(&cube);
        assert!(!Arc::ptr_eq(&p1, &p2));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn capacity_bound_flushes_but_keeps_the_newest_program() {
        let cache = ProgramCache::with_capacity(3);
        let mut funs = Vec::new();
        for i in 0..5 {
            let mut b = Builder::new();
            let f = b.build_fun(&format!("f{i}"), &[Type::F64], |b, ps| {
                vec![b.fadd(ps[0].into(), Atom::f64(i as f64))]
            });
            funs.push(f);
        }
        for f in &funs {
            cache.get_or_compile(f);
        }
        // Bounded: never more than capacity + the flush survivor.
        assert!(cache.len() <= 3, "cache holds {} programs", cache.len());
        // The most recently inserted program survived the flush.
        let last = cache.get_or_compile(&funs[4]);
        assert_eq!(last.name, "f4");
    }

    #[test]
    fn fingerprints_are_structural() {
        assert_eq!(fingerprint(&square_fun()), fingerprint(&square_fun()));
        let mut b = Builder::new();
        let other = b.build_fun("sq", &[Type::F64], |b, ps| {
            vec![b.fadd(ps[0].into(), ps[0].into())]
        });
        assert_ne!(fingerprint(&square_fun()), fingerprint(&other));
    }
}
