//! `fir-opt` — the optimization pass suite for the `fir` IR.
//!
//! Reverse-mode AD by redundant execution deliberately emits code that
//! re-executes enclosing scopes; the paper's performance story rests on the
//! compiler then shrinking that code back down. This crate provides the
//! repertoire, each pass as a pure `Fun -> Fun` rewrite with a `*_counted`
//! variant reporting how many rewrites fired (see [`stats`]):
//!
//! * [`simplify()`] — the classic trio: [`dead_code_elimination`] (erases the
//!   redundant forward sweeps of perfect nests), [`constant_fold`]
//!   (collapses the 0/1 identities adjoint seeds produce), and
//!   [`copy_propagation`] (removes the aliases transformations introduce),
//!   iterated to a fixed point.
//! * [`fuse_soacs`] ([`fusion`]) — producer–consumer fusion: `map ∘ map`
//!   composes, and `reduce ∘ map` becomes the fused
//!   [`fir::ir::Exp::Redomap`], never materializing intermediates.
//! * [`cse()`] ([module](mod@cse)) — common-subexpression elimination keyed on
//!   the binder-normalized structural hash [`fir::hash::exp_key`], merging
//!   whole duplicated SOACs, not just scalar ops.
//! * [`hoist_invariants`] ([`hoist`]) — loop/map-invariant code motion out
//!   of SOAC lambdas and sequential loops.
//! * [`memplan()`] ([`mod@memplan`]) — memory planning: lifetime-based
//!   elimination of `copy`s whose source is dead afterwards (the in-place
//!   lowering the CoW runtime then exploits without a deep copy), plus a
//!   per-program [`BufferPlan`] sizing the executor's per-invocation
//!   arena.
//!
//! Every pass preserves results **bitwise** on every backend and in every
//! execution configuration: rewrites never reassociate floating-point
//! operations, constants are compared by bit pattern, value-changing
//! "identities" like `x * 0.0 -> 0.0` (wrong for `inf`/`NaN`) are not
//! applied, zero identities fold only for the operand signs that are
//! exact at the bit level (`x + (-0.0)`, `x - (+0.0)`), and `redomap`
//! chunks exactly like the `reduce` it replaces.

pub mod cse;
pub mod fusion;
pub mod hoist;
pub mod memplan;
pub mod simplify;
pub mod stats;

pub use cse::{cse, cse_counted};
pub use fusion::{fuse_soacs, fuse_soacs_counted};
pub use hoist::{hoist_invariants, hoist_invariants_counted};
pub use memplan::{memplan, memplan_counted, plan_buffers, BufferPlan};
pub use simplify::{
    constant_fold, constant_fold_counted, copy_propagation, copy_propagation_counted,
    dead_code_elimination, dead_code_elimination_counted, simplify,
};
pub use stats::{run_pass, PassRun};

use fir::ir::{Body, Exp, Fun, Lambda};

/// Number of statements in a function, counting nested bodies — used by the
/// tests and by the ablation bench to quantify how much of the redundant
/// forward sweep is removed.
pub fn count_stms(fun: &Fun) -> usize {
    fn body(b: &Body) -> usize {
        b.stms.iter().map(|s| 1 + exp(&s.exp)).sum()
    }
    fn lambda(l: &Lambda) -> usize {
        body(&l.body)
    }
    fn exp(e: &Exp) -> usize {
        match e {
            Exp::If {
                then_br, else_br, ..
            } => body(then_br) + body(else_br),
            Exp::Loop { body: b, .. } => body(b),
            Exp::Map { lam, .. }
            | Exp::Reduce { lam, .. }
            | Exp::Scan { lam, .. }
            | Exp::WithAcc { lam, .. } => lambda(lam),
            Exp::Redomap {
                red_lam, map_lam, ..
            } => lambda(red_lam) + lambda(map_lam),
            _ => 0,
        }
    }
    body(&fun.body)
}
