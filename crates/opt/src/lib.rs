//! `fir-opt` — simplification passes for the `fir` IR.
//!
//! Reverse-mode AD by redundant execution deliberately emits code that
//! re-executes enclosing scopes; the paper's claim (§4.1) is that for
//! perfectly-nested scopes those re-executed bindings are dead and are
//! removed by ordinary compiler simplification. This crate provides that
//! simplification repertoire:
//!
//! * [`dead_code_elimination`] — removes bindings whose results are unused
//!   (this is what erases the redundant forward sweeps of perfect nests),
//! * [`constant_fold`] — folds scalar operations on constants and collapses
//!   additions/multiplications with 0/1 (the adjoint seeds produce many),
//! * [`copy_propagation`] — replaces aliases introduced by the
//!   transformation (`let y = x`) with their sources,
//! * [`simplify`] — the fixed-point combination of the passes above.

use std::collections::{BTreeSet, HashMap};

use fir::free_vars::FreeVars;
use fir::ir::{Atom, BinOp, Body, Const, Exp, Fun, Lambda, Stm, UnOp, VarId};

/// Apply the full simplification pipeline until a fixed point (bounded by a
/// small iteration limit).
pub fn simplify(fun: &Fun) -> Fun {
    let mut cur = fun.clone();
    for _ in 0..8 {
        let folded = constant_fold(&copy_propagation(&cur));
        let next = dead_code_elimination(&folded);
        if next == cur {
            return next;
        }
        cur = next;
    }
    cur
}

/// Number of statements in a function, counting nested bodies — used by the
/// tests and by the ablation bench to quantify how much of the redundant
/// forward sweep is removed.
pub fn count_stms(fun: &Fun) -> usize {
    fn body(b: &Body) -> usize {
        b.stms.iter().map(|s| 1 + exp(&s.exp)).sum()
    }
    fn lambda(l: &Lambda) -> usize {
        body(&l.body)
    }
    fn exp(e: &Exp) -> usize {
        match e {
            Exp::If {
                then_br, else_br, ..
            } => body(then_br) + body(else_br),
            Exp::Loop { body: b, .. } => body(b),
            Exp::Map { lam, .. }
            | Exp::Reduce { lam, .. }
            | Exp::Scan { lam, .. }
            | Exp::WithAcc { lam, .. } => lambda(lam),
            _ => 0,
        }
    }
    body(&fun.body)
}

// ---------------------------------------------------------------------
// Dead-code elimination
// ---------------------------------------------------------------------

/// Remove bindings whose variables are never used. Statements that merely
/// open nested scopes are themselves removed when all their results are
/// dead; side-effect-free by construction (the IR is pure).
pub fn dead_code_elimination(fun: &Fun) -> Fun {
    let body = dce_body(&fun.body);
    Fun {
        name: fun.name.clone(),
        params: fun.params.clone(),
        body,
        ret: fun.ret.clone(),
    }
}

fn dce_body(body: &Body) -> Body {
    // Process statements bottom-up, keeping those with at least one live
    // binding.
    let mut live: BTreeSet<VarId> = BTreeSet::new();
    for a in &body.result {
        if let Atom::Var(v) = a {
            live.insert(*v);
        }
    }
    let mut kept: Vec<Stm> = Vec::new();
    for stm in body.stms.iter().rev() {
        let is_live = stm.pat.iter().any(|p| live.contains(&p.var));
        if !is_live {
            continue;
        }
        let exp = dce_exp(&stm.exp);
        for v in exp.free_vars() {
            live.insert(v);
        }
        kept.push(Stm::new(stm.pat.clone(), exp));
    }
    kept.reverse();
    Body::new(kept, body.result.clone())
}

fn dce_lambda(lam: &Lambda) -> Lambda {
    Lambda {
        params: lam.params.clone(),
        body: dce_body(&lam.body),
        ret: lam.ret.clone(),
    }
}

fn dce_exp(e: &Exp) -> Exp {
    match e {
        Exp::If {
            cond,
            then_br,
            else_br,
        } => Exp::If {
            cond: *cond,
            then_br: dce_body(then_br),
            else_br: dce_body(else_br),
        },
        Exp::Loop {
            params,
            index,
            count,
            body,
        } => Exp::Loop {
            params: params.clone(),
            index: *index,
            count: *count,
            body: dce_body(body),
        },
        Exp::Map { lam, args } => Exp::Map {
            lam: dce_lambda(lam),
            args: args.clone(),
        },
        Exp::Reduce { lam, neutral, args } => Exp::Reduce {
            lam: dce_lambda(lam),
            neutral: neutral.clone(),
            args: args.clone(),
        },
        Exp::Scan { lam, neutral, args } => Exp::Scan {
            lam: dce_lambda(lam),
            neutral: neutral.clone(),
            args: args.clone(),
        },
        Exp::WithAcc { arrs, lam } => Exp::WithAcc {
            arrs: arrs.clone(),
            lam: dce_lambda(lam),
        },
        other => other.clone(),
    }
}

// ---------------------------------------------------------------------
// Copy propagation
// ---------------------------------------------------------------------

/// Replace uses of variables bound by `let y = x` with `x` directly.
pub fn copy_propagation(fun: &Fun) -> Fun {
    let mut subst: HashMap<VarId, Atom> = HashMap::new();
    let body = cp_body(&fun.body, &mut subst);
    Fun {
        name: fun.name.clone(),
        params: fun.params.clone(),
        body,
        ret: fun.ret.clone(),
    }
}

fn cp_atom(a: &Atom, subst: &HashMap<VarId, Atom>) -> Atom {
    match a {
        Atom::Var(v) => subst.get(v).copied().unwrap_or(*a),
        c => *c,
    }
}

fn cp_body(body: &Body, subst: &mut HashMap<VarId, Atom>) -> Body {
    let mut stms = Vec::new();
    for stm in &body.stms {
        let exp = cp_exp(&stm.exp, subst);
        if let Exp::Atom(a) = &exp {
            if stm.pat.len() == 1 {
                subst.insert(stm.pat[0].var, *a);
                continue;
            }
        }
        stms.push(Stm::new(stm.pat.clone(), exp));
    }
    let result = body.result.iter().map(|a| cp_atom(a, subst)).collect();
    Body::new(stms, result)
}

fn cp_var(v: VarId, subst: &HashMap<VarId, Atom>) -> VarId {
    match subst.get(&v) {
        Some(Atom::Var(w)) => *w,
        _ => v,
    }
}

fn cp_lambda(lam: &Lambda, subst: &mut HashMap<VarId, Atom>) -> Lambda {
    Lambda {
        params: lam.params.clone(),
        body: cp_body(&lam.body, subst),
        ret: lam.ret.clone(),
    }
}

fn cp_exp(e: &Exp, subst: &mut HashMap<VarId, Atom>) -> Exp {
    let at = |a: &Atom, s: &HashMap<VarId, Atom>| cp_atom(a, s);
    match e {
        Exp::Atom(a) => Exp::Atom(at(a, subst)),
        Exp::UnOp(op, a) => Exp::UnOp(*op, at(a, subst)),
        Exp::BinOp(op, a, b) => Exp::BinOp(*op, at(a, subst), at(b, subst)),
        Exp::Select { cond, t, f } => Exp::Select {
            cond: at(cond, subst),
            t: at(t, subst),
            f: at(f, subst),
        },
        Exp::Index { arr, idx } => Exp::Index {
            arr: cp_var(*arr, subst),
            idx: idx.iter().map(|a| at(a, subst)).collect(),
        },
        Exp::Update { arr, idx, val } => Exp::Update {
            arr: cp_var(*arr, subst),
            idx: idx.iter().map(|a| at(a, subst)).collect(),
            val: at(val, subst),
        },
        Exp::Len(v) => Exp::Len(cp_var(*v, subst)),
        Exp::Iota(n) => Exp::Iota(at(n, subst)),
        Exp::Replicate { n, val } => Exp::Replicate {
            n: at(n, subst),
            val: at(val, subst),
        },
        Exp::Reverse(v) => Exp::Reverse(cp_var(*v, subst)),
        Exp::Copy(v) => Exp::Copy(cp_var(*v, subst)),
        Exp::If {
            cond,
            then_br,
            else_br,
        } => Exp::If {
            cond: at(cond, subst),
            then_br: cp_body(then_br, subst),
            else_br: cp_body(else_br, subst),
        },
        Exp::Loop {
            params,
            index,
            count,
            body,
        } => Exp::Loop {
            params: params
                .iter()
                .map(|(p, init)| (*p, at(init, subst)))
                .collect(),
            index: *index,
            count: at(count, subst),
            body: cp_body(body, subst),
        },
        Exp::Map { lam, args } => Exp::Map {
            lam: cp_lambda(lam, subst),
            args: args.iter().map(|v| cp_var(*v, subst)).collect(),
        },
        Exp::Reduce { lam, neutral, args } => Exp::Reduce {
            lam: cp_lambda(lam, subst),
            neutral: neutral.iter().map(|a| at(a, subst)).collect(),
            args: args.iter().map(|v| cp_var(*v, subst)).collect(),
        },
        Exp::Scan { lam, neutral, args } => Exp::Scan {
            lam: cp_lambda(lam, subst),
            neutral: neutral.iter().map(|a| at(a, subst)).collect(),
            args: args.iter().map(|v| cp_var(*v, subst)).collect(),
        },
        Exp::Hist {
            op,
            num_bins,
            inds,
            vals,
        } => Exp::Hist {
            op: *op,
            num_bins: at(num_bins, subst),
            inds: cp_var(*inds, subst),
            vals: cp_var(*vals, subst),
        },
        Exp::Scatter { dest, inds, vals } => Exp::Scatter {
            dest: cp_var(*dest, subst),
            inds: cp_var(*inds, subst),
            vals: cp_var(*vals, subst),
        },
        Exp::WithAcc { arrs, lam } => Exp::WithAcc {
            arrs: arrs.iter().map(|v| cp_var(*v, subst)).collect(),
            lam: cp_lambda(lam, subst),
        },
        Exp::UpdAcc { acc, idx, val } => Exp::UpdAcc {
            acc: cp_var(*acc, subst),
            idx: idx.iter().map(|a| at(a, subst)).collect(),
            val: at(val, subst),
        },
    }
}

// ---------------------------------------------------------------------
// Constant folding
// ---------------------------------------------------------------------

/// Fold scalar operations on constants and simplify additions with zero and
/// multiplications with zero/one (which the adjoint code produces in
/// abundance).
pub fn constant_fold(fun: &Fun) -> Fun {
    let body = cf_body(&fun.body);
    Fun {
        name: fun.name.clone(),
        params: fun.params.clone(),
        body,
        ret: fun.ret.clone(),
    }
}

fn cf_body(body: &Body) -> Body {
    let stms = body
        .stms
        .iter()
        .map(|s| Stm::new(s.pat.clone(), cf_exp(&s.exp)))
        .collect();
    Body::new(stms, body.result.clone())
}

fn cf_lambda(lam: &Lambda) -> Lambda {
    Lambda {
        params: lam.params.clone(),
        body: cf_body(&lam.body),
        ret: lam.ret.clone(),
    }
}

fn f64_of(a: &Atom) -> Option<f64> {
    match a {
        Atom::Const(Const::F64(x)) => Some(*x),
        _ => None,
    }
}

// The `x if x == 0.0` guards are deliberate: float-literal patterns would
// be equivalent here but read worse for the 0.0/1.0 algebraic identities.
#[allow(clippy::redundant_guards)]
fn cf_exp(e: &Exp) -> Exp {
    match e {
        Exp::BinOp(op, a, b) => {
            if let (Some(x), Some(y)) = (f64_of(a), f64_of(b)) {
                let folded = match op {
                    BinOp::Add => Some(x + y),
                    BinOp::Sub => Some(x - y),
                    BinOp::Mul => Some(x * y),
                    BinOp::Div => Some(x / y),
                    BinOp::Min => Some(x.min(y)),
                    BinOp::Max => Some(x.max(y)),
                    BinOp::Pow => Some(x.powf(y)),
                    _ => None,
                };
                if let Some(v) = folded {
                    return Exp::Atom(Atom::f64(v));
                }
            }
            match (op, f64_of(a), f64_of(b)) {
                (BinOp::Add, Some(x), _) if x == 0.0 => Exp::Atom(*b),
                (BinOp::Add, _, Some(y)) if y == 0.0 => Exp::Atom(*a),
                (BinOp::Sub, _, Some(y)) if y == 0.0 => Exp::Atom(*a),
                (BinOp::Mul, Some(x), _) if x == 1.0 => Exp::Atom(*b),
                (BinOp::Mul, _, Some(y)) if y == 1.0 => Exp::Atom(*a),
                (BinOp::Mul, Some(x), _) if x == 0.0 => Exp::Atom(Atom::f64(0.0)),
                (BinOp::Mul, _, Some(y)) if y == 0.0 => Exp::Atom(Atom::f64(0.0)),
                (BinOp::Div, _, Some(y)) if y == 1.0 => Exp::Atom(*a),
                _ => e.clone(),
            }
        }
        Exp::UnOp(op, a) => {
            if let Some(x) = f64_of(a) {
                let folded = match op {
                    UnOp::Neg => Some(-x),
                    UnOp::Exp => Some(x.exp()),
                    UnOp::Log => Some(x.ln()),
                    UnOp::Sqrt => Some(x.sqrt()),
                    UnOp::Sin => Some(x.sin()),
                    UnOp::Cos => Some(x.cos()),
                    UnOp::Abs => Some(x.abs()),
                    _ => None,
                };
                if let Some(v) = folded {
                    return Exp::Atom(Atom::f64(v));
                }
            }
            e.clone()
        }
        Exp::Select { cond, t, f } => match cond {
            Atom::Const(Const::Bool(true)) => Exp::Atom(*t),
            Atom::Const(Const::Bool(false)) => Exp::Atom(*f),
            _ => e.clone(),
        },
        Exp::If {
            cond,
            then_br,
            else_br,
        } => Exp::If {
            cond: *cond,
            then_br: cf_body(then_br),
            else_br: cf_body(else_br),
        },
        Exp::Loop {
            params,
            index,
            count,
            body,
        } => Exp::Loop {
            params: params.clone(),
            index: *index,
            count: *count,
            body: cf_body(body),
        },
        Exp::Map { lam, args } => Exp::Map {
            lam: cf_lambda(lam),
            args: args.clone(),
        },
        Exp::Reduce { lam, neutral, args } => Exp::Reduce {
            lam: cf_lambda(lam),
            neutral: neutral.clone(),
            args: args.clone(),
        },
        Exp::Scan { lam, neutral, args } => Exp::Scan {
            lam: cf_lambda(lam),
            neutral: neutral.clone(),
            args: args.clone(),
        },
        Exp::WithAcc { arrs, lam } => Exp::WithAcc {
            arrs: arrs.clone(),
            lam: cf_lambda(lam),
        },
        other => other.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fir::builder::Builder;
    use fir::typecheck::check_fun;
    use fir::types::Type;
    use interp::{Interp, Value};

    fn sum_squares() -> Fun {
        let mut b = Builder::new();
        b.build_fun("sumsq", &[Type::arr_f64(1)], |b, ps| {
            // A dead binding and a copy that the passes should remove.
            let dead = b.map1(Type::arr_f64(1), &[ps[0]], |b, es| {
                vec![b.fadd(es[0].into(), Atom::f64(0.0))]
            });
            let _ = dead;
            let sq = b.map1(Type::arr_f64(1), &[ps[0]], |b, es| {
                let one = b.fmul(es[0].into(), Atom::f64(1.0));
                vec![b.fmul(one, es[0].into())]
            });
            let alias = b.bind1(Type::arr_f64(1), Exp::Atom(Atom::Var(sq)));
            vec![Atom::Var(b.sum(alias))]
        })
    }

    #[test]
    fn simplify_preserves_semantics_and_removes_code() {
        let fun = sum_squares();
        let simplified = simplify(&fun);
        check_fun(&simplified).unwrap();
        assert!(count_stms(&simplified) < count_stms(&fun));
        let args = [Value::from(vec![1.0, 2.0, 3.0])];
        let a = Interp::sequential().run(&fun, &args)[0].as_f64();
        let b = Interp::sequential().run(&simplified, &args)[0].as_f64();
        assert_eq!(a, b);
    }

    #[test]
    fn dce_removes_redundant_forward_sweep_of_perfect_nests() {
        // vjp of a perfect map nest re-executes the primal map; after DCE the
        // primal result is only computed once per scope that needs it.
        let mut b = Builder::new();
        let fun = b.build_fun("nest", &[Type::arr_f64(2)], |b, ps| {
            let out = b.map1(Type::arr_f64(2), &[ps[0]], |b, rows| {
                let r = b.map1(Type::arr_f64(1), &[rows[0]], |b, es| {
                    vec![b.fmul(es[0].into(), es[0].into())]
                });
                vec![Atom::Var(r)]
            });
            let sums = b.map1(Type::arr_f64(1), &[out], |b, rs| {
                vec![Atom::Var(b.sum(rs[0]))]
            });
            vec![Atom::Var(b.sum(sums))]
        });
        let dfun = futhark_ad::vjp(&fun);
        let simplified = simplify(&dfun);
        check_fun(&simplified).unwrap();
        assert!(count_stms(&simplified) <= count_stms(&dfun));
        // Semantics preserved.
        let args = [
            Value::Arr(interp::Array::from_f64(
                vec![2, 2],
                vec![1.0, 2.0, 3.0, 4.0],
            )),
            Value::F64(1.0),
        ];
        let a = Interp::sequential().run(&dfun, &args);
        let b2 = Interp::sequential().run(&simplified, &args);
        assert_eq!(a[1].as_arr().f64s(), b2[1].as_arr().f64s());
    }

    #[test]
    fn constant_folding_collapses_identities() {
        let mut b = Builder::new();
        let fun = b.build_fun("ids", &[Type::F64], |b, ps| {
            let x = Atom::Var(ps[0]);
            let a = b.fadd(x, Atom::f64(0.0));
            let m = b.fmul(a, Atom::f64(1.0));
            let z = b.fmul(m, Atom::f64(0.0));
            let c = b.fadd(Atom::f64(2.0), Atom::f64(3.0));
            let t = b.fadd(z, c);
            vec![b.fadd(t, m)]
        });
        let simplified = simplify(&fun);
        check_fun(&simplified).unwrap();
        let out = Interp::sequential().run(&simplified, &[Value::F64(7.0)]);
        assert_eq!(out[0].as_f64(), 12.0);
        assert!(count_stms(&simplified) < count_stms(&fun));
    }
}
