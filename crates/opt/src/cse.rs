//! Common-subexpression elimination.
//!
//! Statements are keyed by the binder-normalized structural hash of their
//! right-hand side ([`fir::hash::exp_key`]): a statement whose (substituted)
//! expression is alpha-equivalent to one already available in an enclosing
//! scope is dropped, and its bindings become aliases of the earlier ones.
//! This catches the whole-SOAC duplicates that reverse-mode AD's redundant
//! re-execution produces, not just repeated scalar operations.
//!
//! Sharing rules:
//!
//! * Availability is lexically scoped: a binding is available to later
//!   statements of its own body and to scopes nested inside them, never to
//!   siblings.
//! * Expressions that touch accumulators (shared mutable state) are never
//!   merged, and neither are aliasing-sensitive forms (`copy`, `update`,
//!   `scatter`, `withacc`, plain atoms — the latter are copy propagation's
//!   job).
//! * A merge must not create a second use of a *consumed* array (an
//!   `update`/`scatter` destination may be moved out of its register by the
//!   VM's uniqueness analysis, so a consumed name must stay single-use):
//!   statements binding or reusing such variables are skipped.
//!
//! Constants compare by bit pattern (via the structural hash), so `-0.0`
//! never merges with `0.0` and optimized programs stay bitwise identical to
//! unoptimized ones.

use std::collections::{HashMap, HashSet};

use fir::hash::{exp_key, ExpKey};
use fir::ir::{Atom, Body, Exp, Fun, Lambda, Stm, VarId};

/// Apply common-subexpression elimination everywhere in `fun`.
pub fn cse(fun: &Fun) -> Fun {
    cse_counted(fun).0
}

/// [`cse`], also returning the number of statements merged away.
///
/// CSE keys availability on raw `VarId`s, so shadowed binders (as `vjp`'s
/// redundant re-execution produces) would make distinct values look alike;
/// such input is alpha-renamed to unique binders first.
pub fn cse_counted(fun: &Fun) -> (Fun, usize) {
    let renamed;
    let fun = if fir::rename::has_unique_binders(fun) {
        fun
    } else {
        renamed = fir::rename::uniquify_fun(fun);
        &renamed
    };
    let mut consumed = HashSet::new();
    collect_consumed(&fun.body, &mut consumed);
    let mut cx = Cse {
        consumed,
        subst: HashMap::new(),
        avail: Vec::new(),
        count: 0,
    };
    let body = cx.body(&fun.body);
    (
        Fun {
            name: fun.name.clone(),
            params: fun.params.clone(),
            body,
            ret: fun.ret.clone(),
        },
        cx.count,
    )
}

struct Cse {
    /// Variables consumed somewhere (update/scatter destinations, withacc
    /// arrays, accumulator names): never merge into or away from these.
    consumed: HashSet<VarId>,
    /// Alias substitution produced by merges (old binder -> kept binder).
    subst: HashMap<VarId, VarId>,
    /// Available-expression scopes, innermost last.
    avail: Vec<HashMap<ExpKey, Vec<VarId>>>,
    count: usize,
}

impl Cse {
    fn body(&mut self, body: &Body) -> Body {
        self.avail.push(HashMap::new());
        let mut stms = Vec::with_capacity(body.stms.len());
        for stm in &body.stms {
            let exp = self.exp(&stm.exp);
            if self.mergeable(&exp, stm) {
                let key = exp_key(&exp);
                if let Some(prev) = self.lookup(&key) {
                    if prev.len() == stm.pat.len()
                        && !prev.iter().any(|v| self.consumed.contains(v))
                    {
                        for (p, v) in stm.pat.iter().zip(&prev) {
                            self.subst.insert(p.var, *v);
                        }
                        self.count += 1;
                        continue;
                    }
                }
                let binders = stm.pat.iter().map(|p| p.var).collect();
                self.avail
                    .last_mut()
                    .expect("scope pushed above")
                    .insert(key, binders);
            }
            stms.push(Stm::new(stm.pat.clone(), exp));
        }
        let result = body.result.iter().map(|a| self.atom(a)).collect();
        self.avail.pop();
        Body::new(stms, result)
    }

    fn lookup(&self, key: &ExpKey) -> Option<Vec<VarId>> {
        self.avail
            .iter()
            .rev()
            .find_map(|scope| scope.get(key).cloned())
    }

    /// Whether this statement may participate in sharing at all.
    fn mergeable(&self, exp: &Exp, stm: &Stm) -> bool {
        let shape_ok = match exp {
            Exp::Atom(_)
            | Exp::Copy(_)
            | Exp::Update { .. }
            | Exp::Scatter { .. }
            | Exp::WithAcc { .. }
            | Exp::UpdAcc { .. } => false,
            other => !mentions_acc(other),
        };
        shape_ok
            && stm.pat.iter().all(|p| !p.ty.is_acc())
            && !stm.pat.iter().any(|p| self.consumed.contains(&p.var))
    }

    fn var(&self, v: VarId) -> VarId {
        self.subst.get(&v).copied().unwrap_or(v)
    }

    fn atom(&self, a: &Atom) -> Atom {
        match a {
            Atom::Var(v) => Atom::Var(self.var(*v)),
            c => *c,
        }
    }

    fn atoms(&self, atoms: &[Atom]) -> Vec<Atom> {
        atoms.iter().map(|a| self.atom(a)).collect()
    }

    fn vars(&self, vars: &[VarId]) -> Vec<VarId> {
        vars.iter().map(|v| self.var(*v)).collect()
    }

    fn lambda(&mut self, lam: &Lambda) -> Lambda {
        Lambda {
            params: lam.params.clone(),
            body: self.body(&lam.body),
            ret: lam.ret.clone(),
        }
    }

    /// Rewrite an expression: apply the alias substitution to its operands
    /// and recurse into nested scopes.
    fn exp(&mut self, e: &Exp) -> Exp {
        match e {
            Exp::Atom(a) => Exp::Atom(self.atom(a)),
            Exp::UnOp(op, a) => Exp::UnOp(*op, self.atom(a)),
            Exp::BinOp(op, a, b) => Exp::BinOp(*op, self.atom(a), self.atom(b)),
            Exp::Select { cond, t, f } => Exp::Select {
                cond: self.atom(cond),
                t: self.atom(t),
                f: self.atom(f),
            },
            Exp::Index { arr, idx } => Exp::Index {
                arr: self.var(*arr),
                idx: self.atoms(idx),
            },
            Exp::Update { arr, idx, val } => Exp::Update {
                arr: self.var(*arr),
                idx: self.atoms(idx),
                val: self.atom(val),
            },
            Exp::Len(v) => Exp::Len(self.var(*v)),
            Exp::Iota(n) => Exp::Iota(self.atom(n)),
            Exp::Replicate { n, val } => Exp::Replicate {
                n: self.atom(n),
                val: self.atom(val),
            },
            Exp::Reverse(v) => Exp::Reverse(self.var(*v)),
            Exp::Copy(v) => Exp::Copy(self.var(*v)),
            Exp::If {
                cond,
                then_br,
                else_br,
            } => Exp::If {
                cond: self.atom(cond),
                then_br: self.body(then_br),
                else_br: self.body(else_br),
            },
            Exp::Loop {
                params,
                index,
                count,
                body,
            } => Exp::Loop {
                params: params
                    .iter()
                    .map(|(p, init)| (*p, self.atom(init)))
                    .collect(),
                index: *index,
                count: self.atom(count),
                body: self.body(body),
            },
            Exp::Map { lam, args } => Exp::Map {
                lam: self.lambda(lam),
                args: self.vars(args),
            },
            Exp::Reduce { lam, neutral, args } => Exp::Reduce {
                lam: self.lambda(lam),
                neutral: self.atoms(neutral),
                args: self.vars(args),
            },
            Exp::Scan { lam, neutral, args } => Exp::Scan {
                lam: self.lambda(lam),
                neutral: self.atoms(neutral),
                args: self.vars(args),
            },
            Exp::Redomap {
                red_lam,
                map_lam,
                neutral,
                args,
            } => Exp::Redomap {
                red_lam: self.lambda(red_lam),
                map_lam: self.lambda(map_lam),
                neutral: self.atoms(neutral),
                args: self.vars(args),
            },
            Exp::Hist {
                op,
                num_bins,
                inds,
                vals,
            } => Exp::Hist {
                op: *op,
                num_bins: self.atom(num_bins),
                inds: self.var(*inds),
                vals: self.var(*vals),
            },
            Exp::Scatter { dest, inds, vals } => Exp::Scatter {
                dest: self.var(*dest),
                inds: self.var(*inds),
                vals: self.var(*vals),
            },
            Exp::WithAcc { arrs, lam } => Exp::WithAcc {
                arrs: self.vars(arrs),
                lam: self.lambda(lam),
            },
            Exp::UpdAcc { acc, idx, val } => Exp::UpdAcc {
                acc: self.var(*acc),
                idx: self.atoms(idx),
                val: self.atom(val),
            },
        }
    }
}

/// Whether an expression touches accumulators anywhere.
fn mentions_acc(e: &Exp) -> bool {
    fn lambda(l: &Lambda) -> bool {
        l.params.iter().any(|p| p.ty.is_acc()) || l.ret.iter().any(|t| t.is_acc()) || body(&l.body)
    }
    fn body(b: &Body) -> bool {
        b.stms
            .iter()
            .any(|s| s.pat.iter().any(|p| p.ty.is_acc()) || mentions_acc(&s.exp))
    }
    match e {
        Exp::UpdAcc { .. } | Exp::WithAcc { .. } => true,
        Exp::If {
            then_br, else_br, ..
        } => body(then_br) || body(else_br),
        Exp::Loop { body: b, .. } => body(b),
        Exp::Map { lam, .. } | Exp::Reduce { lam, .. } | Exp::Scan { lam, .. } => lambda(lam),
        Exp::Redomap {
            red_lam, map_lam, ..
        } => lambda(red_lam) || lambda(map_lam),
        _ => false,
    }
}

/// Collect every variable that is consumed (or aliased into shared mutable
/// state) anywhere in the body, at any depth.
pub(crate) fn collect_consumed(body: &Body, out: &mut HashSet<VarId>) {
    for s in &body.stms {
        consumed_in_exp(&s.exp, out);
    }
}

/// Consumption of one expression, recursing into its nested bodies.
/// Shared with fusion's intervening-consumption guard (`fusion.rs`),
/// which must see consumption nested inside branches, loops, and
/// lambdas too.
pub(crate) fn consumed_in_exp(e: &Exp, out: &mut HashSet<VarId>) {
    match e {
        Exp::Update { arr, .. } => {
            out.insert(*arr);
        }
        Exp::Scatter { dest, .. } => {
            out.insert(*dest);
        }
        Exp::WithAcc { arrs, lam } => {
            out.extend(arrs.iter().copied());
            collect_consumed(&lam.body, out);
        }
        Exp::UpdAcc { acc, .. } => {
            out.insert(*acc);
        }
        Exp::If {
            then_br, else_br, ..
        } => {
            collect_consumed(then_br, out);
            collect_consumed(else_br, out);
        }
        Exp::Loop { body, .. } => collect_consumed(body, out),
        Exp::Map { lam, .. } | Exp::Reduce { lam, .. } | Exp::Scan { lam, .. } => {
            collect_consumed(&lam.body, out)
        }
        Exp::Redomap {
            red_lam, map_lam, ..
        } => {
            collect_consumed(&red_lam.body, out);
            collect_consumed(&map_lam.body, out);
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::count_stms;
    use fir::builder::Builder;
    use fir::typecheck::check_fun;
    use fir::types::Type;
    use interp::{Interp, Value};

    #[test]
    fn repeated_scalar_work_is_shared() {
        let mut b = Builder::new();
        let fun = b.build_fun("twice", &[Type::F64], |b, ps| {
            let x = Atom::Var(ps[0]);
            let a = b.fmul(x, x);
            let c = b.fmul(x, x); // same computation, fresh binder
            vec![b.fadd(a, c)]
        });
        let (out, n) = cse_counted(&fun);
        assert_eq!(n, 1);
        check_fun(&out).unwrap();
        let r = Interp::sequential().run(&out, &[Value::F64(3.0)]);
        assert_eq!(r[0].as_f64(), 18.0);
    }

    #[test]
    fn identical_maps_merge_despite_different_binders() {
        // Two separately-built (alpha-distinct) squaring maps over the same
        // array — exactly what AD's redundant re-execution emits.
        let mut b = Builder::new();
        let fun = b.build_fun("dup_maps", &[Type::arr_f64(1)], |b, ps| {
            let m1 = b.map1(Type::arr_f64(1), &[ps[0]], |b, es| {
                vec![b.fmul(es[0].into(), es[0].into())]
            });
            let m2 = b.map1(Type::arr_f64(1), &[ps[0]], |b, es| {
                vec![b.fmul(es[0].into(), es[0].into())]
            });
            let s1 = b.sum(m1);
            let s2 = b.sum(m2);
            vec![b.fadd(s1.into(), s2.into())]
        });
        let (out, n) = cse_counted(&fun);
        assert!(n >= 2, "both the map and the reduce must merge, got {n}");
        check_fun(&out).unwrap();
        assert!(count_stms(&out) < count_stms(&fun));
        let args = [Value::from(vec![1.0, 2.0, 3.0])];
        let a = Interp::sequential().run(&fun, &args)[0].as_f64();
        let b2 = Interp::sequential().run(&out, &args)[0].as_f64();
        assert_eq!(a.to_bits(), b2.to_bits());
    }

    #[test]
    fn enclosing_definitions_are_available_inside_lambdas() {
        let mut b = Builder::new();
        let fun = b.build_fun("outer_in", &[Type::F64, Type::arr_f64(1)], |b, ps| {
            let x = Atom::Var(ps[0]);
            let e = b.fexp(x);
            let m = b.map1(Type::arr_f64(1), &[ps[1]], |b, es| {
                let e2 = b.fexp(x); // recomputed per element; merges with outer
                vec![b.fmul(es[0].into(), e2)]
            });
            let s = b.sum(m);
            vec![b.fadd(e, s.into())]
        });
        let (out, n) = cse_counted(&fun);
        assert_eq!(n, 1);
        check_fun(&out).unwrap();
        let args = [Value::F64(0.5), Value::from(vec![1.0, 2.0])];
        let a = Interp::sequential().run(&fun, &args)[0].as_f64();
        let b2 = Interp::sequential().run(&out, &args)[0].as_f64();
        assert_eq!(a.to_bits(), b2.to_bits());
    }

    #[test]
    fn sibling_scopes_do_not_share() {
        // The same expression in both branches of an `if` must not merge
        // across branches (neither branch dominates the other).
        let mut b = Builder::new();
        let fun = b.build_fun("branches", &[Type::F64, Type::BOOL], |b, ps| {
            let x = Atom::Var(ps[0]);
            let r = b.if_(
                Atom::Var(ps[1]),
                &[Type::F64],
                |b| vec![b.fmul(x, x)],
                |b| vec![b.fmul(x, x)],
            );
            vec![r[0].into()]
        });
        let (out, n) = cse_counted(&fun);
        assert_eq!(n, 0);
        assert_eq!(out, fun);
    }

    #[test]
    fn consumed_arrays_never_merge() {
        // Two identical copies, each updated in place: merging them would
        // make one array receive both updates.
        let mut b = Builder::new();
        let fun = b.build_fun("upd", &[Type::arr_f64(1)], |b, ps| {
            let c1 = b.map1(Type::arr_f64(1), &[ps[0]], |b, es| {
                vec![b.fadd(es[0].into(), Atom::f64(0.5))]
            });
            let c2 = b.map1(Type::arr_f64(1), &[ps[0]], |b, es| {
                vec![b.fadd(es[0].into(), Atom::f64(0.5))]
            });
            let u1 = b.update(c1, &[Atom::i64(0)], Atom::f64(1.0));
            let u2 = b.update(c2, &[Atom::i64(0)], Atom::f64(2.0));
            let s1 = b.sum(u1);
            let s2 = b.sum(u2);
            vec![b.fadd(s1.into(), s2.into())]
        });
        let (out, _) = cse_counted(&fun);
        check_fun(&out).unwrap();
        let args = [Value::from(vec![0.0, 0.0])];
        let a = Interp::sequential().run(&fun, &args)[0].as_f64();
        let b2 = Interp::sequential().run(&out, &args)[0].as_f64();
        assert_eq!(
            a.to_bits(),
            b2.to_bits(),
            "updated arrays must stay distinct"
        );
    }
}
