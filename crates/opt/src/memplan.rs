//! Memory planning: lifetime-based in-place lowering and buffer-slot
//! planning, run after fusion.
//!
//! The pass has two products:
//!
//! 1. **In-place lowering** ([`memplan`] / [`memplan_counted`]): a backward
//!    liveness scan per body finds `let y = copy x` bindings whose source
//!    `x` has no later use — neither in the remainder of the enclosing
//!    body, nor in any enclosing scope's remainder, nor in a re-execution
//!    of the surrounding loop/SOAC body. Such a copy exists only to give a
//!    downstream consumer (`update`, `scatter`, `withacc`) a uniquely-owned
//!    buffer; when the source is dead the copy is rewritten to a plain
//!    alias, copy propagation folds the alias away, and the consumer's
//!    copy-on-write `Arc::make_mut` then finds a uniquely-held buffer and
//!    mutates it **in place** instead of deep-copying. The rewrite is
//!    bitwise-neutral on every backend: the IR is purely functional, so a
//!    `copy` is semantically the identity — the runtime's copy-on-write
//!    discipline alone decides whether a physical copy happens.
//!
//! 2. **Buffer planning** ([`plan_buffers`]): the same liveness computation
//!    aggregated per shape class `(element type, rank)` — the maximum
//!    number of simultaneously-live array bindings at any program point, a
//!    statement-granularity upper bound on how many distinct buffers per
//!    class an execution can have in flight. The executor sizes its
//!    per-invocation arena (`interp::arena`) from the plan's slot count;
//!    byte sizes are runtime quantities (types carry only rank) and are
//!    tracked by the arena itself.
//!
//! Safety reuses the consumption machinery shared with fusion's
//! update/scatter guards (`cse::collect_consumed`): a copy
//! whose *source* id is consumed anywhere in the function is never
//! rewritten. Binder ids are legally reused across sibling scopes (the
//! `vjp` transformation re-emits statements with their original ids), so
//! this conservative function-wide guard keeps the alias introduction away
//! from any binding that shared mutable state (accumulators, scatter
//! destinations) might touch. The fixpoint pipeline makes the guard
//! self-stabilizing: once an eliminated copy turns `update y` into
//! `update x`, `x` itself joins the consumed set and further copies of it
//! are left alone.

use std::collections::{BTreeSet, HashMap, HashSet};

use fir::free_vars::FreeVars;
use fir::ir::{Atom, Body, Exp, Fun, Lambda, Stm, VarId};
use fir::types::{ScalarType, Type};

use crate::cse::collect_consumed;

// ---------------------------------------------------------------------
// In-place lowering: dead-source copy elimination
// ---------------------------------------------------------------------

/// Rewrite `let y = copy x` to `let y = x` wherever `x` is provably dead
/// after the statement (see the module docs for the exact condition).
pub fn memplan(fun: &Fun) -> Fun {
    memplan_counted(fun).0
}

/// [`memplan`], also returning the number of copies eliminated.
pub fn memplan_counted(fun: &Fun) -> (Fun, usize) {
    let mut consumed = HashSet::new();
    collect_consumed(&fun.body, &mut consumed);
    let mut count = 0;
    let outer_live = BTreeSet::new();
    let body = mp_body(&fun.body, &outer_live, &consumed, &mut count);
    (
        Fun {
            name: fun.name.clone(),
            params: fun.params.clone(),
            body,
            ret: fun.ret.clone(),
        },
        count,
    )
}

/// Backward liveness over one body. `outer_live` is every variable that may
/// still be read after this body finishes (enclosing remainders) or on a
/// re-execution of this body (loop/SOAC free variables).
fn mp_body(
    body: &Body,
    outer_live: &BTreeSet<VarId>,
    consumed: &HashSet<VarId>,
    count: &mut usize,
) -> Body {
    // `live` = variables with a use strictly after the current point,
    // within this body (the result counts as the final use site).
    let mut live: BTreeSet<VarId> = BTreeSet::new();
    for a in &body.result {
        if let Atom::Var(v) = a {
            live.insert(*v);
        }
    }
    let mut rev: Vec<Stm> = Vec::with_capacity(body.stms.len());
    for stm in body.stms.iter().rev() {
        // Later uses of a name this statement binds refer to *this*
        // binding, not an earlier one of the same id.
        for p in &stm.pat {
            live.remove(&p.var);
        }
        let exp = match &stm.exp {
            Exp::Copy(x)
                if !live.contains(x) && !outer_live.contains(x) && !consumed.contains(x) =>
            {
                *count += 1;
                Exp::Atom(Atom::Var(*x))
            }
            e => mp_exp(e, &live, outer_live, consumed, count),
        };
        for v in exp.free_vars() {
            live.insert(v);
        }
        rev.push(Stm::new(stm.pat.clone(), exp));
    }
    rev.reverse();
    Body::new(rev, body.result.clone())
}

/// The liveness a nested scope at the current point must treat as external:
/// everything live after the enclosing statement plus everything already
/// live outside the enclosing body.
fn child_live(live_after: &BTreeSet<VarId>, outer_live: &BTreeSet<VarId>) -> BTreeSet<VarId> {
    live_after.union(outer_live).copied().collect()
}

/// Like [`child_live`], but for bodies that may execute more than once
/// (loops and SOAC lambdas): any free variable of the expression can be
/// read again by the next iteration, so it must stay live throughout.
fn reexec_live(
    e: &Exp,
    live_after: &BTreeSet<VarId>,
    outer_live: &BTreeSet<VarId>,
) -> BTreeSet<VarId> {
    let mut out = child_live(live_after, outer_live);
    out.extend(e.free_vars());
    out
}

fn mp_lambda(
    lam: &Lambda,
    outer: &BTreeSet<VarId>,
    consumed: &HashSet<VarId>,
    count: &mut usize,
) -> Lambda {
    Lambda {
        params: lam.params.clone(),
        body: mp_body(&lam.body, outer, consumed, count),
        ret: lam.ret.clone(),
    }
}

fn mp_exp(
    e: &Exp,
    live_after: &BTreeSet<VarId>,
    outer_live: &BTreeSet<VarId>,
    consumed: &HashSet<VarId>,
    count: &mut usize,
) -> Exp {
    match e {
        Exp::If {
            cond,
            then_br,
            else_br,
        } => {
            // Branches are alternatives: each runs at most once, and a
            // variable only one branch reads need not survive the other.
            let outer = child_live(live_after, outer_live);
            Exp::If {
                cond: *cond,
                then_br: mp_body(then_br, &outer, consumed, count),
                else_br: mp_body(else_br, &outer, consumed, count),
            }
        }
        Exp::Loop {
            params,
            index,
            count: loop_count,
            body,
        } => {
            let outer = reexec_live(e, live_after, outer_live);
            Exp::Loop {
                params: params.clone(),
                index: *index,
                count: *loop_count,
                body: mp_body(body, &outer, consumed, count),
            }
        }
        Exp::Map { lam, args } => {
            let outer = reexec_live(e, live_after, outer_live);
            Exp::Map {
                lam: mp_lambda(lam, &outer, consumed, count),
                args: args.clone(),
            }
        }
        Exp::Reduce { lam, neutral, args } => {
            let outer = reexec_live(e, live_after, outer_live);
            Exp::Reduce {
                lam: mp_lambda(lam, &outer, consumed, count),
                neutral: neutral.clone(),
                args: args.clone(),
            }
        }
        Exp::Scan { lam, neutral, args } => {
            let outer = reexec_live(e, live_after, outer_live);
            Exp::Scan {
                lam: mp_lambda(lam, &outer, consumed, count),
                neutral: neutral.clone(),
                args: args.clone(),
            }
        }
        Exp::Redomap {
            red_lam,
            map_lam,
            neutral,
            args,
        } => {
            let outer = reexec_live(e, live_after, outer_live);
            Exp::Redomap {
                red_lam: mp_lambda(red_lam, &outer, consumed, count),
                map_lam: mp_lambda(map_lam, &outer, consumed, count),
                neutral: neutral.clone(),
                args: args.clone(),
            }
        }
        Exp::WithAcc { arrs, lam } => {
            // The lambda runs once, but its accumulator parameters are live
            // mutable views of `arrs`; treat everything the expression can
            // reach as external, like a re-executed scope.
            let outer = reexec_live(e, live_after, outer_live);
            Exp::WithAcc {
                arrs: arrs.clone(),
                lam: mp_lambda(lam, &outer, consumed, count),
            }
        }
        other => other.clone(),
    }
}

// ---------------------------------------------------------------------
// Buffer planning
// ---------------------------------------------------------------------

/// A buffer shape class: element type and rank. Concrete extents are
/// runtime quantities, so planning groups buffers at this granularity —
/// the same granularity at which the executor's arena pools buffers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ShapeClass {
    pub elem: ScalarType,
    pub rank: usize,
}

impl std::fmt::Display for ShapeClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for _ in 0..self.rank {
            write!(f, "[]")?;
        }
        write!(f, "{}", self.elem)
    }
}

/// The per-program buffer plan: for each shape class, the maximum number
/// of simultaneously-live array bindings at any statement boundary (a
/// statement-granularity upper bound, counting every nesting depth).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BufferPlan {
    classes: Vec<(ShapeClass, usize)>,
}

impl BufferPlan {
    /// Total planned buffer slots, summed over shape classes. Sizes the
    /// executor's per-invocation arena.
    pub fn slots(&self) -> usize {
        self.classes.iter().map(|(_, n)| n).sum()
    }

    /// The per-class maxima, deterministically ordered.
    pub fn classes(&self) -> &[(ShapeClass, usize)] {
        &self.classes
    }

    /// The maximum simultaneously-live count for one class (0 if the class
    /// never occurs).
    pub fn max_live(&self, class: ShapeClass) -> usize {
        self.classes
            .iter()
            .find(|(c, _)| *c == class)
            .map_or(0, |(_, n)| *n)
    }
}

impl std::fmt::Display for BufferPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} slots (", self.slots())?;
        for (i, (c, n)) in self.classes.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}: {n}")?;
        }
        write!(f, ")")
    }
}

/// Compute the buffer plan of an (optimized) function: walk every body
/// backward tracking which array-typed bindings are live, and record the
/// per-class high-water mark.
pub fn plan_buffers(fun: &Fun) -> BufferPlan {
    let mut types: HashMap<VarId, Type> = fun.params.iter().map(|p| (p.var, p.ty)).collect();
    collect_types(&fun.body, &mut types);
    let mut max: HashMap<ShapeClass, usize> = HashMap::new();
    let live_out = BTreeSet::new();
    plan_body(&fun.body, &live_out, &types, &mut max);
    let mut classes: Vec<(ShapeClass, usize)> = max.into_iter().collect();
    classes.sort_by_key(|(c, _)| (c.rank, format!("{}", c.elem)));
    BufferPlan { classes }
}

/// Every binder's type, at any depth. Binder ids reused across sibling
/// scopes collide here; since planning only needs the shape *class*, the
/// collision is benign (the ids are rebound at the same type by
/// construction, and a mismatch merely shifts a count between classes).
fn collect_types(body: &Body, types: &mut HashMap<VarId, Type>) {
    fn lambda(l: &Lambda, types: &mut HashMap<VarId, Type>) {
        for p in &l.params {
            types.insert(p.var, p.ty);
        }
        collect_types(&l.body, types);
    }
    for stm in &body.stms {
        for p in &stm.pat {
            types.insert(p.var, p.ty);
        }
        match &stm.exp {
            Exp::If {
                then_br, else_br, ..
            } => {
                collect_types(then_br, types);
                collect_types(else_br, types);
            }
            Exp::Loop {
                params,
                index,
                body: lb,
                ..
            } => {
                for (p, _) in params {
                    types.insert(p.var, p.ty);
                }
                types.insert(*index, Type::I64);
                collect_types(lb, types);
            }
            Exp::Map { lam, .. }
            | Exp::Reduce { lam, .. }
            | Exp::Scan { lam, .. }
            | Exp::WithAcc { lam, .. } => lambda(lam, types),
            Exp::Redomap {
                red_lam, map_lam, ..
            } => {
                lambda(red_lam, types);
                lambda(map_lam, types);
            }
            _ => {}
        }
    }
}

fn record(
    live: &BTreeSet<VarId>,
    types: &HashMap<VarId, Type>,
    max: &mut HashMap<ShapeClass, usize>,
) {
    let mut here: HashMap<ShapeClass, usize> = HashMap::new();
    for v in live {
        if let Some(ty @ Type::Array { .. }) = types.get(v) {
            let class = ShapeClass {
                elem: ty.elem(),
                rank: ty.rank(),
            };
            *here.entry(class).or_insert(0) += 1;
        }
    }
    for (class, n) in here {
        let m = max.entry(class).or_insert(0);
        *m = (*m).max(n);
    }
}

fn plan_lambda(
    lam: &Lambda,
    live_out: &BTreeSet<VarId>,
    types: &HashMap<VarId, Type>,
    max: &mut HashMap<ShapeClass, usize>,
) {
    plan_body(&lam.body, live_out, types, max);
}

fn plan_body(
    body: &Body,
    live_out: &BTreeSet<VarId>,
    types: &HashMap<VarId, Type>,
    max: &mut HashMap<ShapeClass, usize>,
) {
    let mut live = live_out.clone();
    for a in &body.result {
        if let Atom::Var(v) = a {
            live.insert(*v);
        }
    }
    record(&live, types, max);
    for stm in body.stms.iter().rev() {
        for p in &stm.pat {
            live.remove(&p.var);
        }
        // While the statement executes, everything it reads — and the
        // buffers it is producing — is live on top of everything needed
        // afterwards; nested scopes see that set as their live-out.
        let mut during = live.clone();
        during.extend(stm.exp.free_vars());
        during.extend(stm.pat.iter().map(|p| p.var));
        record(&during, types, max);
        match &stm.exp {
            Exp::If {
                then_br, else_br, ..
            } => {
                plan_body(then_br, &during, types, max);
                plan_body(else_br, &during, types, max);
            }
            Exp::Loop {
                body: loop_body, ..
            } => {
                plan_body(loop_body, &during, types, max);
            }
            Exp::Map { lam, .. } | Exp::Reduce { lam, .. } | Exp::Scan { lam, .. } => {
                plan_lambda(lam, &during, types, max);
            }
            Exp::Redomap {
                red_lam, map_lam, ..
            } => {
                plan_lambda(red_lam, &during, types, max);
                plan_lambda(map_lam, &during, types, max);
            }
            Exp::WithAcc { lam, .. } => plan_lambda(lam, &during, types, max),
            _ => {}
        }
        live.extend(stm.exp.free_vars());
        record(&live, types, max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simplify::copy_propagation;
    use fir::builder::Builder;
    use fir::typecheck::check_fun;
    use interp::{Interp, Value};

    /// `let y = copy x; let z = y with [0] <- 9.0` where `x` is dead after
    /// the copy: the copy must be eliminated.
    fn copy_then_update(live_tail: bool) -> Fun {
        let mut b = Builder::new();
        b.build_fun("cu", &[Type::arr_f64(1)], |b, ps| {
            let y = b.bind1(Type::arr_f64(1), Exp::Copy(ps[0]));
            let z = b.bind1(
                Type::arr_f64(1),
                Exp::Update {
                    arr: y,
                    idx: vec![Atom::i64(0)],
                    val: Atom::f64(9.0),
                },
            );
            if live_tail {
                // A later read of x keeps the copy protective.
                let t = b.bind1(
                    Type::F64,
                    Exp::Index {
                        arr: ps[0],
                        idx: vec![Atom::i64(0)],
                    },
                );
                let s = b.bind1(
                    Type::F64,
                    Exp::Index {
                        arr: z,
                        idx: vec![Atom::i64(0)],
                    },
                );
                vec![b.fadd(Atom::Var(t), Atom::Var(s))]
            } else {
                vec![Atom::Var(z)]
            }
        })
    }

    fn count_copies(fun: &Fun) -> usize {
        fn body(b: &Body) -> usize {
            b.stms
                .iter()
                .map(|s| match &s.exp {
                    Exp::Copy(_) => 1,
                    Exp::If {
                        then_br, else_br, ..
                    } => body(then_br) + body(else_br),
                    Exp::Loop { body: lb, .. } => body(lb),
                    Exp::Map { lam, .. }
                    | Exp::Reduce { lam, .. }
                    | Exp::Scan { lam, .. }
                    | Exp::WithAcc { lam, .. } => body(&lam.body),
                    Exp::Redomap {
                        red_lam, map_lam, ..
                    } => body(&red_lam.body) + body(&map_lam.body),
                    _ => 0,
                })
                .sum()
        }
        body(&fun.body)
    }

    #[test]
    fn dead_source_copy_is_eliminated_bitwise() {
        let fun = copy_then_update(false);
        let (planned, n) = memplan_counted(&fun);
        assert_eq!(n, 1, "the protective copy of a dead source goes away");
        assert_eq!(count_copies(&planned), 0);
        check_fun(&planned).unwrap();
        // After copy propagation the update consumes the parameter directly.
        let propagated = copy_propagation(&planned);
        let has_direct_update = propagated
            .body
            .stms
            .iter()
            .any(|s| matches!(&s.exp, Exp::Update { arr, .. } if *arr == fun.params[0].var));
        assert!(has_direct_update, "alias must fold into the consumer");
        let args = [Value::from(vec![1.0, 2.0, 3.0])];
        let a = Interp::sequential().run(&fun, &args);
        let b = Interp::sequential().run(&propagated, &args);
        assert_eq!(a[0].as_arr().f64s(), b[0].as_arr().f64s());
    }

    #[test]
    fn live_source_copy_is_kept() {
        let fun = copy_then_update(true);
        let (planned, n) = memplan_counted(&fun);
        assert_eq!(n, 0, "a later read of the source keeps the copy");
        assert_eq!(count_copies(&planned), 1);
    }

    #[test]
    fn loop_carried_source_copy_is_kept() {
        // The copied variable is free in the loop body: the next iteration
        // reads it again, so the copy must survive.
        let mut b = Builder::new();
        let fun = b.build_fun("lc", &[Type::arr_f64(1)], |b, ps| {
            let r = b.loop_(
                &[(Type::arr_f64(1), Atom::Var(ps[0]))],
                Atom::i64(3),
                |b, _i, acc| {
                    let y = b.bind1(Type::arr_f64(1), Exp::Copy(ps[0]));
                    let z = b.bind1(
                        Type::arr_f64(1),
                        Exp::Update {
                            arr: y,
                            idx: vec![Atom::i64(0)],
                            val: Atom::f64(1.0),
                        },
                    );
                    let _ = acc;
                    vec![Atom::Var(z)]
                },
            );
            vec![r[0].into()]
        });
        let (_, n) = memplan_counted(&fun);
        assert_eq!(n, 0, "loop re-execution keeps the source live");
    }

    #[test]
    fn consumed_source_guard_blocks_the_rewrite() {
        // x is scatter-consumed elsewhere: the conservative guard keeps the
        // copy even though liveness alone would allow the rewrite.
        let mut b = Builder::new();
        let fun = b.build_fun(
            "cg",
            &[Type::arr_f64(1), Type::arr_i64(1), Type::arr_f64(1)],
            |b, ps| {
                let s = b.bind1(
                    Type::arr_f64(1),
                    Exp::Scatter {
                        dest: ps[0],
                        inds: ps[1],
                        vals: ps[2],
                    },
                );
                let y = b.bind1(Type::arr_f64(1), Exp::Copy(ps[0]));
                let z = b.bind1(
                    Type::arr_f64(1),
                    Exp::Update {
                        arr: y,
                        idx: vec![Atom::i64(0)],
                        val: Atom::f64(9.0),
                    },
                );
                vec![Atom::Var(s), Atom::Var(z)]
            },
        );
        let (_, n) = memplan_counted(&fun);
        assert_eq!(n, 0, "a consumed source id is never aliased");
    }

    #[test]
    fn buffer_plan_counts_simultaneously_live_arrays() {
        let mut b = Builder::new();
        let fun = b.build_fun("bp", &[Type::arr_f64(1)], |b, ps| {
            // Two rank-1 f64 arrays live at once (a and b feed the final
            // map), plus the parameter.
            let a = b.map1(Type::arr_f64(1), &[ps[0]], |b, es| {
                vec![b.fmul(es[0].into(), es[0].into())]
            });
            let c = b.map1(Type::arr_f64(1), &[ps[0]], |b, es| {
                vec![b.fadd(es[0].into(), Atom::f64(1.0))]
            });
            let d = b.map1(Type::arr_f64(1), &[a, c], |b, es| {
                vec![b.fadd(es[0].into(), es[1].into())]
            });
            vec![Atom::Var(d)]
        });
        let plan = plan_buffers(&fun);
        let class = ShapeClass {
            elem: ScalarType::F64,
            rank: 1,
        };
        assert!(
            plan.max_live(class) >= 3,
            "param + two intermediates live at once, got {plan}"
        );
        assert_eq!(plan.slots(), plan.classes().iter().map(|(_, n)| n).sum());
        assert!(format!("{plan}").contains("slots"));
    }

    #[test]
    fn memplan_is_idempotent() {
        let fun = copy_then_update(false);
        let (once, _) = memplan_counted(&fun);
        let (twice, n) = memplan_counted(&once);
        assert_eq!(n, 0);
        assert_eq!(once, twice);
    }
}
