//! The baseline simplification repertoire: dead-code elimination, copy
//! propagation and constant folding, plus their fixed-point combination
//! [`simplify`].
//!
//! Reverse-mode AD by redundant execution deliberately emits code that
//! re-executes enclosing scopes; the paper's claim (§4.1) is that for
//! perfectly-nested scopes those re-executed bindings are dead and are
//! removed by ordinary compiler simplification. The `counted` variants
//! report how many rewrites fired, feeding the pass-statistics layer
//! (`fir-api`'s `PassPipeline`).

use std::collections::{BTreeSet, HashMap};

use fir::free_vars::FreeVars;
use fir::ir::{Atom, BinOp, Body, Const, Exp, Fun, Lambda, Stm, UnOp, VarId};

/// Apply the full simplification pipeline until a fixed point (bounded by a
/// small iteration limit).
pub fn simplify(fun: &Fun) -> Fun {
    let mut cur = fun.clone();
    for _ in 0..8 {
        let folded = constant_fold(&copy_propagation(&cur));
        let next = dead_code_elimination(&folded);
        if next == cur {
            return next;
        }
        cur = next;
    }
    cur
}

// ---------------------------------------------------------------------
// Dead-code elimination
// ---------------------------------------------------------------------

/// Remove bindings whose variables are never used. Statements that merely
/// open nested scopes are themselves removed when all their results are
/// dead; side-effect-free by construction (the IR is pure).
pub fn dead_code_elimination(fun: &Fun) -> Fun {
    dead_code_elimination_counted(fun).0
}

/// [`dead_code_elimination`], also returning the number of removed
/// statements (at any nesting depth).
pub fn dead_code_elimination_counted(fun: &Fun) -> (Fun, usize) {
    let mut removed = 0;
    let body = dce_body(&fun.body, &mut removed);
    (
        Fun {
            name: fun.name.clone(),
            params: fun.params.clone(),
            body,
            ret: fun.ret.clone(),
        },
        removed,
    )
}

fn dce_body(body: &Body, removed: &mut usize) -> Body {
    // Process statements bottom-up, keeping those with at least one live
    // binding.
    let mut live: BTreeSet<VarId> = BTreeSet::new();
    for a in &body.result {
        if let Atom::Var(v) = a {
            live.insert(*v);
        }
    }
    let mut kept: Vec<Stm> = Vec::new();
    for stm in body.stms.iter().rev() {
        let is_live = stm.pat.iter().any(|p| live.contains(&p.var));
        if !is_live {
            *removed += 1;
            continue;
        }
        let exp = dce_exp(&stm.exp, removed);
        for v in exp.free_vars() {
            live.insert(v);
        }
        kept.push(Stm::new(stm.pat.clone(), exp));
    }
    kept.reverse();
    Body::new(kept, body.result.clone())
}

fn dce_lambda(lam: &Lambda, removed: &mut usize) -> Lambda {
    Lambda {
        params: lam.params.clone(),
        body: dce_body(&lam.body, removed),
        ret: lam.ret.clone(),
    }
}

fn dce_exp(e: &Exp, removed: &mut usize) -> Exp {
    match e {
        Exp::If {
            cond,
            then_br,
            else_br,
        } => Exp::If {
            cond: *cond,
            then_br: dce_body(then_br, removed),
            else_br: dce_body(else_br, removed),
        },
        Exp::Loop {
            params,
            index,
            count,
            body,
        } => Exp::Loop {
            params: params.clone(),
            index: *index,
            count: *count,
            body: dce_body(body, removed),
        },
        Exp::Map { lam, args } => Exp::Map {
            lam: dce_lambda(lam, removed),
            args: args.clone(),
        },
        Exp::Reduce { lam, neutral, args } => Exp::Reduce {
            lam: dce_lambda(lam, removed),
            neutral: neutral.clone(),
            args: args.clone(),
        },
        Exp::Scan { lam, neutral, args } => Exp::Scan {
            lam: dce_lambda(lam, removed),
            neutral: neutral.clone(),
            args: args.clone(),
        },
        Exp::Redomap {
            red_lam,
            map_lam,
            neutral,
            args,
        } => Exp::Redomap {
            red_lam: dce_lambda(red_lam, removed),
            map_lam: dce_lambda(map_lam, removed),
            neutral: neutral.clone(),
            args: args.clone(),
        },
        Exp::WithAcc { arrs, lam } => Exp::WithAcc {
            arrs: arrs.clone(),
            lam: dce_lambda(lam, removed),
        },
        other => other.clone(),
    }
}

// ---------------------------------------------------------------------
// Copy propagation
// ---------------------------------------------------------------------

/// Replace uses of variables bound by `let y = x` with `x` directly.
///
/// Scope-correct under shadowing: the `vjp` transformation legally re-emits
/// statements with their original binder ids into sibling scopes, so an
/// alias recorded in one scope must neither survive a rebinding of its name
/// nor leak into sibling scopes. Nested scopes therefore work on a copy of
/// the substitution, and any kept statement removes its binders from it.
pub fn copy_propagation(fun: &Fun) -> Fun {
    copy_propagation_counted(fun).0
}

/// [`copy_propagation`], also returning the number of aliases eliminated.
pub fn copy_propagation_counted(fun: &Fun) -> (Fun, usize) {
    let mut subst: HashMap<VarId, Atom> = HashMap::new();
    let mut count = 0;
    let body = cp_body(&fun.body, &mut subst, &mut count);
    (
        Fun {
            name: fun.name.clone(),
            params: fun.params.clone(),
            body,
            ret: fun.ret.clone(),
        },
        count,
    )
}

fn cp_atom(a: &Atom, subst: &HashMap<VarId, Atom>) -> Atom {
    match a {
        Atom::Var(v) => subst.get(v).copied().unwrap_or(*a),
        c => *c,
    }
}

fn cp_body(body: &Body, subst: &mut HashMap<VarId, Atom>, count: &mut usize) -> Body {
    let mut stms = Vec::new();
    for stm in &body.stms {
        let exp = cp_exp(&stm.exp, subst, count);
        if let Exp::Atom(a) = &exp {
            if stm.pat.len() == 1 {
                subst.insert(stm.pat[0].var, *a);
                *count += 1;
                continue;
            }
        }
        // A kept statement rebinds its pattern: stale aliases for those
        // names (from an enclosing or earlier scope) must not apply to
        // later uses.
        for p in &stm.pat {
            subst.remove(&p.var);
        }
        stms.push(Stm::new(stm.pat.clone(), exp));
    }
    let result = body.result.iter().map(|a| cp_atom(a, subst)).collect();
    Body::new(stms, result)
}

/// Run a nested scope on a copy of the substitution with the scope's own
/// binders removed, so nothing it records leaks to siblings.
fn cp_child_body(
    body: &Body,
    binders: &[VarId],
    subst: &HashMap<VarId, Atom>,
    count: &mut usize,
) -> Body {
    let mut inner = subst.clone();
    for v in binders {
        inner.remove(v);
    }
    cp_body(body, &mut inner, count)
}

fn cp_var(v: VarId, subst: &HashMap<VarId, Atom>) -> VarId {
    match subst.get(&v) {
        Some(Atom::Var(w)) => *w,
        _ => v,
    }
}

fn cp_lambda(lam: &Lambda, subst: &HashMap<VarId, Atom>, count: &mut usize) -> Lambda {
    let binders: Vec<VarId> = lam.params.iter().map(|p| p.var).collect();
    Lambda {
        params: lam.params.clone(),
        body: cp_child_body(&lam.body, &binders, subst, count),
        ret: lam.ret.clone(),
    }
}

fn cp_exp(e: &Exp, subst: &HashMap<VarId, Atom>, count: &mut usize) -> Exp {
    let at = |a: &Atom, s: &HashMap<VarId, Atom>| cp_atom(a, s);
    match e {
        Exp::Atom(a) => Exp::Atom(at(a, subst)),
        Exp::UnOp(op, a) => Exp::UnOp(*op, at(a, subst)),
        Exp::BinOp(op, a, b) => Exp::BinOp(*op, at(a, subst), at(b, subst)),
        Exp::Select { cond, t, f } => Exp::Select {
            cond: at(cond, subst),
            t: at(t, subst),
            f: at(f, subst),
        },
        Exp::Index { arr, idx } => Exp::Index {
            arr: cp_var(*arr, subst),
            idx: idx.iter().map(|a| at(a, subst)).collect(),
        },
        Exp::Update { arr, idx, val } => Exp::Update {
            arr: cp_var(*arr, subst),
            idx: idx.iter().map(|a| at(a, subst)).collect(),
            val: at(val, subst),
        },
        Exp::Len(v) => Exp::Len(cp_var(*v, subst)),
        Exp::Iota(n) => Exp::Iota(at(n, subst)),
        Exp::Replicate { n, val } => Exp::Replicate {
            n: at(n, subst),
            val: at(val, subst),
        },
        Exp::Reverse(v) => Exp::Reverse(cp_var(*v, subst)),
        Exp::Copy(v) => Exp::Copy(cp_var(*v, subst)),
        Exp::If {
            cond,
            then_br,
            else_br,
        } => Exp::If {
            cond: at(cond, subst),
            then_br: cp_child_body(then_br, &[], subst, count),
            else_br: cp_child_body(else_br, &[], subst, count),
        },
        Exp::Loop {
            params,
            index,
            count: loop_count,
            body,
        } => {
            let mut binders: Vec<VarId> = params.iter().map(|(p, _)| p.var).collect();
            binders.push(*index);
            Exp::Loop {
                params: params
                    .iter()
                    .map(|(p, init)| (*p, at(init, subst)))
                    .collect(),
                index: *index,
                count: at(loop_count, subst),
                body: cp_child_body(body, &binders, subst, count),
            }
        }
        Exp::Map { lam, args } => Exp::Map {
            lam: cp_lambda(lam, subst, count),
            args: args.iter().map(|v| cp_var(*v, subst)).collect(),
        },
        Exp::Reduce { lam, neutral, args } => Exp::Reduce {
            lam: cp_lambda(lam, subst, count),
            neutral: neutral.iter().map(|a| at(a, subst)).collect(),
            args: args.iter().map(|v| cp_var(*v, subst)).collect(),
        },
        Exp::Scan { lam, neutral, args } => Exp::Scan {
            lam: cp_lambda(lam, subst, count),
            neutral: neutral.iter().map(|a| at(a, subst)).collect(),
            args: args.iter().map(|v| cp_var(*v, subst)).collect(),
        },
        Exp::Redomap {
            red_lam,
            map_lam,
            neutral,
            args,
        } => Exp::Redomap {
            red_lam: cp_lambda(red_lam, subst, count),
            map_lam: cp_lambda(map_lam, subst, count),
            neutral: neutral.iter().map(|a| at(a, subst)).collect(),
            args: args.iter().map(|v| cp_var(*v, subst)).collect(),
        },
        Exp::Hist {
            op,
            num_bins,
            inds,
            vals,
        } => Exp::Hist {
            op: *op,
            num_bins: at(num_bins, subst),
            inds: cp_var(*inds, subst),
            vals: cp_var(*vals, subst),
        },
        Exp::Scatter { dest, inds, vals } => Exp::Scatter {
            dest: cp_var(*dest, subst),
            inds: cp_var(*inds, subst),
            vals: cp_var(*vals, subst),
        },
        Exp::WithAcc { arrs, lam } => Exp::WithAcc {
            arrs: arrs.iter().map(|v| cp_var(*v, subst)).collect(),
            lam: cp_lambda(lam, subst, count),
        },
        Exp::UpdAcc { acc, idx, val } => Exp::UpdAcc {
            acc: cp_var(*acc, subst),
            idx: idx.iter().map(|a| at(a, subst)).collect(),
            val: at(val, subst),
        },
    }
}

// ---------------------------------------------------------------------
// Constant folding
// ---------------------------------------------------------------------

/// Fold scalar operations on constants and simplify additions with zero
/// and multiplications/divisions with one (which the adjoint code produces
/// in abundance). `x * 0.0` is deliberately *not* folded to `0.0` — that
/// identity is not value-preserving (`inf * 0 = NaN`).
pub fn constant_fold(fun: &Fun) -> Fun {
    constant_fold_counted(fun).0
}

/// [`constant_fold`], also returning the number of folds fired.
pub fn constant_fold_counted(fun: &Fun) -> (Fun, usize) {
    let mut count = 0;
    let body = cf_body(&fun.body, &mut count);
    (
        Fun {
            name: fun.name.clone(),
            params: fun.params.clone(),
            body,
            ret: fun.ret.clone(),
        },
        count,
    )
}

fn cf_body(body: &Body, count: &mut usize) -> Body {
    let stms = body
        .stms
        .iter()
        .map(|s| Stm::new(s.pat.clone(), cf_exp(&s.exp, count)))
        .collect();
    Body::new(stms, body.result.clone())
}

fn cf_lambda(lam: &Lambda, count: &mut usize) -> Lambda {
    Lambda {
        params: lam.params.clone(),
        body: cf_body(&lam.body, count),
        ret: lam.ret.clone(),
    }
}

fn f64_of(a: &Atom) -> Option<f64> {
    match a {
        Atom::Const(Const::F64(x)) => Some(*x),
        _ => None,
    }
}

// The `x if x == 0.0` guards are deliberate: float-literal patterns would
// be equivalent here but read worse for the 0.0/1.0 algebraic identities.
#[allow(clippy::redundant_guards)]
fn cf_exp(e: &Exp, count: &mut usize) -> Exp {
    match e {
        Exp::BinOp(op, a, b) => {
            if let (Some(x), Some(y)) = (f64_of(a), f64_of(b)) {
                let folded = match op {
                    BinOp::Add => Some(x + y),
                    BinOp::Sub => Some(x - y),
                    BinOp::Mul => Some(x * y),
                    BinOp::Div => Some(x / y),
                    BinOp::Min => Some(x.min(y)),
                    BinOp::Max => Some(x.max(y)),
                    BinOp::Pow => Some(x.powf(y)),
                    _ => None,
                };
                if let Some(v) = folded {
                    *count += 1;
                    return Exp::Atom(Atom::f64(v));
                }
            }
            // Note the identities that are deliberately *absent*:
            // `x * 0.0 -> 0.0` is not value-preserving (`inf * 0 = NaN`,
            // `NaN * 0 = NaN`, `-x * 0 = -0.0`), and `x - x`/`x / x` never
            // fold for the same reason. The zero identities are restricted
            // to the operand signs that are *bitwise* exact under
            // round-to-nearest: `x + (-0.0) -> x` holds for every `x`
            // (including `x = -0.0`), but `x + (+0.0)` clears a negative
            // zero's sign bit, so a positive-zero addend never folds.
            // Dually, `x - (+0.0) -> x` (bit pattern 0) is exact while
            // `x - (-0.0)` would clear the sign of `x = -0.0`.
            let neg_zero = (-0.0f64).to_bits();
            let simplified = match (op, f64_of(a), f64_of(b)) {
                (BinOp::Add, Some(x), _) if x.to_bits() == neg_zero => Some(Exp::Atom(*b)),
                (BinOp::Add, _, Some(y)) if y.to_bits() == neg_zero => Some(Exp::Atom(*a)),
                (BinOp::Sub, _, Some(y)) if y.to_bits() == 0 => Some(Exp::Atom(*a)),
                (BinOp::Mul, Some(x), _) if x == 1.0 => Some(Exp::Atom(*b)),
                (BinOp::Mul, _, Some(y)) if y == 1.0 => Some(Exp::Atom(*a)),
                (BinOp::Div, _, Some(y)) if y == 1.0 => Some(Exp::Atom(*a)),
                _ => None,
            };
            match simplified {
                Some(s) => {
                    *count += 1;
                    s
                }
                None => e.clone(),
            }
        }
        Exp::UnOp(op, a) => {
            if let Some(x) = f64_of(a) {
                let folded = match op {
                    UnOp::Neg => Some(-x),
                    UnOp::Exp => Some(x.exp()),
                    UnOp::Log => Some(x.ln()),
                    UnOp::Sqrt => Some(x.sqrt()),
                    UnOp::Sin => Some(x.sin()),
                    UnOp::Cos => Some(x.cos()),
                    UnOp::Abs => Some(x.abs()),
                    _ => None,
                };
                if let Some(v) = folded {
                    *count += 1;
                    return Exp::Atom(Atom::f64(v));
                }
            }
            e.clone()
        }
        Exp::Select { cond, t, f } => match cond {
            Atom::Const(Const::Bool(true)) => {
                *count += 1;
                Exp::Atom(*t)
            }
            Atom::Const(Const::Bool(false)) => {
                *count += 1;
                Exp::Atom(*f)
            }
            _ => e.clone(),
        },
        Exp::If {
            cond,
            then_br,
            else_br,
        } => Exp::If {
            cond: *cond,
            then_br: cf_body(then_br, count),
            else_br: cf_body(else_br, count),
        },
        Exp::Loop {
            params,
            index,
            count: loop_count,
            body,
        } => Exp::Loop {
            params: params.clone(),
            index: *index,
            count: *loop_count,
            body: cf_body(body, count),
        },
        Exp::Map { lam, args } => Exp::Map {
            lam: cf_lambda(lam, count),
            args: args.clone(),
        },
        Exp::Reduce { lam, neutral, args } => Exp::Reduce {
            lam: cf_lambda(lam, count),
            neutral: neutral.clone(),
            args: args.clone(),
        },
        Exp::Scan { lam, neutral, args } => Exp::Scan {
            lam: cf_lambda(lam, count),
            neutral: neutral.clone(),
            args: args.clone(),
        },
        Exp::Redomap {
            red_lam,
            map_lam,
            neutral,
            args,
        } => Exp::Redomap {
            red_lam: cf_lambda(red_lam, count),
            map_lam: cf_lambda(map_lam, count),
            neutral: neutral.clone(),
            args: args.clone(),
        },
        Exp::WithAcc { arrs, lam } => Exp::WithAcc {
            arrs: arrs.clone(),
            lam: cf_lambda(lam, count),
        },
        other => other.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::count_stms;
    use fir::builder::Builder;
    use fir::typecheck::check_fun;
    use fir::types::Type;
    use interp::{Interp, Value};

    fn sum_squares() -> Fun {
        let mut b = Builder::new();
        b.build_fun("sumsq", &[Type::arr_f64(1)], |b, ps| {
            // A dead binding and a copy that the passes should remove.
            let dead = b.map1(Type::arr_f64(1), &[ps[0]], |b, es| {
                vec![b.fadd(es[0].into(), Atom::f64(0.0))]
            });
            let _ = dead;
            let sq = b.map1(Type::arr_f64(1), &[ps[0]], |b, es| {
                let one = b.fmul(es[0].into(), Atom::f64(1.0));
                vec![b.fmul(one, es[0].into())]
            });
            let alias = b.bind1(Type::arr_f64(1), Exp::Atom(Atom::Var(sq)));
            vec![Atom::Var(b.sum(alias))]
        })
    }

    #[test]
    fn simplify_preserves_semantics_and_removes_code() {
        let fun = sum_squares();
        let simplified = simplify(&fun);
        check_fun(&simplified).unwrap();
        assert!(count_stms(&simplified) < count_stms(&fun));
        let args = [Value::from(vec![1.0, 2.0, 3.0])];
        let a = Interp::sequential().run(&fun, &args)[0].as_f64();
        let b = Interp::sequential().run(&simplified, &args)[0].as_f64();
        assert_eq!(a, b);
    }

    #[test]
    fn add_negative_zero_folds_and_positive_zero_does_not() {
        // `x + (-0.0) -> x` is bitwise-exact for every x under
        // round-to-nearest, so the fold fires and the binding vanishes.
        let mut b = Builder::new();
        let neg = b.build_fun("addneg", &[Type::F64], |b, ps| {
            vec![b.fadd(ps[0].into(), Atom::f64(-0.0))]
        });
        let simplified = simplify(&neg);
        check_fun(&simplified).unwrap();
        assert!(
            count_stms(&simplified) < count_stms(&neg),
            "x + (-0.0) must fold away"
        );
        let r = Interp::sequential().run(&simplified, &[Value::F64(-0.0)])[0].as_f64();
        assert_eq!(r.to_bits(), (-0.0f64).to_bits());

        // `x + (+0.0)` clears the sign of x = -0.0, so it must survive.
        let mut b = Builder::new();
        let pos = b.build_fun("addpos", &[Type::F64], |b, ps| {
            vec![b.fadd(ps[0].into(), Atom::f64(0.0))]
        });
        let simplified = simplify(&pos);
        check_fun(&simplified).unwrap();
        assert_eq!(
            count_stms(&simplified),
            count_stms(&pos),
            "x + (+0.0) must NOT fold: it would pin -0.0's sign bit"
        );
        let r = Interp::sequential().run(&simplified, &[Value::F64(-0.0)])[0].as_f64();
        assert_eq!(r.to_bits(), 0u64, "-0.0 + 0.0 is +0.0 in hardware");
    }

    #[test]
    fn dce_removes_redundant_forward_sweep_of_perfect_nests() {
        // vjp of a perfect map nest re-executes the primal map; after DCE the
        // primal result is only computed once per scope that needs it.
        let mut b = Builder::new();
        let fun = b.build_fun("nest", &[Type::arr_f64(2)], |b, ps| {
            let out = b.map1(Type::arr_f64(2), &[ps[0]], |b, rows| {
                let r = b.map1(Type::arr_f64(1), &[rows[0]], |b, es| {
                    vec![b.fmul(es[0].into(), es[0].into())]
                });
                vec![Atom::Var(r)]
            });
            let sums = b.map1(Type::arr_f64(1), &[out], |b, rs| {
                vec![Atom::Var(b.sum(rs[0]))]
            });
            vec![Atom::Var(b.sum(sums))]
        });
        let dfun = futhark_ad::vjp(&fun);
        let simplified = simplify(&dfun);
        check_fun(&simplified).unwrap();
        assert!(count_stms(&simplified) <= count_stms(&dfun));
        // Semantics preserved.
        let args = [
            Value::Arr(interp::Array::from_f64(
                vec![2, 2],
                vec![1.0, 2.0, 3.0, 4.0],
            )),
            Value::F64(1.0),
        ];
        let a = Interp::sequential().run(&dfun, &args);
        let b2 = Interp::sequential().run(&simplified, &args);
        assert_eq!(a[1].as_arr().f64s(), b2[1].as_arr().f64s());
    }

    #[test]
    fn constant_folding_collapses_identities() {
        let mut b = Builder::new();
        let fun = b.build_fun("ids", &[Type::F64], |b, ps| {
            let x = Atom::Var(ps[0]);
            let a = b.fadd(x, Atom::f64(0.0));
            let m = b.fmul(a, Atom::f64(1.0));
            let z = b.fmul(m, Atom::f64(0.0));
            let c = b.fadd(Atom::f64(2.0), Atom::f64(3.0));
            let t = b.fadd(z, c);
            vec![b.fadd(t, m)]
        });
        let simplified = simplify(&fun);
        check_fun(&simplified).unwrap();
        let out = Interp::sequential().run(&simplified, &[Value::F64(7.0)]);
        assert_eq!(out[0].as_f64(), 12.0);
        assert!(count_stms(&simplified) < count_stms(&fun));
    }

    #[test]
    fn counted_passes_report_their_rewrites() {
        let fun = sum_squares();
        let (_, copies) = copy_propagation_counted(&fun);
        assert!(copies >= 1, "the alias binding must be propagated");
        let (folded, folds) = constant_fold_counted(&copy_propagation(&fun));
        assert!(folds >= 1, "the *1.0 identity must fold");
        let (_, removed) = dead_code_elimination_counted(&folded);
        assert!(removed >= 1, "the dead map must be removed");
    }
}
