//! Per-pass optimization statistics.
//!
//! Every pass has a `*_counted` variant returning how many rewrites fired;
//! [`run_pass`] wraps one application with before/after statement counts so
//! pipelines (`fir-api`'s `PassPipeline`) can report exactly what the
//! optimizer did to each function.

use fir::ir::Fun;

use crate::count_stms;

/// The outcome of applying one pass to one function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PassRun {
    /// The pass name (e.g. `"fusion"`).
    pub pass: &'static str,
    /// Number of rewrites the pass performed (pass-specific unit: folds,
    /// merged statements, fusions, hoists, removals).
    pub rewrites: usize,
    /// Statements (at all nesting depths) before the pass.
    pub stms_before: usize,
    /// Statements after the pass.
    pub stms_after: usize,
    /// Wall time the pass took, nanoseconds.
    pub nanos: u64,
}

impl PassRun {
    /// Statements removed by this run (saturating; passes like hoisting
    /// move statements rather than removing them).
    pub fn stms_removed(&self) -> usize {
        self.stms_before.saturating_sub(self.stms_after)
    }
}

/// Apply a counted pass to `fun`, recording before/after statement counts.
pub fn run_pass(
    pass: &'static str,
    apply: impl FnOnce(&Fun) -> (Fun, usize),
    fun: &Fun,
) -> (Fun, PassRun) {
    let stms_before = count_stms(fun);
    let start = std::time::Instant::now();
    let (out, rewrites) = apply(fun);
    let nanos = start.elapsed().as_nanos() as u64;
    let stms_after = count_stms(&out);
    (
        out,
        PassRun {
            pass,
            rewrites,
            stms_before,
            stms_after,
            nanos,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use fir::builder::Builder;
    use fir::ir::Atom;
    use fir::types::Type;

    #[test]
    fn run_pass_reports_counts() {
        let mut b = Builder::new();
        let fun = b.build_fun("f", &[Type::F64], |b, ps| {
            let _dead = b.fadd(ps[0].into(), Atom::f64(1.0));
            vec![b.fmul(ps[0].into(), ps[0].into())]
        });
        let (out, run) = run_pass("dce", crate::dead_code_elimination_counted, &fun);
        assert_eq!(run.pass, "dce");
        assert_eq!(run.stms_before, 2);
        assert_eq!(run.stms_after, 1);
        assert_eq!(run.rewrites, 1);
        assert_eq!(run.stms_removed(), 1);
        assert_eq!(crate::count_stms(&out), 1);
    }
}
