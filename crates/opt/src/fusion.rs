//! Producer–consumer SOAC fusion.
//!
//! Two rewrites, applied wherever a `map`'s outputs are consumed by exactly
//! one later SOAC in the same body (and nowhere else):
//!
//! * **map–map (vertical) fusion** — `map g (map f xs)` becomes
//!   `map (g ∘ f) xs`: the producer's body is inlined ahead of the
//!   consumer's, the intermediate arrays are never materialized.
//! * **map–reduce fusion** — `reduce op ne (map f xs)` becomes the fused
//!   [`Exp::Redomap`] `redomap op f ne xs`, the paper's *redomap*. A `map`
//!   producing into an existing `redomap`'s map part fuses the same way, so
//!   chains collapse over the fixpoint iterations.
//!
//! Fusion never duplicates work: it fires only when *every* use of every
//! produced array is an element-argument of the single consumer (uses as a
//! lambda capture, in a neutral element, in a body result, or in any other
//! statement block the rewrite). Per element the fused program executes the
//! same scalar operations in the same order as the unfused one, and the
//! backends chunk `redomap` exactly like `reduce`, so results are bitwise
//! identical in every configuration.
//!
//! A third rewrite, **replicate–map fusion**, drops `map` (and `redomap`)
//! arguments that are visibly `replicate n v`: the corresponding lambda
//! parameter becomes a binding of `v` (a capture), the element is never
//! indexed, and once the replicate has no other use DCE erases it together
//! with the `length` that fed it. The adjoint code reverse-mode AD emits
//! broadcasts seeds this way in every `map` rule, so this fires all over
//! derived functions.

use std::collections::HashMap;

use fir::builder::Builder;
use fir::free_vars::FreeVars;
use fir::ir::{Atom, Body, Exp, Fun, Lambda, Param, Stm, VarId};
use fir::rename::Renamer;
use fir::types::Type;

/// Apply producer–consumer fusion everywhere in `fun`.
pub fn fuse_soacs(fun: &Fun) -> Fun {
    fuse_soacs_counted(fun).0
}

/// [`fuse_soacs`], also returning the number of fusions performed.
///
/// Fusion counts variable occurrences by raw `VarId`, so shadowed binders
/// are alpha-renamed to unique names first (shadowing would only ever
/// over-count and block fusions, but renaming keeps the pass effective on
/// `vjp`-produced IR).
pub fn fuse_soacs_counted(fun: &Fun) -> (Fun, usize) {
    let renamed;
    let fun = if fir::rename::has_unique_binders(fun) {
        fun
    } else {
        renamed = fir::rename::uniquify_fun(fun);
        &renamed
    };
    let mut cx = Fuser {
        b: Builder::for_fun(fun),
        count: 0,
        repl: Vec::new(),
    };
    let body = cx.body(&fun.body);
    (
        Fun {
            name: fun.name.clone(),
            params: fun.params.clone(),
            body,
            ret: fun.ret.clone(),
        },
        cx.count,
    )
}

struct Fuser {
    b: Builder,
    count: usize,
    /// Scope stack of visible `let v = replicate n val` bindings
    /// (`v -> val`), for replicate–map fusion.
    repl: Vec<HashMap<VarId, Atom>>,
}

impl Fuser {
    /// Rewrite a body: fuse in nested scopes first, then repeatedly fuse
    /// producer/consumer pairs among this body's own statements.
    fn body(&mut self, body: &Body) -> Body {
        self.repl.push(HashMap::new());
        let mut stms: Vec<Stm> = Vec::with_capacity(body.stms.len());
        for s in &body.stms {
            let exp = self.exp(&s.exp);
            if let (Exp::Replicate { val, .. }, [p]) = (&exp, &s.pat[..]) {
                let val = *val;
                self.repl
                    .last_mut()
                    .expect("scope pushed")
                    .insert(p.var, val);
            }
            stms.push(Stm::new(s.pat.clone(), exp));
        }
        self.repl.pop();
        while let Some(next) = self.fuse_once(&stms, &body.result) {
            stms = next;
            self.count += 1;
        }
        Body::new(stms, body.result.clone())
    }

    fn replicated_as(&self, v: VarId) -> Option<Atom> {
        self.repl
            .iter()
            .rev()
            .find_map(|scope| scope.get(&v).copied())
    }

    /// Replicate–map fusion: drop arguments that are visibly `replicate`,
    /// re-binding their lambda parameters to the replicated value. The
    /// *first* argument is always kept — it supplies the map's iteration
    /// count on both backends, and the replicate's count need not match the
    /// other arguments' lengths. Only scalar-element replicates fuse: the
    /// rewrite moves the read of the replicated value to the map's
    /// position, and an array-valued replicand could be consumed
    /// (update/scatter) in between.
    fn strip_replicate_args(&mut self, lam: Lambda, args: Vec<VarId>) -> (Lambda, Vec<VarId>) {
        let vals: Vec<Option<Atom>> = args
            .iter()
            .zip(&lam.params)
            .enumerate()
            .map(|(i, (v, p))| {
                if i > 0 && p.ty.is_scalar() {
                    self.replicated_as(*v)
                } else {
                    None
                }
            })
            .collect();
        let eliminable = vals.iter().filter(|v| v.is_some()).count();
        if eliminable == 0 || lam.params.len() != args.len() {
            return (lam, args);
        }
        let mut params = Vec::new();
        let mut kept_args = Vec::new();
        let mut aliases = Vec::new();
        for ((param, arg), val) in lam.params.iter().zip(&args).zip(&vals) {
            match val {
                Some(v) => {
                    aliases.push(Stm::new(vec![*param], Exp::Atom(*v)));
                    self.count += 1;
                }
                None => {
                    params.push(*param);
                    kept_args.push(*arg);
                }
            }
        }
        let mut stms = aliases;
        stms.extend(lam.body.stms);
        (
            Lambda {
                params,
                body: Body::new(stms, lam.body.result),
                ret: lam.ret,
            },
            kept_args,
        )
    }

    fn lambda(&mut self, lam: &Lambda) -> Lambda {
        Lambda {
            params: lam.params.clone(),
            body: self.body(&lam.body),
            ret: lam.ret.clone(),
        }
    }

    fn exp(&mut self, e: &Exp) -> Exp {
        match e {
            Exp::If {
                cond,
                then_br,
                else_br,
            } => Exp::If {
                cond: *cond,
                then_br: self.body(then_br),
                else_br: self.body(else_br),
            },
            Exp::Loop {
                params,
                index,
                count,
                body,
            } => Exp::Loop {
                params: params.clone(),
                index: *index,
                count: *count,
                body: self.body(body),
            },
            Exp::Map { lam, args } => {
                let lam = self.lambda(lam);
                let (lam, args) = self.strip_replicate_args(lam, args.clone());
                Exp::Map { lam, args }
            }
            Exp::Reduce { lam, neutral, args } => Exp::Reduce {
                lam: self.lambda(lam),
                neutral: neutral.clone(),
                args: args.clone(),
            },
            Exp::Scan { lam, neutral, args } => Exp::Scan {
                lam: self.lambda(lam),
                neutral: neutral.clone(),
                args: args.clone(),
            },
            Exp::Redomap {
                red_lam,
                map_lam,
                neutral,
                args,
            } => {
                let red_lam = self.lambda(red_lam);
                let map_lam = self.lambda(map_lam);
                let (map_lam, args) = self.strip_replicate_args(map_lam, args.clone());
                Exp::Redomap {
                    red_lam,
                    map_lam,
                    neutral: neutral.clone(),
                    args,
                }
            }
            Exp::WithAcc { arrs, lam } => Exp::WithAcc {
                arrs: arrs.clone(),
                lam: self.lambda(lam),
            },
            other => other.clone(),
        }
    }

    /// Find one fusable producer/consumer pair in `stms` and rewrite it.
    ///
    /// Occurrence counts are recomputed after every rewrite; the cost is
    /// quadratic-ish in the body size, which is fine for a compile-once,
    /// fingerprint-cached pipeline (the largest AD-derived workload bodies
    /// are on the order of a thousand statements).
    fn fuse_once(&mut self, stms: &[Stm], result: &[Atom]) -> Option<Vec<Stm>> {
        let uses = occurrence_counts(stms, result);
        // Everything each statement consumes (at any nesting depth),
        // computed once per scan — the guard below checks it per
        // candidate pair, and walking every subtree per pair would make
        // the scan cubic on big AD-derived bodies.
        let consumed_by_stm: Vec<std::collections::HashSet<VarId>> = stms
            .iter()
            .map(|s| {
                let mut consumed = std::collections::HashSet::new();
                crate::cse::consumed_in_exp(&s.exp, &mut consumed);
                consumed
            })
            .collect();
        for (i, prod) in stms.iter().enumerate() {
            let Exp::Map {
                lam: p_lam,
                args: p_args,
            } = &prod.exp
            else {
                continue;
            };
            if lambda_mentions_acc(p_lam) || prod.pat.iter().any(|p| p.ty.is_acc()) {
                continue;
            }
            // The first later statement using any produced array.
            let produced: HashMap<VarId, usize> = prod
                .pat
                .iter()
                .enumerate()
                .map(|(j, p)| (p.var, j))
                .collect();
            let Some(j) = stms
                .iter()
                .enumerate()
                .skip(i + 1)
                .find_map(|(j, s)| exp_uses_any(&s.exp, &produced).then_some(j))
            else {
                continue;
            };
            // Fusing moves every read the producer performs — its argument
            // arrays *and* its lambda's captured free variables — from
            // position `i` to position `j`. A statement in between that
            // *consumes* any of them (update/scatter destinations may be
            // moved out of their binding by the backends' uniqueness
            // analysis) would then be read after consumption — blocked.
            let mut moved_reads = p_lam.free_vars();
            moved_reads.extend(p_args.iter().copied());
            // Consumption may hide at any depth of an intervening
            // statement (an update inside a branch or loop body, a
            // withacc over the array), so the precomputed sets recurse
            // like CSE's collector does.
            let input_consumed_between = consumed_by_stm[i + 1..j]
                .iter()
                .any(|consumed| consumed.iter().any(|v| moved_reads.contains(v)));
            if input_consumed_between {
                continue;
            }
            let cons = &stms[j];
            let Some(fused_exp) = self.try_fuse(prod, p_lam, p_args, &produced, cons, &uses) else {
                continue;
            };
            let mut next: Vec<Stm> = stms.to_vec();
            next[j] = Stm::new(cons.pat.clone(), fused_exp);
            next.remove(i);
            return Some(next);
        }
        None
    }

    /// Fuse `prod` into the consumer statement, if the consumer is a
    /// fusable SOAC and every use of every produced array is one of its
    /// element arguments.
    fn try_fuse(
        &mut self,
        prod: &Stm,
        p_lam: &Lambda,
        p_args: &[VarId],
        produced: &HashMap<VarId, usize>,
        cons: &Stm,
        uses: &HashMap<VarId, usize>,
    ) -> Option<Exp> {
        let consumable = |c_args: &[VarId]| {
            prod.pat.iter().all(|p| {
                let total = uses.get(&p.var).copied().unwrap_or(0);
                let as_elem = c_args.iter().filter(|a| **a == p.var).count();
                total == as_elem
            })
        };
        match &cons.exp {
            Exp::Map {
                lam: c_lam,
                args: c_args,
            } => {
                if lambda_mentions_acc(c_lam) || !consumable(c_args) {
                    return None;
                }
                let (lam, args) = self.fuse_map_stage(p_lam, p_args, produced, c_lam, c_args);
                Some(Exp::Map { lam, args })
            }
            Exp::Reduce {
                lam: red_lam,
                neutral,
                args: c_args,
            } => {
                if lambda_mentions_acc(red_lam) || !consumable(c_args) {
                    return None;
                }
                // Synthesize the identity map stage of a redomap, then fuse
                // the producer into it like any other map.
                let k = c_args.len();
                let elem_tys: Vec<Type> = red_lam.params[..k].iter().map(|p| p.ty).collect();
                let id_params: Vec<Param> = elem_tys
                    .iter()
                    .map(|t| Param::new(self.b.fresh(*t), *t))
                    .collect();
                let id_lam = Lambda {
                    body: Body::new(
                        Vec::new(),
                        id_params.iter().map(|p| Atom::Var(p.var)).collect(),
                    ),
                    params: id_params,
                    ret: elem_tys,
                };
                let (map_lam, args) = self.fuse_map_stage(p_lam, p_args, produced, &id_lam, c_args);
                Some(Exp::Redomap {
                    red_lam: red_lam.clone(),
                    map_lam,
                    neutral: neutral.clone(),
                    args,
                })
            }
            Exp::Redomap {
                red_lam,
                map_lam,
                neutral,
                args: c_args,
            } => {
                if lambda_mentions_acc(map_lam) || !consumable(c_args) {
                    return None;
                }
                let (map_lam, args) = self.fuse_map_stage(p_lam, p_args, produced, map_lam, c_args);
                Some(Exp::Redomap {
                    red_lam: red_lam.clone(),
                    map_lam,
                    neutral: neutral.clone(),
                    args,
                })
            }
            _ => None,
        }
    }

    /// The core inlining step: compose a producer `map f p_args` into a
    /// consumer map stage `(c_lam, c_args)`. Consumer parameters bound to
    /// produced arrays are re-bound to the producer's (alpha-renamed)
    /// results; the producer's inputs become additional arguments
    /// (de-duplicated where possible). Copy propagation cleans up the
    /// introduced aliases on the next pipeline iteration.
    ///
    /// Argument order preserves the iteration count: both backends take a
    /// map's length from its *first* array argument, so when the consumer's
    /// first argument is a produced array (length = the producer's length =
    /// the length of the producer's first argument), the producer's
    /// arguments lead the fused list; otherwise the consumer's first
    /// argument is retained in front. Secondary arguments longer than the
    /// iteration count are legal and must stay ignored, exactly as before
    /// fusion.
    fn fuse_map_stage(
        &mut self,
        p_lam: &Lambda,
        p_args: &[VarId],
        produced: &HashMap<VarId, usize>,
        c_lam: &Lambda,
        c_args: &[VarId],
    ) -> (Lambda, Vec<VarId>) {
        let producer_first = produced.contains_key(&c_args[0]);
        let mut fused_params: Vec<Param> = Vec::new();
        let mut fused_args: Vec<VarId> = Vec::new();
        let mut param_of_arg: HashMap<VarId, VarId> = HashMap::new();
        let mut ren = Renamer::new();
        let add_producer_args =
            |cx: &mut Fuser,
             ren: &mut Renamer,
             fused_params: &mut Vec<Param>,
             fused_args: &mut Vec<VarId>,
             param_of_arg: &mut HashMap<VarId, VarId>| {
                for (pparam, parg) in p_lam.params.iter().zip(p_args) {
                    match param_of_arg.get(parg) {
                        Some(v) => ren.insert(pparam.var, *v),
                        None => {
                            let v = cx.b.fresh(pparam.ty);
                            param_of_arg.insert(*parg, v);
                            fused_params.push(Param::new(v, pparam.ty));
                            fused_args.push(*parg);
                            ren.insert(pparam.var, v);
                        }
                    }
                }
            };
        if producer_first {
            add_producer_args(
                self,
                &mut ren,
                &mut fused_params,
                &mut fused_args,
                &mut param_of_arg,
            );
        }
        // Retained consumer arguments: keep their original parameters. An
        // argument already supplied by the producer group (producer-first
        // order) is not passed twice — its consumer parameter becomes an
        // alias of the producer-group parameter instead.
        let mut retained_aliases: Vec<Stm> = Vec::new();
        for (param, arg) in c_lam.params.iter().zip(c_args) {
            if produced.contains_key(arg) {
                continue;
            }
            if let Some(v) = param_of_arg.get(arg) {
                if producer_first {
                    retained_aliases.push(Stm::new(vec![*param], Exp::Atom(Atom::Var(*v))));
                    continue;
                }
            }
            fused_params.push(*param);
            fused_args.push(*arg);
            param_of_arg.entry(*arg).or_insert(param.var);
        }
        if !producer_first {
            add_producer_args(
                self,
                &mut ren,
                &mut fused_params,
                &mut fused_args,
                &mut param_of_arg,
            );
        }
        let p_body = ren.body(&mut self.b, &p_lam.body);
        let mut stms = p_body.stms;
        stms.extend(retained_aliases);
        for (cparam, carg) in c_lam.params.iter().zip(c_args) {
            if let Some(j) = produced.get(carg) {
                stms.push(Stm::new(vec![*cparam], Exp::Atom(p_body.result[*j])));
            }
        }
        stms.extend(c_lam.body.stms.iter().cloned());
        (
            Lambda {
                params: fused_params,
                body: Body::new(stms, c_lam.body.result.clone()),
                ret: c_lam.ret.clone(),
            },
            fused_args,
        )
    }
}

/// Whether a lambda touches accumulators anywhere (params, results, or any
/// nested accumulator update) — such SOACs have effects on shared state and
/// are never fused.
fn lambda_mentions_acc(lam: &Lambda) -> bool {
    fn exp(e: &Exp) -> bool {
        match e {
            Exp::UpdAcc { .. } | Exp::WithAcc { .. } => true,
            Exp::If {
                then_br, else_br, ..
            } => body(then_br) || body(else_br),
            Exp::Loop { body: b, .. } => body(b),
            Exp::Map { lam, .. } | Exp::Reduce { lam, .. } | Exp::Scan { lam, .. } => {
                lambda_mentions_acc(lam)
            }
            Exp::Redomap {
                red_lam, map_lam, ..
            } => lambda_mentions_acc(red_lam) || lambda_mentions_acc(map_lam),
            _ => false,
        }
    }
    fn body(b: &Body) -> bool {
        b.stms
            .iter()
            .any(|s| s.pat.iter().any(|p| p.ty.is_acc()) || exp(&s.exp))
    }
    lam.params.iter().any(|p| p.ty.is_acc())
        || lam.ret.iter().any(|t| t.is_acc())
        || body(&lam.body)
}

/// Occurrence counts of every variable used (at any depth) in the given
/// statements and result atoms. Binding occurrences do not count; variable
/// names are globally unique in builder-produced IR, so no shadowing
/// adjustment is needed.
fn occurrence_counts(stms: &[Stm], result: &[Atom]) -> HashMap<VarId, usize> {
    let mut counts = HashMap::new();
    for s in stms {
        count_exp(&s.exp, &mut counts);
    }
    for a in result {
        count_atom(a, &mut counts);
    }
    counts
}

fn count_var(v: VarId, counts: &mut HashMap<VarId, usize>) {
    *counts.entry(v).or_default() += 1;
}

fn count_atom(a: &Atom, counts: &mut HashMap<VarId, usize>) {
    if let Atom::Var(v) = a {
        count_var(*v, counts);
    }
}

fn count_body(b: &Body, counts: &mut HashMap<VarId, usize>) {
    for s in &b.stms {
        count_exp(&s.exp, counts);
    }
    for a in &b.result {
        count_atom(a, counts);
    }
}

fn count_lambda(l: &Lambda, counts: &mut HashMap<VarId, usize>) {
    count_body(&l.body, counts);
}

fn count_exp(e: &Exp, counts: &mut HashMap<VarId, usize>) {
    match e {
        Exp::Atom(a) | Exp::UnOp(_, a) | Exp::Iota(a) => count_atom(a, counts),
        Exp::BinOp(_, a, b) => {
            count_atom(a, counts);
            count_atom(b, counts);
        }
        Exp::Select { cond, t, f } => {
            count_atom(cond, counts);
            count_atom(t, counts);
            count_atom(f, counts);
        }
        Exp::Index { arr, idx } => {
            count_var(*arr, counts);
            idx.iter().for_each(|a| count_atom(a, counts));
        }
        Exp::Update { arr, idx, val } => {
            count_var(*arr, counts);
            idx.iter().for_each(|a| count_atom(a, counts));
            count_atom(val, counts);
        }
        Exp::Len(v) | Exp::Reverse(v) | Exp::Copy(v) => count_var(*v, counts),
        Exp::Replicate { n, val } => {
            count_atom(n, counts);
            count_atom(val, counts);
        }
        Exp::If {
            cond,
            then_br,
            else_br,
        } => {
            count_atom(cond, counts);
            count_body(then_br, counts);
            count_body(else_br, counts);
        }
        Exp::Loop {
            params,
            count,
            body,
            ..
        } => {
            for (_, init) in params {
                count_atom(init, counts);
            }
            count_atom(count, counts);
            count_body(body, counts);
        }
        Exp::Map { lam, args } => {
            count_lambda(lam, counts);
            args.iter().for_each(|v| count_var(*v, counts));
        }
        Exp::Reduce { lam, neutral, args } | Exp::Scan { lam, neutral, args } => {
            count_lambda(lam, counts);
            neutral.iter().for_each(|a| count_atom(a, counts));
            args.iter().for_each(|v| count_var(*v, counts));
        }
        Exp::Redomap {
            red_lam,
            map_lam,
            neutral,
            args,
        } => {
            count_lambda(red_lam, counts);
            count_lambda(map_lam, counts);
            neutral.iter().for_each(|a| count_atom(a, counts));
            args.iter().for_each(|v| count_var(*v, counts));
        }
        Exp::Hist {
            num_bins,
            inds,
            vals,
            ..
        } => {
            count_atom(num_bins, counts);
            count_var(*inds, counts);
            count_var(*vals, counts);
        }
        Exp::Scatter { dest, inds, vals } => {
            count_var(*dest, counts);
            count_var(*inds, counts);
            count_var(*vals, counts);
        }
        Exp::WithAcc { arrs, lam } => {
            arrs.iter().for_each(|v| count_var(*v, counts));
            count_lambda(lam, counts);
        }
        Exp::UpdAcc { acc, idx, val } => {
            count_var(*acc, counts);
            idx.iter().for_each(|a| count_atom(a, counts));
            count_atom(val, counts);
        }
    }
}

/// Whether an expression uses any of the given variables (at any depth).
fn exp_uses_any(e: &Exp, vars: &HashMap<VarId, usize>) -> bool {
    let mut counts = HashMap::new();
    count_exp(e, &mut counts);
    vars.keys().any(|v| counts.contains_key(v))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::count_stms;
    use fir::typecheck::check_fun;
    use fir::types::Type;
    use interp::{Interp, Value};

    /// sum (map (+1) (map (*2) xs)) — both fusions should fire.
    fn chain() -> Fun {
        let mut b = Builder::new();
        b.build_fun("chain", &[Type::arr_f64(1)], |b, ps| {
            let doubled = b.map1(Type::arr_f64(1), &[ps[0]], |b, es| {
                vec![b.fmul(es[0].into(), Atom::f64(2.0))]
            });
            let shifted = b.map1(Type::arr_f64(1), &[doubled], |b, es| {
                vec![b.fadd(es[0].into(), Atom::f64(1.0))]
            });
            vec![b.sum(shifted).into()]
        })
    }

    #[test]
    fn map_map_and_map_reduce_fuse_to_a_single_redomap() {
        let fun = chain();
        let (fused, n) = fuse_soacs_counted(&fun);
        assert_eq!(n, 2, "map-map then map-reduce fusion must both fire");
        check_fun(&fused).unwrap();
        let kinds: Vec<&str> = fused.body.stms.iter().map(|s| s.exp.kind()).collect();
        assert_eq!(kinds, vec!["redomap"], "chain must collapse to one redomap");
        // Fusion introduces parameter aliases; copy propagation cleans
        // them up, leaving strictly less code than the unfused chain.
        assert!(count_stms(&crate::simplify(&fused)) < count_stms(&fun));
        let args = [Value::from(vec![1.0, 2.0, 3.0])];
        let a = Interp::sequential().run(&fun, &args)[0].as_f64();
        let b = Interp::sequential().run(&fused, &args)[0].as_f64();
        assert_eq!(a.to_bits(), b.to_bits());
    }

    #[test]
    fn multi_use_producers_are_not_fused() {
        // The intermediate is consumed by the reduce AND returned: fusing
        // would duplicate work (and drop a result), so nothing may fire.
        let mut b = Builder::new();
        let fun = b.build_fun("shared", &[Type::arr_f64(1)], |b, ps| {
            let doubled = b.map1(Type::arr_f64(1), &[ps[0]], |b, es| {
                vec![b.fmul(es[0].into(), Atom::f64(2.0))]
            });
            let s = b.sum(doubled);
            vec![Atom::Var(doubled), s.into()]
        });
        let (fused, n) = fuse_soacs_counted(&fun);
        assert_eq!(n, 0);
        assert_eq!(fused, fun);
    }

    #[test]
    fn fusion_dedups_shared_arguments() {
        // map2 (\d x -> d + x) (map (*2) xs) xs: xs feeds both the producer
        // and the consumer; the fused map must take xs exactly once.
        let mut b = Builder::new();
        let fun = b.build_fun("shared_arg", &[Type::arr_f64(1)], |b, ps| {
            let doubled = b.map1(Type::arr_f64(1), &[ps[0]], |b, es| {
                vec![b.fmul(es[0].into(), Atom::f64(2.0))]
            });
            let combined = b.map1(Type::arr_f64(1), &[doubled, ps[0]], |b, es| {
                vec![b.fadd(es[0].into(), es[1].into())]
            });
            vec![Atom::Var(combined)]
        });
        let (fused, n) = fuse_soacs_counted(&fun);
        assert_eq!(n, 1);
        check_fun(&fused).unwrap();
        match &fused.body.stms[0].exp {
            Exp::Map { args, .. } => assert_eq!(args.len(), 1, "xs must be de-duplicated"),
            other => panic!("expected fused map, got {}", other.kind()),
        }
        let args = [Value::from(vec![1.0, 2.5, -3.0])];
        let a = Interp::sequential().run(&fun, &args);
        let b2 = Interp::sequential().run(&fused, &args);
        assert_eq!(a[0].as_arr().f64s(), b2[0].as_arr().f64s());
    }

    #[test]
    fn fusion_never_moves_reads_past_a_consuming_update() {
        // `let m = map f A; let A2 = update A ...; let r = reduce + m`:
        // fusing m into the reduce would read A *after* the update consumed
        // it (both backends move same-scope update destinations out of
        // their binding), crashing a valid program. Must not fire.
        let mut b = Builder::new();
        let fun = b.build_fun("consume", &[Type::arr_f64(1)], |b, ps| {
            let m = b.map1(Type::arr_f64(1), &[ps[0]], |b, es| {
                vec![b.fmul(es[0].into(), Atom::f64(2.0))]
            });
            let a2 = b.update(ps[0], &[Atom::i64(0)], Atom::f64(9.0));
            let r = b.sum(m);
            let s2 = b.sum(a2);
            vec![b.fadd(r.into(), s2.into())]
        });
        let (fused, n) = fuse_soacs_counted(&fun);
        assert_eq!(n, 0, "fusion across the consuming update must be blocked");
        check_fun(&fused).unwrap();
        let args = [Value::from(vec![1.0, 2.0])];
        let a = Interp::sequential().run(&fun, &args)[0].as_f64();
        let b2 = Interp::sequential().run(&fused, &args)[0].as_f64();
        assert_eq!(a.to_bits(), b2.to_bits());
    }

    #[test]
    fn fusion_never_moves_reads_past_a_consumption_nested_in_a_branch() {
        // Like fusion_never_moves_reads_past_a_consuming_update, but the
        // update of A hides inside an `if` between producer and consumer:
        // the guard must look through nested bodies, not just top-level
        // statement heads.
        let mut b = Builder::new();
        let fun = b.build_fun("consume_in_if", &[Type::arr_f64(1), Type::BOOL], |b, ps| {
            let (xs, c) = (ps[0], ps[1]);
            let m = b.map1(Type::arr_f64(1), &[xs], |b, es| {
                vec![b.fmul(es[0].into(), Atom::f64(2.0))]
            });
            let branched = b.if_(
                c.into(),
                &[Type::arr_f64(1)],
                |b| {
                    let a2 = b.update(xs, &[Atom::i64(0)], Atom::f64(9.0));
                    vec![a2.into()]
                },
                |b| {
                    let cp = b.copy(xs);
                    vec![cp.into()]
                },
            );
            let r = b.sum(m);
            let s2 = b.sum(branched[0]);
            vec![b.fadd(r.into(), s2.into())]
        });
        let (fused, n) = fuse_soacs_counted(&fun);
        assert_eq!(
            n, 0,
            "fusion across a branch-nested consumption must be blocked"
        );
        check_fun(&fused).unwrap();
        for c in [true, false] {
            let args = [Value::from(vec![1.0, 2.0]), Value::Bool(c)];
            let a = Interp::sequential().run(&fun, &args)[0].as_f64();
            let b2 = Interp::sequential().run(&fused, &args)[0].as_f64();
            assert_eq!(a.to_bits(), b2.to_bits());
        }
    }

    #[test]
    fn fusion_never_moves_captured_reads_past_a_consuming_update() {
        // The producer's lambda *captures* B (reads B[0]) rather than
        // taking it as a map argument; an update of B between producer and
        // consumer must still block fusion.
        let mut b = Builder::new();
        let fun = b.build_fun("capture", &[Type::arr_f64(1), Type::arr_f64(1)], |b, ps| {
            let (xs, bs) = (ps[0], ps[1]);
            let m = b.map1(Type::arr_f64(1), &[xs], |b, es| {
                let b0 = b.index(bs, &[Atom::i64(0)]);
                vec![b.fadd(es[0].into(), b0.into())]
            });
            let b2 = b.update(bs, &[Atom::i64(0)], Atom::f64(9.0));
            let s = b.sum(m);
            let s2 = b.sum(b2);
            vec![b.fadd(s.into(), s2.into())]
        });
        let (fused, n) = fuse_soacs_counted(&fun);
        assert_eq!(n, 0, "fusion past the consuming update must be blocked");
        check_fun(&fused).unwrap();
        let args = [Value::from(vec![1.0, 2.0]), Value::from(vec![4.0, 5.0])];
        let a = Interp::sequential().run(&fun, &args)[0].as_f64();
        let b2 = Interp::sequential().run(&fused, &args)[0].as_f64();
        assert_eq!(a.to_bits(), b2.to_bits());
    }

    #[test]
    fn fusion_reaches_nested_bodies() {
        // The fusable chain lives inside an outer map over rows.
        let mut b = Builder::new();
        let fun = b.build_fun("nested", &[Type::arr_f64(2)], |b, ps| {
            let sums = b.map1(Type::arr_f64(1), &[ps[0]], |b, rows| {
                let sq = b.map1(Type::arr_f64(1), &[rows[0]], |b, es| {
                    vec![b.fmul(es[0].into(), es[0].into())]
                });
                vec![b.sum(sq).into()]
            });
            vec![b.sum(sums).into()]
        });
        let (fused, n) = fuse_soacs_counted(&fun);
        assert!(n >= 1, "inner map-reduce must fuse");
        check_fun(&fused).unwrap();
        let args = [Value::Arr(interp::Array::from_f64(
            vec![2, 3],
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0],
        ))];
        let a = Interp::sequential().run(&fun, &args)[0].as_f64();
        let b2 = Interp::sequential().run(&fused, &args)[0].as_f64();
        assert_eq!(a.to_bits(), b2.to_bits());
    }
}
