//! Loop- and map-invariant code motion.
//!
//! A statement inside a SOAC lambda or a sequential loop whose free
//! variables are all bound *outside* that scope computes the same value on
//! every iteration; hoisting it into the enclosing body executes it once.
//! Reverse-mode AD's redundant scope re-execution produces exactly such
//! statements in imperfect nests (the perfectly-nested ones are dead and
//! fall to DCE instead).
//!
//! Hoisting boundaries are `map`/`reduce`/`scan`/`redomap` lambdas and
//! `loop` bodies. `if` branches are *not* boundaries: moving code out of a
//! branch would execute the untaken side. Because an enclosing scope may
//! run zero times (empty array, zero-trip loop), only *speculatable*
//! statements move: expressions that cannot trap on any well-typed input
//! (no indexing, no integer division/remainder/power, no consumption, no
//! accumulator effects). Hoisted statements cascade: a statement lifted out
//! of an inner lambda is immediately reconsidered against the next scope up
//! within the same pass.

use std::collections::BTreeSet;

use fir::free_vars::FreeVars;
use fir::ir::{BinOp, Body, Exp, Fun, Lambda, Param, Stm, VarId};
use fir::types::Type;

/// Apply invariant code motion everywhere in `fun`.
pub fn hoist_invariants(fun: &Fun) -> Fun {
    hoist_invariants_counted(fun).0
}

/// [`hoist_invariants`], also returning the number of statements moved
/// (counting each scope boundary crossed).
///
/// Hoisting moves binders into enclosing scopes, so shadowed binders (as
/// `vjp`'s redundant re-execution produces) could collide after the move;
/// such input is alpha-renamed to unique binders first.
pub fn hoist_invariants_counted(fun: &Fun) -> (Fun, usize) {
    let renamed;
    let fun = if fir::rename::has_unique_binders(fun) {
        fun
    } else {
        renamed = fir::rename::uniquify_fun(fun);
        &renamed
    };
    let mut cx = Hoist { count: 0 };
    let body = cx.opaque_body(&fun.body);
    (
        Fun {
            name: fun.name.clone(),
            params: fun.params.clone(),
            body,
            ret: fun.ret.clone(),
        },
        cx.count,
    )
}

struct Hoist {
    count: usize,
}

impl Hoist {
    /// Rewrite a body that is *not* a hoisting boundary (the function body,
    /// `if` branches, `withacc` lambdas): statements hoisted out of nested
    /// scopes land right before the statement that contained them.
    fn opaque_body(&mut self, body: &Body) -> Body {
        let mut stms = Vec::with_capacity(body.stms.len());
        for stm in &body.stms {
            let mut landed = Vec::new();
            let exp = self.exp(&stm.exp, &mut landed);
            stms.extend(landed);
            stms.push(Stm::new(stm.pat.clone(), exp));
        }
        Body::new(stms, body.result.clone())
    }

    /// Rewrite the body of a hoisting boundary whose locally-bound names
    /// start as `bound`. Invariant speculatable statements (including ones
    /// cascading up from deeper scopes) are pushed to `out` instead of
    /// staying in the body.
    fn boundary_body(
        &mut self,
        body: &Body,
        mut bound: BTreeSet<VarId>,
        out: &mut Vec<Stm>,
    ) -> Body {
        let mut stms = Vec::with_capacity(body.stms.len());
        for stm in &body.stms {
            let mut incoming = Vec::new();
            let exp = self.exp(&stm.exp, &mut incoming);
            incoming.push(Stm::new(stm.pat.clone(), exp));
            for s in incoming {
                let invariant = s.exp.free_vars().is_disjoint(&bound);
                if invariant && speculatable(&s.exp, &s.pat) {
                    out.push(s);
                    self.count += 1;
                } else {
                    bound.extend(s.pat.iter().map(|p| p.var));
                    stms.push(s);
                }
            }
        }
        Body::new(stms, body.result.clone())
    }

    fn boundary_lambda(&mut self, lam: &Lambda, out: &mut Vec<Stm>) -> Lambda {
        let bound: BTreeSet<VarId> = lam.params.iter().map(|p| p.var).collect();
        Lambda {
            params: lam.params.clone(),
            body: self.boundary_body(&lam.body, bound, out),
            ret: lam.ret.clone(),
        }
    }

    fn exp(&mut self, e: &Exp, out: &mut Vec<Stm>) -> Exp {
        match e {
            Exp::If {
                cond,
                then_br,
                else_br,
            } => Exp::If {
                cond: *cond,
                then_br: self.opaque_body(then_br),
                else_br: self.opaque_body(else_br),
            },
            Exp::Loop {
                params,
                index,
                count,
                body,
            } => {
                let mut bound: BTreeSet<VarId> = params.iter().map(|(p, _)| p.var).collect();
                bound.insert(*index);
                Exp::Loop {
                    params: params.clone(),
                    index: *index,
                    count: *count,
                    body: self.boundary_body(body, bound, out),
                }
            }
            Exp::Map { lam, args } => Exp::Map {
                lam: self.boundary_lambda(lam, out),
                args: args.clone(),
            },
            Exp::Reduce { lam, neutral, args } => Exp::Reduce {
                lam: self.boundary_lambda(lam, out),
                neutral: neutral.clone(),
                args: args.clone(),
            },
            Exp::Scan { lam, neutral, args } => Exp::Scan {
                lam: self.boundary_lambda(lam, out),
                neutral: neutral.clone(),
                args: args.clone(),
            },
            Exp::Redomap {
                red_lam,
                map_lam,
                neutral,
                args,
            } => Exp::Redomap {
                red_lam: self.boundary_lambda(red_lam, out),
                map_lam: self.boundary_lambda(map_lam, out),
                neutral: neutral.clone(),
                args: args.clone(),
            },
            Exp::WithAcc { arrs, lam } => Exp::WithAcc {
                arrs: arrs.clone(),
                lam: Lambda {
                    params: lam.params.clone(),
                    body: self.opaque_body(&lam.body),
                    ret: lam.ret.clone(),
                },
            },
            other => other.clone(),
        }
    }
}

/// Whether evaluating this expression can never trap (panic) on well-typed
/// operands — the requirement for executing it speculatively when its
/// enclosing scope would have run zero times.
fn speculatable(e: &Exp, pat: &[Param]) -> bool {
    fn body_ok(b: &Body) -> bool {
        b.stms.iter().all(|s| speculatable(&s.exp, &s.pat))
    }
    match e {
        Exp::Atom(_) | Exp::Select { .. } | Exp::Len(_) | Exp::Reverse(_) => true,
        Exp::UnOp(..) => true,
        Exp::BinOp(op, ..) => {
            // Integer division/remainder by zero and integer `pow` trap;
            // their float counterparts produce inf/NaN instead. Integer
            // add/sub/mul stay: the IR's arithmetic is wrapping-equivalent
            // for the value ranges the workloads use.
            !(matches!(op, BinOp::Div | BinOp::Rem | BinOp::Pow) && pat[0].ty == Type::I64)
        }
        Exp::Iota(_) | Exp::Replicate { .. } => true, // negative sizes clamp to 0
        Exp::Index { .. }
        | Exp::Update { .. }
        | Exp::Copy(_)
        | Exp::Hist { .. }
        | Exp::Scatter { .. }
        | Exp::WithAcc { .. }
        | Exp::UpdAcc { .. } => false,
        Exp::If {
            then_br, else_br, ..
        } => body_ok(then_br) && body_ok(else_br),
        Exp::Loop { body, .. } => body_ok(body),
        Exp::Map { lam, .. } | Exp::Reduce { lam, .. } | Exp::Scan { lam, .. } => {
            !lam.params.iter().any(|p| p.ty.is_acc()) && body_ok(&lam.body)
        }
        Exp::Redomap {
            red_lam, map_lam, ..
        } => body_ok(&red_lam.body) && body_ok(&map_lam.body),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::count_stms;
    use fir::builder::Builder;
    use fir::ir::Atom;
    use fir::typecheck::check_fun;
    use interp::{Interp, Value};

    #[test]
    fn invariant_scalar_work_leaves_the_map() {
        let mut b = Builder::new();
        let fun = b.build_fun("inv", &[Type::F64, Type::arr_f64(1)], |b, ps| {
            let x = Atom::Var(ps[0]);
            let m = b.map1(Type::arr_f64(1), &[ps[1]], |b, es| {
                let e = b.fexp(x); // invariant: recomputed per element
                let s = b.fsin(e); // invariant, depends on a hoisted stm
                vec![b.fmul(es[0].into(), s)]
            });
            vec![b.sum(m).into()]
        });
        let (out, n) = hoist_invariants_counted(&fun);
        assert_eq!(n, 2, "both invariant statements must hoist");
        check_fun(&out).unwrap();
        // The map's lambda now holds a single multiply.
        let map_stm = out
            .body
            .stms
            .iter()
            .find(|s| matches!(s.exp, Exp::Map { .. }))
            .expect("map survives");
        match &map_stm.exp {
            Exp::Map { lam, .. } => assert_eq!(lam.body.stms.len(), 1),
            _ => unreachable!(),
        }
        let args = [Value::F64(0.7), Value::from(vec![1.0, 2.0, 3.0])];
        let a = Interp::sequential().run(&fun, &args)[0].as_f64();
        let b2 = Interp::sequential().run(&out, &args)[0].as_f64();
        assert_eq!(a.to_bits(), b2.to_bits());
    }

    #[test]
    fn hoisting_cascades_through_nested_scopes_in_one_pass() {
        // exp(x) is invariant two maps deep; it must reach the top level.
        let mut b = Builder::new();
        let fun = b.build_fun("deep", &[Type::F64, Type::arr_f64(2)], |b, ps| {
            let x = Atom::Var(ps[0]);
            let m = b.map1(Type::arr_f64(2), &[ps[1]], |b, rows| {
                let inner = b.map1(Type::arr_f64(1), &[rows[0]], |b, es| {
                    let e = b.fexp(x);
                    vec![b.fmul(es[0].into(), e)]
                });
                vec![Atom::Var(inner)]
            });
            let sums = b.map1(Type::arr_f64(1), &[m], |b, rs| {
                vec![Atom::Var(b.sum(rs[0]))]
            });
            vec![b.sum(sums).into()]
        });
        let (out, n) = hoist_invariants_counted(&fun);
        assert!(n >= 1);
        check_fun(&out).unwrap();
        assert!(
            matches!(out.body.stms[0].exp, Exp::UnOp(fir::ir::UnOp::Exp, _)),
            "exp(x) must land at the top of the function body"
        );
        let args = [
            Value::F64(0.3),
            Value::Arr(interp::Array::from_f64(
                vec![2, 2],
                vec![1.0, 2.0, 3.0, 4.0],
            )),
        ];
        let a = Interp::sequential().run(&fun, &args)[0].as_f64();
        let b2 = Interp::sequential().run(&out, &args)[0].as_f64();
        assert_eq!(a.to_bits(), b2.to_bits());
    }

    #[test]
    fn loop_invariants_and_trapping_ops_are_handled() {
        let mut b = Builder::new();
        let fun = b.build_fun("loopinv", &[Type::F64, Type::I64], |b, ps| {
            let x = Atom::Var(ps[0]);
            let n = Atom::Var(ps[1]);
            let r = b.loop_(&[(Type::F64, Atom::f64(0.0))], n, |b, _i, acc| {
                let e = b.fsqrt(x); // invariant, safe: hoists
                let d = b.idiv(n, Atom::i64(2)); // invariant but can trap: stays
                let df = b.to_f64(d);
                let t = b.fadd(e, df);
                vec![b.fadd(acc[0].into(), t)]
            });
            vec![r[0].into()]
        });
        let (out, _) = hoist_invariants_counted(&fun);
        check_fun(&out).unwrap();
        match &out.body.stms.last().unwrap().exp {
            Exp::Loop { body, .. } => {
                assert!(
                    body.stms
                        .iter()
                        .any(|s| matches!(s.exp, Exp::BinOp(BinOp::Div, ..))),
                    "integer division must not be speculated"
                );
                assert!(
                    !body
                        .stms
                        .iter()
                        .any(|s| matches!(s.exp, Exp::UnOp(fir::ir::UnOp::Sqrt, _))),
                    "sqrt(x) must hoist out of the loop"
                );
            }
            other => panic!("expected loop, got {}", other.kind()),
        }
        let args = [Value::F64(2.0), Value::I64(5)];
        let a = Interp::sequential().run(&fun, &args)[0].as_f64();
        let b2 = Interp::sequential().run(&out, &args)[0].as_f64();
        assert_eq!(a.to_bits(), b2.to_bits());
        // Zero-trip loop: the hoisted sqrt now runs, the division must not.
        let a0 = Interp::sequential().run(&out, &[Value::F64(2.0), Value::I64(0)]);
        assert_eq!(a0[0].as_f64(), 0.0);
    }

    #[test]
    fn if_branches_are_not_hoisting_boundaries() {
        let mut b = Builder::new();
        let fun = b.build_fun("branchy", &[Type::F64, Type::BOOL], |b, ps| {
            let x = Atom::Var(ps[0]);
            let r = b.if_(
                Atom::Var(ps[1]),
                &[Type::F64],
                |b| vec![b.flog(x)],
                |_b| vec![Atom::f64(0.0)],
            );
            vec![r[0].into()]
        });
        let (out, n) = hoist_invariants_counted(&fun);
        assert_eq!(n, 0);
        assert_eq!(out, fun);
        assert!(count_stms(&out) == count_stms(&fun));
    }
}
