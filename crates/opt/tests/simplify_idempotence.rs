//! Property test: `simplify` is idempotent — simplifying an
//! already-simplified program changes nothing — and preserves semantics on
//! randomly generated programs, including the redundant-execution output of
//! reverse-mode AD (the very code the simplifier exists to clean up).

use fir::builder::Builder;
use fir::ir::{Atom, Fun};
use fir::types::Type;
use interp::{Interp, Value};
use proptest::prelude::*;

/// A random scalar/array program over one array and one scalar input,
/// shaped by the `ops` byte string.
fn build_random_fun(ops: &[u8]) -> Fun {
    let mut b = Builder::new();
    b.build_fun("rand_prog", &[Type::arr_f64(1), Type::F64], |b, ps| {
        let xs = ps[0];
        let c = Atom::Var(ps[1]);
        let mut arr = xs;
        let mut scalar = c;
        for op in ops {
            match op % 5 {
                0 => {
                    let s = scalar;
                    arr = b.map1(Type::arr_f64(1), &[arr], |b, es| {
                        let t = b.ftanh(es[0].into());
                        vec![b.fmul(t, s)]
                    });
                }
                1 => scalar = Atom::Var(b.sum(arr)),
                2 => arr = b.scan_add(arr),
                3 => {
                    let m = b.maximum(arr);
                    scalar = b.fadd(scalar, m.into());
                }
                _ => {
                    // Dead code the simplifier should erase without
                    // changing anything observable.
                    let dead = b.fmul(scalar, Atom::f64(0.0));
                    let _unused = b.fadd(dead, Atom::f64(1.0));
                }
            }
        }
        let total = b.sum(arr);
        vec![b.fadd(scalar, total.into())]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn simplify_is_idempotent_on_random_programs(
        ops in proptest::collection::vec(any::<u8>(), 1..12),
    ) {
        let fun = build_random_fun(&ops);
        let once = fir_opt::simplify(&fun);
        let twice = fir_opt::simplify(&once);
        prop_assert_eq!(&once, &twice);
    }

    #[test]
    fn simplify_is_idempotent_on_vjp_output(
        ops in proptest::collection::vec(any::<u8>(), 1..8),
    ) {
        let dfun = futhark_ad::vjp(&build_random_fun(&ops));
        let once = fir_opt::simplify(&dfun);
        let twice = fir_opt::simplify(&once);
        prop_assert_eq!(&once, &twice);
    }

    #[test]
    fn simplify_preserves_semantics_and_never_grows(
        ops in proptest::collection::vec(any::<u8>(), 1..10),
        xs in proptest::collection::vec(-1.0f64..1.0, 1..12),
        c in -1.0f64..1.0,
    ) {
        let fun = build_random_fun(&ops);
        let simplified = fir_opt::simplify(&fun);
        fir::typecheck::check_fun(&simplified).unwrap();
        prop_assert!(fir_opt::count_stms(&simplified) <= fir_opt::count_stms(&fun));
        let args = [Value::from(xs), Value::F64(c)];
        let interp = Interp::sequential();
        let a = interp.run(&fun, &args)[0].as_f64();
        let b = interp.run(&simplified, &args)[0].as_f64();
        prop_assert!((a - b).abs() <= 1e-12 * a.abs().max(1.0), "{} vs {}", a, b);
    }
}
