//! Golden pretty-printer snapshots of representative optimizer rewrites:
//! small hand-written IR in, the exact optimized IR out. The `Builder`
//! allocates names deterministically and the passes rename
//! deterministically, so these strings are stable; if a pass's output
//! shape changes intentionally, update the expectation and say why in the
//! commit.

use fir::builder::Builder;
use fir::ir::{Atom, Fun};
use fir::typecheck::check_fun;
use fir::types::Type;

fn assert_golden(actual: &Fun, expected: &str) {
    check_fun(actual).unwrap();
    let rendered = format!("{actual}");
    assert_eq!(
        rendered.trim(),
        expected.trim(),
        "\n-- actual --\n{rendered}\n-- expected --\n{expected}"
    );
}

/// map–map fusion followed by map–reduce fusion: the whole chain becomes a
/// single `redomap` over the original input, composing both lambda bodies.
#[test]
fn fusion_collapses_a_map_map_reduce_chain_into_a_redomap() {
    let mut b = Builder::new();
    let chain = b.build_fun("chain", &[Type::arr_f64(1)], |b, ps| {
        let doubled = b.map1(Type::arr_f64(1), &[ps[0]], |b, es| {
            vec![b.fmul(es[0].into(), Atom::f64(2.0))]
        });
        let shifted = b.map1(Type::arr_f64(1), &[doubled], |b, es| {
            vec![b.fadd(es[0].into(), Atom::f64(1.0))]
        });
        vec![b.sum(shifted).into()]
    });
    let out = fir_opt::simplify(&fir_opt::fuse_soacs(&chain));
    assert_golden(
        &out,
        r#"
def chain (x0: []f64) : (f64) =
  let x10 = redomap (\x7: f64 x8: f64 ->
    let x9 = x7 + x8
    in (x9)
  ) (\x14: f64 ->
    let x15 = x14 * 2.0
    let x17 = x15 + 1.0
    in (x17)
  ) (0.0) x0
  in (x10)
"#,
    );
}

/// CSE merges alpha-equivalent statements: the duplicated squaring map and
/// the duplicated sum both collapse, leaving `s + s`.
#[test]
fn cse_merges_duplicated_soacs() {
    let mut b = Builder::new();
    let dup = b.build_fun("dup", &[Type::arr_f64(1)], |b, ps| {
        let m1 = b.map1(Type::arr_f64(1), &[ps[0]], |b, es| {
            vec![b.fmul(es[0].into(), es[0].into())]
        });
        let m2 = b.map1(Type::arr_f64(1), &[ps[0]], |b, es| {
            vec![b.fmul(es[0].into(), es[0].into())]
        });
        let s1 = b.sum(m1);
        let s2 = b.sum(m2);
        vec![b.fadd(s1.into(), s2.into())]
    });
    assert_golden(
        &fir_opt::cse(&dup),
        r#"
def dup (x0: []f64) : (f64) =
  let x3 = map (\x1: f64 ->
    let x2 = x1 * x1
    in (x2)
  ) x0
  let x10 = reduce (\x7: f64 x8: f64 ->
    let x9 = x7 + x8
    in (x9)
  ) (0.0) x3
  let x15 = x10 + x10
  in (x15)
"#,
    );
}

/// Invariant hoisting moves `exp x` out of the map lambda; the map then
/// captures the hoisted value.
#[test]
fn hoist_moves_the_invariant_exp_out_of_the_map() {
    let mut b = Builder::new();
    let inv = b.build_fun("inv", &[Type::F64, Type::arr_f64(1)], |b, ps| {
        let x = Atom::Var(ps[0]);
        let m = b.map1(Type::arr_f64(1), &[ps[1]], |b, es| {
            let e = b.fexp(x);
            vec![b.fmul(es[0].into(), e)]
        });
        vec![b.sum(m).into()]
    });
    assert_golden(
        &fir_opt::hoist_invariants(&inv),
        r#"
def inv (x0: f64) (x1: []f64) : (f64) =
  let x3 = exp x0
  let x5 = map (\x2: f64 ->
    let x4 = x2 * x3
    in (x4)
  ) x1
  let x9 = reduce (\x6: f64 x7: f64 ->
    let x8 = x6 + x7
    in (x8)
  ) (0.0) x5
  in (x9)
"#,
    );
}

/// Replicate–map fusion: the broadcast (non-first) argument becomes a
/// captured scalar, and the replicate (with the `length` feeding it) dies.
/// The first argument never fuses away — it supplies the map's iteration
/// count.
#[test]
fn replicate_arguments_fuse_into_the_map() {
    let mut b = Builder::new();
    let rep = b.build_fun("axpy", &[Type::F64, Type::arr_f64(1)], |b, ps| {
        let l = b.len(ps[1]);
        let r = b.replicate(l, Atom::Var(ps[0]));
        let m = b.map1(Type::arr_f64(1), &[ps[1], r], |b, es| {
            vec![b.fmul(es[1].into(), es[0].into())]
        });
        vec![Atom::Var(m)]
    });
    assert_golden(
        &fir_opt::simplify(&fir_opt::fuse_soacs(&rep)),
        r#"
def axpy (x0: f64) (x1: []f64) : ([]f64) =
  let x7 = map (\x4: f64 ->
    let x6 = x0 * x4
    in (x6)
  ) x1
  in (x7)
"#,
    );
}
