//! The serving-layer error type.
//!
//! Everything the runtime can decline or fail is a [`ServeError`]:
//! admission control (`Overloaded`, `ShuttingDown`), routing
//! (`UnknownFn`), per-request deadlines (`DeadlineExceeded`),
//! configuration mistakes at build time (`Config`), and execution
//! failures forwarded from the engine (`Exec`). Per-request isolation
//! means an `Exec` error resolves only the ticket of the request that
//! caused it — never its batchmates'.

use std::fmt;
use std::time::Duration;

use fir_api::FirError;

/// An error from submitting to or executing through a [`crate::Server`].
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The function's bounded queue is full: the request was shed at
    /// admission (load-shedding backpressure). Retry later or widen
    /// [`crate::ServerBuilder::queue_capacity`].
    Overloaded {
        /// The registered function the request targeted.
        fn_key: String,
        /// The queue bound that was hit.
        capacity: usize,
    },
    /// The server is shutting down (or already shut down) and no longer
    /// admits requests. In-flight and queued work is still drained.
    ShuttingDown,
    /// No function is registered under the requested key.
    UnknownFn {
        /// The key that was asked for.
        fn_key: String,
        /// Every registered key, for the error message.
        known: Vec<String>,
    },
    /// The request's deadline passed before its batch executed; it was
    /// dropped at the batch cut without running.
    DeadlineExceeded {
        /// The registered function the request targeted.
        fn_key: String,
        /// How long the request had been queued when it was dropped.
        waited: Duration,
    },
    /// The engine rejected or failed this request (bad arity/types,
    /// runtime failure). Batchmates are unaffected.
    Exec(FirError),
    /// The server could not be built (e.g. a duplicate function key or a
    /// program that does not compile).
    Config {
        /// What was wrong.
        what: String,
    },
    /// The runtime itself failed while executing the batch (a panic was
    /// contained); the request did not produce a result. Batchmates of
    /// the panicking batch receive the same error, but the server stays
    /// up and later requests are unaffected.
    Internal {
        /// What happened.
        what: String,
    },
}

impl From<FirError> for ServeError {
    fn from(e: FirError) -> ServeError {
        ServeError::Exec(e)
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Overloaded { fn_key, capacity } => write!(
                f,
                "overloaded: queue for {fn_key:?} is at capacity ({capacity}); request shed"
            ),
            ServeError::ShuttingDown => write!(f, "server is shutting down; request rejected"),
            ServeError::UnknownFn { fn_key, known } => write!(
                f,
                "unknown function {fn_key:?}; registered keys are {}",
                known.join(", ")
            ),
            ServeError::DeadlineExceeded { fn_key, waited } => write!(
                f,
                "deadline exceeded: request for {fn_key:?} waited {waited:?} without executing"
            ),
            ServeError::Exec(e) => write!(f, "{e}"),
            ServeError::Config { what } => write!(f, "server configuration: {what}"),
            ServeError::Internal { what } => write!(f, "internal serving error: {what}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Exec(e) => Some(e),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_function_and_the_bound() {
        let e = ServeError::Overloaded {
            fn_key: "gmm".into(),
            capacity: 8,
        };
        let msg = e.to_string();
        assert!(msg.contains("\"gmm\"") && msg.contains("8"), "{msg}");

        let e = ServeError::UnknownFn {
            fn_key: "nope".into(),
            known: vec!["gmm".into(), "kmeans".into()],
        };
        assert!(e.to_string().contains("gmm, kmeans"), "{e}");
    }
}
