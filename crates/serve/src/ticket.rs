//! Futures-style completion handles for submitted requests.
//!
//! A [`Ticket`] is the client half of a one-shot slot the runtime fills
//! when the request's batch executes. Clients block on [`Ticket::wait`]
//! (or poll with [`Ticket::is_ready`] / bound the wait with
//! [`Ticket::wait_for`]); the runtime side fulfills through the shared
//! internal state. No async executor is involved — waiting is a plain
//! mutex/condvar park, which is what a thread-per-client closed loop
//! wants.

use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use crate::error::ServeError;

/// The shared one-shot slot behind a [`Ticket`].
pub(crate) struct TicketState<T> {
    slot: Mutex<Option<Result<T, ServeError>>>,
    cv: Condvar,
}

impl<T> TicketState<T> {
    pub(crate) fn new() -> Arc<TicketState<T>> {
        Arc::new(TicketState {
            slot: Mutex::new(None),
            cv: Condvar::new(),
        })
    }

    /// Fill the slot and wake the waiter. A second fulfillment is a bug in
    /// the runtime; the first result wins.
    pub(crate) fn fulfill(&self, result: Result<T, ServeError>) {
        let mut slot = self.slot.lock().unwrap();
        if slot.is_none() {
            *slot = Some(result);
        }
        self.cv.notify_all();
    }
}

/// A typed handle to the future result of a submitted request.
///
/// `Ticket<Vec<Value>>` resolves primal calls, `Ticket<GradOutput>`
/// resolves gradient requests. The ticket is fulfilled exactly once —
/// with the request's own result or its own error; batchmates' failures
/// never propagate into it.
pub struct Ticket<T> {
    state: Arc<TicketState<T>>,
}

impl<T> std::fmt::Debug for Ticket<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ticket")
            .field("ready", &self.is_ready())
            .finish()
    }
}

impl<T> Ticket<T> {
    pub(crate) fn new() -> (Ticket<T>, Arc<TicketState<T>>) {
        let state = TicketState::new();
        (
            Ticket {
                state: Arc::clone(&state),
            },
            state,
        )
    }

    /// Whether the result has arrived ([`Ticket::wait`] would not block).
    pub fn is_ready(&self) -> bool {
        self.state.slot.lock().unwrap().is_some()
    }

    /// Block until the result arrives within `timeout`; `true` if it did.
    /// The result stays in the ticket for [`Ticket::wait`] to take.
    pub fn wait_for(&self, timeout: Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        let mut slot = self.state.slot.lock().unwrap();
        while slot.is_none() {
            let now = std::time::Instant::now();
            if now >= deadline {
                return false;
            }
            let (guard, _) = self.state.cv.wait_timeout(slot, deadline - now).unwrap();
            slot = guard;
        }
        true
    }

    /// Block until the request resolves and take its result.
    pub fn wait(self) -> Result<T, ServeError> {
        let mut slot = self.state.slot.lock().unwrap();
        loop {
            if let Some(result) = slot.take() {
                return result;
            }
            slot = self.state.cv.wait(slot).unwrap();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tickets_resolve_across_threads() {
        let (ticket, state) = Ticket::<u32>::new();
        assert!(!ticket.is_ready());
        let t = std::thread::spawn(move || {
            state.fulfill(Ok(7));
        });
        assert_eq!(ticket.wait(), Ok(7));
        t.join().unwrap();
    }

    #[test]
    fn wait_for_times_out_without_a_result() {
        let (ticket, state) = Ticket::<u32>::new();
        assert!(!ticket.wait_for(Duration::from_millis(10)));
        state.fulfill(Err(ServeError::ShuttingDown));
        assert!(ticket.wait_for(Duration::from_secs(5)));
        assert_eq!(ticket.wait(), Err(ServeError::ShuttingDown));
    }

    #[test]
    fn first_fulfillment_wins() {
        let (ticket, state) = Ticket::<u32>::new();
        state.fulfill(Ok(1));
        state.fulfill(Ok(2));
        assert_eq!(ticket.wait(), Ok(1));
    }
}
