//! `fir-serve` — a concurrent serving runtime over the staged
//! [`fir_api::Engine`]: dynamic micro-batching, admission control, and
//! live metrics.
//!
//! PR 2's `CompiledFn::call_batch`/`grad_batch` proved that batching
//! amortizes dispatch across the persistent worker pool — but only for a
//! caller that already *has* a batch in hand. This crate closes the gap
//! between "fast compiled kernels" and "fast service": many client
//! threads submit small independent requests (the paper's GMM / k-means
//! / LSTM objective and gradient evaluations are exactly this shape),
//! and the runtime coalesces them into engine-level batches.
//!
//! ```text
//!  clients                server                       firvm runtime
//!  ───────                ──────                       ─────────────
//!  submit(Request)──► [bounded queue per fn]
//!  submit(Request)──► [bounded queue per fn] ──► dispatcher thread
//!       ▲  shed:            │                        │ cuts micro-batches
//!       │  Overloaded       │ max_batch_size /       │ (homogeneous kind)
//!    Ticket::wait ◄─────────┘ max_wait policy        ▼
//!       ▲                                    pool::submit(batch)
//!       │                                            │
//!       └──── per-request Result ◄── call_batch_fused / grad_batch_fused
//!                                     (one bad request ≠ failed batch)
//! ```
//!
//! * [`ServerBuilder`] registers many compiled functions behind one
//!   runtime; all of them share one engine (and its fingerprint cache).
//! * The **micro-batcher** cuts a batch per function when
//!   [`BatchPolicy::max_batch_size`] requests are queued or the oldest
//!   has waited [`BatchPolicy::max_wait`]. Execution is scheduled on the
//!   persistent `firvm` worker pool — the same workers that run SOAC
//!   chunks, so the process has exactly one thread pool.
//! * **Admission control**: bounded per-function queues shed with
//!   [`ServeError::Overloaded`]; [`Server::shutdown`] stops admission and
//!   drains everything in flight. Per-request deadlines expire queued
//!   work with [`ServeError::DeadlineExceeded`].
//! * **Metrics**: lock-free counters and log-scaled histograms per
//!   function — throughput, queue depth, batch-size distribution,
//!   p50/p95/p99 latency — snapshotted as a machine-readable JSON
//!   ([`MetricsSnapshot::to_json`]).
//!
//! # Example
//!
//! ```
//! use fir::builder::Builder;
//! use fir::types::Type;
//! use fir_api::Engine;
//! use fir_serve::{BatchPolicy, Request, ServerBuilder};
//! use interp::Value;
//! use std::time::Duration;
//!
//! let mut b = Builder::new();
//! let sq = b.build_fun("sqsum", &[Type::arr_f64(1)], |b, ps| {
//!     let s = b.map1(Type::arr_f64(1), &[ps[0]], |b, es| {
//!         vec![b.fmul(es[0].into(), es[0].into())]
//!     });
//!     vec![b.sum(s).into()]
//! });
//!
//! let server = ServerBuilder::new(Engine::new())
//!     .batch_policy(BatchPolicy { max_batch_size: 16, max_wait: Duration::from_micros(200) })
//!     .register("sqsum", &sq)
//!     .build()?;
//!
//! // Submit from any thread; the ticket is a typed future.
//! let ticket = server.submit_grad(Request::new("sqsum", vec![Value::from(vec![1.0, 2.0])]))?;
//! let grad = ticket.wait()?;
//! assert_eq!(grad.scalar(), 5.0);
//! assert_eq!(grad.grads[0].as_arr().f64s(), &[2.0, 4.0]);
//!
//! let metrics = server.shutdown(); // graceful: drains, then reports
//! assert_eq!(metrics.completed(), 1);
//! # Ok::<(), fir_serve::ServeError>(())
//! ```

pub mod error;
pub mod metrics;
pub mod server;
pub mod ticket;

pub use error::ServeError;
pub use fir_api::Transform;
pub use metrics::{
    FnMetricsSnapshot, HistogramSnapshot, MetricsSnapshot, NetStatsSnapshot, TenantCountersSnapshot,
};
pub use server::{BatchPolicy, Request, RequestKind, Server, ServerBuilder};
pub use ticket::Ticket;
